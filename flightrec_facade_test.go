package pilotrf

import (
	"bytes"
	"testing"
)

// smallSim returns a 1-SM simulator at reduced scale for fast facade
// tests.
func smallSim(t *testing.T, seed uint64) *Simulator {
	t.Helper()
	opts := PaperOptions()
	opts.SMs = 1
	opts.Scale = 0.1
	s, err := NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Config().Seed = seed
	return s
}

func TestFlightRecorderFacadeRoundTrip(t *testing.T) {
	s := smallSim(t, 1)
	rec := s.EnableFlightRecorder(32)
	if _, err := s.RunBenchmark("sgemm"); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	log := rec.Log()
	var buf bytes.Buffer
	if err := log.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// Replay through the facade: a fresh simulator with the same
	// options must verify cleanly.
	s2 := smallSim(t, 1)
	chk := s2.EnableReplayCheck(log)
	if _, err := s2.RunBenchmark("sgemm"); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestDiffRecordingsFacade(t *testing.T) {
	capture := func(seed uint64) *Recording {
		s := smallSim(t, seed)
		rec := s.EnableFlightRecorder(32)
		if _, err := s.RunBenchmark("sgemm"); err != nil {
			t.Fatal(err)
		}
		return rec.Log()
	}
	a, b := capture(1), capture(2)
	r := DiffRecordings(a, b, 3)
	if !r.Diverged {
		t.Fatal("different-seed recordings did not diverge")
	}
	if r.Cycle < 0 || r.Subsystem == "" {
		t.Fatalf("incomplete report: %+v", r)
	}
	same := DiffRecordings(a, capture(1), 3)
	if same.Diverged {
		t.Fatalf("same-seed recordings diverged at event %d", same.Index)
	}
}

func TestOracleProfilingViaFacade(t *testing.T) {
	// Measure the true top registers with a pilot run, then feed them
	// back as the oracle — the examples/replaydiff flow.
	s := smallSim(t, 1)
	res, err := s.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	var oracle []Reg
	for _, kv := range res.Stats.Kernels[0].RegHist.TopN(4) {
		oracle = append(oracle, R(kv.Key))
	}
	if len(oracle) == 0 {
		t.Fatal("no top registers measured")
	}

	o := smallSim(t, 1)
	o.Config().Profiling = ProfileOracle
	o.Config().Oracle = oracle
	ores, err := o.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if ores.FRFShare() <= 0 {
		t.Errorf("oracle FRF share = %v", ores.FRFShare())
	}
}
