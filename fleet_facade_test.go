package pilotrf

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFleetFacadeEndToEnd drives the distributed layer purely through
// the facade: a coordinator over an httptest server, one fleet worker,
// and a report byte-identical to the local RunFaultCampaign path.
func TestFleetFacadeEndToEnd(t *testing.T) {
	spec := CampaignSpec{
		Benchmarks: []string{"sgemm"},
		Designs:    []string{"part-adaptive"},
		Protect:    []string{"none"},
		Trials:     2,
		Seed:       9,
		SMs:        1,
	}

	pool, err := NewWorkerPool(PoolConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	want, err := RunFaultCampaign(context.Background(), spec, CampaignOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}

	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co := NewFleetCoordinator(FleetConfig{Cache: cache, PollInterval: 20 * time.Millisecond})
	defer co.Close()
	mux := http.NewServeMux()
	co.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	wctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunFleetWorker(wctx, FleetWorkerConfig{Coordinator: ts.URL, Parallel: 2})
	}()
	defer func() {
		cancel()
		select {
		case <-workerDone:
		case <-time.After(10 * time.Second):
			t.Error("fleet worker did not stop")
		}
	}()

	got, err := co.RunCampaign(context.Background(), spec, FleetRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatalf("fleet report differs from local run:\n%s\n---\n%s", a, b)
	}

	h := co.Health()
	if h.WorkersLive != 1 {
		t.Errorf("health reports %d live workers, want 1", h.WorkersLive)
	}
}

// TestFleetFacadePlanProjection: the exported plan enumerates the same
// grid the campaign reports, in the same order.
func TestFleetFacadePlanProjection(t *testing.T) {
	spec := CampaignSpec{
		Benchmarks: []string{"sgemm"},
		Designs:    []string{"part-adaptive", "mrf-ntv"},
		Protect:    []string{"none", "parity"},
		Trials:     1,
		Seed:       5,
		SMs:        1,
	}
	pl, err := NewCampaignPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumCells() != 4 {
		t.Fatalf("plan has %d cells, want 4", pl.NumCells())
	}
	pool, err := NewWorkerPool(PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := RunFaultCampaign(context.Background(), spec, CampaignOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rep.Cells {
		ref := pl.Cell(i)
		if ref.Design != c.Design || ref.Workload != c.Workload || ref.Protect != c.Protection {
			t.Errorf("cell %d: plan %+v vs report %s/%s/%s", i, ref, c.Design, c.Protection, c.Workload)
		}
	}
}

// TestFleetFacadeRetryPolicy: the exported backoff helper is the shared
// decorrelated-jitter implementation.
func TestFleetFacadeRetryPolicy(t *testing.T) {
	b := RetryPolicy{Base: 5 * time.Millisecond, Budget: 50 * time.Millisecond}.Start()
	var total time.Duration
	for {
		d, ok := b.Next()
		if !ok {
			break
		}
		total += d
	}
	if total != 50*time.Millisecond {
		t.Fatalf("budget consumed %v, want exactly 50ms", total)
	}
}
