package pilotrf

import (
	"errors"
	"testing"
)

// TestFaultFacadeDisabledMatchesBaseline: constructing the simulator
// without EnableFaultInjection must behave exactly like the pre-fault
// facade — zero fault counters, no error.
func TestFaultFacadeDisabledMatchesBaseline(t *testing.T) {
	s := smallSim(t, 1)
	res, err := s.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if ft := res.Stats.FaultTotals(); ft != (FaultStats{}) {
		t.Fatalf("fault counters nonzero without injection: %+v", ft)
	}
}

// TestFaultFacadeSECDEDSurvives: with full SECDED, an accelerated-rate
// campaign corrects every strike — the run completes and reports
// corrections but no silent reads and no abort.
func TestFaultFacadeSECDEDSurvives(t *testing.T) {
	s := smallSim(t, 1)
	if err := s.EnableProtection(FullSECDED()); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableFaultInjection(FaultConfig{Rate: 1e-9, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunBenchmark("sgemm")
	if err != nil {
		t.Fatalf("SECDED run aborted: %v", err)
	}
	ft := res.Stats.FaultTotals()
	if ft.TotalInjected() == 0 {
		t.Fatal("accelerated campaign injected nothing")
	}
	if ft.SilentReads != 0 || ft.Unrecoverable != 0 {
		t.Fatalf("SECDED leaked faults: %+v", ft)
	}
}

// TestFaultFacadeSDCProbe: an unprotected faulty run must diverge from
// a fault-free golden run under the dataflow digest, and a fault-free
// re-run must not.
func TestFaultFacadeSDCProbe(t *testing.T) {
	golden := smallSim(t, 1)
	gp := golden.EnableSDCProbe()
	if _, err := golden.RunBenchmark("sgemm"); err != nil {
		t.Fatal(err)
	}

	clean := smallSim(t, 1)
	cp := clean.EnableSDCProbe()
	if _, err := clean.RunBenchmark("sgemm"); err != nil {
		t.Fatal(err)
	}
	if !cp.Equal(gp) {
		t.Fatal("fault-free re-run diverged from golden")
	}

	faulty := smallSim(t, 1)
	fp := faulty.EnableSDCProbe()
	if err := faulty.EnableFaultInjection(FaultConfig{Rate: 1e-9, Seed: 19}); err != nil {
		t.Fatal(err)
	}
	res, err := faulty.RunBenchmark("sgemm")
	if err != nil {
		t.Fatalf("unprotected run errored instead of corrupting: %v", err)
	}
	if res.Stats.FaultTotals().SilentReads == 0 {
		t.Fatal("no silent reads; pick a hotter seed")
	}
	if _, diverged := fp.Diverged(gp); !diverged {
		t.Fatal("silent corruption not visible in the dataflow digest")
	}
}

// TestFaultFacadeUnrecoverableSurfaces: parity detects but cannot
// correct a stuck-at cell; retry exhaustion must surface as a typed
// *UnrecoverableFault through the facade.
func TestFaultFacadeUnrecoverableSurfaces(t *testing.T) {
	s := smallSim(t, 1)
	if err := s.EnableProtection(FullParity()); err != nil {
		t.Fatal(err)
	}
	err := s.EnableFaultInjection(FaultConfig{
		Rate: 2e-9, Seed: 17, StuckAtFrac: 1, ReadPathFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunBenchmark("sgemm")
	var ue *UnrecoverableFault
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnrecoverableFault", err)
	}
	if ue.Retries == 0 || !ue.Kind.StuckAt() {
		t.Fatalf("abort detail not populated: %+v", ue)
	}
}

// TestFaultFacadeValidation: bad configs are rejected at Enable time,
// before any run.
func TestFaultFacadeValidation(t *testing.T) {
	s := smallSim(t, 1)
	if err := s.EnableFaultInjection(FaultConfig{Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if err := s.EnableProtection(ProtectionScheme{Protection(99)}); err == nil {
		t.Error("bogus protection code accepted")
	}
}
