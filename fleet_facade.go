package pilotrf

import (
	"context"

	"pilotrf/internal/campaign"
	"pilotrf/internal/fleet"
	"pilotrf/internal/jobs"
)

// The distributed-campaign layer: a coordinator that shards
// fault-campaign cells across HTTP-registered workers under expiring
// leases, the worker loop that executes them, and the shared
// retry/backoff policy both sides run on. cmd/pilotserve -role
// coordinator|worker wires these; the facade re-exports them so library
// users can embed a fleet in their own processes. An N-worker fleet's
// report is byte-identical to a standalone run of the same spec.
type (
	// FleetCoordinator shards campaigns into leased cells over
	// registered workers, re-queues cells whose leases expire,
	// distinguishes flaky workers from poison cells, and resumes
	// completed cells from its cache after a crash.
	FleetCoordinator = fleet.Coordinator
	// FleetConfig sizes a FleetCoordinator (cache, lease TTL, poll
	// interval, exclusion and poison thresholds, metrics, logging).
	FleetConfig = fleet.Config
	// FleetRunOptions configures one coordinated campaign run
	// (progress callback, span recorder).
	FleetRunOptions = fleet.RunOptions
	// FleetWorkerConfig configures RunFleetWorker (coordinator URL,
	// local parallelism, retry policy, metrics, logging).
	FleetWorkerConfig = fleet.WorkerConfig
	// FleetHealth is the coordinator's live topology snapshot
	// (workers live/lost, leases, cells pending/re-queued/resumed).
	FleetHealth = fleet.Health
	// FleetLease is the wire message granting one campaign cell to a
	// worker.
	FleetLease = fleet.Lease
	// RetryPolicy is the shared retry/backoff helper: exponential with
	// decorrelated jitter, per-delay cap, and a total sleep budget.
	RetryPolicy = fleet.Policy
	// RetryBackoff is one retry sequence under a RetryPolicy.
	RetryBackoff = fleet.Backoff
)

// FleetWireSchema versions every fleet wire message.
const FleetWireSchema = fleet.WireSchema

// NewFleetCoordinator builds a coordinator and starts its lease
// janitor; Close it when done.
func NewFleetCoordinator(cfg FleetConfig) *FleetCoordinator { return fleet.NewCoordinator(cfg) }

// RunFleetWorker registers with a coordinator and executes leased cells
// until ctx is cancelled.
func RunFleetWorker(ctx context.Context, cfg FleetWorkerConfig) error {
	return fleet.RunWorker(ctx, cfg)
}

// NewRemoteResultCache returns a ResultCache backed by a coordinator's
// shared envelope store instead of a local directory; reads re-verify
// envelope integrity (corrupt entries degrade to misses) and writes are
// best-effort.
func NewRemoteResultCache(cfg fleet.RemoteCacheConfig) (*jobs.Cache, error) {
	return fleet.NewRemoteCache(cfg)
}

// NewCampaignPlan compiles a spec into its canonical cell enumeration —
// the sharding projection the fleet dispatches and reassembles by.
func NewCampaignPlan(spec CampaignSpec) (*campaign.Plan, error) { return campaign.NewPlan(spec) }
