module pilotrf

go 1.22
