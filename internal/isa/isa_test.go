package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegValidity(t *testing.T) {
	if !R(0).Valid() || !R(62).Valid() {
		t.Error("R0/R62 should be valid")
	}
	if RZ.Valid() || RegNone.Valid() {
		t.Error("RZ/RegNone should be invalid as allocatable registers")
	}
}

func TestRPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, MaxRegs, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%d) did not panic", n)
				}
			}()
			R(n)
		}()
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R(0): "R0", R(17): "R17", RZ: "RZ", RegNone: "-"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(r), got, want)
		}
	}
}

func TestPredValidity(t *testing.T) {
	if !P(0).Valid() || !P(6).Valid() {
		t.Error("P0/P6 should be valid")
	}
	if PT.Valid() || PredNone.Valid() {
		t.Error("PT/PredNone are not writable predicates")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("P(7) did not panic")
			}
		}()
		P(7)
	}()
}

func TestGuardString(t *testing.T) {
	if got := GuardAlways.String(); got != "" {
		t.Errorf("always guard = %q, want empty", got)
	}
	if got := (Guard{Pred: P(2)}).String(); got != "@P2 " {
		t.Errorf("guard = %q, want %q", got, "@P2 ")
	}
	if got := (Guard{Pred: P(1), Neg: true}).String(); got != "@!P1 " {
		t.Errorf("neg guard = %q, want %q", got, "@!P1 ")
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		c    CmpOp
		a, b int32
		want bool
	}{
		{CmpEQ, 3, 3, true}, {CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true}, {CmpNE, 3, 3, false},
		{CmpLT, -1, 0, true}, {CmpLT, 0, 0, false},
		{CmpLE, 0, 0, true}, {CmpLE, 1, 0, false},
		{CmpGT, 5, 4, true}, {CmpGT, 4, 5, false},
		{CmpGE, 4, 4, true}, {CmpGE, 3, 4, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestOpClasses(t *testing.T) {
	cases := map[Op]Class{
		OpIADD: ClassALU, OpSETP: ClassALU,
		OpFADD: ClassFPU, OpFFMA: ClassFPU,
		OpFRCP: ClassSFU, OpFSQRT: ClassSFU,
		OpLDG: ClassMem, OpSTS: ClassMem,
		OpBRA: ClassCtrl, OpEXIT: ClassCtrl, OpBAR: ClassCtrl,
	}
	for op, want := range cases {
		if got := op.ClassOf(); got != want {
			t.Errorf("%v.ClassOf() = %v, want %v", op, got, want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBRA.IsBranch() || OpIADD.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !OpLDG.IsMemory() || !OpSTS.IsMemory() || OpIADD.IsMemory() {
		t.Error("IsMemory wrong")
	}
	if !OpLDG.IsGlobalMemory() || !OpSTG.IsGlobalMemory() || OpLDS.IsGlobalMemory() {
		t.Error("IsGlobalMemory wrong")
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		name := op.String()
		if strings.HasPrefix(name, "OP_") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q reused by %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func validIADD() Instruction {
	return Instruction{Op: OpIADD, Guard: GuardAlways, Dst: R(0), SrcA: R(1), SrcB: R(2), SrcC: RegNone, PDst: PredNone, SrcPred: PredNone}
}

func TestInstructionAccessors(t *testing.T) {
	in := validIADD()
	srcs := in.SrcRegs(nil)
	if len(srcs) != 2 || srcs[0] != R(1) || srcs[1] != R(2) {
		t.Errorf("SrcRegs = %v", srcs)
	}
	d, ok := in.DstReg()
	if !ok || d != R(0) {
		t.Errorf("DstReg = %v, %v", d, ok)
	}
	if got := in.RegAccessCount(); got != 3 {
		t.Errorf("RegAccessCount = %d, want 3", got)
	}
}

func TestRZExcludedFromAccesses(t *testing.T) {
	in := Instruction{Op: OpIADD, Guard: GuardAlways, Dst: RZ, SrcA: R(1), SrcB: RZ, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone}
	if got := in.RegAccessCount(); got != 1 {
		t.Errorf("RegAccessCount with RZ = %d, want 1", got)
	}
	if _, ok := in.DstReg(); ok {
		t.Error("RZ destination should report absent")
	}
	if srcs := in.SrcRegs(nil); len(srcs) != 1 {
		t.Errorf("SrcRegs with RZ = %v", srcs)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	instrs := []Instruction{
		validIADD(),
		{Op: OpMOVI, Guard: GuardAlways, Dst: R(3), Imm: 7, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		{Op: OpS2R, Guard: GuardAlways, Dst: R(1), Special: SRTid, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		{Op: OpSETPI, Guard: GuardAlways, Dst: RegNone, SrcA: R(4), SrcB: RegNone, SrcC: RegNone, PDst: P(0), SrcPred: PredNone, Cmp: CmpLT, Imm: 10},
		{Op: OpBRA, Guard: Guard{Pred: P(0)}, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Target: 0, Reconv: 2},
		{Op: OpLDG, Guard: GuardAlways, Dst: R(5), SrcA: R(6), SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Imm: 16},
		{Op: OpSTG, Guard: GuardAlways, Dst: RegNone, SrcA: R(6), SrcB: R(5), SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		{Op: OpEXIT, Guard: GuardAlways, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		{Op: OpSEL, Guard: GuardAlways, Dst: R(0), SrcA: R(1), SrcB: R(2), SrcC: RegNone, PDst: PredNone, SrcPred: P(3)},
		{Op: OpIMAD, Guard: GuardAlways, Dst: R(0), SrcA: R(1), SrcB: R(2), SrcC: R(3), PDst: PredNone, SrcPred: PredNone},
	}
	for i, in := range instrs {
		if err := in.Validate(10); err != nil {
			t.Errorf("instr %d (%s): unexpected error: %v", i, in.String(), err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Instruction{
		// IADD missing a source.
		{Op: OpIADD, Guard: GuardAlways, Dst: R(0), SrcA: R(1), SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		// MOVI with a stray source register.
		{Op: OpMOVI, Guard: GuardAlways, Dst: R(0), SrcA: R(1), SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		// SETP without predicate destination.
		{Op: OpSETP, Guard: GuardAlways, Dst: RegNone, SrcA: R(1), SrcB: R(2), SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
		// SETP writing PT.
		{Op: OpSETP, Guard: GuardAlways, Dst: RegNone, SrcA: R(1), SrcB: R(2), SrcC: RegNone, PDst: PT, SrcPred: PredNone},
		// Branch outside program.
		{Op: OpBRA, Guard: GuardAlways, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Target: 99, Reconv: 0},
		// Branch with bad reconvergence point.
		{Op: OpBRA, Guard: GuardAlways, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Target: 0, Reconv: -1},
		// EXIT with a destination.
		{Op: OpEXIT, Guard: GuardAlways, Dst: R(0), SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone},
	}
	for i, in := range bad {
		if err := in.Validate(10); err == nil {
			t.Errorf("bad instr %d (%v) passed validation", i, in.Op)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{validIADD(), "IADD R0, R1, R2"},
		{Instruction{Op: OpMOVI, Guard: GuardAlways, Dst: R(3), Imm: -5, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone}, "MOVI R3, -5"},
		{Instruction{Op: OpSETPI, Guard: GuardAlways, Dst: RegNone, SrcA: R(4), SrcB: RegNone, SrcC: RegNone, PDst: P(0), SrcPred: PredNone, Cmp: CmpLT, Imm: 10}, "SETPI.LT P0, R4, 10"},
		{Instruction{Op: OpBRA, Guard: Guard{Pred: P(0), Neg: true}, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Target: 4, Reconv: 9}, "@!P0 BRA 4 (reconv 9)"},
		{Instruction{Op: OpLDG, Guard: GuardAlways, Dst: R(5), SrcA: R(6), SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Imm: 8}, "LDG R5, [R6+8]"},
		{Instruction{Op: OpSTG, Guard: GuardAlways, Dst: RegNone, SrcA: R(6), SrcB: R(5), SrcC: RegNone, PDst: PredNone, SrcPred: PredNone, Imm: 4}, "STG [R6+4], R5"},
		{Instruction{Op: OpEXIT, Guard: GuardAlways, Dst: RegNone, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone, PDst: PredNone, SrcPred: PredNone}, "EXIT"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: RegAccessCount always equals len(SrcRegs) plus the destination
// presence bit, for arbitrary operand encodings.
func TestPropertyAccessCountConsistent(t *testing.T) {
	f := func(d, a, b, c uint8) bool {
		in := Instruction{Op: OpIMAD, Guard: GuardAlways, Dst: Reg(d), SrcA: Reg(a), SrcB: Reg(b), SrcC: Reg(c), PDst: PredNone, SrcPred: PredNone}
		n := len(in.SrcRegs(nil))
		if _, ok := in.DstReg(); ok {
			n++
		}
		return n == in.RegAccessCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
