// Package isa defines the SASS-like instruction set executed by the GPU
// simulator: general-purpose registers, predicate registers, opcodes with
// functional-class metadata, and the instruction encoding shared by the
// kernel builder, the profilers, and the timing model.
//
// The ISA is deliberately a small subset of a Kepler-class machine
// language: enough to express real loops, divergent branches, memory
// traffic, and the register-reuse patterns whose statistics drive the
// Pilot Register File design, without modeling features (textures,
// surface ops, vector loads) that have no bearing on register file
// behaviour.
package isa

import "fmt"

// Reg identifies a general-purpose architected register. Each thread can be
// allocated at most MaxRegs registers (R0..R62), matching the simulated GPU
// in the paper; the encoding reserves two sentinels.
type Reg uint8

const (
	// MaxRegs is the maximum number of architected registers per thread.
	// The paper's profiling hardware provisions 63 two-byte counters for
	// exactly this reason.
	MaxRegs = 63

	// RZ reads as zero and discards writes. It is not an allocated
	// register and never counts as a register file access.
	RZ Reg = 0xFE

	// RegNone marks an unused operand slot.
	RegNone Reg = 0xFF
)

// Valid reports whether r is an allocatable architected register.
func (r Reg) Valid() bool { return r < MaxRegs }

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch r {
	case RZ:
		return "RZ"
	case RegNone:
		return "-"
	default:
		return fmt.Sprintf("R%d", uint8(r))
	}
}

// R returns the n-th general purpose register, panicking if out of range.
// It exists so kernel builders fail fast on bad register arithmetic.
func R(n int) Reg {
	if n < 0 || n >= MaxRegs {
		panic(fmt.Sprintf("isa: register R%d out of range [0,%d)", n, MaxRegs))
	}
	return Reg(n)
}

// Pred identifies a predicate register. PT is the constant-true predicate.
type Pred uint8

const (
	// NumPreds is the number of writable predicate registers (P0..P6).
	NumPreds = 7

	// PT always reads true; writes to it are discarded.
	PT Pred = 7

	// PredNone marks an instruction without a predicate destination.
	PredNone Pred = 0xFF
)

// Valid reports whether p is a writable predicate register.
func (p Pred) Valid() bool { return p < NumPreds }

// String returns the assembly name of the predicate register.
func (p Pred) String() string {
	switch p {
	case PT:
		return "PT"
	case PredNone:
		return "-"
	default:
		return fmt.Sprintf("P%d", uint8(p))
	}
}

// P returns the n-th predicate register, panicking if out of range.
func P(n int) Pred {
	if n < 0 || n >= NumPreds {
		panic(fmt.Sprintf("isa: predicate P%d out of range [0,%d)", n, NumPreds))
	}
	return Pred(n)
}

// Guard is the predicate guard on an instruction: the instruction's lanes
// execute only where the (possibly negated) predicate holds.
type Guard struct {
	Pred Pred
	Neg  bool
}

// GuardAlways executes unconditionally.
var GuardAlways = Guard{Pred: PT}

// String returns the assembly prefix for the guard ("" when always-on).
func (g Guard) String() string {
	if g.Pred == PT && !g.Neg {
		return ""
	}
	if g.Neg {
		return "@!" + g.Pred.String() + " "
	}
	return "@" + g.Pred.String() + " "
}

// Special identifies a special (read-only, hardware-supplied) value
// readable with the S2R opcode.
type Special uint8

const (
	// SRTid is the thread index within its CTA.
	SRTid Special = iota
	// SRCTAid is the CTA index within the grid.
	SRCTAid
	// SRNTid is the number of threads per CTA.
	SRNTid
	// SRNCTAid is the number of CTAs in the grid.
	SRNCTAid
	// SRLane is the lane index of the thread within its warp.
	SRLane
	// SRWarpID is the warp index of the thread within its CTA.
	SRWarpID
	numSpecials
)

// String returns the assembly name of the special register.
func (s Special) String() string {
	switch s {
	case SRTid:
		return "SR_TID"
	case SRCTAid:
		return "SR_CTAID"
	case SRNTid:
		return "SR_NTID"
	case SRNCTAid:
		return "SR_NCTAID"
	case SRLane:
		return "SR_LANE"
	case SRWarpID:
		return "SR_WARPID"
	default:
		return fmt.Sprintf("SR_%d", uint8(s))
	}
}

// CmpOp is an integer/float comparison operator for SETP.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the assembly suffix for the comparison.
func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "EQ"
	case CmpNE:
		return "NE"
	case CmpLT:
		return "LT"
	case CmpLE:
		return "LE"
	case CmpGT:
		return "GT"
	case CmpGE:
		return "GE"
	default:
		return fmt.Sprintf("CMP_%d", uint8(c))
	}
}

// MemValue is the specification of simulated memory contents: the
// deterministic value of global/shared memory at a byte address for a
// given seed. Loads inject data-dependent (but reproducible) values —
// this is what drives realistic branch divergence — while stores are
// timing/energy events whose values are never read back (workloads are
// written to avoid store-to-load dependencies). Both execution engines
// (the timed simulator and the reference interpreter) share this
// definition, so their functional behaviour can be compared exactly.
func MemValue(addr uint32, seed uint64) uint32 {
	x := uint64(addr)*0x9E3779B97F4A7C15 + seed
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return uint32(x)
}

// Eval applies the comparison to two signed 32-bit values.
func (c CmpOp) Eval(a, b int32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	default:
		panic(fmt.Sprintf("isa: unknown comparison %d", uint8(c)))
	}
}
