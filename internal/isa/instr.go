package isa

import (
	"fmt"
	"strings"
)

// Instruction is a single decoded machine instruction. Operand slots that
// an opcode does not use hold RegNone/PredNone; Validate enforces the
// per-opcode shape.
type Instruction struct {
	Op    Op
	Guard Guard // execution guard (@P / @!P)

	Dst  Reg // general-register destination, RegNone if absent
	SrcA Reg
	SrcB Reg
	SrcC Reg

	PDst    Pred    // predicate destination (SETP*), PredNone otherwise
	SrcPred Pred    // predicate source (SEL), PredNone otherwise
	Cmp     CmpOp   // comparison for SETP*
	Special Special // special register for S2R

	Imm int32 // immediate operand / address offset

	// Target is the branch destination as an instruction index within
	// the program. Reconv is the reconvergence point (immediate
	// post-dominator) used by the SIMT stack when the branch diverges.
	Target int
	Reconv int
}

// SrcRegs appends the valid general-register sources of the instruction to
// dst and returns it. RZ is excluded: it is hardwired and never reads the
// register file.
func (in *Instruction) SrcRegs(dst []Reg) []Reg {
	for _, r := range [3]Reg{in.SrcA, in.SrcB, in.SrcC} {
		if r.Valid() {
			dst = append(dst, r)
		}
	}
	return dst
}

// DstReg returns the general-register destination and whether one exists.
// Writes to RZ are discarded and reported as absent.
func (in *Instruction) DstReg() (Reg, bool) {
	if in.Dst.Valid() {
		return in.Dst, true
	}
	return RegNone, false
}

// RegAccessCount returns the number of register file accesses (reads plus
// writes) this instruction performs when all lanes execute.
func (in *Instruction) RegAccessCount() int {
	n := 0
	for _, r := range [3]Reg{in.SrcA, in.SrcB, in.SrcC} {
		if r.Valid() {
			n++
		}
	}
	if in.Dst.Valid() {
		n++
	}
	return n
}

// Validate checks that operand slots match the opcode's shape. It returns
// a descriptive error for the first violation found.
func (in *Instruction) Validate(programLen int) error {
	type shape struct {
		dst              bool
		nsrc             int
		pdst, psrc, imm  bool
		branch, special_ bool
	}
	var s shape
	switch in.Op {
	case OpNOP, OpEXIT, OpBAR:
		s = shape{}
	case OpMOV, OpFRCP, OpFSQRT, OpFEXP:
		s = shape{dst: true, nsrc: 1}
	case OpMOVI:
		s = shape{dst: true, imm: true}
	case OpS2R:
		s = shape{dst: true, special_: true}
	case OpIADD, OpISUB, OpIMUL, OpAND, OpOR, OpXOR, OpIMIN, OpIMAX, OpFADD, OpFMUL, OpSHFL:
		s = shape{dst: true, nsrc: 2}
	case OpIADDI, OpIMULI, OpANDI, OpSHLI, OpSHRI:
		s = shape{dst: true, nsrc: 1, imm: true}
	case OpIMAD, OpFFMA:
		s = shape{dst: true, nsrc: 3}
	case OpSEL:
		s = shape{dst: true, nsrc: 2, psrc: true}
	case OpSETP:
		s = shape{nsrc: 2, pdst: true}
	case OpSETPI:
		s = shape{nsrc: 1, pdst: true, imm: true}
	case OpLDG, OpLDS:
		s = shape{dst: true, nsrc: 1, imm: true}
	case OpSTG, OpSTS:
		s = shape{nsrc: 2, imm: true}
	case OpBRA:
		s = shape{branch: true}
	default:
		return fmt.Errorf("isa: unknown opcode %d", uint8(in.Op))
	}

	if s.dst != in.Dst.Valid() && !(s.dst && in.Dst == RZ) {
		return fmt.Errorf("isa: %s: destination register mismatch (got %s)", in.Op, in.Dst)
	}
	nsrc := 0
	for _, r := range [3]Reg{in.SrcA, in.SrcB, in.SrcC} {
		if r.Valid() || r == RZ {
			nsrc++
		}
	}
	if nsrc != s.nsrc {
		return fmt.Errorf("isa: %s: %d source registers, want %d", in.Op, nsrc, s.nsrc)
	}
	if s.pdst != (in.PDst != PredNone) {
		return fmt.Errorf("isa: %s: predicate destination mismatch", in.Op)
	}
	if s.psrc != (in.SrcPred != PredNone) {
		return fmt.Errorf("isa: %s: predicate source mismatch", in.Op)
	}
	if s.pdst && !in.PDst.Valid() {
		return fmt.Errorf("isa: %s: predicate destination %s not writable", in.Op, in.PDst)
	}
	if in.Guard.Pred != PT && !in.Guard.Pred.Valid() {
		return fmt.Errorf("isa: %s: invalid guard predicate %s", in.Op, in.Guard.Pred)
	}
	if s.branch {
		if in.Target < 0 || in.Target >= programLen {
			return fmt.Errorf("isa: %s: branch target %d outside program of %d instructions", in.Op, in.Target, programLen)
		}
		if in.Reconv < 0 || in.Reconv > programLen {
			return fmt.Errorf("isa: %s: reconvergence point %d outside program of %d instructions", in.Op, in.Reconv, programLen)
		}
	}
	return nil
}

// String disassembles the instruction.
func (in *Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Guard.String())
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpNOP, OpEXIT, OpBAR:
	case OpMOVI:
		fmt.Fprintf(&b, " %s, %d", in.Dst, in.Imm)
	case OpS2R:
		fmt.Fprintf(&b, " %s, %s", in.Dst, in.Special)
	case OpSETP:
		fmt.Fprintf(&b, ".%s %s, %s, %s", in.Cmp, in.PDst, in.SrcA, in.SrcB)
	case OpSETPI:
		fmt.Fprintf(&b, ".%s %s, %s, %d", in.Cmp, in.PDst, in.SrcA, in.Imm)
	case OpSEL:
		fmt.Fprintf(&b, " %s, %s, %s, %s", in.Dst, in.SrcA, in.SrcB, in.SrcPred)
	case OpLDG, OpLDS:
		fmt.Fprintf(&b, " %s, [%s+%d]", in.Dst, in.SrcA, in.Imm)
	case OpSTG, OpSTS:
		fmt.Fprintf(&b, " [%s+%d], %s", in.SrcA, in.Imm, in.SrcB)
	case OpBRA:
		fmt.Fprintf(&b, " %d (reconv %d)", in.Target, in.Reconv)
	default:
		// Generic register-operand form.
		b.WriteByte(' ')
		ops := make([]string, 0, 4)
		if in.Dst != RegNone {
			ops = append(ops, in.Dst.String())
		}
		for _, r := range [3]Reg{in.SrcA, in.SrcB, in.SrcC} {
			if r != RegNone {
				ops = append(ops, r.String())
			}
		}
		if in.Op == OpIADDI || in.Op == OpIMULI || in.Op == OpANDI || in.Op == OpSHLI || in.Op == OpSHRI {
			ops = append(ops, fmt.Sprintf("%d", in.Imm))
		}
		b.WriteString(strings.Join(ops, ", "))
	}
	return b.String()
}
