package isa

import "fmt"

// Op is an opcode.
type Op uint8

// Opcodes. Integer ALU, floating point, special function, memory, and
// control flow. The suffix I marks an immediate second operand.
const (
	OpNOP Op = iota

	// Integer ALU.
	OpMOV   // Rd = Ra
	OpMOVI  // Rd = imm
	OpS2R   // Rd = special
	OpIADD  // Rd = Ra + Rb
	OpIADDI // Rd = Ra + imm
	OpISUB  // Rd = Ra - Rb
	OpIMUL  // Rd = Ra * Rb
	OpIMULI // Rd = Ra * imm
	OpIMAD  // Rd = Ra * Rb + Rc
	OpAND   // Rd = Ra & Rb
	OpANDI  // Rd = Ra & imm
	OpOR    // Rd = Ra | Rb
	OpXOR   // Rd = Ra ^ Rb
	OpSHLI  // Rd = Ra << imm
	OpSHRI  // Rd = Ra >> imm (logical)
	OpIMIN  // Rd = min(Ra, Rb) signed
	OpIMAX  // Rd = max(Ra, Rb) signed
	OpSEL   // Rd = guard-pred? Ra : Rb (selector is SrcPred)
	OpSHFL  // Rd = Ra of lane (Rb & 31) — Kepler warp shuffle

	// Predicate setting.
	OpSETP  // Pd = Ra cmp Rb
	OpSETPI // Pd = Ra cmp imm

	// Floating point (values are float32 bit patterns in registers).
	OpFADD // Rd = Ra + Rb
	OpFMUL // Rd = Ra * Rb
	OpFFMA // Rd = Ra * Rb + Rc

	// Special function unit.
	OpFRCP  // Rd = 1 / Ra
	OpFSQRT // Rd = sqrt(Ra)
	OpFEXP  // Rd = exp2(Ra)

	// Memory. Addresses are byte addresses formed as Ra + imm.
	OpLDG // Rd = global[Ra + imm]
	OpSTG // global[Ra + imm] = Rb
	OpLDS // Rd = shared[Ra + imm]
	OpSTS // shared[Ra + imm] = Rb

	// Control flow.
	OpBRA  // branch to Target (guarded => potentially divergent)
	OpEXIT // thread terminates
	OpBAR  // CTA-wide barrier

	numOps
)

// Class groups opcodes by the execution unit that services them.
type Class uint8

// Execution unit classes.
const (
	ClassALU  Class = iota // integer / simple FP pipeline
	ClassFPU               // floating point pipeline
	ClassSFU               // special function unit
	ClassMem               // load/store unit
	ClassCtrl              // branch / barrier / exit
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "ALU"
	case ClassFPU:
		return "FPU"
	case ClassSFU:
		return "SFU"
	case ClassMem:
		return "MEM"
	case ClassCtrl:
		return "CTRL"
	default:
		return fmt.Sprintf("CLASS_%d", uint8(c))
	}
}

type opInfo struct {
	name  string
	class Class
}

var opTable = [numOps]opInfo{
	OpNOP:   {"NOP", ClassALU},
	OpMOV:   {"MOV", ClassALU},
	OpMOVI:  {"MOVI", ClassALU},
	OpS2R:   {"S2R", ClassALU},
	OpIADD:  {"IADD", ClassALU},
	OpIADDI: {"IADDI", ClassALU},
	OpISUB:  {"ISUB", ClassALU},
	OpIMUL:  {"IMUL", ClassALU},
	OpIMULI: {"IMULI", ClassALU},
	OpIMAD:  {"IMAD", ClassALU},
	OpAND:   {"AND", ClassALU},
	OpANDI:  {"ANDI", ClassALU},
	OpOR:    {"OR", ClassALU},
	OpXOR:   {"XOR", ClassALU},
	OpSHLI:  {"SHLI", ClassALU},
	OpSHRI:  {"SHRI", ClassALU},
	OpIMIN:  {"IMIN", ClassALU},
	OpIMAX:  {"IMAX", ClassALU},
	OpSEL:   {"SEL", ClassALU},
	OpSHFL:  {"SHFL", ClassALU},
	OpSETP:  {"SETP", ClassALU},
	OpSETPI: {"SETPI", ClassALU},
	OpFADD:  {"FADD", ClassFPU},
	OpFMUL:  {"FMUL", ClassFPU},
	OpFFMA:  {"FFMA", ClassFPU},
	OpFRCP:  {"FRCP", ClassSFU},
	OpFSQRT: {"FSQRT", ClassSFU},
	OpFEXP:  {"FEXP", ClassSFU},
	OpLDG:   {"LDG", ClassMem},
	OpSTG:   {"STG", ClassMem},
	OpLDS:   {"LDS", ClassMem},
	OpSTS:   {"STS", ClassMem},
	OpBRA:   {"BRA", ClassCtrl},
	OpEXIT:  {"EXIT", ClassCtrl},
	OpBAR:   {"BAR", ClassCtrl},
}

// OpByName returns the opcode with the given mnemonic.
func OpByName(name string) (Op, bool) {
	for op := Op(0); op < numOps; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return 0, false
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("OP_%d", uint8(o))
}

// ClassOf returns the execution unit class of the opcode.
func (o Op) ClassOf() Class {
	if int(o) >= len(opTable) {
		panic(fmt.Sprintf("isa: unknown opcode %d", uint8(o)))
	}
	return opTable[o].class
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool { return o == OpBRA }

// IsMemory reports whether the opcode accesses memory.
func (o Op) IsMemory() bool { return o.ClassOf() == ClassMem }

// IsGlobalMemory reports whether the opcode accesses global (long-latency)
// memory.
func (o Op) IsGlobalMemory() bool { return o == OpLDG || o == OpSTG }
