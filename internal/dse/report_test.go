package dse

import (
	"bytes"
	"strings"
	"testing"
)

// validReport builds a well-formed two-point report for the reader and
// round-trip tests.
func validReport() *Report {
	return &Report{
		Schema:    Schema,
		Scale:     0.05,
		SMs:       1,
		Workloads: []string{"sgemm", "backprop"},
		Baseline:  "mrf-stv/default",
		Points: []Point{
			{
				Scheme: "mrf-stv", Knobs: "default", Base: "MRF@STV",
				Cycles: 1000, WarpInstrs: 800, IPC: 0.8, TotalAccesses: 2400,
				DynamicPJ: 12600, LeakagePJ: 37555.6, TotalPJ: 50155.6,
				NormEnergy: 1, NormCycles: 1, Pareto: true,
			},
			{
				Scheme: "part-adaptive", Knobs: "default", Base: "Partitioned+AdaptiveFRF",
				Cycles: 1100, WarpInstrs: 800, IPC: 0.727, TotalAccesses: 2400,
				DynamicPJ: 9800, LeakagePJ: 20000, TotalPJ: 29800,
				NormEnergy: 0.594, NormCycles: 1.1, Pareto: true,
			},
		},
	}
}

// mustWrite renders a report to bytes or fails the test.
func mustWrite(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadRoundTripStable(t *testing.T) {
	b1 := mustWrite(t, validReport())
	rep, err := Read(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	b2 := mustWrite(t, rep)
	if !bytes.Equal(b1, b2) {
		t.Errorf("write -> read -> write is not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
}

// TestReadRejections is the satellite acceptance list: wrong schema,
// non-finite and negative energy, duplicate grid points, and assorted
// malformed shapes must all fail to read.
func TestReadRejections(t *testing.T) {
	corrupt := func(mutate func(*Report)) string {
		r := validReport()
		mutate(r)
		var buf bytes.Buffer
		if err := Write(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "EOF"},
		{"not json", "pilot", "invalid"},
		{"wrong schema", corrupt(func(r *Report) { r.Schema = "pilotrf-dse/v0" }), "schema"},
		{"missing schema", corrupt(func(r *Report) { r.Schema = "" }), "schema"},
		{"unknown field", strings.Replace(corrupt(func(*Report) {}), `"scale"`, `"scale2"`, 1), "unknown field"},
		{"nan energy", strings.Replace(corrupt(func(*Report) {}), `"dynamic_pj": 12600`, `"dynamic_pj": NaN`, 1), "invalid"},
		{"negative energy", corrupt(func(r *Report) { r.Points[0].DynamicPJ = -1 }), "dynamic_pj"},
		{"negative leakage", corrupt(func(r *Report) { r.Points[1].LeakagePJ = -0.5 }), "leakage_pj"},
		{"negative norm", corrupt(func(r *Report) { r.Points[1].NormEnergy = -2 }), "norm_energy"},
		{"zero cycles", corrupt(func(r *Report) { r.Points[0].Cycles = 0 }), "cycles"},
		{"nameless point", corrupt(func(r *Report) { r.Points[0].Scheme = "" }), "no scheme"},
		{"duplicate grid point", corrupt(func(r *Report) { r.Points[1] = r.Points[0] }), "duplicate"},
		{"bad scale", corrupt(func(r *Report) { r.Scale = 0 }), "scale"},
		{"bad sms", corrupt(func(r *Report) { r.SMs = -1 }), "SMs"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: Read accepted a malformed report", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestMarkParetoFrontier(t *testing.T) {
	pts := []Point{
		{Scheme: "a", Knobs: "default", TotalPJ: 100, Cycles: 1000}, // frontier: fastest
		{Scheme: "b", Knobs: "default", TotalPJ: 60, Cycles: 1200},  // frontier: tradeoff
		{Scheme: "c", Knobs: "default", TotalPJ: 40, Cycles: 1500},  // frontier: cheapest
		{Scheme: "d", Knobs: "default", TotalPJ: 70, Cycles: 1300},  // dominated by b
		{Scheme: "e", Knobs: "default", TotalPJ: 100, Cycles: 1001}, // dominated by a
	}
	MarkPareto(pts)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": false, "e": false}
	for _, p := range pts {
		if p.Pareto != want[p.Scheme] {
			t.Errorf("%s: pareto = %v, want %v", p.Scheme, p.Pareto, want[p.Scheme])
		}
	}

	fr := Frontier(pts)
	if len(fr) != 3 {
		t.Fatalf("frontier has %d points, want 3", len(fr))
	}
	for i := 1; i < len(fr); i++ {
		if fr[i].TotalPJ < fr[i-1].TotalPJ {
			t.Errorf("frontier not sorted by energy: %v before %v", fr[i-1].TotalPJ, fr[i].TotalPJ)
		}
	}
}

// TestMarkParetoTies: identical points dominate nothing and both stay
// on the frontier.
func TestMarkParetoTies(t *testing.T) {
	pts := []Point{
		{Scheme: "a", TotalPJ: 50, Cycles: 100},
		{Scheme: "b", TotalPJ: 50, Cycles: 100},
	}
	MarkPareto(pts)
	if !pts[0].Pareto || !pts[1].Pareto {
		t.Errorf("tied points lost frontier membership: %v %v", pts[0].Pareto, pts[1].Pareto)
	}
}

func TestWriteCSVShape(t *testing.T) {
	r := validReport()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(r.Points) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(r.Points))
	}
	if !strings.HasPrefix(lines[0], "scheme,knobs,base,cycles,ipc") {
		t.Errorf("CSV header = %q", lines[0])
	}
	wantFields := strings.Count(lines[0], ",")
	for i, line := range lines[1:] {
		if got := strings.Count(line, ","); got != wantFields {
			t.Errorf("CSV row %d has %d separators, want %d", i, got, wantFields)
		}
	}
}

func TestWriteTableMarksFrontier(t *testing.T) {
	r := validReport()
	r.Points[1].Pareto = false
	var buf bytes.Buffer
	if err := WriteTable(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(r.Points) {
		t.Fatalf("table has %d lines, want %d", len(lines), 1+len(r.Points))
	}
	if !strings.HasSuffix(strings.TrimRight(lines[1], " "), "*") {
		t.Errorf("frontier row not starred: %q", lines[1])
	}
	if strings.HasSuffix(strings.TrimRight(lines[2], " "), "*") {
		t.Errorf("dominated row starred: %q", lines[2])
	}
}

// FuzzReadDSEReport asserts the reader never panics on arbitrary bytes,
// and that any report it accepts survives a write -> read -> write
// round trip byte-identically (the canonical-form property).
func FuzzReadDSEReport(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, (&Report{Schema: Schema, Scale: 1, SMs: 1})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	r := validReport()
	buf.Reset()
	if err := Write(&buf, r); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"schema":"pilotrf-dse/v1"}`))
	f.Add([]byte(`{"schema":"pilotrf-dse/v1","scale":1e309}`))
	f.Add([]byte(`{"schema":"bogus"}`))
	f.Add([]byte("{"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := Write(&w1, rep); err != nil {
			t.Fatalf("accepted report fails to write: %v", err)
		}
		rep2, err := Read(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("written report fails to re-read: %v", err)
		}
		var w2 bytes.Buffer
		if err := Write(&w2, rep2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Errorf("write -> read -> write unstable:\n%s\nvs\n%s", w1.Bytes(), w2.Bytes())
		}
	})
}
