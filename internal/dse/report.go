// Package dse is the design-space-exploration layer: it sweeps every
// registered register-file design scheme (internal/design) across its
// knob grid and the Table I workload pool, prices each grid point with
// the scheme's own energy model, and reports the energy-vs-performance
// Pareto frontier.
//
// The on-disk artifact is a versioned JSON report ("pilotrf-dse/v1")
// written canonically — same sweep, same bytes, whatever the worker
// count — with a validating reader that rejects malformed files
// (wrong schema, non-finite or negative energy, duplicate grid
// points) instead of propagating them into downstream analysis.
package dse

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Schema is the versioned format marker every DSE report carries.
// Readers reject anything else, so the format can evolve without
// silently misparsing old files.
const Schema = "pilotrf-dse/v1"

// Point is one evaluated grid cell: a scheme at one knob setting, run
// over the whole workload list, with summed timing and the scheme's
// energy pricing of that aggregate run.
type Point struct {
	// Scheme is the design scheme's registry name (e.g. "part-adaptive").
	Scheme string `json:"scheme"`
	// Knobs is the knob setting's canonical label ("default" or
	// "size=4,vdd=ntv"); (Scheme, Knobs) uniquely identifies a point.
	Knobs string `json:"knobs"`
	// Base names the underlying regfile design the scheme resolves to.
	Base string `json:"base"`
	// Cycles is the simulated cycle total summed over the workloads.
	Cycles int64 `json:"cycles"`
	// WarpInstrs is the warp-instruction total summed over the workloads.
	WarpInstrs uint64 `json:"warp_instrs"`
	// IPC is warp instructions per cycle over the whole sweep.
	IPC float64 `json:"ipc"`
	// TotalAccesses is the register-file access total.
	TotalAccesses uint64 `json:"total_accesses"`
	// DynamicPJ is the scheme-priced dynamic energy in picojoules.
	DynamicPJ float64 `json:"dynamic_pj"`
	// LeakagePJ is the scheme-priced leakage energy in picojoules.
	LeakagePJ float64 `json:"leakage_pj"`
	// TotalPJ is DynamicPJ + LeakagePJ.
	TotalPJ float64 `json:"total_pj"`
	// NormEnergy is TotalPJ relative to the report's baseline point.
	NormEnergy float64 `json:"norm_energy"`
	// NormCycles is Cycles relative to the report's baseline point.
	NormCycles float64 `json:"norm_cycles"`
	// Pareto marks the point as on the energy-vs-performance frontier:
	// no other point has both lower-or-equal energy and lower-or-equal
	// cycles with at least one strictly lower.
	Pareto bool `json:"pareto"`
}

// Report is one complete design-space sweep. Points appear in
// canonical order: schemes in registry order, each scheme's knob grid
// in Grid() order.
type Report struct {
	// Schema is always the package Schema constant.
	Schema string `json:"schema"`
	// Scale is the workload CTA scale factor the sweep ran at.
	Scale float64 `json:"scale"`
	// SMs is the simulated SM count.
	SMs int `json:"sms"`
	// Workloads lists the swept workload names in run order.
	Workloads []string `json:"workloads"`
	// Baseline is the "scheme/knobs" label normalization divides by.
	Baseline string `json:"baseline"`
	// Points are the evaluated grid cells in canonical order.
	Points []Point `json:"points"`
}

// Write emits the report canonically: two-space indented JSON with a
// trailing newline. Byte-identical input produces byte-identical
// output, which is what the cmd/dse determinism tests compare.
func Write(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Read parses and validates a pilotrf-dse/v1 report. It rejects wrong
// or missing schema markers, unknown fields, non-finite or negative
// energy figures, non-positive cycle counts, and duplicate
// (scheme, knobs) grid points — a file that reads back successfully is
// safe to chart without further checking.
func Read(r io.Reader) (*Report, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("dse: schema %q, want %q", rep.Schema, Schema)
	}
	if math.IsNaN(rep.Scale) || math.IsInf(rep.Scale, 0) || rep.Scale <= 0 {
		return nil, fmt.Errorf("dse: scale %v out of range", rep.Scale)
	}
	if rep.SMs <= 0 {
		return nil, fmt.Errorf("dse: %d SMs", rep.SMs)
	}
	seen := make(map[string]bool, len(rep.Points))
	for i, p := range rep.Points {
		if p.Scheme == "" {
			return nil, fmt.Errorf("dse: point %d has no scheme", i)
		}
		key := p.Scheme + "/" + p.Knobs
		if seen[key] {
			return nil, fmt.Errorf("dse: duplicate grid point %s", key)
		}
		seen[key] = true
		if p.Cycles <= 0 {
			return nil, fmt.Errorf("dse: point %s has %d cycles", key, p.Cycles)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"dynamic_pj", p.DynamicPJ}, {"leakage_pj", p.LeakagePJ},
			{"total_pj", p.TotalPJ}, {"norm_energy", p.NormEnergy},
			{"norm_cycles", p.NormCycles}, {"ipc", p.IPC},
		} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				return nil, fmt.Errorf("dse: point %s has %s = %v", key, v.name, v.val)
			}
		}
	}
	return &rep, nil
}

// MarkPareto sets each point's Pareto flag: a point is on the frontier
// when no other point dominates it (lower-or-equal total energy AND
// lower-or-equal cycles, at least one strictly lower). Ties survive:
// two identical points are both frontier members.
func MarkPareto(points []Point) {
	for i := range points {
		points[i].Pareto = true
		for j := range points {
			if i == j {
				continue
			}
			a, b := &points[i], &points[j]
			if b.TotalPJ <= a.TotalPJ && b.Cycles <= a.Cycles &&
				(b.TotalPJ < a.TotalPJ || b.Cycles < a.Cycles) {
				points[i].Pareto = false
				break
			}
		}
	}
}

// Frontier returns the Pareto-marked points sorted by ascending total
// energy (ties broken by cycles, then scheme/knobs label, so the order
// is deterministic).
func Frontier(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalPJ != out[j].TotalPJ {
			return out[i].TotalPJ < out[j].TotalPJ
		}
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles < out[j].Cycles
		}
		return out[i].Scheme+"/"+out[i].Knobs < out[j].Scheme+"/"+out[j].Knobs
	})
	return out
}

// WriteCSV emits every point as one CSV row (with a pareto column) so
// the sweep charts directly in any plotting tool.
func WriteCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scheme", "knobs", "base", "cycles", "ipc", "total_accesses",
		"dynamic_pj", "leakage_pj", "total_pj", "norm_energy", "norm_cycles", "pareto",
	}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			p.Scheme, p.Knobs, p.Base,
			strconv.FormatInt(p.Cycles, 10),
			strconv.FormatFloat(p.IPC, 'g', -1, 64),
			strconv.FormatUint(p.TotalAccesses, 10),
			strconv.FormatFloat(p.DynamicPJ, 'g', -1, 64),
			strconv.FormatFloat(p.LeakagePJ, 'g', -1, 64),
			strconv.FormatFloat(p.TotalPJ, 'g', -1, 64),
			strconv.FormatFloat(p.NormEnergy, 'g', -1, 64),
			strconv.FormatFloat(p.NormCycles, 'g', -1, 64),
			strconv.FormatBool(p.Pareto),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable renders the sweep as a human-readable table, frontier
// points starred, sorted in canonical point order.
func WriteTable(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintf(w, "  %-14s %-18s %8s %7s %10s %8s %8s  %s\n",
		"scheme", "knobs", "cycles", "ipc", "energy(uJ)", "E/base", "cyc/base", "pareto"); err != nil {
		return err
	}
	for _, p := range r.Points {
		star := ""
		if p.Pareto {
			star = "*"
		}
		if _, err := fmt.Fprintf(w, "  %-14s %-18s %8d %7.3f %10.2f %8.3f %8.3f  %s\n",
			p.Scheme, p.Knobs, p.Cycles, p.IPC, p.TotalPJ/1e6,
			p.NormEnergy, p.NormCycles, star); err != nil {
			return err
		}
	}
	return nil
}
