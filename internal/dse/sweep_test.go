package dse

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pilotrf/internal/design"
)

// sweepOpts is the small-but-real sweep the determinism tests run: two
// schemes, two workloads, heavily scaled down.
func sweepOpts(workers int) Options {
	return Options{
		Schemes:   []string{"mrf-stv", "part-adaptive"},
		Workloads: []string{"sgemm", "backprop"},
		Scale:     0.02,
		SMs:       1,
		Workers:   workers,
		Replay:    true,
	}
}

// TestSweepByteIdenticalAcrossWorkers is the acceptance property: the
// report bytes must not depend on the worker count.
func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		rep, err := Sweep(context.Background(), sweepOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("-parallel 1 and -parallel 8 reports differ:\n%s\nvs\n%s", seq, par)
	}
}

// TestSweepReportShape checks the swept report end to end: canonical
// point order, a validated read-back, sane normalization against the
// mrf-stv baseline, and at least one frontier point.
func TestSweepReportShape(t *testing.T) {
	rep, err := Sweep(context.Background(), sweepOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("swept report fails its own reader: %v", err)
	}
	if back.Baseline != "mrf-stv/default" {
		t.Errorf("baseline = %q, want mrf-stv/default", back.Baseline)
	}
	// Registry order: every mrf-stv point precedes every part-adaptive
	// point, and grid points within a scheme keep Grid() order.
	lastMRF, firstPart := -1, len(back.Points)
	for i, p := range back.Points {
		switch p.Scheme {
		case "mrf-stv":
			lastMRF = i
		case "part-adaptive":
			if i < firstPart {
				firstPart = i
			}
		default:
			t.Errorf("unexpected scheme %q in filtered sweep", p.Scheme)
		}
	}
	if lastMRF > firstPart {
		t.Errorf("points not in registry order: mrf-stv at %d after part-adaptive at %d", lastMRF, firstPart)
	}
	sch := design.MustLookup("part-adaptive")
	wantPoints := len(sch.Grid()) + len(design.MustLookup("mrf-stv").Grid())
	if len(back.Points) != wantPoints {
		t.Errorf("%d points, want %d (the two schemes' grids)", len(back.Points), wantPoints)
	}
	var frontier int
	for _, p := range back.Points {
		if p.Pareto {
			frontier++
		}
		if p.TotalPJ <= 0 || p.Cycles <= 0 || p.IPC <= 0 {
			t.Errorf("%s/%s: degenerate point %+v", p.Scheme, p.Knobs, p)
		}
	}
	if frontier == 0 {
		t.Error("no Pareto frontier points marked")
	}
	for _, p := range back.Points {
		if p.Scheme == "mrf-stv" && p.Knobs == "default" {
			if p.NormEnergy != 1 || p.NormCycles != 1 {
				t.Errorf("baseline normalization = %v/%v, want 1/1", p.NormEnergy, p.NormCycles)
			}
		}
	}
}

func TestSweepUnknownSchemeRejected(t *testing.T) {
	opts := sweepOpts(1)
	opts.Schemes = []string{"mrf-stv", "bogus"}
	_, err := Sweep(context.Background(), opts)
	if err == nil {
		t.Fatal("sweep accepted an unknown scheme")
	}
	if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "mrf-stv") {
		t.Errorf("error %q does not name the bad scheme and the valid list", err)
	}
}

func TestSweepUnknownWorkloadRejected(t *testing.T) {
	opts := sweepOpts(1)
	opts.Workloads = []string{"sgemm", "nonesuch"}
	if _, err := Sweep(context.Background(), opts); err == nil {
		t.Fatal("sweep accepted an unknown workload")
	}
}
