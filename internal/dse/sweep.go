package dse

import (
	"bytes"
	"context"
	"fmt"

	"pilotrf/internal/design"
	"pilotrf/internal/energy"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/jobs"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

// BaselineScheme is the normalization reference: the mrf-stv scheme at
// default knobs, the paper's performance baseline. When a sweep
// excludes it, the first swept point becomes the baseline instead.
const BaselineScheme = "mrf-stv"

// Options configures a sweep.
type Options struct {
	// Schemes are the design scheme names to sweep (registry order is
	// preserved regardless of the order given here). Empty sweeps every
	// registered scheme.
	Schemes []string
	// Workloads are the benchmark names to run (run order is the order
	// given). Empty sweeps the whole Table I pool.
	Workloads []string
	// Scale is the workload CTA scale factor (0 = 1.0, full size).
	Scale float64
	// SMs is the simulated SM count (0 = 1).
	SMs int
	// Workers is the parallel worker count (0 = one per core). The
	// report is byte-identical at any worker count.
	Workers int
	// Replay, when true, additionally records each default-knob point's
	// first workload and replays it against the recording — the
	// flight-recorder determinism check, applied to every scheme.
	Replay bool
}

// cell is one (point, workload) simulation result.
type cell struct {
	run        design.Run
	warpInstrs uint64
}

// pointSpec is one grid cell to evaluate: a scheme at one knob setting.
type pointSpec struct {
	scheme design.Scheme
	knobs  design.Knobs
}

// Sweep runs the full scheme-by-knob-by-workload grid on a
// work-stealing pool and returns the priced, normalized,
// Pareto-marked report. Tasks merge in canonical submission order, so
// the report bytes do not depend on Workers.
func Sweep(ctx context.Context, opts Options) (*Report, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.SMs <= 0 {
		opts.SMs = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = jobs.DefaultWorkers()
	}

	specs, err := resolveSchemes(opts.Schemes)
	if err != nil {
		return nil, err
	}
	pool, err := resolveWorkloads(opts.Workloads, opts.Scale)
	if err != nil {
		return nil, err
	}

	p, err := jobs.New(jobs.Config{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	// One task per (point, workload) cell; jobs.Map returns results in
	// submission order, which is the canonical (point-major) order the
	// report aggregates in.
	n := len(specs) * len(pool)
	results, err := jobs.Map(ctx, p, n, func(ctx context.Context, i int) (interface{}, error) {
		spec := specs[i/len(pool)]
		w := pool[i%len(pool)]
		replay := opts.Replay && i%len(pool) == 0 && spec.knobs == (design.Knobs{})
		return runCell(spec, w, opts.SMs, replay)
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Schema: Schema,
		Scale:  opts.Scale,
		SMs:    opts.SMs,
	}
	for _, w := range pool {
		rep.Workloads = append(rep.Workloads, w.Name)
	}
	for pi, spec := range specs {
		var agg design.Run
		var instrs uint64
		for wi := range pool {
			c := results[pi*len(pool)+wi].(cell)
			for part, acc := range c.run.PartAccesses {
				agg.PartAccesses[part] += acc
			}
			agg.Cycles += c.run.Cycles
			agg.TotalAccesses += c.run.TotalAccesses
			agg.RFC.Add(c.run.RFC)
			agg.Gating.Add(c.run.Gating)
			instrs += c.warpInstrs
		}
		bd := spec.scheme.Energy(spec.knobs, agg)
		pt := Point{
			Scheme:        spec.scheme.Name(),
			Knobs:         spec.knobs.String(),
			Base:          spec.scheme.Base(spec.knobs).String(),
			Cycles:        agg.Cycles,
			WarpInstrs:    instrs,
			TotalAccesses: agg.TotalAccesses,
			DynamicPJ:     bd.DynamicPJ,
			LeakagePJ:     bd.LeakagePJ,
			TotalPJ:       bd.TotalPJ(),
		}
		if agg.Cycles > 0 {
			pt.IPC = float64(instrs) / float64(agg.Cycles)
		}
		rep.Points = append(rep.Points, pt)
	}

	normalize(rep)
	MarkPareto(rep.Points)
	return rep, nil
}

// resolveSchemes expands the name filter into the grid of point specs,
// in registry order with each scheme's Grid() order, validating every
// knob setting.
func resolveSchemes(names []string) ([]pointSpec, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := design.Lookup(n); !ok {
			return nil, fmt.Errorf("dse: unknown scheme %q (valid: %v)", n, design.SortedNames())
		}
		want[n] = true
	}
	var specs []pointSpec
	for _, sch := range design.All() {
		if len(want) > 0 && !want[sch.Name()] {
			continue
		}
		for _, k := range sch.Grid() {
			if err := sch.Validate(k); err != nil {
				return nil, fmt.Errorf("dse: %s grid: %w", sch.Name(), err)
			}
			specs = append(specs, pointSpec{scheme: sch, knobs: k})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("dse: no schemes selected")
	}
	return specs, nil
}

// resolveWorkloads expands the benchmark name filter (empty = the whole
// Table I pool), applying the CTA scale factor.
func resolveWorkloads(names []string, scale float64) ([]workloads.Workload, error) {
	var pool []workloads.Workload
	if len(names) == 0 {
		pool = workloads.All()
	} else {
		for _, n := range names {
			w, err := workloads.ByName(n)
			if err != nil {
				return nil, fmt.Errorf("dse: %w", err)
			}
			pool = append(pool, w)
		}
	}
	for i := range pool {
		pool[i] = pool[i].Scale(scale)
	}
	return pool, nil
}

// runCell simulates one workload under one grid point with the energy
// ledger attached, verifies ledger conservation, and (optionally)
// replays the run against its own flight recording.
func runCell(spec pointSpec, w workloads.Workload, sms int, replay bool) (cell, error) {
	label := fmt.Sprintf("%s/%s/%s", spec.scheme.Name(), spec.knobs, w.Name)
	cfg, err := sim.DefaultConfig().WithScheme(spec.scheme, spec.knobs)
	if err != nil {
		return cell{}, fmt.Errorf("dse: %s: %w", label, err)
	}
	cfg.NumSMs = sms
	led := energy.NewLedger(spec.scheme.Base(spec.knobs), 0)
	cfg.Energy = led
	var rec *flightrec.Recorder
	if replay {
		rec = sim.NewFlightRecorder(&cfg, label, 0)
		cfg.Record = rec
	}
	g, err := sim.New(cfg)
	if err != nil {
		return cell{}, fmt.Errorf("dse: %s: %w", label, err)
	}
	rs, err := g.RunKernels(w.Name, w.Kernels)
	if err != nil {
		return cell{}, fmt.Errorf("dse: %s: %w", label, err)
	}
	if err := led.CheckConservation(rs.PartAccesses(), rs.TotalCycles()); err != nil {
		return cell{}, fmt.Errorf("dse: %s: energy conservation: %w", label, err)
	}
	if rec != nil {
		if err := replayCheck(cfg, rec, w); err != nil {
			return cell{}, fmt.Errorf("dse: %s: %w", label, err)
		}
	}
	c := cell{run: rs.DesignRun()}
	for i := range rs.Kernels {
		c.warpInstrs += rs.Kernels[i].WarpInstrs
	}
	return c, nil
}

// replayCheck re-runs the workload against the recorded event stream
// and fails on any divergence — the determinism property every scheme
// must uphold.
func replayCheck(cfg sim.Config, rec *flightrec.Recorder, w workloads.Workload) error {
	// Round-trip through NDJSON so the replay also covers the recording
	// codec, not just the in-memory log.
	var buf bytes.Buffer
	if err := rec.Log().WriteNDJSON(&buf); err != nil {
		return err
	}
	log, err := flightrec.ReadNDJSON(&buf)
	if err != nil {
		return err
	}
	chk := flightrec.NewChecker(log)
	cfg.Energy = nil
	cfg.Record = chk
	g, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if _, err := g.RunKernels(w.Name, w.Kernels); err != nil {
		return err
	}
	if err := chk.Err(); err != nil {
		return fmt.Errorf("replay diverged: %w", err)
	}
	return nil
}

// normalize fills Baseline, NormEnergy, and NormCycles: the reference
// is mrf-stv at default knobs when swept, else the first point.
func normalize(rep *Report) {
	base := &rep.Points[0]
	for i := range rep.Points {
		if rep.Points[i].Scheme == BaselineScheme && rep.Points[i].Knobs == (design.Knobs{}).String() {
			base = &rep.Points[i]
			break
		}
	}
	rep.Baseline = base.Scheme + "/" + base.Knobs
	bpj, bcyc := base.TotalPJ, base.Cycles
	for i := range rep.Points {
		if bpj > 0 {
			rep.Points[i].NormEnergy = rep.Points[i].TotalPJ / bpj
		}
		if bcyc > 0 {
			rep.Points[i].NormCycles = float64(rep.Points[i].Cycles) / float64(bcyc)
		}
	}
}
