package benchstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/benchjson"
)

func testHost() Host {
	return Host{GOOS: "linux", GOARCH: "amd64", NumCPU: 4, GoVersion: "go1.24.0"}
}

func testRecord(label string, t int64) Record {
	return Record{
		Label:    label,
		Commit:   "abc123",
		TimeUnix: t,
		Host:     testHost(),
		Benchmarks: []BenchmarkSamples{
			{Name: "BenchmarkB", NsPerOp: []float64{200, 210}, Metrics: map[string]float64{"cycles": 9000}},
			{Name: "BenchmarkA", NsPerOp: []float64{100, 110}, Metrics: map[string]float64{"saving-pct": 53.7, "Mcycles/s": 0.15}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	h := History{Records: []Record{testRecord("PR2", 100), testRecord("PR3", 200)}}
	var buf bytes.Buffer
	if err := WriteHistory(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistory(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, buf.String())
	}
	if len(back.Records) != 2 {
		t.Fatalf("got %d records", len(back.Records))
	}
	// Canonical: benchmarks sorted by name.
	if got := back.Records[0].Benchmarks[0].Name; got != "BenchmarkA" {
		t.Errorf("first benchmark = %q, want BenchmarkA (canonical order)", got)
	}
	// Write→read→write is byte-stable.
	var buf2 bytes.Buffer
	if err := WriteHistory(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("round trip not byte-stable")
	}
	if r, ok := back.ByLabel("PR3"); !ok || r.TimeUnix != 200 {
		t.Errorf("ByLabel(PR3) = %+v, %v", r, ok)
	}
	if got := back.Records[0].Samples(); got != 2 {
		t.Errorf("Samples() = %d, want 2", got)
	}
}

// valid returns the serialized form of a small valid history to mutate.
func valid(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHistory(&buf, History{Records: []Record{testRecord("PR2", 100)}}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestReadRejections(t *testing.T) {
	base := valid(t)
	lines := strings.SplitAfter(strings.TrimSuffix(base, "\n"), "\n")
	recordLine := lines[len(lines)-1]

	cases := map[string]struct {
		input   string
		wantSub string
	}{
		"empty":            {"", "missing"},
		"wrong schema":     {`{"schema":"pilotrf-bench/v1"}` + "\n", "schema"},
		"truncated record": {lines[0] + recordLine[:len(recordLine)/2], "line 2"},
		"bad json":         {lines[0] + "{nope\n", "line 2"},
		"empty label":      {lines[0] + strings.Replace(recordLine, `"label":"PR2"`, `"label":""`, 1), "empty label"},
		"negative sample":  {lines[0] + strings.Replace(recordLine, "[100,110]", "[100,-110]", 1), "non-negative"},
		"negative time":    {lines[0] + strings.Replace(recordLine, `"time_unix":100`, `"time_unix":-5`, 1), "time_unix"},
		"duplicate label":  {base + recordLine, "duplicate run label"},
		"no benchmarks":    {lines[0] + `{"label":"x","time_unix":1,"host":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},"benchmarks":[]}` + "\n", "no benchmarks"},
		"ragged samples": {lines[0] + `{"label":"x","time_unix":1,"host":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},` +
			`"benchmarks":[{"name":"A","ns_per_op":[1,2]},{"name":"B","ns_per_op":[1]}]}` + "\n", "samples"},
		"dup benchmark": {lines[0] + `{"label":"x","time_unix":1,"host":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},` +
			`"benchmarks":[{"name":"A","ns_per_op":[1]},{"name":"A","ns_per_op":[2]}]}` + "\n", "duplicate benchmark"},
		"bad host": {lines[0] + `{"label":"x","time_unix":1,"host":{"goos":"","goarch":"a","num_cpu":1,"go_version":"g"},` +
			`"benchmarks":[{"name":"A","ns_per_op":[1]}]}` + "\n", "host"},
		"nan metric": {lines[0] + `{"label":"x","time_unix":1,"host":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},` +
			`"benchmarks":[{"name":"A","ns_per_op":[1],"metrics":{"m":1e999}}]}` + "\n", "metric"},
	}
	for name, tc := range cases {
		_, err := ReadHistory(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantSub)
		}
	}
}

func TestAppendRecordFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	if err := AppendRecordFile(path, testRecord("PR2", 100)); err != nil {
		t.Fatal(err)
	}
	if err := AppendRecordFile(path, testRecord("PR3", 200)); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHistoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Labels(); len(got) != 2 || got[0] != "PR2" || got[1] != "PR3" {
		t.Fatalf("labels = %v", got)
	}

	// Appending a duplicate label must fail and leave the file intact.
	before, _ := os.ReadFile(path)
	if err := AppendRecordFile(path, testRecord("PR2", 300)); err == nil {
		t.Fatal("duplicate label append accepted")
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Error("failed append modified the file")
	}

	// Appending to a corrupt history must refuse.
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(bad, []byte("{nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendRecordFile(bad, testRecord("PR2", 1)); err == nil {
		t.Fatal("append to corrupt history accepted")
	}

	// Append must produce the same bytes as a canonical whole-file write.
	var canon bytes.Buffer
	if err := WriteHistory(&canon, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, canon.Bytes()) {
		t.Errorf("appended file differs from canonical write:\n%s\nvs\n%s", before, canon.Bytes())
	}
}

func TestAppendValidatesRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	bad := testRecord("PR2", 100)
	bad.Benchmarks[0].NsPerOp = []float64{-1, 2}
	if err := AppendRecordFile(path, bad); err == nil {
		t.Fatal("negative sample accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed append created the file")
	}
}

func bench(name string, ns float64, metrics map[string]float64) benchjson.Benchmark {
	return benchjson.Benchmark{Name: name, Procs: 1, Iterations: 1, NsPerOp: ns, Metrics: metrics}
}

func TestMergeSamples(t *testing.T) {
	runs := [][]benchjson.Benchmark{
		{bench("BenchmarkA", 100, map[string]float64{"cycles": 500, "Mcycles/s": 0.15})},
		{bench("BenchmarkA", 140, map[string]float64{"cycles": 500, "Mcycles/s": 0.11})},
		{bench("BenchmarkA", 120, map[string]float64{"cycles": 500, "Mcycles/s": 0.13})},
	}
	rec, err := MergeSamples("PR8", "deadbeef", 42, testHost(), runs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	b := rec.Benchmarks[0]
	if want := []float64{100, 140, 120}; len(b.NsPerOp) != 3 || b.NsPerOp[0] != want[0] || b.NsPerOp[1] != want[1] || b.NsPerOp[2] != want[2] {
		t.Errorf("ns/op vector = %v, want %v", b.NsPerOp, want)
	}
	// Rate metric keeps the first sample's value; deterministic one is kept.
	if b.Metrics["Mcycles/s"] != 0.15 || b.Metrics["cycles"] != 500 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

func TestMergeSamplesDetectsMetricVariance(t *testing.T) {
	runs := [][]benchjson.Benchmark{
		{bench("BenchmarkA", 100, map[string]float64{"cycles": 500})},
		{bench("BenchmarkA", 110, map[string]float64{"cycles": 501})},
	}
	_, err := MergeSamples("PR8", "", 0, testHost(), runs)
	var ve *VarianceError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want VarianceError", err)
	}
	if ve.Benchmark != "BenchmarkA" || ve.Metric != "cycles" {
		t.Errorf("variance = %+v", ve)
	}
	if !strings.Contains(ve.Error(), "500 vs 501") {
		t.Errorf("message %q lacks values", ve.Error())
	}
}

func TestMergeSamplesDetectsSetVariance(t *testing.T) {
	// Missing benchmark in sample 2.
	_, err := MergeSamples("x", "", 0, testHost(), [][]benchjson.Benchmark{
		{bench("BenchmarkA", 1, nil), bench("BenchmarkB", 2, nil)},
		{bench("BenchmarkA", 1, nil)},
	})
	if err == nil {
		t.Error("missing benchmark accepted")
	}
	// Extra benchmark in sample 2.
	_, err = MergeSamples("x", "", 0, testHost(), [][]benchjson.Benchmark{
		{bench("BenchmarkA", 1, nil)},
		{bench("BenchmarkA", 1, nil), bench("BenchmarkB", 2, nil)},
	})
	if err == nil {
		t.Error("extra benchmark accepted")
	}
	// Metric appearing only in sample 2.
	_, err = MergeSamples("x", "", 0, testHost(), [][]benchjson.Benchmark{
		{bench("BenchmarkA", 1, nil)},
		{bench("BenchmarkA", 1, map[string]float64{"cycles": 5})},
	})
	if err == nil {
		t.Error("gained metric accepted")
	}
	// Metric disappearing in sample 2.
	_, err = MergeSamples("x", "", 0, testHost(), [][]benchjson.Benchmark{
		{bench("BenchmarkA", 1, map[string]float64{"cycles": 5})},
		{bench("BenchmarkA", 1, nil)},
	})
	if err == nil {
		t.Error("lost metric accepted")
	}
	// Duplicate names within one sample.
	_, err = MergeSamples("x", "", 0, testHost(), [][]benchjson.Benchmark{
		{bench("BenchmarkA", 1, nil), bench("BenchmarkA", 2, nil)},
	})
	if err == nil {
		t.Error("duplicate benchmark accepted")
	}
	if _, err := MergeSamples("x", "", 0, testHost(), nil); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestImportReport(t *testing.T) {
	rep := benchjson.NewReport("go test -bench .", []benchjson.Benchmark{
		bench("BenchmarkB", 200, map[string]float64{"cycles": 9000}),
		bench("BenchmarkA", 100, map[string]float64{"saving-pct": 53.7}),
	})
	rec, err := ImportReport("PR2", "daa2021", 1785891015, testHost(), "import:BENCH_PR2.json", rep)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Source != "import:BENCH_PR2.json" || rec.Samples() != 1 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Label != "PR2" || rec.Commit != "daa2021" || rec.TimeUnix != 1785891015 {
		t.Errorf("identity fields = %+v", rec)
	}
	// Importing a report with duplicate names must fail.
	dup := benchjson.NewReport("x", []benchjson.Benchmark{
		bench("BenchmarkA", 1, nil), bench("BenchmarkA", 2, nil),
	})
	if _, err := ImportReport("PR3", "", 0, testHost(), "import:x", dup); err == nil {
		t.Error("duplicate-name import accepted")
	}
}

// TestImportCommittedSnapshots: every committed BENCH_*.json snapshot
// must import cleanly — the backfill the PR8 history is built from.
func TestImportCommittedSnapshots(t *testing.T) {
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed snapshots found: %v", err)
	}
	h := History{}
	for i, path := range matches {
		rep, err := benchjson.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		rec, err := ImportReport(filepath.Base(path), "", int64(i), testHost(), "import:"+filepath.Base(path), rep)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		h.Records = append(h.Records, rec)
	}
	var buf bytes.Buffer
	if err := WriteHistory(&buf, h); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}
