package benchstore

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadHistory asserts the pilotrf-benchhistory/v1 reader never
// panics on arbitrary input, and that anything it accepts survives a
// write→read→write round trip byte-identically (the canonicalization
// property benchwatch gate/report reproducibility relies on).
func FuzzReadHistory(f *testing.F) {
	f.Add(`{"schema":"pilotrf-benchhistory/v1"}` + "\n")
	f.Add(`{"schema":"pilotrf-benchhistory/v1"}` + "\n" +
		`{"label":"PR2","commit":"abc","time_unix":100,"host":{"goos":"linux","goarch":"amd64","num_cpu":4,"go_version":"go1.24.0"},` +
		`"benchmarks":[{"name":"BenchmarkA","ns_per_op":[100,110],"metrics":{"cycles":500}}]}` + "\n")
	f.Add(`{"schema":"pilotrf-benchhistory/v1"}` + "\n" +
		`{"label":"a","time_unix":1,"host":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},"benchmarks":[{"name":"B","ns_per_op":[1]}]}` + "\n" +
		`{"label":"b","time_unix":2,"host":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},"benchmarks":[{"name":"B","ns_per_op":[2]}]}` + "\n")
	f.Add(`{"schema":"pilotrf-benchhistory/v0"}` + "\n")
	f.Add(`{"label":"no-header"}` + "\n")
	f.Add("{nope\n")
	f.Add(`{"schema":"pilotrf-benchhistory/v1"}` + "\n" + `{"label":"x","benchmarks":[{"name":"A","ns_per_op":[-1]}]}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadHistory(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteHistory(&buf, h); err != nil {
			t.Fatalf("accepted history failed to write: %v", err)
		}
		back, err := ReadHistory(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("rewrite unreadable: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteHistory(&buf2, back); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("round trip not stable")
		}
	})
}
