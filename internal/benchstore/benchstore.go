// Package benchstore is the append-only performance history of the
// simulator itself: every recorded benchmark run becomes one NDJSON
// line in a pilotrf-benchhistory/v1 file, carrying the run label and
// commit, a host fingerprint, an injected timestamp, and — per
// benchmark — the full ns/op sample vector plus the deterministic
// metric map.
//
// The format follows the repo's other versioned NDJSON artifacts
// (flightrec, trace spans): a schema header line first, one record per
// line after it, a validating reader that returns structured errors and
// never panics, and a canonical writer whose output is byte-stable so
// diffs and gates are reproducible.
//
// Timestamps are injected by the caller, never read from the wall
// clock here: given fixed history bytes, everything downstream
// (cmd/benchwatch gate and report) is a pure function.
package benchstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
)

// Schema identifies the history format this package reads and writes.
const Schema = "pilotrf-benchhistory/v1"

// header is the first NDJSON line, carrying only the schema tag.
type header struct {
	Schema string `json:"schema"`
}

// Host fingerprints the machine a run was recorded on. Wall-clock
// numbers are only comparable within one fingerprint; gates refuse to
// pretend otherwise silently.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// CurrentHost fingerprints the running machine.
func CurrentHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Equal reports whether two fingerprints describe the same environment.
func (h Host) Equal(o Host) bool { return h == o }

// String renders the fingerprint as "GOOS/GOARCH cpu=N goversion".
func (h Host) String() string {
	return fmt.Sprintf("%s/%s cpu=%d %s", h.GOOS, h.GOARCH, h.NumCPU, h.GoVersion)
}

// BenchmarkSamples is one benchmark's results across every sample of a
// run: the wall-clock vector, and the deterministic metrics that are
// required to be bit-identical across samples (variance in them is a
// recording violation, so a record stores one map, not one per sample).
type BenchmarkSamples struct {
	Name string `json:"name"`
	// NsPerOp holds one wall-clock measurement per sample, in
	// recording order.
	NsPerOp []float64 `json:"ns_per_op"`
	// Metrics holds the deterministic b.ReportMetric values. Rate
	// metrics (unit suffix "/s") are wall-clock in disguise and are
	// treated as informational by gates, same as cmd/benchdiff.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is one recorded run: the full bench suite, sampled one or
// more times.
type Record struct {
	// Label names the run, e.g. "PR8". Labels are unique within a
	// history file; gates address runs by label.
	Label string `json:"label"`
	// Commit is the git revision the run was built from, when known.
	Commit string `json:"commit,omitempty"`
	// TimeUnix is the caller-injected recording time (Unix seconds).
	TimeUnix int64 `json:"time_unix"`
	// Host fingerprints the recording machine.
	Host Host `json:"host"`
	// Source notes provenance for backfilled records (e.g.
	// "import:BENCH_PR2.json"); empty for live recordings.
	Source string `json:"source,omitempty"`
	// Benchmarks are the per-benchmark sample sets, sorted by name by
	// the canonical writer.
	Benchmarks []BenchmarkSamples `json:"benchmarks"`
}

// Samples returns the number of ns/op samples in the record (every
// benchmark has the same count; Validate enforces it).
func (r Record) Samples() int {
	if len(r.Benchmarks) == 0 {
		return 0
	}
	return len(r.Benchmarks[0].NsPerOp)
}

// History is a parsed history file, records in file order.
type History struct {
	Records []Record
}

// ByLabel finds a record by its run label.
func (h History) ByLabel(label string) (Record, bool) {
	for _, r := range h.Records {
		if r.Label == label {
			return r, true
		}
	}
	return Record{}, false
}

// Labels returns the run labels in file (i.e. append) order.
func (h History) Labels() []string {
	out := make([]string, len(h.Records))
	for i, r := range h.Records {
		out[i] = r.Label
	}
	return out
}

// Validate checks the structural invariants of a single record.
func (r *Record) Validate() error {
	if r.Label == "" {
		return fmt.Errorf("record has empty label")
	}
	if r.TimeUnix < 0 {
		return fmt.Errorf("record %q: negative time_unix %d", r.Label, r.TimeUnix)
	}
	if r.Host.GOOS == "" || r.Host.GOARCH == "" || r.Host.GoVersion == "" || r.Host.NumCPU < 1 {
		return fmt.Errorf("record %q: incomplete host fingerprint %+v", r.Label, r.Host)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("record %q: no benchmarks", r.Label)
	}
	samples := len(r.Benchmarks[0].NsPerOp)
	seen := make(map[string]bool, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("record %q: benchmark with empty name", r.Label)
		}
		if seen[b.Name] {
			return fmt.Errorf("record %q: duplicate benchmark %q", r.Label, b.Name)
		}
		seen[b.Name] = true
		if len(b.NsPerOp) == 0 {
			return fmt.Errorf("record %q: benchmark %q has no samples", r.Label, b.Name)
		}
		if len(b.NsPerOp) != samples {
			return fmt.Errorf("record %q: benchmark %q has %d samples, others have %d",
				r.Label, b.Name, len(b.NsPerOp), samples)
		}
		for i, v := range b.NsPerOp {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("record %q: benchmark %q sample %d is %v (want finite, non-negative)",
					r.Label, b.Name, i, v)
			}
		}
		for k, v := range b.Metrics {
			if k == "" {
				return fmt.Errorf("record %q: benchmark %q has a metric with empty key", r.Label, b.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("record %q: benchmark %q metric %q is %v (want finite)",
					r.Label, b.Name, k, v)
			}
		}
	}
	return nil
}

// canonicalize sorts the record's benchmarks by name so the writer's
// output is byte-stable regardless of input order.
func (r *Record) canonicalize() {
	sort.Slice(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
}

// ReadHistory parses a pilotrf-benchhistory/v1 NDJSON stream,
// validating the schema header, every record, and run-label uniqueness.
// It returns a structured error naming the offending line — never
// panics — and tolerates blank lines.
func ReadHistory(r io.Reader) (History, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	sawHeader := false
	var h History
	labels := map[string]int{} // label -> first line
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !sawHeader {
			var hd header
			if err := json.Unmarshal(raw, &hd); err != nil {
				return History{}, fmt.Errorf("benchstore: line %d: bad header: %w", line, err)
			}
			if hd.Schema != Schema {
				return History{}, fmt.Errorf("benchstore: line %d: schema %q, want %q", line, hd.Schema, Schema)
			}
			sawHeader = true
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return History{}, fmt.Errorf("benchstore: line %d: %w", line, err)
		}
		if err := rec.Validate(); err != nil {
			return History{}, fmt.Errorf("benchstore: line %d: %v", line, err)
		}
		if prev, ok := labels[rec.Label]; ok {
			return History{}, fmt.Errorf("benchstore: line %d: duplicate run label %q (first on line %d)",
				line, rec.Label, prev)
		}
		labels[rec.Label] = line
		h.Records = append(h.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return History{}, fmt.Errorf("benchstore: read: %w", err)
	}
	if !sawHeader {
		return History{}, fmt.Errorf("benchstore: missing %s header", Schema)
	}
	return h, nil
}

// ReadHistoryFile reads and validates a history file.
func ReadHistoryFile(path string) (History, error) {
	f, err := os.Open(path)
	if err != nil {
		return History{}, err
	}
	defer f.Close()
	h, err := ReadHistory(f)
	if err != nil {
		return History{}, fmt.Errorf("%s: %w", path, err)
	}
	return h, nil
}

// WriteHistory writes the canonical form: schema header, then one
// record per line with benchmarks sorted by name. Records must already
// validate; map keys are sorted by encoding/json, so identical
// histories always serialize to identical bytes.
func WriteHistory(w io.Writer, h History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: Schema}); err != nil {
		return err
	}
	seen := map[string]bool{}
	for i := range h.Records {
		rec := h.Records[i] // copy so canonicalize cannot reorder the caller's slice header
		rec.Benchmarks = append([]BenchmarkSamples(nil), rec.Benchmarks...)
		rec.canonicalize()
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("benchstore: record %d: %v", i, err)
		}
		if seen[rec.Label] {
			return fmt.Errorf("benchstore: record %d: duplicate run label %q", i, rec.Label)
		}
		seen[rec.Label] = true
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteHistoryFile writes the canonical history to path, creating or
// truncating it.
func WriteHistoryFile(path string, h History) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteHistory(f, h); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AppendRecordFile appends one record to the history at path, creating
// the file (with its schema header) when absent. The existing file is
// fully read and validated first — an append never lands on top of a
// corrupt history or a duplicate label — and the new line is written in
// canonical form.
func AppendRecordFile(path string, rec Record) error {
	rec.Benchmarks = append([]BenchmarkSamples(nil), rec.Benchmarks...)
	rec.canonicalize()
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("benchstore: %v", err)
	}

	existing := History{}
	if _, err := os.Stat(path); err == nil {
		existing, err = ReadHistoryFile(path)
		if err != nil {
			return fmt.Errorf("benchstore: refusing to append to invalid history: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if _, dup := existing.ByLabel(rec.Label); dup {
		return fmt.Errorf("benchstore: %s: run label %q already recorded", path, rec.Label)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if len(existing.Records) == 0 {
		if err := enc.Encode(header{Schema: Schema}); err != nil {
			f.Close()
			return err
		}
	}
	if err := enc.Encode(&rec); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
