package benchstore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pilotrf/internal/benchjson"
)

// VarianceError reports deterministic-metric variance across samples of
// one run. The simulator is deterministic; two samples of the same
// build disagreeing on a non-wall-clock metric means the metric (or the
// simulator) is broken, so recording treats it as a violation rather
// than averaging the disagreement away.
type VarianceError struct {
	Benchmark string
	Metric    string
	// Values holds the distinct values observed, in sample order.
	Values []float64
}

// Error lists the distinct values, e.g. "500 vs 501".
func (e *VarianceError) Error() string {
	parts := make([]string, len(e.Values))
	for i, v := range e.Values {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("benchstore: deterministic metric %q of %s varies across samples: %s",
		e.Metric, e.Benchmark, strings.Join(parts, " vs "))
}

// Informational reports whether a metric measures wall-clock rather
// than simulated behavior (per-second rates like Mcycles/s). Same rule
// as cmd/benchdiff: such metrics are never gated and never required to
// be stable across samples.
func Informational(key string) bool {
	return strings.HasSuffix(key, "/s")
}

// MergeSamples folds N parsed harness runs of the same build into one
// Record. Every sample must contain the same benchmark set (a missing
// or extra benchmark is structural variance), and every deterministic
// metric must be bit-identical across samples — rate metrics keep the
// first sample's value and are exempt. ns/op values are collected into
// per-benchmark sample vectors in run order.
func MergeSamples(label, commit string, timeUnix int64, host Host, runs [][]benchjson.Benchmark) (Record, error) {
	if len(runs) == 0 {
		return Record{}, fmt.Errorf("benchstore: no samples to merge")
	}
	first, err := benchjson.Index(benchjson.Report{Benchmarks: runs[0]})
	if err != nil {
		return Record{}, fmt.Errorf("benchstore: sample 1: %w", err)
	}
	names := make([]string, 0, len(first))
	for n := range first {
		names = append(names, n)
	}
	sort.Strings(names)

	byName := make(map[string]*BenchmarkSamples, len(names))
	rec := Record{
		Label:      label,
		Commit:     commit,
		TimeUnix:   timeUnix,
		Host:       host,
		Benchmarks: make([]BenchmarkSamples, 0, len(names)),
	}
	for _, n := range names {
		b := first[n]
		metrics := make(map[string]float64, len(b.Metrics))
		for k, v := range b.Metrics {
			metrics[k] = v
		}
		rec.Benchmarks = append(rec.Benchmarks, BenchmarkSamples{
			Name:    n,
			NsPerOp: []float64{b.NsPerOp},
			Metrics: metrics,
		})
		byName[n] = &rec.Benchmarks[len(rec.Benchmarks)-1]
	}

	for si, run := range runs[1:] {
		idx, err := benchjson.Index(benchjson.Report{Benchmarks: run})
		if err != nil {
			return Record{}, fmt.Errorf("benchstore: sample %d: %w", si+2, err)
		}
		if len(idx) != len(first) {
			return Record{}, fmt.Errorf("benchstore: sample %d has %d benchmarks, sample 1 has %d",
				si+2, len(idx), len(first))
		}
		for _, n := range names {
			b, ok := idx[n]
			if !ok {
				return Record{}, fmt.Errorf("benchstore: sample %d is missing benchmark %q", si+2, n)
			}
			dst := byName[n]
			dst.NsPerOp = append(dst.NsPerOp, b.NsPerOp)
			for k, v := range b.Metrics {
				prev, ok := dst.Metrics[k]
				if !ok {
					return Record{}, fmt.Errorf("benchstore: sample %d: benchmark %q gained metric %q absent from sample 1",
						si+2, n, k)
				}
				if Informational(k) {
					continue
				}
				if math.Float64bits(v) != math.Float64bits(prev) {
					return Record{}, &VarianceError{Benchmark: n, Metric: k, Values: []float64{prev, v}}
				}
			}
			for k := range dst.Metrics {
				if _, ok := b.Metrics[k]; !ok {
					return Record{}, fmt.Errorf("benchstore: sample %d: benchmark %q lost metric %q",
						si+2, n, k)
				}
			}
		}
	}
	return rec, nil
}

// ImportReport backfills one committed pilotrf-bench/v1 snapshot (e.g.
// BENCH_PR2.json) as a single-sample history record. The snapshot
// format predates sample vectors, so each benchmark imports with a
// one-element ns/op vector; source records the provenance.
func ImportReport(label, commit string, timeUnix int64, host Host, source string, rep benchjson.Report) (Record, error) {
	idx, err := benchjson.Index(rep)
	if err != nil {
		return Record{}, fmt.Errorf("benchstore: import %s: %w", source, err)
	}
	runs := make([]benchjson.Benchmark, 0, len(idx))
	for _, b := range rep.Benchmarks {
		runs = append(runs, b)
	}
	rec, err := MergeSamples(label, commit, timeUnix, host, [][]benchjson.Benchmark{runs})
	if err != nil {
		return Record{}, err
	}
	rec.Source = source
	return rec, nil
}
