package experiments

import "testing"

func TestFRFSizeSweepShape(t *testing.T) {
	pts := FRFSizeSweep(testRunner())
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// FRF share grows monotonically with the partition size...
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgFRFShare < pts[i-1].AvgFRFShare-0.01 {
			t.Errorf("FRF share not monotone: %d regs %.2f -> %d regs %.2f",
				pts[i-1].FRFRegs, pts[i-1].AvgFRFShare, pts[i].FRFRegs, pts[i].AvgFRFShare)
		}
	}
	// ...and the paper's design point (4) already captures most of the
	// attainable share: the step from 4 to 8 registers is much smaller
	// than the step from 2 to 4.
	var p2, p4, p8 FRFSizePoint
	for _, p := range pts {
		switch p.FRFRegs {
		case 2:
			p2 = p
		case 4:
			p4 = p
		case 8:
			p8 = p
		}
	}
	if gain48 := p8.AvgFRFShare - p4.AvgFRFShare; gain48 >= p4.AvgFRFShare-p2.AvgFRFShare {
		t.Errorf("capture did not saturate: 2->4 gained %.2f, 4->8 gained %.2f",
			p4.AvgFRFShare-p2.AvgFRFShare, gain48)
	}
	// Capacities: n regs x 64 warps x 128 B.
	if p4.FRFSizeKB != 32 {
		t.Errorf("4-register FRF = %g KB, want 32", p4.FRFSizeKB)
	}
	// Every point should save energy and stay within a modest slowdown.
	for _, p := range pts {
		if p.AvgSavings < 0.3 {
			t.Errorf("%d regs: saving %.2f too low", p.FRFRegs, p.AvgSavings)
		}
		if p.GeoSlowdown > 1.15 {
			t.Errorf("%d regs: slowdown %.3f too high", p.FRFRegs, p.GeoSlowdown)
		}
	}
}

func TestForwardingAblationReducesLatencySensitivity(t *testing.T) {
	pts := ForwardingAblation(waveRunner())
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	noFwd, fwd := pts[0], pts[1]
	if noFwd.Forwarding || !fwd.Forwarding {
		t.Fatal("points out of order")
	}
	// Forwarding must reduce both overheads...
	if fwd.GeoNTV >= noFwd.GeoNTV {
		t.Errorf("forwarding did not reduce the NTV overhead: %.3f vs %.3f", fwd.GeoNTV, noFwd.GeoNTV)
	}
	if fwd.GeoHybrid >= noFwd.GeoHybrid+0.001 {
		t.Errorf("forwarding did not reduce the partitioned overhead: %.3f vs %.3f", fwd.GeoHybrid, noFwd.GeoHybrid)
	}
	// ...moving the NTV overhead toward the paper's 7.1% (bank write
	// occupancy still delays reads, so it does not get all the way).
	if fwd.GeoNTV > 1.12 {
		t.Errorf("NTV overhead with forwarding = %.3f, want reduced toward the paper's 1.071", fwd.GeoNTV)
	}
}

func TestScorecardCalibratedAllPass(t *testing.T) {
	rows := Scorecard(waveRunner())
	if len(rows) < 18 {
		t.Fatalf("scorecard has %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Kind == Calibrated && !row.Pass {
			t.Errorf("calibrated anchor missed: %s", row)
		}
	}
	// The measured rows are the shape targets; the large majority must
	// land inside their (already generous) bands.
	var measured, pass int
	for _, row := range rows {
		if row.Kind != Measured {
			continue
		}
		measured++
		if row.Pass {
			pass++
		}
	}
	if pass < measured-2 {
		t.Errorf("only %d/%d measured rows within tolerance:\n%s", pass, measured, ScorecardText(rows))
	}
}

func TestPilotChoiceInsensitive(t *testing.T) {
	pts := PilotChoiceSensitivity(testRunner())
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	lo, hi := pts[0].AvgFRFShare, pts[0].AvgFRFShare
	for _, p := range pts {
		if p.AvgFRFShare < lo {
			lo = p.AvgFRFShare
		}
		if p.AvgFRFShare > hi {
			hi = p.AvgFRFShare
		}
	}
	if hi-lo > 0.03 {
		t.Errorf("pilot choice swings FRF capture by %.3f; the paper says any warp works", hi-lo)
	}
}

func TestRegisterGatingExtension(t *testing.T) {
	rows := RegisterGatingExtension(testRunner())
	if len(rows) != 17 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Occupancy <= 0 || r.Occupancy > 1 {
			t.Errorf("%s: occupancy %.2f out of range", r.Benchmark, r.Occupancy)
		}
		if r.GatedMW >= r.PartitionedMW {
			t.Errorf("%s: gating did not reduce leakage (%.2f vs %.2f)", r.Benchmark, r.GatedMW, r.PartitionedMW)
		}
		if r.GatedSavings <= r.SavingsPct {
			t.Errorf("%s: gated savings %.1f%% not above partitioned %.1f%%", r.Benchmark, r.GatedSavings, r.SavingsPct)
		}
	}
}

func TestProfilingTechniqueAblation(t *testing.T) {
	rows := ProfilingTechniqueAblation(testRunner())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TechniqueEnergyRow{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	// Hybrid captures at least as much as every other technique.
	hybrid := byName["hybrid"]
	for name, r := range byName {
		if r.AvgFRFShare > hybrid.AvgFRFShare+0.03 {
			t.Errorf("%s FRF share %.2f beats hybrid %.2f", name, r.AvgFRFShare, hybrid.AvgFRFShare)
		}
	}
	// Static-first-N is the weakest capture.
	if byName["static-first-n"].AvgFRFShare >= byName["pilot"].AvgFRFShare {
		t.Error("static-first-n should capture less than pilot profiling")
	}
}
