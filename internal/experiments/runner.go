// Package experiments reproduces every table and figure of the paper's
// evaluation: each exported function regenerates one artifact from the
// simulator, the workload suite, and the circuit models, returning typed
// rows that cmd/experiments and the benchmark harness print.
//
// The paper-vs-measured comparison for each experiment is recorded in
// EXPERIMENTS.md at the repository root.
package experiments

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"pilotrf/internal/isa"
	"pilotrf/internal/jobs"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/stats"
	"pilotrf/internal/trace"
	"pilotrf/internal/workloads"
)

// Runner executes workloads under experiment configurations, caching runs
// so experiments that share a configuration (for example Table I and
// Figure 10, which both need the hybrid partitioned run) pay for it once.
// The cache is safe for concurrent use: Warm fills it from all CPU cores;
// duplicate in-flight requests for the same key wait rather than re-run.
type Runner struct {
	// Scale multiplies workload CTA counts (1.0 = the tuned default).
	Scale float64
	// SMs is the simulated SM count (2 = the tuned default).
	SMs int
	// Workers is the worker count Warm uses for its jobs.Pool
	// (<= 0 selects one per core). Results are identical for any
	// value — the pool merges deterministically and every run is
	// independent — so this only trades wall-clock for cores.
	Workers int
	// Trace, when non-nil, records Warm's execution as a span tree:
	// one experiments.warm root, one warm.run span per (workload,
	// configuration) pair, plus the pool's per-task spans. Span ids
	// derive from the warm grid, not scheduling, so the tree shape is
	// identical at any Workers.
	Trace *trace.Recorder

	mu       sync.Mutex
	cache    map[string]sim.RunStats
	inflight map[string]chan struct{}
}

// NewRunner returns a runner at the given workload scale and SM count.
// Scale <= 0 selects 1.0; SMs <= 0 selects 2.
func NewRunner(scale float64, sms int) *Runner {
	if scale <= 0 {
		scale = 1
	}
	if sms <= 0 {
		sms = 2
	}
	return &Runner{
		Scale:    scale,
		SMs:      sms,
		cache:    make(map[string]sim.RunStats),
		inflight: make(map[string]chan struct{}),
	}
}

// baseConfig is the starting configuration for every experiment run.
func (r *Runner) baseConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = r.SMs
	return cfg
}

// run executes a workload under cfg, caching by (workload, key). When
// another goroutine is already computing the same key, run waits for it
// instead of duplicating the simulation.
func (r *Runner) run(w workloads.Workload, cfg sim.Config, key string) sim.RunStats {
	ck := w.Name + "|" + key
	for {
		r.mu.Lock()
		if rs, ok := r.cache[ck]; ok {
			r.mu.Unlock()
			return rs
		}
		if wait, busy := r.inflight[ck]; busy {
			r.mu.Unlock()
			<-wait
			continue
		}
		done := make(chan struct{})
		r.inflight[ck] = done
		r.mu.Unlock()

		g, err := sim.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		rs, err := g.RunKernels(w.Name, w.Scale(r.Scale).Kernels)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", w.Name, err))
		}
		r.mu.Lock()
		r.cache[ck] = rs
		delete(r.inflight, ck)
		r.mu.Unlock()
		close(done)
		return rs
	}
}

// Warm fills the cache for the configurations the standard experiment set
// reads, running them on a work-stealing jobs.Pool with Workers workers
// (one per core by default). Experiments afterwards hit the cache;
// results are identical to sequential execution (every run is
// deterministic and independent).
func (r *Runner) Warm() {
	type job struct {
		cfg func() sim.Config
		key string
	}
	warmJobs := []job{
		{func() sim.Config { return r.baseConfig().WithDesign(regfile.DesignMonolithicSTV) }, "base-stv-gto"},
		{func() sim.Config { return r.baseConfig().WithDesign(regfile.DesignMonolithicNTV) }, "base-ntv-gto"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			c.Profiling = profile.TechniqueHybrid
			return c
		}, "part-adaptive-hybrid-gto"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignPartitioned)
			c.Profiling = profile.TechniqueCompiler
			return c
		}, "part-compiler"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignPartitioned)
			c.Profiling = profile.TechniquePilot
			return c
		}, "part-pilot"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
			c.Policy = sim.PolicyTL
			return c
		}, "base-stv-tl"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
			c.Policy = sim.PolicyLRR
			return c
		}, "base-stv-lrr"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			c.Profiling = profile.TechniqueCompiler
			return c
		}, "part-adaptive-compiler"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			c.Policy = sim.PolicyTL
			return c
		}, "part-adaptive-hybrid-tl"},
		{func() sim.Config {
			c := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			c.Policy = sim.PolicyLRR
			return c
		}, "part-adaptive-hybrid-lrr"},
	}
	workers := r.Workers
	if workers <= 0 {
		workers = jobs.DefaultWorkers()
	}
	pool, err := jobs.New(jobs.Config{Workers: workers})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer pool.Close()
	all := workloads.All()
	ctx := context.Background()
	var root *trace.ActiveSpan
	if r.Trace != nil {
		root = r.Trace.Root("experiments.warm", trace.TraceID("pilotrf-experiments", "warm"))
		root.SetAttr("workloads", strconv.Itoa(len(all)))
		root.SetAttr("configs", strconv.Itoa(len(warmJobs)))
		defer root.End()
		ctx = trace.NewContext(ctx, root.Context())
	}
	sc := trace.FromContext(ctx)
	if _, err := jobs.Map(ctx, pool, len(all)*len(warmJobs),
		func(ctx context.Context, i int) (interface{}, error) {
			w := all[i/len(warmJobs)]
			j := warmJobs[i%len(warmJobs)]
			if sc.Active() {
				sp := sc.Start("warm.run", w.Name, j.key)
				sp.SetAttr("workload", w.Name)
				sp.SetAttr("config", j.key)
				defer sp.End()
			}
			r.run(w, j.cfg(), j.key)
			return nil, nil
		}); err != nil {
		// r.run panics on simulator errors; the pool converts those to
		// task errors, and Warm restores the historical fail-fast.
		panic(fmt.Sprintf("experiments: warm: %v", err))
	}
}

// runPerKernelOracle runs a workload under the oracle technique, giving
// each kernel its own measured top-N register set (multi-kernel workloads
// have disjoint hot sets, so a single oracle list would be wrong).
func (r *Runner) runPerKernelOracle(w workloads.Workload, cfg sim.Config, topN int) sim.RunStats {
	ck := w.Name + "|oracle"
	r.mu.Lock()
	if rs, ok := r.cache[ck]; ok {
		r.mu.Unlock()
		return rs
	}
	r.mu.Unlock()
	base := r.baselineRun(w)
	scaled := w.Scale(r.Scale)
	out := sim.RunStats{Workload: w.Name}
	for ki := range scaled.Kernels {
		oracle := topRegsOf(base.Kernels[ki].RegHist.TopN(topN))
		kcfg := cfg
		kcfg.Profiling = profile.TechniqueOracle
		kcfg.Oracle = oracle
		g, err := sim.New(kcfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		ks, err := g.RunKernel(&scaled.Kernels[ki])
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", w.Name, err))
		}
		out.Kernels = append(out.Kernels, ks)
	}
	r.mu.Lock()
	r.cache[ck] = out
	r.mu.Unlock()
	return out
}

// baselineRun is the MRF@STV GTO run every normalization uses.
func (r *Runner) baselineRun(w workloads.Workload) sim.RunStats {
	cfg := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
	return r.run(w, cfg, "base-stv-gto")
}

func topRegsOf(kvs []stats.KV) []isa.Reg {
	out := make([]isa.Reg, len(kvs))
	for i, kv := range kvs {
		out[i] = isa.Reg(kv.Key)
	}
	return out
}
