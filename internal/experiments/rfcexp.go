package experiments

import (
	"fmt"

	"pilotrf/internal/energy"
	"pilotrf/internal/fincacti"
	"pilotrf/internal/finfet"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
	"pilotrf/internal/sim"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// Figure13Config is one scaling configuration of the RFC-vs-partitioned
// comparison: (schedulers/SM, RFC banks, active warps, MRF voltage).
type Figure13Config struct {
	Schedulers  int
	RFCBanks    int
	ActiveWarps int
	MRFVddSTV   bool // false = NTV (the fair-comparison default)
}

// Label renders the paper's "(s, banks, warps, region)" caption.
func (c Figure13Config) Label() string {
	region := "NTV"
	if c.MRFVddSTV {
		region = "STV"
	}
	return fmt.Sprintf("(%d,%d,%d,%s)", c.Schedulers, c.RFCBanks, c.ActiveWarps, region)
}

// Figure13Configs returns the paper's four scaling configurations.
func Figure13Configs() []Figure13Config {
	return []Figure13Config{
		{Schedulers: 1, RFCBanks: 8, ActiveWarps: 8},
		{Schedulers: 2, RFCBanks: 16, ActiveWarps: 16},
		{Schedulers: 4, RFCBanks: 24, ActiveWarps: 32},
		{Schedulers: 4, RFCBanks: 24, ActiveWarps: 32, MRFVddSTV: true},
	}
}

// Figure13Row is one configuration's outcome, averaged over the suite.
type Figure13Row struct {
	Config Figure13Config
	// RFCSizeKB is the cache capacity (grows with active warps).
	RFCSizeKB float64
	// Dynamic energy normalized to MRF@STV (lower is better).
	RFCEnergy         float64
	PartitionedEnergy float64
	// Execution time normalized to the MRF@STV baseline with the same
	// scheduler configuration.
	RFCSlowdown         float64
	PartitionedSlowdown float64
	// RFCHitRate is the suite-average read hit rate.
	RFCHitRate float64
}

// Figure13 reproduces Figure 13: how the RFC and the partitioned RF scale
// as the SM's issue width and active warp pool grow. The RFC's energy
// advantage erodes (hit rate falls, write/flush traffic grows) while the
// partitioned RF's savings are structural; with the backing MRF at STV
// the RFC barely saves anything.
func Figure13(r *Runner) []Figure13Row {
	var rows []Figure13Row
	for _, fc := range Figure13Configs() {
		rows = append(rows, figure13One(r, fc))
	}
	return rows
}

func figure13One(r *Runner, fc Figure13Config) Figure13Row {
	mrfVdd := finfet.NTV
	mrfDesign := regfile.DesignMonolithicNTV
	if fc.MRFVddSTV {
		mrfVdd = finfet.STV
		mrfDesign = regfile.DesignMonolithicSTV
	}
	rfcArray := fincacti.RFCConfig(6, fc.ActiveWarps, fc.RFCBanks, 2, 1)

	var rfcE, partE, rfcS, partS, hits []float64
	for _, w := range workloads.All() {
		// Baseline: MRF@STV with the standard (GTO) scheduler at this
		// issue configuration. Each design then runs with its natural
		// scheduler: the RFC requires the two-level scheduler (its
		// active-pool restriction is part of the RFC's cost), while
		// the partitioned RF keeps GTO.
		baseCfg := r.scaledConfig(fc).WithDesign(regfile.DesignMonolithicSTV)
		base := r.run(w, baseCfg, "f13-base-"+fc.Label())
		baseCycles := float64(base.TotalCycles())

		// RFC in front of an MRF at the configured voltage.
		rfcCfg := r.scaledConfig(fc).WithDesign(mrfDesign)
		rfcCfg.Policy = sim.PolicyTL
		rfcCfg.UseRFC = true
		rfcCfg.RFC = rfc.DefaultConfig(fc.ActiveWarps)
		rfcCfg.RFCMRFLatency = 1
		if !fc.MRFVddSTV {
			rfcCfg.RFCMRFLatency = 3
		}
		rfcRun := r.run(w, rfcCfg, "f13-rfc-"+fc.Label())
		rfcStats := rfcRun.RFCTotals()
		breakdown := energy.RFCDynamic(rfcStats, rfcArray, mrfVdd)
		rfcE = append(rfcE, breakdown.TotalPJ()/energy.BaselineDynamicPJ(rfcRun.TotalAccesses()))
		rfcS = append(rfcS, float64(rfcRun.TotalCycles())/baseCycles)
		hits = append(hits, rfcStats.HitRate())

		// Partitioned+adaptive under the same issue configuration.
		partCfg := r.scaledConfig(fc).WithDesign(regfile.DesignPartitionedAdaptive)
		partRun := r.run(w, partCfg, "f13-part-"+fc.Label())
		partE = append(partE, energy.DynamicPJ(regfile.DesignPartitionedAdaptive, partRun.PartAccesses())/
			energy.BaselineDynamicPJ(partRun.TotalAccesses()))
		partS = append(partS, float64(partRun.TotalCycles())/baseCycles)
	}
	return Figure13Row{
		Config:              fc,
		RFCSizeKB:           rfcArray.SizeKB,
		RFCEnergy:           stats.Mean(rfcE),
		PartitionedEnergy:   stats.Mean(partE),
		RFCSlowdown:         stats.Geomean(rfcS),
		PartitionedSlowdown: stats.Geomean(partS),
		RFCHitRate:          stats.Mean(hits),
	}
}

// scaledConfig adapts the base config to a Figure 13 issue configuration.
func (r *Runner) scaledConfig(fc Figure13Config) sim.Config {
	cfg := r.baseConfig()
	cfg.Schedulers = fc.Schedulers
	cfg.TLActiveWarps = fc.ActiveWarps
	return cfg
}
