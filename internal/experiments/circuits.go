package experiments

import (
	"pilotrf/internal/fincacti"
	"pilotrf/internal/finfet"
)

// Figure1 reproduces Figure 1: the delay of a 40-stage FO4 inverter chain
// versus supply voltage for the calibrated 7 nm FinFET device.
func Figure1() []finfet.Figure1Point {
	return finfet.Default7nm().Figure1Sweep()
}

// Table3 reproduces Table III: the three 8T SRAM operating points.
func Table3() []finfet.Table3Row {
	return finfet.Table3(finfet.Default7nm())
}

// Table4 reproduces Table IV: size, access energy, and leakage power of
// the partitions and the MRF baseline.
func Table4() []fincacti.Table4Row {
	return fincacti.Table4()
}

// YieldRow is one cell design's Monte Carlo yield at an operating point.
type YieldRow struct {
	Cell  finfet.CellType
	Vdd   float64
	Yield float64
	MeanV float64
}

// SRAMYieldStudy reproduces the Section IV-A yield analysis: 6T/8T/9T/10T
// cells sampled under threshold-voltage variation at STV and NTV.
func SRAMYieldStudy(samples int, seed uint64) []YieldRow {
	var rows []YieldRow
	for _, vdd := range []float64{finfet.STV, finfet.NTV} {
		for _, ct := range []finfet.CellType{finfet.Cell6T, finfet.Cell8T, finfet.Cell9T, finfet.Cell10T} {
			y := finfet.MonteCarloYield(finfet.Cell{Type: ct}, vdd, finfet.BackGateOn, samples, seed)
			rows = append(rows, YieldRow{Cell: ct, Vdd: vdd, Yield: y.Yield, MeanV: y.MeanSNM})
		}
	}
	return rows
}

// PortScalingRow is one RFC porting configuration's energy relative to an
// MRF access (Section V-D).
type PortScalingRow struct {
	ReadPorts, WritePorts int
	RelativeToMRF         float64
}

// RFCPortScaling reproduces the Section V-D port study: the 6-entry RFC
// at (R2,W1) costs 0.37x an MRF access; at (R8,W4) it costs 3x.
func RFCPortScaling() []PortScalingRow {
	mrf := fincacti.MRFConfig(finfet.STV).AccessEnergyPJ()
	var rows []PortScalingRow
	for _, p := range []struct{ r, w int }{{2, 1}, {4, 2}, {8, 4}} {
		cfg := fincacti.RFCConfig(6, 8, 8, p.r, p.w)
		rows = append(rows, PortScalingRow{
			ReadPorts: p.r, WritePorts: p.w,
			RelativeToMRF: fincacti.RFCAccessEnergyPJ(cfg) / mrf,
		})
	}
	return rows
}

// BankedRFCEnergyRelative returns the Section V-D datapoint that an
// 8-banked, crossbar-connected RFC costs about as much per access as the
// MRF itself.
func BankedRFCEnergyRelative() float64 {
	cfg := fincacti.RFCConfig(6, 8, 8, 2, 1)
	return fincacti.RFCBankedCrossbarEnergyPJ(cfg) / fincacti.MRFConfig(finfet.STV).AccessEnergyPJ()
}

// SwapTableRow is the swapping table delay in one technology.
type SwapTableRow struct {
	Tech    fincacti.SwapTableTech
	DelayPS float64
	// CycleFraction is the delay as a fraction of the 900 MHz cycle;
	// the paper requires < 10%.
	CycleFraction float64
}

// SwapTableDelays reproduces the Section III-B RTL evaluation of the
// 8-entry swapping table at 22 nm CMOS, 16 nm CMOS, and 7 nm FinFET.
func SwapTableDelays() []SwapTableRow {
	const cyclePS = 1000 / 0.9 // 900 MHz
	var rows []SwapTableRow
	for _, tech := range []fincacti.SwapTableTech{fincacti.Tech22nmCMOS, fincacti.Tech16nmCMOS, fincacti.Tech7nmFinFET} {
		d := fincacti.SwapTableDelayPS(tech, 8)
		rows = append(rows, SwapTableRow{Tech: tech, DelayPS: d, CycleFraction: d / cyclePS})
	}
	return rows
}

// VoltagePoint is one supply point in the RF voltage sweep.
type VoltagePoint struct {
	Vdd float64
	// AccessEnergyPJ and LeakageMW for a 256 KB MRF at this supply.
	AccessEnergyPJ float64
	LeakageMW      float64
	// AccessCycles is the latency in SM cycles (the cost side).
	AccessCycles int
	// DelayRatio is the FO4 delay relative to STV.
	DelayRatio float64
}

// VoltageSweep is an extension study: the energy/latency tradeoff of
// operating the whole RF at each supply voltage, which is the design
// space behind the paper's choice of 0.3 V as NTV — below it the delay
// blows up super-linearly while the energy gains flatten.
func VoltageSweep() []VoltagePoint {
	d := finfet.Default7nm()
	stvDelay := d.FO4Delay(finfet.STV, finfet.BackGateOn)
	var pts []VoltagePoint
	for mv := 250; mv <= 450; mv += 25 {
		v := float64(mv) / 1000
		cfg := fincacti.MRFConfig(v)
		pts = append(pts, VoltagePoint{
			Vdd:            v,
			AccessEnergyPJ: cfg.AccessEnergyPJ(),
			LeakageMW:      cfg.LeakagePowerMW(),
			AccessCycles:   cfg.AccessCycles(),
			DelayRatio:     d.FO4Delay(v, finfet.BackGateOn) / stvDelay,
		})
	}
	return pts
}

// AreaReport summarizes the Section V-A area analysis.
type AreaReport struct {
	BaselineMM2 float64
	ProposedMM2 float64
	OverheadPct float64
}

// Area reproduces the area comparison: 0.2 mm^2 baseline vs 0.214 mm^2
// proposed (< 10% overhead).
func Area() AreaReport {
	base := fincacti.MRFConfig(finfet.STV).AreaMM2()
	prop := fincacti.FRFConfig(fincacti.ModeNormal).AreaMM2() + fincacti.SRFConfig().AreaMM2()
	return AreaReport{
		BaselineMM2: base,
		ProposedMM2: prop,
		OverheadPct: (prop/base - 1) * 100,
	}
}
