package experiments

import (
	"fmt"
	"strings"

	"pilotrf/internal/energy"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

// EnergyAuditCounts summarizes one run's swap-decision audit log by
// placement reason.
type EnergyAuditCounts struct {
	StaticDefault     int
	CompilerSeed      int
	PilotMeasured     int
	HybridReplacement int
}

// EnergyReportRow is one benchmark's ledger-attributed energy breakdown
// under the paper design point (adaptive partitioned RF, hybrid
// profiling), cross-checked against the aggregate energy model.
type EnergyReportRow struct {
	Benchmark string
	// DynamicByPartPJ is dynamic energy charged per partition, in
	// regfile partition order (MRF, FRF_high, FRF_low, SRF).
	DynamicByPartPJ [4]float64
	DynamicPJ       float64
	LeakagePJ       float64
	// BaselinePJ is the MRF@STV cost of the same access count.
	BaselinePJ float64
	// SavingsPct is the dynamic saving versus BaselinePJ, in percent.
	SavingsPct float64
	// Epochs and HeatCells count the ledger's attribution records.
	Epochs    int
	HeatCells int
	// Conserved reports whether the streamed ledger reproduced the
	// aggregate dynamic and leakage figures bit-exactly.
	Conserved bool
	Audit     EnergyAuditCounts
}

// EnergyReport runs every Table I benchmark with the energy ledger and
// the swap audit log attached and returns the per-benchmark attribution
// rows. Runs are independent of the Runner cache (the ledger must
// observe its own simulation), but use the Runner's scale and SM count.
func EnergyReport(r *Runner) []EnergyReportRow {
	rows := make([]EnergyReportRow, 0, len(workloads.All()))
	for _, w := range workloads.All() {
		cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
		cfg.Profiling = profile.TechniqueHybrid
		led := energy.NewLedger(cfg.RF.Design, 0)
		audit := &profile.AuditLog{}
		cfg.Energy = led
		cfg.Audit = audit
		g, err := sim.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		rs, err := g.RunKernels(w.Name, w.Scale(r.Scale).Kernels)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", w.Name, err))
		}
		row := EnergyReportRow{
			Benchmark:       w.Name,
			DynamicByPartPJ: led.DynamicByPartitionPJ(),
			DynamicPJ:       led.DynamicPJ(),
			LeakagePJ:       led.LeakagePJ(),
			BaselinePJ:      energy.BaselineDynamicPJ(rs.TotalAccesses()),
			Epochs:          len(led.Epochs()),
			HeatCells:       len(led.HeatCells()),
			Conserved:       led.CheckConservation(rs.PartAccesses(), rs.TotalCycles()) == nil,
			Audit: EnergyAuditCounts{
				StaticDefault:     audit.CountReason(profile.PlaceStaticDefault),
				CompilerSeed:      audit.CountReason(profile.PlaceCompilerSeed),
				PilotMeasured:     audit.CountReason(profile.PlacePilotMeasured),
				HybridReplacement: audit.CountReason(profile.PlaceHybridReplacement),
			},
		}
		row.SavingsPct = energy.Savings(row.DynamicPJ, row.BaselinePJ) * 100
		rows = append(rows, row)
	}
	return rows
}

// EnergyReportText renders the energy report as an aligned table with a
// conservation summary line.
func EnergyReportText(rows []EnergyReportRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s %10s %10s %10s %10s %10s %7s %6s %6s  %s\n",
		"bench", "frf_hi pJ", "frf_lo pJ", "srf pJ", "dyn pJ", "leak pJ",
		"save%", "epochs", "cells", "placements(seed/pilot/repl)")
	conserved := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %10.0f %10.0f %10.0f %10.0f %10.0f %6.1f%% %6d %6d  %d/%d/%d\n",
			r.Benchmark,
			r.DynamicByPartPJ[regfile.PartFRFHigh], r.DynamicByPartPJ[regfile.PartFRFLow],
			r.DynamicByPartPJ[regfile.PartSRF], r.DynamicPJ, r.LeakagePJ, r.SavingsPct,
			r.Epochs, r.HeatCells,
			r.Audit.CompilerSeed, r.Audit.PilotMeasured, r.Audit.HybridReplacement)
		if r.Conserved {
			conserved++
		}
	}
	fmt.Fprintf(&b, "  ledger conservation: %d/%d benchmarks bit-exact\n", conserved, len(rows))
	return b.String()
}
