package experiments

import (
	"sort"

	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// Table1Row is one benchmark's runtime information (the paper's Table I).
type Table1Row struct {
	Benchmark     string
	Category      workloads.Category
	RegsPerThread int
	ThreadsPerCTA int
	// MeasuredPilotPct is this reproduction's pilot runtime share (%);
	// PaperPilotPct is the paper's. Grids are scaled down, so measured
	// Category 1/2 values sit higher than the paper's sub-percent
	// figures — the ordering and the Category 3 blow-up are the
	// properties that carry the result.
	MeasuredPilotPct float64
	PaperPilotPct    float64
}

// Table1 reproduces Table I using the hybrid partitioned configuration.
func Table1(r *Runner) []Table1Row {
	var rows []Table1Row
	for _, w := range workloads.All() {
		rs := r.hybridRun(w)
		pilot := 0.0
		if len(rs.Kernels) > 0 {
			pilot = rs.Kernels[0].PilotFraction * 100
		}
		rows = append(rows, Table1Row{
			Benchmark:        w.Name,
			Category:         w.Category,
			RegsPerThread:    w.Paper.RegsPerThread,
			ThreadsPerCTA:    w.Paper.ThreadsPerCTA,
			MeasuredPilotPct: pilot,
			PaperPilotPct:    w.Paper.PilotCTAPct,
		})
	}
	return rows
}

// hybridRun is the paper's preferred configuration: partitioned +
// adaptive FRF, hybrid profiling, GTO scheduler.
func (r *Runner) hybridRun(w workloads.Workload) sim.RunStats {
	cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	cfg.Profiling = profile.TechniqueHybrid
	return r.run(w, cfg, "part-adaptive-hybrid-gto")
}

// Figure2Row is one benchmark's top-N access concentration.
type Figure2Row struct {
	Benchmark        string
	Top3, Top4, Top5 float64
}

// Figure2Result is the full Figure 2 dataset plus suite averages (the
// paper reports 62%/72%/77%).
type Figure2Result struct {
	Rows             []Figure2Row
	Avg3, Avg4, Avg5 float64
}

// Figure2 reproduces Figure 2: the fraction of register file accesses
// captured by each kernel's top 3/4/5 registers.
func Figure2(r *Runner) Figure2Result {
	var res Figure2Result
	var s3, s4, s5 []float64
	for _, w := range workloads.All() {
		rs := r.baselineRun(w)
		row := Figure2Row{
			Benchmark: w.Name,
			Top3:      rs.TopNShareByKernel(3),
			Top4:      rs.TopNShareByKernel(4),
			Top5:      rs.TopNShareByKernel(5),
		}
		res.Rows = append(res.Rows, row)
		s3, s4, s5 = append(s3, row.Top3), append(s4, row.Top4), append(s5, row.Top5)
	}
	res.Avg3, res.Avg4, res.Avg5 = stats.Mean(s3), stats.Mean(s4), stats.Mean(s5)
	return res
}

// Figure4Row is one benchmark's profiling efficiency: the fraction of all
// RF accesses serviced by the FRF under each technique, measured as
// deployed (mappings evolve over the run, so a pilot that finishes late
// captures little even if its identification is perfect).
type Figure4Row struct {
	Benchmark string
	Category  workloads.Category
	Compiler  float64
	Pilot     float64
	Hybrid    float64
	Optimal   float64
}

// Figure4 reproduces Figure 4 across all workloads.
func Figure4(r *Runner) []Figure4Row {
	var rows []Figure4Row
	for _, w := range workloads.All() {
		base := r.baseConfig().WithDesign(regfile.DesignPartitioned)

		comp := base
		comp.Profiling = profile.TechniqueCompiler
		pilot := base
		pilot.Profiling = profile.TechniquePilot

		hybridRS := r.hybridRun(w)
		rows = append(rows, Figure4Row{
			Benchmark: w.Name,
			Category:  w.Category,
			Compiler:  r.run(w, comp, "part-compiler").FRFShare(),
			Pilot:     r.run(w, pilot, "part-pilot").FRFShare(),
			Hybrid:    hybridRS.FRFShare(),
			Optimal:   r.runPerKernelOracle(w, base, 4).FRFShare(),
		})
	}
	return rows
}

// StaticFirstNShare measures the strawman from Section III: the FRF share
// when the first four architected registers are statically pinned there
// (the paper's sgemm example: ~25% vs ~55% for the true top four).
func StaticFirstNShare(r *Runner, benchmark string) float64 {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	cfg := r.baseConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniqueStaticFirstN
	return r.run(w, cfg, "part-static").FRFShare()
}

// CodeDynamicsRow summarizes per-warp register access similarity for one
// benchmark (Section III-A2: access counts differ across warps by no more
// than ~5%, and the sorted register order is stable).
type CodeDynamicsRow struct {
	Benchmark string
	// MeanRelDeviation is the mean relative deviation of per-register
	// access counts across warps (0 = identical warps).
	MeanRelDeviation float64
	// Top4SetStable reports whether every sampled warp agrees on the
	// set of top-4 registers.
	Top4SetStable bool
}

// CodeDynamics reproduces the Section III-A2 analysis over the warps of
// the first CTAs of each benchmark.
func CodeDynamics(r *Runner) []CodeDynamicsRow {
	var rows []CodeDynamicsRow
	for _, w := range workloads.All() {
		cfg := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
		cfg.CollectPerWarpCTAs = 2
		rs := r.run(w, cfg, "perwarp")
		rows = append(rows, codeDynamicsOf(w.Name, rs))
	}
	return rows
}

func codeDynamicsOf(name string, rs sim.RunStats) CodeDynamicsRow {
	row := CodeDynamicsRow{Benchmark: name, Top4SetStable: true}
	var devs []float64
	for _, ks := range rs.Kernels {
		warps := make([]*stats.Histogram, 0, len(ks.PerWarpHist))
		ids := make([]int, 0, len(ks.PerWarpHist))
		for id := range ks.PerWarpHist {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			warps = append(warps, ks.PerWarpHist[id])
		}
		if len(warps) < 2 {
			continue
		}
		// Per-register relative deviation vs the mean warp.
		nregs := warps[0].Len()
		var refTop4 map[int]bool
		for _, h := range warps {
			top := map[int]bool{}
			for _, kv := range h.TopN(4) {
				top[kv.Key] = true
			}
			if refTop4 == nil {
				refTop4 = top
			} else if !sameKeySet(refTop4, top) {
				row.Top4SetStable = false
			}
		}
		for reg := 0; reg < nregs; reg++ {
			var vals []float64
			for _, h := range warps {
				vals = append(vals, float64(h.Count(reg)))
			}
			m := stats.Mean(vals)
			if m == 0 {
				continue
			}
			devs = append(devs, stats.StdDev(vals)/m)
		}
	}
	row.MeanRelDeviation = stats.Mean(devs)
	return row
}

func sameKeySet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
