package experiments

import (
	"bytes"
	"testing"

	"pilotrf/internal/trace"
	"pilotrf/internal/workloads"
)

// TestWarmParallelMatchesSequential verifies that the concurrent cache
// warm-up yields byte-identical results to sequential execution — the
// simulator is deterministic and runs are independent, so parallelism
// must be invisible in the numbers.
func TestWarmParallelMatchesSequential(t *testing.T) {
	seq := NewRunner(0.05, 1)
	par := NewRunner(0.05, 1)
	par.Warm()
	for _, name := range []string{"WP", "CP", "srad"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := seq.hybridRun(w)
		b := par.hybridRun(w)
		if a.TotalCycles() != b.TotalCycles() || a.TotalAccesses() != b.TotalAccesses() {
			t.Errorf("%s: parallel warm diverged from sequential (%d/%d vs %d/%d)",
				name, a.TotalCycles(), a.TotalAccesses(), b.TotalCycles(), b.TotalAccesses())
		}
		if a.PartAccesses() != b.PartAccesses() {
			t.Errorf("%s: partition counts diverged", name)
		}
	}
}

// TestWarmWorkerCountInvariant runs the warm pass on a single-worker
// pool and a four-worker pool; the cached results must match exactly,
// so -parallel N only changes wall-clock, never numbers.
func TestWarmWorkerCountInvariant(t *testing.T) {
	one := NewRunner(0.05, 1)
	one.Workers = 1
	one.Warm()
	four := NewRunner(0.05, 1)
	four.Workers = 4
	four.Warm()
	if len(one.cache) != len(four.cache) {
		t.Fatalf("cache sizes differ: %d vs %d", len(one.cache), len(four.cache))
	}
	for key, a := range one.cache {
		b, ok := four.cache[key]
		if !ok {
			t.Fatalf("key %q missing from 4-worker cache", key)
		}
		if a.TotalCycles() != b.TotalCycles() || a.TotalAccesses() != b.TotalAccesses() {
			t.Errorf("%s: worker count changed results (%d/%d vs %d/%d)",
				key, a.TotalCycles(), a.TotalAccesses(), b.TotalCycles(), b.TotalAccesses())
		}
	}
}

// TestRunConcurrentDuplicates hammers one key from many goroutines; the
// in-flight deduplication must produce one simulation and identical
// results for every caller.
func TestRunConcurrentDuplicates(t *testing.T) {
	r := NewRunner(0.05, 1)
	w, err := workloads.ByName("WP")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	results := make([]int64, callers)
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			rs := r.run(w, r.baseConfig(), "dup-test")
			results[i] = rs.TotalCycles()
			done <- i
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw different cycles: %d vs %d", i, results[i], results[0])
		}
	}
}

// TestWarmTraceSpans: a traced warm pass records one experiments.warm
// root with one warm.run span per (workload, config) pair, forming a
// valid tree whose deterministic projection is identical at any worker
// count.
func TestWarmTraceSpans(t *testing.T) {
	traced := func(workers int) []trace.Span {
		r := NewRunner(0.05, 1)
		r.Workers = workers
		r.Trace = trace.NewRecorder(false)
		r.Warm()
		return r.Trace.Spans()
	}
	one := traced(1)
	four := traced(4)

	var a, b bytes.Buffer
	if err := trace.WriteSpans(&a, one); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&b, four); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm span tree differs between 1 and 4 workers")
	}

	root, err := trace.BuildTree(one)
	if err != nil {
		t.Fatalf("warm tree invalid: %v", err)
	}
	if root.Name != "experiments.warm" {
		t.Fatalf("root span %q", root.Name)
	}
	wantRuns := len(workloads.All()) * 10 // 10 warm configs
	runs := 0
	for _, s := range one {
		if s.Name == "warm.run" {
			runs++
			if s.Attrs["workload"] == "" || s.Attrs["config"] == "" {
				t.Fatalf("warm.run missing attrs: %+v", s)
			}
		}
	}
	if runs != wantRuns {
		t.Fatalf("got %d warm.run spans, want %d", runs, wantRuns)
	}
}
