package experiments

import (
	"math"
	"sync"
	"testing"

	"pilotrf/internal/workloads"
)

// Tests share one runner (and therefore one simulation cache) at a
// reduced workload scale; experiments are deterministic, so sharing is
// safe and keeps the suite fast.
var (
	runnerOnce sync.Once
	testRun    *Runner
	waveOnce   sync.Once
	waveRun    *Runner
)

func testRunner() *Runner {
	runnerOnce.Do(func() { testRun = NewRunner(0.15, 1) })
	return testRun
}

// waveRunner preserves the designed CTA-wave structure (scale x SMs ratio
// = tuned default), which the pilot-timing-sensitive experiments need:
// scale 0.5 on 1 SM keeps waves identical to 1.0 on 2 SMs.
func waveRunner() *Runner {
	waveOnce.Do(func() { waveRun = NewRunner(0.5, 1) })
	return waveRun
}

func TestFigure1Endpoints(t *testing.T) {
	pts := Figure1()
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	var atNTV, atSTV float64
	for _, p := range pts {
		if math.Abs(p.Vdd-0.30) < 1e-9 {
			atNTV = p.DelayNS
		}
		if math.Abs(p.Vdd-0.45) < 1e-9 {
			atSTV = p.DelayNS
		}
	}
	if atNTV == 0 || atSTV == 0 {
		t.Fatal("sweep missing NTV/STV points")
	}
	if r := atNTV / atSTV; math.Abs(r-3) > 0.1 {
		t.Errorf("NTV:STV chain delay ratio = %.2f, want ~3", r)
	}
}

func TestTable3AndTable4(t *testing.T) {
	if rows := Table3(); len(rows) != 3 {
		t.Errorf("Table3 rows = %d", len(rows))
	}
	if rows := Table4(); len(rows) != 4 {
		t.Errorf("Table4 rows = %d", len(rows))
	}
}

func TestSRAMYieldStudy(t *testing.T) {
	rows := SRAMYieldStudy(5000, 7)
	if len(rows) != 8 {
		t.Fatalf("yield rows = %d, want 8", len(rows))
	}
	// Find 8T and 6T at NTV.
	var y8, y6 float64
	for _, r := range rows {
		if r.Vdd == 0.30 {
			switch r.Cell.String() {
			case "8T":
				y8 = r.Yield
			case "6T":
				y6 = r.Yield
			}
		}
	}
	if y8 <= y6 {
		t.Errorf("8T yield (%.3f) should beat 6T (%.3f) at NTV", y8, y6)
	}
}

func TestRFCPortScalingAnchors(t *testing.T) {
	rows := RFCPortScaling()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0].RelativeToMRF-0.37) > 0.01 {
		t.Errorf("(R2,W1) = %.3f, want 0.37", rows[0].RelativeToMRF)
	}
	if math.Abs(rows[2].RelativeToMRF-3.0) > 0.05 {
		t.Errorf("(R8,W4) = %.3f, want 3.0", rows[2].RelativeToMRF)
	}
	if r := BankedRFCEnergyRelative(); math.Abs(r-1.0) > 0.05 {
		t.Errorf("banked crossbar RFC = %.3f x MRF, want ~1.0", r)
	}
}

func TestSwapTableDelaysUnderCycleBudget(t *testing.T) {
	rows := SwapTableDelays()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tech.String() == "7nm FinFET" && r.CycleFraction > 0.10 {
			t.Errorf("7nm swap table at %.1f%% of the cycle, want < 10%%", r.CycleFraction*100)
		}
	}
}

func TestVoltageSweepShape(t *testing.T) {
	pts := VoltageSweep()
	if len(pts) < 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AccessEnergyPJ <= pts[i-1].AccessEnergyPJ {
			t.Error("access energy should grow with Vdd")
		}
		if pts[i].DelayRatio >= pts[i-1].DelayRatio {
			t.Error("delay should shrink with Vdd")
		}
	}
	// The paper's operating points must appear with their latencies.
	for _, p := range pts {
		if p.Vdd == 0.30 && p.AccessCycles != 3 {
			t.Errorf("NTV point has %d cycles, want 3", p.AccessCycles)
		}
		if p.Vdd == 0.45 && p.AccessCycles != 1 {
			t.Errorf("STV point has %d cycles, want 1", p.AccessCycles)
		}
	}
}

func TestAreaOverheadUnderTenPercent(t *testing.T) {
	a := Area()
	if a.OverheadPct <= 0 || a.OverheadPct >= 10 {
		t.Errorf("area overhead = %.1f%%, want (0, 10)", a.OverheadPct)
	}
	if math.Abs(a.BaselineMM2-0.2) > 0.005 || math.Abs(a.ProposedMM2-0.214) > 0.005 {
		t.Errorf("areas = %.3f / %.3f, want 0.200 / 0.214", a.BaselineMM2, a.ProposedMM2)
	}
}

func TestLeakageReport(t *testing.T) {
	l := Leakage()
	if math.Abs(l.SavingsPct-39) > 2 {
		t.Errorf("leakage savings = %.1f%%, paper reports 39%%", l.SavingsPct)
	}
	if math.Abs(l.FRFShareOfMRF-0.215) > 0.01 || math.Abs(l.SRFShareOfMRF-0.397) > 0.01 {
		t.Errorf("shares = %.3f / %.3f, want 0.215 / 0.397", l.FRFShareOfMRF, l.SRFShareOfMRF)
	}
}

func TestFigure2Averages(t *testing.T) {
	res := Figure2(testRunner())
	if len(res.Rows) != 17 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Avg3 < 0.50 || res.Avg3 > 0.75 {
		t.Errorf("avg top-3 = %.2f, paper: 0.62", res.Avg3)
	}
	if !(res.Avg3 < res.Avg4 && res.Avg4 < res.Avg5) {
		t.Error("averages not monotone")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(testRunner())
	if len(rows) != 17 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if r.MeasuredPilotPct <= 0 || r.MeasuredPilotPct > 100 {
			t.Errorf("%s pilot%% = %.2f out of range", r.Benchmark, r.MeasuredPilotPct)
		}
	}
	// The Category 3 workloads must dominate the pilot ranking, as in
	// the paper (LIB 60%, WP 75% vs a 3% geomean).
	for _, c3 := range []string{"LIB", "WP"} {
		if byName[c3].MeasuredPilotPct < byName["BFS"].MeasuredPilotPct*3 {
			t.Errorf("%s pilot%% (%.1f) should dwarf BFS (%.1f)",
				c3, byName[c3].MeasuredPilotPct, byName["BFS"].MeasuredPilotPct)
		}
	}
}

func TestFigure4CategoryShapes(t *testing.T) {
	rows := Figure4(waveRunner())
	if len(rows) != 17 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Optimal is installed from cycle zero with the true top set:
		// nothing should beat it by more than noise.
		for name, v := range map[string]float64{"compiler": r.Compiler, "pilot": r.Pilot, "hybrid": r.Hybrid} {
			if v > r.Optimal+0.05 {
				t.Errorf("%s: %s (%.2f) exceeds optimal (%.2f)", r.Benchmark, name, v, r.Optimal)
			}
		}
		switch r.Category {
		case workloads.Category2:
			if r.Pilot < r.Compiler+0.08 {
				t.Errorf("%s (cat2): pilot %.2f should clearly beat compiler %.2f", r.Benchmark, r.Pilot, r.Compiler)
			}
		case workloads.Category3:
			if r.Compiler < r.Pilot+0.08 {
				t.Errorf("%s (cat3): compiler %.2f should clearly beat pilot %.2f", r.Benchmark, r.Compiler, r.Pilot)
			}
		}
		// Hybrid must track the better of its two parents.
		best := math.Max(r.Compiler, r.Pilot)
		if r.Hybrid < best-0.10 {
			t.Errorf("%s: hybrid %.2f falls well below best parent %.2f", r.Benchmark, r.Hybrid, best)
		}
	}
}

func TestStaticFirstNIsWorseOnSgemm(t *testing.T) {
	r := waveRunner()
	static := StaticFirstNShare(r, "sgemm")
	rows := Figure4(r)
	var opt float64
	for _, row := range rows {
		if row.Benchmark == "sgemm" {
			opt = row.Optimal
		}
	}
	if static >= opt-0.15 {
		t.Errorf("sgemm static-first-4 = %.2f vs optimal %.2f; paper shows a ~30-point gap", static, opt)
	}
}

func TestFigure10Distribution(t *testing.T) {
	res := Figure10(testRunner())
	if len(res.Rows) != 17 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.AvgFRF < 0.5 || res.AvgFRF > 0.95 {
		t.Errorf("avg FRF share = %.2f, paper: ~0.62", res.AvgFRF)
	}
	if res.AvgLowShareOfFRF <= 0 || res.AvgLowShareOfFRF > 0.6 {
		t.Errorf("avg low-mode share = %.2f, paper: ~0.22", res.AvgLowShareOfFRF)
	}
	for _, row := range res.Rows {
		if s := row.FRFHigh + row.FRFLow + row.SRF; math.Abs(s-1) > 1e-9 {
			t.Errorf("%s: shares sum to %.3f", row.Benchmark, s)
		}
	}
}

func TestFigure11Savings(t *testing.T) {
	res := Figure11(testRunner())
	if len(res.Rows) != 17 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.AvgSavingsAdaptive < 0.35 || res.AvgSavingsAdaptive > 0.70 {
		t.Errorf("adaptive savings = %.2f, paper: 0.54", res.AvgSavingsAdaptive)
	}
	if res.AvgSavingsAdaptive <= res.AvgSavingsPartOnly {
		t.Error("adaptive FRF should add savings over the plain partition")
	}
	if res.AvgSavingsAdaptive <= res.AvgSavingsNTV {
		t.Errorf("adaptive (%.3f) should beat always-NTV (%.3f), as in the paper (54%% vs 47%%)",
			res.AvgSavingsAdaptive, res.AvgSavingsNTV)
	}
}

func TestFigure12Overheads(t *testing.T) {
	// Performance overheads need the designed wave structure: with too
	// few CTA waves there is not enough warp parallelism to hide the
	// SRF latency, inflating every overhead.
	res := Figure12(waveRunner())
	if len(res.Rows) != 17 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.GeoHybridGTO > 1.04 {
		t.Errorf("hybrid GTO overhead = %.3f, paper: < 2%%", res.GeoHybridGTO)
	}
	if res.GeoNTVGTO <= res.GeoHybridGTO {
		t.Error("MRF@NTV should be slower than the partitioned design")
	}
	if res.GeoNTVGTO < 1.02 || res.GeoNTVGTO > 1.25 {
		t.Errorf("NTV overhead = %.3f, paper: ~7%%", res.GeoNTVGTO)
	}
	if res.GeoCompilerGTO < res.GeoHybridGTO-0.005 {
		t.Errorf("compiler profiling (%.3f) should not beat hybrid (%.3f)", res.GeoCompilerGTO, res.GeoHybridGTO)
	}
	// "Consistent across schedulers": the LRR variant must also stay a
	// small overhead relative to its own baseline.
	if res.GeoHybridLRR > 1.08 {
		t.Errorf("hybrid under LRR = %.3f, want a consistent small overhead", res.GeoHybridLRR)
	}
}

func TestSRFLatencySensitivity(t *testing.T) {
	pts := SRFLatencySensitivity(testRunner())
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].GeoSlowdown <= pts[1].GeoSlowdown && pts[1].GeoSlowdown <= pts[2].GeoSlowdown) {
		t.Errorf("slowdown not monotone in SRF latency: %+v", pts)
	}
	// 5-cycle SRF stays a modest overhead (paper: +2.4%).
	if pts[2].GeoSlowdown > 1.10 {
		t.Errorf("5-cycle SRF slowdown = %.3f, want modest", pts[2].GeoSlowdown)
	}
}

func TestEpochSensitivitySmallImpact(t *testing.T) {
	pts := EpochSensitivity(testRunner())
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	var lo, hi float64 = math.Inf(1), 0
	for _, p := range pts {
		lo = math.Min(lo, p.GeoSlowdown)
		hi = math.Max(hi, p.GeoSlowdown)
	}
	if hi-lo > 0.02 {
		t.Errorf("epoch length swings performance by %.3f, paper says the impact is small", hi-lo)
	}
}

func TestThresholdSweepTradeoff(t *testing.T) {
	pts := ThresholdSweep(testRunner())
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Higher thresholds put the FRF in low mode more often.
	if !(pts[0].AvgLowShare <= pts[3].AvgLowShare) {
		t.Errorf("low-mode share not increasing with threshold: %+v", pts)
	}
	// At the paper's threshold (85) the extra overhead over the lowest
	// threshold is small (< 0.5% in the paper; a little more at this
	// reduced test scale).
	if pts[1].GeoSlowdown-pts[0].GeoSlowdown > 0.02 {
		t.Errorf("threshold-85 costs %.3f over threshold-40", pts[1].GeoSlowdown-pts[0].GeoSlowdown)
	}
}

// The paper reports < 1% for the extra swap-table cycle; this pipeline
// model is more latency-sensitive than GPGPU-Sim (no result forwarding
// around the writeback stage, and the +1 cycle applies to reads and
// writebacks alike), so the bound here is looser. The divergence is
// recorded in EXPERIMENTS.md.
func TestSwapTablePenaltySmall(t *testing.T) {
	if p := SwapTablePenalty(testRunner()); p > 1.09 {
		t.Errorf("extra swap-table cycle costs %.3f, want bounded", p)
	}
}

func TestCodeDynamicsSimilarity(t *testing.T) {
	rows := CodeDynamics(testRunner())
	if len(rows) != 17 {
		t.Fatalf("rows = %d", len(rows))
	}
	stable := 0
	for _, r := range rows {
		if r.Top4SetStable {
			stable++
		}
		if r.MeanRelDeviation > 0.25 {
			t.Errorf("%s: per-warp deviation %.2f too large", r.Benchmark, r.MeanRelDeviation)
		}
	}
	if stable < 12 {
		t.Errorf("top-4 set stable across warps for only %d/17 benchmarks", stable)
	}
}

func TestFigure13Shape(t *testing.T) {
	rows := Figure13(testRunner())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// RFC size grows with active warps: 6, 12, 24, 24 KB.
	wantKB := []float64{6, 12, 24, 24}
	for i, r := range rows {
		if r.RFCSizeKB != wantKB[i] {
			t.Errorf("config %s: RFC size %.0f KB, want %.0f", r.Config.Label(), r.RFCSizeKB, wantKB[i])
		}
		if r.PartitionedEnergy >= 1 || r.PartitionedEnergy <= 0 {
			t.Errorf("config %s: partitioned energy %.2f not in (0,1)", r.Config.Label(), r.PartitionedEnergy)
		}
	}
	// The partitioned design's savings are stable across configurations...
	spread := 0.0
	for _, r := range rows {
		spread = math.Max(spread, math.Abs(r.PartitionedEnergy-rows[0].PartitionedEnergy))
	}
	if spread > 0.10 {
		t.Errorf("partitioned energy varies by %.2f across configs; should be structural", spread)
	}
	// ...while the RFC's erode as warps scale (config 0 -> 2), and with
	// an STV MRF the RFC saves much less than the partitioned design.
	if rows[2].RFCEnergy <= rows[0].RFCEnergy {
		t.Errorf("RFC energy should grow with active warps: %.2f -> %.2f", rows[0].RFCEnergy, rows[2].RFCEnergy)
	}
	last := rows[3]
	if last.RFCEnergy <= last.PartitionedEnergy {
		t.Errorf("with an STV MRF the RFC (%.2f) should save less than partitioned (%.2f)",
			last.RFCEnergy, last.PartitionedEnergy)
	}
	// Performance: the RFC is tied to the two-level scheduler's small
	// active pool, so it carries a real overhead that shrinks as the
	// pool grows (the paper's 9.5% -> 3.8% -> 3.3% trend), and at the
	// 8-warp pool it clearly exceeds the partitioned design's.
	if rows[0].RFCSlowdown <= rows[0].PartitionedSlowdown {
		t.Errorf("8-warp config: RFC slowdown %.3f should exceed partitioned %.3f",
			rows[0].RFCSlowdown, rows[0].PartitionedSlowdown)
	}
	for _, r := range rows {
		if r.RFCSlowdown <= 1.0 {
			t.Errorf("config %s: RFC slowdown %.3f, want an overhead", r.Config.Label(), r.RFCSlowdown)
		}
	}
	if !(rows[0].RFCSlowdown > rows[1].RFCSlowdown && rows[1].RFCSlowdown > rows[2].RFCSlowdown) {
		t.Errorf("RFC slowdown should shrink as the active pool grows: %.3f %.3f %.3f",
			rows[0].RFCSlowdown, rows[1].RFCSlowdown, rows[2].RFCSlowdown)
	}
	// Hit rates are bounded the way the paper reports (<45% at 32 warps
	// in their setup; ours must at least not be perfect).
	if rows[2].RFCHitRate > 0.9 {
		t.Errorf("32-warp RFC hit rate = %.2f, suspiciously high", rows[2].RFCHitRate)
	}
}

func TestBreakdownReports(t *testing.T) {
	b := Breakdown(testRunner(), "backprop")
	if len(b.Reports) != 3 {
		t.Fatalf("reports = %d", len(b.Reports))
	}
	base := b.Reports["MRF@STV"]
	part := b.Reports["Partitioned+Adaptive"]
	if part.DynamicPJ >= base.DynamicPJ {
		t.Error("partitioned dynamic energy should beat the baseline")
	}
	if part.LeakageMW >= base.LeakageMW {
		t.Error("partitioned leakage should beat the baseline")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(0.05, 1)
	w, _ := workloads.ByName("WP")
	a := r.run(w, r.baseConfig(), "cache-test")
	b := r.run(w, r.baseConfig(), "cache-test")
	if a.TotalCycles() != b.TotalCycles() {
		t.Error("cache returned different results")
	}
	if len(r.cache) == 0 {
		t.Error("cache unused")
	}
}

func TestNewRunnerDefaults(t *testing.T) {
	r := NewRunner(0, 0)
	if r.Scale != 1 || r.SMs != 2 {
		t.Errorf("defaults = %g/%d, want 1/2", r.Scale, r.SMs)
	}
}
