package experiments

import (
	"strconv"

	"pilotrf/internal/energy"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// Ablation studies for the design choices DESIGN.md calls out: the FRF
// size (the paper's "top 3 to 5 registers" discussion in Sections II-III)
// and the profiling technique's effect on energy, plus the CAM-vs-indexed
// swapping table equivalence demonstrated in regfile.

// FRFSizePoint is one fast-partition size in the ablation sweep.
type FRFSizePoint struct {
	// FRFRegs is the number of registers per thread in the FRF.
	FRFRegs int
	// FRFSizeKB is the corresponding capacity (regs x 64 warps x 128 B).
	FRFSizeKB float64
	// AvgFRFShare is the suite-average fraction of accesses served by
	// the FRF.
	AvgFRFShare float64
	// AvgSavings is the suite-average dynamic-energy saving vs MRF@STV.
	AvgSavings float64
	// GeoSlowdown is the geomean normalized execution time.
	GeoSlowdown float64
}

// FRFSizeSweep ablates the paper's n = 4 choice: smaller FRFs miss the
// hot set (lower capture, more SRF latency); larger ones grow the fast
// partition without capturing proportionally more accesses (Figure 2's
// shares saturate past the top 5).
func FRFSizeSweep(r *Runner) []FRFSizePoint {
	var out []FRFSizePoint
	for _, n := range []int{2, 3, 4, 5, 6, 8} {
		var shares, savings, ratios []float64
		for _, w := range workloads.All() {
			cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			cfg.RF.FRFRegs = n
			cfg.ProfTopN = n
			rs := r.run(w, cfg, "frfsize-"+strconv.Itoa(n))
			shares = append(shares, rs.FRFShare())
			savings = append(savings,
				energy.Savings(energy.DynamicPJ(regfile.DesignPartitionedAdaptive, rs.PartAccesses()),
					energy.BaselineDynamicPJ(rs.TotalAccesses())))
			ratios = append(ratios, float64(rs.TotalCycles())/float64(r.baselineRun(w).TotalCycles()))
		}
		out = append(out, FRFSizePoint{
			FRFRegs:     n,
			FRFSizeKB:   float64(n) * 64 * 128 / 1024,
			AvgFRFShare: stats.Mean(shares),
			AvgSavings:  stats.Mean(savings),
			GeoSlowdown: stats.Geomean(ratios),
		})
	}
	return out
}

// TechniqueEnergyRow reports one profiling technique's end-to-end effect:
// capture translates into performance (more FRF hits = fewer 3-cycle SRF
// stalls), while dynamic energy is dominated by the partition structure.
type TechniqueEnergyRow struct {
	Technique   string
	AvgFRFShare float64
	AvgSavings  float64
	GeoSlowdown float64
}

// ForwardingPoint is one pipeline-model variant in the writeback
// forwarding ablation.
type ForwardingPoint struct {
	Forwarding bool
	// Geomean normalized execution times vs the matching MRF@STV
	// baseline.
	GeoHybrid float64
	GeoNTV    float64
}

// ForwardingAblation quantifies the divergence EXPERIMENTS.md documents:
// without writeback forwarding each added RF cycle lands on the
// dependency chain twice, roughly doubling every latency overhead. With
// forwarding enabled the NTV and partitioned overheads move toward the
// paper's GPGPU-Sim numbers (7.1% and <2%).
func ForwardingAblation(r *Runner) []ForwardingPoint {
	var out []ForwardingPoint
	for _, fwd := range []bool{false, true} {
		suffix := "nofwd"
		if fwd {
			suffix = "fwd"
		}
		var hyb, ntv []float64
		for _, w := range workloads.All() {
			baseCfg := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
			baseCfg.WritebackForwarding = fwd
			base := float64(r.run(w, baseCfg, "fwd-base-"+suffix).TotalCycles())

			hybCfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			hybCfg.WritebackForwarding = fwd
			hyb = append(hyb, float64(r.run(w, hybCfg, "fwd-part-"+suffix).TotalCycles())/base)

			ntvCfg := r.baseConfig().WithDesign(regfile.DesignMonolithicNTV)
			ntvCfg.WritebackForwarding = fwd
			ntv = append(ntv, float64(r.run(w, ntvCfg, "fwd-ntv-"+suffix).TotalCycles())/base)
		}
		out = append(out, ForwardingPoint{
			Forwarding: fwd,
			GeoHybrid:  stats.Geomean(hyb),
			GeoNTV:     stats.Geomean(ntv),
		})
	}
	return out
}

// PilotChoicePoint is one pilot-warp selection in the sensitivity study.
type PilotChoicePoint struct {
	// PilotWarpIndex is which warp of the first CTA acts as pilot.
	PilotWarpIndex int
	// AvgFRFShare is the suite-average capture under pilot profiling.
	AvgFRFShare float64
}

// PilotChoiceSensitivity verifies the Section III-A2 claim that the
// profiling result does not depend on which warp serves as the pilot:
// warps of a kernel agree on the sorted register order, so any of them
// identifies the same top set.
func PilotChoiceSensitivity(r *Runner) []PilotChoicePoint {
	var out []PilotChoicePoint
	for _, idx := range []int{0, 1, 3} {
		var shares []float64
		for _, w := range workloads.All() {
			cfg := r.baseConfig().WithDesign(regfile.DesignPartitioned)
			cfg.Profiling = profile.TechniquePilot
			cfg.PilotWarpIndex = idx
			rs := r.run(w, cfg, "pilot-idx-"+strconv.Itoa(idx))
			shares = append(shares, rs.FRFShare())
		}
		out = append(out, PilotChoicePoint{PilotWarpIndex: idx, AvgFRFShare: stats.Mean(shares)})
	}
	return out
}

// GatingRow reports the register power-gating extension for one
// benchmark: leakage when unallocated register rows are switched off, on
// top of the paper's partitioning.
type GatingRow struct {
	Benchmark string
	// Occupancy is the fraction of warp-register slots the resident
	// kernel allocates (regs/thread x resident warps / 2048).
	Occupancy float64
	// Leakage (mW) for the partitioned design with and without gating,
	// and the resulting savings vs the MRF@STV baseline.
	PartitionedMW float64
	GatedMW       float64
	SavingsPct    float64
	GatedSavings  float64
}

// RegisterGatingExtension models the paper's cited related-work direction
// (power-gating unallocated registers, as in the Warped Register File) on
// top of the partitioned design. Table I shows kernels allocate ~16 of 63
// registers on average, so most SRF rows can be gated.
func RegisterGatingExtension(r *Runner) []GatingRow {
	base := energy.LeakageMW(regfile.DesignMonolithicSTV)
	var rows []GatingRow
	for _, w := range workloads.All() {
		k := w.Kernels[0]
		warps := (k.ThreadsPerCTA + 31) / 32
		resident := 16
		if bySlots := 64 / warps; bySlots < resident {
			resident = bySlots
		}
		if byRegs := 2048 / (warps * k.Prog.NumRegs); byRegs < resident {
			resident = byRegs
		}
		occupancy := float64(resident*warps*k.Prog.NumRegs) / 2048
		if occupancy > 1 {
			occupancy = 1
		}
		part := energy.LeakageMW(regfile.DesignPartitioned)
		gated := energy.GatedLeakageMW(regfile.DesignPartitioned, occupancy)
		rows = append(rows, GatingRow{
			Benchmark:     w.Name,
			Occupancy:     occupancy,
			PartitionedMW: part,
			GatedMW:       gated,
			SavingsPct:    (1 - part/base) * 100,
			GatedSavings:  (1 - gated/base) * 100,
		})
	}
	return rows
}

// ProfilingTechniqueAblation compares the four deployable techniques
// end to end on the adaptive partitioned design.
func ProfilingTechniqueAblation(r *Runner) []TechniqueEnergyRow {
	techniques := []profile.Technique{
		profile.TechniqueStaticFirstN,
		profile.TechniqueCompiler,
		profile.TechniquePilot,
		profile.TechniqueHybrid,
	}
	rows := make([]TechniqueEnergyRow, 0, len(techniques))
	for _, tech := range techniques {
		var shares, savings, ratios []float64
		for _, w := range workloads.All() {
			cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			cfg.Profiling = tech
			rs := r.run(w, cfg, "abl-"+tech.String())
			shares = append(shares, rs.FRFShare())
			savings = append(savings,
				energy.Savings(energy.DynamicPJ(regfile.DesignPartitionedAdaptive, rs.PartAccesses()),
					energy.BaselineDynamicPJ(rs.TotalAccesses())))
			ratios = append(ratios, float64(rs.TotalCycles())/float64(r.baselineRun(w).TotalCycles()))
		}
		rows = append(rows, TechniqueEnergyRow{
			Technique:   tech.String(),
			AvgFRFShare: stats.Mean(shares),
			AvgSavings:  stats.Mean(savings),
			GeoSlowdown: stats.Geomean(ratios),
		})
	}
	return rows
}
