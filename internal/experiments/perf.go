package experiments

import (
	"strconv"

	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// Figure12Row is one benchmark's normalized execution time (cycles over
// the MRF@STV baseline using the same scheduler; > 1 = slowdown).
type Figure12Row struct {
	Benchmark string
	// GTO scheduler variants.
	PartitionedHybridGTO   float64
	PartitionedCompilerGTO float64
	MonolithicNTVGTO       float64
	// TL and LRR scheduler variants of the proposed design (the paper:
	// "our technique shows a consistent performance across all the
	// schedulers"), each normalized to its own-scheduler baseline.
	PartitionedHybridTL  float64
	PartitionedHybridLRR float64
}

// Figure12Result is the dataset plus geomean overheads. The paper: the
// proposed design costs < 2% (GTO), MRF@NTV costs 7.1%, and hybrid beats
// compiler-only profiling by ~2%.
type Figure12Result struct {
	Rows []Figure12Row
	// Geomean normalized execution times.
	GeoHybridGTO   float64
	GeoCompilerGTO float64
	GeoNTVGTO      float64
	GeoHybridTL    float64
	GeoHybridLRR   float64
}

// Figure12 reproduces Figure 12.
func Figure12(r *Runner) Figure12Result {
	var res Figure12Result
	var hg, cg, ng, ht, hl []float64
	for _, w := range workloads.All() {
		baseGTO := float64(r.baselineRun(w).TotalCycles())

		baseTLCfg := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
		baseTLCfg.Policy = sim.PolicyTL
		baseTL := float64(r.run(w, baseTLCfg, "base-stv-tl").TotalCycles())

		baseLRRCfg := r.baseConfig().WithDesign(regfile.DesignMonolithicSTV)
		baseLRRCfg.Policy = sim.PolicyLRR
		baseLRR := float64(r.run(w, baseLRRCfg, "base-stv-lrr").TotalCycles())

		hybrid := float64(r.hybridRun(w).TotalCycles())

		compCfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
		compCfg.Profiling = profile.TechniqueCompiler
		comp := float64(r.run(w, compCfg, "part-adaptive-compiler").TotalCycles())

		ntvCfg := r.baseConfig().WithDesign(regfile.DesignMonolithicNTV)
		ntv := float64(r.run(w, ntvCfg, "base-ntv-gto").TotalCycles())

		tlCfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
		tlCfg.Policy = sim.PolicyTL
		tl := float64(r.run(w, tlCfg, "part-adaptive-hybrid-tl").TotalCycles())

		lrrCfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
		lrrCfg.Policy = sim.PolicyLRR
		lrr := float64(r.run(w, lrrCfg, "part-adaptive-hybrid-lrr").TotalCycles())

		row := Figure12Row{
			Benchmark:              w.Name,
			PartitionedHybridGTO:   hybrid / baseGTO,
			PartitionedCompilerGTO: comp / baseGTO,
			MonolithicNTVGTO:       ntv / baseGTO,
			PartitionedHybridTL:    tl / baseTL,
			PartitionedHybridLRR:   lrr / baseLRR,
		}
		res.Rows = append(res.Rows, row)
		hg = append(hg, row.PartitionedHybridGTO)
		cg = append(cg, row.PartitionedCompilerGTO)
		ng = append(ng, row.MonolithicNTVGTO)
		ht = append(ht, row.PartitionedHybridTL)
		hl = append(hl, row.PartitionedHybridLRR)
	}
	res.GeoHybridGTO = stats.Geomean(hg)
	res.GeoCompilerGTO = stats.Geomean(cg)
	res.GeoNTVGTO = stats.Geomean(ng)
	res.GeoHybridTL = stats.Geomean(ht)
	res.GeoHybridLRR = stats.Geomean(hl)
	return res
}

// LatencyPoint is one SRF-latency setting's average slowdown.
type LatencyPoint struct {
	SRFCycles   int
	GeoSlowdown float64 // normalized execution time (1.0 = baseline)
}

// SRFLatencySensitivity reproduces the Section V-C study: the proposed
// design with 3/4/5-cycle SRF accesses (paper: +0.5% at 4, +2.4% at 5
// relative to the 3-cycle design).
func SRFLatencySensitivity(r *Runner) []LatencyPoint {
	var out []LatencyPoint
	for _, srf := range []int{3, 4, 5} {
		var ratios []float64
		for _, w := range workloads.All() {
			cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			cfg.RF.Lat.SRF = srf
			key := "part-srf-" + itoa(srf)
			cycles := float64(r.run(w, cfg, key).TotalCycles())
			base := float64(r.baselineRun(w).TotalCycles())
			ratios = append(ratios, cycles/base)
		}
		out = append(out, LatencyPoint{SRFCycles: srf, GeoSlowdown: stats.Geomean(ratios)})
	}
	return out
}

// EpochPoint is one epoch-length setting of the adaptive FRF controller.
type EpochPoint struct {
	EpochCycles int
	GeoSlowdown float64
	AvgLowShare float64 // fraction of FRF accesses in low mode
}

// EpochSensitivity reproduces the Section V-C epoch sweep: the threshold
// is held at the same 20% ratio across lengths; performance is largely
// insensitive.
func EpochSensitivity(r *Runner) []EpochPoint {
	var out []EpochPoint
	for _, epoch := range []int{25, 50, 100, 200} {
		var ratios, lows []float64
		for _, w := range workloads.All() {
			cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			cfg.RF.Adaptive.EpochCycles = epoch
			cfg.RF.Adaptive = cfg.RF.Adaptive.WithThresholdRatio(0.2)
			key := "part-epoch-" + itoa(epoch)
			rs := r.run(w, cfg, key)
			base := float64(r.baselineRun(w).TotalCycles())
			ratios = append(ratios, float64(rs.TotalCycles())/base)
			parts := rs.PartAccesses()
			if frf := parts[regfile.PartFRFHigh] + parts[regfile.PartFRFLow]; frf > 0 {
				lows = append(lows, float64(parts[regfile.PartFRFLow])/float64(frf))
			}
		}
		out = append(out, EpochPoint{
			EpochCycles: epoch,
			GeoSlowdown: stats.Geomean(ratios),
			AvgLowShare: stats.Mean(lows),
		})
	}
	return out
}

// ThresholdPoint is one issue-count threshold of the phase detector.
type ThresholdPoint struct {
	Threshold   int
	GeoSlowdown float64
	AvgLowShare float64
}

// ThresholdSweep reproduces the Section V-B design-space exploration of
// the low-compute threshold (the paper settles on 85 of 400: < 0.5%
// overhead with 22% of FRF accesses in low mode).
func ThresholdSweep(r *Runner) []ThresholdPoint {
	var out []ThresholdPoint
	for _, th := range []int{40, 85, 160, 240} {
		var ratios, lows []float64
		for _, w := range workloads.All() {
			cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
			cfg.RF.Adaptive.Threshold = th
			key := "part-th-" + itoa(th)
			rs := r.run(w, cfg, key)
			base := float64(r.baselineRun(w).TotalCycles())
			ratios = append(ratios, float64(rs.TotalCycles())/base)
			parts := rs.PartAccesses()
			if frf := parts[regfile.PartFRFHigh] + parts[regfile.PartFRFLow]; frf > 0 {
				lows = append(lows, float64(parts[regfile.PartFRFLow])/float64(frf))
			}
		}
		out = append(out, ThresholdPoint{
			Threshold:   th,
			GeoSlowdown: stats.Geomean(ratios),
			AvgLowShare: stats.Mean(lows),
		})
	}
	return out
}

// SwapTablePenalty measures the conservative variant from Section III-B:
// the swapping table lookup costs one extra cycle on every partitioned RF
// access. The paper reports < 1% overhead versus the integrated design.
func SwapTablePenalty(r *Runner) float64 {
	var ratios []float64
	for _, w := range workloads.All() {
		cfg := r.baseConfig().WithDesign(regfile.DesignPartitionedAdaptive)
		cfg.RF.Lat.FRFHigh++
		cfg.RF.Lat.FRFLow++
		cfg.RF.Lat.SRF++
		slow := float64(r.run(w, cfg, "part-swap-extra").TotalCycles())
		fast := float64(r.hybridRun(w).TotalCycles())
		ratios = append(ratios, slow/fast)
	}
	return stats.Geomean(ratios)
}

func itoa(n int) string { return strconv.Itoa(n) }
