package experiments

import (
	"strings"
	"testing"

	"pilotrf/internal/workloads"
)

func TestEnergyReportConservesAndAudits(t *testing.T) {
	rows := EnergyReport(testRunner())
	if len(rows) != len(workloads.All()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(workloads.All()))
	}
	for _, r := range rows {
		if !r.Conserved {
			t.Errorf("%s: ledger does not conserve energy", r.Benchmark)
		}
		if r.DynamicPJ <= 0 || r.LeakagePJ <= 0 {
			t.Errorf("%s: non-positive energy: dyn=%v leak=%v", r.Benchmark, r.DynamicPJ, r.LeakagePJ)
		}
		var sum float64
		for _, pj := range r.DynamicByPartPJ {
			sum += pj
		}
		if sum != r.DynamicPJ {
			t.Errorf("%s: per-partition dynamic %v != total %v", r.Benchmark, sum, r.DynamicPJ)
		}
		if r.Epochs == 0 || r.HeatCells == 0 {
			t.Errorf("%s: empty attribution: epochs=%d cells=%d", r.Benchmark, r.Epochs, r.HeatCells)
		}
		if r.Audit.CompilerSeed == 0 {
			t.Errorf("%s: hybrid run recorded no compiler seeds", r.Benchmark)
		}
	}

	text := EnergyReportText(rows)
	if !strings.Contains(text, "ledger conservation") {
		t.Error("report text missing conservation summary")
	}
	if got := strings.Count(text, "\n"); got != len(rows)+2 {
		t.Errorf("report text has %d lines, want %d", got, len(rows)+2)
	}
}
