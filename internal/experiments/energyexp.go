package experiments

import (
	"pilotrf/internal/energy"
	"pilotrf/internal/fincacti"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// Figure10Row is one benchmark's partitioned-RF access distribution.
type Figure10Row struct {
	Benchmark string
	// Shares of all RF accesses serviced by each structure.
	FRFHigh, FRFLow, SRF float64
	// LowShareOfFRF is the fraction of FRF accesses served in low-power
	// mode (the paper averages ~22%).
	LowShareOfFRF float64
}

// Figure10Result is the Figure 10 dataset plus suite averages.
type Figure10Result struct {
	Rows             []Figure10Row
	AvgFRF           float64 // paper: ~62% of accesses to the FRF
	AvgLowShareOfFRF float64 // paper: ~22% of FRF accesses in low mode
}

// Figure10 reproduces Figure 10: where accesses go under the adaptive
// partitioned design with hybrid profiling (4 FRF registers, 50-cycle
// epochs, threshold 85/400).
func Figure10(r *Runner) Figure10Result {
	var res Figure10Result
	var frfs, lows []float64
	for _, w := range workloads.All() {
		rs := r.hybridRun(w)
		parts := rs.PartAccesses()
		total := float64(parts[0] + parts[1] + parts[2] + parts[3])
		if total == 0 {
			continue
		}
		row := Figure10Row{
			Benchmark: w.Name,
			FRFHigh:   float64(parts[regfile.PartFRFHigh]) / total,
			FRFLow:    float64(parts[regfile.PartFRFLow]) / total,
			SRF:       float64(parts[regfile.PartSRF]) / total,
		}
		if frf := row.FRFHigh + row.FRFLow; frf > 0 {
			row.LowShareOfFRF = row.FRFLow / frf
		}
		res.Rows = append(res.Rows, row)
		frfs = append(frfs, row.FRFHigh+row.FRFLow)
		lows = append(lows, row.LowShareOfFRF)
	}
	res.AvgFRF = stats.Mean(frfs)
	res.AvgLowShareOfFRF = stats.Mean(lows)
	return res
}

// Figure11Row is one benchmark's RF dynamic energy normalized to MRF@STV.
type Figure11Row struct {
	Benchmark string
	// PartitionedOnly disables the adaptive FRF (all FRF accesses at
	// high power); PartitionedAdaptive is the paper's full design.
	PartitionedOnly     float64
	PartitionedAdaptive float64
	MonolithicNTV       float64
}

// Figure11Result is the Figure 11 dataset plus averages. The paper
// reports 54% savings for the partitioned+adaptive design and 47% for
// the always-NTV monolithic RF.
type Figure11Result struct {
	Rows []Figure11Row
	// Average savings (1 - normalized energy).
	AvgSavingsAdaptive float64
	AvgSavingsPartOnly float64
	AvgSavingsNTV      float64
}

// Figure11 reproduces Figure 11: RF dynamic energy of the proposed
// designs normalized to the MRF@STV baseline, computed by pricing each
// design's access mix with the Table IV energies.
func Figure11(r *Runner) Figure11Result {
	var res Figure11Result
	var sa, sp, sn []float64
	for _, w := range workloads.All() {
		adaptive := r.hybridRun(w)
		partCfg := r.baseConfig().WithDesign(regfile.DesignPartitioned)
		partOnly := r.run(w, partCfg, "part-hybrid-noadaptive")

		base := energy.BaselineDynamicPJ(adaptive.TotalAccesses())
		row := Figure11Row{
			Benchmark:           w.Name,
			PartitionedAdaptive: energy.DynamicPJ(regfile.DesignPartitionedAdaptive, adaptive.PartAccesses()) / base,
		}
		row.PartitionedOnly = energy.DynamicPJ(regfile.DesignPartitioned, partOnly.PartAccesses()) /
			energy.BaselineDynamicPJ(partOnly.TotalAccesses())
		// The always-NTV MRF services every access at the NTV energy;
		// its normalized energy is a per-access constant.
		var ntvParts [4]uint64
		ntvParts[regfile.PartMRF] = adaptive.TotalAccesses()
		row.MonolithicNTV = energy.DynamicPJ(regfile.DesignMonolithicNTV, ntvParts) / base
		res.Rows = append(res.Rows, row)
		sa = append(sa, 1-row.PartitionedAdaptive)
		sp = append(sp, 1-row.PartitionedOnly)
		sn = append(sn, 1-row.MonolithicNTV)
	}
	res.AvgSavingsAdaptive = stats.Mean(sa)
	res.AvgSavingsPartOnly = stats.Mean(sp)
	res.AvgSavingsNTV = stats.Mean(sn)
	return res
}

// LeakageReport is the Section V-B leakage analysis.
type LeakageReport struct {
	MRFLeakageMW         float64
	FRFLeakageMW         float64
	SRFLeakageMW         float64
	FRFShareOfMRF        float64 // paper: ~21.5%
	SRFShareOfMRF        float64 // paper: ~39.7%
	SavingsPct           float64 // paper: ~39%
	NTVMonolithicSavings float64
}

// Leakage reproduces the leakage-power analysis. It is workload
// independent (leakage is a structural property of the partitions).
func Leakage() LeakageReport {
	mrf := energy.LeakageMW(regfile.DesignMonolithicSTV)
	frf := fincacti.FRFConfig(fincacti.ModeNormal).LeakagePowerMW()
	srf := fincacti.SRFConfig().LeakagePowerMW()
	return LeakageReport{
		MRFLeakageMW:         mrf,
		FRFLeakageMW:         frf,
		SRFLeakageMW:         srf,
		FRFShareOfMRF:        frf / mrf,
		SRFShareOfMRF:        srf / mrf,
		SavingsPct:           (1 - (frf+srf)/mrf) * 100,
		NTVMonolithicSavings: (1 - energy.LeakageMW(regfile.DesignMonolithicNTV)/mrf) * 100,
	}
}

// EnergyBreakdown prices one benchmark under every design, including
// leakage integrated over each run's cycles (used by examples and the
// ablation benches).
type EnergyBreakdown struct {
	Benchmark string
	Reports   map[string]energy.Report
}

// Breakdown builds the full energy report for one benchmark.
func Breakdown(r *Runner, benchmark string) EnergyBreakdown {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	adaptive := r.hybridRun(w)
	base := r.baselineRun(w)
	ntvCfg := r.baseConfig().WithDesign(regfile.DesignMonolithicNTV)
	ntv := r.run(w, ntvCfg, "base-ntv-gto")

	mk := func(d regfile.Design, rs sim.RunStats) energy.Report {
		return energy.ForRun(d, rs.PartAccesses(), rs.TotalCycles())
	}
	return EnergyBreakdown{
		Benchmark: benchmark,
		Reports: map[string]energy.Report{
			"MRF@STV":              mk(regfile.DesignMonolithicSTV, base),
			"MRF@NTV":              mk(regfile.DesignMonolithicNTV, ntv),
			"Partitioned+Adaptive": mk(regfile.DesignPartitionedAdaptive, adaptive),
		},
	}
}
