package experiments

// The bench-harness runner: executes the root bench_test.go suite (one
// full pass per sample) and parses the results. cmd/experiments
// -bench-json/-bench-samples and cmd/benchwatch record both drive the
// suite through this one implementation, so a "sample" means the same
// thing everywhere: one `go test -run=^$ -bench=. -benchtime=1x .`
// pass over every table and figure of the paper.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"pilotrf/internal/benchjson"
)

// benchGoArgs is the canonical harness invocation, relative to the
// module root.
var benchGoArgs = []string{"test", "-run=^$", "-bench=.", "-benchtime=1x", "."}

// BenchHarness runs the root benchmark suite.
type BenchHarness struct {
	// Command, when non-empty, replaces the default `go test` argv —
	// the escape hatch tests use to substitute a fast fake suite.
	Command []string
	// Stderr receives the child's stderr; nil means os.Stderr.
	Stderr io.Writer
}

// CommandLine describes the command one sample executes, for report
// provenance strings.
func (h BenchHarness) CommandLine() string {
	if len(h.Command) > 0 {
		return strings.Join(h.Command, " ")
	}
	return "go " + strings.Join(benchGoArgs, " ")
}

// RunSample executes one full harness pass and returns the parsed
// benchmark lines.
func (h BenchHarness) RunSample() ([]benchjson.Benchmark, error) {
	var cmd *exec.Cmd
	if len(h.Command) > 0 {
		cmd = exec.Command(h.Command[0], h.Command[1:]...)
	} else {
		goBin, err := exec.LookPath("go")
		if err != nil {
			return nil, fmt.Errorf("bench harness needs the go toolchain: %w", err)
		}
		modOut, err := exec.Command(goBin, "env", "GOMOD").Output()
		if err != nil {
			return nil, fmt.Errorf("locating module root: %w", err)
		}
		gomod := strings.TrimSpace(string(modOut))
		if gomod == "" || gomod == os.DevNull {
			return nil, fmt.Errorf("not inside the pilotrf module (go env GOMOD is empty)")
		}
		cmd = exec.Command(goBin, benchGoArgs...)
		cmd.Dir = filepath.Dir(gomod)
	}

	var out bytes.Buffer
	cmd.Stdout = &out
	if h.Stderr != nil {
		cmd.Stderr = h.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchmark run failed: %w\n%s", err, out.String())
	}
	benches, err := benchjson.Parse(bytes.NewReader(out.Bytes()))
	if err != nil {
		return nil, err
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", out.String())
	}
	return benches, nil
}
