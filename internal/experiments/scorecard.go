package experiments

import (
	"fmt"
	"math"
	"strings"

	"pilotrf/internal/finfet"
)

// ScoreKind classifies how a paper value is reproduced.
type ScoreKind uint8

// Score kinds.
const (
	// Calibrated values are model anchors: the circuit models were fit
	// to them, and they must match tightly.
	Calibrated ScoreKind = iota
	// Measured values come out of the simulator; the reproduction
	// target is the shape, so tolerances are loose and recorded.
	Measured
)

// String returns the kind name.
func (k ScoreKind) String() string {
	if k == Calibrated {
		return "calibrated"
	}
	return "measured"
}

// ScoreRow is one paper-vs-measured comparison.
type ScoreRow struct {
	ID          string
	Description string
	Kind        ScoreKind
	Paper       float64
	Got         float64
	// RelTol is the acceptance band (relative); Pass reports whether
	// Got landed inside it.
	RelTol float64
	Pass   bool
}

// String renders the row as one scorecard line.
func (r ScoreRow) String() string {
	mark := "PASS"
	if !r.Pass {
		mark = "MISS"
	}
	return fmt.Sprintf("%-4s %-28s %-10s paper=%-10.4g got=%-10.4g (±%.0f%%) %s",
		mark, r.ID, r.Kind, r.Paper, r.Got, r.RelTol*100, r.Description)
}

// Scorecard evaluates the full set of headline numbers the paper reports
// against this reproduction. It is the one-glance answer to "how close is
// the reproduction?" — cmd/experiments prints it with -only scorecard.
func Scorecard(r *Runner) []ScoreRow {
	d := finfet.Default7nm()
	t4 := Table4()
	fig2 := Figure2(r)
	fig10 := Figure10(r)
	fig11 := Figure11(r)
	fig12 := Figure12(r)
	leak := Leakage()
	ports := RFCPortScaling()
	area := Area()

	rows := []ScoreRow{
		// Circuit-level anchors (tight).
		{ID: "fig1.delay-ratio", Description: "FO4 chain delay NTV:STV", Kind: Calibrated,
			Paper: 3.0, Got: d.DelayRatioNTV(), RelTol: 0.02},
		{ID: "table3.ion-ntv", Description: "8T I_on at NTV (A/um)", Kind: Calibrated,
			Paper: 7.505e-4, Got: d.IOn(finfet.NTV, finfet.BackGateOn), RelTol: 0.01},
		{ID: "table3.snm-stv", Description: "8T SNM at STV (V)", Kind: Calibrated,
			Paper: 0.144, Got: finfet.Cell{Type: finfet.Cell8T}.SNM(finfet.STV, finfet.BackGateOn), RelTol: 0.01},
		{ID: "table4.mrf-pj", Description: "MRF access energy (pJ)", Kind: Calibrated,
			Paper: 14.9, Got: t4[3].AccessEnergyPJ, RelTol: 0.01},
		{ID: "table4.srf-pj", Description: "SRF access energy (pJ)", Kind: Calibrated,
			Paper: 7.03, Got: t4[2].AccessEnergyPJ, RelTol: 0.01},
		{ID: "table4.frfhigh-pj", Description: "FRF_high access energy (pJ)", Kind: Calibrated,
			Paper: 7.65, Got: t4[1].AccessEnergyPJ, RelTol: 0.01},
		{ID: "table4.frflow-pj", Description: "FRF_low access energy (pJ)", Kind: Calibrated,
			Paper: 5.25, Got: t4[0].AccessEnergyPJ, RelTol: 0.01},
		{ID: "table4.mrf-leak", Description: "MRF leakage (mW)", Kind: Calibrated,
			Paper: 33.8, Got: t4[3].LeakageMW, RelTol: 0.01},
		{ID: "leakage.savings", Description: "RF leakage saving (%)", Kind: Calibrated,
			Paper: 39, Got: leak.SavingsPct, RelTol: 0.03},
		{ID: "area.proposed", Description: "proposed RF area (mm^2)", Kind: Calibrated,
			Paper: 0.214, Got: area.ProposedMM2, RelTol: 0.01},
		{ID: "rfc.port-small", Description: "RFC (R2,W1) vs MRF energy", Kind: Calibrated,
			Paper: 0.37, Got: ports[0].RelativeToMRF, RelTol: 0.01},
		{ID: "rfc.port-big", Description: "RFC (R8,W4) vs MRF energy", Kind: Calibrated,
			Paper: 3.0, Got: ports[2].RelativeToMRF, RelTol: 0.02},

		// Architecture-level measurements (shape: loose bands).
		{ID: "fig2.top3", Description: "avg accesses to top-3 regs", Kind: Measured,
			Paper: 0.62, Got: fig2.Avg3, RelTol: 0.15},
		{ID: "fig2.top4", Description: "avg accesses to top-4 regs", Kind: Measured,
			Paper: 0.72, Got: fig2.Avg4, RelTol: 0.15},
		{ID: "fig2.top5", Description: "avg accesses to top-5 regs", Kind: Measured,
			Paper: 0.77, Got: fig2.Avg5, RelTol: 0.15},
		{ID: "fig10.frf-share", Description: "accesses served by the FRF", Kind: Measured,
			Paper: 0.62, Got: fig10.AvgFRF, RelTol: 0.30},
		{ID: "fig10.low-share", Description: "FRF accesses in low mode", Kind: Measured,
			Paper: 0.22, Got: fig10.AvgLowShareOfFRF, RelTol: 0.40},
		{ID: "fig11.savings", Description: "dynamic energy saving", Kind: Measured,
			Paper: 0.54, Got: res11Savings(fig11), RelTol: 0.15},
		{ID: "fig11.ntv-savings", Description: "always-NTV dynamic saving", Kind: Measured,
			Paper: 0.47, Got: fig11.AvgSavingsNTV, RelTol: 0.15},
		{ID: "fig12.overhead", Description: "proposed slowdown (x)", Kind: Measured,
			Paper: 1.02, Got: fig12.GeoHybridGTO, RelTol: 0.03},
		{ID: "fig12.ntv-overhead", Description: "always-NTV slowdown (x)", Kind: Measured,
			Paper: 1.071, Got: fig12.GeoNTVGTO, RelTol: 0.08},
	}
	for i := range rows {
		rows[i].Pass = withinTol(rows[i].Got, rows[i].Paper, rows[i].RelTol)
	}
	return rows
}

func res11Savings(f Figure11Result) float64 { return f.AvgSavingsAdaptive }

func withinTol(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

// ScorecardText renders the scorecard with a summary line.
func ScorecardText(rows []ScoreRow) string {
	var b strings.Builder
	pass := 0
	for _, r := range rows {
		fmt.Fprintln(&b, " ", r)
		if r.Pass {
			pass++
		}
	}
	fmt.Fprintf(&b, "  %d/%d within tolerance\n", pass, len(rows))
	return b.String()
}
