// Package kerngen generates random but structurally valid kernels for
// fuzz-style testing: the assembler round-trips them, and the simulator
// and the reference interpreter must agree on them instruction for
// instruction. Programs are built from the kernel builder's structured
// helpers, so reconvergence points are correct by construction, and all
// generation is seeded (reproducible failures).
package kerngen

import (
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/stats"
)

// Options bounds the generated program.
type Options struct {
	// Regs is the architected register budget (default 16).
	Regs int
	// MaxBlocks bounds the number of top-level structure blocks
	// (default 6).
	MaxBlocks int
	// Barriers permits BAR instructions (callers running single warps
	// should disable them).
	Barriers bool
}

func (o Options) withDefaults() Options {
	if o.Regs < 12 {
		o.Regs = 16 // roles below need room: 6 fixed + scratch + 3 counters
	}
	if o.MaxBlocks == 0 {
		o.MaxBlocks = 6
	}
	return o
}

// Program generates a random valid program from the seed.
func Program(seed uint64, opts Options) *kernel.Program {
	opts = opts.withDefaults()
	rng := stats.NewRNG(seed)
	b := kernel.NewBuilder("gen", opts.Regs)
	g := &gen{rng: rng, b: b, opts: opts}
	b.S2R(isa.R(0), isa.SRTid)
	b.MOVI(isa.R(1), int32(rng.Intn(100)))
	blocks := 2 + rng.Intn(opts.MaxBlocks-1)
	for i := 0; i < blocks; i++ {
		g.block(0)
	}
	b.EXIT()
	return b.MustBuild()
}

type gen struct {
	rng  *stats.RNG
	b    *kernel.Builder
	opts Options
}

// reg picks a register in [lo, hi).
func (g *gen) reg(lo, hi int) isa.Reg { return isa.R(lo + g.rng.Intn(hi-lo)) }

// instr emits one random data instruction. Register roles keep generated
// programs terminating: R0/R1 hold the thread id and a constant, R2-R5
// are loop-bound/address registers (only ever set to small values), and
// the top three registers are loop counters, one per nesting depth.
// Random destinations stay strictly inside the scratch range between
// those groups; sources may read anything.
func (g *gen) instr() {
	dst := g.reg(6, g.opts.Regs-3)
	a := g.reg(0, g.opts.Regs)
	b2 := g.reg(0, g.opts.Regs)
	c := g.reg(0, g.opts.Regs)
	switch g.rng.Intn(13) {
	case 0:
		g.b.IADD(dst, a, b2)
	case 1:
		g.b.ISUB(dst, a, b2)
	case 2:
		g.b.IMAD(dst, a, b2, c)
	case 3:
		g.b.SHLI(dst, a, int32(g.rng.Intn(6)))
	case 4:
		g.b.ANDI(dst, a, int32(g.rng.Intn(256)))
	case 5:
		g.b.XOR(dst, a, b2)
	case 6:
		g.b.IMIN(dst, a, b2)
	case 7:
		g.b.FFMA(dst, a, b2, c)
	case 8:
		g.b.FADD(dst, a, b2)
	case 9:
		g.b.LDG(dst, g.reg(0, 4), int32(4*g.rng.Intn(8)))
	case 10:
		g.b.LDS(dst, g.reg(0, 4), int32(4*g.rng.Intn(8)))
	case 11:
		g.b.STG(g.reg(0, 4), int32(4*g.rng.Intn(8)), a)
	case 12:
		g.b.SHFL(dst, a, b2)
	}
}

// block emits one structured region; depth bounds nesting. Barriers are
// only legal in uniform control flow (as in CUDA), so they appear at
// depth 0 only.
func (g *gen) block(depth int) {
	choices := 3
	if g.opts.Barriers && depth == 0 {
		choices = 4
	}
	if depth >= 2 {
		choices = 1 // straight-line only at depth
	}
	switch g.rng.Intn(choices) {
	case 0:
		for i := 0; i < 1+g.rng.Intn(5); i++ {
			g.instr()
		}
	case 1:
		// Counted loop, possibly with a data-dependent bound. The
		// counter register is fixed per nesting depth so inner loops
		// can never reset an outer counter.
		ctr := isa.R(g.opts.Regs - 3 + depth)
		p := isa.P(g.rng.Intn(3))
		if g.rng.Intn(3) == 0 {
			// Divergent trip count from the thread id.
			bound := g.reg(2, 6)
			g.b.ANDI(bound, isa.R(0), int32(1+g.rng.Intn(7)))
			g.b.RegCountedLoop(ctr, p, bound, func() {
				g.block(depth + 1)
			})
		} else {
			g.b.CountedLoop(ctr, p, int32(1+g.rng.Intn(6)), func() {
				g.block(depth + 1)
			})
		}
	case 2:
		p := isa.P(g.rng.Intn(3))
		g.b.SETPI(p, g.reg(0, 8), isa.CmpOp(g.rng.Intn(6)), int32(g.rng.Intn(64)))
		if g.rng.Intn(2) == 0 {
			g.b.If(p, g.rng.Intn(2) == 0, func() { g.block(depth + 1) })
		} else {
			g.b.IfElse(p,
				func() { g.block(depth + 1) },
				func() { g.block(depth + 1) },
			)
		}
	case 3:
		g.b.BAR()
	}
}
