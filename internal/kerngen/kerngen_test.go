package kerngen

import (
	"testing"

	"pilotrf/internal/cfg"
	"pilotrf/internal/kernel"
	"pilotrf/internal/ref"
	"pilotrf/internal/sim"
)

func TestGeneratedProgramsAreValid(t *testing.T) {
	for seed := uint64(1); seed <= 300; seed++ {
		p := Program(seed, Options{})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := cfg.CheckReconvergence(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratedProgramsVary(t *testing.T) {
	a := Program(1, Options{})
	b := Program(2, Options{})
	if a.Len() == b.Len() && a.Disassemble() == b.Disassemble() {
		t.Error("different seeds produced identical programs")
	}
	a2 := Program(1, Options{})
	if a.Disassemble() != a2.Disassemble() {
		t.Error("same seed produced different programs")
	}
}

func TestBarrierOption(t *testing.T) {
	// With barriers disabled no BAR may appear.
	for seed := uint64(1); seed <= 50; seed++ {
		p := Program(seed, Options{Barriers: false})
		for pc := range p.Instrs {
			if p.At(pc).Op.String() == "BAR" {
				t.Fatalf("seed %d: BAR emitted despite Barriers=false", seed)
			}
		}
	}
}

// The fuzz-style differential test: for hundreds of random programs, the
// timed simulator and the reference interpreter must agree exactly on
// every functional count.
func TestDifferentialFuzz(t *testing.T) {
	cfgSim := sim.DefaultConfig()
	cfgSim.NumSMs = 1
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		// Barriers need all warps resident; keep one CTA of 2 warps.
		p := Program(seed, Options{Barriers: true})
		k := &kernel.Kernel{Prog: p, ThreadsPerCTA: 64, NumCTAs: 2}

		g, err := sim.New(cfgSim)
		if err != nil {
			t.Fatal(err)
		}
		simKS, err := g.RunKernel(k)
		if err != nil {
			t.Fatalf("seed %d: sim: %v\n%s", seed, err, p.Disassemble())
		}
		refRes, err := ref.Run(k, cfgSim.Seed)
		if err != nil {
			t.Fatalf("seed %d: ref: %v\n%s", seed, err, p.Disassemble())
		}
		if simKS.WarpInstrs != refRes.WarpInstrs ||
			simKS.ThreadInstrs != refRes.ThreadInstrs ||
			simKS.RegReads != refRes.RegReads ||
			simKS.RegWrites != refRes.RegWrites {
			t.Fatalf("seed %d: sim=%d/%d/%d/%d ref=%d/%d/%d/%d\n%s",
				seed,
				simKS.WarpInstrs, simKS.ThreadInstrs, simKS.RegReads, simKS.RegWrites,
				refRes.WarpInstrs, refRes.ThreadInstrs, refRes.RegReads, refRes.RegWrites,
				p.Disassemble())
		}
		for reg := 0; reg < p.NumRegs; reg++ {
			if simKS.RegHist.Count(reg) != refRes.RegHist.Count(reg) {
				t.Fatalf("seed %d: R%d sim=%d ref=%d", seed, reg,
					simKS.RegHist.Count(reg), refRes.RegHist.Count(reg))
			}
		}
	}
}
