package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"pilotrf/internal/jobs"
	"pilotrf/internal/trace"
)

// runTraced runs the test spec with a deterministic (no-wall) recorder
// and returns the span NDJSON bytes plus the report.
func runTraced(t *testing.T, workers int, cache *jobs.Cache) ([]byte, Report) {
	t.Helper()
	rec := trace.NewRecorder(false)
	rep, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, workers, nil), Cache: cache, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteSpans(&buf, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestCampaignSpanTreeWorkerCountInvariant pins the acceptance
// criterion: the span tree — ids, parentage, annotations — is
// byte-identical at one worker and at eight.
func TestCampaignSpanTreeWorkerCountInvariant(t *testing.T) {
	seq, _ := runTraced(t, 1, nil)
	par, _ := runTraced(t, 8, nil)
	if !bytes.Equal(seq, par) {
		t.Fatalf("span NDJSON differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", seq, par)
	}
	spans, err := trace.ReadSpans(bytes.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	root, err := trace.BuildTree(spans)
	if err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	if root.Name != "campaign" {
		t.Fatalf("root span %q, want campaign", root.Name)
	}
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
	}
	// 1 campaign + phase.golden + phase.trials, 1 golden, 3 cells,
	// 9 trials, and pool.task spans for 1 golden + 9 trial tasks.
	want := map[string]int{
		"campaign": 1, "phase.golden": 1, "phase.trials": 1,
		"golden": 1, "cell": 3, "trial": 9, "pool.task": 10,
	}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("%d %s spans, want %d (all: %v)", counts[name], name, n, counts)
		}
	}
	for _, s := range spans {
		switch s.Name {
		case "trial":
			if s.Attrs["outcome"] == "" {
				t.Fatalf("trial span missing outcome: %+v", s)
			}
		case "cell", "golden":
			if s.Attrs["cache"] != "miss" {
				t.Fatalf("cold-run %s span cache=%q, want miss", s.Name, s.Attrs["cache"])
			}
		}
	}
}

// TestCampaignTracingLeavesReportIdentical asserts tracing perturbs
// nothing: the report bytes with tracing on equal the untraced run's.
func TestCampaignTracingLeavesReportIdentical(t *testing.T) {
	plain, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 2, nil)})
	if err != nil {
		t.Fatal(err)
	}
	_, traced := runTraced(t, 2, nil)
	pb, _ := json.MarshalIndent(plain, "", "  ")
	tb, _ := json.MarshalIndent(traced, "", "  ")
	if !bytes.Equal(pb, tb) {
		t.Fatalf("tracing changed the report:\n--- plain\n%s\n--- traced\n%s", pb, tb)
	}
}

// TestCampaignTraceCacheAnnotations: a warm re-run flips the golden and
// cell spans to cache=hit, drops the phase/trial/pool spans (nothing
// recomputes), and still forms a valid tree with the same trace id.
func TestCampaignTraceCacheAnnotations(t *testing.T) {
	cache, err := jobs.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cold, coldRep := runTraced(t, 2, cache)
	warm, warmRep := runTraced(t, 2, cache)

	cb, _ := json.MarshalIndent(coldRep, "", "  ")
	wb, _ := json.MarshalIndent(warmRep, "", "  ")
	if !bytes.Equal(cb, wb) {
		t.Fatal("warm report differs from cold")
	}

	coldSpans, err := trace.ReadSpans(bytes.NewReader(cold))
	if err != nil {
		t.Fatal(err)
	}
	warmSpans, err := trace.ReadSpans(bytes.NewReader(warm))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.BuildTree(warmSpans); err != nil {
		t.Fatalf("warm tree invalid: %v", err)
	}
	if coldSpans[0].Trace != warmSpans[0].Trace {
		t.Fatal("trace id not stable across runs of the same spec")
	}
	for _, s := range warmSpans {
		switch s.Name {
		case "golden", "cell":
			if s.Attrs["cache"] != "hit" {
				t.Fatalf("warm %s span cache=%q, want hit", s.Name, s.Attrs["cache"])
			}
			if s.Name == "cell" && s.Attrs["masked"] == "" && s.Attrs["sdc"] == "" {
				t.Fatalf("warm cell span missing outcome attrs: %+v", s.Attrs)
			}
		case "trial", "pool.task", "phase.golden", "phase.trials":
			t.Fatalf("warm run recorded a %s span; nothing should recompute", s.Name)
		}
	}
	// Cell spans are parented to the campaign root in both runs, so
	// their content-derived ids are stable cold→warm. (Golden spans
	// legitimately differ: a computed golden nests under phase.golden,
	// a cache hit under the root, and the parent is part of the id.)
	coldIDs := map[string]bool{}
	for _, s := range coldSpans {
		if s.Name == "cell" {
			coldIDs[s.ID] = true
		}
	}
	for _, s := range warmSpans {
		if s.Name == "cell" && !coldIDs[s.ID] {
			t.Fatalf("warm cell span id %s absent from cold run", s.ID)
		}
	}
}

// TestCampaignTraceUnderParentContext: when ctx already carries a span
// (the job server's per-job root), the campaign span nests under it
// instead of rooting a new trace.
func TestCampaignTraceUnderParentContext(t *testing.T) {
	rec := trace.NewRecorder(false)
	root := rec.Root("job", trace.TraceID("campaign-parent-test"), "job-1")
	ctx := trace.NewContext(context.Background(), root.Context())
	if _, err := Run(ctx, testSpec(), Options{Pool: newPool(t, 2, nil)}); err != nil {
		t.Fatal(err)
	}
	root.End()
	spans := rec.Spans()
	node, err := trace.BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if node.Name != "job" || len(node.Children) != 1 || node.Children[0].Name != "campaign" {
		t.Fatalf("campaign did not nest under job root: %+v", node)
	}
	if spans[0].Trace != trace.TraceID("campaign-parent-test") {
		t.Fatal("campaign spans did not inherit the parent trace id")
	}
}

// TestCampaignNoTraceNoRecorder: without a recorder or span context,
// Run records nothing and succeeds (the disabled path).
func TestCampaignNoTraceNoRecorder(t *testing.T) {
	if _, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 1, nil)}); err != nil {
		t.Fatal(err)
	}
}
