package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
)

// testSpec is a small campaign that still exercises every classification
// path cheaply.
func testSpec() Spec {
	return Spec{
		Benchmarks: []string{"sgemm"},
		Designs:    []string{"part-adaptive"},
		Protect:    []string{"none", "parity", "secded"},
		Trials:     3,
		Rate:       2e-11,
		Seed:       42,
		Scale:      0.05,
		SMs:        1,
	}
}

func newPool(t *testing.T, workers int, reg *telemetry.Registry) *jobs.Pool {
	t.Helper()
	p, err := jobs.New(jobs.Config{Workers: workers, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestParallelMatchesSequential is the engine's core property: the
// report marshals to identical bytes whether one worker or many ran the
// grid.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 4, nil)})
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := json.MarshalIndent(seq, "", "  ")
	pb, _ := json.MarshalIndent(par, "", "  ")
	if string(sb) != string(pb) {
		t.Fatalf("parallel report differs from sequential:\n--- seq\n%s\n--- par\n%s", sb, pb)
	}
	if len(seq.Cells) != 3 {
		t.Fatalf("%d cells, want 3", len(seq.Cells))
	}
	for i, c := range seq.Cells {
		if got := c.Outcomes.Masked + c.Outcomes.Corrected + c.Outcomes.DetectedUnrecoverable + c.Outcomes.SDC; got != seq.Trials {
			t.Errorf("cell %d outcomes sum to %d, want %d", i, got, seq.Trials)
		}
	}
}

// TestCacheResume: a second run over a warm cache recomputes nothing —
// zero pool jobs — and returns the identical report; a corrupted entry
// degrades to recomputation, not a crash or a wrong report.
func TestCacheResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := jobs.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 2, nil), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	second, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 2, reg), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached report differs from computed report")
	}
	if n := reg.Map()["jobs_submitted"]; n != 0 {
		t.Fatalf("warm-cache run submitted %v jobs, want 0", n)
	}

	// Corrupt every cache entry; the run must quietly recompute.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("cache directory empty after a cached run")
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	third, err := Run(context.Background(), testSpec(), Options{Pool: newPool(t, 2, nil), Cache: cache})
	if err != nil {
		t.Fatalf("run over corrupted cache: %v", err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("recomputed-after-corruption report differs")
	}
	if st := cache.Stats(); st.Corrupt == 0 {
		t.Error("corrupted entries not counted")
	}
}

// TestGoldenSharedAcrossSchemes: the golden run count equals
// designs x workloads, not designs x workloads x schemes — one golden
// serves every protection scheme's trials. With a warm golden cache and
// a cold cell cache, only the trials run.
func TestGoldenSharedAcrossSchemes(t *testing.T) {
	spec := testSpec()
	cache, err := jobs.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if _, err := Run(context.Background(), spec, Options{Pool: newPool(t, 2, reg), Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// 1 golden + 3 schemes x 3 trials = 10 pool jobs.
	if n := reg.Map()["jobs_submitted"]; n != 10 {
		t.Fatalf("cold run submitted %v jobs, want 10 (1 golden + 9 trials)", n)
	}

	// Reseeding invalidates cells but not goldens: the next run
	// resubmits only the 9 trials.
	spec.Seed = 43
	reg2 := telemetry.NewRegistry()
	if _, err := Run(context.Background(), spec, Options{Pool: newPool(t, 2, reg2), Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if n := reg2.Map()["jobs_submitted"]; n != 9 {
		t.Fatalf("reseeded run submitted %v jobs, want 9 (golden cached)", n)
	}
}

// TestProgressAndCellDone: Progress reaches (total, total), CellDone
// fires once per cell in canonical order.
func TestProgressAndCellDone(t *testing.T) {
	spec := testSpec()
	total, err := spec.NumJobs()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lastDone, calls int
	var cells []string
	rep, err := Run(context.Background(), spec, Options{
		Pool: newPool(t, 2, nil),
		Progress: func(done, tot int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if tot != total {
				t.Errorf("progress total %d, want %d", tot, total)
			}
			if done > lastDone {
				lastDone = done
			}
		},
		CellDone: func(c Cell) { cells = append(cells, c.Protection) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != total || calls != total {
		t.Errorf("progress reached %d in %d calls, want %d in %d", lastDone, calls, total, total)
	}
	want := []string{"none", "parity", "secded"}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("CellDone order %v, want %v", cells, want)
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
}

// TestSpecValidation: bad axes are rejected before any simulation; the
// zero spec is valid (full default campaign); NumJobs prices the grid.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Designs: []string{"warp9"}},
		{Protect: []string{"tmr"}},
		{Benchmarks: []string{"doom"}},
		{Trials: -1},
		{Rate: -2e-11},
		{SMs: -2},
		{Scale: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec invalid: %v", err)
	}
	n, err := (Spec{}).NumJobs()
	if err != nil {
		t.Fatal(err)
	}
	// 3 designs x 17 workloads x (1 golden + 4 schemes x 5 trials).
	if want := 3 * 17 * (1 + 4*5); n != want {
		t.Errorf("default grid prices %d jobs, want %d", n, want)
	}
}

// TestCancelledRunFails: a pre-cancelled context aborts the run with
// the context error instead of producing a partial report.
func TestCancelledRunFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testSpec(), Options{Pool: newPool(t, 2, nil)}); err == nil {
		t.Fatal("cancelled run returned a report")
	}
}
