package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"pilotrf/internal/jobs"
)

// planSpec is a small two-cell-per-axis grid that still exercises
// multiple designs, workloads, and schemes.
func planSpec() Spec {
	return Spec{
		Benchmarks: []string{"sgemm", "nw"},
		Designs:    []string{"part-adaptive", "mrf-ntv"},
		Protect:    []string{"none", "parity"},
		Trials:     2,
		Seed:       42,
		SMs:        1,
	}
}

func runSpec(t *testing.T, spec Spec, cache *jobs.Cache) Report {
	t.Helper()
	pool, err := jobs.New(jobs.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := Run(context.Background(), spec, Options{Pool: pool, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPlanCanonicalOrder pins the plan's cell enumeration to Run's
// report order.
func TestPlanCanonicalOrder(t *testing.T) {
	pl, err := NewPlan(planSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep := runSpec(t, planSpec(), nil)
	if pl.NumCells() != len(rep.Cells) {
		t.Fatalf("plan has %d cells, report has %d", pl.NumCells(), len(rep.Cells))
	}
	for i, c := range rep.Cells {
		ref := pl.Cell(i)
		if ref.Index != i || ref.Design != c.Design || ref.Workload != c.Workload || ref.Protect != c.Protection {
			t.Errorf("cell %d: plan %+v, report %s/%s/%s", i, ref, c.Design, c.Protection, c.Workload)
		}
		if !pl.ValidCell(i, c) {
			t.Errorf("cell %d: report cell does not validate against its own ref", i)
		}
	}
	if pl.NumJobs() == 0 {
		t.Fatal("NumJobs = 0")
	}
	if n, err := planSpec().NumJobs(); err != nil || n != pl.NumJobs() {
		t.Fatalf("Plan.NumJobs %d, Spec.NumJobs %d (%v)", pl.NumJobs(), n, err)
	}
}

// TestCellSpecMatchesFullRun is the sharding contract: every cell run
// in isolation from its single-cell spec must equal the same cell of
// the full run, and must land in the cache under the full run's key.
func TestCellSpecMatchesFullRun(t *testing.T) {
	pl, err := NewPlan(planSpec())
	if err != nil {
		t.Fatal(err)
	}
	full := runSpec(t, planSpec(), nil)
	var got []Cell
	for i := 0; i < pl.NumCells(); i++ {
		cache, err := jobs.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sub := runSpec(t, pl.CellSpec(i), cache)
		if len(sub.Cells) != 1 {
			t.Fatalf("cell %d: sub-spec ran %d cells", i, len(sub.Cells))
		}
		if sub.Cells[0] != full.Cells[i] {
			t.Errorf("cell %d: isolated run %+v != full run %+v", i, sub.Cells[0], full.Cells[i])
		}
		// The isolated run must have cached its cell under the key the
		// plan (and a full run) would look it up by.
		var cached Cell
		if !cache.Get(pl.CellKey(i), &cached) {
			t.Errorf("cell %d: isolated run did not cache under the plan's CellKey", i)
		} else if cached != full.Cells[i] {
			t.Errorf("cell %d: cached %+v != full run %+v", i, cached, full.Cells[i])
		}
	}
	for i := range full.Cells {
		got = append(got, full.Cells[i])
	}
	asm := pl.Assemble(got)
	a, _ := json.MarshalIndent(asm, "", "  ")
	b, _ := json.MarshalIndent(full, "", "  ")
	if !bytes.Equal(a, b) {
		t.Fatalf("assembled report differs from full run:\n%s\n---\n%s", a, b)
	}
}

// TestPlanResumeFromCache: a full run's cache satisfies every cell of a
// fresh plan (what coordinator crash-resume replays).
func TestPlanResumeFromCache(t *testing.T) {
	cache, err := jobs.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	full := runSpec(t, planSpec(), cache)
	pl, err := NewPlan(planSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pl.NumCells(); i++ {
		var c Cell
		if !cache.Get(pl.CellKey(i), &c) {
			t.Fatalf("cell %d: no cache entry under CellKey", i)
		}
		if !pl.ValidCell(i, c) {
			t.Fatalf("cell %d: cached cell %+v fails ValidCell", i, c)
		}
		if c != full.Cells[i] {
			t.Fatalf("cell %d: cached %+v != report %+v", i, c, full.Cells[i])
		}
	}
	// A mismatched cell (wrong position) must fail validation.
	var c0 Cell
	cache.Get(pl.CellKey(0), &c0)
	if pl.NumCells() > 1 && pl.ValidCell(1, c0) {
		t.Fatal("cell 0's result validated as cell 1")
	}
}
