// Package campaign is the shared fault-campaign execution engine behind
// cmd/faultcampaign and cmd/pilotserve: it expands a Spec into the
// (design × workload × protection × trial) grid, runs the golden
// references and the seeded trials on a jobs.Pool, classifies every
// trial, and assembles the byte-reproducible pilotrf-faultcampaign/v1
// report in canonical cell order — identical bytes whether the pool has
// one worker or sixty-four.
//
// Two layers of reuse remove the redundant work the sequential driver
// used to repeat:
//
//   - Within one run, a single golden (fault-free) simulation per
//     (design, workload) serves every protection scheme's trials.
//   - Across runs, a jobs.Cache persists golden digests and finished
//     cells under content-addressed keys, so re-sweeps with overlapping
//     grids, and campaigns resumed after an interrupt, recompute only
//     what is genuinely new. Corrupt or stale entries load as misses
//     and are recomputed, never trusted.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pilotrf/internal/design"
	"pilotrf/internal/fault"
	"pilotrf/internal/jobs"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/trace"
	"pilotrf/internal/workloads"
)

// Schema identifies the report format; bump on incompatible change.
// The value (and the JSON layout it tags) predates this package — it
// moved here from cmd/faultcampaign, which now re-exports it — so
// reports stay byte-compatible with the sequential driver's.
const Schema = "pilotrf-faultcampaign/v1"

// goldenVersion versions the cached golden-run snapshot independently of
// the report schema; bump it when the simulator's dataflow digests
// change meaning and every cached golden becomes a miss.
const goldenVersion = "golden/v1"

// cellVersion versions cached finished cells.
const cellVersion = "cell/v1"

// Outcomes counts trial classifications within one campaign cell.
type Outcomes struct {
	Masked                int `json:"masked"`
	Corrected             int `json:"corrected"`
	DetectedUnrecoverable int `json:"detected_unrecoverable"`
	SDC                   int `json:"sdc"`
}

// Cell is one (design, protection, workload) campaign cell: trial
// classifications plus the aggregate fault counters across its trials.
type Cell struct {
	Design       string   `json:"design"`
	Protection   string   `json:"protection"`
	Workload     string   `json:"workload"`
	Outcomes     Outcomes `json:"outcomes"`
	Injected     uint64   `json:"injected"`
	Corrected    uint64   `json:"corrected"`
	Retries      uint64   `json:"retries"`
	SilentReads  uint64   `json:"silent_reads"`
	CAMCorrupted uint64   `json:"cam_corrupted"`
}

// Report is the versioned campaign result.
type Report struct {
	Schema string  `json:"schema"`
	Rate   float64 `json:"rate"`
	Seed   uint64  `json:"seed"`
	Trials int     `json:"trials"`
	Scale  float64 `json:"scale"`
	SMs    int     `json:"sms"`
	Cells  []Cell  `json:"cells"`
}

// Spec is a campaign request: the grid axes and the physics knobs. The
// zero value of each list field selects the corresponding default, so a
// JSON body of {"trials": 3, "seed": 7} is a complete request.
type Spec struct {
	// Benchmarks lists workload names (empty = the full Table I suite).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Designs lists RF designs by CLI name (empty = mrf-ntv, part,
	// part-adaptive).
	Designs []string `json:"designs,omitempty"`
	// Protect lists protection schemes by name (empty = none, parity,
	// secded, paper).
	Protect []string `json:"protect,omitempty"`
	// Trials is the seeded injection count per cell (0 selects 5).
	Trials int `json:"trials,omitempty"`
	// Rate is the accelerated soft-error rate in upsets/bit/cycle at
	// STV (0 selects 2e-11).
	Rate float64 `json:"rate,omitempty"`
	// Seed derives every trial's fault stream; equal specs produce
	// byte-identical reports (0 selects 1).
	Seed uint64 `json:"seed,omitempty"`
	// Scale multiplies workload CTA counts (0 selects 0.05, the
	// campaign default).
	Scale float64 `json:"scale,omitempty"`
	// SMs is the simulated SM count (0 selects 2).
	SMs int `json:"sms,omitempty"`
}

// withDefaults returns the spec with zero fields replaced by the
// campaign defaults (the historical cmd/faultcampaign flag defaults).
func (s Spec) withDefaults() Spec {
	if len(s.Designs) == 0 {
		s.Designs = []string{"mrf-ntv", "part", "part-adaptive"}
	}
	if len(s.Protect) == 0 {
		s.Protect = []string{"none", "parity", "secded", "paper"}
	}
	if s.Trials == 0 {
		s.Trials = 5
	}
	if s.Rate == 0 {
		s.Rate = 2e-11
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Scale == 0 {
		s.Scale = 0.05
	}
	if s.SMs == 0 {
		s.SMs = 2
	}
	return s
}

// ParseDesign maps the CLI design names (shared by pilotsim,
// faultcampaign, and the job server) to designs through the design
// scheme registry: any registered scheme name is accepted and resolves
// to its underlying register-file design at default knobs.
func ParseDesign(name string) (regfile.Design, error) {
	sch, ok := design.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("unknown design %q (valid: %s)", name, strings.Join(design.SortedNames(), ", "))
	}
	return sch.Base(sch.DefaultKnobs()), nil
}

// plan is a validated, fully-resolved spec.
type plan struct {
	spec    Spec
	designs []regfile.Design
	schemes []fault.Scheme
	wls     []workloads.Workload
}

// compile resolves and validates a spec against the workload suite.
func compile(s Spec) (*plan, error) {
	s = s.withDefaults()
	p := &plan{spec: s}
	if s.Trials < 0 {
		return nil, fmt.Errorf("trials must be positive, got %d", s.Trials)
	}
	if (fault.Config{Rate: s.Rate}).Validate() != nil {
		return nil, fmt.Errorf("rate must be a positive finite upsets/bit/cycle, got %v", s.Rate)
	}
	if s.SMs <= 0 {
		return nil, fmt.Errorf("sms must be positive, got %d", s.SMs)
	}
	if s.Scale <= 0 {
		return nil, fmt.Errorf("scale must be positive, got %v", s.Scale)
	}
	for _, name := range s.Designs {
		d, err := ParseDesign(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		p.designs = append(p.designs, d)
	}
	for _, name := range s.Protect {
		sch, err := fault.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		p.schemes = append(p.schemes, sch)
	}
	if len(s.Benchmarks) == 0 {
		p.wls = workloads.All()
	} else {
		for _, name := range s.Benchmarks {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			p.wls = append(p.wls, w)
		}
	}
	return p, nil
}

// Validate checks a spec without running it (the job server's admission
// path).
func (s Spec) Validate() error {
	_, err := compile(s)
	return err
}

// NumJobs returns how many pool tasks the spec expands to (golden runs
// plus trials) — the unit Progress counts and the queue-depth admission
// control prices.
func (s Spec) NumJobs() (int, error) {
	p, err := compile(s)
	if err != nil {
		return 0, err
	}
	cells := len(p.designs) * len(p.wls)
	return cells + cells*len(p.schemes)*p.spec.Trials, nil
}

// Options configures a Run beyond the spec.
type Options struct {
	// Pool executes the simulation jobs. Required.
	Pool *jobs.Pool
	// Cache, when non-nil, persists golden snapshots and finished
	// cells across invocations.
	Cache *jobs.Cache
	// Progress, when set, is called as jobs finish with the cumulative
	// done count and the total. Calls may come from any worker
	// goroutine concurrently; done is monotonic per call site only in
	// aggregate. Cached cells report their jobs as instantly done.
	Progress func(done, total int)
	// CellDone, when set, is called once per cell in canonical report
	// order (design-major, then workload, then scheme) from the Run
	// goroutine — safe for ordered printing.
	CellDone func(c Cell)
	// Trace, when non-nil, records a span tree for the run: a campaign
	// root (unless ctx already carries a span, in which case the
	// campaign span becomes its child), phase spans for the golden and
	// trial batches, one span per golden / cell / trial with cache and
	// outcome annotations, and the pool's per-task spans underneath.
	// Span ids derive from the content-addressed cache keys and
	// submission indices, so the tree is identical at any worker count;
	// tracing changes no simulated cycles and leaves the report
	// byte-identical (both test-asserted).
	Trace *trace.Recorder
}

// trialSeed derives the fault seed of one trial from the campaign seed.
// The injector further salts per SM, so every (trial, SM) process is an
// independent, reproducible stream.
func trialSeed(seed uint64, trial int) uint64 {
	return seed + uint64(trial+1)*0xA24BAED4963EE407
}

// watchdogBudget bounds a faulty trial's runtime: a fault that corrupts
// control flow can spin a kernel forever, and without a tight budget a
// single runaway trial stalls the whole campaign for the simulator's
// default 200M-cycle limit. 50x the fault-free run plus slack is far
// above any legitimate retry overhead (bounded re-issues at a few
// cycles each) while catching runaways in milliseconds.
func watchdogBudget(goldenCycles int64) int64 {
	return 50*goldenCycles + 10_000
}

// goldenSnapshot is the cached residue of a fault-free reference run:
// everything a trial needs to be classified against it.
type goldenSnapshot struct {
	Digests []fault.KernelDigest `json:"digests"`
	Cycles  int64                `json:"cycles"`
}

// goldenKey addresses one (design, workload) golden snapshot.
func (p *plan) goldenKey(design string, w workloads.Workload) jobs.Key {
	return jobs.NewKey().
		Field("kind", "golden").
		Field("schema", Schema).
		Field("version", goldenVersion).
		Field("design", design).
		Field("workload", w.Name).
		Float("scale", p.spec.Scale).
		Int("sms", int64(p.spec.SMs)).
		Sum()
}

// cellKey addresses one finished cell. It includes every input the
// cell's outcome depends on; goldenVersion rides along because the
// classification compares against golden digests.
func (p *plan) cellKey(design string, w workloads.Workload, scheme string) jobs.Key {
	return jobs.NewKey().
		Field("kind", "cell").
		Field("schema", Schema).
		Field("version", cellVersion).
		Field("golden", goldenVersion).
		Field("design", design).
		Field("workload", w.Name).
		Field("protect", scheme).
		Float("scale", p.spec.Scale).
		Int("sms", int64(p.spec.SMs)).
		Float("rate", p.spec.Rate).
		Uint("seed", p.spec.Seed).
		Int("trials", int64(p.spec.Trials)).
		Sum()
}

// trialResult is one seeded trial's contribution to its cell.
type trialResult struct {
	outcome func(*Outcomes) *int // which Outcomes counter to bump
	label   string               // the outcome's report name (span annotation)
	stats   fault.Stats
}

// runGolden executes the fault-free reference for one (design, workload).
func runGolden(cfg sim.Config, w workloads.Workload) (goldenSnapshot, error) {
	probe := fault.NewDigestProbe()
	cfg.Record = probe
	g, err := sim.New(cfg)
	if err != nil {
		return goldenSnapshot{}, err
	}
	rs, err := g.RunKernels(w.Name, w.Kernels)
	if err != nil {
		return goldenSnapshot{}, err
	}
	return goldenSnapshot{Digests: probe.Digests(), Cycles: rs.TotalCycles()}, nil
}

// runTrial executes one seeded trial and classifies it against the
// golden snapshot.
func runTrial(cfg sim.Config, w workloads.Workload, golden goldenSnapshot, scheme fault.Scheme, rate float64, seed uint64) (trialResult, error) {
	probe := fault.NewDigestProbe()
	cfg.Record = probe
	cfg.Protect = scheme
	cfg.Fault = &fault.Config{Rate: rate, Seed: seed}
	cfg.MaxCycles = watchdogBudget(golden.Cycles)
	g, err := sim.New(cfg)
	if err != nil {
		return trialResult{}, err
	}
	rs, err := g.RunKernels(w.Name, w.Kernels)
	tr := trialResult{stats: rs.FaultTotals()}
	st := tr.stats

	var ue *fault.UnrecoverableError
	switch {
	case errors.As(err, &ue):
		tr.outcome = func(o *Outcomes) *int { return &o.DetectedUnrecoverable }
		tr.label = "detected_unrecoverable"
	case errors.Is(err, sim.ErrCycleLimit):
		// A fault corrupted control flow into a runaway loop; the
		// watchdog caught it. Nothing detected it architecturally, so
		// it is silent corruption, not graceful degradation.
		tr.outcome = func(o *Outcomes) *int { return &o.SDC }
		tr.label = "sdc"
	case err != nil:
		// Anything but a clean fault abort is a campaign bug.
		return trialResult{}, err
	default:
		if _, div := probe.DivergedFromDigests(golden.Digests); div {
			tr.outcome = func(o *Outcomes) *int { return &o.SDC }
			tr.label = "sdc"
		} else if st.Corrected+st.RetrySuccess+st.CAMRepaired > 0 {
			tr.outcome = func(o *Outcomes) *int { return &o.Corrected }
			tr.label = "corrected"
		} else {
			tr.outcome = func(o *Outcomes) *int { return &o.Masked }
			tr.label = "masked"
		}
	}
	return tr, nil
}

// specKey fingerprints a compiled spec — the content-addressed identity
// a standalone campaign's trace id derives from, so equal specs map to
// equal trace ids across runs and machines.
func (p *plan) specKey() jobs.Key {
	s := p.spec
	names := make([]string, len(p.wls))
	for i, w := range p.wls {
		names[i] = w.Name
	}
	return jobs.NewKey().
		Field("kind", "campaign").
		Field("schema", Schema).
		Field("designs", strings.Join(s.Designs, ",")).
		Field("protect", strings.Join(s.Protect, ",")).
		Field("bench", strings.Join(names, ",")).
		Int("trials", int64(s.Trials)).
		Float("rate", s.Rate).
		Uint("seed", s.Seed).
		Float("scale", s.Scale).
		Int("sms", int64(s.SMs)).
		Sum()
}

// Run executes the campaign on the pool and returns the report. The
// cell order, and therefore the marshalled report, is byte-identical to
// the historical sequential driver for the same spec regardless of the
// pool's worker count.
func Run(ctx context.Context, spec Spec, opt Options) (Report, error) {
	p, err := compile(spec)
	if err != nil {
		return Report{}, err
	}
	if opt.Pool == nil {
		return Report{}, fmt.Errorf("campaign: Options.Pool is required")
	}
	s := p.spec
	rep := Report{Schema: Schema, Rate: s.Rate, Seed: s.Seed, Trials: s.Trials, Scale: s.Scale, SMs: s.SMs}

	totalJobs, err := s.NumJobs()
	if err != nil {
		return Report{}, err
	}

	// Span tracing. The campaign span hangs under the caller's span when
	// ctx carries one (the job server's per-job root) and otherwise roots
	// a fresh trace whose id derives from the spec fingerprint. Every
	// span opened on this goroutine is tracked and closed by the deferred
	// sweep, so error returns never leave a recorded child with an
	// unrecorded parent.
	var open []*trace.ActiveSpan
	track := func(sp *trace.ActiveSpan) *trace.ActiveSpan {
		if sp != nil {
			open = append(open, sp)
		}
		return sp
	}
	defer func() {
		for i := len(open) - 1; i >= 0; i-- {
			open[i].End() // idempotent: already-ended spans no-op
		}
	}()
	var camp *trace.ActiveSpan
	if sc := trace.FromContext(ctx); sc.Active() {
		camp = track(sc.Start("campaign"))
	} else if opt.Trace != nil {
		key := p.specKey()
		camp = track(opt.Trace.Root("campaign", trace.TraceID("pilotrf-campaign", key.Preimage()), key.Hex()))
	}
	camp.SetAttr("designs", strings.Join(s.Designs, ","))
	camp.SetAttr("protect", strings.Join(s.Protect, ","))
	camp.SetAttr("trials", strconv.Itoa(s.Trials))
	camp.SetAttr("seed", strconv.FormatUint(s.Seed, 10))
	camp.SetAttr("jobs", strconv.Itoa(totalJobs))
	campSC := camp.Context()
	// done is only touched from one goroutine at a time: the Run
	// goroutine during the golden and cell-admission phases, then the
	// drain goroutine (started strictly after) while trials execute.
	done := 0
	report := func(n int) {
		if opt.Progress == nil || n == 0 {
			return
		}
		done += n
		opt.Progress(done, totalJobs)
	}

	// Phase 1: golden references, one per (design, workload), pulled
	// from the cache where possible, computed on the pool otherwise.
	type goldenJob struct {
		di, wi int
		key    jobs.Key
	}
	goldens := make([]goldenSnapshot, len(p.designs)*len(p.wls))
	goldenAt := func(di, wi int) int { return di*len(p.wls) + wi }
	var missing []goldenJob
	for di, name := range s.Designs {
		for wi := range p.wls {
			w := p.wls[wi].Scale(s.Scale)
			key := p.goldenKey(name, p.wls[wi])
			var snap goldenSnapshot
			if opt.Cache.Get(key, &snap) && len(snap.Digests) == len(w.Kernels) && snap.Cycles > 0 {
				goldens[goldenAt(di, wi)] = snap
				gsp := campSC.Start("golden", key.Hex())
				gsp.SetAttr("design", name)
				gsp.SetAttr("workload", p.wls[wi].Name)
				gsp.SetAttr("cache", "hit")
				gsp.End()
				report(1)
				continue
			}
			missing = append(missing, goldenJob{di: di, wi: wi, key: key})
		}
	}
	if len(missing) > 0 {
		gphase := track(campSC.Start("phase.golden"))
		gphase.SetAttr("count", strconv.Itoa(len(missing)))
		gsc := gphase.Context()
		gctx := trace.NewContext(ctx, gsc)
		results, err := jobs.Map(gctx, opt.Pool, len(missing), func(ctx context.Context, i int) (interface{}, error) {
			j := missing[i]
			sp := gsc.Start("golden", j.key.Hex())
			defer sp.End()
			sp.SetAttr("design", s.Designs[j.di])
			sp.SetAttr("workload", p.wls[j.wi].Name)
			sp.SetAttr("cache", "miss")
			cfg := sim.DefaultConfig().WithDesign(p.designs[j.di])
			cfg.NumSMs = s.SMs
			w := p.wls[j.wi].Scale(s.Scale)
			snap, err := runGolden(cfg, w)
			if err != nil {
				return nil, fmt.Errorf("golden %s/%s: %w", s.Designs[j.di], w.Name, err)
			}
			sp.SetAttr("cycles", strconv.FormatInt(snap.Cycles, 10))
			return snap, nil
		})
		if err != nil {
			return Report{}, err
		}
		gphase.End()
		for i, v := range results {
			j := missing[i]
			snap := v.(goldenSnapshot)
			goldens[goldenAt(j.di, j.wi)] = snap
			if err := opt.Cache.Put(j.key, snap); err != nil {
				return Report{}, err
			}
			report(1)
		}
	}

	// Phase 2: trials. Cells already in the cache skip their trials
	// entirely; the rest expand into one task per trial, submitted in
	// canonical order so the ordered batch results fold straight into
	// the report.
	type cellSlot struct {
		cell     Cell
		cached   bool
		key      jobs.Key
		firstJob int // index of the cell's first trial task, -1 if cached
		span     *trace.ActiveSpan
	}
	var slots []cellSlot
	type trialJob struct {
		di, wi, si, trial int
		slot              int
	}
	var tjobs []trialJob
	cellSpan := func(slot *cellSlot, dname, wname, sname, cache string) *trace.ActiveSpan {
		sp := campSC.Start("cell", slot.key.Hex())
		sp.SetAttr("design", dname)
		sp.SetAttr("workload", wname)
		sp.SetAttr("protect", sname)
		sp.SetAttr("cache", cache)
		return sp
	}
	outcomeAttrs := func(sp *trace.ActiveSpan, o Outcomes) {
		sp.SetAttr("masked", strconv.Itoa(o.Masked))
		sp.SetAttr("corrected", strconv.Itoa(o.Corrected))
		sp.SetAttr("detected_unrecoverable", strconv.Itoa(o.DetectedUnrecoverable))
		sp.SetAttr("sdc", strconv.Itoa(o.SDC))
	}
	for di, dname := range s.Designs {
		for wi := range p.wls {
			for si, sname := range s.Protect {
				slot := cellSlot{key: p.cellKey(dname, p.wls[wi], sname), firstJob: -1}
				var cached Cell
				if opt.Cache.Get(slot.key, &cached) &&
					cached.Design == dname && cached.Workload == p.wls[wi].Name && cached.Protection == sname {
					slot.cell = cached
					slot.cached = true
					sp := cellSpan(&slot, dname, p.wls[wi].Name, sname, "hit")
					outcomeAttrs(sp, cached.Outcomes)
					sp.End()
					report(s.Trials)
					slots = append(slots, slot)
					continue
				}
				slot.cell = Cell{Design: dname, Protection: sname, Workload: p.wls[wi].Name}
				slot.firstJob = len(tjobs)
				slot.span = track(cellSpan(&slot, dname, p.wls[wi].Name, sname, "miss"))
				for t := 0; t < s.Trials; t++ {
					tjobs = append(tjobs, trialJob{di: di, wi: wi, si: si, trial: t, slot: len(slots)})
				}
				slots = append(slots, slot)
			}
		}
	}

	var trialResults []jobs.Result
	var tphase *trace.ActiveSpan
	if len(tjobs) > 0 {
		tphase = track(campSC.Start("phase.trials"))
		tphase.SetAttr("count", strconv.Itoa(len(tjobs)))
		tctx := trace.NewContext(ctx, tphase.Context())
		tasks := make([]jobs.Task, len(tjobs))
		var doneJobs chan int
		if opt.Progress != nil {
			doneJobs = make(chan int, len(tjobs))
		}
		for i := range tasks {
			j := tjobs[i]
			tasks[i] = func(ctx context.Context) (interface{}, error) {
				seed := trialSeed(s.Seed, j.trial)
				sp := slots[j.slot].span.Context().Start("trial", strconv.Itoa(j.trial))
				defer sp.End()
				sp.SetAttr("trial", strconv.Itoa(j.trial))
				sp.SetAttr("seed", strconv.FormatUint(seed, 10))
				cfg := sim.DefaultConfig().WithDesign(p.designs[j.di])
				cfg.NumSMs = s.SMs
				w := p.wls[j.wi].Scale(s.Scale)
				tr, err := runTrial(cfg, w, goldens[goldenAt(j.di, j.wi)], p.schemes[j.si], s.Rate, seed)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", s.Designs[j.di], s.Protect[j.si], w.Name, err)
				}
				sp.SetAttr("outcome", tr.label)
				if doneJobs != nil {
					doneJobs <- 1
				}
				return tr, nil
			}
		}
		batch, err := opt.Pool.Submit(tctx, tasks)
		if err != nil {
			return Report{}, err
		}
		var drained chan struct{}
		if doneJobs != nil {
			// Drain completion ticks into the Progress callback while
			// the batch runs, serialized on this goroutine. Every send
			// happens-before its task's completion and batch.Done()
			// fires after the last completion, so flushing the buffer
			// once Done() closes observes every tick.
			drained = make(chan struct{})
			go func() {
				defer close(drained)
				for {
					select {
					case <-doneJobs:
						report(1)
					case <-batch.Done():
						for {
							select {
							case <-doneJobs:
								report(1)
							default:
								return
							}
						}
					}
				}
			}()
		}
		trialResults, err = batch.Wait(ctx)
		if err != nil {
			return Report{}, err
		}
		if drained != nil {
			<-drained
		}
		tphase.End()
	}

	// Fold trials into cells in canonical order; surface the first
	// error in that order so failures are as deterministic as results.
	for i := range slots {
		slot := &slots[i]
		if !slot.cached {
			for t := 0; t < s.Trials; t++ {
				r := trialResults[slot.firstJob+t]
				if r.Err != nil {
					return Report{}, r.Err
				}
				tr := r.Value.(trialResult)
				st := tr.stats
				slot.cell.Injected += st.TotalInjected()
				slot.cell.Corrected += st.Corrected
				slot.cell.Retries += st.DetectedRetry
				slot.cell.SilentReads += st.SilentReads
				slot.cell.CAMCorrupted += st.CAMCorrupted
				*tr.outcome(&slot.cell.Outcomes)++
			}
			if err := opt.Cache.Put(slot.key, slot.cell); err != nil {
				return Report{}, err
			}
			outcomeAttrs(slot.span, slot.cell.Outcomes)
			slot.span.End()
		}
		rep.Cells = append(rep.Cells, slot.cell)
		if opt.CellDone != nil {
			opt.CellDone(slot.cell)
		}
	}
	return rep, nil
}
