package campaign

import (
	"pilotrf/internal/jobs"
	"pilotrf/internal/trace"
	"pilotrf/internal/workloads"
)

// Plan is the sharding projection of a compiled spec, built for the
// fleet coordinator (internal/fleet): the campaign grid exposed as an
// indexed list of cells in the exact canonical report order Run uses
// (design-major, then workload, then protection scheme), each with its
// content-addressed cache key and a self-contained single-cell Spec a
// remote worker can execute in isolation.
//
// The load-bearing property, pinned by TestCellSpecMatchesFullRun, is
// that running CellSpec(i) anywhere — any machine, any worker count —
// produces a one-cell report whose cell is byte-identical to cell i of
// a full Run of the original spec: trial seeds derive only from the
// campaign seed and trial index, golden digests only from (design,
// workload, scale, sms), and CellKey(i) equals the key the full run
// caches that cell under. An N-worker fleet that assembles remotely
// computed cells with Assemble therefore reproduces the standalone
// report bit-for-bit, and a restarted coordinator can replay finished
// cells straight out of the cache.
type Plan struct {
	p     *plan
	cells []CellRef
}

// CellRef names one campaign cell in canonical order.
type CellRef struct {
	// Index is the cell's position in the canonical report order.
	Index int `json:"index"`
	// Design, Workload, and Protect are the cell's CLI-facing names.
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Protect  string `json:"protect"`
}

// NewPlan compiles and validates the spec into its sharding projection.
func NewPlan(spec Spec) (*Plan, error) {
	p, err := compile(spec)
	if err != nil {
		return nil, err
	}
	pl := &Plan{p: p}
	for _, dname := range p.spec.Designs {
		for wi := range p.wls {
			for _, sname := range p.spec.Protect {
				pl.cells = append(pl.cells, CellRef{
					Index:    len(pl.cells),
					Design:   dname,
					Workload: p.wls[wi].Name,
					Protect:  sname,
				})
			}
		}
	}
	return pl, nil
}

// Spec returns the spec with campaign defaults applied — the fully
// resolved form whose zero fields no longer mean "pick a default".
func (pl *Plan) Spec() Spec { return pl.p.spec }

// NumCells returns the grid size.
func (pl *Plan) NumCells() int { return len(pl.cells) }

// NumJobs returns the spec's admission price (golden runs + trials),
// matching Spec.NumJobs.
func (pl *Plan) NumJobs() int {
	goldens := len(pl.p.designs) * len(pl.p.wls)
	return goldens + len(pl.cells)*pl.p.spec.Trials
}

// Cells returns the cells in canonical report order.
func (pl *Plan) Cells() []CellRef { return pl.cells }

// Cell returns the i-th cell.
func (pl *Plan) Cell(i int) CellRef { return pl.cells[i] }

// CellKey returns cell i's content-addressed cache key — identical to
// the key a full Run of the spec stores the finished cell under, which
// is what makes coordinator crash-resume a cache replay.
func (pl *Plan) CellKey(i int) jobs.Key {
	ref := pl.cells[i]
	return pl.p.cellKey(ref.Design, pl.workload(ref.Workload), ref.Protect)
}

// CellSpec returns the self-contained single-cell spec for cell i: a
// full Run of it produces exactly one cell, byte-identical to cell i of
// the original spec's run, and caches it under CellKey(i).
func (pl *Plan) CellSpec(i int) Spec {
	ref := pl.cells[i]
	s := pl.p.spec
	return Spec{
		Benchmarks: []string{ref.Workload},
		Designs:    []string{ref.Design},
		Protect:    []string{ref.Protect},
		Trials:     s.Trials,
		Rate:       s.Rate,
		Seed:       s.Seed,
		Scale:      s.Scale,
		SMs:        s.SMs,
	}
}

// ValidCell reports whether c is a plausible result for cell i: the
// identity fields match the ref and the outcome counts sum to the
// spec's trial count. Both the coordinator's resume path and its
// result-ingest path run this, so a stale cache entry or a confused
// worker degrades to recomputation instead of corrupting the report.
func (pl *Plan) ValidCell(i int, c Cell) bool {
	ref := pl.cells[i]
	o := c.Outcomes
	return c.Design == ref.Design && c.Workload == ref.Workload && c.Protection == ref.Protect &&
		o.Masked+o.Corrected+o.DetectedUnrecoverable+o.SDC == pl.p.spec.Trials
}

// Assemble builds the campaign report from cells in canonical order
// (len(cells) must equal NumCells). The bytes of the marshalled report
// are identical to a local Run's for the same spec.
func (pl *Plan) Assemble(cells []Cell) Report {
	s := pl.p.spec
	return Report{
		Schema: Schema, Rate: s.Rate, Seed: s.Seed, Trials: s.Trials,
		Scale: s.Scale, SMs: s.SMs, Cells: cells,
	}
}

// TraceID returns the deterministic trace id a standalone run of this
// spec would root its span tree with — the fleet coordinator uses it so
// a sharded campaign's tree shares identity with the local run's.
func (pl *Plan) TraceID() string {
	return trace.TraceID("pilotrf-campaign", pl.p.specKey().Preimage())
}

// workload resolves a name that compile already validated.
func (pl *Plan) workload(name string) workloads.Workload {
	for i := range pl.p.wls {
		if pl.p.wls[i].Name == name {
			return pl.p.wls[i]
		}
	}
	// Unreachable: every CellRef name came from p.wls.
	panic("campaign: unknown workload " + name)
}
