package sim

import (
	"container/heap"

	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

// event is a scheduled callback in the SM's timing model.
type event struct {
	cycle int64
	seq   uint64 // tie-break for deterministic ordering
	fn    func()
}

type eventHeap []event

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface (earlier cycle first, then arrival).
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// bankReq is one register file bank transaction.
type bankReq struct {
	warp    *warpCtx
	arch    isa.Reg // architected register (for routing stats)
	phys    isa.Reg // physical register (fixes the bank)
	isWrite bool
	col     *collectorUnit // collector awaiting this read; nil for writes
	// onDone runs when the transaction completes (writeback bookkeeping).
	onDone func()
}

// bankState is one RF bank: a FIFO of requests served one at a time; the
// service latency depends on the partition (FRF/SRF/MRF) and, for the
// FRF, on the adaptive power mode at service time.
type bankState struct {
	queue     []bankReq
	busyUntil int64
}

// collectorUnit buffers one issued instruction while its source operands
// are gathered from the banks (or the RFC).
type collectorUnit struct {
	warp         *warpCtx
	in           *isa.Instruction
	execMask     uint32
	pendingReads int
	// readyAt delays dispatch until the given cycle even when no bank
	// reads are pending — the RFC's own read stage.
	readyAt int64
}

// memUnit is the SM's global-memory interface: fixed latency with a
// bounded number of in-flight transactions.
type memUnit struct {
	inflight int
	waiting  []func() // transactions waiting for a slot
}

// tickBanks advances every bank: each bank accepts one request per cycle
// (the arrays are pipelined, so a slow NTV partition costs access LATENCY
// on dependency chains, not bank throughput — the premise behind the
// paper's 7.1% NTV slowdown); the requested data becomes available after
// the partition's access latency.
func (s *sm) tickBanks() {
	for b := range s.banks {
		bank := &s.banks[b]
		if bank.busyUntil > s.now || len(bank.queue) == 0 {
			continue
		}
		req := bank.queue[0]
		copy(bank.queue, bank.queue[1:])
		bank.queue = bank.queue[:len(bank.queue)-1]

		part, lat := s.routeAccess(req)
		if s.pf != nil {
			s.pf.bankOps++
		}
		s.countPartAccess(part, req.warp.slot, req.arch)
		if s.cfg.Tracer != nil {
			kind := "read"
			if req.isWrite {
				kind = "write"
			}
			s.trace(TraceBankAccess, req.warp.slot, -1, "bank %d %s %s -> %s (%d cyc)",
				b, kind, req.arch, part, lat)
		}
		bank.busyUntil = s.now + 1
		s.schedule(s.now+int64(lat), func() { s.completeBankReq(req) })
	}
}

// routeAccess resolves the partition and latency for a request at service
// time. The physical register was fixed at enqueue (it determines the
// bank); only the FRF power mode is sampled live.
func (s *sm) routeAccess(req bankReq) (regfile.Partition, int) {
	cfg := s.rf.Config()
	switch cfg.Design {
	case regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV:
		if s.cfg.UseRFC {
			return regfile.PartMRF, s.cfg.RFCMRFLatency
		}
		return regfile.PartMRF, cfg.Lat.MRF
	}
	if int(req.phys) < cfg.FRFRegs {
		if a := s.rf.Adaptive(); a != nil && a.LowPower() {
			return regfile.PartFRFLow, cfg.Lat.FRFLow
		}
		return regfile.PartFRFHigh, cfg.Lat.FRFHigh
	}
	return regfile.PartSRF, cfg.Lat.SRF
}

func (s *sm) completeBankReq(req bankReq) {
	if req.col != nil {
		req.col.pendingReads--
		// Dispatch happens in the collector sweep, keeping ordering
		// deterministic.
		return
	}
	if req.onDone != nil {
		req.onDone()
	}
}

// enqueueBankRead queues a source-operand read for a collector.
func (s *sm) enqueueBankRead(col *collectorUnit, arch isa.Reg) {
	phys := s.rf.PhysicalReg(arch)
	b := s.rf.BankOf(col.warp.slot, phys)
	s.banks[b].queue = append(s.banks[b].queue, bankReq{
		warp: col.warp, arch: arch, phys: phys, col: col,
	})
}

// enqueueBankWrite queues a destination write; onDone runs when the write
// retires (scoreboard release).
func (s *sm) enqueueBankWrite(w *warpCtx, arch isa.Reg, onDone func()) {
	phys := s.rf.PhysicalReg(arch)
	b := s.rf.BankOf(w.slot, phys)
	s.banks[b].queue = append(s.banks[b].queue, bankReq{
		warp: w, arch: arch, phys: phys, isWrite: true, onDone: onDone,
	})
}

// schedule registers fn to run at the given cycle (>= now).
func (s *sm) schedule(cycle int64, fn func()) {
	s.eventSeq++
	heap.Push(&s.events, event{cycle: cycle, seq: s.eventSeq, fn: fn})
}

// runEvents fires all events due at the current cycle.
func (s *sm) runEvents() {
	for len(s.events) > 0 && s.events[0].cycle <= s.now {
		e := heap.Pop(&s.events).(event)
		if s.pf != nil {
			s.pf.fired++
		}
		e.fn()
	}
}

// memDispatch issues a global-memory transaction; done runs after the
// memory latency. Excess transactions wait for a free slot.
func (s *sm) memDispatch(done func()) {
	start := func() {
		s.mem.inflight++
		s.schedule(s.now+int64(s.cfg.MemLatency), func() {
			s.mem.inflight--
			if len(s.mem.waiting) > 0 {
				next := s.mem.waiting[0]
				copy(s.mem.waiting, s.mem.waiting[1:])
				s.mem.waiting = s.mem.waiting[:len(s.mem.waiting)-1]
				next()
			}
			done()
		})
	}
	if s.mem.inflight < s.cfg.MaxMemInflight {
		start()
	} else {
		s.mem.waiting = append(s.mem.waiting, start)
	}
}
