package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Flusher is implemented by tracers that buffer output and must be
// flushed when the run completes.
type Flusher interface {
	// Flush forces buffered events out (and finalizes any framing, such
	// as the Perfetto JSON footer).
	Flush() error
}

// FlushTracer flushes t if it buffers output; it is a no-op for
// unbuffered tracers and nil.
func FlushTracer(t Tracer) error {
	if f, ok := t.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// TeeTracer fans every event out to multiple tracers in order, so a
// flight recorder and an exporter can observe the same run without
// bespoke wrappers at every call site.
type TeeTracer struct {
	tracers []Tracer
}

// NewTeeTracer returns a tracer forwarding to each of the given tracers.
// Nil entries are skipped.
func NewTeeTracer(tracers ...Tracer) *TeeTracer {
	t := &TeeTracer{}
	for _, tr := range tracers {
		if tr != nil {
			t.tracers = append(t.tracers, tr)
		}
	}
	return t
}

// Event implements Tracer.
func (t *TeeTracer) Event(e TraceEvent) {
	for _, tr := range t.tracers {
		tr.Event(e)
	}
}

// Flush flushes every buffered child, returning the first error.
func (t *TeeTracer) Flush() error {
	var first error
	for _, tr := range t.tracers {
		if err := FlushTracer(tr); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// KindMask builds a TraceKind bitmask for FilterTracer.
func KindMask(kinds ...TraceKind) uint32 {
	var m uint32
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// FilterTracer forwards only events matching a kind mask and an SM id to
// the next tracer — e.g. Perfetto-export only issues and mode switches
// of SM 0 while a ring tracer sees everything.
type FilterTracer struct {
	next Tracer
	mask uint32
	sm   int
}

// NewFilterTracer returns a tracer forwarding events of the given kinds
// (none = all kinds) from the given SM (-1 = all SMs) to next.
func NewFilterTracer(next Tracer, sm int, kinds ...TraceKind) *FilterTracer {
	mask := KindMask(kinds...)
	if len(kinds) == 0 {
		mask = ^uint32(0)
	}
	return &FilterTracer{next: next, mask: mask, sm: sm}
}

// Event implements Tracer.
func (t *FilterTracer) Event(e TraceEvent) {
	if t.mask&(1<<uint(e.Kind)) == 0 {
		return
	}
	if t.sm >= 0 && e.SM != t.sm {
		return
	}
	t.next.Event(e)
}

// Flush flushes the wrapped tracer if it buffers.
func (t *FilterTracer) Flush() error { return FlushTracer(t.next) }

// NDJSONTracer streams events as newline-delimited JSON objects, one
// event per line — the format for piping a run into jq or a log stash.
// Call Flush when the run completes.
type NDJSONTracer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewNDJSONTracer returns a buffered NDJSON exporter writing to w.
func NewNDJSONTracer(w io.Writer) *NDJSONTracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &NDJSONTracer{bw: bw, enc: json.NewEncoder(bw)}
}

// ndjsonEvent is the wire shape of one NDJSON line.
type ndjsonEvent struct {
	Cycle  int64         `json:"cycle"`
	SM     int           `json:"sm"`
	Kind   string        `json:"kind"`
	Warp   int           `json:"warp"`
	PC     int           `json:"pc"`
	Detail string        `json:"detail,omitempty"`
	Energy *ndjsonEnergy `json:"energy,omitempty"`
}

// ndjsonEnergy is the wire shape of a TraceEnergy payload.
type ndjsonEnergy struct {
	MRFPJ     float64 `json:"mrf_pj"`
	FRFHighPJ float64 `json:"frf_high_pj"`
	FRFLowPJ  float64 `json:"frf_low_pj"`
	SRFPJ     float64 `json:"srf_pj"`
	LeakPJ    float64 `json:"leak_pj"`
	Cycles    int64   `json:"cycles"`
}

// Event implements Tracer.
func (t *NDJSONTracer) Event(e TraceEvent) {
	ev := ndjsonEvent{
		Cycle: e.Cycle, SM: e.SM, Kind: e.Kind.String(),
		Warp: e.Warp, PC: e.PC, Detail: e.Detail,
	}
	if e.Energy != nil {
		ev.Energy = &ndjsonEnergy{
			MRFPJ:     e.Energy.DynamicPJ[0],
			FRFHighPJ: e.Energy.DynamicPJ[1],
			FRFLowPJ:  e.Energy.DynamicPJ[2],
			SRFPJ:     e.Energy.DynamicPJ[3],
			LeakPJ:    e.Energy.LeakagePJ,
			Cycles:    e.Energy.Cycles,
		}
	}
	_ = t.enc.Encode(ev)
}

// Flush drains the buffer.
func (t *NDJSONTracer) Flush() error { return t.bw.Flush() }

// PerfettoTracer exports events in the Chrome trace_event JSON format
// ("Trace Event Format"), loadable by chrome://tracing and
// ui.perfetto.dev. Each SM becomes a process (pid), each warp slot a
// thread (tid = slot + 1; tid 0 carries SM-scope events), one simulated
// cycle maps to one microsecond of trace time, and FRF power-mode
// switches additionally emit a "frf_low_power" counter track. The
// simulator's cycle clock is per-kernel, so in a multi-kernel run the
// timestamps of each kernel restart at zero and its events overlay the
// previous kernel's on the timeline (the viewer sorts them; the trace
// stays loadable). Flush MUST be called after the run to emit the JSON
// footer.
type PerfettoTracer struct {
	bw        *bufio.Writer
	started   bool
	closed    bool
	needComma bool
	err       error
	smSeen    map[int]bool
}

// NewPerfettoTracer returns a buffered Perfetto exporter writing to w.
func NewPerfettoTracer(w io.Writer) *PerfettoTracer {
	return &PerfettoTracer{bw: bufio.NewWriterSize(w, 1<<16), smSeen: make(map[int]bool)}
}

// perfettoEvent is one trace_event record.
type perfettoEvent struct {
	Name  string      `json:"name"`
	Cat   string      `json:"cat,omitempty"`
	Phase string      `json:"ph"`
	TS    int64       `json:"ts"`
	PID   int         `json:"pid"`
	TID   int         `json:"tid"`
	Scope string      `json:"s,omitempty"`
	Args  interface{} `json:"args,omitempty"`
}

// perfettoNameArgs names a process in a metadata record.
type perfettoNameArgs struct {
	Name string `json:"name"`
}

// perfettoEventArgs is the payload of a pipeline instant event.
type perfettoEventArgs struct {
	PC     int    `json:"pc"`
	Detail string `json:"detail,omitempty"`
}

// perfettoCounterArgs is the payload of the FRF power-mode counter track.
type perfettoCounterArgs struct {
	Value int `json:"frf_low_power"`
}

// perfettoPJArgs is the payload of an energy counter record.
type perfettoPJArgs struct {
	PJ float64 `json:"pj"`
}

// energyCounterNames names the per-component Perfetto energy counter
// tracks, indexed by regfile.Partition — one track per component per SM
// (each SM is its own Perfetto process).
var energyCounterNames = [4]string{
	"energy_mrf_pj", "energy_frf_high_pj", "energy_frf_low_pj", "energy_srf_pj",
}

// perfettoTID maps a trace event's warp to a Perfetto thread id: warp
// slots shift up by one so tid 0 remains the SM-scope pseudo-thread.
func perfettoTID(warp int) int {
	if warp < 0 {
		return 0
	}
	return warp + 1
}

// Event implements Tracer.
func (t *PerfettoTracer) Event(e TraceEvent) {
	if t.err != nil || t.closed {
		return
	}
	if !t.started {
		t.started = true
		if _, err := t.bw.WriteString(`{"traceEvents":[`); err != nil {
			t.err = err
			return
		}
	}
	if !t.smSeen[e.SM] {
		t.smSeen[e.SM] = true
		t.emit(perfettoEvent{
			Name: "process_name", Phase: "M", PID: e.SM, TID: 0,
			Args: perfettoNameArgs{Name: fmt.Sprintf("SM %d", e.SM)},
		})
	}
	if e.Kind == TraceEnergy {
		// Energy epochs become counter tracks, not instants: one track
		// per component plus a leakage track, all on the SM process.
		if e.Energy != nil {
			for p, name := range energyCounterNames {
				t.emit(perfettoEvent{
					Name: name, Phase: "C", TS: e.Cycle, PID: e.SM, TID: 0,
					Args: perfettoPJArgs{PJ: e.Energy.DynamicPJ[p]},
				})
			}
			t.emit(perfettoEvent{
				Name: "energy_leak_pj", Phase: "C", TS: e.Cycle, PID: e.SM, TID: 0,
				Args: perfettoPJArgs{PJ: e.Energy.LeakagePJ},
			})
		}
		return
	}
	t.emit(perfettoEvent{
		Name: e.Kind.String(), Cat: "pipeline", Phase: "i", TS: e.Cycle,
		PID: e.SM, TID: perfettoTID(e.Warp), Scope: "t",
		Args: perfettoEventArgs{PC: e.PC, Detail: e.Detail},
	})
	if e.Kind == TraceModeSwitch {
		v := 0
		if e.Detail == "FRF low power" {
			v = 1
		}
		t.emit(perfettoEvent{
			Name: "frf_low_power", Phase: "C", TS: e.Cycle, PID: e.SM, TID: 0,
			Args: perfettoCounterArgs{Value: v},
		})
	}
}

// emit writes one record, preceded by a comma for every record after
// the first.
func (t *PerfettoTracer) emit(ev perfettoEvent) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if t.needComma {
		if _, err := t.bw.WriteString(",\n"); err != nil {
			t.err = err
			return
		}
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		return
	}
	t.needComma = true
}

// Flush emits the JSON footer and drains the buffer; the tracer ignores
// events after Flush. Safe to call when no events were recorded.
func (t *PerfettoTracer) Flush() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	if !t.started {
		if _, err := t.bw.WriteString(`{"traceEvents":[`); err != nil {
			return err
		}
	}
	if _, err := t.bw.WriteString("]}\n"); err != nil {
		return err
	}
	return t.bw.Flush()
}
