package sim

import (
	"bufio"
	"fmt"
	"io"
)

// TraceKind classifies pipeline trace events.
type TraceKind uint8

// Trace event kinds, in rough pipeline order.
const (
	TraceCTALaunch TraceKind = iota
	TraceIssue
	TraceBankAccess
	TraceDispatch
	TraceMemStart
	TraceMemDone
	TraceWriteback
	TraceWarpRetire
	TracePilotDone
	TraceModeSwitch
	TraceBarrier
	// TraceEnergy carries one SM-epoch energy sample (TraceEvent.Energy);
	// the Perfetto exporter renders it as per-component counter tracks.
	TraceEnergy
)

// String returns the event kind name.
func (k TraceKind) String() string {
	switch k {
	case TraceCTALaunch:
		return "cta-launch"
	case TraceIssue:
		return "issue"
	case TraceBankAccess:
		return "bank"
	case TraceDispatch:
		return "dispatch"
	case TraceMemStart:
		return "mem-start"
	case TraceMemDone:
		return "mem-done"
	case TraceWriteback:
		return "writeback"
	case TraceWarpRetire:
		return "warp-retire"
	case TracePilotDone:
		return "pilot-done"
	case TraceModeSwitch:
		return "mode-switch"
	case TraceBarrier:
		return "barrier"
	case TraceEnergy:
		return "energy"
	default:
		return fmt.Sprintf("trace-%d", uint8(k))
	}
}

// EnergySample is the payload of a TraceEnergy event: the dynamic
// energy charged to each partition (indexed by regfile.Partition) over
// the epoch that just ended, the SM's leakage integral over the same
// interval, and the interval length.
type EnergySample struct {
	DynamicPJ [4]float64
	LeakagePJ float64
	Cycles    int64
}

// TraceEvent is one pipeline occurrence.
type TraceEvent struct {
	Cycle  int64
	SM     int
	Kind   TraceKind
	Warp   int // SM-local warp slot, -1 when not warp-specific
	PC     int // -1 when not instruction-specific
	Detail string
	// Energy carries the epoch sample of a TraceEnergy event (nil for
	// every other kind).
	Energy *EnergySample
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%8d sm%d %-11s w%-3d pc%-4d %s", e.Cycle, e.SM, e.Kind, e.Warp, e.PC, e.Detail)
}

// Tracer receives pipeline events. Implementations must be cheap; the
// simulator calls them inline.
type Tracer interface {
	Event(TraceEvent)
}

// WriterTracer streams formatted events to an io.Writer through an
// internal buffer; call Flush (or FlushTracer) after the run to drain it.
type WriterTracer struct {
	W io.Writer

	bw *bufio.Writer
}

// Event writes the event as a line.
func (t *WriterTracer) Event(e TraceEvent) {
	if t.bw == nil {
		t.bw = bufio.NewWriterSize(t.W, 1<<16)
	}
	t.bw.WriteString(e.String())
	t.bw.WriteByte('\n')
}

// Flush drains buffered events to the underlying writer.
func (t *WriterTracer) Flush() error {
	if t.bw == nil {
		return nil
	}
	return t.bw.Flush()
}

// RingTracer keeps the last N events in memory (the flight recorder used
// by tests and for post-mortem debugging).
type RingTracer struct {
	buf   []TraceEvent
	next  int
	count int
}

// NewRingTracer returns a tracer holding the last n events.
func NewRingTracer(n int) *RingTracer {
	if n <= 0 {
		panic("sim: ring tracer of non-positive size")
	}
	return &RingTracer{buf: make([]TraceEvent, n)}
}

// Event records an event, evicting the oldest when full.
func (t *RingTracer) Event(e TraceEvent) {
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	if t.count < len(t.buf) {
		t.count++
	}
}

// Events returns the recorded events, oldest first.
func (t *RingTracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// CountKind returns how many recorded events have the given kind. The
// ring buffer is scanned in place — order is irrelevant for counting, so
// no copy of the events is materialized.
func (t *RingTracer) CountKind(k TraceKind) int {
	n := 0
	for i := 0; i < t.count; i++ {
		if t.buf[i].Kind == k {
			n++
		}
	}
	return n
}

// trace emits an event if a tracer is configured.
func (s *sm) trace(kind TraceKind, warp, pc int, format string, args ...interface{}) {
	if s.cfg.Tracer == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	s.cfg.Tracer.Event(TraceEvent{
		Cycle: s.now, SM: s.id, Kind: kind, Warp: warp, PC: pc, Detail: detail,
	})
}
