package sim

import (
	"pilotrf/internal/design"
	"pilotrf/internal/fault"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
	"pilotrf/internal/stats"
	"pilotrf/internal/telemetry"
)

// KernelStats is the measurement record of one kernel execution.
type KernelStats struct {
	Name   string
	Cycles int64

	// WarpInstrs counts issued warp instructions; ThreadInstrs weights
	// them by active lanes.
	WarpInstrs   uint64
	ThreadInstrs uint64

	// RegReads/RegWrites count warp-level register file operand
	// accesses (the unit the energy model prices).
	RegReads  uint64
	RegWrites uint64

	// PartAccesses splits accesses by the physical partition that
	// serviced them (indexed by regfile.Partition).
	PartAccesses [4]uint64

	// RegHist is the per-architected-register access histogram across
	// the whole kernel (Figure 2 and the profiling oracle).
	RegHist *stats.Histogram

	// PerWarpHist holds per-warp register histograms for the first
	// Config.CollectPerWarpCTAs CTAs (Section II access-similarity
	// analysis), keyed by global warp id.
	PerWarpHist map[int]*stats.Histogram

	// PilotFraction is the pilot warp's completion time over the
	// kernel's execution time, averaged over SMs that ran a pilot
	// (Table I's last column).
	PilotFraction float64

	// LowEpochFraction is the fraction of epochs the adaptive FRF spent
	// in low-power mode, averaged over SMs.
	LowEpochFraction float64

	// RFC holds the register-file-cache event counts when UseRFC is set.
	RFC rfc.Stats

	// Gating holds the liveness-gating row-cycle counters when
	// Config.Gating is set.
	Gating design.GatingStats

	// IssueSlots is cycles x peak issue width; utilization is
	// WarpInstrs / IssueSlots.
	IssueSlots uint64

	// CollectorStalls counts issue probes that failed only because no
	// operand collector unit was free (a structural hazard signal).
	CollectorStalls uint64

	// BankQueueSum accumulates the total bank queue length each cycle;
	// divide by cycles x banks for the average per-bank backlog.
	BankQueueSum uint64

	// SMCycles counts observed SM-cycles (each tick of each busy SM)
	// when telemetry is enabled (Config.Stalls or Config.Metrics); zero
	// otherwise. SMs retire at different times, so this is not simply
	// Cycles x NumSMs.
	SMCycles uint64

	// BusyCycles counts SM-cycles that issued at least one instruction;
	// SMCycles - BusyCycles is the total stall-cycle count the
	// StallBreakdown attributes.
	BusyCycles uint64

	// StallBreakdown charges every zero-issue SM-cycle to exactly one
	// cause; its Total always equals StallCycles(). Populated only when
	// telemetry is enabled.
	StallBreakdown telemetry.StallBreakdown

	// Fault aggregates the injection and protection outcome counters
	// across SMs. All-zero when injection is disabled.
	Fault fault.Stats
}

// StallCycles returns the number of SM-cycles that issued nothing — the
// quantity StallBreakdown attributes cause by cause.
func (k *KernelStats) StallCycles() uint64 { return k.SMCycles - k.BusyCycles }

// SIMTEfficiency returns active lanes per issued warp instruction over
// the warp width — 1.0 for divergence-free code.
func (k *KernelStats) SIMTEfficiency() float64 {
	if k.WarpInstrs == 0 {
		return 0
	}
	return float64(k.ThreadInstrs) / float64(k.WarpInstrs*32)
}

// AvgBankQueue returns the average per-bank backlog in requests.
func (k *KernelStats) AvgBankQueue(banks int) float64 {
	if k.Cycles == 0 || banks <= 0 {
		return 0
	}
	return float64(k.BankQueueSum) / float64(k.Cycles) / float64(banks)
}

// TotalAccesses returns all warp-level register file accesses.
func (k *KernelStats) TotalAccesses() uint64 { return k.RegReads + k.RegWrites }

// FRFShare returns the fraction of accesses serviced by the FRF (either
// power mode) — the quantity Figure 4 and Figure 10 report.
func (k *KernelStats) FRFShare() float64 {
	total := k.PartAccesses[regfile.PartMRF] + k.PartAccesses[regfile.PartFRFHigh] +
		k.PartAccesses[regfile.PartFRFLow] + k.PartAccesses[regfile.PartSRF]
	if total == 0 {
		return 0
	}
	frf := k.PartAccesses[regfile.PartFRFHigh] + k.PartAccesses[regfile.PartFRFLow]
	return float64(frf) / float64(total)
}

// FRFLowShareOfFRF returns the fraction of FRF accesses that occurred in
// low-power mode (Figure 10's ~22% average).
func (k *KernelStats) FRFLowShareOfFRF() float64 {
	frf := k.PartAccesses[regfile.PartFRFHigh] + k.PartAccesses[regfile.PartFRFLow]
	if frf == 0 {
		return 0
	}
	return float64(k.PartAccesses[regfile.PartFRFLow]) / float64(frf)
}

// IssueUtilization returns issued instructions over peak issue slots.
func (k *KernelStats) IssueUtilization() float64 {
	if k.IssueSlots == 0 {
		return 0
	}
	return float64(k.WarpInstrs) / float64(k.IssueSlots)
}

// RunStats aggregates the kernels of one workload execution.
type RunStats struct {
	Workload string
	Kernels  []KernelStats
}

// TotalCycles sums kernel execution times (kernels run back-to-back).
func (r RunStats) TotalCycles() int64 {
	var t int64
	for i := range r.Kernels {
		t += r.Kernels[i].Cycles
	}
	return t
}

// TotalAccesses sums register accesses across kernels.
func (r RunStats) TotalAccesses() uint64 {
	var t uint64
	for i := range r.Kernels {
		t += r.Kernels[i].TotalAccesses()
	}
	return t
}

// PartAccesses sums partition-routed accesses across kernels.
func (r RunStats) PartAccesses() [4]uint64 {
	var out [4]uint64
	for i := range r.Kernels {
		for p, v := range r.Kernels[i].PartAccesses {
			out[p] += v
		}
	}
	return out
}

// FRFShare returns the access-weighted FRF share across kernels.
func (r RunStats) FRFShare() float64 {
	parts := r.PartAccesses()
	total := parts[0] + parts[1] + parts[2] + parts[3]
	if total == 0 {
		return 0
	}
	return float64(parts[regfile.PartFRFHigh]+parts[regfile.PartFRFLow]) / float64(total)
}

// MergedRegHist returns the per-register access histogram summed over
// kernels. Register numbering is per-kernel, so this is meaningful for
// Figure 2's "top N of each kernel" only via TopNShareByKernel; the
// merged histogram serves single-kernel workloads and debugging.
func (r RunStats) MergedRegHist() *stats.Histogram {
	h := stats.NewHistogram(64)
	for i := range r.Kernels {
		if r.Kernels[i].RegHist == nil {
			continue
		}
		for reg, c := range r.Kernels[i].RegHist.Snapshot() {
			h.Add(reg, c)
		}
	}
	return h
}

// TopNShareByKernel returns the access-weighted fraction of accesses
// going to each kernel's own top-n registers — exactly Figure 2's metric.
func (r RunStats) TopNShareByKernel(n int) float64 {
	var top, total uint64
	for i := range r.Kernels {
		h := r.Kernels[i].RegHist
		if h == nil {
			continue
		}
		total += h.Total()
		for _, kv := range h.TopN(n) {
			top += kv.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// StallTotals sums stall attributions across kernels, returning the
// per-cause breakdown alongside the busy and total SM-cycle counts.
func (r RunStats) StallTotals() (bd telemetry.StallBreakdown, busy, smCycles uint64) {
	for i := range r.Kernels {
		bd.AddBreakdown(r.Kernels[i].StallBreakdown)
		busy += r.Kernels[i].BusyCycles
		smCycles += r.Kernels[i].SMCycles
	}
	return bd, busy, smCycles
}

// FaultTotals sums the fault-injection outcome counters across kernels.
func (r RunStats) FaultTotals() fault.Stats {
	var t fault.Stats
	for i := range r.Kernels {
		t.Add(r.Kernels[i].Fault)
	}
	return t
}

// RFCTotals sums RFC statistics across kernels.
func (r RunStats) RFCTotals() rfc.Stats {
	var t rfc.Stats
	for i := range r.Kernels {
		t.Add(r.Kernels[i].RFC)
	}
	return t
}

// GatingTotals sums the liveness-gating counters across kernels.
func (r RunStats) GatingTotals() design.GatingStats {
	var t design.GatingStats
	for i := range r.Kernels {
		t.Add(r.Kernels[i].Gating)
	}
	return t
}
