package sim

import (
	"bytes"
	"testing"

	"pilotrf/internal/design"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// seedKernel loads memory (whose contents depend on Config.Seed) and
// branches on the loaded value, so different seeds produce different
// control flow — the divergence the diff tests exercise.
func seedKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("seed-branch", 8)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(1), isa.R(0), 2)
	b.LDG(isa.R(2), isa.R(1), 0)
	b.ANDI(isa.R(3), isa.R(2), 3)
	b.SETPI(isa.P(0), isa.R(3), isa.CmpGT, 0)
	b.If(isa.P(0), false, func() {
		b.IADD(isa.R(4), isa.R(2), isa.R(0))
		b.IMUL(isa.R(4), isa.R(4), isa.R(2))
	})
	b.STG(isa.R(1), 0, isa.R(4))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 64, NumCTAs: 2}
}

// recordRun executes k under cfg with a fresh recorder attached and
// returns the stats and the recording.
func recordRun(t *testing.T, cfg Config, k *kernel.Kernel, every int64) (KernelStats, *flightrec.Log) {
	t.Helper()
	rec := NewFlightRecorder(&cfg, "test", every)
	cfg.Record = rec
	ks := mustRun(t, cfg, k)
	return ks, rec.Log()
}

// TestFlightRecorderDoesNotPerturbTiming is the acceptance gate:
// attaching a recorder must leave cycle and access counts bit-identical
// on every registered design scheme.
func TestFlightRecorderDoesNotPerturbTiming(t *testing.T) {
	k := seedKernel(t)
	for _, sch := range design.All() {
		cfg, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
		if err != nil {
			t.Fatal(err)
		}
		plain := mustRun(t, cfg, k)
		recorded, log := recordRun(t, cfg, k, 32)
		if plain.Cycles != recorded.Cycles {
			t.Errorf("%s: recording changed cycles %d -> %d", sch.Name(), plain.Cycles, recorded.Cycles)
		}
		if plain.RegReads != recorded.RegReads || plain.RegWrites != recorded.RegWrites {
			t.Errorf("%s: recording changed access counts", sch.Name())
		}
		if plain.PartAccesses != recorded.PartAccesses {
			t.Errorf("%s: recording changed partition routing", sch.Name())
		}
		if len(log.Events) == 0 {
			t.Errorf("%s: recorder captured nothing", sch.Name())
		}
	}
}

// TestRecordDisabledZeroAlloc asserts the disabled recording path — the
// per-cycle countdown and the per-event nil guards — never allocates.
func TestRecordDisabledZeroAlloc(t *testing.T) {
	cfg := testConfig()
	ks := KernelStats{RegHist: stats.NewHistogram(4)}
	run := &runState{cfg: &cfg, kern: benchKernel(t), stats: &ks}
	s, err := newSM(0, &cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	s.launchCTA(0)
	if s.rec != nil {
		t.Fatal("recorder attached without Config.Record")
	}
	if a := testing.AllocsPerRun(1000, func() {
		s.recordTick()
		s.now++
	}); a != 0 {
		t.Errorf("disabled recordTick allocates %.1f per cycle, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		s.countPartAccess(regfile.PartMRF, 0, isa.R(1))
	}); a != 0 {
		t.Errorf("disabled countPartAccess allocates %.1f per call, want 0", a)
	}
}

func TestRecordingEventStreamShape(t *testing.T) {
	k := seedKernel(t)
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	ks, log := recordRun(t, cfg, k, 16)

	if got := log.CountKind(flightrec.KindKernelBegin); got != 1 {
		t.Errorf("kernel-begin events = %d, want 1", got)
	}
	if got := log.CountKind(flightrec.KindKernelEnd); got != 1 {
		t.Errorf("kernel-end events = %d, want 1", got)
	}
	if got := log.CountKind(flightrec.KindCTALaunch); got != k.NumCTAs {
		t.Errorf("cta-launch events = %d, want %d", got, k.NumCTAs)
	}
	if got := log.CountKind(flightrec.KindIssue); uint64(got) != ks.WarpInstrs {
		t.Errorf("issue events = %d, want WarpInstrs %d", got, ks.WarpInstrs)
	}
	var partTotal uint64
	for _, n := range ks.PartAccesses {
		partTotal += n
	}
	if got := log.CountKind(flightrec.KindRoute); uint64(got) != partTotal {
		t.Errorf("route events = %d, want PartAccesses total %d", got, partTotal)
	}
	warps := k.NumCTAs * k.WarpsPerCTA()
	if got := log.CountKind(flightrec.KindWarpRetire); got != warps {
		t.Errorf("warp-retire events = %d, want %d", got, warps)
	}
	// Periodic cadence plus the final drain checksum: at least
	// cycles/interval checksums, and at least one.
	sums := log.Checksums()
	if min := int(ks.Cycles / 16); len(sums) < min || len(sums) == 0 {
		t.Errorf("checksums = %d, want >= max(%d, 1) for %d cycles", len(sums), min, ks.Cycles)
	}
	// The first event must be kernel-begin, the last kernel-end.
	if log.Events[0].Kind != flightrec.KindKernelBegin {
		t.Errorf("first event kind = %v", log.Events[0].Kind)
	}
	if last := log.Events[len(log.Events)-1]; last.Kind != flightrec.KindKernelEnd {
		t.Errorf("last event kind = %v", last.Kind)
	}
}

// TestReplayVerificationAllWorkloadsAllDesigns is the acceptance
// property test: for every tier-1 workload and every registered design
// scheme, a re-run of the recorded configuration must reproduce the
// event stream exactly. New schemes registered in internal/design are
// swept automatically.
func TestReplayVerificationAllWorkloadsAllDesigns(t *testing.T) {
	for _, sch := range design.All() {
		for _, w := range workloads.All() {
			w = w.Scale(0.05)
			cfg, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
			if err != nil {
				t.Fatal(err)
			}

			rec := NewFlightRecorder(&cfg, w.Name, 64)
			cfg.Record = rec
			g, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.RunKernels(w.Name, w.Kernels); err != nil {
				t.Fatalf("%s/%s record: %v", sch.Name(), w.Name, err)
			}

			chk := flightrec.NewChecker(rec.Log())
			cfg2, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
			if err != nil {
				t.Fatal(err)
			}
			cfg2.Record = chk
			g2, err := New(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g2.RunKernels(w.Name, w.Kernels); err != nil {
				t.Fatalf("%s/%s replay: %v", sch.Name(), w.Name, err)
			}
			if err := chk.Err(); err != nil {
				t.Errorf("%s/%s: %v", sch.Name(), w.Name, err)
			}
		}
	}
}

// TestReplayCatchesConfigDrift: replaying a recording against a
// different seed must fail, and the reported divergence must name a
// real stream position.
func TestReplayCatchesConfigDrift(t *testing.T) {
	k := seedKernel(t)
	cfg := testConfig()
	cfg.Seed = 1
	_, log := recordRun(t, cfg, k, 32)

	chk := flightrec.NewChecker(log)
	cfg2 := testConfig()
	cfg2.Seed = 99
	cfg2.Record = chk
	g, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunKernel(k); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err == nil {
		t.Fatal("replay with a different seed passed verification")
	}
	if d := chk.Divergence(); d != nil && d.Index >= len(log.Events) && d.Recorded != nil {
		t.Errorf("divergence index %d out of range", d.Index)
	}
}

// TestDifferentSeedDiffConsistentWithChecksums is the rfdiff acceptance
// property: diffing two different-seed recordings reports a
// first-divergence cycle no later than the first checksum mismatch
// (events are finer-grained than the periodic checksums).
func TestDifferentSeedDiffConsistentWithChecksums(t *testing.T) {
	k := seedKernel(t)
	cfgA := testConfig()
	cfgA.Seed = 1
	_, logA := recordRun(t, cfgA, k, 16)
	cfgB := testConfig()
	cfgB.Seed = 2
	_, logB := recordRun(t, cfgB, k, 16)

	r := flightrec.Diff(logA, logB, 3)
	if !r.Diverged {
		t.Fatal("different-seed runs did not diverge")
	}
	if r.Cycle < 0 {
		t.Fatalf("no divergence cycle reported: %+v", r)
	}
	if r.ChecksumOrdinal < 0 {
		t.Fatal("no checksum mismatch found for diverging runs")
	}
	firstSum := r.ChecksumCycleA
	if r.ChecksumCycleB < firstSum {
		firstSum = r.ChecksumCycleB
	}
	if r.Cycle > firstSum {
		t.Errorf("first event divergence at cycle %d is later than first checksum mismatch at %d",
			r.Cycle, firstSum)
	}
	if r.Subsystem == "" || r.Subsystem == "unknown" {
		t.Errorf("no subsystem blamed: %q", r.Subsystem)
	}
}

// TestRecordingNDJSONRoundTripReplays: a recording survives the NDJSON
// round trip and still verifies a fresh replay.
func TestRecordingNDJSONRoundTripReplays(t *testing.T) {
	k := seedKernel(t)
	_, log := recordRun(t, testConfig(), k, 32)

	var buf bytes.Buffer
	if err := log.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := flightrec.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	chk := flightrec.NewChecker(loaded)
	cfg := testConfig()
	cfg.Record = chk
	mustRun(t, cfg, k)
	if err := chk.Err(); err != nil {
		t.Errorf("replay of NDJSON round-tripped log: %v", err)
	}
	if chk.ChecksumEvery() != 32 {
		t.Errorf("round-tripped checksum interval = %d, want 32", chk.ChecksumEvery())
	}
}
