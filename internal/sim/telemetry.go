package sim

import (
	"pilotrf/internal/energy"
	"pilotrf/internal/regfile"
	"pilotrf/internal/telemetry"
)

// MetricColumns is the schema of the per-epoch time series each SM
// samples into a telemetry.Recorder: one row per SM per epoch.
//
//	kernel     sequence number of the kernel within the recorder's life
//	cycle      last cycle of the epoch (kernel-local clock)
//	sm         SM id
//	issued     warp instructions issued this epoch
//	util       issued / (epoch x peak issue width)
//	mrf, frf_high, frf_low, srf
//	           bank transactions serviced per physical partition
//	bankq      mean per-bank queue depth over the epoch
//	low_power  1 when the adaptive FRF ends the epoch in low-power mode
//	busy       cycles with at least one issue
//	stall_*    zero-issue cycles charged to each cause; the stall
//	           columns sum to (epoch length - busy)
//	e_*_pj     dynamic energy charged to each partition this epoch
//	           (access deltas priced with energy.PerAccessTable), plus
//	           the SM's leakage integral over the epoch (v2 columns)
var MetricColumns = []string{
	"kernel", "cycle", "sm", "issued", "util",
	"mrf", "frf_high", "frf_low", "srf", "bankq", "low_power", "busy",
	"stall_collector_full", "stall_memory_pending", "stall_bank_conflict",
	"stall_scoreboard", "stall_barrier", "stall_pilot_drain", "stall_no_ready_warp",
	"e_mrf_pj", "e_frf_high_pj", "e_frf_low_pj", "e_srf_pj", "e_leak_pj",
}

// MetricsSchemaVersion is the version number of the per-epoch metrics
// schema; it must advance in lockstep with MetricColumns (v1 = the
// 19-column PR 1 schema, v2 adds the five energy columns).
const MetricsSchemaVersion = 2

// MetricsSchema is the versioned schema tag emitted as a "# schema:"
// comment line ahead of the metrics CSV header.
const MetricsSchema = "pilotrf-epoch-metrics/v2"

// metricsSchemaColumns maps each schema version to its column count, so
// tests can assert the header and version stay in lockstep.
var metricsSchemaColumns = map[int]int{1: 19, 2: 24}

// NewMetricsRecorder returns a telemetry recorder with the simulator's
// column schema, sampling every epochCycles (0 selects the adaptive
// FRF's default epoch length).
func NewMetricsRecorder(epochCycles int) *telemetry.Recorder {
	if epochCycles <= 0 {
		epochCycles = regfile.DefaultAdaptiveConfig().EpochCycles
	}
	rec := telemetry.NewRecorder(epochCycles, MetricColumns...)
	rec.SetSchema(MetricsSchema)
	return rec
}

// telSnap is a point-in-time copy of an SM's cumulative telemetry
// counters, kept at each epoch boundary so samples report deltas.
type telSnap struct {
	issued       uint64
	busy         uint64
	parts        [4]uint64
	bankQueueSum uint64
	stalls       telemetry.StallBreakdown
}

// smTelemetry is the per-SM observation state, allocated only when stall
// attribution or metrics sampling is enabled. The per-cycle path does
// plain integer arithmetic on this struct — no locks, no allocations;
// shared registry counters are only touched at epoch boundaries.
type smTelemetry struct {
	rec   *telemetry.Recorder
	epoch int

	cycleInEpoch int
	cur          telSnap // cumulative counters for this SM
	last         telSnap // snapshot at the previous epoch boundary

	// eTab and leakMW cache the design's pricing so the epoch sampler
	// can render the v2 energy columns without consulting the energy
	// package per sample.
	eTab   [4]float64
	leakMW float64

	// Shared live aggregates (nil when no recorder is attached).
	cIssued  *telemetry.Counter
	cBusy    *telemetry.Counter
	cCycles  *telemetry.Counter
	cSamples *telemetry.Counter
	cParts   [4]*telemetry.Counter
	cStalls  [telemetry.NumStallCauses]*telemetry.Counter
}

// newSMTelemetry builds the observation state for one SM, binding the
// shared registry counters once so the per-cycle path never consults the
// registry.
func newSMTelemetry(rec *telemetry.Recorder, d regfile.Design) *smTelemetry {
	t := &smTelemetry{rec: rec}
	if rec == nil {
		return t
	}
	t.epoch = rec.Epoch
	t.eTab = energy.PerAccessTable(d)
	t.leakMW = energy.LeakageMW(d)
	reg := rec.Registry()
	t.cIssued = reg.Counter("sim.issued")
	t.cBusy = reg.Counter("sim.busy_cycles")
	t.cCycles = reg.Counter("sim.sm_cycles")
	t.cSamples = reg.Counter("sim.epoch_samples")
	for p := range t.cParts {
		t.cParts[p] = reg.Counter("sim.accesses." + regfile.Partition(p).String())
	}
	for c := range t.cStalls {
		t.cStalls[c] = reg.Counter("sim.stall." + telemetry.StallCause(c).String())
	}
	return t
}

// observeCycle runs at the end of every tick when telemetry is enabled:
// it charges the cycle as busy or to exactly one stall cause, accumulates
// the epoch's bank backlog, and emits a sample row at epoch boundaries.
func (s *sm) observeCycle() {
	t := s.tel
	st := s.run.stats
	st.SMCycles++
	if s.issuedEpoch > 0 {
		t.cur.busy++
		t.cur.issued += uint64(s.issuedEpoch)
		st.BusyCycles++
	} else {
		c := s.classifyStall()
		t.cur.stalls[c]++
		st.StallBreakdown[c]++
	}
	for b := range s.banks {
		t.cur.bankQueueSum += uint64(len(s.banks[b].queue))
	}
	if t.rec == nil {
		return
	}
	t.cycleInEpoch++
	if t.cycleInEpoch >= t.epoch {
		s.sampleEpoch()
	}
}

// classifyStall charges a zero-issue cycle to exactly one cause. The
// priority order resolves mixed conditions deterministically: a
// structural collector stall (an otherwise-ready warp existed) wins;
// an SM with no live warps is draining its in-flight tail; otherwise
// outstanding memory beats bank service beats scoreboard/branch-shadow
// dependencies beats barriers; anything else (e.g. ready warps parked
// outside a two-level scheduler's active pool) is no-ready-warp.
func (s *sm) classifyStall() telemetry.StallCause {
	if s.run.stats.CollectorStalls > s.telCollectorMark {
		return telemetry.StallCollectorFull
	}
	if s.liveWarps == 0 {
		return telemetry.StallPilotDrain
	}
	var memPending, scoreboard, barrier bool
	for _, w := range s.warps {
		if w == nil || w.done {
			continue
		}
		switch {
		case w.atBarrier:
			barrier = true
		case w.memInFlight > 0:
			memPending = true
		case w.pendingRegs != 0 || w.pendingPreds != 0 || w.blockedUntil > s.now:
			scoreboard = true
		}
	}
	if memPending {
		return telemetry.StallMemoryPending
	}
	for _, col := range s.pendingCollectors {
		if col.pendingReads > 0 {
			return telemetry.StallBankConflict
		}
	}
	switch {
	case scoreboard:
		return telemetry.StallScoreboard
	case barrier:
		return telemetry.StallBarrier
	}
	return telemetry.StallNoReadyWarp
}

// sampleEpoch appends one time-series row covering the (possibly
// partial) epoch that just ended and folds its deltas into the shared
// live counters.
func (s *sm) sampleEpoch() {
	t := s.tel
	n := t.cycleInEpoch
	if t.rec == nil || n == 0 {
		return
	}
	issued := t.cur.issued - t.last.issued
	busy := t.cur.busy - t.last.busy
	bankq := t.cur.bankQueueSum - t.last.bankQueueSum
	var parts [4]uint64
	for p := range parts {
		parts[p] = t.cur.parts[p] - t.last.parts[p]
	}
	var stalls telemetry.StallBreakdown
	for c := range stalls {
		stalls[c] = t.cur.stalls[c] - t.last.stalls[c]
	}

	util := float64(issued) / float64(n*s.cfg.MaxIssuePerCycle())
	avgQ := float64(bankq) / float64(n) / float64(len(s.banks))
	lowPower := 0.0
	if a := s.rf.Adaptive(); a != nil && a.LowPower() {
		lowPower = 1
	}
	eLeak := t.leakMW * float64(n) / energy.ClockGHz
	row := [...]float64{
		float64(s.run.telKernel), float64(s.now), float64(s.id),
		float64(issued), util,
		float64(parts[regfile.PartMRF]), float64(parts[regfile.PartFRFHigh]),
		float64(parts[regfile.PartFRFLow]), float64(parts[regfile.PartSRF]),
		avgQ, lowPower, float64(busy),
		float64(stalls[telemetry.StallCollectorFull]),
		float64(stalls[telemetry.StallMemoryPending]),
		float64(stalls[telemetry.StallBankConflict]),
		float64(stalls[telemetry.StallScoreboard]),
		float64(stalls[telemetry.StallBarrier]),
		float64(stalls[telemetry.StallPilotDrain]),
		float64(stalls[telemetry.StallNoReadyWarp]),
		float64(parts[regfile.PartMRF]) * t.eTab[regfile.PartMRF],
		float64(parts[regfile.PartFRFHigh]) * t.eTab[regfile.PartFRFHigh],
		float64(parts[regfile.PartFRFLow]) * t.eTab[regfile.PartFRFLow],
		float64(parts[regfile.PartSRF]) * t.eTab[regfile.PartSRF],
		eLeak,
	}
	t.rec.Append(row[:])

	t.cIssued.Add(issued)
	t.cBusy.Add(busy)
	t.cCycles.Add(uint64(n))
	t.cSamples.Inc()
	for p, c := range t.cParts {
		c.Add(parts[p])
	}
	for c, ctr := range t.cStalls {
		ctr.Add(stalls[c])
	}

	t.last = t.cur
	t.cycleInEpoch = 0
}
