package sim

import (
	"pilotrf/internal/flightrec"
	"pilotrf/internal/isa"
)

// NewFlightRecorder returns a flight recorder whose header fingerprints
// the configuration — the fields a replay must match for the recording
// to be comparable. A non-positive checksumEvery selects the default
// interval.
func NewFlightRecorder(cfg *Config, label string, checksumEvery int64) *flightrec.Recorder {
	return flightrec.NewRecorder(flightrec.Meta{
		Label:         label,
		Seed:          cfg.Seed,
		Design:        cfg.RF.Design.String(),
		Profiling:     cfg.Profiling.String(),
		Policy:        cfg.Policy.String(),
		SMs:           cfg.NumSMs,
		ChecksumEvery: checksumEvery,
	})
}

// record emits one flight-recorder event at the SM's current cycle.
// Callers must hold s.rec != nil.
func (s *sm) record(k flightrec.Kind, warp, pc int, a, b uint64, detail string) {
	s.rec.Record(flightrec.Event{
		Cycle: s.now, SM: s.id, Kind: k,
		Warp: warp, PC: pc, A: a, B: b, Detail: detail,
	})
}

// recordTick advances the periodic-checksum countdown at the end of each
// SM cycle. The nil guard is the entire disabled-path cost.
func (s *sm) recordTick() {
	if s.rec == nil {
		return
	}
	s.recCycles++
	if s.recCycles >= s.recEvery {
		s.recordChecksum()
		s.recCycles = 0
	}
}

// recordChecksum hashes the SM's architectural state into one event:
// A = register-file contents over all resident warps, B = control state
// (SIMT stacks, predicates, scoreboards, barrier/done flags, the swap
// mapping, and the adaptive FRF power mode). Warps are visited in slot
// order, so the hash is deterministic for a deterministic run.
func (s *sm) recordChecksum() {
	rf := uint64(fnvOffset)
	ctl := uint64(fnvOffset)
	for _, w := range s.warps {
		if w == nil {
			continue
		}
		ctl = fnvAdd(ctl, uint64(w.slot))
		for _, e := range w.stack {
			ctl = fnvAdd(ctl, uint64(uint32(e.pc)))
			ctl = fnvAdd(ctl, uint64(uint32(e.rpc)))
			ctl = fnvAdd(ctl, uint64(e.mask))
		}
		for _, p := range w.preds {
			ctl = fnvAdd(ctl, uint64(p))
		}
		ctl = fnvAdd(ctl, w.pendingRegs)
		ctl = fnvAdd(ctl, uint64(w.pendingPreds))
		var flags uint64
		if w.atBarrier {
			flags |= 1
		}
		if w.done {
			flags |= 2
		}
		ctl = fnvAdd(ctl, flags)
		for r := range w.regs {
			for lane := range w.regs[r] {
				rf = fnvAdd(rf, uint64(w.regs[r][lane]))
			}
		}
	}
	ctl = fnvAdd(ctl, s.mappingHash())
	if a := s.rf.Adaptive(); a != nil && a.LowPower() {
		ctl = fnvAdd(ctl, 1)
	}
	s.record(flightrec.KindChecksum, -1, -1, rf, ctl, "")
	// The cumulative dataflow digest rides along with every checksum:
	// unlike the state hashes above it is timing-independent, which is
	// what lets a fault campaign compare a retry-delayed run against its
	// fault-free golden twin for silent data corruption.
	s.record(flightrec.KindReadHash, -1, -1, s.readHash, s.readCount, "")
}

// mappingHash fingerprints the swapping table: the physical location of
// every architected register.
func (s *sm) mappingHash() uint64 {
	m := s.rf.Mapper()
	h := uint64(fnvOffset)
	for r := 0; r < isa.MaxRegs; r++ {
		h = fnvAdd(h, uint64(m.Lookup(isa.Reg(r))))
	}
	return h
}

// FNV-1a 64-bit constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvAdd folds one 64-bit value into an FNV-1a hash, byte by byte.
func fnvAdd(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
