package sim

import (
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// fullMask covers all 32 lanes of a warp.
const fullMask = ^uint32(0)

// simtEntry is one level of the SIMT reconvergence stack.
type simtEntry struct {
	pc   int
	rpc  int // reconvergence pc; -1 for the bottom entry
	mask uint32
}

// ctaCtx tracks one resident cooperative thread array.
type ctaCtx struct {
	id      int // CTA index within the grid
	warps   []*warpCtx
	live    int // warps not yet done
	arrived int // warps waiting at the barrier
}

// warpCtx is one resident warp: functional state (registers, predicates,
// SIMT stack) plus the timing state the pipeline model needs.
type warpCtx struct {
	slot     int // SM-local warp slot
	globalID int // unique across the kernel launch
	cta      *ctaCtx
	inCTA    int // warp index within the CTA

	stack []simtEntry
	regs  [][32]uint32
	preds [isa.NumPreds]uint32

	pendingRegs  uint64 // scoreboard: in-flight destination registers
	pendingPreds uint8  // scoreboard: in-flight predicate destinations

	blockedUntil int64
	atBarrier    bool
	done         bool
	inFlight     int // instructions past issue, before writeback
	memInFlight  int // outstanding global memory transactions

	finishCycle int64
	lastIssue   int64

	// execSeq counts the warp's executed (non-squashed, non-control)
	// instructions. It keys the dataflow digest, so it must advance
	// identically whether or not fault retries delayed the issue —
	// squashed issues therefore do not increment it.
	execSeq uint64
}

func newWarpCtx(slot, globalID int, cta *ctaCtx, inCTA int, prog *kernel.Program, threads uint32) *warpCtx {
	return &warpCtx{
		slot:     slot,
		globalID: globalID,
		cta:      cta,
		inCTA:    inCTA,
		regs:     make([][32]uint32, prog.NumRegs),
		stack:    []simtEntry{{pc: 0, rpc: -1, mask: threads}},
	}
}

// top returns the active SIMT stack entry.
func (w *warpCtx) top() *simtEntry { return &w.stack[len(w.stack)-1] }

// activeMask returns the currently executing lane mask (0 when done).
func (w *warpCtx) activeMask() uint32 {
	if w.done || len(w.stack) == 0 {
		return 0
	}
	return w.top().mask
}

// pc returns the current program counter.
func (w *warpCtx) pc() int { return w.top().pc }

// normalize pops entries that reached their reconvergence point or lost
// all their lanes, and marks the warp functionally finished when the
// stack empties.
func (w *warpCtx) normalize() {
	for len(w.stack) > 0 {
		t := w.top()
		if t.mask == 0 || (t.rpc >= 0 && t.pc == t.rpc) {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
}

// finished reports whether all lanes have exited (stack empty).
func (w *warpCtx) finished() bool { return len(w.stack) == 0 }

// advance moves past the current instruction (non-branch path).
func (w *warpCtx) advance() {
	w.top().pc++
	w.normalize()
}

// branch applies a (possibly divergent) branch at the current pc:
// takenMask lanes jump to target, the remaining active lanes fall
// through, and diverged paths reconverge at rpc. On divergence the
// current entry becomes the reconvergence entry and the split paths are
// pushed above it, taken path on top (executed first). Paths whose pc
// already equals rpc are not pushed — those lanes simply wait at the
// reconvergence entry (this covers both forward skip-branches and loop
// exits).
func (w *warpCtx) branch(takenMask uint32, target, rpc int) {
	t := w.top()
	fallthroughPC := t.pc + 1
	ntMask := t.mask &^ takenMask
	switch {
	case takenMask == 0:
		t.pc = fallthroughPC
	case ntMask == 0:
		t.pc = target
	default:
		t.pc = rpc
		w.pushPath(fallthroughPC, rpc, ntMask)
		w.pushPath(target, rpc, takenMask)
	}
	w.normalize()
}

func (w *warpCtx) pushPath(pc, rpc int, mask uint32) {
	if mask == 0 || pc == rpc {
		return
	}
	w.stack = append(w.stack, simtEntry{pc: pc, rpc: rpc, mask: mask})
}

// exitLanes removes lanes from every stack entry (thread termination),
// dropping entries that lose all lanes while preserving order.
func (w *warpCtx) exitLanes(mask uint32) {
	kept := w.stack[:0]
	for _, e := range w.stack {
		e.mask &^= mask
		if e.mask != 0 {
			kept = append(kept, e)
		}
	}
	w.stack = kept
	w.normalize()
}

// predMask returns the lane mask where the guard holds.
func (w *warpCtx) predMask(g isa.Guard) uint32 {
	var m uint32
	if g.Pred == isa.PT {
		m = fullMask
	} else {
		m = w.preds[g.Pred]
	}
	if g.Neg {
		m = ^m
	}
	return m
}
