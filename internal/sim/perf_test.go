package sim

import (
	"testing"

	"pilotrf/internal/design"
	"pilotrf/internal/kernel"
	"pilotrf/internal/perfscope"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
)

// perfRun executes k under cfg with a fresh profiler attached.
func perfRun(t *testing.T, cfg Config, k *kernel.Kernel, wall bool) (KernelStats, *perfscope.Profiler) {
	t.Helper()
	p := perfscope.New(wall)
	cfg.Perf = p
	return mustRun(t, cfg, k), p
}

// TestPerfscopeDoesNotPerturbTiming is the acceptance gate: attaching
// the profiler — census and wall-clock both — must leave cycle and
// access counts bit-identical on every registered design scheme.
func TestPerfscopeDoesNotPerturbTiming(t *testing.T) {
	k := seedKernel(t)
	for _, sch := range design.All() {
		cfg, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
		if err != nil {
			t.Fatal(err)
		}
		plain := mustRun(t, cfg, k)
		profiled, p := perfRun(t, cfg, k, true)
		if plain.Cycles != profiled.Cycles {
			t.Errorf("%s: profiling changed cycles %d -> %d", sch.Name(), plain.Cycles, profiled.Cycles)
		}
		if plain.RegReads != profiled.RegReads || plain.RegWrites != profiled.RegWrites {
			t.Errorf("%s: profiling changed access counts", sch.Name())
		}
		if plain.PartAccesses != profiled.PartAccesses {
			t.Errorf("%s: profiling changed partition routing", sch.Name())
		}
		if p.Census().SMCycles == 0 {
			t.Errorf("%s: profiler observed nothing", sch.Name())
		}
	}
}

// TestPerfscopeCensusPartitions asserts the census invariants on a real
// run: the four classes partition SMCycles exactly, skip runs never
// exceed skippable cycles, a busy kernel has busy cycles, and the
// census agrees with the telemetry stall attribution's total.
func TestPerfscopeCensusPartitions(t *testing.T) {
	k := seedKernel(t)
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	cfg.Stalls = true
	ks, p := perfRun(t, cfg, k, false)
	c := p.Census()
	if got := c.Busy + c.ActiveNoIssue + c.Skippable + c.StalledUnknown; got != c.SMCycles {
		t.Errorf("census classes sum to %d, want SMCycles %d", got, c.SMCycles)
	}
	if c.SkipRuns > c.Skippable {
		t.Errorf("skip runs %d exceed skippable cycles %d", c.SkipRuns, c.Skippable)
	}
	if c.Busy == 0 {
		t.Error("census saw no busy cycles on a real kernel")
	}
	if c.SMCycles != ks.SMCycles {
		t.Errorf("census SMCycles %d != telemetry SMCycles %d", c.SMCycles, ks.SMCycles)
	}
	// Busy in the census means "issued this cycle" — the same predicate
	// telemetry's BusyCycles counts.
	if c.Busy != ks.BusyCycles {
		t.Errorf("census busy %d != telemetry busy %d", c.Busy, ks.BusyCycles)
	}
}

// TestPerfscopeCensusDeterministic: two census-only runs of the same
// configuration fold to identical censuses (the property the
// byte-reproducible report rests on).
func TestPerfscopeCensusDeterministic(t *testing.T) {
	k := seedKernel(t)
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	_, p1 := perfRun(t, cfg, k, false)
	_, p2 := perfRun(t, cfg, k, true) // wall-clock must not change the census
	if p1.Census() != p2.Census() {
		t.Errorf("censuses differ across runs:\n%+v\n%+v", p1.Census(), p2.Census())
	}
}

// TestPerfscopeWallClock: with wall-clock on, the timed phases cover
// the tick (issue and events always run, so they must be nonzero on a
// real kernel); census-only profilers time nothing.
func TestPerfscopeWallClock(t *testing.T) {
	k := seedKernel(t)
	_, wall := perfRun(t, testConfig(), k, true)
	ns := wall.PhaseNS()
	if ns[perfscope.PhaseIssue] <= 0 || ns[perfscope.PhaseEvents] <= 0 {
		t.Errorf("wall-clock phases not timed: %v", ns)
	}
	_, census := perfRun(t, testConfig(), k, false)
	if ns := census.PhaseNS(); ns != ([perfscope.NumPhases]int64{}) {
		t.Errorf("census-only profiler recorded wall time: %v", ns)
	}
}

// perfAllocSM builds an SM under cfg, runs its kernel to completion
// (so queue/heap capacity growth is behind us), and returns it ready
// for steady-state tick measurements.
func perfAllocSM(t *testing.T, cfg *Config) *sm {
	t.Helper()
	ks := KernelStats{RegHist: stats.NewHistogram(4)}
	run := &runState{cfg: cfg, kern: benchKernel(t), stats: &ks}
	s, err := newSM(0, cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	s.launchCTA(0)
	for i := 0; s.busy(); i++ {
		s.tick()
		if i > 10000 {
			t.Fatal("bench kernel did not drain")
		}
	}
	return s
}

// TestPerfDisabledZeroAlloc asserts the disabled path — one nil check
// per hook — allocates nothing per cycle, and that the enabled path
// (wall-clock laps plus the census) is allocation-free too: the
// profiler must not slow the runs it measures.
func TestPerfDisabledZeroAlloc(t *testing.T) {
	cfg := testConfig()
	s := perfAllocSM(t, &cfg)
	if s.pf != nil {
		t.Fatal("profiler attached without Config.Perf")
	}
	if a := testing.AllocsPerRun(1000, func() {
		s.tick()
	}); a != 0 {
		t.Errorf("disabled perfscope tick allocates %.1f per cycle, want 0", a)
	}

	cfg2 := testConfig()
	cfg2.Perf = perfscope.New(true)
	s2 := perfAllocSM(t, &cfg2)
	if s2.pf == nil {
		t.Fatal("profiler not attached")
	}
	if a := testing.AllocsPerRun(1000, func() {
		s2.tick()
	}); a != 0 {
		t.Errorf("enabled perfscope tick allocates %.1f per cycle, want 0", a)
	}
}
