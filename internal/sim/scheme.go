package sim

import (
	"pilotrf/internal/design"
)

// WithScheme returns the config reconfigured for a registered design
// scheme at the given knobs. For the four legacy schemes at default
// knobs the result is identical to WithDesign — the design plug-in
// refactor is observably pure, which the pre-refactor goldens assert.
func (c Config) WithScheme(s design.Scheme, k design.Knobs) (Config, error) {
	set, err := s.Settings(k)
	if err != nil {
		return c, err
	}
	c.RF = set.RF
	if set.ProfTopN > 0 {
		c.ProfTopN = set.ProfTopN
	}
	if set.TwoLevel {
		c.Policy = PolicyTL
		if set.TLActiveWarps > 0 {
			c.TLActiveWarps = set.TLActiveWarps
		}
	}
	c.UseRFC = set.UseRFC
	c.RFCCompilerHints = set.RFCCompilerHints
	if set.UseRFC {
		c.RFC = set.RFC
	}
	if set.RFCMRFLatency > 0 {
		c.RFCMRFLatency = set.RFCMRFLatency
	}
	c.Gating = set.Gating
	return c, nil
}

// DesignRun summarizes the run for Scheme.Energy pricing: the neutral
// integer-count view internal/design consumes.
func (r RunStats) DesignRun() design.Run {
	return design.Run{
		PartAccesses:  r.PartAccesses(),
		Cycles:        r.TotalCycles(),
		TotalAccesses: r.TotalAccesses(),
		RFC:           r.RFCTotals(),
		Gating:        r.GatingTotals(),
	}
}
