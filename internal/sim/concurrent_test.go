package sim

import (
	"fmt"
	"sync"
	"testing"

	"pilotrf/internal/design"
	"pilotrf/internal/workloads"
)

// TestConcurrentRunsIndependent runs 4 workloads x every registered
// design scheme at once — every combination in its own goroutine against
// its own GPU — and compares each result to a sequential reference run.
// Under -race this is the contract the parallel campaign engine and the
// job server stand on: sim.New/RunKernels share no mutable package
// state, so concurrent runs are exactly as deterministic as sequential
// ones. Sweeping design.All() means every newly registered scheme is
// covered automatically.
func TestConcurrentRunsIndependent(t *testing.T) {
	names := []string{"sgemm", "backprop", "srad", "WP"}

	type combo struct {
		w   workloads.Workload
		cfg Config
		key string
	}
	var combos []combo
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w = w.Scale(0.05)
		for _, sch := range design.All() {
			cfg, err := DefaultConfig().WithScheme(sch, sch.DefaultKnobs())
			if err != nil {
				t.Fatal(err)
			}
			cfg.NumSMs = 1
			combos = append(combos, combo{w: w, cfg: cfg, key: fmt.Sprintf("%s/%s", name, sch.Name())})
		}
	}

	run := func(c combo) (RunStats, error) {
		g, err := New(c.cfg)
		if err != nil {
			return RunStats{}, err
		}
		return g.RunKernels(c.w.Name, c.w.Kernels)
	}

	want := make([]RunStats, len(combos))
	for i, c := range combos {
		rs, err := run(c)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		want[i] = rs
	}

	got := make([]RunStats, len(combos))
	errs := make([]error, len(combos))
	var wg sync.WaitGroup
	for i, c := range combos {
		wg.Add(1)
		go func(i int, c combo) {
			defer wg.Done()
			got[i], errs[i] = run(c)
		}(i, c)
	}
	wg.Wait()

	for i, c := range combos {
		if errs[i] != nil {
			t.Errorf("%s: concurrent run failed: %v", c.key, errs[i])
			continue
		}
		if got[i].TotalCycles() != want[i].TotalCycles() ||
			got[i].TotalAccesses() != want[i].TotalAccesses() ||
			got[i].PartAccesses() != want[i].PartAccesses() {
			t.Errorf("%s: concurrent run diverged from sequential (%d/%d vs %d/%d)",
				c.key, got[i].TotalCycles(), got[i].TotalAccesses(),
				want[i].TotalCycles(), want[i].TotalAccesses())
		}
	}
}
