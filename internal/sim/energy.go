package sim

import (
	"pilotrf/internal/energy"
	"pilotrf/internal/isa"
)

// smEnergy is the per-SM energy-attribution state, allocated only when a
// ledger is attached (Config.Energy). The per-access path does two plain
// integer increments on this struct — no locks, no allocations, no
// floats; the shared ledger is only touched at epoch and kernel
// boundaries, and all pricing happens there or later. Keeping the
// charge path integer-only is what makes the ledger's conservation
// invariant bit-exact: the final dynamic figure is computed by the very
// same formula the aggregate report uses, over identical integer counts.
type smEnergy struct {
	led    *energy.Ledger
	kernel int64 // ledger-scoped kernel sequence number

	epoch        int
	cycleInEpoch int
	parts        [4]uint64 // accesses this epoch, by partition

	// heat is the per-(warp slot, architectural register) access matrix
	// for the current kernel, stored flat: heat[warp*isa.MaxRegs+reg].
	heat [][4]uint64

	// perAccess and leakMW cache the ledger's pricing so epoch trace
	// samples never lock.
	perAccess [4]float64
	leakMW    float64

	// protMask caches which partitions carry protection check bits;
	// overhead counts their check-bit accesses (one per data access),
	// folded into the ledger once at kernel drain.
	protMask [4]bool
	overhead [4]uint64
}

// newSMEnergy builds the attribution state for one SM.
func newSMEnergy(led *energy.Ledger, kernelSeq int64, warpSlots int) *smEnergy {
	return &smEnergy{
		led:       led,
		kernel:    kernelSeq,
		epoch:     led.EpochCycles(),
		heat:      make([][4]uint64, warpSlots*isa.MaxRegs),
		perAccess: led.PerAccessPJ(),
		leakMW:    led.LeakageMW(),
		protMask:  led.ProtectedMask(),
	}
}

// energyCycle runs at the end of every tick when a ledger is attached,
// folding the accumulated charges into the ledger at epoch boundaries.
func (s *sm) energyCycle() {
	en := s.en
	en.cycleInEpoch++
	if en.cycleInEpoch >= en.epoch {
		s.flushEnergyEpoch()
	}
}

// flushEnergyEpoch appends the (possibly partial) epoch the SM is in to
// the ledger and emits a TraceEnergy counter sample when tracing.
func (s *sm) flushEnergyEpoch() {
	en := s.en
	if en.cycleInEpoch == 0 {
		return
	}
	ec := energy.EpochCharge{
		Kernel: en.kernel, SM: s.id, Cycle: s.now,
		Cycles: int64(en.cycleInEpoch), Accesses: en.parts,
	}
	en.led.AddEpoch(ec)
	if s.cfg.Tracer != nil {
		s.traceEnergy(ec)
	}
	en.parts = [4]uint64{}
	en.cycleInEpoch = 0
}

// traceEnergy prices one epoch charge and hands it to the tracer as a
// TraceEnergy event (the Perfetto exporter renders it as per-component
// counter tracks).
func (s *sm) traceEnergy(ec energy.EpochCharge) {
	en := s.en
	smp := &EnergySample{Cycles: ec.Cycles}
	for p, n := range ec.Accesses {
		smp.DynamicPJ[p] = float64(n) * en.perAccess[p]
	}
	smp.LeakagePJ = en.leakMW * float64(ec.Cycles) / energy.ClockGHz
	s.cfg.Tracer.Event(TraceEvent{
		Cycle: s.now, SM: s.id, Kind: TraceEnergy, Warp: -1, PC: -1,
		Detail: "epoch energy", Energy: smp,
	})
}

// foldHeat flushes the SM's per-register access matrix into the ledger
// as heat cells; called once per kernel when the SM drains (SM state is
// fresh per kernel, so no reset is needed).
func (s *sm) foldHeat() {
	en := s.en
	var cells []energy.HeatCell
	for i := range en.heat {
		if en.heat[i] == ([4]uint64{}) {
			continue
		}
		cells = append(cells, energy.HeatCell{
			Kernel: en.kernel, SM: s.id,
			Warp: i / isa.MaxRegs, Reg: isa.Reg(i % isa.MaxRegs),
			Accesses: en.heat[i],
		})
	}
	if len(cells) > 0 {
		en.led.AddHeat(cells)
	}
}
