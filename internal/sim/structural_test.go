package sim

import (
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/regfile"
)

// Structural-hazard tests: the simulator must stay correct (and must
// terminate) when collectors, memory slots, or banks saturate.

// fatKernel issues many independent 3-source instructions so collector
// units saturate.
func fatKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("fat", 16)
	for r := 0; r < 8; r++ {
		b.MOVI(isa.R(r), int32(r))
	}
	for i := 0; i < 30; i++ {
		d := 8 + i%8
		b.IMAD(isa.R(d), isa.R(i%4), isa.R(4+i%4), isa.R(i%8))
	}
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 512, NumCTAs: 4}
}

func TestCollectorSaturation(t *testing.T) {
	cfg := testConfig()
	cfg.OperandCollectors = 2 // brutal structural pressure
	ks := mustRun(t, cfg, fatKernel(t))
	roomy := testConfig()
	ks2 := mustRun(t, roomy, fatKernel(t))
	if ks.WarpInstrs != ks2.WarpInstrs {
		t.Errorf("collector pressure changed instruction count: %d vs %d", ks.WarpInstrs, ks2.WarpInstrs)
	}
	if ks.Cycles <= ks2.Cycles {
		t.Errorf("2 collectors (%d cycles) should be slower than 24 (%d)", ks.Cycles, ks2.Cycles)
	}
}

// memBurst issues many concurrent loads so the memory pipe saturates.
func memBurst(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("burst", 16)
	b.S2R(isa.R(0), isa.SRTid)
	for i := 0; i < 10; i++ {
		b.LDG(isa.R(2+i), isa.R(0), int32(4*i))
	}
	b.IADD(isa.R(1), isa.R(2), isa.R(3))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 512, NumCTAs: 4}
}

func TestMemoryBandwidthLimit(t *testing.T) {
	tight := testConfig()
	tight.MaxMemInflight = 1
	a := mustRun(t, tight, memBurst(t))
	loose := testConfig()
	loose.MaxMemInflight = 256
	b := mustRun(t, loose, memBurst(t))
	if a.WarpInstrs != b.WarpInstrs {
		t.Error("bandwidth limit changed functional behaviour")
	}
	if a.Cycles <= b.Cycles {
		t.Errorf("1 mem slot (%d cycles) should be slower than 256 (%d)", a.Cycles, b.Cycles)
	}
}

func TestFewBanksSlower(t *testing.T) {
	k := fatKernel(t)
	few := testConfig()
	few.RF.Banks = 2
	a := mustRun(t, few, k)
	many := testConfig()
	b := mustRun(t, many, k)
	if a.Cycles <= b.Cycles {
		t.Errorf("2 banks (%d cycles) should be slower than 24 (%d)", a.Cycles, b.Cycles)
	}
	// Access counts are a functional property.
	if a.TotalAccesses() != b.TotalAccesses() {
		t.Error("bank count changed access counts")
	}
}

func TestWritebackForwardingFaster(t *testing.T) {
	// A serial dependency chain: forwarding must shorten it.
	b := kernel.NewBuilder("chain", 4)
	b.MOVI(isa.R(0), 1)
	for i := 0; i < 40; i++ {
		b.IADDI(isa.R(0), isa.R(0), 1)
	}
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	// Forwarding pays when the register write itself is slow: use the
	// NTV design (3-cycle accesses).
	off := testConfig().WithDesign(regfile.DesignMonolithicNTV)
	slow := mustRun(t, off, k)
	on := testConfig().WithDesign(regfile.DesignMonolithicNTV)
	on.WritebackForwarding = true
	fast := mustRun(t, on, k)
	if fast.Cycles >= slow.Cycles {
		t.Errorf("forwarding (%d cycles) not faster than none (%d)", fast.Cycles, slow.Cycles)
	}
	if fast.TotalAccesses() != slow.TotalAccesses() {
		t.Error("forwarding changed access counts")
	}
}

func TestObservabilityMetrics(t *testing.T) {
	// Collector stalls appear under structural pressure...
	tight := testConfig()
	tight.OperandCollectors = 2
	ks := mustRun(t, tight, fatKernel(t))
	if ks.CollectorStalls == 0 {
		t.Error("no collector stalls under 2-collector pressure")
	}
	// ...and the divergence-free kernel runs at full SIMT efficiency.
	if eff := ks.SIMTEfficiency(); eff != 1.0 {
		t.Errorf("SIMT efficiency = %.3f, want 1.0 for uniform code", eff)
	}
	// A divergent kernel runs below full efficiency.
	div := mustRun(t, testConfig(), divergentKernel(t))
	if eff := div.SIMTEfficiency(); eff >= 1.0 || eff <= 0.3 {
		t.Errorf("divergent SIMT efficiency = %.3f, want in (0.3, 1.0)", eff)
	}
	// Bank backlog is observable and sane.
	if ks.AvgBankQueue(tight.RF.Banks) < 0 {
		t.Error("negative bank queue")
	}
	if ks.AvgBankQueue(0) != 0 || (&KernelStats{}).SIMTEfficiency() != 0 {
		t.Error("zero-value metric guards broken")
	}
}

func TestIssueWidthMatters(t *testing.T) {
	k := fatKernel(t)
	narrow := testConfig()
	narrow.IssuePerScheduler = 1
	a := mustRun(t, narrow, k)
	wide := testConfig()
	b := mustRun(t, wide, k)
	if a.Cycles <= b.Cycles {
		t.Errorf("single-issue (%d cycles) should be slower than dual-issue (%d)", a.Cycles, b.Cycles)
	}
}

func TestZeroLaneInstructionSquashed(t *testing.T) {
	// An instruction fully predicated off must not touch the RF.
	b := kernel.NewBuilder("squash", 6)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpGT, 100) // false everywhere (R0 = 0)
	b.Guarded(isa.P(0), false, func() {
		b.IADD(isa.R(1), isa.R(2), isa.R(3))
	})
	b.MOVI(isa.R(4), 1)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	ks := mustRun(t, testConfig(), k)
	// Accesses: SETPI reads R0 (1 read), MOVI writes R4 (1 write).
	// The squashed IADD contributes nothing.
	if ks.RegReads != 1 || ks.RegWrites != 1 {
		t.Errorf("accesses = %d/%d, want 1/1 (squashed instruction leaked)", ks.RegReads, ks.RegWrites)
	}
}

func TestBranchShadowBlocksIssue(t *testing.T) {
	// A tight dependent-branch loop: the warp cannot run ahead of its
	// branches, so cycles must be at least trips x branch latency.
	b := kernel.NewBuilder("bshadow", 4)
	b.MOVI(isa.R(0), 0)
	top := b.Here()
	b.IADDI(isa.R(0), isa.R(0), 1)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpLT, 50)
	b.BraIf(isa.P(0), false, top)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	cfg := testConfig()
	ks := mustRun(t, cfg, k)
	if minimum := int64(50 * cfg.BranchLatency); ks.Cycles < minimum {
		t.Errorf("cycles = %d, below the branch-shadow floor %d", ks.Cycles, minimum)
	}
}
