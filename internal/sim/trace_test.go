package sim

import (
	"strings"
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
)

func tracedKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("traced", 6)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(1), isa.R(0), 2)
	b.LDG(isa.R(2), isa.R(1), 0)
	b.IADD(isa.R(3), isa.R(2), isa.R(0))
	b.STG(isa.R(1), 0, isa.R(3))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
}

func TestRingTracerCapturesPipelineFlow(t *testing.T) {
	tracer := NewRingTracer(4096)
	cfg := testConfig()
	cfg.Tracer = tracer
	mustRun(t, cfg, tracedKernel(t))

	ev := tracer.Events()
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	// One CTA launch, one warp retirement, one pilot completion.
	if got := tracer.CountKind(TraceCTALaunch); got != 1 {
		t.Errorf("CTA launches = %d, want 1", got)
	}
	if got := tracer.CountKind(TraceWarpRetire); got != 1 {
		t.Errorf("warp retirements = %d, want 1", got)
	}
	// Six instructions issued.
	if got := tracer.CountKind(TraceIssue); got != 6 {
		t.Errorf("issues = %d, want 6", got)
	}
	// Memory: one LDG + one STG.
	if got := tracer.CountKind(TraceMemStart); got != 2 {
		t.Errorf("memory starts = %d, want 2", got)
	}
	if got := tracer.CountKind(TraceMemDone); got != 2 {
		t.Errorf("memory completions = %d, want 2", got)
	}
	// Every non-control instruction dispatches exactly once (5 here).
	if got := tracer.CountKind(TraceDispatch); got != 5 {
		t.Errorf("dispatches = %d, want 5", got)
	}
}

func TestTraceEventOrdering(t *testing.T) {
	tracer := NewRingTracer(4096)
	cfg := testConfig()
	cfg.Tracer = tracer
	mustRun(t, cfg, tracedKernel(t))

	// Cycles must be non-decreasing, and the pipeline order must hold
	// per kind: first issue <= first dispatch <= first writeback.
	var prev int64 = -1
	first := map[TraceKind]int64{}
	for _, e := range tracer.Events() {
		if e.Cycle < prev {
			t.Fatalf("trace cycles went backwards: %d after %d", e.Cycle, prev)
		}
		prev = e.Cycle
		if _, seen := first[e.Kind]; !seen {
			first[e.Kind] = e.Cycle
		}
	}
	if !(first[TraceIssue] <= first[TraceDispatch] && first[TraceDispatch] <= first[TraceWriteback]) {
		t.Errorf("pipeline order violated: issue@%d dispatch@%d writeback@%d",
			first[TraceIssue], first[TraceDispatch], first[TraceWriteback])
	}
}

func TestTraceBankPartitions(t *testing.T) {
	tracer := NewRingTracer(8192)
	// A kernel touching both default-FRF registers (R0-R3) and
	// default-SRF registers (R4, R5).
	b := kernel.NewBuilder("parts", 6)
	b.MOVI(isa.R(0), 1)
	b.MOVI(isa.R(4), 2)
	b.IADD(isa.R(5), isa.R(0), isa.R(4))
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniqueStaticFirstN
	cfg.Tracer = tracer
	mustRun(t, cfg, k)
	sawFRF, sawSRF := false, false
	for _, e := range tracer.Events() {
		if e.Kind != TraceBankAccess {
			continue
		}
		if strings.Contains(e.Detail, "FRF") {
			sawFRF = true
		}
		if strings.Contains(e.Detail, "SRF") {
			sawSRF = true
		}
	}
	if !sawFRF || !sawSRF {
		t.Errorf("bank trace missing partitions: FRF=%v SRF=%v", sawFRF, sawSRF)
	}
}

func TestRingTracerEviction(t *testing.T) {
	tr := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		tr.Event(TraceEvent{Cycle: int64(i)})
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("ring holds %d, want 3", len(ev))
	}
	if ev[0].Cycle != 2 || ev[2].Cycle != 4 {
		t.Errorf("ring contents = %v, want cycles 2..4", ev)
	}
}

func TestRingTracerPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRingTracer(0)
}

func TestWriterTracerFormat(t *testing.T) {
	var sb strings.Builder
	wt := &WriterTracer{W: &sb}
	wt.Event(TraceEvent{Cycle: 7, SM: 0, Kind: TraceIssue, Warp: 3, PC: 12, Detail: "IADD R0, R1, R2"})
	// Events are buffered until Flush.
	if sb.Len() != 0 {
		t.Errorf("writer emitted %q before Flush", sb.String())
	}
	if err := wt.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "issue") || !strings.Contains(out, "IADD") {
		t.Errorf("writer output = %q", out)
	}
}

func TestTracingDoesNotChangeResults(t *testing.T) {
	k := tracedKernel(t)
	plain := mustRun(t, testConfig(), k)
	cfg := testConfig()
	cfg.Tracer = NewRingTracer(64)
	traced := mustRun(t, cfg, k)
	if plain.Cycles != traced.Cycles || plain.RegReads != traced.RegReads {
		t.Error("tracing perturbed the simulation")
	}
}
