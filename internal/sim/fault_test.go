package sim

import (
	"errors"
	"testing"

	"pilotrf/internal/energy"
	"pilotrf/internal/fault"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// TestFaultDisabledZeroPerturbation is the acceptance property: a config
// with injection disabled — whether Fault is nil, the rate is zero, or a
// protection scheme is selected without any faults — must produce
// bit-identical results to the plain baseline.
func TestFaultDisabledZeroPerturbation(t *testing.T) {
	for _, d := range []regfile.Design{regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive} {
		base := testConfig().WithDesign(d)

		zeroRate := base
		zeroRate.Fault = &fault.Config{Rate: 0, Seed: 9}

		protected := base
		protected.Protect = fault.PaperScheme()

		w := workloads.All()[0].Scale(0.05)
		run := func(cfg Config) RunStats {
			g, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := g.RunKernels(w.Name, w.Kernels)
			if err != nil {
				t.Fatal(err)
			}
			return rs
		}
		plain := run(base)
		for name, cfg := range map[string]Config{"zero-rate": zeroRate, "protect-only": protected} {
			got := run(cfg)
			if plain.TotalCycles() != got.TotalCycles() {
				t.Errorf("%s/%s: cycles %d != baseline %d", d, name, got.TotalCycles(), plain.TotalCycles())
			}
			if plain.PartAccesses() != got.PartAccesses() {
				t.Errorf("%s/%s: partition accesses diverge", d, name)
			}
			for i := range got.Kernels {
				if got.Kernels[i].WarpInstrs != plain.Kernels[i].WarpInstrs {
					t.Errorf("%s/%s: kernel %d warp instrs diverge", d, name, i)
				}
			}
			if ft := got.FaultTotals(); ft.TotalInjected() != 0 || ft.SilentReads != 0 {
				t.Errorf("%s/%s: fault outcomes counted without injection: %+v", d, name, ft)
			}
		}
	}
}

// TestFaultTickZeroAlloc asserts the per-cycle fault hook allocates
// nothing when the process is armed but never fires (rate zero) — the
// cost of carrying an injector through a fault-free run.
func TestFaultTickZeroAlloc(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Config{Rate: 0, Seed: 1}
	ks := KernelStats{RegHist: stats.NewHistogram(4)}
	run := &runState{cfg: &cfg, kern: benchKernel(t), stats: &ks}
	s, err := newSM(0, &cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	s.launchCTA(0)
	if s.inj == nil {
		t.Fatal("no injector despite Config.Fault")
	}
	if a := testing.AllocsPerRun(1000, func() {
		s.faultTick()
		s.now++
	}); a != 0 {
		t.Errorf("armed-idle faultTick allocates %.1f per cycle, want 0", a)
	}
}

// digestRun drives one SM through a small kernel with a digest probe
// attached, optionally corrupting state at a chosen cycle, and returns
// the probe for golden-vs-faulty comparison.
func digestRun(t *testing.T, corrupt func(s *sm)) *fault.DigestProbe {
	t.Helper()
	probe := fault.NewDigestProbe()
	cfg := testConfig()
	cfg.Record = probe
	k := straightLine(t, 10) // 4 regs: R0/R1 read hot, R2 dst-only, R3 dead
	ks := KernelStats{RegHist: stats.NewHistogram(k.Prog.NumRegs)}
	run := &runState{cfg: &cfg, kern: k, stats: &ks}
	probe.Record(flightrec.Event{Kind: flightrec.KindKernelBegin, SM: -1})
	s, err := newSM(0, &cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	s.launchCTA(0)
	for s.busy() {
		if corrupt != nil && s.now == 10 {
			corrupt(s)
		}
		s.tick()
	}
	s.recordChecksum()
	return probe
}

// TestSDCClassificationLiveVsDeadRegister is the acceptance test for the
// SDC discriminator: an undetected bit flip in a register the program
// still reads must diverge the dataflow digest (silent data corruption),
// while the same flip in a dead register must not (masked).
func TestSDCClassificationLiveVsDeadRegister(t *testing.T) {
	golden := digestRun(t, nil)

	live := digestRun(t, func(s *sm) {
		s.applyCellFault(fault.CellFault{
			Warp: 0, Reg: isa.R(0), Lane: 2, Bit: 7,
			Kind: fault.KindTransient, Part: regfile.PartMRF, Cycle: s.now,
		})
	})
	if kernel, div := live.Diverged(golden); !div {
		t.Error("flip in a live register did not diverge the digest (missed SDC)")
	} else if kernel != 0 {
		t.Errorf("divergence attributed to kernel %d, want 0", kernel)
	}

	dead := digestRun(t, func(s *sm) {
		s.applyCellFault(fault.CellFault{
			Warp: 0, Reg: isa.R(3), Lane: 2, Bit: 7,
			Kind: fault.KindTransient, Part: regfile.PartMRF, Cycle: s.now,
		})
	})
	if !dead.Equal(golden) {
		t.Error("flip in a dead register diverged the digest (should be masked)")
	}
}

// wideKernel uses 8 architectural registers — twice the default FRF
// capacity of 4 — so whichever registers the profiler promotes, four
// always live in the SRF where nearly all strikes land (the SRF is 7x
// larger and 25x more vulnerable than the FRF). Reads and writes rotate
// over every register so SRF-resident cells are consumed constantly.
func wideKernel(t *testing.T, adds int) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("wide", 8)
	for r := 0; r < 8; r++ {
		b.MOVI(isa.R(r), int32(r+1))
	}
	for i := 0; i < adds; i++ {
		b.IADD(isa.R((i+1)%8), isa.R(i%8), isa.R((i+3)%8))
	}
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 64, NumCTAs: 2}
}

// faultyRun executes the wide kernel under injection and returns the
// stats, error, and digest probe.
func faultyRun(t *testing.T, cfg Config, adds int) (KernelStats, error, *fault.DigestProbe) {
	t.Helper()
	probe := fault.NewDigestProbe()
	cfg.Record = probe
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := g.RunKernel(wideKernel(t, adds))
	return ks, err, probe
}

// TestSECDEDCorrectsTransparently: with every partition under SECDED and
// transient-only strikes, the run must complete without error, count
// corrections, keep the exact cycle count of a fault-free run, and keep
// the dataflow digest equal to golden — correction is invisible.
func TestSECDEDCorrectsTransparently(t *testing.T) {
	base := testConfig().WithDesign(regfile.DesignPartitioned)
	goldenKS, err, golden := faultyRun(t, base, 30)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Protect = fault.FullSECDED()
	cfg.Fault = &fault.Config{Rate: 1e-9, Seed: 11, StuckAtFrac: -1, ReadPathFrac: -1}
	ks, err, probe := faultyRun(t, cfg, 30)
	if err != nil {
		t.Fatalf("SECDED run aborted: %v", err)
	}
	if ks.Fault.TotalInjected() == 0 {
		t.Fatal("no faults injected at a rate chosen to produce strikes")
	}
	if ks.Fault.Corrected == 0 {
		t.Error("no corrections despite transient strikes under SECDED")
	}
	if ks.Fault.SilentReads != 0 || ks.Fault.Unrecoverable != 0 {
		t.Errorf("SECDED leaked outcomes: %+v", ks.Fault)
	}
	if ks.Cycles != goldenKS.Cycles {
		t.Errorf("SECDED perturbed timing: %d cycles vs golden %d", ks.Cycles, goldenKS.Cycles)
	}
	if !probe.Equal(golden) {
		t.Error("SECDED run's dataflow digest diverged from golden")
	}
}

// TestParityReadPathRetrySucceeds: read-path strikes under parity are
// detected, the warp re-issues, and the retried read observes clean
// data — so the digest stays golden while retries cost cycles.
func TestParityReadPathRetrySucceeds(t *testing.T) {
	base := testConfig().WithDesign(regfile.DesignPartitioned)
	goldenKS, err, golden := faultyRun(t, base, 30)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Protect = fault.FullParity()
	cfg.Fault = &fault.Config{Rate: 1e-9, Seed: 13, StuckAtFrac: -1, ReadPathFrac: 1}
	ks, err, probe := faultyRun(t, cfg, 30)
	if err != nil {
		t.Fatalf("read-path parity run aborted: %v", err)
	}
	if ks.Fault.RetrySuccess == 0 || ks.Fault.DetectedRetry == 0 {
		t.Errorf("no successful retries recorded: %+v", ks.Fault)
	}
	if !probe.Equal(golden) {
		t.Error("retried reads corrupted the dataflow digest")
	}
	if ks.Cycles < goldenKS.Cycles {
		t.Errorf("retries cannot make the run faster: %d vs %d", ks.Cycles, goldenKS.Cycles)
	}
}

// TestParityStuckAtExhaustsRetries: a stuck-at cell under parity is
// detected on every read but never corrected; retries exhaust and the
// kernel aborts with the structured unrecoverable error, not a panic.
func TestParityStuckAtExhaustsRetries(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Protect = fault.FullParity()
	cfg.Fault = &fault.Config{Rate: 2e-9, Seed: 17, StuckAtFrac: 1, ReadPathFrac: -1}
	ks, err, _ := faultyRun(t, cfg, 40)
	if err == nil {
		t.Fatal("stuck-at saturation under parity did not abort the kernel")
	}
	var ue *fault.UnrecoverableError
	if !errors.As(err, &ue) {
		t.Fatalf("abort error %v is not an UnrecoverableError", err)
	}
	if !ue.Kind.StuckAt() {
		t.Errorf("aborting fault kind = %v, want stuck-at", ue.Kind)
	}
	if ks.Fault.Unrecoverable == 0 {
		t.Error("abort not counted in Stats.Unrecoverable")
	}
	if ks.Fault.DetectedRetry <= uint64(fault.DefaultMaxRetries) {
		t.Errorf("retries before abort = %d, want > %d", ks.Fault.DetectedRetry, fault.DefaultMaxRetries)
	}
}

// TestUnprotectedSilentCorruption: with no protection, strikes on read
// registers are consumed silently and the digest diverges — the SDC
// outcome the campaign classifier keys on.
func TestUnprotectedSilentCorruption(t *testing.T) {
	base := testConfig().WithDesign(regfile.DesignPartitioned)
	_, err, golden := faultyRun(t, base, 30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Fault = &fault.Config{Rate: 1e-9, Seed: 19, StuckAtFrac: -1, ReadPathFrac: -1}
	ks, err, probe := faultyRun(t, cfg, 30)
	if err != nil {
		t.Fatalf("unprotected run errored: %v", err)
	}
	if ks.Fault.SilentReads == 0 {
		t.Fatal("no silent reads despite unprotected strikes")
	}
	if probe.Equal(golden) {
		t.Error("silently consumed corruption did not diverge the digest")
	}
}

// TestProtectionOverheadConservation: with a scheme selected and the
// ledger attached, every access to a protected partition must carry
// exactly one check-bit charge, the extended conservation check must
// pass, and the priced overhead must be positive.
func TestProtectionOverheadConservation(t *testing.T) {
	for _, d := range []regfile.Design{regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive} {
		led := energy.NewLedger(d, 0)
		cfg := testConfig().WithDesign(d)
		cfg.Energy = led
		cfg.Protect = fault.PaperScheme()
		var parts [4]uint64
		var cycles int64
		for _, w := range workloads.All()[:3] {
			w = w.Scale(0.05)
			g, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := g.RunKernels(w.Name, w.Kernels)
			if err != nil {
				t.Fatalf("%s/%s: %v", d, w.Name, err)
			}
			for p, n := range rs.PartAccesses() {
				parts[p] += n
			}
			cycles += rs.TotalCycles()
		}
		if err := led.CheckConservation(parts, cycles); err != nil {
			t.Errorf("%s: %v", d, err)
		}
		if led.OverheadPJ() <= 0 {
			t.Errorf("%s: protection overhead energy = %v, want > 0", d, led.OverheadPJ())
		}
		if got := led.OverheadTotals(); got[regfile.PartSRF] != parts[regfile.PartSRF] {
			t.Errorf("%s: SRF overhead charges %d != %d accesses", d, got[regfile.PartSRF], parts[regfile.PartSRF])
		}
	}
}

// TestFaultConfigValidationSurfaces: invalid fault configs and split-FRF
// schemes must be rejected at GPU construction.
// TestCycleLimitAbortTypedAndDrained: the MaxCycles watchdog must
// surface as a typed ErrCycleLimit (so fault campaigns can classify
// fault-induced runaway loops as corrupted execution) and must still
// drain the aborted kernel's counters — cycle count included — instead
// of returning hollow stats.
func TestCycleLimitAbortTypedAndDrained(t *testing.T) {
	cfg := DefaultConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	cfg.NumSMs = 1
	cfg.MaxCycles = 10
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := g.RunKernel(wideKernel(t, 200))
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if ks.Cycles <= cfg.MaxCycles {
		t.Fatalf("aborted kernel's cycles not drained: %d", ks.Cycles)
	}
}

func TestFaultConfigValidationSurfaces(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Config{Rate: -1}
	if _, err := New(cfg); err == nil {
		t.Error("negative fault rate accepted")
	}
	cfg = testConfig()
	cfg.Protect = fault.Scheme{regfile.PartFRFHigh: fault.ProtectParity}
	if _, err := New(cfg); err == nil {
		t.Error("split-FRF protection scheme accepted")
	}
}
