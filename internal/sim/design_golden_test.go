package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pilotrf/internal/design"
	"pilotrf/internal/energy"
	"pilotrf/internal/regfile"
	"pilotrf/internal/workloads"
)

// updateGoldens regenerates the design-refactor golden files when set:
//
//	go test ./internal/sim -run TestDesignRefactorGoldens -update-goldens
var updateGoldens = flag.Bool("update-goldens", false, "rewrite the design-refactor golden files")

// goldenSlug maps a legacy design to its golden file basename.
func goldenSlug(d regfile.Design) string {
	switch d {
	case regfile.DesignMonolithicSTV:
		return "mrf-stv"
	case regfile.DesignMonolithicNTV:
		return "mrf-ntv"
	case regfile.DesignPartitioned:
		return "part"
	default:
		return "part-adaptive"
	}
}

// goldenStats is the deterministic run summary each golden pins: timing,
// access routing, and the bit-exact ledger totals. Any change to issue
// order, partition routing, or energy pricing shows up here.
type goldenStats struct {
	Design       string     `json:"design"`
	Workload     string     `json:"workload"`
	Cycles       int64      `json:"cycles"`
	WarpInstrs   uint64     `json:"warp_instrs"`
	ThreadInstrs uint64     `json:"thread_instrs"`
	RegReads     uint64     `json:"reg_reads"`
	RegWrites    uint64     `json:"reg_writes"`
	PartAccesses [4]uint64  `json:"part_accesses"`
	FRFShare     float64    `json:"frf_share"`
	DynamicPJ    float64    `json:"dynamic_pj"`
	LeakagePJ    float64    `json:"leakage_pj"`
	PerAccessPJ  [4]float64 `json:"per_access_pj"`
	RecEvents    int        `json:"recorder_events"`
}

// TestDesignRefactorGoldens pins the pre-refactor behaviour of all four
// legacy designs: a fixed workload's stats summary (JSON) and its full
// flight recording (NDJSON) must stay byte-identical through the design
// plug-in refactor. The goldens were captured before internal/design
// existed, so a match proves the refactor is observably pure.
func TestDesignRefactorGoldens(t *testing.T) {
	w, err := workloads.ByName("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(0.02)
	for _, d := range []regfile.Design{
		regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV,
		regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive,
	} {
		// Configure through the plug-in registry, not WithDesign: the
		// goldens predate internal/design, so a byte-identical run
		// proves the whole scheme path is behaviourally transparent.
		sch := design.MustLookup(goldenSlug(d))
		led := energy.NewLedger(d, 0)
		cfg, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Energy = led
		rec := NewFlightRecorder(&cfg, "design-golden", 0)
		cfg.Record = rec
		g, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		rs, err := g.RunKernels(w.Name, w.Kernels)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		gs := goldenStats{
			Design:       d.String(),
			Workload:     w.Name,
			Cycles:       rs.TotalCycles(),
			PartAccesses: rs.PartAccesses(),
			FRFShare:     rs.FRFShare(),
			DynamicPJ:    led.DynamicPJ(),
			LeakagePJ:    led.LeakagePJ(),
			PerAccessPJ:  led.PerAccessPJ(),
			RecEvents:    rec.Len(),
		}
		for i := range rs.Kernels {
			gs.WarpInstrs += rs.Kernels[i].WarpInstrs
			gs.ThreadInstrs += rs.Kernels[i].ThreadInstrs
			gs.RegReads += rs.Kernels[i].RegReads
			gs.RegWrites += rs.Kernels[i].RegWrites
		}
		statsJSON, err := json.MarshalIndent(gs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		statsJSON = append(statsJSON, '\n')
		var flight bytes.Buffer
		if err := rec.Log().WriteNDJSON(&flight); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, filepath.Join("testdata", "goldens", goldenSlug(d)+".stats.json"), statsJSON)
		checkGolden(t, filepath.Join("testdata", "goldens", goldenSlug(d)+".flightrec.ndjson"), flight.Bytes())
	}
}

// TestWithSchemeMatchesWithDesign pins the refactor contract at the
// configuration level: for every legacy design, WithScheme at default
// knobs produces exactly the Config WithDesign always has.
func TestWithSchemeMatchesWithDesign(t *testing.T) {
	for _, d := range []regfile.Design{
		regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV,
		regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive,
	} {
		sch := design.MustLookup(goldenSlug(d))
		want := testConfig().WithDesign(d)
		got, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: WithScheme config diverges from WithDesign:\n got %+v\nwant %+v", d, got, want)
		}
	}
}

// checkGolden compares got against the golden file, rewriting it under
// -update-goldens.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-goldens): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from pre-refactor golden (%d bytes vs %d)", path, len(got), len(want))
	}
}
