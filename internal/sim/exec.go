package sim

import (
	"fmt"
	"math"

	"pilotrf/internal/isa"
)

// execute applies the functional semantics of in to the lanes in
// execMask. Control-flow opcodes are handled by the issue path, not here.
// The cross-lane SHFL snapshots its source first so destination writes
// cannot corrupt values other lanes are still reading.
func (s *sm) execute(w *warpCtx, in *isa.Instruction, execMask uint32) {
	if in.Op == isa.OpSHFL {
		executeShuffle(w.regs, in, execMask)
		return
	}
	for lane := 0; lane < 32; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		s.executeLane(w, in, lane)
	}
}

// executeShuffle implements the Kepler-style warp shuffle: each active
// lane reads SrcA from the lane selected by its own SrcB (mod 32).
func executeShuffle(regs [][32]uint32, in *isa.Instruction, execMask uint32) {
	var src [32]uint32
	if in.SrcA != isa.RZ {
		src = regs[in.SrcA]
	}
	for lane := 0; lane < 32; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		sel := 0
		if in.SrcB != isa.RZ {
			sel = int(regs[in.SrcB][lane] & 31)
		}
		if in.Dst != isa.RZ {
			regs[in.Dst][lane] = src[sel]
		}
	}
}

func (s *sm) executeLane(w *warpCtx, in *isa.Instruction, lane int) {
	rd := func(r isa.Reg) uint32 {
		if r == isa.RZ {
			return 0
		}
		return w.regs[r][lane]
	}
	wr := func(v uint32) {
		if in.Dst == isa.RZ {
			return
		}
		w.regs[in.Dst][lane] = v
	}
	rdf := func(r isa.Reg) float32 { return math.Float32frombits(rd(r)) }
	wrf := func(v float32) { wr(math.Float32bits(v)) }

	switch in.Op {
	case isa.OpNOP:
	case isa.OpMOV:
		wr(rd(in.SrcA))
	case isa.OpMOVI:
		wr(uint32(in.Imm))
	case isa.OpS2R:
		wr(s.specialValue(w, in.Special, lane))
	case isa.OpIADD:
		wr(rd(in.SrcA) + rd(in.SrcB))
	case isa.OpIADDI:
		wr(rd(in.SrcA) + uint32(in.Imm))
	case isa.OpISUB:
		wr(rd(in.SrcA) - rd(in.SrcB))
	case isa.OpIMUL:
		wr(rd(in.SrcA) * rd(in.SrcB))
	case isa.OpIMULI:
		wr(rd(in.SrcA) * uint32(in.Imm))
	case isa.OpIMAD:
		wr(rd(in.SrcA)*rd(in.SrcB) + rd(in.SrcC))
	case isa.OpAND:
		wr(rd(in.SrcA) & rd(in.SrcB))
	case isa.OpANDI:
		wr(rd(in.SrcA) & uint32(in.Imm))
	case isa.OpOR:
		wr(rd(in.SrcA) | rd(in.SrcB))
	case isa.OpXOR:
		wr(rd(in.SrcA) ^ rd(in.SrcB))
	case isa.OpSHLI:
		wr(rd(in.SrcA) << (uint32(in.Imm) & 31))
	case isa.OpSHRI:
		wr(rd(in.SrcA) >> (uint32(in.Imm) & 31))
	case isa.OpIMIN:
		a, b := int32(rd(in.SrcA)), int32(rd(in.SrcB))
		if a < b {
			wr(uint32(a))
		} else {
			wr(uint32(b))
		}
	case isa.OpIMAX:
		a, b := int32(rd(in.SrcA)), int32(rd(in.SrcB))
		if a > b {
			wr(uint32(a))
		} else {
			wr(uint32(b))
		}
	case isa.OpSEL:
		if w.preds[in.SrcPred]&(1<<uint(lane)) != 0 {
			wr(rd(in.SrcA))
		} else {
			wr(rd(in.SrcB))
		}
	case isa.OpSETP:
		s.setPred(w, in.PDst, lane, in.Cmp.Eval(int32(rd(in.SrcA)), int32(rd(in.SrcB))))
	case isa.OpSETPI:
		s.setPred(w, in.PDst, lane, in.Cmp.Eval(int32(rd(in.SrcA)), in.Imm))
	case isa.OpFADD:
		wrf(rdf(in.SrcA) + rdf(in.SrcB))
	case isa.OpFMUL:
		wrf(rdf(in.SrcA) * rdf(in.SrcB))
	case isa.OpFFMA:
		wrf(rdf(in.SrcA)*rdf(in.SrcB) + rdf(in.SrcC))
	case isa.OpFRCP:
		wrf(1 / rdf(in.SrcA))
	case isa.OpFSQRT:
		wrf(float32(math.Sqrt(math.Abs(float64(rdf(in.SrcA))))))
	case isa.OpFEXP:
		wrf(float32(math.Exp2(float64(rdf(in.SrcA)))))
	case isa.OpLDG, isa.OpLDS:
		wr(isa.MemValue(rd(in.SrcA)+uint32(in.Imm), s.cfg.Seed))
	case isa.OpSTG, isa.OpSTS:
		// Stores are timing/energy events only; see isa.MemValue.
	default:
		panic(fmt.Sprintf("sim: opcode %v reached the execution unit", in.Op))
	}
}

func (s *sm) setPred(w *warpCtx, p isa.Pred, lane int, v bool) {
	if !p.Valid() {
		return // PT is read-only
	}
	bit := uint32(1) << uint(lane)
	if v {
		w.preds[p] |= bit
	} else {
		w.preds[p] &^= bit
	}
}

// specialValue supplies S2R reads.
func (s *sm) specialValue(w *warpCtx, sp isa.Special, lane int) uint32 {
	switch sp {
	case isa.SRTid:
		return uint32(w.inCTA*32 + lane)
	case isa.SRCTAid:
		return uint32(w.cta.id)
	case isa.SRNTid:
		return uint32(s.run.kern.ThreadsPerCTA)
	case isa.SRNCTAid:
		return uint32(s.run.kern.NumCTAs)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarpID:
		return uint32(w.inCTA)
	default:
		panic(fmt.Sprintf("sim: unknown special register %v", sp))
	}
}
