// Package sim is a cycle-level GPU timing simulator specialized for
// register file studies: streaming multiprocessors with warp contexts,
// SIMT divergence stacks, scoreboards, GTO/LRR/two-level warp schedulers,
// operand collectors arbitrating over banked register files, execution
// pipelines, a latency/bandwidth memory model, CTA scheduling, and the
// pilot-warp profiling hardware of the paper.
//
// The simulator is functional-first: instruction semantics execute at
// issue time (so loop trip counts, divergence, and register access counts
// are exact), while operand collection, bank arbitration, execution
// latency, and writeback model timing. Fetch/decode and the cache
// hierarchy are abstracted (a resident warp always has its next
// instruction; global memory is a fixed-latency, bounded-bandwidth
// stream), which is the standard configuration for RF-focused studies.
package sim

import (
	"fmt"

	"pilotrf/internal/design"
	"pilotrf/internal/energy"
	"pilotrf/internal/fault"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/isa"
	"pilotrf/internal/perfscope"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
	"pilotrf/internal/telemetry"
)

// Policy selects the warp scheduling policy.
type Policy uint8

// Warp scheduler policies.
const (
	// PolicyLRR is loose round-robin (the "fetch group" baseline).
	PolicyLRR Policy = iota
	// PolicyGTO is greedy-then-oldest.
	PolicyGTO
	// PolicyTL is the two-level scheduler of the RFC design: a small
	// active pool scheduled round-robin; warps demote on long-latency
	// operations and promote when their memory returns.
	PolicyTL
	// PolicyFetchGroup is Narasiman et al.'s two-level warp scheduler:
	// warps are split into fetch groups scheduled round-robin within
	// the group; the scheduler only moves to the next group when the
	// current one has nothing to issue, staggering long-latency
	// operations across groups.
	PolicyFetchGroup
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLRR:
		return "LRR"
	case PolicyGTO:
		return "GTO"
	case PolicyTL:
		return "TL"
	case PolicyFetchGroup:
		return "FetchGroup"
	default:
		return fmt.Sprintf("POLICY_%d", uint8(p))
	}
}

// Config describes the simulated GPU. DefaultConfig follows the paper's
// Table II (Kepler GTX 780-class SM) with a reduced SM count for
// simulation speed; KeplerConfig restores the full 15-SM chip.
type Config struct {
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// WarpSlotsPerSM is the maximum resident warps per SM (64).
	WarpSlotsPerSM int
	// MaxCTAsPerSM bounds concurrent CTAs per SM (16).
	MaxCTAsPerSM int
	// WarpRegBudget is the number of warp-register slots in the RF
	// (256 KB / 128 B = 2048), a CTA residency limit.
	WarpRegBudget int
	// Schedulers is the number of warp schedulers per SM (4).
	Schedulers int
	// IssuePerScheduler is the dual-issue width per scheduler (2).
	IssuePerScheduler int
	// OperandCollectors is the number of collector units per SM (24).
	OperandCollectors int

	// Policy selects the warp scheduler.
	Policy Policy
	// TLActiveWarps is the two-level scheduler's total active pool per
	// SM (split evenly among schedulers).
	TLActiveWarps int
	// FetchGroupWarps is the fetch-group size per scheduler for
	// PolicyFetchGroup (default 4).
	FetchGroupWarps int

	// RF configures the register file design under evaluation.
	RF regfile.Config

	// Profiling selects the FRF management technique; TopN is the
	// number of promoted registers (4).
	Profiling profile.Technique
	ProfTopN  int
	// PilotWarpIndex selects which warp of the first CTA launched on
	// each SM becomes the pilot (0 = the first, the paper's choice;
	// Section III-A2 argues any warp works, which the pilot-choice
	// sensitivity experiment verifies).
	PilotWarpIndex int
	// Oracle supplies the measured top registers for
	// profile.TechniqueOracle (from a prior run).
	Oracle []isa.Reg

	// UseRFC replaces the partitioned/monolithic access path with a
	// register file cache in front of the MRF.
	UseRFC bool
	// RFC sizes the cache (per active warp).
	RFC rfc.Config
	// RFCCompilerHints switches the RFC to compiler-assisted allocation:
	// at each kernel launch the compiler's static top-N registers (N =
	// the RFC's entries per warp) become the cache's admission hints and
	// every other register bypasses to the MRF (arXiv 2310.17501).
	RFCCompilerHints bool
	// RFCMRFLatency is the access latency of the MRF behind the RFC
	// (1 at STV, 3 at NTV).
	RFCMRFLatency int

	// Gating, when set, attaches a liveness gating tracker per SM
	// (GREENER-style register power gating): rows wake on first write,
	// a warp's rows sleep at retire, and KernelStats.Gating accumulates
	// the live/gated row-cycle counts the design's leakage pricing
	// uses. Purely observational — timing is bit-identical either way.
	Gating *design.GatingConfig

	// Execution latencies in cycles.
	ALULatency    int
	FPULatency    int
	SFULatency    int
	BranchLatency int
	SharedLatency int
	MemLatency    int
	// MaxMemInflight bounds concurrent global-memory transactions per
	// SM (the bandwidth model).
	MaxMemInflight int

	// WritebackForwarding bypasses results to dependent instructions as
	// soon as execution completes, instead of waiting for the register
	// write to retire through the banks. GPGPU-Sim models this
	// forwarding; leaving it off makes the pipeline more sensitive to
	// RF latency (the divergence EXPERIMENTS.md documents). The bank
	// write still occurs for energy and bank-occupancy accounting.
	WritebackForwarding bool

	// CollectPerWarpCTAs enables per-warp register histograms for the
	// first N CTAs (the Section II access-similarity analysis).
	CollectPerWarpCTAs int

	// Tracer, when set, receives pipeline events (issue, bank access,
	// dispatch, writeback, memory, CTA/warp lifecycle, FRF mode
	// switches). Nil disables tracing with no overhead.
	Tracer Tracer

	// Stalls enables stall-cycle attribution: every zero-issue SM-cycle
	// is charged to exactly one telemetry.StallCause, populating
	// KernelStats.StallBreakdown (and SMCycles/BusyCycles). Telemetry is
	// purely observational — cycle counts are identical either way.
	Stalls bool

	// Metrics, when set, samples per-SM time-series rows into the
	// recorder every Metrics.Epoch cycles (see NewMetricsRecorder) and
	// implies stall attribution. Nil disables sampling with no overhead.
	Metrics *telemetry.Recorder

	// Energy, when set, streams energy attribution into the ledger:
	// every serviced bank transaction is charged to a (component, epoch,
	// warp, architectural-register) bucket, folded into the ledger at
	// epoch and kernel boundaries. The ledger's design must match
	// RF.Design so its pricing reproduces the aggregate energy report
	// bit-exactly. Nil disables attribution with no overhead.
	Energy *energy.Ledger

	// Audit, when set, records a profile.PlacementEvent for every
	// FRF-resident register at each swapping-table (re)configuration —
	// the swap-decision audit trail. Nil disables auditing with no
	// overhead.
	Audit *profile.AuditLog

	// Record, when set, streams flight-recorder events into the sink:
	// issue decisions, warp lifecycle transitions, FRF/SRF routing,
	// swap-table installs, adaptive mode flips, and periodic
	// architectural-state checksums every Sink.ChecksumEvery() cycles.
	// A flightrec.Recorder captures a run; a flightrec.Checker verifies
	// a replay against a prior recording. Nil disables recording with no
	// overhead.
	Record flightrec.Sink

	// Perf, when set, attaches the perfscope profiler: a deterministic
	// skip-headroom census of every SM cycle (busy / active-no-issue /
	// skippable / stalled-unknown) and, when the profiler was built with
	// wall-clock enabled, per-phase tick timing. Purely observational —
	// the simulation is bit-identical either way — and nil disables it
	// with no overhead beyond one nil check per hook.
	Perf *perfscope.Profiler

	// Fault, when set, enables deterministic soft-error injection: each
	// SM runs an independent (seed-salted) fault process striking RF
	// cells and the swap-table CAM at rates scaled by the partition's
	// operating point. Nil disables injection — the hot path then costs
	// one nil check, perturbs nothing, and allocates nothing.
	Fault *fault.Config

	// Protect selects the per-partition protection scheme faults are
	// adjudicated against (and whose check-bit energy overhead the
	// ledger prices). The zero value is the unprotected baseline.
	Protect fault.Scheme

	// MaxCycles aborts runaway simulations.
	MaxCycles int64

	// Seed drives the deterministic memory-content hash (and thus
	// data-dependent divergence).
	Seed uint64
}

// DefaultConfig returns the paper's SM configuration (Table II) with two
// SMs — the simulation default used throughout the experiments; per-SM
// behaviour, which is everything the paper reports, is unaffected by the
// chip-level SM count.
func DefaultConfig() Config {
	return Config{
		NumSMs:             2,
		WarpSlotsPerSM:     64,
		MaxCTAsPerSM:       16,
		WarpRegBudget:      2048,
		Schedulers:         4,
		IssuePerScheduler:  2,
		OperandCollectors:  24,
		Policy:             PolicyGTO,
		TLActiveWarps:      8,
		FetchGroupWarps:    4,
		RF:                 regfile.DefaultConfig(regfile.DesignMonolithicSTV),
		Profiling:          profile.TechniqueHybrid,
		ProfTopN:           4,
		RFCMRFLatency:      1,
		ALULatency:         4,
		FPULatency:         4,
		SFULatency:         16,
		BranchLatency:      4,
		SharedLatency:      24,
		MemLatency:         200,
		MaxMemInflight:     48,
		CollectPerWarpCTAs: 0,
		MaxCycles:          200_000_000,
		Seed:               1,
	}
}

// KeplerConfig returns the full GTX 780 chip (15 SMs).
func KeplerConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSMs = 15
	return cfg
}

// WithDesign returns the config reconfigured for an RF design, adjusting
// the MRF latency consistently.
func (c Config) WithDesign(d regfile.Design) Config {
	c.RF = regfile.DefaultConfig(d)
	if d == regfile.DesignMonolithicNTV {
		c.RFCMRFLatency = 3
	}
	return c
}

// Validate checks structural invariants.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("sim: %d SMs", c.NumSMs)
	case c.Schedulers <= 0 || c.IssuePerScheduler <= 0:
		return fmt.Errorf("sim: schedulers %d x issue %d", c.Schedulers, c.IssuePerScheduler)
	case c.WarpSlotsPerSM <= 0 || c.WarpSlotsPerSM%c.Schedulers != 0:
		return fmt.Errorf("sim: %d warp slots not divisible by %d schedulers", c.WarpSlotsPerSM, c.Schedulers)
	case c.OperandCollectors <= 0:
		return fmt.Errorf("sim: %d operand collectors", c.OperandCollectors)
	case c.MemLatency <= 0 || c.MaxMemInflight <= 0:
		return fmt.Errorf("sim: memory latency %d / inflight %d", c.MemLatency, c.MaxMemInflight)
	case c.Policy == PolicyTL && c.TLActiveWarps < c.Schedulers:
		return fmt.Errorf("sim: TL active pool %d smaller than %d schedulers", c.TLActiveWarps, c.Schedulers)
	case c.Policy == PolicyFetchGroup && c.FetchGroupWarps <= 0:
		return fmt.Errorf("sim: fetch group of %d warps", c.FetchGroupWarps)
	case c.UseRFC && c.RFC.Warps <= 0:
		return fmt.Errorf("sim: RFC enabled without warp storage")
	case c.UseRFC && c.RF.Design != regfile.DesignMonolithicSTV && c.RF.Design != regfile.DesignMonolithicNTV:
		return fmt.Errorf("sim: the RFC fronts a monolithic MRF, not a partitioned design")
	case c.RFCCompilerHints && !c.UseRFC:
		return fmt.Errorf("sim: RFC compiler hints without UseRFC")
	case c.Gating != nil && c.Gating.Granularity <= 0:
		return fmt.Errorf("sim: gating granularity %d", c.Gating.Granularity)
	case c.ProfTopN <= 0:
		return fmt.Errorf("sim: profiling top-N %d", c.ProfTopN)
	case c.Energy != nil && c.Energy.Design() != c.RF.Design:
		return fmt.Errorf("sim: energy ledger priced for %v but RF design is %v",
			c.Energy.Design(), c.RF.Design)
	case c.PilotWarpIndex < 0:
		return fmt.Errorf("sim: pilot warp index %d", c.PilotWarpIndex)
	}
	if err := c.Protect.Validate(); err != nil {
		return err
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MaxIssuePerCycle returns the SM's peak issue rate (8 in the paper).
func (c *Config) MaxIssuePerCycle() int { return c.Schedulers * c.IssuePerScheduler }
