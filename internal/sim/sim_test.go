package sim

import (
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

// testConfig returns a small, fast configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	return cfg
}

func mustRun(t *testing.T, cfg Config, k *kernel.Kernel) KernelStats {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ks, err := g.RunKernel(k)
	if err != nil {
		t.Fatalf("RunKernel: %v", err)
	}
	return ks
}

// straightLine builds a kernel of `adds` dependent IADDs and an EXIT.
func straightLine(t *testing.T, adds int) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("straight", 4)
	b.MOVI(isa.R(0), 1)
	b.MOVI(isa.R(1), 2)
	for i := 0; i < adds; i++ {
		b.IADD(isa.R(2), isa.R(0), isa.R(1))
	}
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 64, NumCTAs: 2}
}

func TestStraightLineCompletes(t *testing.T) {
	ks := mustRun(t, testConfig(), straightLine(t, 10))
	if ks.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	// 2 CTAs x 2 warps x 13 instructions.
	if want := uint64(2 * 2 * 13); ks.WarpInstrs != want {
		t.Errorf("WarpInstrs = %d, want %d", ks.WarpInstrs, want)
	}
	// Thread instrs: 64 threads per CTA fully active.
	if want := uint64(2 * 64 * 13); ks.ThreadInstrs != want {
		t.Errorf("ThreadInstrs = %d, want %d", ks.ThreadInstrs, want)
	}
}

func TestRegisterAccessAccounting(t *testing.T) {
	ks := mustRun(t, testConfig(), straightLine(t, 10))
	// Per warp: 2 MOVI writes + 10 IADD x (2 reads + 1 write).
	warps := uint64(4)
	if want := warps * 20; ks.RegReads != want {
		t.Errorf("RegReads = %d, want %d", ks.RegReads, want)
	}
	if want := warps * 12; ks.RegWrites != want {
		t.Errorf("RegWrites = %d, want %d", ks.RegWrites, want)
	}
	// Every counted access must have been serviced by a partition.
	var serviced uint64
	for _, v := range ks.PartAccesses {
		serviced += v
	}
	if serviced != ks.TotalAccesses() {
		t.Errorf("partition accesses %d != counted accesses %d", serviced, ks.TotalAccesses())
	}
}

func TestRegHistMatchesProgram(t *testing.T) {
	ks := mustRun(t, testConfig(), straightLine(t, 5))
	// R0: 1 write + 5 reads = 6 per warp; 4 warps.
	if got := ks.RegHist.Count(0); got != 24 {
		t.Errorf("R0 accesses = %d, want 24", got)
	}
	if got := ks.RegHist.Count(2); got != 20 {
		t.Errorf("R2 accesses = %d, want 20 (5 writes x 4 warps)", got)
	}
}

// loopKernel: each thread loops `trips` times.
func loopKernel(t *testing.T, trips int32) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("loop", 6)
	b.MOVI(isa.R(0), 0)
	b.CountedLoop(isa.R(1), isa.P(0), trips, func() {
		b.IADDI(isa.R(0), isa.R(0), 1)
	})
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
}

func TestLoopTripCount(t *testing.T) {
	ks := mustRun(t, testConfig(), loopKernel(t, 7))
	// Per warp: MOVI + MOVI(ctr) + 7x(IADDI + IADDI + SETPI + BRA) + EXIT = 31.
	if want := uint64(31); ks.WarpInstrs != want {
		t.Errorf("WarpInstrs = %d, want %d", ks.WarpInstrs, want)
	}
}

// divergentKernel: lanes < 8 take the then-branch, the rest the else.
func divergentKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("diverge", 6)
	b.S2R(isa.R(0), isa.SRLane)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpLT, 8)
	b.IfElse(isa.P(0),
		func() { b.MOVI(isa.R(1), 111) },
		func() { b.MOVI(isa.R(1), 222) },
	)
	b.STG(isa.R(0), 0, isa.R(1))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
}

func TestDivergenceBothPathsExecute(t *testing.T) {
	ks := mustRun(t, testConfig(), divergentKernel(t))
	// Thread-instruction count proves both sides ran with partial
	// masks: S2R(32) + SETPI(32) + BRA(32) + MOVI(8) + BRA(8, then-exit)
	// + MOVI(24) + STG(32) + EXIT(32) = 200.
	if want := uint64(200); ks.ThreadInstrs != want {
		t.Errorf("ThreadInstrs = %d, want %d", ks.ThreadInstrs, want)
	}
}

func TestDivergentLoopReconverges(t *testing.T) {
	// Each lane loops lane%4+1 times: heavy divergence on the back edge.
	b := kernel.NewBuilder("divloop", 8)
	b.S2R(isa.R(0), isa.SRLane)
	b.ANDI(isa.R(1), isa.R(0), 3)
	b.IADDI(isa.R(1), isa.R(1), 1) // bound = lane%4 + 1
	b.RegCountedLoop(isa.R(2), isa.P(0), isa.R(1), func() {
		b.IADDI(isa.R(3), isa.R(3), 1)
	})
	b.STG(isa.R(0), 0, isa.R(3)) // all 32 lanes must reconverge here
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	ks := mustRun(t, testConfig(), k)
	if ks.Cycles <= 0 {
		t.Fatal("did not complete")
	}
	// STG must execute with the full warp: find its thread count.
	// Loop iterations: lanes run 1,2,3,4,... -> per 4 lanes 10 iters,
	// 32 lanes -> 80 iterations total.
	// ThreadInstrs: S2R 32 + ANDI 32 + IADDI 32 + MOVI 32 +
	// (IADDI+IADDI+SETP+BRA) x 80... the BRA executes per iteration
	// with the live mask; exact bookkeeping is the simulator's job —
	// assert the final STG and EXIT ran with all 32 lanes by checking
	// the total is consistent with full reconvergence:
	// prologue 4x32=128, loop body 4 ops x (32+24+16+8)=320, STG 32,
	// EXIT 32 => 512.
	if want := uint64(512); ks.ThreadInstrs != want {
		t.Errorf("ThreadInstrs = %d, want %d (reconvergence broken?)", ks.ThreadInstrs, want)
	}
}

func TestGuardedExit(t *testing.T) {
	// Half the lanes exit early; the rest keep working, then exit.
	b := kernel.NewBuilder("gexit", 6)
	b.S2R(isa.R(0), isa.SRLane)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpLT, 16)
	b.Guarded(isa.P(0), false, func() { b.EXIT() })
	b.MOVI(isa.R(1), 5)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	ks := mustRun(t, testConfig(), k)
	// S2R 32 + SETPI 32 + EXIT 32(issued with 32 active, 16 exiting)
	// + MOVI 16 + EXIT 16 = 128.
	if want := uint64(128); ks.ThreadInstrs != want {
		t.Errorf("ThreadInstrs = %d, want %d", ks.ThreadInstrs, want)
	}
}

func barrierKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("barrier", 6)
	b.S2R(isa.R(0), isa.SRTid)
	b.STS(isa.R(0), 0, isa.R(0))
	b.BAR()
	b.LDS(isa.R(1), isa.R(0), 4)
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 128, NumCTAs: 2}
}

func TestBarrierCompletes(t *testing.T) {
	ks := mustRun(t, testConfig(), barrierKernel(t))
	if ks.Cycles <= 0 {
		t.Fatal("barrier kernel did not complete")
	}
	// 2 CTAs x 4 warps x 5 instructions.
	if want := uint64(40); ks.WarpInstrs != want {
		t.Errorf("WarpInstrs = %d, want %d", ks.WarpInstrs, want)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.RF = regfile.DefaultConfig(regfile.DesignPartitionedAdaptive)
	k := divergentKernel(t)
	a := mustRun(t, cfg, k)
	b := mustRun(t, cfg, k)
	if a.Cycles != b.Cycles || a.RegReads != b.RegReads || a.PartAccesses != b.PartAccesses {
		t.Errorf("same-config runs differ: %+v vs %+v", a, b)
	}
}

func TestNTVSlowerThanSTV(t *testing.T) {
	k := straightLine(t, 40)
	stv := mustRun(t, testConfig().WithDesign(regfile.DesignMonolithicSTV), k)
	ntv := mustRun(t, testConfig().WithDesign(regfile.DesignMonolithicNTV), k)
	if ntv.Cycles <= stv.Cycles {
		t.Errorf("NTV (%d cycles) not slower than STV (%d)", ntv.Cycles, stv.Cycles)
	}
}

// hotRegKernel concentrates accesses on R4/R5 (not in the default FRF).
func hotRegKernel(t *testing.T, ctas int) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("hot", 8)
	b.MOVI(isa.R(4), 0)
	b.MOVI(isa.R(5), 3)
	b.CountedLoop(isa.R(6), isa.P(0), 30, func() {
		b.IADD(isa.R(4), isa.R(4), isa.R(5))
		b.IADD(isa.R(4), isa.R(4), isa.R(5))
	})
	b.STG(isa.R(4), 0, isa.R(5))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 64, NumCTAs: ctas}
}

func TestPartitionedRoutesToSRFWithoutProfiling(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniqueStaticFirstN
	ks := mustRun(t, cfg, hotRegKernel(t, 2))
	frf := ks.PartAccesses[regfile.PartFRFHigh] + ks.PartAccesses[regfile.PartFRFLow]
	srf := ks.PartAccesses[regfile.PartSRF]
	if frf >= srf {
		t.Errorf("static-first-n on a R4/R5-hot kernel: FRF %d >= SRF %d", frf, srf)
	}
}

func TestHybridProfilingLiftsFRFShare(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniqueStaticFirstN
	static := mustRun(t, cfg, hotRegKernel(t, 8))
	cfg.Profiling = profile.TechniqueHybrid
	hybrid := mustRun(t, cfg, hotRegKernel(t, 8))
	if hybrid.FRFShare() <= static.FRFShare() {
		t.Errorf("hybrid FRF share %.3f not above static %.3f", hybrid.FRFShare(), static.FRFShare())
	}
	if hybrid.FRFShare() < 0.5 {
		t.Errorf("hybrid FRF share %.3f too low for a hot-register kernel", hybrid.FRFShare())
	}
}

func TestOracleAtLeastAsGoodAsPilot(t *testing.T) {
	k := hotRegKernel(t, 8)
	base := mustRun(t, testConfig(), k)
	top := base.RegHist.TopN(4)
	oracle := make([]isa.Reg, len(top))
	for i, kv := range top {
		oracle[i] = isa.Reg(kv.Key)
	}
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniqueOracle
	cfg.Oracle = oracle
	o := mustRun(t, cfg, k)
	cfg.Profiling = profile.TechniquePilot
	cfg.Oracle = nil
	p := mustRun(t, cfg, k)
	if o.FRFShare()+1e-9 < p.FRFShare() {
		t.Errorf("oracle FRF share %.3f below pilot %.3f", o.FRFShare(), p.FRFShare())
	}
}

func TestPilotFractionSmallWithManyCTAs(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniqueHybrid
	few := mustRun(t, cfg, hotRegKernel(t, 2))
	many := mustRun(t, cfg, hotRegKernel(t, 64))
	if many.PilotFraction >= few.PilotFraction {
		t.Errorf("pilot fraction did not shrink with more CTAs: %.3f vs %.3f", many.PilotFraction, few.PilotFraction)
	}
	if many.PilotFraction <= 0 || many.PilotFraction > 1 {
		t.Errorf("pilot fraction = %.3f out of range", many.PilotFraction)
	}
}

// memStallKernel alternates loads and thin compute so the SM idles.
func memStallKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("memstall", 8)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(1), isa.R(0), 2)
	b.CountedLoop(isa.R(2), isa.P(0), 10, func() {
		b.LDG(isa.R(3), isa.R(1), 0)
		b.IADD(isa.R(4), isa.R(4), isa.R(3))
	})
	b.STG(isa.R(1), 0, isa.R(4))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 2}
}

func TestAdaptiveFRFLowModeOnMemoryStalls(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	ks := mustRun(t, cfg, memStallKernel(t))
	if ks.LowEpochFraction <= 0 {
		t.Error("memory-stalled kernel never entered low-power epochs")
	}
	if ks.PartAccesses[regfile.PartFRFLow] == 0 {
		t.Error("no FRF accesses serviced in low-power mode")
	}
}

func TestAdaptiveOffNeverUsesLowMode(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitioned)
	ks := mustRun(t, cfg, memStallKernel(t))
	if ks.PartAccesses[regfile.PartFRFLow] != 0 {
		t.Error("non-adaptive design used FRF low mode")
	}
}

func TestSchedulerPoliciesAllComplete(t *testing.T) {
	for _, pol := range []Policy{PolicyLRR, PolicyGTO, PolicyTL, PolicyFetchGroup} {
		cfg := testConfig()
		cfg.Policy = pol
		ks := mustRun(t, cfg, memStallKernel(t))
		if ks.Cycles <= 0 {
			t.Errorf("%v: did not complete", pol)
		}
	}
}

func TestRFCHitsAndMRFTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = PolicyTL
	cfg.UseRFC = true
	cfg.RFC = rfc.DefaultConfig(cfg.TLActiveWarps)
	ks := mustRun(t, cfg, hotRegKernel(t, 4))
	if ks.RFC.ReadHits == 0 {
		t.Error("RFC never hit on a register-hot kernel")
	}
	if ks.RFC.HitRate() <= 0.2 {
		t.Errorf("RFC hit rate %.3f suspiciously low for a tiny working set", ks.RFC.HitRate())
	}
	// MRF partition accesses = read misses + dirty writebacks routed to
	// the banks.
	if ks.PartAccesses[regfile.PartMRF] == 0 {
		t.Error("no MRF traffic behind the RFC")
	}
}

func TestPartialWarp(t *testing.T) {
	// 61 threads/CTA (sad's geometry): last warp has 29 lanes.
	b := kernel.NewBuilder("partial", 4)
	b.S2R(isa.R(0), isa.SRTid)
	b.IADDI(isa.R(1), isa.R(0), 1)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 61, NumCTAs: 1}
	ks := mustRun(t, testConfig(), k)
	if want := uint64(61 * 3); ks.ThreadInstrs != want {
		t.Errorf("ThreadInstrs = %d, want %d", ks.ThreadInstrs, want)
	}
}

func TestCTAWavesExceedCapacity(t *testing.T) {
	// 1024 threads/CTA = 32 warps: at most 2 resident CTAs per SM, so
	// 8 CTAs run in waves.
	b := kernel.NewBuilder("big", 4)
	b.S2R(isa.R(0), isa.SRTid)
	b.IADDI(isa.R(1), isa.R(0), 1)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 1024, NumCTAs: 8}
	ks := mustRun(t, testConfig(), k)
	if want := uint64(8 * 32 * 3); ks.WarpInstrs != want {
		t.Errorf("WarpInstrs = %d, want %d", ks.WarpInstrs, want)
	}
}

func TestPerWarpHistCollection(t *testing.T) {
	cfg := testConfig()
	cfg.CollectPerWarpCTAs = 1
	ks := mustRun(t, cfg, straightLine(t, 5))
	if len(ks.PerWarpHist) == 0 {
		t.Fatal("no per-warp histograms collected")
	}
	for id, h := range ks.PerWarpHist {
		if h.Total() == 0 {
			t.Errorf("warp %d histogram empty", id)
		}
	}
}

// TestKeplerConfigMatchesTable2 pins the full-chip configuration to the
// paper's Table II.
func TestKeplerConfigMatchesTable2(t *testing.T) {
	cfg := KeplerConfig()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"SMs", cfg.NumSMs, 15},
		{"warps per SM", cfg.WarpSlotsPerSM, 64},
		{"RF banks", cfg.RF.Banks, 24},
		{"operand collector units", cfg.OperandCollectors, 24},
		{"schedulers", cfg.Schedulers, 4},
		{"issue width", cfg.MaxIssuePerCycle(), 8},
		{"warp-register budget (256KB/128B)", cfg.WarpRegBudget, 2048},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.Schedulers = 0
	if _, err := New(bad); err == nil {
		t.Error("accepted zero schedulers")
	}
	bad = testConfig()
	bad.WarpSlotsPerSM = 63 // not divisible by 4 schedulers
	if _, err := New(bad); err == nil {
		t.Error("accepted non-divisible warp slots")
	}
	bad = testConfig()
	bad.UseRFC = true
	if _, err := New(bad); err == nil {
		t.Error("accepted RFC without warp storage")
	}
	bad = testConfig().WithDesign(regfile.DesignPartitioned)
	bad.UseRFC = true
	bad.RFC = rfc.DefaultConfig(8)
	if _, err := New(bad); err == nil {
		t.Error("accepted RFC in front of a partitioned RF")
	}
}

func TestKernelTooBigRejected(t *testing.T) {
	b := kernel.NewBuilder("fat", 60)
	b.MOVI(isa.R(59), 1)
	b.EXIT()
	// 60 regs x 32 warps = 1920 warp-regs, fits; but 33 warps would
	// not. Use 1024 threads (32 warps) x 60 regs = 1920 <= 2048: fits.
	// Force failure with a custom tiny budget.
	cfg := testConfig()
	cfg.WarpRegBudget = 50
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 64, NumCTAs: 1}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := g.RunKernel(k); err == nil {
		t.Error("oversized kernel accepted")
	}
}

func TestRunKernelsSequence(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rs, err := g.RunKernels("pair", []kernel.Kernel{*straightLine(t, 3), *loopKernel(t, 2)})
	if err != nil {
		t.Fatalf("RunKernels: %v", err)
	}
	if len(rs.Kernels) != 2 {
		t.Fatalf("ran %d kernels", len(rs.Kernels))
	}
	if rs.TotalCycles() != rs.Kernels[0].Cycles+rs.Kernels[1].Cycles {
		t.Error("TotalCycles mismatch")
	}
	if rs.TotalAccesses() == 0 {
		t.Error("no accesses recorded")
	}
}

// TestShuffleButterflyReduction checks SHFL's cross-lane semantics with
// the classic log2(32) butterfly sum: after five xor-shuffle-add rounds
// every lane holds the warp-wide sum of the lane ids (0+1+...+31 = 496).
func TestShuffleButterflyReduction(t *testing.T) {
	b := kernel.NewBuilder("butterfly", 8)
	b.S2R(isa.R(0), isa.SRLane)
	b.MOV(isa.R(1), isa.R(0)) // accumulator starts as the lane id
	for delta := int32(16); delta >= 1; delta /= 2 {
		// R2 = laneID ^ delta; R3 = partner's accumulator; R1 += R3.
		b.MOVI(isa.R(4), delta)
		b.XOR(isa.R(2), isa.R(0), isa.R(4))
		b.SHFL(isa.R(3), isa.R(1), isa.R(2))
		b.IADD(isa.R(1), isa.R(1), isa.R(3))
	}
	// Lanes holding the wrong sum take a divergent path we can observe
	// in the thread-instruction count.
	b.SETPI(isa.P(0), isa.R(1), isa.CmpNE, 496)
	b.Guarded(isa.P(0), false, func() {
		b.MOVI(isa.R(5), 1) // executed only on failure
	})
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
	ks := mustRun(t, testConfig(), k)
	// Register writes: S2R + MOV + 5 rounds x (MOVI, XOR, SHFL, IADD).
	// The guarded failure MOVI is fully squashed — and therefore never
	// writes the RF — iff the butterfly produced 496 in every lane.
	want := uint64(2 + 5*4)
	if ks.RegWrites != want {
		t.Errorf("RegWrites = %d, want %d (butterfly sum wrong in some lane)", ks.RegWrites, want)
	}
}

func TestMoreSMsRunFasterOnWideGrids(t *testing.T) {
	k := hotRegKernel(t, 32)
	one := testConfig()
	two := testConfig()
	two.NumSMs = 2
	a := mustRun(t, one, k)
	b := mustRun(t, two, k)
	if b.Cycles >= a.Cycles {
		t.Errorf("2 SMs (%d cycles) not faster than 1 SM (%d)", b.Cycles, a.Cycles)
	}
}
