package sim

import (
	"strings"
	"testing"

	"pilotrf/internal/design"
	"pilotrf/internal/energy"
	"pilotrf/internal/isa"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// TestEnergyLedgerConservationAllWorkloads is the tentpole property
// test: for every registered design scheme, run the whole Table I
// workload suite (scaled down for test speed) with the ledger attached,
// and require the streamed attribution to reproduce the aggregate
// energy package figures bit-exactly — epoch sums, heatmap sums, kernel
// cycles, dynamic pJ, and leakage pJ. Sweeping design.All() puts every
// newly registered scheme under the conservation property for free.
func TestEnergyLedgerConservationAllWorkloads(t *testing.T) {
	for _, sch := range design.All() {
		k := sch.DefaultKnobs()
		d := sch.Base(k)
		led := energy.NewLedger(d, 0)
		cfg, err := testConfig().WithScheme(sch, k)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Energy = led
		var parts [4]uint64
		var cycles int64
		for _, w := range workloads.All() {
			w = w.Scale(0.05)
			g, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := g.RunKernels(w.Name, w.Kernels)
			if err != nil {
				t.Fatalf("%s/%s: %v", d, w.Name, err)
			}
			for p, n := range rs.PartAccesses() {
				parts[p] += n
			}
			cycles += rs.TotalCycles()
		}
		if err := led.CheckConservation(parts, cycles); err != nil {
			t.Errorf("%s: %v", d, err)
		}
		if parts == ([4]uint64{}) {
			t.Errorf("%s: suite produced no RF accesses", d)
		}
		if got, want := led.DynamicPJ(), energy.DynamicPJ(d, parts); got != want {
			t.Errorf("%s: ledger dynamic %v != aggregate %v", d, got, want)
		}
		if got, want := led.LeakagePJ(), energy.LeakagePJ(d, cycles); got != want {
			t.Errorf("%s: ledger leakage %v != aggregate %v", d, got, want)
		}
	}
}

// TestEnergyLedgerZeroPerturbation asserts the ledger and the audit log
// are purely observational: enabling both leaves cycle counts and every
// access statistic bit-identical.
func TestEnergyLedgerZeroPerturbation(t *testing.T) {
	for _, sch := range design.All() {
		k := sch.DefaultKnobs()
		d := sch.Base(k)
		base, err := testConfig().WithScheme(sch, k)
		if err != nil {
			t.Fatal(err)
		}
		instr := base
		instr.Energy = energy.NewLedger(d, 0)
		instr.Audit = &profile.AuditLog{}

		for _, w := range workloads.All()[:4] {
			w = w.Scale(0.05)
			run := func(cfg Config) RunStats {
				g, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rs, err := g.RunKernels(w.Name, w.Kernels)
				if err != nil {
					t.Fatal(err)
				}
				return rs
			}
			plain, traced := run(base), run(instr)
			if plain.TotalCycles() != traced.TotalCycles() {
				t.Errorf("%s/%s: cycles %d with ledger vs %d without",
					d, w.Name, traced.TotalCycles(), plain.TotalCycles())
			}
			if plain.PartAccesses() != traced.PartAccesses() {
				t.Errorf("%s/%s: partition accesses diverge: %v vs %v",
					d, w.Name, traced.PartAccesses(), plain.PartAccesses())
			}
		}
	}
}

// TestEnergyChargePathZeroAlloc asserts the per-access charge path never
// allocates — neither with the ledger disabled (the default) nor with it
// enabled mid-epoch (folding at boundaries is allowed to allocate).
func TestEnergyChargePathZeroAlloc(t *testing.T) {
	build := func(cfg Config) *sm {
		ks := KernelStats{RegHist: stats.NewHistogram(4)}
		run := &runState{cfg: &cfg, kern: benchKernel(t), stats: &ks}
		s, err := newSM(0, &cfg, run)
		if err != nil {
			t.Fatal(err)
		}
		s.launchCTA(0)
		return s
	}

	s := build(testConfig())
	if s.en != nil {
		t.Fatal("ledger attached without Config.Energy")
	}
	if a := testing.AllocsPerRun(1000, func() {
		s.countPartAccess(regfile.PartMRF, 0, isa.R(1))
	}); a != 0 {
		t.Errorf("disabled countPartAccess allocates %.1f per call, want 0", a)
	}

	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	cfg.Energy = energy.NewLedger(regfile.DesignPartitionedAdaptive, 1<<30)
	s = build(cfg)
	if a := testing.AllocsPerRun(1000, func() {
		s.countPartAccess(regfile.PartFRFHigh, 1, isa.R(2))
		s.energyCycle()
	}); a != 0 {
		t.Errorf("enabled charge path allocates %.1f per cycle, want 0", a)
	}
}

// TestEnergyLedgerEpochAndHeatExports checks the exporter output shapes:
// schema comments, headers, one epoch row per fold, and heat cells that
// identify the registers the kernel actually touched.
func TestEnergyLedgerEpochAndHeatExports(t *testing.T) {
	d := regfile.DesignPartitionedAdaptive
	led := energy.NewLedger(d, 25)
	cfg := testConfig().WithDesign(d)
	cfg.Energy = led
	mustRun(t, cfg, tracedKernel(t))

	if led.Kernels() != 1 {
		t.Errorf("ledger kernels = %d, want 1", led.Kernels())
	}
	if len(led.Epochs()) == 0 {
		t.Fatal("no epoch charges recorded")
	}
	var sb strings.Builder
	if err := led.WriteEpochCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "# schema: "+energy.EpochSchema {
		t.Errorf("epoch CSV schema line = %q", lines[0])
	}
	if want := len(led.Epochs()) + 2; len(lines) != want {
		t.Errorf("epoch CSV has %d lines, want %d", len(lines), want)
	}
	wantFields := strings.Count(lines[1], ",") + 1
	for i, line := range lines[2:] {
		if got := strings.Count(line, ",") + 1; got != wantFields {
			t.Errorf("epoch row %d has %d fields, want %d", i, got, wantFields)
		}
	}

	cells := led.HeatCells()
	if len(cells) == 0 {
		t.Fatal("no heat cells recorded")
	}
	seen := map[isa.Reg]bool{}
	for _, c := range cells {
		seen[c.Reg] = true
		if c.Total() == 0 {
			t.Errorf("zero-access heat cell emitted: %+v", c)
		}
	}
	// tracedKernel touches R0..R3 plus the address register R1.
	for _, r := range []isa.Reg{isa.R(0), isa.R(1), isa.R(2), isa.R(3)} {
		if !seen[r] {
			t.Errorf("heatmap missing register %s", r)
		}
	}

	sb.Reset()
	if err := led.WriteHeatmapCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# schema: "+energy.HeatmapSchema+"\n") {
		t.Errorf("heatmap CSV missing schema line: %q", sb.String()[:40])
	}
	sb.Reset()
	if err := led.WriteHeatmapJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"design"`, `"per_access_pj"`, `"cells"`, `"total_dynamic_pj"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("heatmap JSON missing %s", want)
		}
	}
}

// TestEnergyPerfettoCounterTracks checks that an attached tracer
// receives TraceEnergy samples and the Perfetto exporter renders them as
// per-component counter tracks.
func TestEnergyPerfettoCounterTracks(t *testing.T) {
	d := regfile.DesignPartitionedAdaptive
	var out strings.Builder
	tr := NewPerfettoTracer(&out)
	cfg := testConfig().WithDesign(d)
	cfg.Energy = energy.NewLedger(d, 25)
	cfg.Tracer = tr
	mustRun(t, cfg, tracedKernel(t))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, track := range []string{
		"energy_mrf_pj", "energy_frf_high_pj", "energy_frf_low_pj",
		"energy_srf_pj", "energy_leak_pj",
	} {
		if !strings.Contains(got, track) {
			t.Errorf("Perfetto output missing counter track %q", track)
		}
	}
	if !strings.Contains(got, `"ph":"C"`) {
		t.Error("Perfetto output has no counter-phase records")
	}

	// The NDJSON exporter must carry the same sample as a structured
	// field.
	out.Reset()
	nd := NewNDJSONTracer(&out)
	cfg.Tracer = nd
	mustRun(t, cfg, tracedKernel(t))
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"energy":{`) {
		t.Error("NDJSON output missing energy payload")
	}
}

// TestSwapAuditRecordsPlacements runs the audit log through the three
// technique lifecycles and checks the recorded reasons: compiler seeds
// at launch, pilot measurements (and hybrid replacements) at pilot
// completion, and positional defaults for static-first-N.
func TestSwapAuditRecordsPlacements(t *testing.T) {
	run := func(tech profile.Technique) *profile.AuditLog {
		log := &profile.AuditLog{}
		cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
		cfg.Profiling = tech
		cfg.Audit = log
		mustRun(t, cfg, tracedKernel(t))
		return log
	}

	static := run(profile.TechniqueStaticFirstN)
	if static.Len() == 0 {
		t.Fatal("static-first-n recorded no placements")
	}
	if got := static.CountReason(profile.PlaceStaticDefault); got != static.Len() {
		t.Errorf("static-first-n: %d/%d events are static-default", got, static.Len())
	}

	hybrid := run(profile.TechniqueHybrid)
	if hybrid.CountReason(profile.PlaceCompilerSeed) == 0 {
		t.Error("hybrid recorded no compiler-seed placements")
	}
	if hybrid.CountReason(profile.PlacePilotMeasured)+
		hybrid.CountReason(profile.PlaceHybridReplacement) == 0 {
		t.Error("hybrid recorded no pilot-driven placements")
	}
	for _, e := range hybrid.Events() {
		if e.Kernel != "traced" {
			t.Errorf("audit event kernel = %q, want traced", e.Kernel)
		}
		if int(e.Slot) >= maxInt(testConfig().RF.FRFRegs, testConfig().ProfTopN) {
			t.Errorf("audit slot %d outside the FRF", e.Slot)
		}
		if e.Reason == profile.PlacePilotMeasured && e.Cycle == 0 {
			t.Error("pilot-measured placement stamped at cycle 0")
		}
	}

	pilot := run(profile.TechniquePilot)
	if pilot.CountReason(profile.PlacePilotMeasured) == 0 {
		t.Error("pilot recorded no pilot-measured placements")
	}
	if pilot.CountReason(profile.PlaceHybridReplacement) != 0 {
		t.Error("pilot technique recorded hybrid replacements")
	}
}
