package sim

import (
	"pilotrf/internal/fault"
	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

// The SM-side half of fault injection. The fault.Injector decides *when*
// and *what kind* of fault strikes (deterministically, from the seed);
// the SM decides *where*, because only it knows which cells are
// allocated, and adjudicates every fault against the configured
// protection scheme when the corrupted row is read:
//
//	unprotected  — corrupted values are consumed silently (SDC material)
//	parity       — detection on read; recovery is a warp-level re-issue
//	               with bounded retries, then a structured kernel abort
//	SECDED       — single-bit correction on read, invisible to timing
//	               except for the check-bit energy every access pays
//
// Detection is row-granular: a warp's operand read senses the whole
// 128-byte row, so a faulty word is caught whichever lane it belongs
// to. All fault state lives behind s.inj — when Config.Fault is nil the
// hot path costs one nil check and allocates nothing.

// pendingFault is one live injected fault plus the simulator-private
// ground truth a code needs to adjudicate it: for stuck-at cells, the
// bit value the program last wrote (so "is the cell currently wrong?"
// is answerable after any sequence of overwrites).
type pendingFault struct {
	fault.CellFault
	truth uint32 // correct value of the faulted bit (0 or 1)
}

// appliedFlip is a transient read-path corruption applied to storage
// for the duration of one execute, restored immediately after.
type appliedFlip struct {
	w    *warpCtx
	reg  isa.Reg
	lane int
	bit  uint8
}

// faultTick advances the SM's fault process by one cycle and injects a
// strike when one lands. Runs once per tick, before issue, so a fault
// injected this cycle is observable by this cycle's reads.
func (s *sm) faultTick() {
	low := false
	if a := s.rf.Adaptive(); a != nil {
		low = a.LowPower()
	}
	shot, ok := s.inj.Tick(low)
	if !ok {
		return
	}
	s.inject(shot, low)
}

// inject places one accepted strike: CAM upsets hit the swapping table,
// cell upsets pick a victim among the allocated registers of the struck
// partition.
func (s *sm) inject(shot fault.Shot, lowPower bool) {
	st := s.inj.Stats()
	if shot.Target == fault.TargetCAM {
		cam := s.rf.CAM()
		if cam == nil || cam.Len() == 0 {
			st.NoVictim++
			return
		}
		st.Injected[fault.TargetCAM]++
		entry := s.inj.Intn(cam.Len())
		if s.cfg.Protect[regfile.PartFRFHigh] != fault.ProtectNone {
			// The protected mapping detects the upset and scrubs the
			// replica from a clean copy: placement semantics preserved.
			st.CAMRepaired++
			return
		}
		cam.FlipBit(entry, shot.Bit)
		st.CAMCorrupted++
		s.trace(TraceModeSwitch, -1, -1, "CAM upset entry %d bit %d", entry, shot.Bit)
		return
	}

	// Victim selection: every allocated (warp, register) cell whose
	// physical home is the struck array, in deterministic slot order.
	frf := s.cfg.RF.FRFRegs
	numRegs := s.run.kern.Prog.NumRegs
	var victims []int // slot*isa.MaxRegs + reg
	for slot, w := range s.warps {
		if w == nil || w.done {
			continue
		}
		for r := 0; r < numRegs; r++ {
			if s.rf.Partitioned() {
				inFRF := int(s.rf.PhysicalReg(isa.Reg(r))) < frf
				if inFRF != (shot.Target == fault.TargetFRF) {
					continue
				}
			}
			victims = append(victims, slot*isa.MaxRegs+r)
		}
	}
	if len(victims) == 0 {
		st.NoVictim++
		return
	}
	v := victims[s.inj.Intn(len(victims))]
	f := fault.CellFault{
		Warp:  v / isa.MaxRegs,
		Reg:   isa.Reg(v % isa.MaxRegs),
		Lane:  shot.Lane,
		Bit:   uint8(shot.Bit),
		Kind:  shot.Kind,
		Part:  shot.Target.Partition(lowPower),
		Cycle: s.now,
	}
	st.Injected[shot.Target]++
	s.applyCellFault(f)
}

// applyCellFault corrupts storage per the fault kind and records the
// pending fault. Split out so tests can aim a fault at a chosen cell.
func (s *sm) applyCellFault(f fault.CellFault) {
	w := s.warps[f.Warp]
	pf := pendingFault{CellFault: f}
	mask := uint32(1) << f.Bit
	switch f.Kind {
	case fault.KindTransient:
		w.regs[f.Reg][f.Lane] ^= mask
	case fault.KindStuckAt0:
		pf.truth = w.regs[f.Reg][f.Lane] >> f.Bit & 1
		w.regs[f.Reg][f.Lane] &^= mask
	case fault.KindStuckAt1:
		pf.truth = w.regs[f.Reg][f.Lane] >> f.Bit & 1
		w.regs[f.Reg][f.Lane] |= mask
	case fault.KindReadPath:
		// Storage intact; the corruption materializes at a read.
	}
	s.faults = append(s.faults, pf)
	s.trace(TraceModeSwitch, f.Warp, -1, "%s fault %s lane %d bit %d (%s)",
		f.Kind, f.Reg, f.Lane, f.Bit, f.Part)
}

// pinned returns the value a stuck-at fault forces its bit to.
func pinnedBit(k fault.Kind) uint32 {
	if k == fault.KindStuckAt1 {
		return 1
	}
	return 0
}

// active reports whether the fault currently corrupts its cell: a
// stuck-at cell is only wrong while the pinned value differs from what
// the program last wrote; transients and read-path faults always are.
func (pf *pendingFault) active(w *warpCtx) bool {
	if !pf.Kind.StuckAt() {
		return true
	}
	return pf.truth != pinnedBit(pf.Kind)
}

// faultPreExec adjudicates the pending faults touching the source
// operands of an instruction about to execute. It returns true when the
// read was squashed for a warp-level re-issue (parity detection or
// retry exhaustion); the caller must then abandon the issue without
// executing or advancing. Callers hold s.inj != nil && len(s.faults)>0.
func (s *sm) faultPreExec(w *warpCtx, in *isa.Instruction, execMask uint32) bool {
	var srcs [3]isa.Reg
	reads := in.SrcRegs(srcs[:0])
	st := s.inj.Stats()
	cfg := s.inj.Config()

	// Detection pass: parity-protected rows squash before any state
	// changes, so a squashed issue leaves storage exactly as it was.
	for fi := range s.faults {
		pf := &s.faults[fi]
		if pf.Warp != w.slot || !readsReg(reads, pf.Reg) || !pf.active(w) {
			continue
		}
		if s.cfg.Protect[pf.Part] != fault.ProtectParity {
			continue
		}
		st.DetectedRetry++
		if pf.Kind == fault.KindReadPath {
			// The stored row is clean; the re-issued read succeeds.
			st.RetrySuccess++
			s.dropFault(fi)
			w.blockedUntil = s.now + int64(cfg.RetryPenalty)
			return true
		}
		pf.Retries++
		if pf.Retries > cfg.MaxRetries {
			st.Unrecoverable++
			s.run.fatal = &fault.UnrecoverableError{
				Cycle: s.now, SM: s.id, Warp: w.slot,
				Reg: pf.Reg, Part: pf.Part, Kind: pf.Kind, Retries: pf.Retries,
			}
			return true
		}
		w.blockedUntil = s.now + int64(cfg.RetryPenalty)
		return true
	}

	// Consumption pass: SECDED corrects, unprotected rows feed corrupted
	// bits straight into execution.
	for fi := 0; fi < len(s.faults); fi++ {
		pf := &s.faults[fi]
		if pf.Warp != w.slot || !readsReg(reads, pf.Reg) || !pf.active(w) {
			continue
		}
		mask := uint32(1) << pf.Bit
		switch s.cfg.Protect[pf.Part] {
		case fault.ProtectSECDED:
			st.Corrected++
			switch pf.Kind {
			case fault.KindTransient:
				w.regs[pf.Reg][pf.Lane] ^= mask // heal the cell in place
				s.dropFault(fi)
				fi--
			case fault.KindReadPath:
				s.dropFault(fi) // the code fixes the flipped read bit
				fi--
			default: // stuck-at: correct the read, re-pin after execute
				w.regs[pf.Reg][pf.Lane] = w.regs[pf.Reg][pf.Lane]&^mask | pf.truth<<pf.Bit
			}
		case fault.ProtectNone:
			if execMask&(1<<uint(pf.Lane)) == 0 {
				continue // the faulty word's lane is predicated off
			}
			st.SilentReads++
			if pf.Kind == fault.KindReadPath {
				// One-shot: flip for this execute, restore right after.
				w.regs[pf.Reg][pf.Lane] ^= mask
				s.flips = append(s.flips, appliedFlip{w: w, reg: pf.Reg, lane: pf.Lane, bit: pf.Bit})
				s.dropFault(fi)
				fi--
			}
		}
	}
	return false
}

// faultPostExec restores one-shot read-path flips, re-pins stuck-at
// cells (capturing the freshly written bit as the new ground truth),
// and clears transient faults healed by a destination overwrite.
func (s *sm) faultPostExec(w *warpCtx, in *isa.Instruction, execMask uint32) {
	for _, fl := range s.flips {
		fl.w.regs[fl.reg][fl.lane] ^= 1 << fl.bit
	}
	s.flips = s.flips[:0]

	d, hasDst := in.DstReg()
	st := s.inj.Stats()
	for fi := 0; fi < len(s.faults); fi++ {
		pf := &s.faults[fi]
		if pf.Warp != w.slot {
			continue
		}
		wrote := hasDst && pf.Reg == d && execMask&(1<<uint(pf.Lane)) != 0
		if pf.Kind.StuckAt() {
			if wrote {
				pf.truth = w.regs[pf.Reg][pf.Lane] >> pf.Bit & 1
			}
			// The pin always reasserts itself over whatever was read or
			// written (idempotent when already pinned).
			mask := uint32(1) << pf.Bit
			w.regs[pf.Reg][pf.Lane] = w.regs[pf.Reg][pf.Lane]&^mask | pinnedBit(pf.Kind)<<pf.Bit
			continue
		}
		if pf.Kind == fault.KindTransient && wrote {
			// The write replaced the corrupted word before any read saw
			// it go wrong again: the fault is healed.
			st.OverwriteCleared++
			s.dropFault(fi)
			fi--
		}
	}
}

// dropFault removes fault record i in O(1); record order is not part of
// the deterministic state (adjudication scans by warp and register).
func (s *sm) dropFault(i int) {
	s.faults[i] = s.faults[len(s.faults)-1]
	s.faults = s.faults[:len(s.faults)-1]
}

// readsReg reports whether reg is among the instruction's source reads.
func readsReg(reads []isa.Reg, reg isa.Reg) bool {
	for _, r := range reads {
		if r == reg {
			return true
		}
	}
	return false
}

// foldReadDigest mixes every register value an executing instruction
// consumes into the SM's commutative dataflow digest. The contribution
// is keyed on CTA-relative identity — (CTA id, warp-in-CTA, the warp's
// executed-instruction sequence number, register, lane, value) — never
// on SM id, warp slot, or cycle, and the fold is wrapping addition. Two
// runs therefore produce equal digests exactly when their instructions
// consumed the same values, even if retry stalls shifted timing or
// moved CTAs onto different SMs. Callers hold s.rec != nil.
func (s *sm) foldReadDigest(w *warpCtx, in *isa.Instruction, execMask uint32) {
	w.execSeq++
	var srcs [3]isa.Reg
	reads := in.SrcRegs(srcs[:0])
	if len(reads) == 0 {
		return
	}
	base := mix64(uint64(uint32(w.cta.id))<<32|uint64(uint32(w.inCTA))) ^ w.execSeq
	for _, r := range reads {
		for lane := 0; lane < 32; lane++ {
			if execMask&(1<<uint(lane)) == 0 {
				continue
			}
			h := mix64(base ^ uint64(r)<<40 ^ uint64(uint32(lane))<<32 ^ uint64(w.regs[r][lane]))
			s.readHash += h
			s.readCount++
		}
	}
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose
// output sums make a good commutative digest.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
