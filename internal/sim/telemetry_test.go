package sim

import (
	"fmt"
	"strings"
	"testing"

	"pilotrf/internal/design"
	"pilotrf/internal/kernel"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
	"pilotrf/internal/workloads"
)

// checkStallInvariant asserts the attribution identity: every observed
// SM-cycle is either busy or charged to exactly one stall cause.
func checkStallInvariant(t *testing.T, label string, ks KernelStats) {
	t.Helper()
	if ks.SMCycles == 0 {
		t.Errorf("%s: no SM-cycles observed", label)
	}
	if got, want := ks.StallBreakdown.Total(), ks.StallCycles(); got != want {
		t.Errorf("%s: stall breakdown sums to %d, want %d (SMCycles=%d busy=%d)\n%s",
			label, got, want, ks.SMCycles, ks.BusyCycles, ks.StallBreakdown.Table())
	}
	if ks.BusyCycles+ks.StallCycles() != ks.SMCycles {
		t.Errorf("%s: busy %d + stalls %d != SM-cycles %d",
			label, ks.BusyCycles, ks.StallCycles(), ks.SMCycles)
	}
}

func TestStallBreakdownSumsAcrossDesignsAndPolicies(t *testing.T) {
	k := tracedKernel(t)
	for _, sch := range design.All() {
		for _, pol := range []Policy{PolicyGTO, PolicyLRR, PolicyTL, PolicyFetchGroup} {
			cfg, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Policy = pol
			cfg.Stalls = true
			ks := mustRun(t, cfg, k)
			checkStallInvariant(t, sch.Name()+"/"+pol.String(), ks)
		}
	}
}

// TestStallBreakdownSumsOnAllWorkloads is the property test over the
// tier-1 workload suite: for every benchmark (scaled down for test
// speed), the attribution must account for every stall cycle exactly.
func TestStallBreakdownSumsOnAllWorkloads(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	cfg.Stalls = true
	for _, w := range workloads.All() {
		w = w.Scale(0.05)
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := g.RunKernels(w.Name, w.Kernels)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, ks := range rs.Kernels {
			checkStallInvariant(t, w.Name+"/"+ks.Name, ks)
		}
		bd, busy, smCycles := rs.StallTotals()
		if bd.Total() != smCycles-busy {
			t.Errorf("%s: run-level stall totals %d != %d", w.Name, bd.Total(), smCycles-busy)
		}
	}
}

func TestStallBreakdownZeroWhenDisabled(t *testing.T) {
	ks := mustRun(t, testConfig(), tracedKernel(t))
	if ks.SMCycles != 0 || ks.BusyCycles != 0 || ks.StallBreakdown.Total() != 0 {
		t.Errorf("telemetry counters populated while disabled: SMCycles=%d busy=%d stalls=%d",
			ks.SMCycles, ks.BusyCycles, ks.StallBreakdown.Total())
	}
}

// TestTelemetryDoesNotPerturbTiming is the acceptance gate: enabling
// stall attribution and metrics sampling must leave simulated cycle
// counts (and access counts) bit-identical on every design.
func TestTelemetryDoesNotPerturbTiming(t *testing.T) {
	k := tracedKernel(t)
	for _, sch := range design.All() {
		cfg, err := testConfig().WithScheme(sch, sch.DefaultKnobs())
		if err != nil {
			t.Fatal(err)
		}
		plain := mustRun(t, cfg, k)
		cfg.Stalls = true
		cfg.Metrics = NewMetricsRecorder(0)
		instrumented := mustRun(t, cfg, k)
		if plain.Cycles != instrumented.Cycles {
			t.Errorf("%s: telemetry changed cycles %d -> %d", sch.Name(), plain.Cycles, instrumented.Cycles)
		}
		if plain.RegReads != instrumented.RegReads || plain.RegWrites != instrumented.RegWrites {
			t.Errorf("%s: telemetry changed access counts", sch.Name())
		}
		if plain.PartAccesses != instrumented.PartAccesses {
			t.Errorf("%s: telemetry changed partition routing", sch.Name())
		}
	}
}

func TestMetricsSeriesShape(t *testing.T) {
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	rec := NewMetricsRecorder(50)
	cfg.Metrics = rec
	ks := mustRun(t, cfg, tracedKernel(t))

	series := rec.Series()
	if series.Len() == 0 {
		t.Fatal("no epoch samples recorded")
	}
	if got := len(series.Columns()); got < 6 {
		t.Fatalf("series has %d columns, want >= 6", got)
	}
	col := map[string]int{}
	for i, c := range series.Columns() {
		col[c] = i
	}
	var sumIssued, sumBusy, sumStalls, sumCycles float64
	var prevCycle float64 = -1
	for i := 0; i < series.Len(); i++ {
		row := series.Row(i)
		if row[col["kernel"]] != 1 {
			t.Errorf("row %d kernel seq = %g, want 1", i, row[col["kernel"]])
		}
		if row[col["sm"]] == 0 { // per-SM cycle stamps must be monotonic
			if row[col["cycle"]] <= prevCycle {
				t.Errorf("row %d cycle %g not after %g", i, row[col["cycle"]], prevCycle)
			}
			prevCycle = row[col["cycle"]]
		}
		if u := row[col["util"]]; u < 0 || u > 1 {
			t.Errorf("row %d util = %g outside [0,1]", i, u)
		}
		sumIssued += row[col["issued"]]
		sumBusy += row[col["busy"]]
		rowStalls := 0.0
		for _, c := range series.Columns() {
			if strings.HasPrefix(c, "stall_") {
				rowStalls += row[col[c]]
			}
		}
		sumStalls += rowStalls
	}
	sumCycles = sumBusy + sumStalls
	if uint64(sumIssued) != ks.WarpInstrs {
		t.Errorf("series issued sum %g != WarpInstrs %d", sumIssued, ks.WarpInstrs)
	}
	// Busy + stalls across all rows covers every observed SM-cycle —
	// i.e. the partial final epoch was flushed.
	if uint64(sumCycles) != ks.SMCycles {
		t.Errorf("series covers %g SM-cycles, stats observed %d", sumCycles, ks.SMCycles)
	}
	if uint64(sumStalls) != ks.StallBreakdown.Total() {
		t.Errorf("series stalls %g != breakdown total %d", sumStalls, ks.StallBreakdown.Total())
	}
}

func TestMetricsKernelSequenceAcrossKernels(t *testing.T) {
	cfg := testConfig()
	rec := NewMetricsRecorder(25)
	cfg.Metrics = rec
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := tracedKernel(t)
	if _, err := g.RunKernel(k); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunKernel(k); err != nil {
		t.Fatal(err)
	}
	series := rec.Series()
	kernels := map[float64]bool{}
	for i := 0; i < series.Len(); i++ {
		kernels[series.Row(i)[0]] = true
	}
	if !kernels[1] || !kernels[2] {
		t.Errorf("kernel column values = %v, want {1,2}", kernels)
	}
}

func TestMetricsCSVHasHeaderAndRows(t *testing.T) {
	cfg := testConfig()
	rec := NewMetricsRecorder(50)
	cfg.Metrics = rec
	mustRun(t, cfg, tracedKernel(t))
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV has %d lines, want schema + header + rows", len(lines))
	}
	if lines[0] != "# schema: "+MetricsSchema {
		t.Errorf("CSV schema line = %q", lines[0])
	}
	if lines[1] != strings.Join(MetricColumns, ",") {
		t.Errorf("CSV header = %q", lines[1])
	}
	want := len(MetricColumns)
	for i, line := range lines[2:] {
		if got := strings.Count(line, ",") + 1; got != want {
			t.Errorf("row %d has %d fields, want %d", i, got, want)
		}
	}
}

// TestMetricsSchemaVersionLockstep pins the versioned header: the schema
// tag must carry the current version number, and the column count must
// match what that version declares — so adding a column without bumping
// the version (or vice versa) fails here.
func TestMetricsSchemaVersionLockstep(t *testing.T) {
	want, ok := metricsSchemaColumns[MetricsSchemaVersion]
	if !ok {
		t.Fatalf("MetricsSchemaVersion %d missing from metricsSchemaColumns", MetricsSchemaVersion)
	}
	if got := len(MetricColumns); got != want {
		t.Errorf("len(MetricColumns) = %d, schema v%d declares %d", got, MetricsSchemaVersion, want)
	}
	if suffix := fmt.Sprintf("/v%d", MetricsSchemaVersion); !strings.HasSuffix(MetricsSchema, suffix) {
		t.Errorf("MetricsSchema %q does not end in %q", MetricsSchema, suffix)
	}
	if rec := NewMetricsRecorder(50); rec.Schema() != MetricsSchema {
		t.Errorf("recorder schema = %q, want %q", rec.Schema(), MetricsSchema)
	}
}

func TestLiveRegistryAggregates(t *testing.T) {
	cfg := testConfig()
	rec := NewMetricsRecorder(50)
	cfg.Metrics = rec
	ks := mustRun(t, cfg, tracedKernel(t))
	m := rec.Registry().Map()
	if got := m["sim.sm_cycles"]; uint64(got) != ks.SMCycles {
		t.Errorf("registry sm_cycles = %g, stats = %d", got, ks.SMCycles)
	}
	if got := m["sim.issued"]; uint64(got) != ks.WarpInstrs {
		t.Errorf("registry issued = %g, stats = %d", got, ks.WarpInstrs)
	}
	if m["sim.epoch_samples"] == 0 {
		t.Error("no epoch samples counted")
	}
}

// TestTelemetryHotPathZeroAlloc asserts the per-cycle observation path —
// and the disabled paths it replaces — never allocate. Epoch-boundary
// sampling allocates one row; mid-epoch cycles must not.
func TestTelemetryHotPathZeroAlloc(t *testing.T) {
	cfg := testConfig()
	cfg.Stalls = true
	cfg.Metrics = NewMetricsRecorder(1 << 30) // never reach a boundary
	ks := KernelStats{RegHist: stats.NewHistogram(4)}
	run := &runState{cfg: &cfg, kern: benchKernel(t), stats: &ks}
	s, err := newSM(0, &cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	s.launchCTA(0)

	if a := testing.AllocsPerRun(1000, func() {
		s.observeCycle()
		s.now++
	}); a != 0 {
		t.Errorf("observeCycle allocates %.1f per cycle, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		_ = s.classifyStall()
	}); a != 0 {
		t.Errorf("classifyStall allocates %.1f per call, want 0", a)
	}

	// The disabled-tracer path must also stay allocation-free.
	s.cfg.Tracer = nil
	if a := testing.AllocsPerRun(1000, func() {
		s.trace(TraceIssue, 0, 0, "x %d", 1)
	}); a != 0 {
		t.Errorf("nil-tracer trace() allocates %.1f per call, want 0", a)
	}
}

// benchKernel builds a minimal one-warp kernel for direct-SM tests.
func benchKernel(t testing.TB) *kernel.Kernel {
	b := kernel.NewBuilder("telemetry-bench", 4)
	b.MOVI(1, 1)
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
}

func BenchmarkObserveCycle(b *testing.B) {
	cfg := testConfig()
	cfg.Stalls = true
	cfg.Metrics = NewMetricsRecorder(1 << 30)
	ks := KernelStats{RegHist: stats.NewHistogram(4)}
	run := &runState{cfg: &cfg, kern: benchKernel(b), stats: &ks}
	s, err := newSM(0, &cfg, run)
	if err != nil {
		b.Fatal(err)
	}
	s.launchCTA(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.observeCycle()
		s.now++
	}
}

func BenchmarkTickTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, stalls bool) {
		cfg := testConfig()
		cfg.Stalls = stalls
		k := benchKernel(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.RunKernel(k); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("stalls", func(b *testing.B) { run(b, true) })
}
