package sim

import (
	"fmt"

	"pilotrf/internal/design"
	"pilotrf/internal/fault"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/isa"
	"pilotrf/internal/perfscope"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

// sm is one streaming multiprocessor.
type sm struct {
	id  int
	cfg *Config
	run *runState

	warps             []*warpCtx // indexed by slot; nil when free
	schedulers        []*schedState
	banks             []bankState
	collectors        int // units currently in use
	pendingCollectors []*collectorUnit
	mem               memUnit

	rf       *regfile.File
	profCtl  *profile.Controller
	rfcCache *rfc.Cache
	// gate tracks register liveness for power gating (nil unless
	// Config.Gating is set). Purely observational.
	gate *design.GatingTracker

	now      int64
	events   eventHeap
	eventSeq uint64

	residentCTAs int
	liveWarps    int

	// Pilot bookkeeping (per SM, as in the paper's hardware). The pilot
	// is the first warp launched on the SM for the kernel; its finish
	// time is recorded for every technique (Table I), and the profiling
	// controller reacts only when the technique uses a pilot.
	pilotWarp    *warpCtx
	pilotFinish  int64
	ranPilot     bool
	issuedEpoch  int // issues this cycle, fed to the adaptive controller
	kernelLaunch bool
	wasLowPower  bool // previous adaptive mode, for trace transitions

	// Flight recorder sink (nil unless Config.Record is set); recEvery
	// is the checksum interval and recCycles the countdown within it.
	rec       flightrec.Sink
	recEvery  int64
	recCycles int64

	// Telemetry (nil unless Config.Stalls or Config.Metrics is set).
	tel *smTelemetry
	// Energy attribution (nil unless Config.Energy is set).
	en *smEnergy
	// Perfscope census + phase timing (nil unless Config.Perf is set).
	pf *smPerf
	// telCollectorMark holds the CollectorStalls count at the start of
	// the current cycle, so the stall classifier can tell whether an
	// otherwise-ready warp lost only the structural collector hazard.
	telCollectorMark uint64

	// Fault injection (nil unless Config.Fault is set). faults holds the
	// live injected faults on this SM; flips the one-shot read-path
	// corruptions restored right after execute. readHash/readCount
	// accumulate the commutative dataflow digest — maintained only while
	// a flight recorder is attached, since the digest exists to detect
	// silent data corruption against a recorded golden run.
	inj       *fault.Injector
	faults    []pendingFault
	flips     []appliedFlip
	readHash  uint64
	readCount uint64
}

func newSM(id int, cfg *Config, run *runState) (*sm, error) {
	rf, err := regfile.New(cfg.RF)
	if err != nil {
		return nil, err
	}
	s := &sm{
		id:    id,
		cfg:   cfg,
		run:   run,
		warps: make([]*warpCtx, cfg.WarpSlotsPerSM),
		banks: make([]bankState, cfg.RF.Banks),
		rf:    rf,
	}
	s.profCtl, err = profile.NewController(cfg.Profiling, cfg.ProfTopN, maxInt(cfg.RF.FRFRegs, cfg.ProfTopN), s.rf.Mapper())
	if err != nil {
		return nil, err
	}
	if cfg.Fault != nil {
		s.inj, err = fault.NewInjector(*cfg.Fault, cfg.RF.Design, id, rf.CAMBits())
		if err != nil {
			return nil, err
		}
	}
	if cfg.Profiling == profile.TechniqueOracle {
		s.profCtl.SetOracle(cfg.Oracle)
	}
	if cfg.UseRFC {
		rc := cfg.RFC
		if rc.Warps < cfg.WarpSlotsPerSM {
			// RFC storage is addressed by warp slot; size it to the
			// slot space (only active-pool warps ever hold entries).
			rc.Warps = cfg.WarpSlotsPerSM
		}
		if cfg.RFCCompilerHints {
			// Compiler-assisted allocation: the kernel's static top-N
			// registers (one per cache entry) are the admission set.
			rc.Hints = profile.CompilerTopN(run.kern.Prog, rc.EntriesPerWarp)
		}
		s.rfcCache = rfc.New(rc)
	}
	if cfg.Gating != nil {
		s.gate = design.NewGatingTracker(*cfg.Gating, cfg.WarpSlotsPerSM, cfg.WarpRegBudget)
	}
	if cfg.Audit != nil {
		s.profCtl.SM = id
		s.profCtl.Audit = cfg.Audit
		s.profCtl.Now = func() int64 { return s.now }
	}
	if cfg.Record != nil {
		s.rec = cfg.Record
		s.recEvery = cfg.Record.ChecksumEvery()
		if s.recEvery <= 0 {
			s.recEvery = flightrec.DefaultChecksumEvery
		}
	}
	if cfg.Stalls || cfg.Metrics != nil {
		s.tel = newSMTelemetry(cfg.Metrics, cfg.RF.Design)
	}
	if cfg.Energy != nil {
		s.en = newSMEnergy(cfg.Energy, run.enKernel, cfg.WarpSlotsPerSM)
	}
	if cfg.Perf != nil {
		s.pf = newSMPerf(cfg.Perf)
	}
	perSched := cfg.WarpSlotsPerSM / cfg.Schedulers
	for i := 0; i < cfg.Schedulers; i++ {
		slots := make([]int, 0, perSched)
		for slot := i; slot < cfg.WarpSlotsPerSM; slot += cfg.Schedulers {
			slots = append(slots, slot)
		}
		s.schedulers = append(s.schedulers, newSchedState(i, slots, cfg.Policy, s.tlPoolSize()))
	}
	return s, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tlPoolSize is the per-scheduler active pool of the two-level scheduler.
func (s *sm) tlPoolSize() int {
	n := s.cfg.TLActiveWarps / s.cfg.Schedulers
	if n < 1 {
		n = 1
	}
	return n
}

// ctaCapacity returns how many CTAs of the current kernel fit on the SM
// simultaneously (warp slots, register budget, CTA cap).
func (s *sm) ctaCapacity() int {
	k := s.run.kern
	warpsPer := k.WarpsPerCTA()
	bySlots := s.cfg.WarpSlotsPerSM / warpsPer
	byRegs := s.cfg.WarpRegBudget / (warpsPer * k.Prog.NumRegs)
	n := s.cfg.MaxCTAsPerSM
	if bySlots < n {
		n = bySlots
	}
	if byRegs < n {
		n = byRegs
	}
	return n
}

// freeWarpSlots counts unoccupied warp slots.
func (s *sm) freeWarpSlots() int {
	n := 0
	for _, w := range s.warps {
		if w == nil {
			n++
		}
	}
	return n
}

// launchCTA places a CTA's warps into free slots. When the first CTA of
// a kernel lands on the SM, the configured warp of that CTA becomes the
// pilot (the first warp by default).
func (s *sm) launchCTA(ctaID int) {
	k := s.run.kern
	warpsPer := k.WarpsPerCTA()
	cta := &ctaCtx{id: ctaID, live: warpsPer}
	for i := 0; i < warpsPer; i++ {
		slot := s.takeSlot()
		threads := fullMask
		remaining := k.ThreadsPerCTA - i*32
		if remaining < 32 {
			threads = (1 << uint(remaining)) - 1
		}
		w := newWarpCtx(slot, s.run.nextWarpID(), cta, i, k.Prog, threads)
		cta.warps = append(cta.warps, w)
		s.warps[slot] = w
		s.liveWarps++
		if s.cfg.CollectPerWarpCTAs > 0 && ctaID < s.cfg.CollectPerWarpCTAs*s.cfg.NumSMs {
			s.run.registerWarpHist(w.globalID, k.Prog.NumRegs)
		}
	}
	if !s.kernelLaunch {
		// First CTA on this SM for this kernel: pick the pilot warp
		// and arm profiling.
		s.kernelLaunch = true
		pilot := cta.warps[s.cfg.PilotWarpIndex%len(cta.warps)]
		s.profCtl.KernelLaunch(k.Prog, pilot.slot)
		s.pilotWarp = pilot
		if s.rec != nil {
			s.record(flightrec.KindSwapInstall, pilot.slot, -1, s.mappingHash(), 0, "kernel-launch")
		}
	}
	s.residentCTAs++
	s.trace(TraceCTALaunch, -1, -1, "cta %d (%d warps)", ctaID, warpsPer)
	if s.rec != nil {
		s.record(flightrec.KindCTALaunch, -1, -1, uint64(ctaID), uint64(warpsPer), "")
	}
	if s.cfg.Policy == PolicyTL {
		// Newly launched warps may land in slots currently on the
		// pending lists; give the active pools a chance to refill.
		for _, sc := range s.schedulers {
			sc.promote(s)
		}
	}
}

func (s *sm) takeSlot() int {
	for i, w := range s.warps {
		if w == nil {
			return i
		}
	}
	panic("sim: launchCTA without a free slot")
}

// busy reports whether the SM still has resident work or in-flight events.
func (s *sm) busy() bool {
	return s.liveWarps > 0 || len(s.events) > 0
}

// tick advances the SM by one cycle. The perfscope hooks (s.pf) are
// purely observational: phase laps read the monotonic clock between
// stages and the end-of-tick census classifies the cycle; disabled,
// each hook is one nil check.
func (s *sm) tick() {
	pf := s.pf
	var t0 int64
	if pf != nil {
		t0 = pf.begin()
	}
	s.runEvents()
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseEvents, t0)
	}
	if s.inj != nil {
		s.faultTick()
		if pf != nil {
			t0 = pf.lap(perfscope.PhaseFault, t0)
		}
	}
	s.issuedEpoch = 0
	if s.tel != nil {
		s.telCollectorMark = s.run.stats.CollectorStalls
	}
	for _, sc := range s.schedulers {
		s.scheduleIssue(sc)
	}
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseIssue, t0)
	}
	s.tickCollectors()
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseCollect, t0)
	}
	s.tickBanks()
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseBanks, t0)
	}
	if a := s.rf.Adaptive(); a != nil {
		a.OnIssue(s.issuedEpoch)
		a.Tick()
		if low := a.LowPower(); low != s.wasLowPower {
			s.trace(TraceModeSwitch, -1, -1, "FRF %s power", map[bool]string{true: "low", false: "high"}[low])
			if s.rec != nil {
				var toLow uint64
				if low {
					toLow = 1
				}
				s.record(flightrec.KindModeFlip, -1, -1, toLow, 0, "")
			}
			s.wasLowPower = low
		}
	}
	s.run.stats.WarpInstrs += uint64(s.issuedEpoch)
	for b := range s.banks {
		s.run.stats.BankQueueSum += uint64(len(s.banks[b].queue))
	}
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseAdaptive, t0)
	}
	if s.tel != nil {
		s.observeCycle()
	}
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseTelemetry, t0)
	}
	if s.en != nil {
		s.energyCycle()
	}
	if s.gate != nil {
		s.gate.Tick()
	}
	if pf != nil {
		t0 = pf.lap(perfscope.PhaseEnergy, t0)
	}
	s.recordTick()
	if pf != nil {
		pf.lap(perfscope.PhaseRecord, t0)
		s.censusCycle()
	}
	s.now++
}

// scheduleIssue lets one scheduler issue up to its dual-issue width.
func (s *sm) scheduleIssue(sc *schedState) {
	for n := 0; n < s.cfg.IssuePerScheduler; n++ {
		slot := sc.pickWarp(s, s.canIssue)
		if slot < 0 {
			return
		}
		s.issue(sc, s.warps[slot])
	}
}

// canIssue is the side-effect-free issue check: residency, barriers,
// branch shadow, scoreboard, and structural (collector) hazards.
func (s *sm) canIssue(slot int) bool {
	w := s.warps[slot]
	if w == nil || w.done || w.atBarrier || w.blockedUntil > s.now || w.finished() {
		return false
	}
	in := s.run.kern.Prog.At(w.pc())
	// Guard predicate must be available.
	if in.Guard.Pred.Valid() && w.pendingPreds&(1<<uint(in.Guard.Pred)) != 0 {
		return false
	}
	if in.SrcPred.Valid() && w.pendingPreds&(1<<uint(in.SrcPred)) != 0 {
		return false
	}
	if in.PDst.Valid() && w.pendingPreds&(1<<uint(in.PDst)) != 0 {
		return false
	}
	// RAW/WAW on general registers.
	for _, r := range [3]isa.Reg{in.SrcA, in.SrcB, in.SrcC} {
		if r.Valid() && w.pendingRegs&(1<<uint(r)) != 0 {
			return false
		}
	}
	if d, ok := in.DstReg(); ok && w.pendingRegs&(1<<uint(d)) != 0 {
		return false
	}
	// Non-control instructions need a collector unit.
	if in.Op.ClassOf() != isa.ClassCtrl && s.collectors >= s.cfg.OperandCollectors {
		s.run.stats.CollectorStalls++
		return false
	}
	return true
}

// issue consumes one issue slot for warp w's next instruction: functional
// execution happens now; collectors, banks, and execution latencies model
// the timing.
func (s *sm) issue(sc *schedState, w *warpCtx) {
	in := s.run.kern.Prog.At(w.pc())
	activeMask := w.activeMask()
	s.issuedEpoch++
	w.lastIssue = s.now
	s.run.stats.ThreadInstrs += uint64(popcount(activeMask))
	s.trace(TraceIssue, w.slot, w.pc(), "%s [lanes %d]", in.String(), popcount(activeMask))
	if s.rec != nil {
		s.record(flightrec.KindIssue, w.slot, w.pc(), uint64(in.Op), uint64(activeMask), in.Op.String())
	}

	if in.Op.ClassOf() == isa.ClassCtrl {
		s.issueControl(sc, w, in, activeMask)
		return
	}

	execMask := activeMask & w.predMask(in.Guard)
	if execMask == 0 {
		// Fully predicated off: squashed at issue, no RF access.
		w.advance()
		s.afterAdvance(sc, w)
		return
	}

	// Fault adjudication on the operand rows about to be read. A parity
	// detection squashes the issue: the warp re-issues the instruction
	// after the retry penalty (or the kernel aborts on retry exhaustion).
	if s.inj != nil && len(s.faults) > 0 && s.faultPreExec(w, in, execMask) {
		return
	}

	// Register access accounting happens at scheduling time — this is
	// where the paper's pilot counters hook in.
	s.countAccesses(w, in)
	if s.gate != nil {
		if d, ok := in.DstReg(); ok {
			s.gate.OnWrite(w.slot, d)
		}
	}

	// The dataflow digest folds the operand values actually consumed —
	// before execute, so a dst that doubles as a src hashes its input.
	if s.rec != nil {
		s.foldReadDigest(w, in, execMask)
	}

	// Functional execution.
	s.execute(w, in, execMask)

	if s.inj != nil && (len(s.flips) > 0 || len(s.faults) > 0) {
		s.faultPostExec(w, in, execMask)
	}

	// Scoreboard.
	if d, ok := in.DstReg(); ok {
		w.pendingRegs |= 1 << uint(d)
	}
	if in.PDst.Valid() {
		w.pendingPreds |= 1 << uint(in.PDst)
	}
	w.inFlight++

	// Operand collection: reads via the RFC (if enabled) or the banks.
	col := &collectorUnit{warp: w, in: in, execMask: execMask}
	if s.rfcCache != nil {
		// The RFC read stage takes a cycle of its own; hits are
		// cheap in energy, not free in time.
		col.readyAt = s.now + 1
	}
	s.collectors++
	var srcs [3]isa.Reg
	reads := in.SrcRegs(srcs[:0])
	for _, r := range reads {
		if s.rfcCache != nil {
			s.readViaRFC(col, r)
		} else {
			col.pendingReads++
			s.enqueueBankRead(col, r)
		}
	}
	s.pendingCollectors = append(s.pendingCollectors, col)

	w.advance()
	if in.Op.IsGlobalMemory() {
		w.memInFlight++
		if s.cfg.Policy == PolicyTL {
			sc.demote(s, w.slot)
		}
	}
	s.afterAdvance(sc, w)
}

// readViaRFC performs the RFC tag check for a source read; hits are
// satisfied immediately (the RFC reads in the issue cycle), misses fall
// through to an MRF bank access.
func (s *sm) readViaRFC(col *collectorUnit, r isa.Reg) {
	if s.rfcCache.Read(col.warp.slot, r) {
		return // hit: operand available without a bank transaction
	}
	col.pendingReads++
	s.enqueueBankRead(col, r)
}

// issueControl handles BRA/EXIT/BAR/NOP, which bypass the collectors.
func (s *sm) issueControl(sc *schedState, w *warpCtx, in *isa.Instruction, activeMask uint32) {
	switch in.Op {
	case isa.OpBRA:
		taken := activeMask & w.predMask(in.Guard)
		w.branch(taken, in.Target, in.Reconv)
		w.blockedUntil = s.now + int64(s.cfg.BranchLatency)
	case isa.OpEXIT:
		exitMask := activeMask & w.predMask(in.Guard)
		wholePath := exitMask == activeMask
		w.exitLanes(exitMask)
		// Only survivors of the *current* path advance past the EXIT.
		// If the whole path exited, its entry was popped and the
		// reconvergence entry below must not be disturbed.
		if !wholePath && !w.finished() {
			w.advance()
		}
	case isa.OpBAR:
		w.advance()
		w.atBarrier = true
		w.cta.arrived++
		s.trace(TraceBarrier, w.slot, -1, "arrived (%d/%d)", w.cta.arrived, w.cta.live)
		s.checkBarrier(w.cta)
		if s.cfg.Policy == PolicyTL {
			sc.demote(s, w.slot)
		}
	case isa.OpNOP:
		w.advance()
	default:
		panic(fmt.Sprintf("sim: control op %v", in.Op))
	}
	s.afterAdvance(sc, w)
}

// afterAdvance retires the warp if its stack emptied and all in-flight
// instructions have drained.
func (s *sm) afterAdvance(sc *schedState, w *warpCtx) {
	if w.finished() && !w.done && w.inFlight == 0 {
		s.retireWarp(w)
	}
}

// retireWarp marks a warp complete and handles pilot/CTA bookkeeping.
func (s *sm) retireWarp(w *warpCtx) {
	w.done = true
	w.finishCycle = s.now
	s.liveWarps--
	if s.gate != nil {
		s.gate.OnWarpRetire(w.slot)
	}
	s.trace(TraceWarpRetire, w.slot, -1, "cta %d", w.cta.id)
	if s.rec != nil {
		s.record(flightrec.KindWarpRetire, w.slot, -1, uint64(w.cta.id), 0, "")
	}
	if w == s.pilotWarp && !s.ranPilot {
		s.profCtl.OnWarpComplete(w.slot)
		s.pilotFinish = s.now
		s.ranPilot = true
		s.trace(TracePilotDone, w.slot, -1, "pilot finished; mapping updated")
		if s.rec != nil {
			s.record(flightrec.KindSwapInstall, w.slot, -1, s.mappingHash(), 0, "pilot-complete")
		}
	}
	cta := w.cta
	cta.live--
	s.checkBarrier(cta)
	if cta.live == 0 {
		s.finishCTA(cta)
	}
	if s.cfg.Policy == PolicyTL {
		sc := s.schedulers[w.slot%s.cfg.Schedulers]
		if sc.inActive(w.slot) {
			sc.demote(s, w.slot)
		}
	}
}

// checkBarrier releases a CTA barrier when every live warp has arrived.
func (s *sm) checkBarrier(cta *ctaCtx) {
	waiting := 0
	for _, w := range cta.warps {
		if w.atBarrier {
			waiting++
		}
	}
	if waiting == 0 || waiting < cta.live {
		return
	}
	released := 0
	for _, w := range cta.warps {
		if w.atBarrier {
			w.atBarrier = false
			cta.arrived--
			released++
			if s.cfg.Policy == PolicyTL {
				sc := s.schedulers[w.slot%s.cfg.Schedulers]
				sc.promote(s)
			}
		}
	}
	if s.rec != nil && released > 0 {
		s.record(flightrec.KindBarrierRelease, -1, -1, uint64(cta.id), uint64(released), "")
	}
}

// finishCTA frees the CTA's slots and pulls the next CTA from the grid.
func (s *sm) finishCTA(cta *ctaCtx) {
	for _, w := range cta.warps {
		s.warps[w.slot] = nil
	}
	s.residentCTAs--
	s.run.ctaDone(s)
}

// countAccesses records the warp-level RF operand accesses of an issued
// instruction: global statistics, the Figure 2 histogram, the per-warp
// similarity histograms, and the pilot counters.
func (s *sm) countAccesses(w *warpCtx, in *isa.Instruction) {
	var srcs [3]isa.Reg
	for _, r := range in.SrcRegs(srcs[:0]) {
		s.run.stats.RegReads++
		s.run.countRegAccess(w.globalID, r)
		s.profCtl.OnRegAccess(w.slot, r)
	}
	if d, ok := in.DstReg(); ok {
		s.run.stats.RegWrites++
		s.run.countRegAccess(w.globalID, d)
		s.profCtl.OnRegAccess(w.slot, d)
	}
}

// countPartAccess attributes one serviced bank transaction to a physical
// partition — and, when the energy ledger is attached, to the issuing
// warp slot and architectural register. The statistics counter and the
// ledger buckets increment in lockstep here, which is what makes the
// ledger's conservation against KernelStats.PartAccesses exact.
func (s *sm) countPartAccess(p regfile.Partition, warp int, arch isa.Reg) {
	s.run.stats.PartAccesses[p]++
	if s.rec != nil {
		s.record(flightrec.KindRoute, warp, -1, uint64(p), uint64(arch), "")
	}
	if s.tel != nil {
		s.tel.cur.parts[p]++
	}
	if s.en != nil {
		s.en.parts[p]++
		s.en.heat[warp*isa.MaxRegs+int(arch)][p]++
		if s.en.protMask[p] {
			// A protected partition reads/writes its check bits with
			// every access; the ledger prices them at flush time.
			s.en.overhead[p]++
		}
	}
}

// tickCollectors dispatches instructions whose operands are all gathered:
// the collector is freed and the instruction enters its execution pipe.
func (s *sm) tickCollectors() {
	kept := s.pendingCollectors[:0]
	for _, col := range s.pendingCollectors {
		if col.pendingReads > 0 || col.readyAt > s.now {
			kept = append(kept, col)
			continue
		}
		s.collectors--
		if s.pf != nil {
			s.pf.dispatched++
		}
		s.dispatch(col)
	}
	s.pendingCollectors = kept
}

// dispatch models the execution stage of a collected instruction and its
// writeback.
func (s *sm) dispatch(col *collectorUnit) {
	w, in := col.warp, col.in
	s.trace(TraceDispatch, w.slot, -1, "%s to %s", in.Op, in.Op.ClassOf())
	switch {
	case in.Op.IsGlobalMemory():
		s.trace(TraceMemStart, w.slot, -1, "%s", in.Op)
		s.memDispatch(func() {
			s.trace(TraceMemDone, w.slot, -1, "%s", in.Op)
			w.memInFlight--
			if s.cfg.Policy == PolicyTL {
				s.schedulers[w.slot%s.cfg.Schedulers].promote(s)
			}
			s.writeback(w, in)
		})
	case in.Op == isa.OpLDS || in.Op == isa.OpSTS:
		s.schedule(s.now+int64(s.cfg.SharedLatency), func() { s.writeback(w, in) })
	default:
		s.schedule(s.now+int64(s.unitLatency(in)), func() { s.writeback(w, in) })
	}
}

func (s *sm) unitLatency(in *isa.Instruction) int {
	switch in.Op.ClassOf() {
	case isa.ClassSFU:
		return s.cfg.SFULatency
	case isa.ClassFPU:
		return s.cfg.FPULatency
	default:
		return s.cfg.ALULatency
	}
}

// writeback retires an instruction: predicate results complete here;
// register results go through an RFC write or a bank write transaction.
func (s *sm) writeback(w *warpCtx, in *isa.Instruction) {
	s.trace(TraceWriteback, w.slot, -1, "%s", in.Op)
	if in.PDst.Valid() {
		w.pendingPreds &^= 1 << uint(in.PDst)
	}
	d, hasDst := in.DstReg()
	if !hasDst {
		s.completeInstr(w)
		return
	}
	if s.rfcCache != nil {
		// Only active-pool warps own RFC storage; a demoted warp's
		// late results bypass the cache straight to the MRF.
		if s.cfg.Policy == PolicyTL && !s.schedulers[w.slot%s.cfg.Schedulers].inActive(w.slot) {
			s.enqueueBankWrite(w, d, func() {
				w.pendingRegs &^= 1 << uint(d)
				s.completeInstr(w)
			})
			return
		}
		// Results write into the RFC; dirty evictions emit MRF bank
		// writes that retire in the background.
		if victim, wb := s.rfcCache.Write(w.slot, d); wb {
			s.enqueueBankWrite(w, victim, nil)
		}
		w.pendingRegs &^= 1 << uint(d)
		s.completeInstr(w)
		return
	}
	if s.cfg.WritebackForwarding {
		// The result is forwarded to dependents now; the bank write
		// retires in the background (energy + occupancy only).
		w.pendingRegs &^= 1 << uint(d)
		s.enqueueBankWrite(w, d, func() { s.completeInstr(w) })
		return
	}
	s.enqueueBankWrite(w, d, func() {
		w.pendingRegs &^= 1 << uint(d)
		s.completeInstr(w)
	})
}

func (s *sm) completeInstr(w *warpCtx) {
	w.inFlight--
	if w.finished() && !w.done && w.inFlight == 0 {
		s.retireWarp(w)
	}
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
