package sim

// schedState is one of the SM's warp schedulers. Warps are statically
// partitioned among schedulers by slot (slot % numSchedulers).
type schedState struct {
	id    int
	slots []int // warp slots owned by this scheduler

	// rrPtr is the round-robin rotation pointer (LRR, and TL's active
	// pool rotation).
	rrPtr int
	// greedy is the last warp GTO issued from (-1 when none).
	greedy int
	// fgPtr is the current fetch group (PolicyFetchGroup).
	fgPtr int

	// Two-level scheduler state: indices into slots.
	active  []int // active pool (FIFO order)
	pending []int // demoted warps awaiting promotion
}

func newSchedState(id int, slots []int, policy Policy, activePool int) *schedState {
	s := &schedState{id: id, slots: slots, greedy: -1}
	if policy == PolicyTL {
		for i, slot := range slots {
			if i < activePool {
				s.active = append(s.active, slot)
			} else {
				s.pending = append(s.pending, slot)
			}
		}
	}
	return s
}

// pickWarp returns the next warp slot to attempt issue from, or -1. The
// canIssue callback must be side-effect free; the scheduler probes
// candidates with it.
func (sc *schedState) pickWarp(sm *sm, canIssue func(slot int) bool) int {
	switch sm.cfg.Policy {
	case PolicyLRR:
		return sc.pickLRR(canIssue)
	case PolicyGTO:
		return sc.pickGTO(sm, canIssue)
	case PolicyTL:
		return sc.pickTL(canIssue)
	case PolicyFetchGroup:
		return sc.pickFetchGroup(sm.cfg.FetchGroupWarps, canIssue)
	default:
		panic("sim: unknown scheduler policy")
	}
}

func (sc *schedState) pickLRR(canIssue func(int) bool) int {
	n := len(sc.slots)
	for i := 0; i < n; i++ {
		slot := sc.slots[(sc.rrPtr+i)%n]
		if canIssue(slot) {
			sc.rrPtr = (sc.rrPtr + i + 1) % n
			return slot
		}
	}
	return -1
}

// pickGTO keeps issuing from the greedy warp; when it stalls, it selects
// the oldest ready warp (lowest global id, i.e. earliest launched).
func (sc *schedState) pickGTO(sm *sm, canIssue func(int) bool) int {
	if sc.greedy >= 0 && canIssue(sc.greedy) {
		return sc.greedy
	}
	best, bestAge := -1, int(^uint(0)>>1)
	for _, slot := range sc.slots {
		w := sm.warps[slot]
		if w == nil || !canIssue(slot) {
			continue
		}
		if w.globalID < bestAge {
			best, bestAge = slot, w.globalID
		}
	}
	sc.greedy = best
	return best
}

// pickTL round-robins within the active pool only.
func (sc *schedState) pickTL(canIssue func(int) bool) int {
	n := len(sc.active)
	for i := 0; i < n; i++ {
		slot := sc.active[(sc.rrPtr+i)%n]
		if canIssue(slot) {
			sc.rrPtr = (sc.rrPtr + i + 1) % n
			return slot
		}
	}
	return -1
}

// pickFetchGroup scans the current fetch group round-robin; only when it
// has nothing ready does the scheduler advance to the next group, so
// groups hit their long-latency operations at staggered times.
func (sc *schedState) pickFetchGroup(groupSize int, canIssue func(int) bool) int {
	n := len(sc.slots)
	if groupSize > n {
		groupSize = n
	}
	groups := (n + groupSize - 1) / groupSize
	for g := 0; g < groups; g++ {
		gi := (sc.fgPtr + g) % groups
		lo := gi * groupSize
		hi := lo + groupSize
		if hi > n {
			hi = n
		}
		for i := 0; i < hi-lo; i++ {
			slot := sc.slots[lo+(sc.rrPtr+i)%(hi-lo)]
			if canIssue(slot) {
				sc.rrPtr = (sc.rrPtr + i + 1) % (hi - lo)
				sc.fgPtr = gi
				return slot
			}
		}
	}
	return -1
}

// demote moves a warp from the active pool to the pending list (TL only):
// called when the warp issues a long-latency operation, hits a barrier,
// or completes. The RFC, if present, flushes the warp's entries.
func (sc *schedState) demote(sm *sm, slot int) {
	for i, s := range sc.active {
		if s == slot {
			sc.active = append(sc.active[:i], sc.active[i+1:]...)
			sc.pending = append(sc.pending, slot)
			if sm.rfcCache != nil {
				w := sm.warps[slot]
				for _, r := range sm.rfcCache.FlushWarp(slot) {
					sm.enqueueBankWrite(w, r, nil)
				}
			}
			sc.promote(sm)
			return
		}
	}
}

// promote refills the active pool with the first pending warp whose
// long-latency dependencies have resolved.
func (sc *schedState) promote(sm *sm) {
	poolSize := sm.tlPoolSize()
	for len(sc.active) < poolSize {
		idx := -1
		for i, slot := range sc.pending {
			w := sm.warps[slot]
			if w == nil {
				continue
			}
			if !w.done && !w.atBarrier && w.memInFlight == 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		slot := sc.pending[idx]
		sc.pending = append(sc.pending[:idx], sc.pending[idx+1:]...)
		sc.active = append(sc.active, slot)
	}
}

// contains reports whether the active pool holds the slot (TL).
func (sc *schedState) inActive(slot int) bool {
	for _, s := range sc.active {
		if s == slot {
			return true
		}
	}
	return false
}
