package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pilotrf/internal/regfile"
)

// perfettoDoc mirrors the JSON container the exporter writes.
type perfettoDoc struct {
	TraceEvents []struct {
		Name  string          `json:"name"`
		Phase string          `json:"ph"`
		TS    int64           `json:"ts"`
		PID   int             `json:"pid"`
		TID   int             `json:"tid"`
		Args  json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestPerfettoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pt := NewPerfettoTracer(&buf)
	cfg := testConfig().WithDesign(regfile.DesignPartitionedAdaptive)
	cfg.Tracer = pt
	mustRun(t, cfg, tracedKernel(t))
	if err := pt.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter did not produce valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	var prevTS int64 = -1
	sawIssue := false
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" {
			continue // metadata records carry no timestamp
		}
		if e.TS < prevTS {
			t.Fatalf("ts went backwards: %d after %d", e.TS, prevTS)
		}
		prevTS = e.TS
		if e.PID != 0 {
			t.Errorf("pid = %d on a 1-SM run, want 0", e.PID)
		}
		if e.Name == "issue" {
			sawIssue = true
			// tid maps to warp slot + 1 (tid 0 is the SM pseudo-thread);
			// the test kernel runs a single warp in slot 0.
			if e.TID != 1 {
				t.Errorf("issue event tid = %d, want 1 (warp slot 0)", e.TID)
			}
		}
	}
	if !sawIssue {
		t.Error("no issue events in the trace")
	}

	// The process metadata names the SM.
	if !strings.Contains(buf.String(), `"SM 0"`) {
		t.Error("missing SM process_name metadata")
	}
}

func TestPerfettoEmptyFlushIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	pt := NewPerfettoTracer(&buf)
	if err := pt.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v (%q)", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty trace has %d events", len(doc.TraceEvents))
	}
}

func TestPerfettoModeSwitchCounterTrack(t *testing.T) {
	var buf bytes.Buffer
	pt := NewPerfettoTracer(&buf)
	pt.Event(TraceEvent{Cycle: 50, SM: 0, Kind: TraceModeSwitch, Warp: -1, PC: -1, Detail: "FRF low power"})
	pt.Event(TraceEvent{Cycle: 100, SM: 0, Kind: TraceModeSwitch, Warp: -1, PC: -1, Detail: "FRF high power"})
	if err := pt.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var counterVals []string
	for _, e := range doc.TraceEvents {
		if e.Phase == "C" && e.Name == "frf_low_power" {
			counterVals = append(counterVals, string(e.Args))
		}
	}
	if len(counterVals) != 2 {
		t.Fatalf("counter records = %d, want 2", len(counterVals))
	}
	if !strings.Contains(counterVals[0], "1") || !strings.Contains(counterVals[1], "0") {
		t.Errorf("counter values = %v, want low=1 then high=0", counterVals)
	}
}

func TestNDJSONTracer(t *testing.T) {
	var buf bytes.Buffer
	nt := NewNDJSONTracer(&buf)
	cfg := testConfig()
	cfg.Tracer = nt
	mustRun(t, cfg, tracedKernel(t))
	if err := nt.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no NDJSON lines")
	}
	kinds := map[string]int{}
	for i, line := range lines {
		var e ndjsonEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", i, err, line)
		}
		kinds[e.Kind]++
	}
	if kinds["issue"] != 6 {
		t.Errorf("NDJSON issue events = %d, want 6", kinds["issue"])
	}
	if kinds["warp-retire"] != 1 {
		t.Errorf("NDJSON warp-retire events = %d, want 1", kinds["warp-retire"])
	}
}

func TestTeeTracerFansOut(t *testing.T) {
	r1 := NewRingTracer(64)
	r2 := NewRingTracer(64)
	tee := NewTeeTracer(r1, nil, r2)
	tee.Event(TraceEvent{Kind: TraceIssue})
	tee.Event(TraceEvent{Kind: TraceDispatch})
	for i, r := range []*RingTracer{r1, r2} {
		if got := r.CountKind(TraceIssue) + r.CountKind(TraceDispatch); got != 2 {
			t.Errorf("tracer %d saw %d events, want 2", i, got)
		}
	}
}

func TestFilterTracerByKindAndSM(t *testing.T) {
	ring := NewRingTracer(64)
	ft := NewFilterTracer(ring, 1, TraceIssue, TraceModeSwitch)
	ft.Event(TraceEvent{SM: 1, Kind: TraceIssue})      // pass
	ft.Event(TraceEvent{SM: 0, Kind: TraceIssue})      // wrong SM
	ft.Event(TraceEvent{SM: 1, Kind: TraceDispatch})   // wrong kind
	ft.Event(TraceEvent{SM: 1, Kind: TraceModeSwitch}) // pass
	if got := len(ring.Events()); got != 2 {
		t.Errorf("filter passed %d events, want 2", got)
	}
}

func TestFilterTracerDefaultsToAll(t *testing.T) {
	ring := NewRingTracer(64)
	ft := NewFilterTracer(ring, -1)
	ft.Event(TraceEvent{SM: 3, Kind: TraceBarrier})
	ft.Event(TraceEvent{SM: 0, Kind: TraceIssue})
	if got := len(ring.Events()); got != 2 {
		t.Errorf("unfiltered tracer passed %d events, want 2", got)
	}
}

func TestFlushTracerOnUnbuffered(t *testing.T) {
	if err := FlushTracer(NewRingTracer(4)); err != nil {
		t.Errorf("flushing an unbuffered tracer: %v", err)
	}
	if err := FlushTracer(nil); err != nil {
		t.Errorf("flushing nil: %v", err)
	}
}

func TestTeeFlushReachesChildren(t *testing.T) {
	var buf bytes.Buffer
	wt := &WriterTracer{W: &buf}
	tee := NewTeeTracer(NewRingTracer(8), wt)
	tee.Event(TraceEvent{Cycle: 1, Kind: TraceIssue, Warp: 0, PC: 0})
	if buf.Len() != 0 {
		t.Fatal("writer flushed before Flush")
	}
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "issue") {
		t.Errorf("tee flush did not drain the writer: %q", buf.String())
	}
}
