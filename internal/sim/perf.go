package sim

import (
	"pilotrf/internal/perfscope"
)

// smPerf is the per-SM perfscope state, allocated only when Config.Perf
// is set. The per-cycle path does plain integer arithmetic on this
// struct — no locks, no allocations; the shared profiler is only
// touched once, at kernel drain.
type smPerf struct {
	p    *perfscope.Profiler
	wall bool

	census perfscope.Census
	phase  [perfscope.NumPhases]int64

	// Per-cycle activity marks, reset by censusCycle: counts of events
	// fired, bank transactions served, and collectors dispatched this
	// cycle. Any of them nonzero makes a zero-issue cycle
	// active-no-issue rather than skippable.
	fired      uint32
	bankOps    uint32
	dispatched uint32
	// inSkipRun tracks whether the previous cycle was skippable, so the
	// census counts maximal skip blocks (jump opportunities), not just
	// skippable cycles.
	inSkipRun bool
}

// newSMPerf builds the perfscope state for one SM.
func newSMPerf(p *perfscope.Profiler) *smPerf {
	return &smPerf{p: p, wall: p.WallClock()}
}

// begin opens a tick's timing window; it reports 0 when wall-clock
// profiling is off so lap becomes a no-op chain.
func (pf *smPerf) begin() int64 {
	if !pf.wall {
		return 0
	}
	return perfscope.Now()
}

// lap charges the time since t0 to the phase and returns the new mark.
func (pf *smPerf) lap(ph perfscope.Phase, t0 int64) int64 {
	if !pf.wall {
		return 0
	}
	t := perfscope.Now()
	pf.phase[ph] += t - t0
	return t
}

// censusCycle classifies the cycle that just ended. Priority order:
// issue wins; any serviced work (event fired, bank transaction, or
// collector dispatch) makes the cycle active; otherwise a pending event
// heap means the next state change is at a known cycle — exactly the
// jump an event-driven loop would take — and an empty heap means the
// release is not locally computable (another SM's barrier partner, or a
// genuinely idle tail).
func (s *sm) censusCycle() {
	pf := s.pf
	c := &pf.census
	c.SMCycles++
	skip := false
	switch {
	case s.issuedEpoch > 0:
		c.Busy++
	case pf.fired > 0 || pf.bankOps > 0 || pf.dispatched > 0:
		c.ActiveNoIssue++
	case len(s.events) > 0:
		c.Skippable++
		skip = true
		if !pf.inSkipRun {
			c.SkipRuns++
		}
	default:
		c.StalledUnknown++
	}
	pf.inSkipRun = skip
	pf.fired, pf.bankOps, pf.dispatched = 0, 0, 0
}

// foldPerf pushes this SM's accumulated census and phase timings into
// the shared profiler (called once, at kernel drain).
func (s *sm) foldPerf() {
	s.pf.p.Fold(s.pf.census, s.pf.phase)
}
