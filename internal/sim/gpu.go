package sim

import (
	"errors"
	"fmt"

	"pilotrf/internal/fault"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/stats"
)

// runState is the shared state of one kernel execution across SMs.
type runState struct {
	cfg   *Config
	kern  *kernel.Kernel
	stats *KernelStats

	warpCounter int
	nextCTA     int

	// telKernel is the recorder-scoped kernel sequence number stamped
	// into sampled time-series rows (0 when metrics are disabled).
	telKernel int64
	// enKernel is the ledger-scoped kernel sequence number stamped into
	// energy charges (0 when the ledger is disabled).
	enKernel int64

	// fatal, when set by a fault adjudication (retry exhaustion on an
	// uncorrectable error), aborts the kernel at the next cycle boundary.
	// The run still drains its observers — epochs flush, the ledger
	// closes, the recorder gets its final checksum — so the partial run
	// remains analyzable; only then does RunKernel surface the error.
	fatal error
}

func (r *runState) nextWarpID() int {
	id := r.warpCounter
	r.warpCounter++
	return id
}

// registerWarpHist enables per-warp access collection for a warp.
func (r *runState) registerWarpHist(globalID, numRegs int) {
	if r.stats.PerWarpHist == nil {
		r.stats.PerWarpHist = make(map[int]*stats.Histogram)
	}
	r.stats.PerWarpHist[globalID] = stats.NewHistogram(numRegs)
}

// countRegAccess records one warp-level operand access.
func (r *runState) countRegAccess(globalID int, reg isa.Reg) {
	r.stats.RegHist.Inc(int(reg))
	if h, ok := r.stats.PerWarpHist[globalID]; ok {
		h.Inc(int(reg))
	}
}

// ctaDone is called when an SM retires a CTA; the SM immediately pulls
// the next CTA from the grid if any remain.
func (r *runState) ctaDone(s *sm) {
	if r.nextCTA < r.kern.NumCTAs && s.freeWarpSlots() >= r.kern.WarpsPerCTA() && s.residentCTAs < s.ctaCapacity() {
		s.launchCTA(r.nextCTA)
		r.nextCTA++
	}
}

// GPU is the simulated chip.
type GPU struct {
	cfg Config
}

// New validates the configuration and returns a GPU. When both an energy
// ledger and a protection scheme are configured, the ledger is primed
// with the scheme's per-partition check-bit pricing so the protection
// overhead appears in the energy report and its conservation check.
func New(cfg Config) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Energy != nil {
		cfg.Energy.SetProtection(cfg.Protect.Mask(), fault.OverheadTable(cfg.RF.Design, cfg.Protect))
	}
	return &GPU{cfg: cfg}, nil
}

// Config returns the GPU configuration.
func (g *GPU) Config() Config { return g.cfg }

// RunKernel executes one kernel to completion and returns its statistics.
// SM state (pipelines, profiling hardware, swapping tables) is fresh per
// kernel, matching the paper's per-kernel profiling lifecycle.
func (g *GPU) RunKernel(k *kernel.Kernel) (KernelStats, error) {
	if err := k.Validate(); err != nil {
		return KernelStats{}, err
	}
	ks := KernelStats{
		Name:    k.Prog.Name,
		RegHist: stats.NewHistogram(k.Prog.NumRegs),
	}
	run := &runState{cfg: &g.cfg, kern: k, stats: &ks}
	if g.cfg.Metrics != nil {
		run.telKernel = g.cfg.Metrics.BeginKernel()
	}
	if g.cfg.Energy != nil {
		run.enKernel = g.cfg.Energy.BeginKernel()
	}
	if g.cfg.Record != nil {
		g.cfg.Record.Record(flightrec.Event{
			Cycle: 0, SM: -1, Kind: flightrec.KindKernelBegin, Warp: -1, PC: -1,
			A: uint64(k.NumCTAs), Detail: k.Prog.Name,
		})
	}

	sms := make([]*sm, g.cfg.NumSMs)
	for i := range sms {
		var err error
		sms[i], err = newSM(i, &g.cfg, run)
		if err != nil {
			return ks, err
		}
		if sms[i].ctaCapacity() < 1 {
			return ks, fmt.Errorf("sim: kernel %s does not fit on an SM (regs %d x warps %d)",
				k.Prog.Name, k.Prog.NumRegs, k.WarpsPerCTA())
		}
	}

	// Initial CTA fill, round-robin across SMs (breadth-first, as the
	// hardware CTA scheduler does).
	for filled := true; filled && run.nextCTA < k.NumCTAs; {
		filled = false
		for _, s := range sms {
			if run.nextCTA >= k.NumCTAs {
				break
			}
			if s.residentCTAs < s.ctaCapacity() && s.freeWarpSlots() >= k.WarpsPerCTA() {
				s.launchCTA(run.nextCTA)
				run.nextCTA++
				filled = true
			}
		}
	}

	var cycle int64
	for {
		busy := false
		for _, s := range sms {
			if s.busy() {
				busy = true
				s.tick()
			}
		}
		if !busy || run.fatal != nil {
			break
		}
		cycle++
		if cycle > g.cfg.MaxCycles {
			// Break instead of returning so the drain below still runs:
			// the aborted kernel keeps its cycle count, fault counters,
			// and final checksums — fault campaigns classify watchdog
			// aborts and need those.
			run.fatal = fmt.Errorf("sim: kernel %s exceeded %d cycles (deadlock?): %w",
				k.Prog.Name, g.cfg.MaxCycles, ErrCycleLimit)
			break
		}
	}

	ks.Cycles = cycle
	ks.IssueSlots = uint64(cycle) * uint64(g.cfg.MaxIssuePerCycle()) * uint64(g.cfg.NumSMs)

	// Flush the partial epoch each SM was in when the kernel drained so
	// the time series and the energy ledger cover every observed cycle,
	// and fold each SM's per-register access matrix into the heatmap.
	for _, s := range sms {
		if s.tel != nil {
			s.sampleEpoch()
		}
		if s.en != nil {
			s.flushEnergyEpoch()
			s.foldHeat()
			s.en.led.AddOverhead(s.en.overhead)
		}
		if s.inj != nil {
			ks.Fault.Add(*s.inj.Stats())
		}
		if s.rec != nil {
			// Final architectural-state checksum per SM, so even short
			// kernels carry at least one checksum to compare.
			s.recordChecksum()
		}
		if s.pf != nil {
			s.foldPerf()
		}
	}
	if g.cfg.Energy != nil {
		g.cfg.Energy.EndKernel(cycle)
	}
	if g.cfg.Record != nil {
		g.cfg.Record.Record(flightrec.Event{
			Cycle: cycle, SM: -1, Kind: flightrec.KindKernelEnd, Warp: -1, PC: -1,
			A: ks.WarpInstrs, Detail: k.Prog.Name,
		})
	}

	// Pilot fraction and adaptive statistics, averaged over SMs.
	var pilotFracs, lowFracs []float64
	for _, s := range sms {
		if s.ranPilot && cycle > 0 {
			pilotFracs = append(pilotFracs, float64(s.pilotFinish)/float64(cycle))
		}
		if a := s.rf.Adaptive(); a != nil {
			lowFracs = append(lowFracs, a.LowEpochFraction())
		}
		if s.rfcCache != nil {
			ks.RFC.Add(s.rfcCache.Stats())
		}
		if s.gate != nil {
			ks.Gating.Add(s.gate.Stats())
		}
	}
	ks.PilotFraction = stats.Mean(pilotFracs)
	ks.LowEpochFraction = stats.Mean(lowFracs)
	return ks, run.fatal
}

// ErrCycleLimit marks a kernel aborted by the MaxCycles watchdog; match
// it with errors.Is. Beyond genuine scheduler deadlocks, an injected
// fault that corrupts a loop counter or branch input can spin a kernel
// forever — the watchdog abort is how that runaway manifests, so fault
// campaigns treat it as corrupted execution rather than a harness
// failure.
var ErrCycleLimit = errors.New("cycle limit exceeded")

// RunKernels executes a sequence of kernels (a workload) back to back.
func (g *GPU) RunKernels(name string, kernels []kernel.Kernel) (RunStats, error) {
	rs := RunStats{Workload: name}
	for i := range kernels {
		ks, err := g.RunKernel(&kernels[i])
		// The aborted kernel's stats still carry its drained counters
		// (fault outcomes included), so keep them alongside the error.
		rs.Kernels = append(rs.Kernels, ks)
		if err != nil {
			return rs, fmt.Errorf("kernel %d: %w", i, err)
		}
	}
	return rs, nil
}
