// Package fincacti is a reduced-form re-implementation of the FinCACTI
// array model the paper uses to characterize register file partitions:
// per-access dynamic energy, leakage power, access time/cycles, and area,
// as functions of array size, banking, porting, supply voltage, and the
// FinFET back-gate mode.
//
// FinCACTI itself is a full CACTI derivative; here the decoder/wordline/
// bitline/sense stack is collapsed into power-law terms in bank size,
// supply voltage, and port count whose exponents are calibrated from the
// paper's own reported datapoints:
//
//   - Table IV: MRF 256KB@STV = 14.9 pJ / 33.8 mW, SRF 224KB@NTV =
//     7.03 pJ / 13.4 mW, FRF 32KB = 7.65 pJ (high) / 5.25 pJ (low) /
//     7.28 mW.
//   - Section V-D: a 6-register/warp RFC with (R2,W1) ports costs 0.37x
//     an MRF access; scaling to (R8,W4) costs 3x.
//   - Section III-B: swapping-table delay 105/95/55 ps at 22 nm CMOS,
//     16 nm CMOS, and 7 nm FinFET.
//   - Section V-A: baseline RF area 0.2 mm^2, proposed RF 0.214 mm^2.
//
// Voltage behaviour (delay blow-up at NTV, leakage ratio) is taken from
// the finfet device model rather than re-fit, so the two layers stay
// consistent.
package fincacti

import (
	"fmt"
	"math"

	"pilotrf/internal/finfet"
)

// Mode is the array's dynamic operating mode.
type Mode uint8

// Operating modes. ModeLowCap is the FRF's back-gate-disabled low-power
// mode: half the cell gate capacitance, slower cell read path.
const (
	ModeNormal Mode = iota
	ModeLowCap
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeLowCap {
		return "low"
	}
	return "high"
}

// CycleBudgetNS is the register-file pipeline stage budget in nanoseconds.
// The SM runs at 900 MHz (1.11 ns cycle); the RF read occupies a 0.17 ns
// slice of the operand-collection stage. An access that exceeds one budget
// occupies the bank for multiple cycles.
const CycleBudgetNS = 0.17

// Calibrated model constants. See the package comment for the anchors.
const (
	// refAccessPJ is the per-access energy of the reference array: one
	// 10.667 KB bank (256 KB / 24 banks) at STV with 1R+1W ports.
	refAccessPJ = 14.9
	// refBankKB is the reference bank size.
	refBankKB = 256.0 / 24.0
	// sizeExp is the bank-size exponent of dynamic energy.
	sizeExp = 0.320596
	// voltExp is the supply-voltage exponent of dynamic energy
	// (between V and V^2: part of the swing does not scale).
	voltExp = 1.747043
	// lowCapFactor is the dynamic-energy reduction in ModeLowCap.
	lowCapFactor = 0.686275
	// portExp is the port-count exponent of dynamic energy (and area),
	// relative to the 1R+1W reference.
	portExp = 1.509700
	// rfcCal absorbs the RFC's small-array optimizations (shared tag,
	// flip-flop based entries), anchored at the 0.37x datapoint.
	rfcCal = 0.46995
	// leakPerKBmW and leakPerBankMW are the STV leakage of cells and
	// per-bank periphery.
	leakPerKBmW   = 0.131934
	leakPerBankMW = 0.0010376
	// bgNetworkLeakMW is the leakage of the FRF's back-gate drive
	// network and mode-signal buffers (Figure 9).
	bgNetworkLeakMW = 3.0332
	// refAccessNS is the access time of a 1.333 KB bank (the FRF bank)
	// at STV in normal mode.
	refAccessNS = 0.08
	// delaySizeExp is the bank-size exponent of access time.
	delaySizeExp = 0.35
	// delayBankKB is the bank size anchoring refAccessNS.
	delayBankKB = 32.0 / 24.0
	// cellPathFrac is the fraction of the access path inside the cell
	// array, the only part slowed by the back-gate-off mode.
	cellPathFrac = 0.25
	// crossbarPJPerBank is the per-bank cost of a full crossbar that
	// lets a banked RFC serve all requests in one cycle (Section V-D).
	crossbarPJPerBank = 1.173
	// tagFactor scales the RFC tag-check energy relative to an RFC
	// data access.
	tagFactor = 0.15
)

// RFConfig describes one register file array (or partition).
type RFConfig struct {
	// SizeKB is the total capacity in kilobytes.
	SizeKB float64
	// Banks is the number of independently accessible banks.
	Banks int
	// ReadPorts and WritePorts are per-bank port counts.
	ReadPorts, WritePorts int
	// Vdd is the supply voltage in volts.
	Vdd float64
	// Mode selects the back-gate state of the cell array.
	Mode Mode
	// BackGateNetwork marks arrays wired for dual-mode operation (the
	// FRF): they pay the mode-buffer leakage overhead.
	BackGateNetwork bool
	// Device is the transistor model; nil selects the default 7 nm
	// FinFET.
	Device *finfet.Device
}

func (c RFConfig) device() *finfet.Device {
	if c.Device != nil {
		return c.Device
	}
	return defaultDevice
}

var defaultDevice = finfet.Default7nm()

func (c RFConfig) validate() {
	if c.SizeKB <= 0 || c.Banks <= 0 {
		panic(fmt.Sprintf("fincacti: invalid array %v KB / %d banks", c.SizeKB, c.Banks))
	}
	if c.ReadPorts < 0 || c.WritePorts < 0 {
		panic("fincacti: negative port count")
	}
	if c.Vdd <= 0 {
		panic("fincacti: non-positive Vdd")
	}
}

// BankKB returns the capacity of one bank.
func (c RFConfig) BankKB() float64 { return c.SizeKB / float64(c.Banks) }

func (c RFConfig) portFactor() float64 {
	ports := c.ReadPorts + c.WritePorts
	if ports == 0 {
		ports = 2 // default 1R+1W
	}
	return math.Pow(float64(ports)/2, portExp)
}

// AccessEnergyPJ returns the dynamic energy of one bank access in
// picojoules.
func (c RFConfig) AccessEnergyPJ() float64 {
	c.validate()
	e := refAccessPJ *
		math.Pow(c.BankKB()/refBankKB, sizeExp) *
		math.Pow(c.Vdd/finfet.STV, voltExp) *
		c.portFactor()
	if c.Mode == ModeLowCap {
		e *= lowCapFactor
	}
	return e
}

// LeakagePowerMW returns the total leakage power of the array in
// milliwatts. Leakage does not depend on the dynamic mode (the paper's
// Table IV lists 7.28 mW for both FRF modes) but arrays wired for
// dual-mode operation leak extra in the back-gate drive network.
func (c RFConfig) LeakagePowerMW() float64 {
	cells, periph := c.LeakageBreakdownMW()
	return cells + periph
}

// LeakageBreakdownMW splits leakage into the cell array (which
// register-gating techniques can switch off row by row) and the
// periphery (decoders, per-bank logic, and — for dual-mode arrays — the
// back-gate drive network), which stays on.
func (c RFConfig) LeakageBreakdownMW() (cells, periphery float64) {
	c.validate()
	d := c.device()
	ratio := (c.Vdd * d.IOff(c.Vdd, finfet.BackGateOn)) /
		(finfet.STV * d.IOff(finfet.STV, finfet.BackGateOn))
	cells = leakPerKBmW * c.SizeKB * ratio
	periphery = leakPerBankMW * float64(c.Banks) * ratio
	if c.BackGateNetwork {
		periphery += bgNetworkLeakMW * (c.SizeKB / 32.0)
	}
	return cells, periphery
}

// AccessTimeNS returns the bank access time in nanoseconds. Voltage
// scaling follows the device FO4 delay; in ModeLowCap only the cell-array
// fraction of the path is slowed (decoder and sensing stay at full drive)
// while its capacitance halves — netting the moderate penalty that makes
// the 2-cycle FRF_low worthwhile.
func (c RFConfig) AccessTimeNS() float64 {
	c.validate()
	d := c.device()
	base := refAccessNS * math.Pow(c.BankKB()/delayBankKB, delaySizeExp)
	voltFactor := d.FO4Delay(c.Vdd, finfet.BackGateOn) / d.FO4Delay(finfet.STV, finfet.BackGateOn)
	modeFactor := 1.0
	if c.Mode == ModeLowCap {
		cellPenalty := d.FO4Delay(c.Vdd, finfet.BackGateOff) / d.FO4Delay(c.Vdd, finfet.BackGateOn)
		modeFactor = (1 - cellPathFrac) + cellPathFrac*cellPenalty
	}
	return base * voltFactor * modeFactor
}

// AccessCycles returns the number of SM cycles a bank is occupied per
// access: the access time divided into CycleBudgetNS slices.
func (c RFConfig) AccessCycles() int {
	return int(math.Ceil(c.AccessTimeNS() / CycleBudgetNS))
}

// Area model constants, calibrated to the paper's 0.2 mm^2 baseline RF and
// 0.214 mm^2 proposed RF (Section V-A).
const (
	cellAreaF2   = 150.0    // 8T cell
	featureNM    = 7.0      // F
	areaOverhead = 12.97356 // operand-collector wiring, multi-bank periphery
	// bgWiringMM2PerKB is the back-gate routing + mode-buffer area per
	// KB of dual-mode array.
	bgWiringMM2PerKB = 0.014 / 32.0
)

// AreaMM2 returns the layout area of the array in mm^2.
func (c RFConfig) AreaMM2() float64 {
	c.validate()
	bits := c.SizeKB * 1024 * 8
	// 1 mm^2 = 1e12 nm^2.
	cellMM2 := cellAreaF2 * featureNM * featureNM / 1e12
	a := bits * cellMM2 * areaOverhead * c.portFactor()
	if c.BackGateNetwork {
		a += bgWiringMM2PerKB * c.SizeKB
	}
	return a
}

// Standard partition configurations from the paper (Kepler: 256 KB RF in
// 24 banks, 4 registers/warp x 64 warps x 128 bytes = 32 KB FRF).

// MRFConfig returns the monolithic 256 KB register file at the given
// supply voltage.
func MRFConfig(vdd float64) RFConfig {
	return RFConfig{SizeKB: 256, Banks: 24, ReadPorts: 1, WritePorts: 1, Vdd: vdd}
}

// FRFConfig returns the 32 KB fast partition (STV, dual-mode wiring).
func FRFConfig(mode Mode) RFConfig {
	return RFConfig{SizeKB: 32, Banks: 24, ReadPorts: 1, WritePorts: 1, Vdd: finfet.STV, Mode: mode, BackGateNetwork: true}
}

// SRFConfig returns the 224 KB slow partition (NTV).
func SRFConfig() RFConfig {
	return RFConfig{SizeKB: 224, Banks: 24, ReadPorts: 1, WritePorts: 1, Vdd: finfet.NTV}
}

// RFCConfig returns a register file cache holding entriesPerWarp registers
// for activeWarps warps (128 bytes per register), with the given banking
// and per-bank ports, backed by an MRF at mrfVdd.
func RFCConfig(entriesPerWarp, activeWarps, banks, readPorts, writePorts int) RFConfig {
	sizeKB := float64(entriesPerWarp*activeWarps*128) / 1024
	return RFConfig{
		SizeKB: sizeKB, Banks: banks,
		ReadPorts: readPorts, WritePorts: writePorts,
		Vdd: finfet.STV,
	}
}

// RFCAccessEnergyPJ returns the RFC data-access energy, including the
// small-array calibration factor.
func RFCAccessEnergyPJ(c RFConfig) float64 {
	return rfcCal * c.AccessEnergyPJ()
}

// RFCTagEnergyPJ returns the energy of one RFC tag check.
func RFCTagEnergyPJ(c RFConfig) float64 {
	return tagFactor * RFCAccessEnergyPJ(c)
}

// RFCBankedCrossbarEnergyPJ returns the access energy of a banked RFC
// with a full crossbar sized to serve every bank concurrently — the
// Section V-D result that an 8-banked RFC costs about as much per access
// as the MRF itself.
func RFCBankedCrossbarEnergyPJ(c RFConfig) float64 {
	return RFCAccessEnergyPJ(c) + crossbarPJPerBank*float64(c.Banks)
}

// Table4Row is one row of the paper's Table IV.
type Table4Row struct {
	Name           string
	AccessEnergyPJ float64
	LeakageMW      float64
	SizeKB         float64
	AccessCycles   int
}

// Table4 reproduces Table IV: the size, access energy, and leakage power
// of the partitions and the power-aggressive MRF baseline.
func Table4() []Table4Row {
	frfLow, frfHigh, srf, mrf := FRFConfig(ModeLowCap), FRFConfig(ModeNormal), SRFConfig(), MRFConfig(finfet.STV)
	return []Table4Row{
		{"FRF_low", frfLow.AccessEnergyPJ(), frfLow.LeakagePowerMW(), frfLow.SizeKB, frfLow.AccessCycles()},
		{"FRF_high", frfHigh.AccessEnergyPJ(), frfHigh.LeakagePowerMW(), frfHigh.SizeKB, frfHigh.AccessCycles()},
		{"SRF", srf.AccessEnergyPJ(), srf.LeakagePowerMW(), srf.SizeKB, srf.AccessCycles()},
		{"MRF", mrf.AccessEnergyPJ(), mrf.LeakagePowerMW(), mrf.SizeKB, mrf.AccessCycles()},
	}
}

// SwapTableTech identifies the implementation technology of the register
// swapping table.
type SwapTableTech uint8

// Technologies the paper evaluated the swapping table RTL in.
const (
	Tech22nmCMOS SwapTableTech = iota
	Tech16nmCMOS
	Tech7nmFinFET
)

// String returns the technology name.
func (t SwapTableTech) String() string {
	switch t {
	case Tech22nmCMOS:
		return "22nm CMOS"
	case Tech16nmCMOS:
		return "16nm CMOS"
	case Tech7nmFinFET:
		return "7nm FinFET"
	default:
		return fmt.Sprintf("TECH_%d", uint8(t))
	}
}

var swapTableBasePS = map[SwapTableTech]float64{
	Tech22nmCMOS:  105,
	Tech16nmCMOS:  95,
	Tech7nmFinFET: 55,
}

// SwapTableDelayPS returns the CAM search delay of a register swapping
// table with the given entry count, in picoseconds. The paper's RTL
// numbers (105/95/55 ps) are for the 8-entry table (top-4 registers).
func SwapTableDelayPS(tech SwapTableTech, entries int) float64 {
	if entries <= 0 {
		panic(fmt.Sprintf("fincacti: swap table with %d entries", entries))
	}
	base, ok := swapTableBasePS[tech]
	if !ok {
		panic(fmt.Sprintf("fincacti: unknown technology %d", uint8(tech)))
	}
	return base * (0.5 + 0.5*math.Log2(float64(entries))/3)
}
