package fincacti

import (
	"math"
	"testing"

	"pilotrf/internal/finfet"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %g, want %g (±%.1f%%)", name, got, want, relTol*100)
	}
}

// Table IV dynamic-energy anchors.
func TestTable4AccessEnergies(t *testing.T) {
	approx(t, "MRF access", MRFConfig(finfet.STV).AccessEnergyPJ(), 14.9, 0.01)
	approx(t, "SRF access", SRFConfig().AccessEnergyPJ(), 7.03, 0.01)
	approx(t, "FRF_high access", FRFConfig(ModeNormal).AccessEnergyPJ(), 7.65, 0.01)
	approx(t, "FRF_low access", FRFConfig(ModeLowCap).AccessEnergyPJ(), 5.25, 0.01)
}

// Table IV leakage anchors, and the text's percentages: FRF = 21.5% and
// SRF = 39.7% of the MRF leakage; together 39% savings.
func TestTable4Leakage(t *testing.T) {
	mrf := MRFConfig(finfet.STV).LeakagePowerMW()
	srf := SRFConfig().LeakagePowerMW()
	frf := FRFConfig(ModeNormal).LeakagePowerMW()
	approx(t, "MRF leakage", mrf, 33.8, 0.01)
	approx(t, "SRF leakage", srf, 13.4, 0.01)
	approx(t, "FRF leakage", frf, 7.28, 0.01)
	approx(t, "FRF share", frf/mrf, 0.215, 0.02)
	approx(t, "SRF share", srf/mrf, 0.397, 0.02)
	savings := 1 - (frf+srf)/mrf
	approx(t, "leakage savings", savings, 0.39, 0.03)
}

// FRF leakage must not depend on the dynamic mode (Table IV lists the
// same 7.28 mW for both rows).
func TestFRFLeakageModeIndependent(t *testing.T) {
	if FRFConfig(ModeLowCap).LeakagePowerMW() != FRFConfig(ModeNormal).LeakagePowerMW() {
		t.Error("FRF leakage differs between modes")
	}
}

// Access cycle assignments from the paper: FRF_high 1, FRF_low 2, SRF 3,
// MRF@STV 1, MRF@NTV 3.
func TestAccessCycles(t *testing.T) {
	cases := []struct {
		name string
		cfg  RFConfig
		want int
	}{
		{"FRF_high", FRFConfig(ModeNormal), 1},
		{"FRF_low", FRFConfig(ModeLowCap), 2},
		{"SRF", SRFConfig(), 3},
		{"MRF@STV", MRFConfig(finfet.STV), 1},
		{"MRF@NTV", MRFConfig(finfet.NTV), 3},
	}
	for _, c := range cases {
		if got := c.cfg.AccessCycles(); got != c.want {
			t.Errorf("%s cycles = %d (%.3f ns), want %d", c.name, got, c.cfg.AccessTimeNS(), c.want)
		}
	}
}

// The FRF_high access time reported in Section V-B is 0.08 ns.
func TestFRFAccessTime(t *testing.T) {
	approx(t, "FRF_high access time", FRFConfig(ModeNormal).AccessTimeNS(), 0.08, 0.01)
}

// RFC energy anchors from Section V-D: (R2,W1) = 0.37x MRF,
// (R8,W4) = 3x MRF.
func TestRFCPortScalingAnchors(t *testing.T) {
	mrf := MRFConfig(finfet.STV).AccessEnergyPJ()
	small := RFCConfig(6, 8, 8, 2, 1)
	big := RFCConfig(6, 8, 8, 8, 4)
	approx(t, "RFC (R2,W1) vs MRF", RFCAccessEnergyPJ(small)/mrf, 0.37, 0.01)
	approx(t, "RFC (R8,W4) vs MRF", RFCAccessEnergyPJ(big)/mrf, 3.0, 0.01)
}

// Section V-D: an 8-banked RFC with a full crossbar costs about as much
// per access as an MRF access.
func TestRFCBankedCrossbarNearMRF(t *testing.T) {
	mrf := MRFConfig(finfet.STV).AccessEnergyPJ()
	rfc := RFCConfig(6, 8, 8, 2, 1)
	approx(t, "8-banked crossbar RFC vs MRF", RFCBankedCrossbarEnergyPJ(rfc)/mrf, 1.0, 0.05)
}

func TestRFCTagCheaperThanData(t *testing.T) {
	rfc := RFCConfig(6, 8, 8, 2, 1)
	if RFCTagEnergyPJ(rfc) >= RFCAccessEnergyPJ(rfc) {
		t.Error("tag check should be cheaper than a data access")
	}
}

func TestRFCConfigSize(t *testing.T) {
	// 6 regs x 8 warps x 128 B = 6 KB.
	if got := RFCConfig(6, 8, 8, 2, 1).SizeKB; got != 6 {
		t.Errorf("RFC size = %g KB, want 6", got)
	}
	// 6 regs x 32 warps = 24 KB (Figure 13's largest config).
	if got := RFCConfig(6, 32, 24, 2, 1).SizeKB; got != 24 {
		t.Errorf("RFC size = %g KB, want 24", got)
	}
}

// Monotonicity properties of the energy model.
func TestEnergyMonotoneInSize(t *testing.T) {
	prev := 0.0
	for kb := 8.0; kb <= 512; kb *= 2 {
		e := (RFConfig{SizeKB: kb, Banks: 24, ReadPorts: 1, WritePorts: 1, Vdd: finfet.STV}).AccessEnergyPJ()
		if e <= prev {
			t.Fatalf("energy not increasing at %g KB", kb)
		}
		prev = e
	}
}

func TestEnergyMonotoneInVdd(t *testing.T) {
	prev := 0.0
	for _, v := range []float64{0.25, 0.3, 0.35, 0.4, 0.45, 0.5} {
		e := MRFConfig(v).AccessEnergyPJ()
		if e <= prev {
			t.Fatalf("energy not increasing at %g V", v)
		}
		prev = e
	}
}

func TestEnergyMonotoneInPorts(t *testing.T) {
	prev := 0.0
	for ports := 1; ports <= 8; ports++ {
		cfg := RFConfig{SizeKB: 6, Banks: 8, ReadPorts: ports, WritePorts: 1, Vdd: finfet.STV}
		e := cfg.AccessEnergyPJ()
		if e <= prev {
			t.Fatalf("energy not increasing at %d read ports", ports)
		}
		prev = e
	}
}

func TestPartitionEnergiesOrdered(t *testing.T) {
	frfLow := FRFConfig(ModeLowCap).AccessEnergyPJ()
	frfHigh := FRFConfig(ModeNormal).AccessEnergyPJ()
	srf := SRFConfig().AccessEnergyPJ()
	mrf := MRFConfig(finfet.STV).AccessEnergyPJ()
	if !(frfLow < frfHigh && srf < mrf && frfHigh < mrf) {
		t.Errorf("partition energy ordering violated: %g %g %g %g", frfLow, frfHigh, srf, mrf)
	}
}

// Area anchors: baseline 0.2 mm^2, proposed (FRF with back-gate wiring +
// SRF) 0.214 mm^2, under 10% overhead.
func TestAreaAnchors(t *testing.T) {
	base := MRFConfig(finfet.STV).AreaMM2()
	approx(t, "baseline RF area", base, 0.2, 0.01)
	proposed := FRFConfig(ModeNormal).AreaMM2() + SRFConfig().AreaMM2()
	approx(t, "proposed RF area", proposed, 0.214, 0.01)
	if ovh := proposed/base - 1; ovh >= 0.10 {
		t.Errorf("area overhead = %.1f%%, want < 10%%", ovh*100)
	}
}

// FRF is 12.5% of the RF capacity (32 of 256 KB).
func TestFRFShareOfCapacity(t *testing.T) {
	approx(t, "FRF capacity share", FRFConfig(ModeNormal).SizeKB/256, 0.125, 1e-9)
}

// Swapping table delays from Section III-B; the 7 nm delay must be below
// 10% of the 900 MHz cycle (111 ps).
func TestSwapTableDelays(t *testing.T) {
	approx(t, "22nm", SwapTableDelayPS(Tech22nmCMOS, 8), 105, 0.01)
	approx(t, "16nm", SwapTableDelayPS(Tech16nmCMOS, 8), 95, 0.01)
	approx(t, "7nm", SwapTableDelayPS(Tech7nmFinFET, 8), 55, 0.01)
	if d := SwapTableDelayPS(Tech7nmFinFET, 8); d > 111 {
		t.Errorf("7nm swap table delay %g ps exceeds 10%% of the cycle", d)
	}
}

func TestSwapTableDelayGrowsWithEntries(t *testing.T) {
	prev := 0.0
	for e := 2; e <= 64; e *= 2 {
		d := SwapTableDelayPS(Tech7nmFinFET, e)
		if d <= prev {
			t.Fatalf("delay not increasing at %d entries", e)
		}
		prev = d
	}
}

func TestSwapTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SwapTableDelayPS(Tech7nmFinFET, 0)
}

func TestTable4Complete(t *testing.T) {
	rows := Table4()
	if len(rows) != 4 {
		t.Fatalf("Table4 has %d rows", len(rows))
	}
	wantNames := []string{"FRF_low", "FRF_high", "SRF", "MRF"}
	wantSizes := []float64{32, 32, 224, 256}
	for i, row := range rows {
		if row.Name != wantNames[i] {
			t.Errorf("row %d = %s, want %s", i, row.Name, wantNames[i])
		}
		if row.SizeKB != wantSizes[i] {
			t.Errorf("%s size = %g, want %g", row.Name, row.SizeKB, wantSizes[i])
		}
	}
}

func TestValidatePanics(t *testing.T) {
	bad := []RFConfig{
		{SizeKB: 0, Banks: 24, Vdd: finfet.STV},
		{SizeKB: 32, Banks: 0, Vdd: finfet.STV},
		{SizeKB: 32, Banks: 24, Vdd: 0},
		{SizeKB: 32, Banks: 24, Vdd: finfet.STV, ReadPorts: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			cfg.AccessEnergyPJ()
		}()
	}
}

func TestModeString(t *testing.T) {
	if ModeNormal.String() != "high" || ModeLowCap.String() != "low" {
		t.Error("mode names wrong")
	}
	if Tech7nmFinFET.String() != "7nm FinFET" {
		t.Error("tech name wrong")
	}
}
