// Package benchjson converts `go test -bench` text output into a
// machine-readable JSON report. The root bench_test.go harness reports
// every headline paper quantity via b.ReportMetric, so one parsed run
// is a complete scorecard snapshot; cmd/experiments -bench-json uses
// this package to regenerate BENCH_PR2.json.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Schema identifies the JSON layout this package writes.
const Schema = "pilotrf-bench/v1"

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark function name without the -GOMAXPROCS
	// suffix (e.g. "BenchmarkFigure11_DynamicEnergy").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when the line has none).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every custom b.ReportMetric value keyed by its
	// unit string (e.g. "saving-pct(paper:54)" -> 53.7).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full harness snapshot written as JSON.
type Report struct {
	// Schema is always the package Schema constant.
	Schema string `json:"schema"`
	// Command is the command line that produced the parsed output.
	Command string `json:"command"`
	// Benchmarks are the parsed result lines in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ParseLine parses one `go test -bench` result line. The second return
// is false for non-benchmark lines (headers, PASS, ok, metadata).
func ParseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if unit := fields[i+1]; unit == "ns/op" {
			b.NsPerOp = v
		} else {
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// Parse reads `go test -bench` output and returns every benchmark line.
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if b, ok := ParseLine(sc.Text()); ok {
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// NewReport wraps parsed benchmarks with the schema tag and the
// producing command line.
func NewReport(command string, benchmarks []Benchmark) Report {
	return Report{Schema: Schema, Command: command, Benchmarks: benchmarks}
}

// Write renders the report as indented JSON.
func (r Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses a report written by Write, validating the schema tag.
func Read(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("benchjson: %w", err)
	}
	if rep.Schema != Schema {
		return Report{}, fmt.Errorf("benchjson: schema %q, want %q", rep.Schema, Schema)
	}
	return rep, nil
}

// Index maps a report's benchmarks by name, returning an error naming
// the first duplicate. Duplicate benchmark names would make one result
// silently win over the other in any by-name comparison, so consumers
// that gate on reports (benchdiff, the history store) must reject them.
func Index(r Report) (map[string]Benchmark, error) {
	m := make(map[string]Benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		if _, ok := m[b.Name]; ok {
			return nil, fmt.Errorf("benchjson: duplicate benchmark %q", b.Name)
		}
		m[b.Name] = b
	}
	return m, nil
}

// ReadFile loads a report from disk.
func ReadFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	rep, err := Read(f)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
