package benchjson

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
)

// FuzzRead hammers the JSON report reader: no panic on any input, and
// any accepted report must carry the schema tag and survive a
// write/read round trip unchanged.
func FuzzRead(f *testing.F) {
	// The committed scorecard snapshots are the richest real corpora.
	for _, p := range []string{"../../BENCH_PR2.json", "../../BENCH_PR3.json"} {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(data)
		}
	}
	var buf bytes.Buffer
	if err := NewReport("go test -bench=.", []Benchmark{
		{Name: "BenchmarkSeed", Procs: 8, Iterations: 1, NsPerOp: 123.4,
			Metrics: map[string]float64{"saving-pct(paper:54)": 53.7}},
	}).Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"schema":"pilotrf-bench/v1","command":"x","benchmarks":[]}`))
	f.Add([]byte(`{"schema":"wrong/v0"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rep.Schema != Schema {
			t.Fatalf("accepted report with schema %q", rep.Schema)
		}
		var out bytes.Buffer
		if err := rep.Write(&out); err != nil {
			t.Fatalf("re-serializing an accepted report: %v", err)
		}
		rep2, err := Read(&out)
		if err != nil {
			t.Fatalf("round-trip of an accepted report failed: %v", err)
		}
		if !reflect.DeepEqual(rep, rep2) {
			t.Fatalf("round-trip drift:\n%+v\n%+v", rep, rep2)
		}
	})
}

// FuzzParse hammers the `go test -bench` text parser: no panic, and
// every line it accepts must carry a positive iteration count and
// re-parse identically (the parser is deterministic on its own output
// interpretation).
func FuzzParse(f *testing.F) {
	f.Add("BenchmarkFigure11_DynamicEnergy-8   1   123456 ns/op   53.7 saving-pct(paper:54)\n")
	f.Add("goos: linux\ngoarch: amd64\nBenchmarkX 10 5 ns/op\nPASS\nok  pilotrf 1.2s\n")
	f.Add("BenchmarkNoIters\n")
	f.Add("Benchmark-0 5\n")
	f.Add("BenchmarkHuge 9223372036854775807 1e308 ns/op\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		benches, err := Parse(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, b := range benches {
			if b.Name == "" || !strings.HasPrefix(b.Name, "Benchmark") {
				t.Fatalf("accepted benchmark with name %q", b.Name)
			}
			if b.Procs <= 0 {
				t.Fatalf("accepted benchmark with procs %d", b.Procs)
			}
		}
		// Parsing the same input twice must agree exactly.
		again, err := Parse(strings.NewReader(data))
		if err != nil || !reflect.DeepEqual(benches, again) {
			t.Fatalf("reparse drift (err %v)", err)
		}
	})
}
