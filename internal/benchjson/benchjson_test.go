package benchjson

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pilotrf
cpu: some cpu
BenchmarkFigure11_DynamicEnergy-8   	       1	123456789 ns/op	        53.70 saving-pct(paper:54)	        47.10 ntv-saving-pct(paper:47)
BenchmarkLeakageSavings   	    5000	    250000 ns/op	        39.00 saving-pct(paper:39)
PASS
ok  	pilotrf	4.2s
`

func TestParseLine(t *testing.T) {
	b, ok := ParseLine("BenchmarkFigure11_DynamicEnergy-8   	       1	123456789 ns/op	        53.70 saving-pct(paper:54)")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if b.Name != "BenchmarkFigure11_DynamicEnergy" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 1 || b.NsPerOp != 123456789 {
		t.Errorf("iterations/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if got := b.Metrics["saving-pct(paper:54)"]; got != 53.70 {
		t.Errorf("metric = %v, want 53.70", got)
	}

	for _, line := range []string{"PASS", "ok  \tpilotrf\t4.2s", "goos: linux", ""} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("non-benchmark line %q parsed as benchmark", line)
		}
	}
}

func TestParseAndReport(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(bs))
	}
	if bs[1].Name != "BenchmarkLeakageSavings" || bs[1].Procs != 1 {
		t.Errorf("second benchmark = %+v", bs[1])
	}

	var sb strings.Builder
	rep := NewReport("go test -bench=.", bs)
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "` + Schema + `"`, `"command"`, `"ns_per_op"`, "saving-pct(paper:39)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON report missing %s", want)
		}
	}
}
