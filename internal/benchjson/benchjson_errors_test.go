package benchjson

import (
	"strings"
	"testing"
)

// TestParseLineMalformed covers the parser's reject paths: benchmark
// lines with unparseable numbers must be dropped, not mis-parsed.
func TestParseLineMalformed(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"non-numeric iterations", "BenchmarkX abc 100 ns/op"},
		{"non-numeric metric value", "BenchmarkX 1 oops ns/op"},
		{"non-numeric later metric", "BenchmarkX 1 100 ns/op bad saving-pct"},
		{"name only", "BenchmarkX"},
		{"empty", ""},
		{"not a benchmark", "ok  \tpilotrf\t4.2s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if b, ok := ParseLine(tc.line); ok {
				t.Fatalf("malformed line parsed as %+v", b)
			}
		})
	}
}

// TestParseLineTruncated: a result line cut off mid-pair keeps the
// pairs before the cut (go test output is flushed line-buffered, so a
// trailing odd field means the unit was lost, not the value).
func TestParseLineTruncated(t *testing.T) {
	b, ok := ParseLine("BenchmarkX 2 100 ns/op 53.7")
	if !ok {
		t.Fatal("truncated line rejected entirely")
	}
	if b.NsPerOp != 100 || b.Iterations != 2 {
		t.Errorf("parsed %+v", b)
	}
	if len(b.Metrics) != 0 {
		t.Errorf("dangling value invented a metric: %v", b.Metrics)
	}
}

// TestParseNegativeProcsSuffix: a trailing -0 or -(-1) must not be
// treated as a GOMAXPROCS suffix.
func TestParseProcsSuffixEdgeCases(t *testing.T) {
	b, ok := ParseLine("BenchmarkX-0 1 100 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkX-0" || b.Procs != 1 {
		t.Errorf("(-0 suffix) name/procs = %q/%d", b.Name, b.Procs)
	}
	b, ok = ParseLine("Benchmark-8 1 100 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Procs != 8 {
		t.Errorf("(-8 suffix) procs = %d, want 8", b.Procs)
	}
}

// TestParseOverlongLine: a line past the scanner's 1 MiB cap must
// surface as an error, not as silently truncated output.
func TestParseOverlongLine(t *testing.T) {
	long := "BenchmarkX 1 100 ns/op " + strings.Repeat("x", 2<<20) + "\n"
	if _, err := Parse(strings.NewReader(long)); err == nil {
		t.Fatal("2 MiB line parsed without error")
	}
}

// TestParseSkipsGarbageBetweenResults: interleaved non-benchmark noise
// (build output, t.Log lines) must not derail the surrounding results.
func TestParseSkipsGarbageBetweenResults(t *testing.T) {
	input := "BenchmarkA 1 100 ns/op\n" +
		"some stray log line\n" +
		"BenchmarkB notanumber 100 ns/op\n" + // malformed: dropped
		"BenchmarkC 3 50 ns/op 1.5 cycles\n"
	bs, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[0].Name != "BenchmarkA" || bs[1].Name != "BenchmarkC" {
		t.Fatalf("parsed %+v", bs)
	}
	if bs[1].Metrics["cycles"] != 1.5 {
		t.Errorf("metrics = %v", bs[1].Metrics)
	}
}

// TestReadErrors covers the report reader's error paths.
func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "benchjson"},
		{"not json", "{broken", "benchjson"},
		{"truncated json", `{"schema":"pilotrf-bench/v1","benchmarks":[{"name":`, "benchjson"},
		{"wrong schema", `{"schema":"other/v2"}`, "schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadRoundTrip: Write then Read preserves the report.
func TestReadRoundTrip(t *testing.T) {
	rep := NewReport("go test -bench=.", []Benchmark{
		{Name: "BenchmarkA", Procs: 1, Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"cycles": 500}},
	})
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Benchmarks) != 1 || got.Benchmarks[0].Metrics["cycles"] != 500 {
		t.Fatalf("round trip: %+v", got)
	}
}
