package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds, matching the
// conventional Prometheus client defaults: they span 5 ms to 10 s, which
// covers everything from a /healthz round trip to a full campaign job
// admission on a loaded pool.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution metric. Bucket upper bounds
// are fixed at construction; Observe is a handful of atomic operations
// with no allocation, safe for concurrent use. The implicit final bucket
// catches every observation above the last bound (the "+Inf" bucket of
// Prometheus exposition).
type Histogram struct {
	// bounds are the inclusive upper bounds, strictly increasing and
	// finite; counts has one extra slot for the overflow bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram returns a histogram over the given inclusive upper
// bounds. It panics unless the bounds are finite and strictly
// increasing, and at least one bound is given — histogram shape is a
// programming decision, not an input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: histogram bound %d is %v", i, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d (%g <= %g)",
				i, b, bounds[i-1]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one sample. The hot path is a linear scan over the
// bounds (histograms are small by construction) plus three atomics; it
// never allocates.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Sample implements Metric with the observation count; Snapshot expands
// histograms into _count/_sum/quantile points instead of using this
// directly.
func (h *Histogram) Sample() float64 { return float64(h.count.Load()) }

// Buckets returns the bucket upper bounds and a snapshot of the
// per-bucket counts; the final count is the overflow ("+Inf") bucket, so
// len(counts) == len(bounds)+1. Counts are non-cumulative.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-quantile (q in [0,1], clamped) by linear
// interpolation within the bucket that crosses the rank, the same
// estimate Prometheus' histogram_quantile computes. An empty histogram
// reports 0; ranks landing in the overflow bucket report the highest
// finite bound (the estimate is a lower bound there).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c < rank || c == 0 {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		return lower + (h.bounds[i]-lower)*(rank-cum)/c
	}
	return h.bounds[len(h.bounds)-1]
}

// Histogram returns the histogram with the given name, creating it with
// the given bounds on first use. It panics if the name is already bound
// to a non-histogram metric. The bounds of an existing histogram are
// kept; callers registering the same name must agree on shape.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q is a %T, not a histogram", name, m))
		}
		return h
	}
	h := NewHistogram(bounds)
	r.metrics[name] = h
	return h
}
