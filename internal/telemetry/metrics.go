// Package telemetry is the simulator's observation layer: a lightweight
// metrics registry (atomic counters and gauges, allocation-free on the
// hot path), epoch-resolution time series with CSV export, the
// stall-cycle attribution taxonomy, and an optional expvar/pprof live
// endpoint for long sweeps.
//
// The package is deliberately free of simulator dependencies — the sim
// package imports telemetry, never the reverse — so the same primitives
// can serve future subsystems (memory hierarchy, interconnect) without
// import cycles.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric is a named scalar sample source held by a Registry.
type Metric interface {
	// Sample returns the metric's current value.
	Sample() float64
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use; Add is a single atomic instruction, safe for concurrent use
// and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Sample implements Metric.
func (c *Counter) Sample() float64 { return float64(c.v.Load()) }

// Gauge is an instantaneous signed metric (queue depth, mode bit). The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Sample implements Metric.
func (g *Gauge) Sample() float64 { return float64(g.v.Load()) }

// Registry is a named collection of metrics. Registration takes a lock;
// updating a registered metric touches only its own atomic, so the
// simulator resolves counters once at setup and pays nothing per cycle.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// Counter returns the counter with the given name, creating it on first
// use. It panics if the name is already bound to a non-counter metric.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q is a %T, not a counter", name, m))
		}
		return c
	}
	c := &Counter{}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// It panics if the name is already bound to a non-gauge metric.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q is a %T, not a gauge", name, m))
		}
		return g
	}
	g := &Gauge{}
	r.metrics[name] = g
	return g
}

// Point is one named sample from a registry snapshot.
type Point struct {
	Name  string
	Value float64
}

// Snapshot returns every metric's current value, sorted by name.
// Histograms expand into derived points — name_count, name_sum, and the
// p50/p95/p99 quantile estimates — so scalar consumers (expvar, the JSON
// metrics page, WriteText) see finite numbers, never bucket vectors.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, len(r.metrics))
	for name, m := range r.metrics {
		if h, ok := m.(*Histogram); ok {
			out = append(out,
				Point{Name: name + "_count", Value: float64(h.Count())},
				Point{Name: name + "_sum", Value: h.Sum()},
				Point{Name: name + "_p50", Value: h.Quantile(0.50)},
				Point{Name: name + "_p95", Value: h.Quantile(0.95)},
				Point{Name: name + "_p99", Value: h.Quantile(0.99)},
			)
			continue
		}
		out = append(out, Point{Name: name, Value: m.Sample()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Map returns the snapshot as a name-to-value map (the shape expvar
// serves).
func (r *Registry) Map() map[string]float64 {
	out := make(map[string]float64)
	for _, p := range r.Snapshot() {
		out[p.Name] = p.Value
	}
	return out
}

// WriteText dumps the snapshot as "name value" lines, one per metric.
func (r *Registry) WriteText(w io.Writer) error {
	for _, p := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %g\n", p.Name, p.Value); err != nil {
			return err
		}
	}
	return nil
}
