package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObserveBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 108.0; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets shape bounds=%d counts=%d", len(bounds), len(counts))
	}
	// le=1 holds {0.5, 1}; le=2 holds {1.5, 2}; le=5 holds {3}; +Inf {100}.
	want := []uint64{2, 2, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: quantiles report 0, not NaN — the snapshot path
	// marshals them into JSON, which rejects NaN.
	h := NewHistogram([]float64{1, 2})
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	// Single bucket: every rank interpolates inside [0, bound].
	h = NewHistogram([]float64{10})
	h.Observe(4)
	h.Observe(6)
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("single-bucket median = %g, want 5 (interpolated)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("single-bucket p100 = %g, want 10", got)
	}

	// Overflow bucket: ranks past the last finite bound clamp to it.
	h = NewHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(60)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want 2 (highest finite bound)", got)
	}

	// Out-of-range q clamps instead of extrapolating.
	h = NewHistogram([]float64{4})
	h.Observe(2)
	if got := h.Quantile(-1); got != 0 {
		t.Errorf("Quantile(-1) = %g, want 0", got)
	}
	if got := h.Quantile(7); got != 4 {
		t.Errorf("Quantile(7) = %g, want 4", got)
	}

	// Interpolation across multiple buckets lands in the right one.
	h = NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 3.5} {
		h.Observe(v)
	}
	if got := h.Quantile(0.75); got < 2 || got > 4 {
		t.Errorf("p75 = %g, want within bucket (2,4]", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	cases := [][]float64{
		{},
		{1, 1},
		{2, 1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, bounds := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race in CI): the total count and sum must come
// out exact, proving Observe's atomics don't lose updates.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*per); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	var wantSum float64
	for i := 0; i < per; i++ {
		wantSum += float64(i%100) / 100
	}
	wantSum *= goroutines
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	_, counts := h.Buckets()
	var n uint64
	for _, c := range counts {
		n += c
	}
	if n != uint64(goroutines*per) {
		t.Errorf("bucket counts sum to %d, want %d", n, goroutines*per)
	}
}

// TestHistogramObserveZeroAlloc pins the hot path: recording a sample
// allocates nothing.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(DefBuckets)
	if a := testing.AllocsPerRun(1000, func() { h.Observe(0.042) }); a != 0 {
		t.Errorf("Observe allocates %.1f per call, want 0", a)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	if h2 := r.Histogram("lat", []float64{9}); h2 != h {
		t.Error("second Histogram(lat) returned a different histogram")
	}
	r.Counter("hits")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Histogram over a counter name did not panic")
			}
		}()
		r.Histogram("hits", []float64{1})
	}()

	h.Observe(0.5)
	h.Observe(3)
	m := r.Map()
	if m["lat_count"] != 2 {
		t.Errorf("snapshot lat_count = %v, want 2", m["lat_count"])
	}
	if m["lat_sum"] != 3.5 {
		t.Errorf("snapshot lat_sum = %v, want 3.5", m["lat_sum"])
	}
	if _, ok := m["lat_p99"]; !ok {
		t.Error("snapshot missing lat_p99")
	}
	if _, ok := m["lat"]; ok {
		t.Error("snapshot leaked the raw histogram name as a scalar")
	}
}
