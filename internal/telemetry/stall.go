package telemetry

import (
	"fmt"
	"strings"
)

// StallCause classifies why an SM issued nothing in a cycle. Every
// zero-issue SM-cycle is charged to exactly one cause, so the breakdown
// provably sums to the SM's total stall cycles.
type StallCause uint8

// Stall causes, in attribution priority order (the classifier charges
// the first cause that applies; see the sim package for the exact
// predicates).
const (
	// StallCollectorFull: a warp was ready to issue but every operand
	// collector unit was occupied (structural hazard).
	StallCollectorFull StallCause = iota
	// StallMemoryPending: progress waits on an outstanding global
	// memory transaction of at least one resident warp.
	StallMemoryPending
	// StallBankConflict: no warp could issue while operand collection
	// was blocked on register bank service (queued bank reads).
	StallBankConflict
	// StallScoreboard: resident warps were blocked on register or
	// predicate dependencies of non-memory producers (execution
	// latency), or sat in a branch shadow.
	StallScoreboard
	// StallBarrier: the only blocked warps were waiting at a CTA
	// barrier.
	StallBarrier
	// StallPilotDrain: no live warps remain — the SM drains in-flight
	// writebacks after its last warp (pilot included) retired.
	StallPilotDrain
	// StallNoReadyWarp: none of the above — e.g. ready warps parked in
	// a two-level scheduler's pending pool or fetch-group stagger.
	StallNoReadyWarp

	// NumStallCauses is the number of distinct causes.
	NumStallCauses
)

// String returns the cause's taxonomy name.
func (c StallCause) String() string {
	switch c {
	case StallCollectorFull:
		return "collector-full"
	case StallMemoryPending:
		return "memory-pending"
	case StallBankConflict:
		return "bank-conflict"
	case StallScoreboard:
		return "scoreboard"
	case StallBarrier:
		return "barrier"
	case StallPilotDrain:
		return "pilot-drain"
	case StallNoReadyWarp:
		return "no-ready-warp"
	default:
		return fmt.Sprintf("stall-%d", uint8(c))
	}
}

// StallCauses returns every cause in attribution priority order.
func StallCauses() []StallCause {
	out := make([]StallCause, NumStallCauses)
	for i := range out {
		out[i] = StallCause(i)
	}
	return out
}

// StallBreakdown holds stall cycles per cause, indexed by StallCause.
type StallBreakdown [NumStallCauses]uint64

// Total returns the sum over all causes — by construction the number of
// zero-issue SM-cycles observed.
func (b *StallBreakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// AddBreakdown accumulates another breakdown into b.
func (b *StallBreakdown) AddBreakdown(o StallBreakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// Table renders the breakdown as aligned "cause cycles share%" rows
// (share of total stall cycles), one per cause, followed by a total row.
func (b *StallBreakdown) Table() string {
	total := b.Total()
	var sb strings.Builder
	for c, v := range b {
		share := 0.0
		if total > 0 {
			share = float64(v) / float64(total) * 100
		}
		fmt.Fprintf(&sb, "  %-15s %12d %6.2f%%\n", StallCause(c), v, share)
	}
	fmt.Fprintf(&sb, "  %-15s %12d %6.2f%%\n", "total", total, 100.0)
	return sb.String()
}
