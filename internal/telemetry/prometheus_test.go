package telemetry

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.stall.barrier":   "sim_stall_barrier",
		"serve_jobs_accepted": "serve_jobs_accepted",
		"9lives":              "_9lives",
		"a-b c/d":             "a_b_c_d",
		"":                    "_",
		"ok:subsystem":        "ok:subsystem",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition bytes for a registry
// with all three metric kinds: deterministic ordering, sanitized names,
// cumulative buckets, and the +Inf/_sum/_count trailer.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.issued").Add(7)
	r.Gauge("queue.depth").Set(-3)
	h := r.Histogram("lat_seconds", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 2
lat_seconds_bucket{le="2"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 10.75
lat_seconds_count 4
# TYPE queue_depth gauge
queue_depth -3
# TYPE sim_issued counter
sim_issued 7
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got\n%s--- want\n%s", sb.String(), want)
	}

	// Byte-determinism: a second render is identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Error("two renders of the same registry differ")
	}
}

// TestWriteTextGolden pins the plain-text dump, histogram points
// included, so ?format=text consumers keep a stable shape.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(5)
	h := r.Histogram("c.lat", []float64{1})
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `a.gauge 5
b.count 2
c.lat_count 1
c.lat_p50 0.5
c.lat_p95 0.95
c.lat_p99 0.99
c.lat_sum 0.5
`
	if sb.String() != want {
		t.Errorf("text dump mismatch:\n--- got\n%s--- want\n%s", sb.String(), want)
	}
}
