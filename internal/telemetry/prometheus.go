package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// PromName sanitizes a registry metric name into a legal Prometheus
// metric name: every character outside [a-zA-Z0-9_:] becomes '_' (the
// registry's dotted names turn into the conventional underscored form,
// e.g. "sim.stall.barrier" -> "sim_stall_barrier"), and a leading digit
// is prefixed with '_'.
func PromName(name string) string {
	out := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

// promFloat renders a sample value in the exposition format: the
// shortest representation that round-trips, with +Inf/-Inf/NaN spelled
// the way Prometheus parsers expect.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed series plus _sum and _count.
// Metrics are emitted in sorted (sanitized) name order, so equal
// registry contents produce byte-identical pages.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type named struct {
		name string
		m    Metric
	}
	r.mu.Lock()
	ms := make([]named, 0, len(r.metrics))
	for name, m := range r.metrics {
		ms = append(ms, named{PromName(name), m})
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	for _, nm := range ms {
		switch m := nm.m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n",
				nm.name, nm.name, promFloat(m.Sample())); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
				nm.name, nm.name, promFloat(m.Sample())); err != nil {
				return err
			}
		case *Histogram:
			bounds, counts := m.Buckets()
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", nm.name); err != nil {
				return err
			}
			cum := uint64(0)
			for i, b := range bounds {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					nm.name, promFloat(b), cum); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				nm.name, cum, nm.name, promFloat(m.Sum()), nm.name, m.Count()); err != nil {
				return err
			}
		default:
			// Future metric kinds degrade to untyped single samples.
			if _, err := fmt.Fprintf(w, "# TYPE %s untyped\n%s %s\n",
				nm.name, nm.name, promFloat(m.Sample())); err != nil {
				return err
			}
		}
	}
	return nil
}
