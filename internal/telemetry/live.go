package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// liveRegistry is the registry currently served by the expvar export.
// expvar names are process-global and cannot be re-published, so the
// published Func indirects through this pointer.
var liveRegistry atomic.Pointer[Registry]

var publishOnce sync.Once

// LiveServer is a running diagnostics endpoint: expvar at /debug/vars,
// pprof under /debug/pprof/, and the registry in Prometheus text
// exposition at /metrics (JSON with ?format=json, plain "name value"
// lines with ?format=text).
type LiveServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// NewMux returns the diagnostics routes — expvar at /debug/vars, pprof
// under /debug/pprof/, and reg's metrics at /metrics — as a mux other
// servers can graft application routes onto (cmd/pilotserve mounts its
// job API on the same listener). The /metrics page always reflects the
// most recently mounted registry: expvar's export is process-global, so
// there is one live registry per process.
func NewMux(reg *Registry) *http.ServeMux {
	liveRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("pilotrf", expvar.Func(func() interface{} {
			if r := liveRegistry.Load(); r != nil {
				return r.Map()
			}
			return map[string]float64{}
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		r := liveRegistry.Load()
		if r == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(r.Map())
		case "text":
			// The pre-Prometheus "name value" dump, kept for humans and
			// old scrapers.
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = r.WriteText(w)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
		}
	})
	return mux
}

// StartLive serves the registry's metrics on addr (e.g. ":8080") in a
// background goroutine and returns the running server. Pass the returned
// server's Close to stop it. Starting a second live server rebinds the
// expvar export to the new registry.
func StartLive(addr string, reg *Registry) (*LiveServer, error) {
	mux := NewMux(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	ls := &LiveServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return ls, nil
}

// Close shuts the endpoint down.
func (l *LiveServer) Close() error { return l.srv.Close() }
