package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("issued")
	c1.Add(5)
	if c2 := r.Counter("issued"); c2 != c1 {
		t.Error("second Counter lookup returned a different instance")
	}
	r.Gauge("depth").Set(3)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points, want 2", len(snap))
	}
	// Sorted by name: depth before issued.
	if snap[0].Name != "depth" || snap[0].Value != 3 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "issued" || snap[1].Value != 5 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge name collision")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	ts := NewTimeSeries("cycle", "sm", "issued")
	scratch := []float64{50, 0, 12}
	ts.Append(scratch)
	scratch[2] = 99 // caller reuse must not corrupt the stored row
	ts.Append([]float64{100, 0, 7.5})
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "cycle,sm,issued\n50,0,12\n100,0,7.5\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestTimeSeriesRowWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on row width mismatch")
		}
	}()
	NewTimeSeries("a", "b").Append([]float64{1})
}

func TestRecorderKernelSeq(t *testing.T) {
	r := NewRecorder(50, "kernel", "cycle")
	if got := r.BeginKernel(); got != 1 {
		t.Errorf("first kernel seq = %d", got)
	}
	if got := r.BeginKernel(); got != 2 {
		t.Errorf("second kernel seq = %d", got)
	}
	r.Append([]float64{2, 50})
	if r.Series().Len() != 1 {
		t.Errorf("series rows = %d, want 1", r.Series().Len())
	}
}

func TestStallBreakdownTotalAndTable(t *testing.T) {
	var b StallBreakdown
	b[StallScoreboard] = 30
	b[StallMemoryPending] = 70
	if b.Total() != 100 {
		t.Errorf("total = %d, want 100", b.Total())
	}
	var o StallBreakdown
	o[StallScoreboard] = 5
	b.AddBreakdown(o)
	if b[StallScoreboard] != 35 || b.Total() != 105 {
		t.Errorf("after add: %v", b)
	}
	tab := b.Table()
	for _, c := range StallCauses() {
		if !strings.Contains(tab, c.String()) {
			t.Errorf("table missing cause %s:\n%s", c, tab)
		}
	}
	if !strings.Contains(tab, "total") {
		t.Errorf("table missing total row:\n%s", tab)
	}
}

func TestStallCauseNames(t *testing.T) {
	want := map[StallCause]string{
		StallCollectorFull: "collector-full",
		StallMemoryPending: "memory-pending",
		StallBankConflict:  "bank-conflict",
		StallScoreboard:    "scoreboard",
		StallBarrier:       "barrier",
		StallPilotDrain:    "pilot-drain",
		StallNoReadyWarp:   "no-ready-warp",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
}

func TestLiveEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.issued").Add(123)
	ls, err := StartLive("127.0.0.1:0", reg)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ls.Close()

	resp, err := http.Get("http://" + ls.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "sim_issued 123") {
		t.Errorf("/metrics = %q, want Prometheus sample sim_issued 123", sb.String())
	}
	if !strings.Contains(sb.String(), "# TYPE sim_issued counter") {
		t.Errorf("/metrics = %q, want a # TYPE comment", sb.String())
	}

	text, err := http.Get("http://" + ls.Addr + "/metrics?format=text")
	if err != nil {
		t.Fatalf("GET /metrics?format=text: %v", err)
	}
	tb, _ := io.ReadAll(text.Body)
	text.Body.Close()
	if !strings.Contains(string(tb), "sim.issued 123") {
		t.Errorf("/metrics?format=text = %q, want sim.issued 123", tb)
	}

	vars, err := http.Get("http://" + ls.Addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	vars.Body.Close()
	if vars.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status = %d", vars.StatusCode)
	}
}
