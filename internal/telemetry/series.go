package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// TimeSeries is a fixed-schema table of float64 rows — the storage
// behind the per-epoch metric dumps. Appends copy the row, so callers
// may reuse their scratch slice.
type TimeSeries struct {
	cols   []string
	rows   [][]float64
	schema string
}

// NewTimeSeries returns an empty series with the given column names.
func NewTimeSeries(cols ...string) *TimeSeries {
	if len(cols) == 0 {
		panic("telemetry: time series without columns")
	}
	return &TimeSeries{cols: append([]string(nil), cols...)}
}

// Columns returns the column names.
func (ts *TimeSeries) Columns() []string { return ts.cols }

// SetSchema attaches a versioned schema tag to the series; WriteCSV
// emits it as a "# schema: <tag>" comment line ahead of the header so
// consumers can detect column-set revisions. Empty disables the line.
func (ts *TimeSeries) SetSchema(tag string) { ts.schema = tag }

// Schema returns the attached schema tag ("" when unset).
func (ts *TimeSeries) Schema() string { return ts.schema }

// Len returns the number of rows.
func (ts *TimeSeries) Len() int { return len(ts.rows) }

// Row returns row i (the backing slice; do not mutate).
func (ts *TimeSeries) Row(i int) []float64 { return ts.rows[i] }

// Append copies one row into the series. The row length must match the
// schema.
func (ts *TimeSeries) Append(row []float64) {
	if len(row) != len(ts.cols) {
		panic(fmt.Sprintf("telemetry: row of %d values against %d columns", len(row), len(ts.cols)))
	}
	ts.rows = append(ts.rows, append([]float64(nil), row...))
}

// WriteCSV writes the series as CSV: an optional "# schema:" comment
// (see SetSchema), a header line of column names, then one line per row.
// Values are formatted with minimal digits ('g').
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	var buf []byte
	if ts.schema != "" {
		buf = append(buf, "# schema: "...)
		buf = append(buf, ts.schema...)
		buf = append(buf, '\n')
	}
	for i, c := range ts.cols {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, c...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, row := range ts.rows {
		buf = buf[:0]
		for i, v := range row {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Recorder collects epoch-sampled time-series rows plus live aggregate
// counters. One recorder is shared by every SM of a run (and across the
// kernels of a workload); appends are serialized internally, and the
// registry's atomics make the live endpoint safe to read mid-run.
type Recorder struct {
	// Epoch is the sampling period in cycles.
	Epoch int

	mu        sync.Mutex
	series    *TimeSeries
	reg       *Registry
	kernelSeq int64
}

// NewRecorder returns a recorder sampling every epochCycles into a
// series with the given columns.
func NewRecorder(epochCycles int, cols ...string) *Recorder {
	if epochCycles <= 0 {
		panic(fmt.Sprintf("telemetry: recorder epoch of %d cycles", epochCycles))
	}
	return &Recorder{
		Epoch:  epochCycles,
		series: NewTimeSeries(cols...),
		reg:    NewRegistry(),
	}
}

// Registry returns the recorder's live aggregate metrics.
func (r *Recorder) Registry() *Registry { return r.reg }

// SetSchema attaches a versioned schema tag to the recorder's series
// (see TimeSeries.SetSchema).
func (r *Recorder) SetSchema(tag string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series.SetSchema(tag)
}

// Schema returns the series' schema tag ("" when unset).
func (r *Recorder) Schema() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series.Schema()
}

// Series returns the accumulated time series.
func (r *Recorder) Series() *TimeSeries {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series
}

// Append adds one sampled row.
func (r *Recorder) Append(row []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series.Append(row)
}

// BeginKernel advances and returns the kernel sequence number used in
// the series' kernel column, so rows from back-to-back kernels (whose
// cycle counters restart at zero) stay distinguishable.
func (r *Recorder) BeginKernel() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kernelSeq++
	return r.kernelSeq
}

// WriteCSV dumps the accumulated series as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series.WriteCSV(w)
}
