package energy

import (
	"strings"
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

func TestPerAccessTableMatchesDynamicPJ(t *testing.T) {
	parts := [4]uint64{100, 200, 300, 400}
	for _, d := range []regfile.Design{
		regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV,
		regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive,
	} {
		tab := PerAccessTable(d)
		var sum float64
		for p, n := range parts {
			sum += float64(n) * tab[p]
		}
		if want := DynamicPJ(d, parts); sum != want {
			t.Errorf("%v: table pricing %v != DynamicPJ %v", d, sum, want)
		}
	}
}

func TestLeakageComponentsSumToLeakageMW(t *testing.T) {
	for _, d := range []regfile.Design{
		regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV,
		regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive,
	} {
		comps := LeakageComponentsMW(d)
		var sum float64
		for _, c := range comps {
			sum += c
		}
		if want := LeakageMW(d); sum != want {
			t.Errorf("%v: components sum %v != LeakageMW %v", d, sum, want)
		}
	}
}

func TestLedgerPricesThroughAggregateFormulas(t *testing.T) {
	d := regfile.DesignPartitionedAdaptive
	led := NewLedger(d, 50)
	k := led.BeginKernel()
	if k != 1 {
		t.Fatalf("first kernel seq = %d", k)
	}
	led.AddEpoch(EpochCharge{Kernel: k, SM: 0, Cycle: 49, Cycles: 50,
		Accesses: [4]uint64{0, 10, 5, 20}})
	led.AddEpoch(EpochCharge{Kernel: k, SM: 1, Cycle: 72, Cycles: 73,
		Accesses: [4]uint64{0, 7, 0, 11}})
	led.AddHeat([]HeatCell{
		{Kernel: k, SM: 0, Warp: 0, Reg: isa.R(2), Accesses: [4]uint64{0, 17, 5, 0}},
		{Kernel: k, SM: 1, Warp: 3, Reg: isa.R(9), Accesses: [4]uint64{0, 0, 0, 31}},
	})
	led.EndKernel(73)

	parts := [4]uint64{0, 17, 5, 31}
	if err := led.CheckConservation(parts, 73); err != nil {
		t.Errorf("conservation: %v", err)
	}
	if got, want := led.DynamicPJ(), DynamicPJ(d, parts); got != want {
		t.Errorf("DynamicPJ = %v, want %v", got, want)
	}
	if got, want := led.LeakagePJ(), LeakagePJ(d, 73); got != want {
		t.Errorf("LeakagePJ = %v, want %v", got, want)
	}
	if got, want := led.TotalPJ(), led.DynamicPJ()+led.LeakagePJ(); got != want {
		t.Errorf("TotalPJ = %v, want %v", got, want)
	}
	rep := led.Report()
	if rep.DynamicPJ != led.DynamicPJ() || rep.Cycles != 73 {
		t.Errorf("Report = %+v", rep)
	}

	// Mismatches must be detected, not smoothed over.
	if err := led.CheckConservation([4]uint64{0, 17, 5, 30}, 73); err == nil {
		t.Error("access mismatch not detected")
	}
	if err := led.CheckConservation(parts, 72); err == nil {
		t.Error("cycle mismatch not detected")
	}
}

func TestLedgerDefaultEpochFollowsAdaptiveConfig(t *testing.T) {
	led := NewLedger(regfile.DesignPartitionedAdaptive, 0)
	if got, want := led.EpochCycles(), regfile.DefaultAdaptiveConfig().EpochCycles; got != want {
		t.Errorf("default epoch = %d, want %d", got, want)
	}
}

func TestLedgerExportShapes(t *testing.T) {
	d := regfile.DesignPartitioned
	led := NewLedger(d, 10)
	k := led.BeginKernel()
	led.AddEpoch(EpochCharge{Kernel: k, Cycle: 9, Cycles: 10, Accesses: [4]uint64{0, 3, 0, 4}})
	led.AddHeat([]HeatCell{{Kernel: k, Warp: 1, Reg: isa.R(0), Accesses: [4]uint64{0, 3, 0, 4}}})
	led.EndKernel(10)

	var sb strings.Builder
	if err := led.WriteEpochCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("epoch CSV lines = %d, want 3", len(lines))
	}
	if want := len(epochCSVColumns); strings.Count(lines[2], ",")+1 != want {
		t.Errorf("epoch row fields = %d, want %d", strings.Count(lines[2], ",")+1, want)
	}

	sb.Reset()
	if err := led.WriteHeatmapCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap CSV lines = %d, want 3", len(lines))
	}
	if want := len(heatmapCSVColumns); strings.Count(lines[2], ",")+1 != want {
		t.Errorf("heatmap row fields = %d, want %d", strings.Count(lines[2], ",")+1, want)
	}

	sb.Reset()
	if err := led.WriteHeatmapJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"schema"`) {
		t.Error("heatmap JSON missing schema field")
	}
}
