package energy

import (
	"math"
	"testing"

	"pilotrf/internal/fincacti"
	"pilotrf/internal/finfet"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %g, want %g (±%.1f%%)", name, got, want, relTol*100)
	}
}

func TestDynamicPJMonolithic(t *testing.T) {
	var parts [4]uint64
	parts[regfile.PartMRF] = 1000
	stv := DynamicPJ(regfile.DesignMonolithicSTV, parts)
	approx(t, "1000 MRF@STV accesses", stv, 1000*14.9, 0.01)
	ntv := DynamicPJ(regfile.DesignMonolithicNTV, parts)
	if ntv >= stv {
		t.Error("NTV dynamic energy not below STV")
	}
	// The paper: MRF@NTV saves ~47% of RF dynamic energy.
	approx(t, "NTV saving", Savings(ntv, stv), 0.47, 0.1)
}

func TestDynamicPJPartitioned(t *testing.T) {
	var parts [4]uint64
	parts[regfile.PartFRFHigh] = 100
	parts[regfile.PartFRFLow] = 50
	parts[regfile.PartSRF] = 200
	got := DynamicPJ(regfile.DesignPartitioned, parts)
	want := 100*7.65 + 50*5.25 + 200*7.03
	approx(t, "partitioned dynamic", got, want, 0.01)
}

// The headline leakage result: the partitioned RF saves ~39% of leakage.
func TestLeakageSavings(t *testing.T) {
	mrf := LeakageMW(regfile.DesignMonolithicSTV)
	part := LeakageMW(regfile.DesignPartitioned)
	approx(t, "MRF leakage", mrf, 33.8, 0.01)
	approx(t, "partitioned leakage saving", Savings(part, mrf), 0.39, 0.03)
	if LeakageMW(regfile.DesignPartitionedAdaptive) != part {
		t.Error("adaptive design should have the same leakage structure")
	}
	if LeakageMW(regfile.DesignMonolithicNTV) >= mrf {
		t.Error("NTV MRF should leak less than STV MRF")
	}
}

func TestLeakagePJScalesWithCycles(t *testing.T) {
	one := LeakagePJ(regfile.DesignMonolithicSTV, 900) // 900 cycles = 1000 ns
	approx(t, "leakage over 1 us", one, 33.8*1000, 0.01)
	if two := LeakagePJ(regfile.DesignMonolithicSTV, 1800); math.Abs(two-2*one) > 1e-6 {
		t.Error("leakage energy not linear in cycles")
	}
}

func TestForRunReport(t *testing.T) {
	var parts [4]uint64
	parts[regfile.PartMRF] = 10
	r := ForRun(regfile.DesignMonolithicSTV, parts, 90)
	if r.Cycles != 90 || r.Design != regfile.DesignMonolithicSTV {
		t.Error("report metadata wrong")
	}
	approx(t, "report total", r.TotalPJ(), r.DynamicPJ+r.LeakagePJ, 1e-12)
	if r.DynamicPJ <= 0 || r.LeakagePJ <= 0 {
		t.Error("report has non-positive energies")
	}
}

func TestRFCDynamicBreakdown(t *testing.T) {
	st := rfc.Stats{
		ReadHits: 100, ReadMiss: 50, Writes: 80, Fills: 50,
		DirtyWB: 20, TagChecks: 230,
	}
	cfg := fincacti.RFCConfig(6, 8, 8, 2, 1)
	b := RFCDynamic(st, cfg, finfet.NTV)
	if b.TagPJ <= 0 || b.DataPJ <= 0 || b.MRFPJ <= 0 {
		t.Fatalf("breakdown has empty components: %+v", b)
	}
	// Data accesses = 100 + 50 + 80 = 230.
	approx(t, "data energy", b.DataPJ, 230*fincacti.RFCAccessEnergyPJ(cfg), 1e-9)
	// MRF accesses = 50 misses + 20 writebacks at NTV.
	approx(t, "mrf energy", b.MRFPJ, 70*fincacti.MRFConfig(finfet.NTV).AccessEnergyPJ(), 1e-9)
	approx(t, "total", b.TotalPJ(), b.TagPJ+b.DataPJ+b.MRFPJ, 1e-12)
}

func TestBaselineDynamicPJ(t *testing.T) {
	approx(t, "baseline", BaselineDynamicPJ(100), 100*14.9, 0.01)
}

func TestSavingsEdgeCases(t *testing.T) {
	if Savings(50, 100) != 0.5 {
		t.Error("Savings(50,100) != 0.5")
	}
	if Savings(10, 0) != 0 {
		t.Error("Savings with zero baseline should be 0")
	}
	if Savings(150, 100) >= 0 {
		t.Error("more-expensive design should report negative savings")
	}
}

// Section V-B's comparison: the always-NTV monolithic RF saves ~47%,
// which the partitioned RF only beats thanks to the adaptive FRF low
// mode — without low-mode accesses the two are nearly tied.
func TestPartitionedVsNTVOrdering(t *testing.T) {
	var adaptive, highOnly, mrfOnly [4]uint64
	adaptive[regfile.PartFRFHigh] = 480 // 62% FRF with 22% of it in low mode
	adaptive[regfile.PartFRFLow] = 140
	adaptive[regfile.PartSRF] = 380
	highOnly[regfile.PartFRFHigh] = 620
	highOnly[regfile.PartSRF] = 380
	mrfOnly[regfile.PartMRF] = 1000
	withLow := DynamicPJ(regfile.DesignPartitionedAdaptive, adaptive)
	noLow := DynamicPJ(regfile.DesignPartitioned, highOnly)
	ntv := DynamicPJ(regfile.DesignMonolithicNTV, mrfOnly)
	if withLow >= ntv {
		t.Errorf("adaptive partitioned (%.0f pJ) should beat MRF@NTV (%.0f pJ)", withLow, ntv)
	}
	if withLow >= noLow {
		t.Error("low-mode accesses should reduce the partitioned energy")
	}
	// Without the adaptive mode the two designs are within a few percent.
	if ratio := noLow / ntv; ratio < 0.95 || ratio > 1.10 {
		t.Errorf("non-adaptive partitioned vs NTV ratio = %.3f, expected near parity", ratio)
	}
}

func TestGatedLeakage(t *testing.T) {
	full := GatedLeakageMW(regfile.DesignPartitioned, 1)
	part := LeakageMW(regfile.DesignPartitioned)
	// Full occupancy: gating changes nothing.
	approx(t, "gated@1.0", full, part, 1e-9)
	// Typical occupancy (Table I: ~16 of 63 registers): big extra saving.
	half := GatedLeakageMW(regfile.DesignPartitioned, 0.4)
	if half >= part {
		t.Errorf("gating at 40%% occupancy did not save: %.2f vs %.2f", half, part)
	}
	// Monotone in occupancy.
	prev := 0.0
	for _, occ := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := GatedLeakageMW(regfile.DesignMonolithicSTV, occ)
		if v <= prev {
			t.Fatalf("gated leakage not increasing at occupancy %g", occ)
		}
		prev = v
	}
}

func TestGatedLeakagePanics(t *testing.T) {
	for _, occ := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("occupancy %g did not panic", occ)
				}
			}()
			GatedLeakageMW(regfile.DesignPartitioned, occ)
		}()
	}
}

func TestLeakageUnknownDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeakageMW(regfile.Design(99))
}
