// Package energy converts the simulator's access counts and execution
// times into register file energy figures, using the FinCACTI-derived
// per-access energies and leakage powers (Table IV). It produces the
// quantities Figures 11 and 13 and the leakage analysis report: dynamic
// energy per design, leakage energy over the run, and savings normalized
// to the MRF@STV baseline.
package energy

import (
	"fmt"

	"pilotrf/internal/fincacti"
	"pilotrf/internal/finfet"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

// ClockGHz is the SM clock (the paper's 900 MHz Kepler clock).
const ClockGHz = 0.9

// perAccessPJ returns the per-access energies for the four partitions,
// indexed by regfile.Partition, given the MRF's operating voltage.
func perAccessPJ(mrfVdd float64) [4]float64 {
	var e [4]float64
	e[regfile.PartMRF] = fincacti.MRFConfig(mrfVdd).AccessEnergyPJ()
	e[regfile.PartFRFHigh] = fincacti.FRFConfig(fincacti.ModeNormal).AccessEnergyPJ()
	e[regfile.PartFRFLow] = fincacti.FRFConfig(fincacti.ModeLowCap).AccessEnergyPJ()
	e[regfile.PartSRF] = fincacti.SRFConfig().AccessEnergyPJ()
	return e
}

// mrfVdd returns the MRF supply for a design (only meaningful for the
// monolithic designs; partitioned designs never route to the MRF).
func mrfVdd(d regfile.Design) float64 {
	if d == regfile.DesignMonolithicNTV {
		return finfet.NTV
	}
	return finfet.STV
}

// DynamicPJ returns the RF dynamic energy in picojoules for a run's
// partition-access counts under the given design.
func DynamicPJ(d regfile.Design, parts [4]uint64) float64 {
	e := perAccessPJ(mrfVdd(d))
	var total float64
	for p, n := range parts {
		total += float64(n) * e[p]
	}
	return total
}

// PerAccessTable returns the per-access energies used by DynamicPJ for a
// design, indexed by regfile.Partition — the pricing table streaming
// attribution layers (the Ledger, the metrics recorder) apply per epoch.
// Pricing a set of access counts with this table and summing in
// partition order reproduces DynamicPJ bit-exactly.
func PerAccessTable(d regfile.Design) [4]float64 {
	return perAccessPJ(mrfVdd(d))
}

// LeakageComponentsMW splits LeakageMW over the partitions, indexed by
// regfile.Partition: monolithic designs leak entirely in the MRF entry;
// partitioned designs leak in the FRF (high-power entry — the adaptive
// low-cap mode changes access energy, not array leakage) and the SRF.
// Summing the components in partition order reproduces LeakageMW(d)
// bit-exactly.
func LeakageComponentsMW(d regfile.Design) [4]float64 {
	var c [4]float64
	switch d {
	case regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV:
		c[regfile.PartMRF] = LeakageMW(d)
	case regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive:
		c[regfile.PartFRFHigh] = fincacti.FRFConfig(fincacti.ModeNormal).LeakagePowerMW()
		c[regfile.PartSRF] = fincacti.SRFConfig().LeakagePowerMW()
	default:
		panic(fmt.Sprintf("energy: unknown design %v", d))
	}
	return c
}

// LeakageMW returns the total RF leakage power for a design in milliwatts.
func LeakageMW(d regfile.Design) float64 {
	switch d {
	case regfile.DesignMonolithicSTV:
		return fincacti.MRFConfig(finfet.STV).LeakagePowerMW()
	case regfile.DesignMonolithicNTV:
		return fincacti.MRFConfig(finfet.NTV).LeakagePowerMW()
	case regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive:
		return fincacti.FRFConfig(fincacti.ModeNormal).LeakagePowerMW() +
			fincacti.SRFConfig().LeakagePowerMW()
	default:
		panic(fmt.Sprintf("energy: unknown design %v", d))
	}
}

// LeakagePJ integrates a design's leakage power over a run of the given
// number of cycles at the SM clock.
func LeakagePJ(d regfile.Design, cycles int64) float64 {
	// mW x ns = pJ.
	nanos := float64(cycles) / ClockGHz
	return LeakageMW(d) * nanos
}

// GatedLeakagePJ integrates GatedLeakageMW over a run — the leakage of a
// liveness-gated design whose rows were powered on for the given
// fraction of row-cycles (the internal/design GREENER scheme's measured
// live fraction).
func GatedLeakagePJ(d regfile.Design, occupancy float64, cycles int64) float64 {
	nanos := float64(cycles) / ClockGHz
	return GatedLeakageMW(d, occupancy) * nanos
}

// GatedLeakageMW returns a design's leakage when the rows of unallocated
// registers are power-gated — the "Warped Register File" direction the
// paper cites as related work, modeled here as an extension. occupancy is
// the fraction of warp-register slots actually allocated by the resident
// kernel (Table I: on average ~16 of 63 registers per thread). Cell-array
// leakage scales with occupancy (plus a small always-on gating-network
// overhead); periphery leakage is unaffected.
func GatedLeakageMW(d regfile.Design, occupancy float64) float64 {
	if occupancy < 0 || occupancy > 1 {
		panic(fmt.Sprintf("energy: occupancy %g outside [0,1]", occupancy))
	}
	// Sleep transistors and gating control retain ~3% of the gated
	// rows' leakage.
	const gatingResidue = 0.03
	eff := occupancy + (1-occupancy)*gatingResidue
	gate := func(cfg fincacti.RFConfig) float64 {
		cells, periph := cfg.LeakageBreakdownMW()
		return cells*eff + periph
	}
	switch d {
	case regfile.DesignMonolithicSTV:
		return gate(fincacti.MRFConfig(finfet.STV))
	case regfile.DesignMonolithicNTV:
		return gate(fincacti.MRFConfig(finfet.NTV))
	case regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive:
		// The FRF is fully occupied by construction (it holds the
		// top-N registers of every resident warp); gating applies to
		// the SRF's unallocated rows.
		frf := fincacti.FRFConfig(fincacti.ModeNormal).LeakagePowerMW()
		return frf + gate(fincacti.SRFConfig())
	default:
		panic(fmt.Sprintf("energy: unknown design %v", d))
	}
}

// Report is the RF energy breakdown of one run.
type Report struct {
	Design    regfile.Design
	Cycles    int64
	DynamicPJ float64
	LeakageMW float64
	LeakagePJ float64
}

// TotalPJ returns dynamic plus leakage energy.
func (r Report) TotalPJ() float64 { return r.DynamicPJ + r.LeakagePJ }

// ForRun builds the energy report for a run's partition counts and
// duration under a design.
func ForRun(d regfile.Design, parts [4]uint64, cycles int64) Report {
	return Report{
		Design:    d,
		Cycles:    cycles,
		DynamicPJ: DynamicPJ(d, parts),
		LeakageMW: LeakageMW(d),
		LeakagePJ: LeakagePJ(d, cycles),
	}
}

// RFCBreakdown prices a register-file-cache run: tag checks, RFC data
// accesses (hits, fills, and result writes), and the MRF traffic behind it
// (read misses and dirty writebacks) at the MRF's operating voltage.
type RFCBreakdown struct {
	TagPJ  float64
	DataPJ float64
	MRFPJ  float64
}

// TotalPJ returns the summed RFC-path dynamic energy.
func (b RFCBreakdown) TotalPJ() float64 { return b.TagPJ + b.DataPJ + b.MRFPJ }

// RFCDynamic prices the RFC events of a run. cfg describes the RFC array;
// vdd is the backing MRF's supply voltage.
func RFCDynamic(st rfc.Stats, cfg fincacti.RFConfig, vdd float64) RFCBreakdown {
	dataAccesses := st.ReadHits + st.Fills + st.Writes
	mrfAccesses := st.MRFReads() + st.MRFWrites()
	return RFCBreakdown{
		TagPJ:  float64(st.TagChecks) * fincacti.RFCTagEnergyPJ(cfg),
		DataPJ: float64(dataAccesses) * fincacti.RFCAccessEnergyPJ(cfg),
		MRFPJ:  float64(mrfAccesses) * fincacti.MRFConfig(vdd).AccessEnergyPJ(),
	}
}

// BaselineDynamicPJ returns what the same accesses would have cost on the
// monolithic MRF@STV baseline — the normalization denominator used by
// Figures 11 and 13.
func BaselineDynamicPJ(totalAccesses uint64) float64 {
	return float64(totalAccesses) * fincacti.MRFConfig(finfet.STV).AccessEnergyPJ()
}

// Savings returns 1 - (design energy / baseline energy).
func Savings(designPJ, baselinePJ float64) float64 {
	if baselinePJ == 0 {
		return 0
	}
	return 1 - designPJ/baselinePJ
}
