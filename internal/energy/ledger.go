package energy

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

// EpochCharge attributes the RF accesses of one SM over one epoch to the
// four physical partitions. Charges are kept as integer access counts —
// not picojoules — so that summing epochs and pricing the total through
// DynamicPJ reproduces the aggregate energy figure bit-exactly (float
// summation order can never diverge, because no floats are summed until
// the single final conversion).
type EpochCharge struct {
	// Kernel is the ledger-scoped kernel sequence number (from
	// Ledger.BeginKernel), distinguishing back-to-back kernels whose
	// cycle counters restart at zero.
	Kernel int64
	// SM is the charging SM's id.
	SM int
	// Cycle is the last cycle of the epoch (kernel-local clock).
	Cycle int64
	// Cycles is the number of cycles the epoch covered (the final epoch
	// of a kernel may be partial).
	Cycles int64
	// Accesses counts bank transactions serviced per partition, indexed
	// by regfile.Partition.
	Accesses [4]uint64
}

// HeatCell attributes the RF accesses of one (SM, warp slot,
// architectural register) bucket over a kernel to the four physical
// partitions — one cell of the access/energy heatmap.
type HeatCell struct {
	// Kernel is the ledger-scoped kernel sequence number.
	Kernel int64
	// SM is the charging SM's id.
	SM int
	// Warp is the SM-local warp slot.
	Warp int
	// Reg is the architectural register.
	Reg isa.Reg
	// Accesses counts bank transactions per partition, indexed by
	// regfile.Partition.
	Accesses [4]uint64
}

// Total returns the cell's summed access count across partitions.
func (c HeatCell) Total() uint64 {
	var n uint64
	for _, v := range c.Accesses {
		n += v
	}
	return n
}

// EnergyPJ prices the cell against a per-access table (PerAccessTable).
func (c HeatCell) EnergyPJ(tab [4]float64) float64 {
	var pj float64
	for p, n := range c.Accesses {
		pj += float64(n) * tab[p]
	}
	return pj
}

// Ledger is a streaming energy-attribution sink: simulation code charges
// every serviced RF access to a (component, epoch, warp, architectural
// register) bucket as it happens, and the ledger prices the accumulated
// integer counts through the exact same formulas the aggregate energy
// report uses (DynamicPJ, LeakagePJ). The conservation invariant — the
// ledger's totals equal the end-of-run aggregate figures bit-exactly —
// therefore holds by construction and is property-tested across every
// workload and design.
//
// One ledger is shared by every SM of a run and across the kernels of a
// workload; epoch and heat appends are serialized internally and happen
// only at epoch/kernel boundaries, never on the per-access hot path.
type Ledger struct {
	mu           sync.Mutex
	design       regfile.Design
	epochCycles  int
	perAccess    [4]float64
	leakMW       float64
	kernelSeq    int64
	kernelCycles []int64
	epochs       []EpochCharge
	heat         []HeatCell

	// Protection overhead accounting (SetProtection): protected marks
	// partitions carrying an error-detection code, overheadPerAccess its
	// per-access check-bit energy, and overhead the integer count of
	// accesses that paid it. Counts stay integers until the single final
	// pricing, matching the conservation discipline of the main buckets.
	protected         [4]bool
	overheadPerAccess [4]float64
	overhead          [4]uint64
}

// EpochSchema tags the per-epoch energy CSV (WriteEpochCSV).
const EpochSchema = "pilotrf-energy-epochs/v1"

// HeatmapSchema tags the heatmap CSV (WriteHeatmapCSV).
const HeatmapSchema = "pilotrf-energy-heatmap/v1"

// NewLedger returns a ledger for a design, folding charges every
// epochCycles cycles (0 selects the adaptive FRF's default epoch so
// energy epochs line up with the power-mode decisions they explain).
func NewLedger(d regfile.Design, epochCycles int) *Ledger {
	if epochCycles <= 0 {
		epochCycles = regfile.DefaultAdaptiveConfig().EpochCycles
	}
	return &Ledger{
		design:      d,
		epochCycles: epochCycles,
		perAccess:   PerAccessTable(d),
		leakMW:      LeakageMW(d),
	}
}

// Design returns the design the ledger prices against.
func (l *Ledger) Design() regfile.Design { return l.design }

// EpochCycles returns the folding period in cycles.
func (l *Ledger) EpochCycles() int { return l.epochCycles }

// PerAccessPJ returns the per-access pricing table, indexed by
// regfile.Partition.
func (l *Ledger) PerAccessPJ() [4]float64 { return l.perAccess }

// LeakageMW returns the design's total RF leakage power.
func (l *Ledger) LeakageMW() float64 { return l.leakMW }

// SetProtection declares which partitions carry an error-protection
// code and what each protected access costs on top of its data access
// (fault.OverheadTable supplies the pricing). Subsequent AddOverhead
// charges accumulate against this table, and CheckConservation demands
// one overhead charge per access on every protected partition.
func (l *Ledger) SetProtection(protected [4]bool, overheadPerAccess [4]float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.protected = protected
	l.overheadPerAccess = overheadPerAccess
}

// ProtectedMask returns which partitions carry protection.
func (l *Ledger) ProtectedMask() [4]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.protected
}

// OverheadPerAccessPJ returns the per-access protection pricing table.
func (l *Ledger) OverheadPerAccessPJ() [4]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overheadPerAccess
}

// AddOverhead charges protection-overhead accesses per partition (one
// per protected access; an SM folds these in at kernel drain).
func (l *Ledger) AddOverhead(counts [4]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for p, n := range counts {
		l.overhead[p] += n
	}
}

// OverheadTotals returns the accumulated overhead access counts.
func (l *Ledger) OverheadTotals() [4]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overhead
}

// OverheadPJ prices the protection overhead: check-bit read/write energy
// summed in partition order, the same single-final-conversion discipline
// as DynamicPJ.
func (l *Ledger) OverheadPJ() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pj float64
	for p, n := range l.overhead {
		pj += float64(n) * l.overheadPerAccess[p]
	}
	return pj
}

// BeginKernel advances and returns the kernel sequence number stamped
// into subsequent charges.
func (l *Ledger) BeginKernel() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.kernelSeq++
	return l.kernelSeq
}

// EndKernel records a finished kernel's cycle count, the integration
// interval of its leakage charge.
func (l *Ledger) EndKernel(cycles int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.kernelCycles = append(l.kernelCycles, cycles)
}

// AddEpoch appends one SM-epoch charge.
func (l *Ledger) AddEpoch(e EpochCharge) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epochs = append(l.epochs, e)
}

// AddHeat appends a batch of per-register heat cells (one SM's kernel
// fold).
func (l *Ledger) AddHeat(cells []HeatCell) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.heat = append(l.heat, cells...)
}

// Epochs returns a copy of the accumulated epoch charges.
func (l *Ledger) Epochs() []EpochCharge {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]EpochCharge(nil), l.epochs...)
}

// HeatCells returns a copy of the accumulated heatmap cells.
func (l *Ledger) HeatCells() []HeatCell {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]HeatCell(nil), l.heat...)
}

// Kernels returns how many kernels have begun on the ledger.
func (l *Ledger) Kernels() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kernelSeq
}

// AccessTotals sums the epoch charges into per-partition access counts —
// the integer quantity DynamicPJ prices.
func (l *Ledger) AccessTotals() [4]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accessTotalsLocked()
}

func (l *Ledger) accessTotalsLocked() [4]uint64 {
	var parts [4]uint64
	for i := range l.epochs {
		for p, n := range l.epochs[i].Accesses {
			parts[p] += n
		}
	}
	return parts
}

// HeatTotals sums the heatmap cells into per-partition access counts;
// conservation requires it to equal AccessTotals.
func (l *Ledger) HeatTotals() [4]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var parts [4]uint64
	for i := range l.heat {
		for p, n := range l.heat[i].Accesses {
			parts[p] += n
		}
	}
	return parts
}

// TotalCycles sums the recorded kernel cycle counts — the run duration
// LeakagePJ integrates over.
func (l *Ledger) TotalCycles() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalCyclesLocked()
}

func (l *Ledger) totalCyclesLocked() int64 {
	var c int64
	for _, n := range l.kernelCycles {
		c += n
	}
	return c
}

// DynamicPJ prices the ledger's access totals — bit-exactly equal to
// the aggregate DynamicPJ of the same run.
func (l *Ledger) DynamicPJ() float64 {
	return DynamicPJ(l.design, l.AccessTotals())
}

// DynamicByPartitionPJ returns the dynamic energy charged to each
// partition. The components sum to DynamicPJ when added in partition
// order (the order DynamicPJ itself uses).
func (l *Ledger) DynamicByPartitionPJ() [4]float64 {
	parts := l.AccessTotals()
	var pj [4]float64
	for p, n := range parts {
		pj[p] = float64(n) * l.perAccess[p]
	}
	return pj
}

// LeakagePJ integrates the design's leakage over the recorded kernel
// cycles — bit-exactly equal to the aggregate LeakagePJ of the same run.
func (l *Ledger) LeakagePJ() float64 {
	return LeakagePJ(l.design, l.TotalCycles())
}

// TotalPJ returns dynamic plus leakage energy.
func (l *Ledger) TotalPJ() float64 { return l.DynamicPJ() + l.LeakagePJ() }

// Report renders the ledger as the aggregate Report shape.
func (l *Ledger) Report() Report {
	return ForRun(l.design, l.AccessTotals(), l.TotalCycles())
}

// CheckConservation verifies the ledger against a run's aggregate
// figures: the epoch charges and the heatmap must both sum to the run's
// partition-access counts, the recorded kernel cycles must sum to the
// run's total cycles, and the priced dynamic/leakage energies must equal
// the aggregate formulas bit-exactly. It returns nil when every
// invariant holds.
func (l *Ledger) CheckConservation(parts [4]uint64, cycles int64) error {
	if got := l.AccessTotals(); got != parts {
		return fmt.Errorf("energy: ledger epoch accesses %v != run accesses %v", got, parts)
	}
	if got := l.HeatTotals(); got != parts {
		return fmt.Errorf("energy: ledger heatmap accesses %v != run accesses %v", got, parts)
	}
	if got := l.TotalCycles(); got != cycles {
		return fmt.Errorf("energy: ledger cycles %d != run cycles %d", got, cycles)
	}
	if got, want := l.DynamicPJ(), DynamicPJ(l.design, parts); got != want {
		return fmt.Errorf("energy: ledger dynamic %v pJ != aggregate %v pJ", got, want)
	}
	if got, want := l.LeakagePJ(), LeakagePJ(l.design, cycles); got != want {
		return fmt.Errorf("energy: ledger leakage %v pJ != aggregate %v pJ", got, want)
	}
	// Protection conservation: every access to a protected partition pays
	// exactly one overhead charge; unprotected partitions pay none.
	overhead := l.OverheadTotals()
	protected := l.ProtectedMask()
	for p := range overhead {
		want := uint64(0)
		if protected[p] {
			want = parts[p]
		}
		if overhead[p] != want {
			return fmt.Errorf("energy: %s protection overhead %d charges != %d accesses (protected=%v)",
				regfile.Partition(p), overhead[p], want, protected[p])
		}
	}
	return nil
}

// epochCSVColumns is the WriteEpochCSV header.
var epochCSVColumns = []string{
	"kernel", "sm", "cycle", "cycles",
	"mrf", "frf_high", "frf_low", "srf",
	"e_mrf_pj", "e_frf_high_pj", "e_frf_low_pj", "e_srf_pj",
	"e_dyn_pj", "e_leak_pj",
}

// WriteEpochCSV dumps the epoch charges as CSV: a "# schema:" comment,
// a header, then one line per SM-epoch with raw access counts, their
// priced per-partition energies, the epoch's dynamic total, and the
// SM's leakage share over the epoch.
func (l *Ledger) WriteEpochCSV(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := []byte("# schema: " + EpochSchema + "\n")
	for i, c := range epochCSVColumns {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, c...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i := range l.epochs {
		e := &l.epochs[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, e.Kernel, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.SM), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Cycle, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Cycles, 10)
		var dyn float64
		for p, n := range e.Accesses {
			buf = append(buf, ',')
			buf = strconv.AppendUint(buf, n, 10)
			dyn += float64(n) * l.perAccess[p]
		}
		for p, n := range e.Accesses {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, float64(n)*l.perAccess[p], 'g', -1, 64)
		}
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, dyn, 'g', -1, 64)
		buf = append(buf, ',')
		leak := l.leakMW * float64(e.Cycles) / ClockGHz
		buf = strconv.AppendFloat(buf, leak, 'g', -1, 64)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// heatmapCSVColumns is the WriteHeatmapCSV header.
var heatmapCSVColumns = []string{
	"kernel", "sm", "warp", "reg",
	"mrf", "frf_high", "frf_low", "srf",
	"accesses", "energy_pj", "share",
}

// WriteHeatmapCSV dumps the per-register heatmap as CSV: a "# schema:"
// comment, a header, then one line per (kernel, SM, warp, register)
// cell with per-partition access counts, the cell's priced energy, and
// its share of the run's total dynamic energy.
func (l *Ledger) WriteHeatmapCSV(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := DynamicPJ(l.design, l.accessTotalsLocked())
	buf := []byte("# schema: " + HeatmapSchema + "\n")
	for i, c := range heatmapCSVColumns {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, c...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i := range l.heat {
		c := &l.heat[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, c.Kernel, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(c.SM), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(c.Warp), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(c.Reg), 10)
		for _, n := range c.Accesses {
			buf = append(buf, ',')
			buf = strconv.AppendUint(buf, n, 10)
		}
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, c.Total(), 10)
		pj := c.EnergyPJ(l.perAccess)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, pj, 'g', -1, 64)
		buf = append(buf, ',')
		share := 0.0
		if total > 0 {
			share = pj / total
		}
		buf = strconv.AppendFloat(buf, share, 'g', -1, 64)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// heatmapJSON is the wire shape of WriteHeatmapJSON.
type heatmapJSON struct {
	Schema         string             `json:"schema"`
	Design         string             `json:"design"`
	PerAccessPJ    map[string]float64 `json:"per_access_pj"`
	TotalDynamicPJ float64            `json:"total_dynamic_pj"`
	Cells          []heatmapCellJSON  `json:"cells"`
}

// heatmapCellJSON is one JSON heatmap cell.
type heatmapCellJSON struct {
	Kernel   int64             `json:"kernel"`
	SM       int               `json:"sm"`
	Warp     int               `json:"warp"`
	Reg      int               `json:"reg"`
	Accesses map[string]uint64 `json:"accesses"`
	Total    uint64            `json:"total"`
	EnergyPJ float64           `json:"energy_pj"`
}

// WriteHeatmapJSON dumps the heatmap as a single JSON document carrying
// the pricing table alongside the cells, so downstream tooling can
// re-price without consulting the simulator.
func (l *Ledger) WriteHeatmapJSON(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	doc := heatmapJSON{
		Schema:         "pilotrf-energy-heatmap-json/v1",
		Design:         l.design.String(),
		PerAccessPJ:    make(map[string]float64, 4),
		TotalDynamicPJ: DynamicPJ(l.design, l.accessTotalsLocked()),
		Cells:          make([]heatmapCellJSON, 0, len(l.heat)),
	}
	for p, e := range l.perAccess {
		doc.PerAccessPJ[regfile.Partition(p).String()] = e
	}
	for i := range l.heat {
		c := &l.heat[i]
		cell := heatmapCellJSON{
			Kernel: c.Kernel, SM: c.SM, Warp: c.Warp, Reg: int(c.Reg),
			Accesses: make(map[string]uint64, 4),
			Total:    c.Total(), EnergyPJ: c.EnergyPJ(l.perAccess),
		}
		for p, n := range c.Accesses {
			cell.Accesses[regfile.Partition(p).String()] = n
		}
		doc.Cells = append(doc.Cells, cell)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
