package finfet

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %g, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %g, want %g (±%.1f%%)", name, got, want, relTol*100)
	}
}

// Table III anchors: the calibrated I-V model must reproduce the paper's
// HSPICE-derived drive currents.
func TestIOnMatchesTable3(t *testing.T) {
	d := Default7nm()
	approx(t, "IOn(NTV, BG on)", d.IOn(NTV, BackGateOn), 7.505e-4, 0.005)
	approx(t, "IOn(STV, BG on)", d.IOn(STV, BackGateOn), 2.372e-3, 0.005)
	approx(t, "IOn(STV, BG off)", d.IOn(STV, BackGateOff), 2.427e-4, 0.005)
}

// The paper: enabling both gates gives ~9x the current of front-gate-only.
func TestBackGateCurrentRatio(t *testing.T) {
	d := Default7nm()
	ratio := d.IOn(STV, BackGateOn) / d.IOn(STV, BackGateOff)
	if ratio < 8 || ratio < 0 || ratio > 11 {
		t.Errorf("back-gate current ratio = %.2f, want ~9x", ratio)
	}
}

func TestIOnMonotoneInVdd(t *testing.T) {
	d := Default7nm()
	prev := 0.0
	for mv := 100; mv <= 600; mv += 10 {
		i := d.IOn(float64(mv)/1000, BackGateOn)
		if i <= prev {
			t.Fatalf("IOn not strictly increasing at %d mV", mv)
		}
		prev = i
	}
}

func TestIOnZeroAtZeroVdd(t *testing.T) {
	d := Default7nm()
	if got := d.IOn(0, BackGateOn); got != 0 {
		t.Errorf("IOn(0) = %g, want 0", got)
	}
}

// Figure 1's key property: NTV delay is ~3x STV delay.
func TestDelayRatioNTVisThree(t *testing.T) {
	d := Default7nm()
	approx(t, "NTV:STV delay ratio", d.DelayRatioNTV(), 3.0, 0.02)
}

func TestDelayDivergesBelowThreshold(t *testing.T) {
	d := Default7nm()
	sub := d.FO4Delay(0.20, BackGateOn)
	stv := d.FO4Delay(STV, BackGateOn)
	if sub/stv < 10 {
		t.Errorf("sub-threshold delay only %.1fx STV; Figure 1 shows a sharp blow-up", sub/stv)
	}
	// But it must remain finite (near-threshold is usable, unlike deep
	// sub-threshold).
	if math.IsInf(sub, 0) || math.IsNaN(sub) {
		t.Error("sub-threshold delay is not finite")
	}
}

func TestDelayMonotoneDecreasingInVdd(t *testing.T) {
	d := Default7nm()
	prev := math.Inf(1)
	for mv := 150; mv <= 550; mv += 10 {
		del := d.FO4Delay(float64(mv)/1000, BackGateOn)
		if del >= prev {
			t.Fatalf("delay not strictly decreasing at %d mV", mv)
		}
		prev = del
	}
}

func TestChainDelayScalesLinearly(t *testing.T) {
	d := Default7nm()
	one := d.ChainDelay(1, STV, BackGateOn)
	forty := d.ChainDelay(40, STV, BackGateOn)
	approx(t, "40-stage vs 1-stage", forty/one, 40, 1e-9)
}

func TestChainDelayPanicsOnZeroStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default7nm().ChainDelay(0, STV, BackGateOn)
}

func TestFigure1SweepShape(t *testing.T) {
	pts := Default7nm().Figure1Sweep()
	if len(pts) < 10 {
		t.Fatalf("sweep has %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Vdd <= pts[i-1].Vdd {
			t.Error("sweep voltages not increasing")
		}
		if pts[i].DelayNS >= pts[i-1].DelayNS {
			t.Errorf("delay not decreasing at %.2f V", pts[i].Vdd)
		}
	}
}

// Back-gate-off delay: weaker drive but half capacitance. The paper's
// FRF_low is a 2-cycle access vs 1-cycle FRF_high; the raw gate-delay
// penalty must be bounded (well under the ~9x current penalty).
func TestBackGateOffDelayPenaltyBounded(t *testing.T) {
	d := Default7nm()
	ratio := d.FO4Delay(STV, BackGateOff) / d.FO4Delay(STV, BackGateOn)
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("BG-off delay penalty = %.2fx, want moderate (1.5-6x)", ratio)
	}
}

func TestGateCapHalvesWithBackGateOff(t *testing.T) {
	d := Default7nm()
	approx(t, "Cg ratio", d.GateCap(BackGateOff)/d.GateCap(BackGateOn), 0.5, 1e-12)
}

func TestIOffGrowsWithVdd(t *testing.T) {
	d := Default7nm()
	if d.IOff(NTV, BackGateOn) >= d.IOff(STV, BackGateOn) {
		t.Error("DIBL should make leakage grow with Vdd")
	}
}

func TestIOffBackGateOffReduced(t *testing.T) {
	d := Default7nm()
	if d.IOff(STV, BackGateOff) >= d.IOff(STV, BackGateOn) {
		t.Error("disabling the back gate should reduce leakage")
	}
}

// Leakage-power ratio NTV:STV must match the Table IV-implied per-KB
// ratio: (13.4/224) / (33.8/256) = 0.453.
func TestLeakagePowerRatioMatchesTable4(t *testing.T) {
	d := Default7nm()
	ratio := (NTV * d.IOff(NTV, BackGateOn)) / (STV * d.IOff(STV, BackGateOn))
	approx(t, "NTV:STV leakage power ratio", ratio, 0.453, 0.02)
}

func TestIOnOffRatioRealistic(t *testing.T) {
	d := Default7nm()
	r := d.IOn(STV, BackGateOn) / d.IOff(STV, BackGateOn)
	if r < 1e3 || r > 1e6 {
		t.Errorf("Ion/Ioff = %.3g, want a realistic 1e3-1e6", r)
	}
}

// Table III SNM anchors.
func TestSNMMatchesTable3(t *testing.T) {
	cell := Cell{Type: Cell8T}
	approx(t, "8T SNM @NTV", cell.SNM(NTV, BackGateOn), 0.092, 0.01)
	approx(t, "8T SNM @STV", cell.SNM(STV, BackGateOn), 0.144, 0.01)
	approx(t, "8T SNM @STV BG=0", cell.SNM(STV, BackGateOff), 0.096, 0.01)
}

// The paper: a sized-up 6T cell still has only 0.088 V SNM at STV —
// worse than 8T despite the larger area.
func Test6TWorseThan8TDespiteLargerArea(t *testing.T) {
	c6, c8 := Cell{Type: Cell6T}, Cell{Type: Cell8T}
	approx(t, "6T SNM @STV", c6.SNM(STV, BackGateOn), 0.088, 0.01)
	if c6.AreaF2() <= c8.AreaF2() {
		t.Error("sized-up 6T should be larger than 8T")
	}
	if c6.SNM(STV, BackGateOn) >= c8.SNM(STV, BackGateOn) {
		t.Error("6T SNM should be worse than 8T")
	}
}

func TestSNMOrderingAcrossCellTypes(t *testing.T) {
	for _, v := range []float64{NTV, STV} {
		s8 := Cell{Type: Cell8T}.SNM(v, BackGateOn)
		s9 := Cell{Type: Cell9T}.SNM(v, BackGateOn)
		s10 := Cell{Type: Cell10T}.SNM(v, BackGateOn)
		if !(s8 < s9 && s9 < s10) {
			t.Errorf("at %.2f V want SNM(8T) < SNM(9T) < SNM(10T), got %g %g %g", v, s8, s9, s10)
		}
	}
}

func TestSNMNeverNegative(t *testing.T) {
	for _, ct := range []CellType{Cell6T, Cell8T, Cell9T, Cell10T} {
		for mv := 0; mv <= 600; mv += 50 {
			if snm := (Cell{Type: ct}).SNM(float64(mv)/1000, BackGateOff); snm < 0 {
				t.Errorf("%v SNM < 0 at %d mV", ct, mv)
			}
		}
	}
}

// The yield study's conclusion: 8T at NTV is manufacturable, 6T at NTV
// is not.
func TestMonteCarloYieldSeparates8Tfrom6T(t *testing.T) {
	const samples = 20000
	y8 := MonteCarloYield(Cell{Type: Cell8T}, NTV, BackGateOn, samples, 1)
	y6 := MonteCarloYield(Cell{Type: Cell6T}, NTV, BackGateOn, samples, 1)
	if y8.Yield < 0.99 {
		t.Errorf("8T yield at NTV = %.4f, want >= 0.99", y8.Yield)
	}
	if y6.Yield > 0.95 {
		t.Errorf("6T yield at NTV = %.4f, want clearly degraded", y6.Yield)
	}
	if y8.MeanSNM <= y6.MeanSNM {
		t.Error("8T mean SNM should exceed 6T at NTV")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	a := MonteCarloYield(Cell{Type: Cell8T}, NTV, BackGateOn, 5000, 42)
	b := MonteCarloYield(Cell{Type: Cell8T}, NTV, BackGateOn, 5000, 42)
	if a != b {
		t.Error("same-seed Monte Carlo differed")
	}
	c := MonteCarloYield(Cell{Type: Cell8T}, NTV, BackGateOn, 5000, 43)
	if a.MeanSNM == c.MeanSNM && a.Failures == c.Failures {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestMonteCarloPanicsOnBadSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MonteCarloYield(Cell{Type: Cell8T}, NTV, BackGateOn, 0, 1)
}

func TestTable3Rows(t *testing.T) {
	rows := Table3(Default7nm())
	if len(rows) != 3 {
		t.Fatalf("Table3 has %d rows, want 3", len(rows))
	}
	wantIOn := []float64{7.505e-4, 2.372e-3, 2.427e-4}
	wantSNM := []float64{0.092, 0.144, 0.096}
	for i, row := range rows {
		approx(t, "Table3 IOn "+row.Design, row.IOn, wantIOn[i], 0.005)
		approx(t, "Table3 SNM "+row.Design, row.SNM, wantSNM[i], 0.01)
	}
}

func TestCellStringAndBackGateString(t *testing.T) {
	if Cell8T.String() != "8T" || Cell10T.String() != "10T" {
		t.Error("cell names wrong")
	}
	if BackGateOn.String() != "BG=Vdd" || BackGateOff.String() != "BG=0" {
		t.Error("back-gate names wrong")
	}
}
