package finfet

import (
	"fmt"
	"math"

	"pilotrf/internal/stats"
)

// CellType identifies an SRAM cell topology.
type CellType uint8

// SRAM cell topologies evaluated in the paper's yield study. The 6T cell
// is the "sized-up" variant the paper compares against: even with a larger
// footprint than the 8T cell its read SNM is worse.
const (
	Cell6T CellType = iota
	Cell8T
	Cell9T
	Cell10T
)

// String returns the cell name.
func (c CellType) String() string {
	switch c {
	case Cell6T:
		return "6T"
	case Cell8T:
		return "8T"
	case Cell9T:
		return "9T"
	case Cell10T:
		return "10T"
	default:
		return fmt.Sprintf("CELL_%d", uint8(c))
	}
}

// snmParams is the linear SNM-vs-Vdd model per cell type, calibrated to
// the paper's HSPICE results: 8T = 0.144 V at STV and 0.092 V at NTV;
// sized-up 6T = 0.088 V at STV. 9T/10T are slightly better than 8T at a
// higher area cost, consistent with the cited literature.
type snmParams struct {
	slope, offset float64
	areaF2        float64 // layout area in F^2 (F = 7 nm)
}

var cellTable = map[CellType]snmParams{
	Cell6T:  {slope: 0.280, offset: -0.038, areaF2: 160}, // sized-up 6T
	Cell8T:  {slope: 0.34667, offset: -0.012, areaF2: 150},
	Cell9T:  {slope: 0.360, offset: -0.010, areaF2: 170},
	Cell10T: {slope: 0.370, offset: -0.005, areaF2: 190},
}

// bgOffSNMPenaltySTV is the SNM loss at STV when the back gate is
// disabled, calibrated from Table III (0.144 V -> 0.096 V).
const bgOffSNMPenaltySTV = 0.048

// Cell is an SRAM cell instance in a given technology.
type Cell struct {
	Type CellType
}

// SNM returns the nominal static noise margin in volts at the given supply
// voltage and back-gate state. Disabling the back gate weakens the cell's
// hold strength; the penalty scales with the supply.
func (c Cell) SNM(vdd float64, bg BackGate) float64 {
	p, ok := cellTable[c.Type]
	if !ok {
		panic(fmt.Sprintf("finfet: unknown cell type %d", uint8(c.Type)))
	}
	snm := p.slope*vdd + p.offset
	if bg == BackGateOff {
		snm -= bgOffSNMPenaltySTV * (vdd / STV)
	}
	return math.Max(snm, 0)
}

// AreaF2 returns the cell layout area in F^2 units.
func (c Cell) AreaF2() float64 {
	p, ok := cellTable[c.Type]
	if !ok {
		panic(fmt.Sprintf("finfet: unknown cell type %d", uint8(c.Type)))
	}
	return p.areaF2
}

// SNMMin is the minimum SNM for reliable read/write operation. Cells whose
// sampled SNM falls below it are counted as failures in the yield study.
const SNMMin = 0.040

// SigmaVth is the standard deviation of the per-device threshold-voltage
// variation at 7 nm from work-function variation plus line-edge roughness.
// FinFETs are immune to random dopant fluctuation (un-doped channel), so
// this is the dominant variation source.
const SigmaVth = 0.025

// snmSensitivity converts threshold variation into SNM variation. Six (or
// more) devices contribute; the calibrated lumped sensitivity is ~0.45.
const snmSensitivity = 0.45

// YieldResult is the outcome of a Monte Carlo yield analysis.
type YieldResult struct {
	Cell     CellType
	Vdd      float64
	BackGate BackGate
	Samples  int
	MeanSNM  float64
	StdSNM   float64
	Failures int
	// Yield is the fraction of sampled cells with SNM >= SNMMin.
	Yield float64
}

// MonteCarloYield samples `samples` cells with threshold-voltage variation
// and reports the SNM distribution and the fraction meeting SNMMin. The
// RNG seed makes the analysis exactly reproducible.
func MonteCarloYield(cell Cell, vdd float64, bg BackGate, samples int, seed uint64) YieldResult {
	if samples <= 0 {
		panic(fmt.Sprintf("finfet: %d Monte Carlo samples", samples))
	}
	rng := stats.NewRNG(seed)
	nominal := cell.SNM(vdd, bg)
	var sum, sumsq float64
	failures := 0
	for i := 0; i < samples; i++ {
		// Two worst-case devices fight in each SNM lobe; their
		// mismatch is what degrades the margin.
		dv := rng.NormFloat64() * SigmaVth
		snm := nominal - snmSensitivity*math.Abs(dv)
		sum += snm
		sumsq += snm * snm
		if snm < SNMMin {
			failures++
		}
	}
	mean := sum / float64(samples)
	variance := sumsq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return YieldResult{
		Cell:     cell.Type,
		Vdd:      vdd,
		BackGate: bg,
		Samples:  samples,
		MeanSNM:  mean,
		StdSNM:   math.Sqrt(variance),
		Failures: failures,
		Yield:    1 - float64(failures)/float64(samples),
	}
}

// Table3Row is one row of the paper's Table III: the operating point of an
// 8T FinFET SRAM cell.
type Table3Row struct {
	Design   string
	Vdd      float64
	IOn      float64 // A/um
	SNM      float64 // V
	BackGate BackGate
}

// Table3 reproduces Table III for the calibrated 7 nm device: the three 8T
// SRAM operating points used by the partitioned register file.
func Table3(d *Device) []Table3Row {
	cell := Cell{Type: Cell8T}
	return []Table3Row{
		{Design: "NTV", Vdd: NTV, IOn: d.IOn(NTV, BackGateOn), SNM: cell.SNM(NTV, BackGateOn), BackGate: BackGateOn},
		{Design: "STV, BG=Vdd", Vdd: STV, IOn: d.IOn(STV, BackGateOn), SNM: cell.SNM(STV, BackGateOn), BackGate: BackGateOn},
		{Design: "STV, BG=0", Vdd: STV, IOn: d.IOn(STV, BackGateOff), SNM: cell.SNM(STV, BackGateOff), BackGate: BackGateOff},
	}
}
