// Package finfet models the 7 nm double-gate FinFET devices the paper's
// register file is built from: a transregional I-V model with binary
// back-gate control, an FO4 inverter-chain delay model (Figure 1), and
// 6T/8T/9T/10T SRAM cells with static-noise-margin and Monte Carlo yield
// analysis (Table III).
//
// The paper derived these numbers from Synopsys TCAD device simulation and
// HSPICE Monte Carlo runs, neither of which is available here. Instead the
// package uses analytical compact models — an EKV-style transregional
// drain-current expression and an alpha-power-law delay expression — whose
// handful of parameters are calibrated so that the paper's reported
// operating points (Table III currents and SNMs, the 3x NTV:STV delay
// ratio behind Figure 1) are reproduced. Everything downstream consumes
// only these derived quantities, so the substitution preserves the
// architecture-level behaviour.
package finfet

import (
	"fmt"
	"math"
)

// Operating voltages used throughout the paper.
const (
	// STV is the super-threshold supply voltage (volts).
	STV = 0.45
	// NTV is the near-threshold supply voltage (volts).
	NTV = 0.30
)

// BackGate is the binary back-gate state of a double-gate FinFET.
type BackGate bool

// Back-gate states. When the back gate is disabled only the front-gate
// channel forms: drive current drops sharply, the effective threshold
// voltage rises, and the gate capacitance halves.
const (
	BackGateOn  BackGate = true
	BackGateOff BackGate = false
)

// String returns "BG=Vdd" or "BG=0", matching the paper's Table III labels.
func (b BackGate) String() string {
	if b == BackGateOn {
		return "BG=Vdd"
	}
	return "BG=0"
}

// Device is a compact model of the paper's 7 nm FinFET: 7 nm drawn gate
// length with 1.5 nm underlap on each side (10 nm effective channel).
type Device struct {
	// Vth is the threshold voltage with the back gate enabled (volts).
	Vth float64
	// VthBGOff is the effective threshold with the back gate disabled.
	VthBGOff float64
	// IS is the specific current of the EKV transregional model (A/um).
	IS float64
	// NKT is the slope parameter 2*n*phi_t of the EKV model (volts).
	NKT float64
	// Alpha is the velocity-saturation exponent of the delay model.
	Alpha float64
	// PhiSmooth smooths the overdrive in the delay model so the curve
	// stays finite (but steep) into the sub-threshold regime.
	PhiSmooth float64
	// T0 scales the FO4 delay (seconds).
	T0 float64
	// CgPerUm is the gate capacitance per micron of width with both
	// gates enabled (farads/um). Back-gate-off halves it.
	CgPerUm float64
	// DIBL is the drain-induced barrier lowering coefficient (V/V),
	// which makes leakage grow with supply voltage.
	DIBL float64
	// IOffSTV anchors the off-state (leakage) current at STV (A/um).
	IOffSTV float64
	// NSubPhi is n*phi_t for the sub-threshold leakage slope (volts).
	NSubPhi float64
}

// Default7nm returns the calibrated 7 nm device. Calibration anchors
// (all from the paper):
//   - I_on = 7.505e-4 A/um at NTV (0.30 V), back gate on
//   - I_on = 2.372e-3 A/um at STV (0.45 V), back gate on
//   - I_on = 2.427e-4 A/um at STV, back gate off
//   - FO4 delay at NTV = 3x the delay at STV (Figure 1 / the 16-bit
//     adder datapoint in the introduction)
func Default7nm() *Device {
	return &Device{
		Vth:       0.23,
		VthBGOff:  0.42740,
		IS:        8.1074e-4,
		NKT:       2 * 2.8 * 0.026,
		Alpha:     1.38760,
		PhiSmooth: 0.035,
		T0:        3.40092e-12,
		CgPerUm:   0.6e-15,
		DIBL:      0.0837,
		IOffSTV:   7.9e-8,
		NSubPhi:   1.25 * 0.026,
	}
}

// vth returns the effective threshold voltage for the back-gate state.
func (d *Device) vth(bg BackGate) float64 {
	if bg == BackGateOn {
		return d.Vth
	}
	return d.VthBGOff
}

// IOn returns the saturation drive current in A/um at supply voltage vdd
// with the given back-gate state. The EKV transregional form covers
// sub-threshold through strong inversion continuously.
func (d *Device) IOn(vdd float64, bg BackGate) float64 {
	if vdd <= 0 {
		return 0
	}
	is := d.IS
	if bg == BackGateOff {
		// Only the front-gate channel conducts.
		is /= 2
	}
	x := (vdd - d.vth(bg)) / d.NKT
	l := math.Log1p(math.Exp(x))
	return is * l * l
}

// IOff returns the off-state (leakage) current in A/um at supply voltage
// vdd. DIBL makes leakage rise with vdd; disabling the back gate cuts
// leakage roughly in half (one channel) and raises the barrier.
func (d *Device) IOff(vdd float64, bg BackGate) float64 {
	dvth := d.vth(bg) - d.Vth // extra barrier with back gate off
	i := d.IOffSTV * math.Exp((d.DIBL*(vdd-STV)-dvth)/d.NSubPhi)
	if bg == BackGateOff {
		i /= 2
	}
	return i
}

// GateCap returns the gate capacitance per micron for the back-gate state.
// Disabling the back gate halves the capacitance, which is the energy
// lever the adaptive FRF low-power mode exploits.
func (d *Device) GateCap(bg BackGate) float64 {
	if bg == BackGateOn {
		return d.CgPerUm
	}
	return d.CgPerUm / 2
}

// overdrive returns the smoothed gate overdrive used by the delay model.
// It approaches vdd-vth in strong inversion and decays exponentially (but
// never reaches zero) below threshold, producing the sharp-but-finite
// delay blow-up of Figure 1.
func (d *Device) overdrive(vdd float64, bg BackGate) float64 {
	return d.PhiSmooth * math.Log1p(math.Exp((vdd-d.vth(bg))/d.PhiSmooth))
}

// FO4Delay returns the fanout-of-4 inverter delay in seconds at the given
// supply voltage and back-gate state (alpha-power law on the smoothed
// overdrive). Back-gate-off halves the load capacitance, which partially
// offsets the weaker drive.
func (d *Device) FO4Delay(vdd float64, bg BackGate) float64 {
	if vdd <= 0 {
		return math.Inf(1)
	}
	capFactor := 1.0
	if bg == BackGateOff {
		capFactor = 0.5
	}
	vov := d.overdrive(vdd, bg)
	return d.T0 * capFactor * vdd / math.Pow(vov, d.Alpha)
}

// ChainDelay returns the delay of an n-stage FO4 inverter chain in
// seconds. Figure 1 plots this for n = 40 across supply voltages.
func (d *Device) ChainDelay(stages int, vdd float64, bg BackGate) float64 {
	if stages <= 0 {
		panic(fmt.Sprintf("finfet: chain of %d stages", stages))
	}
	return float64(stages) * d.FO4Delay(vdd, bg)
}

// DelayRatioNTV returns the NTV:STV FO4 delay ratio, the quantity the
// partitioned-RF latency model (1-cycle FRF vs 3-cycle SRF) rests on.
func (d *Device) DelayRatioNTV() float64 {
	return d.FO4Delay(NTV, BackGateOn) / d.FO4Delay(STV, BackGateOn)
}

// Figure1Point is one sample of the Figure 1 sweep.
type Figure1Point struct {
	Vdd     float64
	DelayNS float64
}

// Figure1Sweep reproduces Figure 1: the delay of a 40-stage FO4 inverter
// chain versus supply voltage, from deep sub-threshold (0.15 V) past STV.
func (d *Device) Figure1Sweep() []Figure1Point {
	var pts []Figure1Point
	for mv := 150; mv <= 550; mv += 25 {
		v := float64(mv) / 1000
		pts = append(pts, Figure1Point{Vdd: v, DelayNS: d.ChainDelay(40, v, BackGateOn) * 1e9})
	}
	return pts
}
