package fault

import (
	"testing"

	"pilotrf/internal/regfile"
)

func testFaultConfig(rate float64) Config {
	return Config{Rate: rate, Seed: 7}
}

func mustInjector(t *testing.T, cfg Config, d regfile.Design, sm, camBits int) *Injector {
	t.Helper()
	in, err := NewInjector(cfg, d, sm, camBits)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return in
}

func TestConfigValidate(t *testing.T) {
	ok := []Config{
		{},
		{Rate: 1e-9, Seed: 3},
		{Rate: 1e-7, StuckAtFrac: -1, ReadPathFrac: 1}, // negative = exactly zero
		{Rate: 1e-7, StuckAtFrac: 1, ReadPathFrac: -1},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{Rate: -1},
		{NTVFactor: 0.5},
		{LowPowerFactor: 0.1},
		{StuckAtFrac: 0.9, ReadPathFrac: 0.9}, // sum > 1
		{MaxRetries: -1},
		{RetryPenalty: -3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestWithDefaultsNegativeFracsMeanZero(t *testing.T) {
	c := Config{StuckAtFrac: -1, ReadPathFrac: -1}.WithDefaults()
	if c.StuckAtFrac != 0 || c.ReadPathFrac != 0 {
		t.Errorf("negative fracs defaulted to %v/%v, want 0/0", c.StuckAtFrac, c.ReadPathFrac)
	}
	c = Config{}.WithDefaults()
	if c.StuckAtFrac != DefaultStuckAtFrac || c.ReadPathFrac != DefaultReadPathFrac ||
		c.NTVFactor != DefaultNTVFactor || c.MaxRetries != DefaultMaxRetries {
		t.Errorf("zero config defaults wrong: %+v", c)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := mustInjector(t, testFaultConfig(0), regfile.DesignPartitioned, 0, 104)
	for i := 0; i < 10000; i++ {
		if _, ok := in.Tick(false); ok {
			t.Fatal("zero-rate injector fired")
		}
	}
	if in.Stats().Fires != 0 {
		t.Errorf("Fires = %d, want 0", in.Stats().Fires)
	}
}

// Equal configs on the same SM must replay the identical shot sequence.
func TestShotSequenceDeterminism(t *testing.T) {
	run := func() []Shot {
		in := mustInjector(t, testFaultConfig(1e-8), regfile.DesignPartitioned, 0, 104)
		var shots []Shot
		for c := 0; c < 200_000; c++ {
			if s, ok := in.Tick(false); ok {
				shots = append(shots, s)
			}
		}
		return shots
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no shots at a rate chosen to produce some")
	}
	if len(a) != len(b) {
		t.Fatalf("shot counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shot %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Different SM ids must fault independently (seed salting).
func TestSMsFaultIndependently(t *testing.T) {
	seq := func(sm int) []Shot {
		in := mustInjector(t, testFaultConfig(1e-8), regfile.DesignPartitioned, sm, 104)
		var shots []Shot
		for c := 0; c < 200_000; c++ {
			if s, ok := in.Tick(false); ok {
				shots = append(shots, s)
			}
		}
		return shots
	}
	a, b := seq(0), seq(1)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("SM 0 and SM 1 replayed identical shot sequences")
		}
	}
}

// The Poisson-thinning discipline: the arrival process (which cycles see
// candidate fires) must not depend on the power-mode history, only the
// acceptance of each arrival may. Fires counts candidates, so two runs
// with different mode histories must agree on it exactly.
func TestThinningArrivalsModeIndependent(t *testing.T) {
	fires := func(mode func(c int) bool) uint64 {
		in := mustInjector(t, testFaultConfig(1e-8), regfile.DesignPartitionedAdaptive, 0, 104)
		for c := 0; c < 300_000; c++ {
			in.Tick(mode(c))
		}
		return in.Stats().Fires
	}
	always := fires(func(int) bool { return false })
	flapping := fires(func(c int) bool { return c%97 < 48 })
	if always == 0 {
		t.Fatal("no candidate arrivals")
	}
	if always != flapping {
		t.Errorf("arrival count depends on mode history: %d vs %d", always, flapping)
	}
}

// Rate proportionality: with the SRF 7x larger than the FRF and 25x more
// vulnerable at NTV, virtually all cell strikes must hit the SRF.
func TestStrikesFollowPartitionRates(t *testing.T) {
	in := mustInjector(t, testFaultConfig(1e-8), regfile.DesignPartitioned, 0, 104)
	counts := map[Target]int{}
	for c := 0; c < 500_000; c++ {
		if s, ok := in.Tick(false); ok {
			counts[s.Target]++
		}
	}
	if counts[TargetSRF] == 0 {
		t.Fatal("no SRF strikes")
	}
	if counts[TargetFRF] >= counts[TargetSRF] {
		t.Errorf("FRF strikes (%d) not dominated by SRF strikes (%d) despite 175x rate ratio",
			counts[TargetFRF], counts[TargetSRF])
	}
	if counts[TargetMRF] != 0 {
		t.Errorf("partitioned design has no MRF, yet %d MRF strikes", counts[TargetMRF])
	}
}

// Monolithic NTV must fault ~25x more often than monolithic STV over the
// same interval (same seed, same array).
func TestNTVFactorRaisesRate(t *testing.T) {
	count := func(d regfile.Design) int {
		in := mustInjector(t, testFaultConfig(1e-9), d, 0, 0)
		n := 0
		for c := 0; c < 300_000; c++ {
			if _, ok := in.Tick(false); ok {
				n++
			}
		}
		return n
	}
	stv, ntv := count(regfile.DesignMonolithicSTV), count(regfile.DesignMonolithicNTV)
	if ntv <= 2*stv {
		t.Errorf("NTV strike count %d not clearly above STV %d (factor should be ~25)", ntv, stv)
	}
}

// CAM shots must carry an entry-bit index inside the 13-bit row. A real
// CAM is ~100 bits and nearly never hit next to the megabit arrays; the
// inflated bit count here just exercises the CAM shot path.
func TestCAMShotsWithinEntry(t *testing.T) {
	cfg := testFaultConfig(1e-6)
	in := mustInjector(t, cfg, regfile.DesignPartitioned, 0, 50_000_000)
	seen := false
	for c := 0; c < 200_000; c++ {
		if s, ok := in.Tick(false); ok && s.Target == TargetCAM {
			seen = true
			if s.Bit < 0 || s.Bit >= regfile.EntryBits {
				t.Fatalf("CAM shot bit %d outside entry", s.Bit)
			}
		}
	}
	if !seen {
		t.Fatal("no CAM shots despite a CAM rate")
	}
}

// Kind fractions: with ReadPathFrac 1 every cell shot is read-path; with
// both fracs forced to zero every cell shot is transient.
func TestKindFractions(t *testing.T) {
	kinds := func(cfg Config) map[Kind]int {
		in := mustInjector(t, cfg, regfile.DesignMonolithicNTV, 0, 0)
		m := map[Kind]int{}
		for c := 0; c < 200_000; c++ {
			if s, ok := in.Tick(false); ok {
				m[s.Kind]++
			}
		}
		return m
	}
	all := kinds(Config{Rate: 1e-9, Seed: 7, ReadPathFrac: 1, StuckAtFrac: -1})
	if all[KindTransient]+all[KindStuckAt0]+all[KindStuckAt1] != 0 || all[KindReadPath] == 0 {
		t.Errorf("ReadPathFrac=1 produced %v", all)
	}
	none := kinds(Config{Rate: 1e-9, Seed: 7, ReadPathFrac: -1, StuckAtFrac: -1})
	if none[KindReadPath]+none[KindStuckAt0]+none[KindStuckAt1] != 0 || none[KindTransient] == 0 {
		t.Errorf("forced-zero fracs produced %v", none)
	}
}

func TestTargetPartitionMapping(t *testing.T) {
	if TargetMRF.Partition(false) != regfile.PartMRF || TargetSRF.Partition(true) != regfile.PartSRF {
		t.Error("MRF/SRF target partition mapping wrong")
	}
	if TargetFRF.Partition(false) != regfile.PartFRFHigh {
		t.Error("FRF high-power target partition wrong")
	}
	if TargetFRF.Partition(true) != regfile.PartFRFLow {
		t.Error("FRF low-power target partition wrong")
	}
}
