package fault

import (
	"testing"

	"pilotrf/internal/flightrec"
)

// feed replays a sequence of (kernel-begin | read-hash) events into a
// fresh probe. Each entry is one kernel: per-SM (hash, reads) pairs.
func feed(kernels [][][2]uint64) *DigestProbe {
	p := NewDigestProbe()
	for _, sms := range kernels {
		p.Record(flightrec.Event{Kind: flightrec.KindKernelBegin, SM: -1})
		for sm, hr := range sms {
			// Interleave a stale partial emission first: the probe must
			// keep only the last emission per (kernel, SM).
			p.Record(flightrec.Event{Kind: flightrec.KindReadHash, SM: sm, A: hr[0] / 2, B: hr[1] / 2})
			p.Record(flightrec.Event{Kind: flightrec.KindReadHash, SM: sm, A: hr[0], B: hr[1]})
		}
	}
	return p
}

func TestDigestSumsAcrossSMs(t *testing.T) {
	p := feed([][][2]uint64{{{10, 1}, {32, 4}}})
	if got := p.Kernels(); got != 1 {
		t.Fatalf("Kernels = %d", got)
	}
	d := p.Digest(0)
	if d.Hash != 42 || d.Reads != 5 {
		t.Errorf("Digest(0) = %+v, want {42 5}", d)
	}
}

func TestEqualAndDiverged(t *testing.T) {
	golden := feed([][][2]uint64{{{10, 1}}, {{20, 2}}})
	same := feed([][][2]uint64{{{10, 1}}, {{20, 2}}})
	if !same.Equal(golden) {
		t.Error("identical streams report divergence")
	}
	if _, div := same.Diverged(golden); div {
		t.Error("Diverged on equal streams")
	}

	// The commutative digest makes SM attribution irrelevant: the same
	// totals split differently across SMs must still compare equal.
	resplit := feed([][][2]uint64{{{4, 1}, {6, 0}}, {{20, 2}}})
	if !resplit.Equal(golden) {
		t.Error("same totals across different SM splits report divergence")
	}

	bad := feed([][][2]uint64{{{10, 1}}, {{21, 2}}})
	k, div := bad.Diverged(golden)
	if !div || k != 1 {
		t.Errorf("Diverged = (%d, %v), want (1, true)", k, div)
	}
}

func TestKernelCountMismatchDiverges(t *testing.T) {
	golden := feed([][][2]uint64{{{10, 1}}, {{20, 2}}})
	short := feed([][][2]uint64{{{10, 1}}})
	if k, div := short.Diverged(golden); !div || k != 1 {
		t.Errorf("missing kernel: Diverged = (%d, %v), want (1, true)", k, div)
	}
}

func TestProbeImplementsSink(t *testing.T) {
	var _ flightrec.Sink = NewDigestProbe()
	if NewDigestProbe().ChecksumEvery() <= 0 {
		t.Error("probe checksum interval must be positive")
	}
}

// TestDigestsSnapshotRoundTrip: Digests() captures what Diverged
// compares, so a probe checked against its own snapshot agrees, a
// mutated snapshot diverges at the right kernel, and snapshot-based
// comparison matches probe-based comparison on every shape.
func TestDigestsSnapshotRoundTrip(t *testing.T) {
	p := feed([][][2]uint64{
		{{10, 4}, {20, 6}},
		{{7, 2}},
	})
	snap := p.Digests()
	if len(snap) != 2 {
		t.Fatalf("snapshot of %d kernels, want 2", len(snap))
	}
	if k, div := p.DivergedFromDigests(snap); div {
		t.Fatalf("probe diverges from its own snapshot at kernel %d", k)
	}
	mutated := append([]KernelDigest(nil), snap...)
	mutated[1].Hash++
	if k, div := p.DivergedFromDigests(mutated); !div || k != 1 {
		t.Fatalf("mutated snapshot: (%d, %v), want divergence at kernel 1", k, div)
	}
	// Snapshot shorter than the run (golden aborted earlier than trial).
	if k, div := p.DivergedFromDigests(snap[:1]); !div || k != 1 {
		t.Fatalf("short snapshot: (%d, %v), want divergence at kernel 1", k, div)
	}
	// Snapshot longer than the run (trial aborted early).
	longer := append(append([]KernelDigest(nil), snap...), KernelDigest{Hash: 1, Reads: 1})
	if _, div := p.DivergedFromDigests(longer); !div {
		t.Fatal("long snapshot did not diverge")
	}
	// Probe-vs-probe must agree with probe-vs-snapshot.
	q := feed([][][2]uint64{
		{{10, 4}, {20, 6}},
		{{8, 2}},
	})
	pk, pdiv := q.Diverged(p)
	sk, sdiv := q.DivergedFromDigests(p.Digests())
	if pk != sk || pdiv != sdiv {
		t.Fatalf("probe (%d,%v) and snapshot (%d,%v) comparisons disagree", pk, pdiv, sk, sdiv)
	}
}
