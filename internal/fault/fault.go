// Package fault is the simulator's soft-error and resilience model: a
// deterministic, seedable fault-injection engine for the register file
// partitions and the swap-table CAM, the protection schemes the paper's
// operating points call for (SECDED ECC on the near-threshold SRF,
// parity + re-issue retry on the super-threshold FRF), and the
// bookkeeping that classifies each injected fault's outcome.
//
// The motivation is the paper's own design point: the 224 KB SRF runs at
// 0.3 V near-threshold, precisely where the critical charge Qcrit of an
// SRAM cell drops and the raw soft-error rate rises sharply. The engine
// therefore scales each partition's raw fault rate by its operating
// voltage (NTV arrays are far more vulnerable than STV arrays), and the
// adaptive FRF's back-gated low-power mode raises the FRF's vulnerability
// while it is engaged.
//
// Protection is priced, not free: every access to a protected partition
// pays a check-bit overhead proportional to the code's redundancy
// (SECDED(39,32) adds 7 check bits per 32-bit word, parity adds 1), which
// flows through the energy.Ledger so protected-vs-unprotected energy is
// directly comparable.
package fault

import (
	"fmt"

	"pilotrf/internal/energy"
	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

// Protection selects the error-detection/correction code on one RF
// partition's storage words.
type Protection uint8

// Protection levels.
const (
	// ProtectNone leaves the partition unprotected: faults are silent
	// until (and unless) the corrupted value is consumed.
	ProtectNone Protection = iota
	// ProtectParity adds one parity bit per 32-bit word: single-bit
	// errors are detected on read but not correctable; the pipeline
	// recovers by re-issuing the consuming instruction (which helps only
	// for read-path transients — a corrupted cell stays corrupted).
	ProtectParity
	// ProtectSECDED adds a SECDED(39,32) code per 32-bit word: single-bit
	// errors are corrected in place on read, silently to the pipeline.
	ProtectSECDED
)

// String returns the protection name.
func (p Protection) String() string {
	switch p {
	case ProtectNone:
		return "none"
	case ProtectParity:
		return "parity"
	case ProtectSECDED:
		return "secded"
	default:
		return fmt.Sprintf("PROTECT_%d", uint8(p))
	}
}

// ParseProtection resolves a protection name.
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "none":
		return ProtectNone, nil
	case "parity":
		return ProtectParity, nil
	case "secded", "ecc":
		return ProtectSECDED, nil
	default:
		return 0, fmt.Errorf("fault: unknown protection %q (none | parity | secded)", s)
	}
}

// dataBits is the protected word size: RF storage is organized as 32-bit
// per-lane words, and both codes considered protect each word separately.
const dataBits = 32

// CheckBits returns the number of check bits the code adds per 32-bit
// data word (0, 1, or 7).
func (p Protection) CheckBits() int {
	switch p {
	case ProtectParity:
		return 1
	case ProtectSECDED:
		return 7
	default:
		return 0
	}
}

// Scheme assigns a protection level to each physical partition, indexed
// by regfile.Partition. The FRF's two power modes share one array and
// therefore one code; constructors keep the two FRF entries equal.
type Scheme [4]Protection

// Unprotected returns the baseline scheme: no protection anywhere.
func Unprotected() Scheme { return Scheme{} }

// FullParity protects every partition with parity + re-issue retry.
func FullParity() Scheme {
	return Scheme{ProtectParity, ProtectParity, ProtectParity, ProtectParity}
}

// FullSECDED protects every partition with SECDED ECC.
func FullSECDED() Scheme {
	return Scheme{ProtectSECDED, ProtectSECDED, ProtectSECDED, ProtectSECDED}
}

// PaperScheme matches protection strength to operating point: the
// near-threshold arrays (the SRF, and the MRF when the monolithic design
// runs it at NTV) carry SECDED, while the super-threshold FRF gets away
// with cheap parity + re-issue retry.
func PaperScheme() Scheme {
	return Scheme{
		regfile.PartMRF:     ProtectSECDED,
		regfile.PartFRFHigh: ProtectParity,
		regfile.PartFRFLow:  ProtectParity,
		regfile.PartSRF:     ProtectSECDED,
	}
}

// ParseScheme resolves a named scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "none", "unprotected":
		return Unprotected(), nil
	case "parity":
		return FullParity(), nil
	case "secded", "ecc":
		return FullSECDED(), nil
	case "paper":
		return PaperScheme(), nil
	default:
		return Scheme{}, fmt.Errorf("fault: unknown protection scheme %q (none | parity | secded | paper)", s)
	}
}

// String names the scheme (the named points, or the per-partition list).
func (s Scheme) String() string {
	switch s {
	case Unprotected():
		return "none"
	case FullParity():
		return "parity"
	case FullSECDED():
		return "secded"
	case PaperScheme():
		return "paper"
	}
	return fmt.Sprintf("mrf=%s,frf=%s,srf=%s",
		s[regfile.PartMRF], s[regfile.PartFRFHigh], s[regfile.PartSRF])
}

// Any reports whether any partition is protected.
func (s Scheme) Any() bool { return s != Scheme{} }

// Mask returns which partitions carry protection, indexed by
// regfile.Partition — the shape the energy ledger's overhead accounting
// consumes.
func (s Scheme) Mask() [4]bool {
	var m [4]bool
	for p, prot := range s {
		m[p] = prot != ProtectNone
	}
	return m
}

// Validate rejects schemes that protect the FRF's two power modes
// differently: they are one physical array.
func (s Scheme) Validate() error {
	for p, code := range s {
		if code > ProtectSECDED {
			return fmt.Errorf("fault: unknown protection code %d for partition %s",
				code, regfile.Partition(p))
		}
	}
	if s[regfile.PartFRFHigh] != s[regfile.PartFRFLow] {
		return fmt.Errorf("fault: FRF power modes share one array but scheme protects them differently (%s vs %s)",
			s[regfile.PartFRFHigh], s[regfile.PartFRFLow])
	}
	return nil
}

// OverheadTable prices the scheme's per-access check-bit overhead for a
// design, indexed by regfile.Partition: each access to a protected
// partition reads or writes checkBits/32 extra bits alongside the data
// word, so the overhead energy is that same fraction of the partition's
// per-access energy. Integer access counts priced through this table and
// summed in partition order are bit-exact, matching the ledger's
// conservation discipline.
func OverheadTable(d regfile.Design, s Scheme) [4]float64 {
	base := energy.PerAccessTable(d)
	var out [4]float64
	for p := range out {
		out[p] = base[p] * float64(s[p].CheckBits()) / dataBits
	}
	return out
}

// Kind classifies an injected fault.
type Kind uint8

// Fault kinds.
const (
	// KindTransient is a single-event upset: one storage cell's bit flips
	// and stays flipped until overwritten (or corrected by ECC).
	KindTransient Kind = iota
	// KindReadPath is a transient on the read path (sense amp, bitline):
	// the stored value is intact, but one consumption observes a flipped
	// bit. A re-issued read succeeds.
	KindReadPath
	// KindStuckAt0 pins one cell bit to 0: every write re-acquires the
	// fault (a hard/intermittent fault at NTV voltage margins).
	KindStuckAt0
	// KindStuckAt1 pins one cell bit to 1.
	KindStuckAt1
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindReadPath:
		return "read-path"
	case KindStuckAt0:
		return "stuck-at-0"
	case KindStuckAt1:
		return "stuck-at-1"
	default:
		return fmt.Sprintf("KIND_%d", uint8(k))
	}
}

// StuckAt reports whether the kind is a persistent stuck-at fault.
func (k Kind) StuckAt() bool { return k == KindStuckAt0 || k == KindStuckAt1 }

// CellFault is one pending injected fault on a register cell, tracked by
// the SM until it is corrected, overwritten, consumed, or escalated.
type CellFault struct {
	// Warp is the SM-local warp slot owning the register.
	Warp int
	// Reg is the architected register.
	Reg isa.Reg
	// Lane is the thread lane whose 32-bit word is faulty.
	Lane int
	// Bit is the flipped/pinned bit within the word.
	Bit uint8
	// Kind classifies the fault.
	Kind Kind
	// Part is the physical partition the register lived in at injection
	// time — the protection domain that detects (or misses) the fault.
	Part regfile.Partition
	// Cycle is the injection cycle.
	Cycle int64
	// Retries counts re-issue attempts consumed by this fault.
	Retries int
}

// UnrecoverableError is the structured kernel-abort error raised when a
// detected-but-uncorrectable fault exhausts its re-issue retries. It is
// graceful degradation's last stop: the simulation stops with this error
// instead of panicking or silently corrupting results.
type UnrecoverableError struct {
	Cycle   int64
	SM      int
	Warp    int
	Reg     isa.Reg
	Part    regfile.Partition
	Kind    Kind
	Retries int
}

// Error implements error.
func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("fault: uncorrectable %s error on SM %d warp %d %s (%s) persisted through %d retries at cycle %d",
		e.Kind, e.SM, e.Warp, e.Reg, e.Part, e.Retries, e.Cycle)
}

// Stats counts fault-injection activity on one SM (or, via Add, a run).
type Stats struct {
	// Fires counts countdown expiries (before thinning).
	Fires uint64
	// Thinned counts fires rejected by the rate-thinning step (the FRF
	// was in its less-vulnerable high-power mode at fire time).
	Thinned uint64
	// NoVictim counts fires that found no allocated cell to corrupt
	// (an upset in an unallocated row: architecturally invisible).
	NoVictim uint64
	// Injected counts applied faults by target (indexed by Target).
	Injected [NumTargets]uint64
	// Corrected counts SECDED in-place corrections.
	Corrected uint64
	// DetectedRetry counts parity/ECC detections that scheduled a
	// warp-level re-issue.
	DetectedRetry uint64
	// RetrySuccess counts re-issues that read clean data (read-path
	// transients cleared by the retry).
	RetrySuccess uint64
	// Unrecoverable counts faults that exhausted their retries and
	// aborted the kernel.
	Unrecoverable uint64
	// OverwriteCleared counts faulty cells healed by a register write
	// before any read observed them.
	OverwriteCleared uint64
	// SilentReads counts consumptions of corrupted values in unprotected
	// partitions — the raw material of silent data corruption.
	SilentReads uint64
	// CAMRepaired counts swap-table CAM upsets detected and repaired by
	// the protected mapping (entry scrubbed, placement preserved).
	CAMRepaired uint64
	// CAMCorrupted counts swap-table CAM upsets applied to an
	// unprotected mapping (placement semantics silently change).
	CAMCorrupted uint64
}

// Add folds another Stats into s.
func (s *Stats) Add(o Stats) {
	s.Fires += o.Fires
	s.Thinned += o.Thinned
	s.NoVictim += o.NoVictim
	for i := range s.Injected {
		s.Injected[i] += o.Injected[i]
	}
	s.Corrected += o.Corrected
	s.DetectedRetry += o.DetectedRetry
	s.RetrySuccess += o.RetrySuccess
	s.Unrecoverable += o.Unrecoverable
	s.OverwriteCleared += o.OverwriteCleared
	s.SilentReads += o.SilentReads
	s.CAMRepaired += o.CAMRepaired
	s.CAMCorrupted += o.CAMCorrupted
}

// TotalInjected sums applied faults across targets.
func (s *Stats) TotalInjected() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}
