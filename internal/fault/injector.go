package fault

import (
	"fmt"
	"math"

	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
)

// Target is the physical array a fault strikes.
type Target uint8

// Fault targets.
const (
	// TargetMRF strikes the monolithic 256 KB main register file.
	TargetMRF Target = iota
	// TargetFRF strikes the 32 KB fast register file.
	TargetFRF
	// TargetSRF strikes the 224 KB slow (near-threshold) register file.
	TargetSRF
	// TargetCAM strikes the swapping-table CAM.
	TargetCAM

	// NumTargets is the number of fault targets.
	NumTargets = 4
)

// String returns the target name.
func (t Target) String() string {
	switch t {
	case TargetMRF:
		return "MRF"
	case TargetFRF:
		return "FRF"
	case TargetSRF:
		return "SRF"
	case TargetCAM:
		return "CAM"
	default:
		return fmt.Sprintf("TARGET_%d", uint8(t))
	}
}

// Partition maps a cell-array target to its regfile partition (for the
// FRF the low-power flag at strike time decides which mode). TargetCAM
// has no partition; callers never route CAM strikes through storage.
func (t Target) Partition(lowPower bool) regfile.Partition {
	switch t {
	case TargetMRF:
		return regfile.PartMRF
	case TargetFRF:
		if lowPower {
			return regfile.PartFRFLow
		}
		return regfile.PartFRFHigh
	default:
		return regfile.PartSRF
	}
}

// Storage bit counts per array, matching the paper's capacities
// (DESIGN.md: MRF 256 KB, FRF 32 KB, SRF 224 KB). The raw fault rate of
// an array scales with the number of bits exposed to upsets.
const (
	mrfBits = 256 * 1024 * 8
	frfBits = 32 * 1024 * 8
	srfBits = 224 * 1024 * 8
)

// Config parameterizes the fault-injection engine. The zero value is
// "injection disabled"; a positive Rate enables it. All randomness
// derives from Seed, so equal configs reproduce equal campaigns.
type Config struct {
	// Rate is the raw soft-error rate of an STV array, in upsets per bit
	// per cycle. Real SER is ~1e-19 at this granularity; campaigns use
	// accelerated rates (1e-9..1e-7) to observe outcomes in short runs.
	Rate float64
	// Seed drives the injection RNG. Zero is remapped to a fixed
	// constant (the stats.RNG convention).
	Seed uint64
	// NTVFactor multiplies the raw rate of near-threshold arrays (the
	// SRF, and the MRF in the monolithic-NTV design). Default 25: Qcrit
	// collapse at 0.3 V makes NTV SRAM far more upset-prone than STV.
	NTVFactor float64
	// LowPowerFactor multiplies the FRF rate while the adaptive design
	// holds the FRF in its back-gated low-power mode. Default 4.
	LowPowerFactor float64
	// StuckAtFrac is the fraction of injected cell faults that are
	// stuck-at (split evenly between stuck-at-0 and stuck-at-1) rather
	// than transient. Zero selects the default 0.05; a negative value
	// means exactly zero (campaigns isolating one fault kind need it).
	StuckAtFrac float64
	// ReadPathFrac is the fraction of injected cell faults that strike
	// the read path (sense amp/bitline) instead of a storage cell, so a
	// re-issued read observes clean data. Zero selects the default 0.15;
	// a negative value means exactly zero.
	ReadPathFrac float64
	// MaxRetries bounds warp-level re-issue attempts per detected
	// uncorrectable fault before the kernel aborts. Default 3.
	MaxRetries int
	// RetryPenalty is the stall, in cycles, charged to a warp per
	// re-issue (parity detection + scoreboard replay). Default 8.
	RetryPenalty int
}

// Defaults for zero-valued Config fields.
const (
	DefaultNTVFactor      = 25.0
	DefaultLowPowerFactor = 4.0
	DefaultStuckAtFrac    = 0.05
	DefaultReadPathFrac   = 0.15
	DefaultMaxRetries     = 3
	DefaultRetryPenalty   = 8
)

// WithDefaults returns the config with zero-valued tuning fields
// replaced by their defaults. Rate and Seed are never defaulted.
func (c Config) WithDefaults() Config {
	if c.NTVFactor == 0 {
		c.NTVFactor = DefaultNTVFactor
	}
	if c.LowPowerFactor == 0 {
		c.LowPowerFactor = DefaultLowPowerFactor
	}
	switch {
	case c.StuckAtFrac == 0:
		c.StuckAtFrac = DefaultStuckAtFrac
	case c.StuckAtFrac < 0:
		c.StuckAtFrac = 0
	}
	switch {
	case c.ReadPathFrac == 0:
		c.ReadPathFrac = DefaultReadPathFrac
	case c.ReadPathFrac < 0:
		c.ReadPathFrac = 0
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.RetryPenalty == 0 {
		c.RetryPenalty = DefaultRetryPenalty
	}
	return c
}

// Validate rejects configs the engine cannot honor. It validates the
// post-default view, so a sparse literal with only Rate and Seed set is
// valid.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.Rate < 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("fault: rate must be a finite non-negative upsets/bit/cycle, got %v", c.Rate)
	}
	if c.NTVFactor < 1 || c.LowPowerFactor < 1 {
		return fmt.Errorf("fault: voltage factors must be >= 1 (NTV %v, low-power %v): NTV operation cannot lower the raw fault rate", c.NTVFactor, c.LowPowerFactor)
	}
	if c.StuckAtFrac < 0 || c.ReadPathFrac < 0 || c.StuckAtFrac+c.ReadPathFrac > 1 {
		return fmt.Errorf("fault: kind fractions must satisfy 0 <= stuck-at (%v) + read-path (%v) <= 1", c.StuckAtFrac, c.ReadPathFrac)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: max retries must be non-negative, got %d", c.MaxRetries)
	}
	if c.RetryPenalty <= 0 {
		return fmt.Errorf("fault: retry penalty must be positive cycles, got %d", c.RetryPenalty)
	}
	return nil
}

// Shot is one accepted fault strike: which array, what kind, and where
// within a 32-bit word. The simulator picks the victim cell (warp,
// register) or CAM entry, since occupancy is its knowledge.
type Shot struct {
	Target Target
	Kind   Kind
	Lane   int
	Bit    int
}

// Injector is the per-SM fault process. It draws fault inter-arrival
// times from the aggregate rate of every array the design exposes, then
// attributes each strike to one array proportionally to its momentary
// rate. The FRF's rate depends on the adaptive power mode, which changes
// mid-run; the injector handles that with Poisson thinning — arrivals
// are drawn at the maximum aggregate rate, and each is accepted with
// probability (current rate / maximum rate). Thinned and accepted
// arrivals consume identical RNG draws, so the arrival process is
// deterministic given the seed regardless of mode-flip timing.
type Injector struct {
	cfg Config
	// arr drives arrivals and thinning only; det drives shot details and
	// victim selection. Splitting the streams keeps arrival timing
	// independent of how many detail draws each strike consumes — the
	// candidate-arrival cycles are identical across mode-flip histories
	// and protection schemes, which is what makes campaign cells with
	// the same seed comparable strike-for-strike.
	arr  *stats.RNG
	det  *stats.RNG
	st   Stats
	down int64 // cycles until the next candidate arrival

	// Per-target rates in upsets/cycle: low[t] with the FRF at high
	// power, high[t] with the FRF back-gated. Only the FRF entry
	// differs. lambdaMax is the aggregate of the high view — the
	// thinning envelope.
	low, high [NumTargets]float64
	lambdaMax float64
}

// NewInjector builds the fault process for one SM of the given design.
// camBits sizes the swap-table CAM target (0 for monolithic designs,
// which have no CAM). The SM index salts the seed so SMs fault
// independently yet reproducibly.
func NewInjector(cfg Config, d regfile.Design, smID int, camBits int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	base := cfg.Seed + uint64(smID)*0x9E3779B97F4A7C15
	in := &Injector{
		cfg: cfg,
		arr: stats.NewRNG(base),
		det: stats.NewRNG(base ^ 0xD1B54A32D192ED03),
	}
	switch d {
	case regfile.DesignMonolithicSTV:
		in.low[TargetMRF] = cfg.Rate * mrfBits
	case regfile.DesignMonolithicNTV:
		in.low[TargetMRF] = cfg.Rate * mrfBits * cfg.NTVFactor
	case regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive:
		in.low[TargetFRF] = cfg.Rate * frfBits
		in.low[TargetSRF] = cfg.Rate * srfBits * cfg.NTVFactor
		in.low[TargetCAM] = cfg.Rate * float64(camBits)
	default:
		return nil, fmt.Errorf("fault: unknown design %v", d)
	}
	in.high = in.low
	if d == regfile.DesignPartitionedAdaptive {
		in.high[TargetFRF] = in.low[TargetFRF] * cfg.LowPowerFactor
	}
	for _, l := range in.high {
		in.lambdaMax += l
	}
	if in.lambdaMax > 0 {
		in.rearm()
	}
	return in, nil
}

// rearm draws the next inter-arrival gap at the envelope rate lambdaMax:
// exponential with mean 1/lambdaMax, floored at 1 cycle.
func (in *Injector) rearm() {
	u := in.arr.Float64()
	for u == 0 {
		u = in.arr.Float64()
	}
	gap := int64(-math.Log(u) / in.lambdaMax)
	if gap < 1 {
		gap = 1
	}
	in.down = gap
}

// Tick advances the fault process one cycle and reports whether a fault
// strikes this cycle. lowPower is the FRF's power mode this cycle; it
// scales the FRF's momentary rate. The no-strike path is branch-cheap
// and allocation-free.
func (in *Injector) Tick(lowPower bool) (Shot, bool) {
	if in.lambdaMax == 0 {
		return Shot{}, false
	}
	in.down--
	if in.down > 0 {
		return Shot{}, false
	}
	in.st.Fires++
	in.rearm()
	rates := &in.low
	if lowPower {
		rates = &in.high
	}
	var lambdaNow float64
	for _, l := range rates {
		lambdaNow += l
	}
	// Poisson thinning: accept the arrival with probability
	// lambdaNow/lambdaMax. The draw happens unconditionally — thinned
	// and accepted arrivals consume identical arrival-stream state, so
	// the candidate process replays bit-identically across mode-flip
	// histories (Float64 < 1 strictly, so lambdaNow == lambdaMax never
	// thins).
	if in.arr.Float64()*in.lambdaMax >= lambdaNow {
		in.st.Thinned++
		return Shot{}, false
	}
	// Attribute the strike to one array proportionally to momentary rate.
	pick := in.det.Float64() * lambdaNow
	target := TargetMRF
	for t, l := range rates {
		if pick < l || t == NumTargets-1 {
			target = Target(t)
			break
		}
		pick -= l
	}
	if rates[target] == 0 {
		// Degenerate pick into a zero-rate tail entry (possible only
		// through float round-off); fold it into the thinned count.
		in.st.Thinned++
		return Shot{}, false
	}
	shot := Shot{Target: target}
	if target == TargetCAM {
		shot.Bit = in.det.Intn(regfile.EntryBits)
		return shot, true
	}
	// Kind split: read-path, stuck-at (even 0/1), else transient.
	k := in.det.Float64()
	switch {
	case k < in.cfg.ReadPathFrac:
		shot.Kind = KindReadPath
	case k < in.cfg.ReadPathFrac+in.cfg.StuckAtFrac:
		shot.Kind = KindStuckAt0
		if in.det.Uint64()&1 == 1 {
			shot.Kind = KindStuckAt1
		}
	default:
		shot.Kind = KindTransient
	}
	shot.Lane = in.det.Intn(32)
	shot.Bit = in.det.Intn(32)
	return shot, true
}

// Intn exposes the detail RNG for victim selection (which warp slot,
// which register, which CAM entry): the simulator knows occupancy, the
// injector owns determinism. Victim draws share the detail stream, so
// they never perturb arrival timing.
func (in *Injector) Intn(n int) int { return in.det.Intn(n) }

// Stats returns the injector's mutable outcome counters. The simulator
// increments protection/recovery outcomes directly as it adjudicates
// each fault.
func (in *Injector) Stats() *Stats { return &in.st }

// Config returns the injector's effective (post-default) configuration.
func (in *Injector) Config() Config { return in.cfg }
