package fault

import (
	"errors"
	"strings"
	"testing"

	"pilotrf/internal/energy"
	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

func TestProtectionParseRoundTrip(t *testing.T) {
	for _, p := range []Protection{ProtectNone, ProtectParity, ProtectSECDED} {
		got, err := ParseProtection(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtection(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParseProtection("ecc"); err != nil || p != ProtectSECDED {
		t.Errorf("ecc alias = %v, %v", p, err)
	}
	if _, err := ParseProtection("hamming"); err == nil {
		t.Error("unknown protection accepted")
	}
}

func TestCheckBits(t *testing.T) {
	if got := ProtectNone.CheckBits(); got != 0 {
		t.Errorf("none check bits = %d", got)
	}
	if got := ProtectParity.CheckBits(); got != 1 {
		t.Errorf("parity check bits = %d", got)
	}
	if got := ProtectSECDED.CheckBits(); got != 7 {
		t.Errorf("secded check bits = %d, want 7 for SECDED(39,32)", got)
	}
}

func TestSchemeParse(t *testing.T) {
	cases := map[string]Scheme{
		"none":        Unprotected(),
		"unprotected": Unprotected(),
		"parity":      FullParity(),
		"secded":      FullSECDED(),
		"ecc":         FullSECDED(),
		"paper":       PaperScheme(),
	}
	for name, want := range cases {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseScheme("chipkill"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeValidateRejectsSplitFRF(t *testing.T) {
	s := Scheme{regfile.PartFRFHigh: ProtectParity}
	if err := s.Validate(); err == nil {
		t.Error("scheme protecting only one FRF power mode accepted: the two modes share one array")
	}
	for _, s := range []Scheme{Unprotected(), FullParity(), FullSECDED(), PaperScheme()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%v.Validate() = %v", s, err)
		}
	}
}

func TestSchemeAnyAndMask(t *testing.T) {
	if Unprotected().Any() {
		t.Error("unprotected scheme claims protection")
	}
	if !PaperScheme().Any() {
		t.Error("paper scheme claims no protection")
	}
	mask := PaperScheme().Mask()
	for p := 0; p < 4; p++ {
		if mask[p] != (PaperScheme()[p] != ProtectNone) {
			t.Errorf("mask[%d] = %v inconsistent with scheme", p, mask[p])
		}
	}
}

// The overhead per access must be the partition's data-access energy
// scaled by the code's relative redundancy: check bits over 32.
func TestOverheadTablePricing(t *testing.T) {
	for _, d := range []regfile.Design{
		regfile.DesignMonolithicSTV, regfile.DesignMonolithicNTV,
		regfile.DesignPartitioned, regfile.DesignPartitionedAdaptive,
	} {
		base := energy.PerAccessTable(d)
		for _, s := range []Scheme{Unprotected(), FullParity(), FullSECDED(), PaperScheme()} {
			tab := OverheadTable(d, s)
			for p := 0; p < 4; p++ {
				want := base[p] * float64(s[p].CheckBits()) / 32
				if tab[p] != want {
					t.Errorf("%v/%v overhead[%d] = %v, want %v", d, s, p, tab[p], want)
				}
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindTransient: "transient",
		KindReadPath:  "read-path",
		KindStuckAt0:  "stuck-at-0",
		KindStuckAt1:  "stuck-at-1",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if KindTransient.StuckAt() || KindReadPath.StuckAt() {
		t.Error("non-stuck-at kind reports stuck-at")
	}
	if !KindStuckAt0.StuckAt() || !KindStuckAt1.StuckAt() {
		t.Error("stuck-at kind not reported")
	}
}

func TestStatsAddAndTotal(t *testing.T) {
	a := Stats{Fires: 3, Corrected: 2}
	a.Injected[TargetSRF] = 5
	b := Stats{Fires: 1, SilentReads: 7}
	b.Injected[TargetSRF] = 2
	b.Injected[TargetCAM] = 1
	a.Add(b)
	if a.Fires != 4 || a.Corrected != 2 || a.SilentReads != 7 {
		t.Errorf("Add merged wrong: %+v", a)
	}
	if got := a.TotalInjected(); got != 8 {
		t.Errorf("TotalInjected = %d, want 8", got)
	}
}

func TestUnrecoverableError(t *testing.T) {
	err := error(&UnrecoverableError{
		Cycle: 42, SM: 1, Warp: 3, Reg: isa.R(5),
		Part: regfile.PartSRF, Kind: KindStuckAt1, Retries: 4,
	})
	var ue *UnrecoverableError
	if !errors.As(err, &ue) || ue.Cycle != 42 {
		t.Fatal("errors.As failed to recover the structured error")
	}
	msg := err.Error()
	for _, want := range []string{"stuck-at-1", "R5", "SRF"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}
