package fault

import "pilotrf/internal/flightrec"

// probeChecksumEvery pushes periodic checksums effectively off the end
// of any run: the probe only needs the end-of-kernel read hashes, which
// the simulator emits unconditionally at kernel drain.
const probeChecksumEvery = int64(1) << 40

// KernelDigest condenses one kernel's dataflow into a comparable value:
// the commutative read hash summed across SMs plus the total operand
// read count. Because the underlying hash is order-invariant and keyed
// on CTA-relative identity (not SM placement), two runs of the same
// kernel agree on the digest exactly when every executed instruction
// consumed the same register values — timing differences (retry stalls,
// different CTA→SM assignment) do not disturb it.
type KernelDigest struct {
	Hash  uint64
	Reads uint64
}

// DigestProbe is a flightrec.Sink that distills a run into per-kernel
// dataflow digests. Fault campaigns record a fault-free golden run and a
// faulty run through two probes; a digest mismatch on any kernel is
// silent data corruption, digest equality means the fault was masked
// (or fully corrected).
type DigestProbe struct {
	kernel int
	last   map[probeKey]KernelDigest
}

type probeKey struct {
	kernel int
	sm     int
}

// NewDigestProbe returns an empty probe.
func NewDigestProbe() *DigestProbe {
	return &DigestProbe{kernel: -1, last: make(map[probeKey]KernelDigest)}
}

// Record implements flightrec.Sink, keeping only the latest read hash
// per (kernel, SM).
func (p *DigestProbe) Record(e flightrec.Event) {
	switch e.Kind {
	case flightrec.KindKernelBegin:
		p.kernel++
	case flightrec.KindReadHash:
		p.last[probeKey{kernel: p.kernel, sm: e.SM}] = KernelDigest{Hash: e.A, Reads: e.B}
	}
}

// ChecksumEvery implements flightrec.Sink.
func (p *DigestProbe) ChecksumEvery() int64 { return probeChecksumEvery }

// Kernels returns how many kernels the probe observed.
func (p *DigestProbe) Kernels() int { return p.kernel + 1 }

// Digest folds the per-SM read hashes of one kernel into its
// KernelDigest. Wrapping addition keeps the fold commutative, so the
// digest is independent of which SM executed which CTA.
func (p *DigestProbe) Digest(kernel int) KernelDigest {
	var d KernelDigest
	for k, v := range p.last {
		if k.kernel == kernel {
			d.Hash += v.Hash
			d.Reads += v.Reads
		}
	}
	return d
}

// Diverged reports the first kernel whose digest differs between the
// two probes, or (-1, false) when every kernel agrees. A kernel-count
// mismatch (the faulty run aborted early) counts as divergence at the
// first missing kernel.
func (p *DigestProbe) Diverged(golden *DigestProbe) (int, bool) {
	return p.DivergedFromDigests(golden.Digests())
}

// Digests returns the per-kernel digests in kernel order — the
// serializable snapshot of a golden run that the campaign result cache
// persists, so later invocations compare trials against the stored
// digests without re-running the fault-free simulation.
func (p *DigestProbe) Digests() []KernelDigest {
	out := make([]KernelDigest, p.Kernels())
	for k := range out {
		out[k] = p.Digest(k)
	}
	return out
}

// DivergedFromDigests compares the probe against a stored golden
// snapshot (see Digests), with the same semantics as Diverged: the
// first mismatching kernel, and a kernel-count mismatch counting as
// divergence at the first missing kernel.
func (p *DigestProbe) DivergedFromDigests(golden []KernelDigest) (int, bool) {
	n := p.Kernels()
	if g := len(golden); g > n {
		n = g
	}
	for k := 0; k < n; k++ {
		var gd KernelDigest
		if k < len(golden) {
			gd = golden[k]
		}
		if p.Digest(k) != gd {
			return k, true
		}
	}
	if p.Kernels() != len(golden) {
		return n, true
	}
	return -1, false
}

// Equal reports whether both probes observed identical dataflow.
func (p *DigestProbe) Equal(golden *DigestProbe) bool {
	_, div := p.Diverged(golden)
	return !div
}
