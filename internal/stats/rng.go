package stats

import "math"

// RNG is a deterministic xorshift64* pseudo-random number generator.
// It is not cryptographically secure; it exists so that workload data
// generation and Monte Carlo sampling are reproducible without pulling in
// math/rand global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zeros fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32-bit pseudo-random value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0) by keeping u1 strictly positive.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
