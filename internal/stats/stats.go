// Package stats provides counters, histograms, aggregation helpers, and a
// deterministic random number generator shared by the simulator, the
// workload generators, and the circuit-level Monte Carlo models.
//
// Everything in this package is deliberately free of wall-clock time and
// global randomness so that every experiment in the repository is exactly
// reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a simple monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Histogram counts events per integer key (for example, per architected
// register identifier). Keys are small and dense in this codebase, so the
// histogram is backed by a slice.
type Histogram struct {
	counts []uint64
}

// NewHistogram returns a histogram with room for keys in [0, size).
// The histogram grows automatically if larger keys are added.
func NewHistogram(size int) *Histogram {
	return &Histogram{counts: make([]uint64, size)}
}

// Add increments the count for key by delta.
func (h *Histogram) Add(key int, delta uint64) {
	if key < 0 {
		panic(fmt.Sprintf("stats: negative histogram key %d", key))
	}
	for key >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[key] += delta
}

// Inc increments the count for key by one.
func (h *Histogram) Inc(key int) { h.Add(key, 1) }

// Count returns the count for key (zero if never added).
func (h *Histogram) Count(key int) uint64 {
	if key < 0 || key >= len(h.counts) {
		return 0
	}
	return h.counts[key]
}

// Total returns the sum of all counts.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Len returns the number of keys the histogram currently covers.
func (h *Histogram) Len() int { return len(h.counts) }

// Reset zeroes all counts, keeping the allocated capacity.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Snapshot returns a copy of the raw counts indexed by key.
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// KV is a (key, count) pair produced by TopN.
type KV struct {
	Key   int
	Count uint64
}

// TopN returns the n keys with the highest counts, in descending count
// order. Ties are broken by ascending key so the result is deterministic.
// Keys with zero counts are never returned, so the result may be shorter
// than n.
func (h *Histogram) TopN(n int) []KV {
	kvs := make([]KV, 0, len(h.counts))
	for k, c := range h.counts {
		if c > 0 {
			kvs = append(kvs, KV{Key: k, Count: c})
		}
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Count != kvs[j].Count {
			return kvs[i].Count > kvs[j].Count
		}
		return kvs[i].Key < kvs[j].Key
	})
	if len(kvs) > n {
		kvs = kvs[:n]
	}
	return kvs
}

// TopNShare returns the fraction of the histogram total captured by the n
// highest-count keys. It returns 0 when the histogram is empty.
func (h *Histogram) TopNShare(n int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var top uint64
	for _, kv := range h.TopN(n) {
		top += kv.Count
	}
	return float64(top) / float64(total)
}

// Share returns the fraction of the total captured by the given key set.
func (h *Histogram) Share(keys []int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var sum uint64
	for _, k := range keys {
		sum += h.Count(k)
	}
	return float64(sum) / float64(total)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of xs. All values must be positive;
// it returns 0 for an empty slice.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
