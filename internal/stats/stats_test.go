package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d, want 0", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	h.Inc(0)
	h.Add(2, 10)
	h.Inc(2)
	if got := h.Count(0); got != 1 {
		t.Errorf("Count(0) = %d, want 1", got)
	}
	if got := h.Count(2); got != 11 {
		t.Errorf("Count(2) = %d, want 11", got)
	}
	if got := h.Count(3); got != 0 {
		t.Errorf("Count(3) = %d, want 0", got)
	}
	if got := h.Total(); got != 12 {
		t.Errorf("Total = %d, want 12", got)
	}
}

func TestHistogramGrows(t *testing.T) {
	h := NewHistogram(1)
	h.Add(10, 3)
	if got := h.Count(10); got != 3 {
		t.Errorf("Count(10) = %d, want 3", got)
	}
	if h.Len() < 11 {
		t.Errorf("Len = %d, want >= 11", h.Len())
	}
}

func TestHistogramNegativeKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative key")
		}
	}()
	NewHistogram(1).Inc(-1)
}

func TestHistogramCountOutOfRange(t *testing.T) {
	h := NewHistogram(2)
	if got := h.Count(-5); got != 0 {
		t.Errorf("Count(-5) = %d, want 0", got)
	}
	if got := h.Count(100); got != 0 {
		t.Errorf("Count(100) = %d, want 0", got)
	}
}

func TestTopNOrdering(t *testing.T) {
	h := NewHistogram(8)
	h.Add(1, 5)
	h.Add(3, 9)
	h.Add(5, 9) // tie with key 3 -> key 3 first
	h.Add(7, 1)
	top := h.TopN(3)
	want := []KV{{3, 9}, {5, 9}, {1, 5}}
	if len(top) != len(want) {
		t.Fatalf("TopN len = %d, want %d", len(top), len(want))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("TopN[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
}

func TestTopNSkipsZeros(t *testing.T) {
	h := NewHistogram(10)
	h.Add(4, 2)
	top := h.TopN(5)
	if len(top) != 1 {
		t.Fatalf("TopN = %v, want single entry", top)
	}
}

func TestTopNShare(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0, 60)
	h.Add(1, 30)
	h.Add(2, 10)
	if got := h.TopNShare(1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("TopNShare(1) = %g, want 0.6", got)
	}
	if got := h.TopNShare(2); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TopNShare(2) = %g, want 0.9", got)
	}
	empty := NewHistogram(4)
	if got := empty.TopNShare(3); got != 0 {
		t.Errorf("empty TopNShare = %g, want 0", got)
	}
}

func TestShare(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0, 25)
	h.Add(1, 75)
	if got := h.Share([]int{1}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Share([1]) = %g, want 0.75", got)
	}
	if got := h.Share(nil); got != 0 {
		t.Errorf("Share(nil) = %g, want 0", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(4)
	h.Add(1, 7)
	h.Reset()
	if h.Total() != 0 {
		t.Errorf("Total after Reset = %d, want 0", h.Total())
	}
	if h.Len() != 4 {
		t.Errorf("Len after Reset = %d, want 4 (capacity kept)", h.Len())
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	h := NewHistogram(2)
	h.Add(0, 1)
	snap := h.Snapshot()
	snap[0] = 99
	if h.Count(0) != 1 {
		t.Error("mutating snapshot changed histogram")
	}
}

func TestMeanGeomeanStdDev(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := Geomean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Geomean = %g, want 10", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %g, want 0", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev = %g, want 0", got)
	}
	if got := StdDev([]float64{0, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev = %g, want 1", got)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive geomean input")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

// Property: TopNShare is monotonically non-decreasing in N and bounded by 1.
func TestPropertyTopNShareMonotone(t *testing.T) {
	f := func(counts []uint16) bool {
		h := NewHistogram(len(counts))
		for k, c := range counts {
			h.Add(k, uint64(c))
		}
		prev := 0.0
		for n := 0; n <= len(counts)+1; n++ {
			s := h.TopNShare(n)
			if s < prev-1e-12 || s > 1+1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Total equals the sum of the snapshot.
func TestPropertyTotalMatchesSnapshot(t *testing.T) {
	f := func(counts []uint16) bool {
		h := NewHistogram(1)
		for k, c := range counts {
			h.Add(k, uint64(c))
		}
		var sum uint64
		for _, c := range h.Snapshot() {
			sum += c
		}
		return sum == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
