package stats

import "testing"

func BenchmarkHistogramInc(b *testing.B) {
	h := NewHistogram(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Inc(i % 64)
	}
}

func BenchmarkHistogramTopN(b *testing.B) {
	h := NewHistogram(64)
	rng := NewRNG(1)
	for i := 0; i < 10000; i++ {
		h.Inc(rng.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.TopN(4)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
