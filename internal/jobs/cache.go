package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"pilotrf/internal/telemetry"
)

// CacheSchema versions the on-disk entry envelope; bump on incompatible
// change and every existing entry silently becomes a miss.
const CacheSchema = "pilotrf-jobcache/v1"

// Key is a content-addressed job identity: an FNV-1a 64-bit hash over a
// canonical preimage string built from every input the job's result
// depends on (design configuration, workload, seeds, schema versions).
// The preimage rides along so the cache can reject hash collisions and
// callers can log what a key means.
type Key struct {
	sum uint64
	pre string
}

// Hex returns the 16-digit lowercase hash, the cache's file stem.
func (k Key) Hex() string { return fmt.Sprintf("%016x", k.sum) }

// Preimage returns the canonical string the key hashes.
func (k Key) Preimage() string { return k.pre }

// String implements fmt.Stringer.
func (k Key) String() string { return k.Hex() }

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// KeyBuilder accumulates named fields into a canonical preimage and its
// FNV-1a hash. Field order is significant: callers must always build a
// given key kind with the same field sequence, which also means adding a
// field (a version bump, a new input) changes every key — stale entries
// then miss instead of poisoning results.
type KeyBuilder struct {
	sum uint64
	pre []byte
}

// NewKey starts a key.
func NewKey() *KeyBuilder {
	return &KeyBuilder{sum: fnvOffset}
}

// Field appends one name=value pair. Name/value are separated from other
// fields by a NUL, which cannot appear in the flag-derived values the
// keys are built from, so distinct field lists never collide textually.
func (b *KeyBuilder) Field(name, value string) *KeyBuilder {
	b.write(name)
	b.write("=")
	b.write(value)
	b.write("\x00")
	return b
}

// Uint appends an unsigned integer field.
func (b *KeyBuilder) Uint(name string, v uint64) *KeyBuilder {
	return b.Field(name, fmt.Sprintf("%d", v))
}

// Int appends a signed integer field.
func (b *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	return b.Field(name, fmt.Sprintf("%d", v))
}

// Float appends a float field in the shortest round-trippable form.
func (b *KeyBuilder) Float(name string, v float64) *KeyBuilder {
	return b.Field(name, fmt.Sprintf("%g", v))
}

func (b *KeyBuilder) write(s string) {
	for i := 0; i < len(s); i++ {
		b.sum ^= uint64(s[i])
		b.sum *= fnvPrime
	}
	b.pre = append(b.pre, s...)
}

// Sum finalizes the key.
func (b *KeyBuilder) Sum() Key {
	return Key{sum: b.sum, pre: string(b.pre)}
}

// CacheStats counts cache traffic since Open.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"`
	Puts    uint64 `json:"puts"`
}

// Cache is a content-addressed result store over a pluggable Backend:
// by default one JSON file per key under a directory, written atomically
// (temp file + rename) so an interrupted campaign never leaves a
// truncated entry that a resume would trip over; the fleet substitutes
// an HTTP backend so workers share one coordinator-side store.
//
// Loads are corruption-tolerant by contract: an unreadable entry, a
// schema or preimage mismatch, or an undecodable payload makes Get
// report a miss (counted in Stats().Corrupt) — the caller recomputes and
// overwrites, it never crashes. A nil *Cache is a valid no-op cache, so
// call sites need no "-cache-dir set?" branches.
type Cache struct {
	dir string // "" unless backed by a directory
	be  Backend

	mu    sync.Mutex
	stats CacheStats

	// Telemetry mirrors of stats (nil until Metrics attaches them).
	cHits    *telemetry.Counter
	cMisses  *telemetry.Counter
	cCorrupt *telemetry.Counter
	cPuts    *telemetry.Counter
}

// cacheEntry is the on-disk envelope. Storing the full preimage makes
// hash collisions detectable: a Get whose preimage disagrees with the
// stored one is treated as a miss rather than returning the colliding
// job's payload.
type cacheEntry struct {
	Schema   string          `json:"schema"`
	Key      string          `json:"key"`
	Preimage string          `json:"preimage"`
	Payload  json.RawMessage `json:"payload"`
}

// OpenCache creates dir if needed and returns the cache over it.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating cache dir: %w", err)
	}
	return &Cache{dir: dir, be: dirBackend{dir: dir}}, nil
}

// NewCache returns a cache over an arbitrary backend (the fleet's
// remote HTTP store). The envelope encoding and the integrity checks
// are identical to the directory cache's.
func NewCache(be Backend) (*Cache, error) {
	if be == nil {
		return nil, fmt.Errorf("jobs: nil cache backend")
	}
	return &Cache{be: be}, nil
}

// Dir returns the cache directory ("" for a nil cache or a non-directory
// backend).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Get loads the entry for key into out (a JSON-decodable pointer),
// reporting whether it hit. Every failure mode — missing file, torn
// write, foreign JSON, schema bump, hash collision, payload mismatch —
// is a miss, never an error.
func (c *Cache) Get(key Key, out interface{}) bool {
	if c == nil {
		return false
	}
	buf, err := c.be.Load(key.Hex())
	if err != nil {
		c.count(func(s *CacheStats) { s.Misses++ })
		return false
	}
	var ent cacheEntry
	if err := json.Unmarshal(buf, &ent); err != nil ||
		ent.Schema != CacheSchema || ent.Key != key.Hex() || ent.Preimage != key.Preimage() {
		c.count(func(s *CacheStats) { s.Misses++; s.Corrupt++ })
		return false
	}
	if err := json.Unmarshal(ent.Payload, out); err != nil {
		c.count(func(s *CacheStats) { s.Misses++; s.Corrupt++ })
		return false
	}
	c.count(func(s *CacheStats) { s.Hits++ })
	return true
}

// Put stores v under key atomically. Unlike Get, write failures are real
// errors: a cache the operator asked for that cannot persist anything
// should be heard about.
func (c *Cache) Put(key Key, v interface{}) error {
	if c == nil {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobs: encoding cache payload: %w", err)
	}
	ent := cacheEntry{Schema: CacheSchema, Key: key.Hex(), Preimage: key.Preimage(), Payload: payload}
	buf, err := json.MarshalIndent(ent, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding cache entry: %w", err)
	}
	buf = append(buf, '\n')
	if err := c.be.Store(key.Hex(), buf); err != nil {
		return err
	}
	c.count(func(s *CacheStats) { s.Puts++ })
	return nil
}

// LoadRaw returns the raw envelope bytes stored under a 16-hex key
// stem, validated (ValidateEnvelope) before serving — the read side of
// the fleet coordinator's remote-cache endpoint. Any failure, including
// a corrupt or mismatched envelope, reports a miss; serving a bad
// envelope to a worker would only turn into a miss there anyway, so it
// is cut off at the source. Safe on a nil cache.
func (c *Cache) LoadRaw(hexKey string) ([]byte, bool) {
	if c == nil || !ValidHexKey(hexKey) {
		return nil, false
	}
	buf, err := c.be.Load(hexKey)
	if err != nil {
		c.count(func(s *CacheStats) { s.Misses++ })
		return nil, false
	}
	if err := ValidateEnvelope(hexKey, buf); err != nil {
		c.count(func(s *CacheStats) { s.Misses++; s.Corrupt++ })
		return nil, false
	}
	c.count(func(s *CacheStats) { s.Hits++ })
	return buf, true
}

// StoreRaw persists envelope bytes under a 16-hex key stem after
// validating them — the write side of the fleet coordinator's
// remote-cache endpoint. Unlike Get's tolerant reads, a bad envelope is
// an error: accepting it would plant a guaranteed future miss (or worse)
// in the store. Safe on a nil cache (no-op).
func (c *Cache) StoreRaw(hexKey string, data []byte) error {
	if c == nil {
		return nil
	}
	if !ValidHexKey(hexKey) {
		return fmt.Errorf("jobs: bad cache key %q", hexKey)
	}
	if err := ValidateEnvelope(hexKey, data); err != nil {
		return err
	}
	if err := c.be.Store(hexKey, data); err != nil {
		return err
	}
	c.count(func(s *CacheStats) { s.Puts++ })
	return nil
}

// Stats returns the traffic counters (zero for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Metrics registers the cache's traffic counters (cache_hits,
// cache_misses, cache_corrupt, cache_puts) in reg, so a live telemetry
// endpoint — pilotserve /metrics — exposes warm-resume effectiveness.
// Counters registered mid-life start from the registration point; call
// right after OpenCache. Safe on a nil cache or nil registry.
func (c *Cache) Metrics(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.mu.Lock()
	c.cHits = reg.Counter("cache_hits")
	c.cMisses = reg.Counter("cache_misses")
	c.cCorrupt = reg.Counter("cache_corrupt")
	c.cPuts = reg.Counter("cache_puts")
	c.mu.Unlock()
}

func (c *Cache) count(f func(*CacheStats)) {
	c.mu.Lock()
	before := c.stats
	f(&c.stats)
	after := c.stats
	hits, misses := c.cHits, c.cMisses
	corrupt, puts := c.cCorrupt, c.cPuts
	c.mu.Unlock()
	if hits == nil {
		return
	}
	hits.Add(after.Hits - before.Hits)
	misses.Add(after.Misses - before.Misses)
	corrupt.Add(after.Corrupt - before.Corrupt)
	puts.Add(after.Puts - before.Puts)
}
