package jobs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCacheCorruptConcurrentReaders: N goroutines racing Get against a
// truncated envelope all degrade to a clean miss — no panic, no partial
// decode, and the corrupt tally counts every reader. Run under -race in
// CI, this pins the fleet's shared-cache failure mode: a torn write on
// the coordinator's store turns into N recomputations, never N crashes.
func TestCacheCorruptConcurrentReaders(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("v1")
	if err := c.Put(key, payload{Name: "sgemm", Cycles: 99}); err != nil {
		t.Fatal(err)
	}
	// Tear the entry mid-envelope, the on-disk shape of a crash during a
	// non-atomic copy.
	path := filepath.Join(dir, key.Hex()+".json")
	if err := os.WriteFile(path, []byte(`{"schema": "pilotrf-jobcache/v1", "key": "`), 0o644); err != nil {
		t.Fatal(err)
	}

	const readers = 16
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
	)
	hits := make([]bool, readers)
	start.Add(readers)
	done.Add(readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate // maximize overlap: everyone reads at once
			var got payload
			hits[i] = c.Get(key, &got)
			if hits[i] {
				t.Errorf("reader %d: corrupt entry returned a hit (%+v)", i, got)
			}
			if got != (payload{}) {
				t.Errorf("reader %d: miss left partial decode %+v", i, got)
			}
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	st := c.Stats()
	if st.Corrupt != readers {
		t.Errorf("corrupt count %d, want %d (every reader must see the corruption)", st.Corrupt, readers)
	}

	// The miss-and-recompute contract: racing healers (any reader that
	// recomputed may write back) and readers never observe anything but
	// a miss or the healed payload.
	healed := payload{Name: "sgemm", Cycles: 99}
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if err := c.Put(key, healed); err != nil {
					t.Errorf("healer %d: %v", i, err)
				}
			}
			var got payload
			if c.Get(key, &got) && got != healed {
				t.Errorf("reader %d: hit with wrong payload %+v", i, got)
			}
		}(i)
	}
	wg.Wait()
	var got payload
	if !c.Get(key, &got) || got != healed {
		t.Fatalf("entry not healed after concurrent recompute: %+v", got)
	}
}
