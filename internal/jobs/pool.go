// Package jobs is the repository's deterministic parallel execution
// engine: a work-stealing worker pool that runs independent simulation
// cells concurrently while merging their results in canonical submission
// order, plus a content-addressed on-disk result cache keyed by FNV-1a
// job hashes (see cache.go).
//
// Determinism is the design constraint everything else bends around.
// Every task is an independent, pure computation (a seeded simulation),
// so execution order cannot change any individual result; the pool then
// guarantees that a Batch exposes its results indexed by submission
// position, never by completion order. A campaign driver that formats
// results by walking the batch in order therefore produces output
// byte-identical to a sequential loop, whatever interleaving the workers
// chose — the property cmd/faultcampaign's and cmd/pilotsim's regression
// tests pin down.
//
// The pool is a classic work-stealing scheduler in the Blumofe/Leiserson
// shape: each worker owns a deque of task chunks, pushes and pops at the
// back (LIFO, for cache locality on freshly submitted work), and steals
// from the front of a victim's deque (FIFO, taking the oldest — and
// therefore largest-remaining — chunks) when its own runs dry. Batches
// are split into chunks and dealt round-robin across the deques at
// submission, so even a single large batch starts on all cores without
// any stealing at all; stealing only pays for tail imbalance, which is
// exactly where simulation cells (whose runtimes vary by orders of
// magnitude across workloads) need it.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pilotrf/internal/telemetry"
	"pilotrf/internal/trace"
)

// Task is one unit of work. Tasks must be independent of one another and
// respect ctx cancellation if they run long. The returned value lands in
// the batch's Result slot at the task's submission index.
type Task func(ctx context.Context) (interface{}, error)

// Result is a task's outcome: exactly one of Value and Err is meaningful.
type Result struct {
	Value interface{}
	Err   error
}

// ErrQueueFull reports that a TrySubmit would exceed the pool's bounded
// queue. Callers translate it into backpressure (cmd/pilotserve answers
// HTTP 429 with Retry-After).
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed reports a submission to a closed pool.
var ErrClosed = errors.New("jobs: pool closed")

// PanicError wraps a panic recovered from a task so one faulty cell
// cannot take down the whole campaign: the panicking task's Result
// carries the PanicError, every other task completes normally, and the
// worker that caught it keeps serving.
type PanicError struct {
	// Value is the value passed to panic.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("jobs: task panicked: %v\n%s", e.Value, e.Stack)
}

// DefaultQueueDepth bounds outstanding (submitted, unfinished) tasks
// when Config.QueueDepth is zero.
const DefaultQueueDepth = 4096

// Config sizes a Pool.
type Config struct {
	// Workers is the number of worker goroutines. Zero or negative is a
	// configuration error (use runtime.GOMAXPROCS(0) explicitly for
	// "one per core"); a deliberately sequential pool has Workers == 1.
	Workers int
	// QueueDepth bounds the outstanding tasks across all batches:
	// Submit blocks (and TrySubmit fails) while a new batch would push
	// the outstanding count past it. Zero selects DefaultQueueDepth.
	QueueDepth int
	// ChunkSize is the number of tasks per deque chunk. Zero sizes
	// chunks automatically (batch/(4*workers), minimum 1) so a batch
	// spreads across every worker with stealable remainders.
	ChunkSize int
	// Metrics, when set, registers the pool's counters and gauges
	// (jobs_submitted, jobs_completed, jobs_panics, jobs_steals,
	// jobs_queued, jobs_running) in the registry, so a live telemetry
	// endpoint exposes queue pressure.
	Metrics *telemetry.Registry
}

// Pool is a work-stealing worker pool. Create with New, submit batches
// with Submit/TrySubmit, and stop it with Close.
type Pool struct {
	workers    int
	queueDepth int
	chunkSize  int

	mu          sync.Mutex
	cond        *sync.Cond // guards deques/outstanding; signals work and space
	deques      []dequeSlot
	nextDeque   int // round-robin deal position
	outstanding int // submitted, not yet finished
	closed      bool

	wg sync.WaitGroup

	// Metrics (nil-safe: only touched when configured).
	cSubmitted *telemetry.Counter
	cCompleted *telemetry.Counter
	cPanics    *telemetry.Counter
	cSteals    *telemetry.Counter
	gQueued    *telemetry.Gauge
	gRunning   *telemetry.Gauge
}

// dequeSlot is one worker's chunk deque. The front (index 0) is the
// steal side; the back is the owner side.
type dequeSlot struct {
	chunks []chunk
}

// chunk is a contiguous range [lo, hi) of one batch's tasks. home is
// the deque the chunk currently belongs to; stolen marks a chunk taken
// from another worker's deque (home then still names the victim), which
// span tracing reports as the task's steal origin.
type chunk struct {
	b      *Batch
	lo, hi int
	home   int
	stolen bool
}

// Batch tracks one submission. Results are indexed by submission
// position regardless of execution order.
type Batch struct {
	ctx     context.Context
	pool    *Pool
	tasks   []Task
	results []Result
	done    atomic.Int64
	total   int
	fin     chan struct{}

	// Span tracing (zero value = disabled): the span context captured
	// from the submission ctx once per batch — never per task, so the
	// disabled hot path does no context lookups — and the wall-clock
	// submit instant queue waits are measured from.
	sc       trace.SpanContext
	submitNS int64
}

// New validates cfg and starts the workers.
func New(cfg Config) (*Pool, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("jobs: %d workers (a pool needs at least one; use runtime.GOMAXPROCS(0) for one per core)", cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("jobs: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.ChunkSize < 0 {
		return nil, fmt.Errorf("jobs: negative chunk size %d", cfg.ChunkSize)
	}
	p := &Pool{
		workers:    cfg.Workers,
		queueDepth: cfg.QueueDepth,
		chunkSize:  cfg.ChunkSize,
		deques:     make([]dequeSlot, cfg.Workers),
	}
	if p.queueDepth == 0 {
		p.queueDepth = DefaultQueueDepth
	}
	p.cond = sync.NewCond(&p.mu)
	if reg := cfg.Metrics; reg != nil {
		p.cSubmitted = reg.Counter("jobs_submitted")
		p.cCompleted = reg.Counter("jobs_completed")
		p.cPanics = reg.Counter("jobs_panics")
		p.cSteals = reg.Counter("jobs_steals")
		p.gQueued = reg.Gauge("jobs_queued")
		p.gRunning = reg.Gauge("jobs_running")
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker(i)
	}
	return p, nil
}

// NumWorkers returns the pool's worker count.
func (p *Pool) NumWorkers() int { return p.workers }

// Close stops the workers after the already-queued work drains. It is
// safe to call once; submissions after Close fail with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Submit enqueues tasks as one batch, blocking while the pool's queue is
// full until space frees, ctx is cancelled, or the pool closes. The
// batch's results appear in submission order.
func (p *Pool) Submit(ctx context.Context, tasks []Task) (*Batch, error) {
	return p.submit(ctx, tasks, true)
}

// TrySubmit is Submit without blocking: when the tasks would push the
// outstanding count past the queue depth it fails fast with ErrQueueFull.
func (p *Pool) TrySubmit(ctx context.Context, tasks []Task) (*Batch, error) {
	return p.submit(ctx, tasks, false)
}

func (p *Pool) submit(ctx context.Context, tasks []Task, block bool) (*Batch, error) {
	if len(tasks) > p.queueDepth {
		return nil, fmt.Errorf("jobs: batch of %d exceeds queue depth %d: %w", len(tasks), p.queueDepth, ErrQueueFull)
	}
	b := &Batch{
		ctx:     ctx,
		pool:    p,
		tasks:   tasks,
		results: make([]Result, len(tasks)),
		total:   len(tasks),
		fin:     make(chan struct{}),
	}
	if sc := trace.FromContext(ctx); sc.Active() {
		b.sc = sc
		if sc.WallClock() {
			b.submitNS = time.Now().UnixNano()
		}
	}
	if len(tasks) == 0 {
		close(b.fin)
		return b, nil
	}

	p.mu.Lock()
	for !p.closed && p.outstanding+len(tasks) > p.queueDepth {
		if !block {
			p.mu.Unlock()
			return nil, ErrQueueFull
		}
		// A cond.Wait cannot watch ctx, so bridge cancellation with a
		// broadcast: the watcher goroutine pokes every Submit waiter
		// when ctx dies, and the waiter rechecks ctx below.
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		stopWatch := p.watchContext(ctx)
		p.cond.Wait()
		stopWatch()
	}
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		p.mu.Unlock()
		return nil, err
	}

	p.outstanding += len(tasks)
	size := p.chunkSize
	if size <= 0 {
		size = len(tasks) / (4 * p.workers)
		if size < 1 {
			size = 1
		}
	}
	for lo := 0; lo < len(tasks); lo += size {
		hi := lo + size
		if hi > len(tasks) {
			hi = len(tasks)
		}
		home := p.nextDeque % p.workers
		p.nextDeque++
		d := &p.deques[home]
		d.chunks = append(d.chunks, chunk{b: b, lo: lo, hi: hi, home: home})
	}
	p.cond.Broadcast()
	p.mu.Unlock()

	if p.cSubmitted != nil {
		p.cSubmitted.Add(uint64(len(tasks)))
		p.gQueued.Add(int64(len(tasks)))
	}
	return b, nil
}

// watchContext broadcasts on the pool's cond when ctx is cancelled so a
// Submit waiter wakes up and observes the cancellation. The returned
// stop function must be called with p.mu held.
func (p *Pool) watchContext(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-quit:
		}
	}()
	return func() { close(quit) }
}

// worker is one scheduling loop: drain the own deque back-to-front, then
// steal front chunks from the other deques, then park.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		c, ok := p.next(id)
		if !ok {
			return
		}
		p.runTask(c, id)
	}
}

// next pops one task for worker id, splitting chunks so the remainder
// stays stealable, or parks until work arrives. ok is false when the
// pool has closed and no work remains.
func (p *Pool) next(id int) (chunk, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		// Own deque, owner side (back).
		if d := &p.deques[id]; len(d.chunks) > 0 {
			c := d.chunks[len(d.chunks)-1]
			d.chunks = d.chunks[:len(d.chunks)-1]
			return p.splitLocked(id, c), true
		}
		// Steal: scan victims in a deterministic ring from id+1, taking
		// the oldest chunk (front) so the victim keeps its hot tail.
		for off := 1; off < p.workers; off++ {
			v := &p.deques[(id+off)%p.workers]
			if len(v.chunks) == 0 {
				continue
			}
			c := v.chunks[0]
			v.chunks = v.chunks[1:]
			c.stolen = true // home still names the victim deque
			if p.cSteals != nil {
				p.cSteals.Inc()
			}
			return p.splitLocked(id, c), true
		}
		if p.closed {
			return chunk{}, false
		}
		p.cond.Wait()
	}
}

// splitLocked carves the first task off c, pushing any remainder onto
// worker id's own deque (back, so the owner continues it LIFO while
// thieves can still take it from the front). Callers hold p.mu.
func (p *Pool) splitLocked(id int, c chunk) chunk {
	if c.hi-c.lo > 1 {
		// The remainder now lives in id's deque: it is only "stolen"
		// again if another worker later takes it from there.
		rest := chunk{b: c.b, lo: c.lo + 1, hi: c.hi, home: id}
		p.deques[id].chunks = append(p.deques[id].chunks, rest)
		// Another worker may be parked while this remainder is stealable.
		p.cond.Signal()
		c.hi = c.lo + 1
	}
	return c
}

// runTask executes one task with panic isolation and completion
// accounting. worker is the executing worker's id; the chunk carries
// the steal provenance span tracing annotates tasks with.
func (p *Pool) runTask(c chunk, worker int) {
	b, i := c.b, c.lo
	if p.gQueued != nil {
		p.gQueued.Add(-1)
		p.gRunning.Add(1)
	}
	// Span hook: one branch on a captured struct when disabled — no
	// context lookup, no allocation (test- and benchmark-asserted).
	// The span id derives from the parent span and submission index,
	// so the tree is identical whatever worker ran the task; worker,
	// steal origin, and queue wait are wall-only annotations.
	var sp *trace.ActiveSpan
	if b.sc.Active() {
		idx := strconv.Itoa(i)
		sp = b.sc.Start("pool.task", idx)
		sp.SetAttr("index", idx)
		if b.submitNS != 0 {
			sp.SetWallAttr("queue_ns", strconv.FormatInt(time.Now().UnixNano()-b.submitNS, 10))
		}
		sp.SetWallAttr("worker", strconv.Itoa(worker))
		if c.stolen {
			sp.SetWallAttr("stolen_from", strconv.Itoa(c.home))
		}
	}
	if err := b.ctx.Err(); err != nil {
		// The batch was cancelled: charge the task with the
		// cancellation instead of running it.
		b.results[i] = Result{Err: err}
	} else {
		b.results[i] = p.invoke(b.ctx, b.tasks[i])
	}
	sp.End()
	if p.gRunning != nil {
		p.gRunning.Add(-1)
		p.cCompleted.Inc()
	}

	p.mu.Lock()
	p.outstanding--
	p.cond.Broadcast() // wake Submit waiters blocked on queue space
	p.mu.Unlock()

	if b.done.Add(1) == int64(b.total) {
		close(b.fin)
	}
}

// invoke runs one task, converting panics to *PanicError.
func (p *Pool) invoke(ctx context.Context, t Task) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			if p.cPanics != nil {
				p.cPanics.Inc()
			}
			res = Result{Err: &PanicError{Value: r, Stack: debug.Stack()}}
		}
	}()
	v, err := t(ctx)
	return Result{Value: v, Err: err}
}

// Done returns a channel closed when every task of the batch has
// finished (successfully, with an error, or skipped by cancellation).
func (b *Batch) Done() <-chan struct{} { return b.fin }

// Progress returns how many tasks have finished out of the total.
func (b *Batch) Progress() (done, total int) {
	return int(b.done.Load()), b.total
}

// Wait blocks until the batch completes or ctx is cancelled, returning
// the results in submission order. After a ctx cancellation the batch
// keeps draining in the background (cancelled tasks finish instantly);
// the partially filled results must not be read.
func (b *Batch) Wait(ctx context.Context) ([]Result, error) {
	select {
	case <-b.fin:
		return b.results, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Map is the convenience path most callers want: run fn over n indexes
// on the pool and return the values in index order. The first task error
// (in index order, so deterministically the same one every run) is
// returned after the whole batch has drained.
func Map(ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (interface{}, error)) ([]interface{}, error) {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func(ctx context.Context) (interface{}, error) { return fn(ctx, i) }
	}
	b, err := p.Submit(ctx, tasks)
	if err != nil {
		return nil, err
	}
	results, err := b.Wait(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]interface{}, n)
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("jobs: task %d: %w", i, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}

// DefaultWorkers is the conventional worker count: one per core.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
