package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pilotrf/internal/telemetry"
)

// TestZeroWorkerConfigRejected: a pool cannot run with zero or negative
// workers, and the error says how to ask for one-per-core.
func TestZeroWorkerConfigRejected(t *testing.T) {
	for _, n := range []int{0, -1, -8} {
		if _, err := New(Config{Workers: n}); err == nil {
			t.Errorf("New(Workers=%d) succeeded, want error", n)
		}
	}
	if _, err := New(Config{Workers: 1, QueueDepth: -1}); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := New(Config{Workers: 1, ChunkSize: -1}); err == nil {
		t.Error("negative chunk size accepted")
	}
}

// TestOrderedMerge: results arrive indexed by submission order even when
// completion order is scrambled.
func TestOrderedMerge(t *testing.T) {
	p, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 64
	out, err := Map(context.Background(), p, n, func(ctx context.Context, i int) (interface{}, error) {
		// Earlier tasks sleep longer, so completion order inverts
		// submission order if the scheduler lets it.
		time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i*i {
			t.Fatalf("slot %d holds %v, want %d", i, v, i*i)
		}
	}
}

// TestPanicIsolation: one panicking task surfaces as a *PanicError in
// its own slot; every other task completes; the pool survives for the
// next batch.
func TestPanicIsolation(t *testing.T) {
	p, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tasks := make([]Task, 8)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (interface{}, error) {
			if i == 3 {
				panic("boom in cell 3")
			}
			return i, nil
		}
	}
	b, err := p.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	results, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 3 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("slot 3: err %v, want *PanicError", r.Err)
			}
			if pe.Value != "boom in cell 3" || len(pe.Stack) == 0 {
				t.Fatalf("panic payload not preserved: %v", pe.Value)
			}
			continue
		}
		if r.Err != nil || r.Value.(int) != i {
			t.Fatalf("slot %d: (%v, %v), want (%d, nil)", i, r.Value, r.Err, i)
		}
	}
	// The pool still works after hosting a panic.
	out, err := Map(context.Background(), p, 4, func(ctx context.Context, i int) (interface{}, error) {
		return i + 100, nil
	})
	if err != nil || out[3].(int) != 103 {
		t.Fatalf("pool broken after panic: %v %v", out, err)
	}
}

// TestCancellationMidBatch: cancelling the batch context stops unstarted
// tasks (they finish with ctx.Err()) and the batch still drains fully.
func TestCancellationMidBatch(t *testing.T) {
	// One chunk spanning the whole batch makes the single worker run
	// tasks in submission order, so task 0 is in flight when we cancel.
	p, err := New(Config{Workers: 1, ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	tasks := make([]Task, 16)
	tasks[0] = func(ctx context.Context) (interface{}, error) {
		close(started)
		<-release
		return "first", nil
	}
	for i := 1; i < len(tasks); i++ {
		tasks[i] = func(ctx context.Context) (interface{}, error) { return "ran", nil }
	}
	b, err := p.Submit(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	close(release)
	results, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Value != "first" {
		t.Fatalf("in-flight task result %+v, want completed value", results[0])
	}
	cancelled := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled != len(tasks)-1 {
		t.Fatalf("%d of %d pending tasks cancelled, want all", cancelled, len(tasks)-1)
	}
	if done, total := b.Progress(); done != total {
		t.Fatalf("batch did not drain: %d/%d", done, total)
	}
}

// TestQueueFullBackpressure: TrySubmit refuses work past the queue
// depth with ErrQueueFull; Submit blocks until space frees.
func TestQueueFullBackpressure(t *testing.T) {
	p, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := []Task{func(ctx context.Context) (interface{}, error) {
		close(started)
		<-release
		return nil, nil
	}}
	filler := make([]Task, 3)
	for i := range filler {
		filler[i] = func(ctx context.Context) (interface{}, error) { return nil, nil }
	}
	b1, err := p.Submit(context.Background(), blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b2, err := p.Submit(context.Background(), filler) // queue now 4/4
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrySubmit(context.Background(), filler[:1]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue: %v, want ErrQueueFull", err)
	}
	// A batch larger than the whole queue can never run: fail fast even
	// on the blocking path.
	big := make([]Task, 5)
	for i := range big {
		big[i] = filler[0]
	}
	if _, err := p.Submit(context.Background(), big); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: %v, want ErrQueueFull", err)
	}
	// Submit blocks while full, then proceeds once the blocker retires.
	var unblocked atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b3, err := p.Submit(context.Background(), filler[:1])
		if err != nil {
			t.Errorf("blocked Submit: %v", err)
			return
		}
		unblocked.Store(true)
		b3.Wait(context.Background())
	}()
	time.Sleep(20 * time.Millisecond)
	if unblocked.Load() {
		t.Fatal("Submit did not block on a full queue")
	}
	close(release)
	wg.Wait()
	if _, err := b1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A context cancellation releases a blocked Submit.
	release2 := make(chan struct{})
	started2 := make(chan struct{})
	var once sync.Once
	hold := make([]Task, 4)
	for i := range hold {
		hold[i] = func(ctx context.Context) (interface{}, error) {
			once.Do(func() { close(started2) })
			<-release2
			return nil, nil
		}
	}
	bh, err := p.Submit(context.Background(), hold)
	if err != nil {
		t.Fatal(err)
	}
	<-started2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := p.Submit(ctx, filler[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Submit: %v, want context.Canceled", err)
	}
	close(release2)
	bh.Wait(context.Background())
}

// TestErrorPropagatesDeterministically: Map returns the lowest-index
// error however the workers interleave.
func TestErrorPropagatesDeterministically(t *testing.T) {
	p, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for trial := 0; trial < 5; trial++ {
		_, err := Map(context.Background(), p, 32, func(ctx context.Context, i int) (interface{}, error) {
			if i%7 == 5 { // tasks 5, 12, 19, 26 fail
				return nil, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "jobs: task 5: cell 5 failed" {
			t.Fatalf("trial %d: error %v, want the lowest-index failure", trial, err)
		}
	}
}

// TestClosedPoolRejectsWork: submissions after Close fail with ErrClosed
// and Close drains queued work first.
func TestClosedPoolRejectsWork(t *testing.T) {
	p, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	b, err := p.Submit(context.Background(), []Task{
		func(ctx context.Context) (interface{}, error) { ran.Add(1); return nil, nil },
		func(ctx context.Context) (interface{}, error) { ran.Add(1); return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if ran.Load() != 2 {
		t.Fatalf("queued work dropped at close: ran %d of 2", ran.Load())
	}
	if _, err := p.Submit(context.Background(), []Task{func(ctx context.Context) (interface{}, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestPoolMetrics: a configured registry sees submission/completion
// counters move and the queue gauges return to zero at rest.
func TestPoolMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(Config{Workers: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := Map(context.Background(), p, 20, func(ctx context.Context, i int) (interface{}, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	m := reg.Map()
	if m["jobs_submitted"] != 20 || m["jobs_completed"] != 20 {
		t.Fatalf("submitted/completed = %v/%v, want 20/20", m["jobs_submitted"], m["jobs_completed"])
	}
	if m["jobs_queued"] != 0 || m["jobs_running"] != 0 {
		t.Fatalf("gauges at rest = queued %v running %v, want 0/0", m["jobs_queued"], m["jobs_running"])
	}
}

// TestWorkStealingSpreadsLoad: with one worker wedged on a long task,
// the other workers steal the wedged worker's queued chunks instead of
// idling — the batch completes while the long task is still running.
func TestWorkStealingSpreadsLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Chunks of 4 dealt round-robin over 2 deques guarantee the slow
	// task's deque also holds fast chunks that must be stolen.
	p, err := New(Config{Workers: 2, ChunkSize: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	release := make(chan struct{})
	tasks := make([]Task, 32)
	tasks[0] = func(ctx context.Context) (interface{}, error) {
		<-release
		return nil, nil
	}
	var fast atomic.Int64
	for i := 1; i < len(tasks); i++ {
		tasks[i] = func(ctx context.Context) (interface{}, error) {
			fast.Add(1)
			return nil, nil
		}
	}
	b, err := p.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for fast.Load() < int64(len(tasks)-1) {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d fast tasks ran while one worker was wedged (no stealing?)", fast.Load(), len(tasks)-1)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	if _, err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if reg.Map()["jobs_steals"] == 0 {
		t.Error("no steals recorded despite a wedged worker")
	}
}
