package jobs

import (
	"bytes"
	"context"
	"strconv"
	"testing"

	"pilotrf/internal/telemetry"
	"pilotrf/internal/trace"
)

// poolSpanNDJSON runs n no-op tasks on a workers-wide pool under a
// traced context and returns the deterministic span NDJSON bytes.
func poolSpanNDJSON(t *testing.T, workers, n int) []byte {
	t.Helper()
	p, err := New(Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rec := trace.NewRecorder(false)
	root := rec.Root("batch", trace.TraceID("jobs-test"), "b")
	ctx := trace.NewContext(context.Background(), root.Context())
	if _, err := Map(ctx, p, n, func(ctx context.Context, i int) (interface{}, error) {
		return i * i, nil
	}); err != nil {
		t.Fatal(err)
	}
	root.End()
	var buf bytes.Buffer
	if err := trace.WriteSpans(&buf, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPoolTaskSpansWorkerCountInvariant pins the tracing contract the
// whole subsystem rests on: the span tree (ids, parentage, attrs) is
// byte-identical whether one worker or eight ran the batch.
func TestPoolTaskSpansWorkerCountInvariant(t *testing.T) {
	seq := poolSpanNDJSON(t, 1, 64)
	par := poolSpanNDJSON(t, 8, 64)
	if !bytes.Equal(seq, par) {
		t.Fatalf("span NDJSON differs between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", seq, par)
	}
	spans, err := trace.ReadSpans(bytes.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 65 { // root + 64 pool.task
		t.Fatalf("got %d spans, want 65", len(spans))
	}
	if _, err := trace.BuildTree(spans); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	tasks := 0
	for _, s := range spans {
		if s.Name != "pool.task" {
			continue
		}
		tasks++
		if s.Wall != nil {
			t.Fatalf("deterministic recorder leaked a wall section: %+v", s)
		}
		if s.Attrs["index"] == "" {
			t.Fatalf("pool.task missing index attr: %+v", s)
		}
	}
	if tasks != 64 {
		t.Fatalf("got %d pool.task spans, want 64", tasks)
	}
}

// TestPoolTaskSpansWallAnnotations checks the nondeterministic side:
// wall sections carry worker ids and queue waits, and the tree stays
// interval-consistent.
func TestPoolTaskSpansWallAnnotations(t *testing.T) {
	p, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rec := trace.NewRecorder(true)
	root := rec.Root("batch", trace.TraceID("jobs-wall"), "b")
	ctx := trace.NewContext(context.Background(), root.Context())
	if _, err := Map(ctx, p, 32, func(ctx context.Context, i int) (interface{}, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	root.End()
	spans := rec.Spans()
	if _, err := trace.BuildTree(spans); err != nil {
		t.Fatalf("wall tree invalid: %v", err)
	}
	for _, s := range spans {
		if s.Name != "pool.task" {
			continue
		}
		if s.Wall == nil {
			t.Fatalf("wall recorder produced span without wall: %+v", s)
		}
		w := s.Wall.Attrs["worker"]
		if w == "" {
			t.Fatalf("pool.task missing worker wall attr: %+v", s.Wall)
		}
		if n, err := strconv.Atoi(w); err != nil || n < 0 || n >= 4 {
			t.Fatalf("bad worker id %q", w)
		}
		if s.Wall.Attrs["queue_ns"] == "" {
			t.Fatalf("pool.task missing queue_ns wall attr: %+v", s.Wall)
		}
		if origin, ok := s.Wall.Attrs["stolen_from"]; ok {
			if n, err := strconv.Atoi(origin); err != nil || n < 0 || n >= 4 {
				t.Fatalf("bad stolen_from %q", origin)
			}
		}
	}
	// Deterministic projection of a wall recording still matches the
	// no-wall recorder's byte output shape after stripping.
	if _, err := trace.BuildTree(trace.StripWall(spans)); err != nil {
		t.Fatalf("stripped tree invalid: %v", err)
	}
}

// TestPoolTracingDisabledZeroAlloc asserts the disabled span path adds
// no per-task allocations: a 1024-task batch stays under a small
// constant bound that per-task work (even one alloc per task) would
// blow past by an order of magnitude.
func TestPoolTracingDisabledZeroAlloc(t *testing.T) {
	p, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	tasks := make([]Task, 1024)
	for i := range tasks {
		tasks[i] = func(ctx context.Context) (interface{}, error) { return nil, nil }
	}
	allocs := testing.AllocsPerRun(10, func() {
		b, err := p.Submit(ctx, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	})
	// Per-batch bookkeeping (batch struct, results slice, chunk deque
	// growth, fin channel) is allowed; anything scaling with the 1024
	// tasks is not.
	if allocs > 64 {
		t.Fatalf("disabled tracing allocates: %.0f allocs per 1024-task batch", allocs)
	}
}

// TestPoolTracingDisabledNoSpans double-checks nothing records without
// an active context.
func TestPoolTracingDisabledNoSpans(t *testing.T) {
	p, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := Map(context.Background(), p, 8, func(ctx context.Context, i int) (interface{}, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPoolTaskTracingDisabled / Enabled put the hot-path cost on
// the benchdiff record.
func benchmarkPoolTasks(b *testing.B, traced bool) {
	p, err := New(Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	var root *trace.ActiveSpan
	if traced {
		rec := trace.NewRecorder(false)
		root = rec.Root("bench", trace.TraceID("bench"))
		ctx = trace.NewContext(ctx, root.Context())
	}
	tasks := make([]Task, 256)
	for i := range tasks {
		tasks[i] = func(ctx context.Context) (interface{}, error) { return nil, nil }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := p.Submit(ctx, tasks)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := batch.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	root.End()
}

func BenchmarkPoolTaskTracingDisabled(b *testing.B) { benchmarkPoolTasks(b, false) }
func BenchmarkPoolTaskTracingEnabled(b *testing.B)  { benchmarkPoolTasks(b, true) }

// TestCacheMetrics asserts the Prometheus mirrors of the cache
// counters track Stats exactly (satellite: counted-but-never-scraped).
func TestCacheMetrics(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Metrics(reg)

	key := NewKey().Field("kind", "metrics-test").Sum()
	var out int
	if c.Get(key, &out) {
		t.Fatal("unexpected hit")
	}
	if err := c.Put(key, 42); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, &out) || out != 42 {
		t.Fatal("expected hit")
	}
	snap := reg.Map()
	want := map[string]float64{"cache_hits": 1, "cache_misses": 1, "cache_corrupt": 0, "cache_puts": 1}
	for name, v := range want {
		if got := snap[name]; got != v {
			t.Errorf("%s = %g, want %g", name, got, v)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats diverged from metrics: %+v", st)
	}

	// nil cache / nil registry are inert.
	var nilCache *Cache
	nilCache.Metrics(reg)
	c.Metrics(nil)
}
