package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Backend is the storage layer behind a Cache: it moves opaque
// pilotrf-jobcache/v1 envelope bytes keyed by the 16-hex key stem. The
// Cache owns envelope encoding and integrity verification; a backend
// only has to store and retrieve bytes, which is what makes a remote
// HTTP backend (internal/fleet) interchangeable with the local
// directory.
//
// Load errors of any kind are cache misses by contract — the Cache
// recomputes, it never crashes. Store errors are surfaced (a local
// cache the operator asked for that cannot persist should be heard
// about), except where a backend documents best-effort semantics (the
// fleet's remote backend degrades lost Puts to a counter, because the
// coordinator re-persists results itself).
type Backend interface {
	// Load returns the raw envelope bytes for the 16-hex key stem, or
	// any error to signal a miss.
	Load(hexKey string) ([]byte, error)
	// Store persists the raw envelope bytes under the 16-hex key stem.
	Store(hexKey string, envelope []byte) error
}

// ValidHexKey reports whether s is a well-formed cache key stem: exactly
// 16 lowercase hex digits. Backends that derive file paths or URLs from
// the stem gate on it so a hostile or corrupted key cannot escape the
// store's namespace.
func ValidHexKey(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// dirBackend is the default backend: one JSON file per key under a
// directory, written atomically (temp file + rename) so an interrupted
// campaign never leaves a truncated entry that a resume would trip
// over.
type dirBackend struct {
	dir string
}

func (d dirBackend) path(hexKey string) string {
	return filepath.Join(d.dir, hexKey+".json")
}

// Load implements Backend.
func (d dirBackend) Load(hexKey string) ([]byte, error) {
	if !ValidHexKey(hexKey) {
		return nil, fmt.Errorf("jobs: bad cache key %q", hexKey)
	}
	return os.ReadFile(d.path(hexKey))
}

// Store implements Backend via temp file + rename.
func (d dirBackend) Store(hexKey string, envelope []byte) error {
	if !ValidHexKey(hexKey) {
		return fmt.Errorf("jobs: bad cache key %q", hexKey)
	}
	tmp, err := os.CreateTemp(d.dir, hexKey+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: cache write: %w", err)
	}
	if _, err := tmp.Write(envelope); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(hexKey)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: cache write: %w", err)
	}
	return nil
}

// ValidateEnvelope checks that data is a structurally sound
// pilotrf-jobcache/v1 envelope for the given 16-hex key stem: the
// schema matches, the recorded key equals hexKey, and — the part a
// plain JSON decode cannot promise — the stored preimage actually
// hashes to the key, so a truncated, substituted, or bit-flipped
// envelope is caught before it is served or stored. This is the
// integrity gate both ends of the fleet's remote cache run on every
// round-trip; the full preimage comparison still happens in Cache.Get,
// which knows the expected preimage, not just its hash.
func ValidateEnvelope(hexKey string, data []byte) error {
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return fmt.Errorf("jobs: envelope: %w", err)
	}
	if ent.Schema != CacheSchema {
		return fmt.Errorf("jobs: envelope: schema %q, want %q", ent.Schema, CacheSchema)
	}
	if ent.Key != hexKey {
		return fmt.Errorf("jobs: envelope: key %q does not match %q", ent.Key, hexKey)
	}
	h := uint64(fnvOffset)
	for i := 0; i < len(ent.Preimage); i++ {
		h ^= uint64(ent.Preimage[i])
		h *= fnvPrime
	}
	if got := fmt.Sprintf("%016x", h); got != hexKey {
		return fmt.Errorf("jobs: envelope: preimage hashes to %s, not %s", got, hexKey)
	}
	if len(ent.Payload) == 0 {
		return fmt.Errorf("jobs: envelope: empty payload")
	}
	return nil
}
