package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles"`
}

func testKey(version string) Key {
	return NewKey().
		Field("schema", version).
		Field("design", "part-adaptive").
		Field("workload", "sgemm").
		Float("scale", 0.05).
		Int("sms", 2).
		Uint("seed", 42).
		Sum()
}

// TestKeyDeterminismAndSensitivity: equal inputs hash equal; any single
// field change — including a schema version bump — changes the key.
func TestKeyDeterminismAndSensitivity(t *testing.T) {
	base := testKey("v1")
	if again := testKey("v1"); again != base {
		t.Fatal("identical inputs produced different keys")
	}
	variants := []Key{
		testKey("v2"), // version bump invalidates
		NewKey().Field("schema", "v1").Field("design", "part").Float("scale", 0.05).Int("sms", 2).Uint("seed", 42).Sum(),
		NewKey().Field("schema", "v1").Field("design", "part-adaptive").Float("scale", 0.05).Int("sms", 2).Uint("seed", 43).Sum(),
	}
	for i, v := range variants {
		if v.Hex() == base.Hex() {
			t.Errorf("variant %d collides with base key", i)
		}
	}
	if len(base.Hex()) != 16 {
		t.Errorf("key hex %q not 16 digits", base.Hex())
	}
	if !strings.Contains(base.Preimage(), "workload=sgemm") {
		t.Errorf("preimage %q lost a field", base.Preimage())
	}
}

// TestCacheRoundTrip: Put then Get returns the payload; a different key
// misses; stats track both.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("v1")
	want := payload{Name: "sgemm", Cycles: 123456}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c.Get(key, &got) {
		t.Fatal("fresh entry missed")
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if c.Get(testKey("v2"), &got) {
		t.Fatal("version-bumped key hit a v1 entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

// TestCacheCorruptionTolerance: every corrupted-entry shape loads as a
// miss (recompute), never as an error or a wrong payload.
func TestCacheCorruptionTolerance(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("v1")
	if err := c.Put(key, payload{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hex()+".json")

	corruptions := map[string]string{
		"truncated":        `{"schema": "pilotrf-jobcache/v1", "key": "`,
		"not json":         "hello\x00world",
		"empty":            "",
		"schema mismatch":  `{"schema": "pilotrf-jobcache/v999", "key": "` + key.Hex() + `", "preimage": ` + jsonString(key.Preimage()) + `, "payload": {"name":"evil"}}`,
		"payload mismatch": `{"schema": "pilotrf-jobcache/v1", "key": "` + key.Hex() + `", "preimage": ` + jsonString(key.Preimage()) + `, "payload": [1,2,3]}`,
	}
	for name, body := range corruptions {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if c.Get(key, &got) {
			t.Errorf("%s: corrupted entry returned a hit (%+v)", name, got)
		}
	}
	if st := c.Stats(); st.Corrupt != uint64(len(corruptions)) {
		t.Errorf("corrupt count %d, want %d", st.Corrupt, len(corruptions))
	}

	// Recompute-and-overwrite heals the entry.
	if err := c.Put(key, payload{Name: "healed"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c.Get(key, &got) || got.Name != "healed" {
		t.Fatalf("healed entry not readable: %+v", got)
	}
}

// TestCacheCollisionDetected: an entry whose stored preimage differs
// from the requested key's — the on-disk shape of an FNV collision — is
// a miss, not a silent wrong answer.
func TestCacheCollisionDetected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("v1")
	// Forge a colliding entry: same hash file, different preimage.
	ent := map[string]interface{}{
		"schema":   CacheSchema,
		"key":      key.Hex(),
		"preimage": "some-other-job\x00",
		"payload":  payload{Name: "collider", Cycles: 999},
	}
	buf, err := json.Marshal(ent)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key.Hex()+".json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if c.Get(key, &got) {
		t.Fatalf("colliding entry returned a hit: %+v", got)
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Errorf("collision not counted as corrupt: %+v", st)
	}
}

// TestNilCacheIsNoOp: a nil *Cache disables caching without branches at
// call sites.
func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	if c.Get(testKey("v1"), &payload{}) {
		t.Error("nil cache hit")
	}
	if err := c.Put(testKey("v1"), payload{}); err != nil {
		t.Errorf("nil cache Put errored: %v", err)
	}
	if c.Dir() != "" || c.Stats() != (CacheStats{}) {
		t.Error("nil cache not inert")
	}
}

// TestOpenCacheCreatesDir: OpenCache mkdir -p's nested paths and rejects
// the empty string.
func TestOpenCacheCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "c")
	if _, err := OpenCache(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir not created: %v", err)
	}
	if _, err := OpenCache(""); err == nil {
		t.Error("empty cache dir accepted")
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
