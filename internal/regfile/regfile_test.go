package regfile

import (
	"testing"
	"testing/quick"

	"pilotrf/internal/isa"
)

func mustSwapTable(t testing.TB, topN int) *SwapTable {
	t.Helper()
	st, err := NewSwapTable(topN)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustFile(t testing.TB, cfg Config) *File {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustAdaptive(t testing.TB, cfg AdaptiveConfig) *AdaptiveFRF {
	t.Helper()
	a, err := NewAdaptiveFRF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func regs(ns ...int) []isa.Reg {
	out := make([]isa.Reg, len(ns))
	for i, n := range ns {
		out[i] = isa.R(n)
	}
	return out
}

// The paper's Figure 7 walkthrough: promoting R8..R11 with an FRF of 4
// swaps them pairwise with R0..R3.
func TestSwapTablePaperExample(t *testing.T) {
	st := mustSwapTable(t, 4)
	st.Configure(regs(8, 9, 10, 11), 4)
	wantPairs := map[isa.Reg]isa.Reg{
		isa.R(0): isa.R(8), isa.R(8): isa.R(0),
		isa.R(1): isa.R(9), isa.R(9): isa.R(1),
		isa.R(2): isa.R(10), isa.R(10): isa.R(2),
		isa.R(3): isa.R(11), isa.R(11): isa.R(3),
	}
	for arch, phys := range wantPairs {
		if got := st.Lookup(arch); got != phys {
			t.Errorf("Lookup(%s) = %s, want %s", arch, got, phys)
		}
	}
	// Unswapped registers map to themselves.
	if got := st.Lookup(isa.R(5)); got != isa.R(5) {
		t.Errorf("Lookup(R5) = %s, want R5", got)
	}
	if n := len(st.Entries()); n != 8 {
		t.Errorf("table has %d entries, want 8", n)
	}
}

// The paper: an 8-entry table costs 104 bits (13 bits per entry).
func TestSwapTableBits(t *testing.T) {
	if got := mustSwapTable(t, 4).Bits(); got != 104 {
		t.Errorf("Bits = %d, want 104", got)
	}
}

func TestSwapTableAlreadyResidentTopRegs(t *testing.T) {
	st := mustSwapTable(t, 4)
	// R2 already lives in the FRF; only R8 and R9 need swaps, and they
	// must not displace R2.
	st.Configure(regs(8, 2, 9), 4)
	if got := st.Lookup(isa.R(2)); got != isa.R(2) {
		t.Errorf("resident top register moved: Lookup(R2) = %s", got)
	}
	// R8 and R9 take the free slots 0 and 1.
	if got := st.Lookup(isa.R(8)); got != isa.R(0) {
		t.Errorf("Lookup(R8) = %s, want R0", got)
	}
	if got := st.Lookup(isa.R(9)); got != isa.R(1) {
		t.Errorf("Lookup(R9) = %s, want R1", got)
	}
	if n := len(st.Entries()); n != 4 {
		t.Errorf("table has %d entries, want 4", n)
	}
}

func TestSwapTableReconfigureResets(t *testing.T) {
	st := mustSwapTable(t, 4)
	st.Configure(regs(8, 9, 10, 11), 4) // compiler seed
	st.Configure(regs(20, 21), 4)       // pilot result replaces it
	if got := st.Lookup(isa.R(8)); got != isa.R(8) {
		t.Errorf("stale mapping survived reconfigure: Lookup(R8) = %s", got)
	}
	if got := st.Lookup(isa.R(20)); got != isa.R(0) {
		t.Errorf("Lookup(R20) = %s, want R0", got)
	}
}

func TestSwapTableResetRestoresIdentity(t *testing.T) {
	st := mustSwapTable(t, 4)
	st.Configure(regs(8, 9), 4)
	st.Reset()
	for r := 0; r < 16; r++ {
		if got := st.Lookup(isa.R(r)); got != isa.R(r) {
			t.Errorf("after Reset, Lookup(R%d) = %s", r, got)
		}
	}
}

func TestSwapTableOverCapacityPanics(t *testing.T) {
	st := mustSwapTable(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Configure(regs(8, 9, 10, 11, 12), 4)
}

// Property: Configure always yields an involution restricted to the
// touched registers — a permutation where Lookup(Lookup(r)) == r — and
// every promoted register lands inside the FRF.
func TestPropertySwapTablePermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		const frf = 4
		// Build a unique top-reg set of size <= frf.
		seen := map[isa.Reg]bool{}
		var top []isa.Reg
		for _, v := range raw {
			r := isa.Reg(v % isa.MaxRegs)
			if !seen[r] {
				seen[r] = true
				top = append(top, r)
			}
			if len(top) == frf {
				break
			}
		}
		st := mustSwapTable(t, frf)
		st.Configure(top, frf)
		for r := 0; r < isa.MaxRegs; r++ {
			if st.Lookup(st.Lookup(isa.R(r))) != isa.R(r) {
				return false
			}
		}
		for _, r := range top {
			if int(st.Lookup(r)) >= frf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The indexed design must behave identically to the CAM design.
func TestIndexedMatchesCAM(t *testing.T) {
	cases := [][]isa.Reg{
		regs(8, 9, 10, 11),
		regs(8, 2, 9),
		regs(40, 1, 62, 0),
		nil,
	}
	for _, top := range cases {
		cam := mustSwapTable(t, 4)
		idx := NewIndexedSwapTable()
		cam.Configure(top, 4)
		idx.Configure(top, 4)
		for r := 0; r < isa.MaxRegs; r++ {
			if cam.Lookup(isa.R(r)) != idx.Lookup(isa.R(r)) {
				t.Errorf("top=%v: CAM and indexed disagree on R%d", top, r)
			}
		}
	}
}

func TestRouteMonolithic(t *testing.T) {
	stv := mustFile(t, DefaultConfig(DesignMonolithicSTV))
	part, lat := stv.Route(isa.R(10))
	if part != PartMRF || lat != 1 {
		t.Errorf("STV route = %v/%d, want MRF/1", part, lat)
	}
	ntv := mustFile(t, DefaultConfig(DesignMonolithicNTV))
	part, lat = ntv.Route(isa.R(10))
	if part != PartMRF || lat != 3 {
		t.Errorf("NTV route = %v/%d, want MRF/3", part, lat)
	}
}

func TestRoutePartitioned(t *testing.T) {
	f := mustFile(t, DefaultConfig(DesignPartitioned))
	// Default layout: R0..R3 in FRF, others in SRF.
	part, lat := f.Route(isa.R(0))
	if part != PartFRFHigh || lat != 1 {
		t.Errorf("R0 route = %v/%d, want FRF_high/1", part, lat)
	}
	part, lat = f.Route(isa.R(10))
	if part != PartSRF || lat != 3 {
		t.Errorf("R10 route = %v/%d, want SRF/3", part, lat)
	}
	// After promotion the routing follows the swapping table.
	f.Mapper().Configure(regs(10, 11, 12, 13), 4)
	if part, _ := f.Route(isa.R(10)); part != PartFRFHigh {
		t.Errorf("promoted R10 routed to %v", part)
	}
	if part, _ := f.Route(isa.R(0)); part != PartSRF {
		t.Errorf("displaced R0 routed to %v", part)
	}
}

func TestRouteAdaptiveLowPower(t *testing.T) {
	cfg := DefaultConfig(DesignPartitionedAdaptive)
	f := mustFile(t, cfg)
	// Starts in high-power mode.
	if part, _ := f.Route(isa.R(0)); part != PartFRFHigh {
		t.Errorf("initial route = %v, want FRF_high", part)
	}
	// An idle epoch (no issues) flips the FRF to low power.
	for i := 0; i < cfg.Adaptive.EpochCycles; i++ {
		f.Adaptive().Tick()
	}
	part, lat := f.Route(isa.R(0))
	if part != PartFRFLow || lat != 2 {
		t.Errorf("low-power route = %v/%d, want FRF_low/2", part, lat)
	}
	// SRF routing is unaffected by the FRF mode.
	if part, _ := f.Route(isa.R(20)); part != PartSRF {
		t.Errorf("SRF route in low mode = %v", part)
	}
}

func TestAdaptiveThresholdBoundary(t *testing.T) {
	cfg := AdaptiveConfig{EpochCycles: 50, Threshold: 85, MaxIssuePerCycle: 8}
	// Exactly at threshold: not low power (strictly-less comparison).
	a := mustAdaptive(t, cfg)
	a.OnIssue(85)
	for i := 0; i < 50; i++ {
		a.Tick()
	}
	if a.LowPower() {
		t.Error("epoch with issued == threshold flagged low power")
	}
	// One below threshold: low power.
	b := mustAdaptive(t, cfg)
	b.OnIssue(84)
	for i := 0; i < 50; i++ {
		b.Tick()
	}
	if !b.LowPower() {
		t.Error("epoch with issued < threshold not flagged low power")
	}
}

func TestAdaptiveModeHoldsForWholeEpoch(t *testing.T) {
	a := mustAdaptive(t, AdaptiveConfig{EpochCycles: 10, Threshold: 5, MaxIssuePerCycle: 8})
	for i := 0; i < 10; i++ {
		a.Tick() // idle epoch -> next epoch low
	}
	if !a.LowPower() {
		t.Fatal("not low after idle epoch")
	}
	// Heavy issue during the low epoch must not flip the mode mid-epoch.
	for i := 0; i < 9; i++ {
		a.OnIssue(8)
		a.Tick()
		if !a.LowPower() {
			t.Fatalf("mode flipped mid-epoch at cycle %d", i)
		}
	}
	a.OnIssue(8)
	a.Tick() // epoch boundary: 80 issued >= 5 -> back to high
	if a.LowPower() {
		t.Error("mode did not return to high after busy epoch")
	}
}

func TestAdaptiveLowEpochFraction(t *testing.T) {
	a := mustAdaptive(t, AdaptiveConfig{EpochCycles: 10, Threshold: 5, MaxIssuePerCycle: 8})
	// Epoch 1: idle (low). Epoch 2: busy (high).
	for i := 0; i < 10; i++ {
		a.Tick()
	}
	for i := 0; i < 10; i++ {
		a.OnIssue(8)
		a.Tick()
	}
	if got := a.LowEpochFraction(); got != 0.5 {
		t.Errorf("LowEpochFraction = %g, want 0.5", got)
	}
}

func TestWithThresholdRatio(t *testing.T) {
	cfg := AdaptiveConfig{EpochCycles: 100, MaxIssuePerCycle: 8}.WithThresholdRatio(0.2)
	if cfg.Threshold != 160 {
		t.Errorf("Threshold = %d, want 160", cfg.Threshold)
	}
	// The paper's own numbers: 50-cycle epoch, 8-wide issue, ~20% -> 80
	// (they round to 85; both behave equivalently in the sweep).
	cfg50 := AdaptiveConfig{EpochCycles: 50, MaxIssuePerCycle: 8}.WithThresholdRatio(0.2125)
	if cfg50.Threshold != 85 {
		t.Errorf("paper threshold = %d, want 85", cfg50.Threshold)
	}
}

func TestAdaptiveConfigErrors(t *testing.T) {
	for _, cfg := range []AdaptiveConfig{
		{EpochCycles: 0, Threshold: 1, MaxIssuePerCycle: 8},
		{EpochCycles: 50, Threshold: -1, MaxIssuePerCycle: 8},
		{EpochCycles: 50, Threshold: 401, MaxIssuePerCycle: 8},
	} {
		if _, err := NewAdaptiveFRF(cfg); err == nil {
			t.Errorf("config %+v did not error", cfg)
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewSwapTable(0); err == nil {
		t.Error("NewSwapTable(0) did not error")
	}
	if _, err := New(Config{Design: DesignMonolithicSTV, Banks: 0}); err == nil {
		t.Error("New with no banks did not error")
	}
	bad := DefaultConfig(DesignPartitioned)
	bad.FRFRegs = 0
	if _, err := New(bad); err == nil {
		t.Error("partitioned New with empty FRF did not error")
	}
	badAdaptive := DefaultConfig(DesignPartitionedAdaptive)
	badAdaptive.Adaptive.EpochCycles = 0
	if _, err := New(badAdaptive); err == nil {
		t.Error("adaptive New with zero epoch did not error")
	}
}

func TestBankStriping(t *testing.T) {
	f := mustFile(t, DefaultConfig(DesignPartitioned))
	// Consecutive registers of one warp land in different banks.
	if f.BankOf(0, isa.R(0)) == f.BankOf(0, isa.R(1)) {
		t.Error("consecutive registers share a bank")
	}
	// The same register of consecutive warps lands in different banks.
	if f.BankOf(0, isa.R(0)) == f.BankOf(1, isa.R(0)) {
		t.Error("same register of consecutive warps shares a bank")
	}
	// Banks stay in range.
	for w := 0; w < 64; w++ {
		for r := 0; r < 63; r++ {
			b := f.BankOf(w, isa.R(r))
			if b < 0 || b >= 24 {
				t.Fatalf("bank %d out of range", b)
			}
		}
	}
}

func TestPhysicalRegIdentityForMonolithic(t *testing.T) {
	f := mustFile(t, DefaultConfig(DesignMonolithicSTV))
	if got := f.PhysicalReg(isa.R(9)); got != isa.R(9) {
		t.Errorf("PhysicalReg = %s, want R9", got)
	}
}

func TestDesignAndPartitionStrings(t *testing.T) {
	if DesignPartitionedAdaptive.String() == "" || PartFRFLow.String() != "FRF_low" {
		t.Error("string names wrong")
	}
}
