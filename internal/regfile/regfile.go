package regfile

import (
	"fmt"

	"pilotrf/internal/isa"
)

// Partition identifies the physical structure (and power mode) that
// services a register access; the energy model prices each differently.
type Partition uint8

// Partitions.
const (
	PartMRF Partition = iota
	PartFRFHigh
	PartFRFLow
	PartSRF
)

// String returns the partition name.
func (p Partition) String() string {
	switch p {
	case PartMRF:
		return "MRF"
	case PartFRFHigh:
		return "FRF_high"
	case PartFRFLow:
		return "FRF_low"
	case PartSRF:
		return "SRF"
	default:
		return fmt.Sprintf("PART_%d", uint8(p))
	}
}

// Design selects the register file organization under evaluation.
type Design uint8

// Register file designs.
const (
	// DesignMonolithicSTV is the performance baseline: one 256 KB MRF
	// at super-threshold voltage, 1-cycle access.
	DesignMonolithicSTV Design = iota
	// DesignMonolithicNTV is the power-aggressive baseline: the MRF at
	// near-threshold voltage, 3-cycle access.
	DesignMonolithicNTV
	// DesignPartitioned is the paper's FRF+SRF split without the
	// adaptive FRF mode (FRF always high-power).
	DesignPartitioned
	// DesignPartitionedAdaptive adds the back-gate controlled FRF
	// low-power mode driven by the epoch phase detector.
	DesignPartitionedAdaptive
)

// String returns the design name.
func (d Design) String() string {
	switch d {
	case DesignMonolithicSTV:
		return "MRF@STV"
	case DesignMonolithicNTV:
		return "MRF@NTV"
	case DesignPartitioned:
		return "Partitioned"
	case DesignPartitionedAdaptive:
		return "Partitioned+AdaptiveFRF"
	default:
		return fmt.Sprintf("DESIGN_%d", uint8(d))
	}
}

// Latencies holds per-partition access latencies in cycles. The defaults
// come from the FinCACTI access-time analysis (fincacti.AccessCycles).
type Latencies struct {
	MRF     int // monolithic at its operating voltage
	FRFHigh int
	FRFLow  int
	SRF     int
}

// DefaultLatenciesSTV returns baseline latencies with the MRF at STV.
func DefaultLatenciesSTV() Latencies {
	return Latencies{MRF: 1, FRFHigh: 1, FRFLow: 2, SRF: 3}
}

// DefaultLatenciesNTV returns latencies with the MRF at NTV.
func DefaultLatenciesNTV() Latencies {
	return Latencies{MRF: 3, FRFHigh: 1, FRFLow: 2, SRF: 3}
}

// Config describes a register file instance for one SM.
type Config struct {
	Design Design
	// FRFRegs is the number of registers per thread held in the FRF
	// (n = 4 in the paper: 4 x 64 warps x 128 B = 32 KB).
	FRFRegs int
	// Banks is the number of RF banks (24 in the Kepler config).
	Banks int
	Lat   Latencies
	// Adaptive configures the FRF power-mode controller; only used by
	// DesignPartitionedAdaptive.
	Adaptive AdaptiveConfig
}

// DefaultConfig returns the paper's preferred configuration for a design.
func DefaultConfig(d Design) Config {
	lat := DefaultLatenciesSTV()
	if d == DesignMonolithicNTV {
		lat = DefaultLatenciesNTV()
	}
	return Config{
		Design:   d,
		FRFRegs:  4,
		Banks:    24,
		Lat:      lat,
		Adaptive: DefaultAdaptiveConfig(),
	}
}

// File is one SM's register file: routing, swapping table, and the
// adaptive mode controller. It is purely a control model — simulated
// threads keep their values in the simulator; File decides which physical
// partition each access touches and how long it takes.
type File struct {
	cfg      Config
	mapper   Mapper
	adaptive *AdaptiveFRF
}

// New returns a register file in the given configuration, using the
// CAM-based swapping table.
func New(cfg Config) (*File, error) {
	if cfg.Banks <= 0 {
		return nil, fmt.Errorf("regfile: bank count must be positive, got %d", cfg.Banks)
	}
	if cfg.FRFRegs <= 0 && (cfg.Design == DesignPartitioned || cfg.Design == DesignPartitionedAdaptive) {
		return nil, fmt.Errorf("regfile: partitioned design needs a positive FRF size, got %d registers", cfg.FRFRegs)
	}
	table, err := NewSwapTable(maxInt(cfg.FRFRegs, 1))
	if err != nil {
		return nil, err
	}
	f := &File{cfg: cfg, mapper: table}
	if cfg.Design == DesignPartitionedAdaptive {
		f.adaptive, err = NewAdaptiveFRF(cfg.Adaptive)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Config returns the file's configuration.
func (f *File) Config() Config { return f.cfg }

// Mapper exposes the swapping table for profiling-driven reconfiguration.
func (f *File) Mapper() Mapper { return f.mapper }

// CAM returns the CAM swapping table when the file routes through one
// (the construction New always does), or nil. Fault injection targets
// the CAM's raw entries through this accessor.
func (f *File) CAM() *SwapTable {
	t, _ := f.mapper.(*SwapTable)
	return t
}

// CAMBits returns the swapping-table storage exposed to soft errors, in
// bits: the CAM's capacity for partitioned designs, zero for monolithic
// designs (which never consult the table).
func (f *File) CAMBits() int {
	if !f.Partitioned() {
		return 0
	}
	if t := f.CAM(); t != nil {
		return t.Bits()
	}
	return 0
}

// Adaptive returns the FRF mode controller, or nil for non-adaptive
// designs.
func (f *File) Adaptive() *AdaptiveFRF { return f.adaptive }

// Partitioned reports whether the design splits the RF into FRF and SRF.
func (f *File) Partitioned() bool {
	return f.cfg.Design == DesignPartitioned || f.cfg.Design == DesignPartitionedAdaptive
}

// Route returns the partition servicing an access to architected register
// r and the access latency in cycles. For partitioned designs the
// swapping table is consulted; physical registers below FRFRegs live in
// the FRF, the rest in the SRF. The access never touches both partitions.
func (f *File) Route(r isa.Reg) (Partition, int) {
	switch f.cfg.Design {
	case DesignMonolithicSTV, DesignMonolithicNTV:
		return PartMRF, f.cfg.Lat.MRF
	}
	phys := f.mapper.Lookup(r)
	if int(phys) < f.cfg.FRFRegs {
		if f.adaptive != nil && f.adaptive.LowPower() {
			return PartFRFLow, f.cfg.Lat.FRFLow
		}
		return PartFRFHigh, f.cfg.Lat.FRFHigh
	}
	return PartSRF, f.cfg.Lat.SRF
}

// PhysicalReg returns the physical location of architected register r
// (identity for monolithic designs).
func (f *File) PhysicalReg(r isa.Reg) isa.Reg {
	if !f.Partitioned() {
		return r
	}
	return f.mapper.Lookup(r)
}

// BankOf returns the bank servicing physical register phys of warp w.
// Registers are striped across banks with the warp id as an offset so
// consecutive registers of a warp, and the same register of consecutive
// warps, land in different banks — the standard GPU RF layout.
func (f *File) BankOf(warp int, phys isa.Reg) int {
	return (warp + int(phys)) % f.cfg.Banks
}
