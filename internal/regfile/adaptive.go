package regfile

import "fmt"

// AdaptiveConfig parameterizes the FRF power-mode phase detector: a 9-bit
// counter tallies warp issues per epoch; if an epoch issues fewer than
// Threshold instructions the next epoch runs the FRF in low-power
// (back-gate disabled) mode.
type AdaptiveConfig struct {
	// EpochCycles is the epoch length (50 cycles in the paper).
	EpochCycles int
	// Threshold is the issued-instruction count below which the next
	// epoch is treated as a low-compute phase (85 of a possible 400 in
	// the paper's 8-issue machine).
	Threshold int
	// MaxIssuePerCycle bounds the counter (8 in the Kepler config);
	// used to derive thresholds expressed as ratios.
	MaxIssuePerCycle int
}

// DefaultAdaptiveConfig returns the paper's preferred settings: 50-cycle
// epochs, threshold 85 of 400 issue slots (about 20%).
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{EpochCycles: 50, Threshold: 85, MaxIssuePerCycle: 8}
}

// WithThresholdRatio returns the config with Threshold set to ratio x
// EpochCycles x MaxIssuePerCycle, the parameterization used in the
// paper's epoch-length sensitivity study (20% across all lengths).
func (c AdaptiveConfig) WithThresholdRatio(ratio float64) AdaptiveConfig {
	c.Threshold = int(ratio * float64(c.EpochCycles*c.MaxIssuePerCycle))
	return c
}

// AdaptiveFRF is the epoch-based phase detector controlling the FRF's
// back-gate mode.
type AdaptiveFRF struct {
	cfg          AdaptiveConfig
	cycleInEpoch int
	issued       int
	lowPower     bool

	// Statistics.
	lowEpochs, totalEpochs int
}

// NewAdaptiveFRF returns a controller starting in high-power mode.
func NewAdaptiveFRF(cfg AdaptiveConfig) (*AdaptiveFRF, error) {
	if cfg.EpochCycles <= 0 {
		return nil, fmt.Errorf("regfile: adaptive epoch must be a positive cycle count, got %d", cfg.EpochCycles)
	}
	if cfg.Threshold < 0 || cfg.Threshold > cfg.EpochCycles*cfg.MaxIssuePerCycle {
		return nil, fmt.Errorf("regfile: adaptive threshold %d outside [0,%d]", cfg.Threshold, cfg.EpochCycles*cfg.MaxIssuePerCycle)
	}
	return &AdaptiveFRF{cfg: cfg}, nil
}

// OnIssue records n instructions issued this cycle.
func (a *AdaptiveFRF) OnIssue(n int) { a.issued += n }

// Tick advances one cycle; at each epoch boundary the next epoch's mode is
// decided from this epoch's issue count.
func (a *AdaptiveFRF) Tick() {
	a.cycleInEpoch++
	if a.cycleInEpoch < a.cfg.EpochCycles {
		return
	}
	a.lowPower = a.issued < a.cfg.Threshold
	a.totalEpochs++
	if a.lowPower {
		a.lowEpochs++
	}
	a.cycleInEpoch = 0
	a.issued = 0
}

// LowPower reports whether the FRF currently runs in low-power mode.
func (a *AdaptiveFRF) LowPower() bool { return a.lowPower }

// LowEpochFraction returns the fraction of completed epochs spent in
// low-power mode.
func (a *AdaptiveFRF) LowEpochFraction() float64 {
	if a.totalEpochs == 0 {
		return 0
	}
	return float64(a.lowEpochs) / float64(a.totalEpochs)
}

// Config returns the controller's configuration.
func (a *AdaptiveFRF) Config() AdaptiveConfig { return a.cfg }
