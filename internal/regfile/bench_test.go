package regfile

import (
	"testing"

	"pilotrf/internal/isa"
)

func BenchmarkSwapTableLookupHit(b *testing.B) {
	st := mustSwapTable(b, 4)
	st.Configure([]isa.Reg{isa.R(8), isa.R(9), isa.R(10), isa.R(11)}, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Lookup(isa.R(8))
	}
}

func BenchmarkSwapTableLookupMiss(b *testing.B) {
	st := mustSwapTable(b, 4)
	st.Configure([]isa.Reg{isa.R(8), isa.R(9), isa.R(10), isa.R(11)}, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Lookup(isa.R(40))
	}
}

func BenchmarkIndexedLookup(b *testing.B) {
	st := NewIndexedSwapTable()
	st.Configure([]isa.Reg{isa.R(8), isa.R(9), isa.R(10), isa.R(11)}, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Lookup(isa.R(8))
	}
}

func BenchmarkRoutePartitioned(b *testing.B) {
	f := mustFile(b, DefaultConfig(DesignPartitionedAdaptive))
	f.Mapper().Configure([]isa.Reg{isa.R(8), isa.R(9), isa.R(10), isa.R(11)}, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = f.Route(isa.Reg(i % 16))
	}
}

func BenchmarkAdaptiveTick(b *testing.B) {
	a := mustAdaptive(b, DefaultAdaptiveConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OnIssue(i % 9)
		a.Tick()
	}
}
