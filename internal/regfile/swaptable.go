// Package regfile implements the register file organizations evaluated in
// the paper: the monolithic MRF (at STV or NTV), and the partitioned
// FRF+SRF design with its register swapping table and the adaptive
// (back-gate controlled) FRF power-mode controller.
package regfile

import (
	"fmt"

	"pilotrf/internal/isa"
)

// Mapper translates an architected register number to its current physical
// location. Registers outside the swapped set map to themselves.
type Mapper interface {
	// Lookup returns the physical register holding architected register r.
	Lookup(r isa.Reg) isa.Reg
	// Configure installs a mapping that places topRegs (ordered by
	// access count, most-accessed first) into the FRF slots [0, frfRegs).
	Configure(topRegs []isa.Reg, frfRegs int)
	// Reset restores the identity mapping.
	Reset()
}

// SwapEntry is one row of the swapping table: a valid bit, the architected
// register, and its current physical location (13 bits in hardware: 6+6+1).
type SwapEntry struct {
	Valid  bool
	Orig   isa.Reg
	Mapped isa.Reg
}

// SwapTable is the CAM-based register swapping table: 2n entries for a
// top-n register set (n displaced FRF residents plus n promoted
// registers). It is configured once per kernel phase (compiler seed, then
// pilot result), so hardware replicates it per scheduler without
// consistency concerns; the model therefore keeps a single instance.
type SwapTable struct {
	entries []SwapEntry
}

// NewSwapTable returns a swapping table with capacity for topN promoted
// registers (2*topN entries).
func NewSwapTable(topN int) *SwapTable {
	if topN <= 0 {
		panic(fmt.Sprintf("regfile: swap table for top-%d registers", topN))
	}
	return &SwapTable{entries: make([]SwapEntry, 0, 2*topN)}
}

// Reset invalidates every entry, restoring the identity mapping.
func (t *SwapTable) Reset() { t.entries = t.entries[:0] }

// Configure installs the mapping for topRegs. Per the paper, the mapping
// is always applied on top of the default (identity) layout: callers see
// the table reset first, then pairwise swaps between promoted registers
// and the default FRF residents they displace. Registers in topRegs that
// already live in the FRF (index < frfRegs) keep their slot and consume
// no table entries.
func (t *SwapTable) Configure(topRegs []isa.Reg, frfRegs int) {
	t.Reset()
	if len(topRegs) > frfRegs {
		panic(fmt.Sprintf("regfile: %d top registers exceed FRF capacity %d", len(topRegs), frfRegs))
	}
	// FRF slots not claimed by an already-resident top register are free
	// to host promoted registers.
	claimed := make(map[isa.Reg]bool, len(topRegs))
	for _, r := range topRegs {
		if int(r) < frfRegs {
			claimed[r] = true
		}
	}
	slot := isa.Reg(0)
	nextFree := func() isa.Reg {
		for claimed[slot] {
			slot++
		}
		s := slot
		slot++
		return s
	}
	for _, r := range topRegs {
		if !r.Valid() {
			panic(fmt.Sprintf("regfile: cannot promote %s", r))
		}
		if int(r) < frfRegs {
			continue // already resident
		}
		s := nextFree()
		// Arch s now lives where r used to, and r lives in slot s.
		t.entries = append(t.entries,
			SwapEntry{Valid: true, Orig: s, Mapped: r},
			SwapEntry{Valid: true, Orig: r, Mapped: s},
		)
	}
}

// Lookup CAM-searches the table for r; absent registers map to themselves.
func (t *SwapTable) Lookup(r isa.Reg) isa.Reg {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Orig == r {
			return t.entries[i].Mapped
		}
	}
	return r
}

// Entries returns a copy of the current table contents (for inspection
// and the Figure 7 walkthrough).
func (t *SwapTable) Entries() []SwapEntry {
	out := make([]SwapEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Bits returns the table's storage cost in bits: 13 bits per entry at the
// table's capacity (6-bit original id, 6-bit mapped id, 1 valid bit).
func (t *SwapTable) Bits() int { return cap(t.entries) * 13 }

// IndexedSwapTable is the direct-indexed alternative the paper also
// evaluated: a 63-entry RAM indexed by architected register number. Its
// behaviour is identical to the CAM design (the paper found the energy
// difference negligible); both are provided so the equivalence is testable.
type IndexedSwapTable struct {
	mapping [isa.MaxRegs]isa.Reg
}

// NewIndexedSwapTable returns an identity-mapped indexed table.
func NewIndexedSwapTable() *IndexedSwapTable {
	t := &IndexedSwapTable{}
	t.Reset()
	return t
}

// Reset restores the identity mapping.
func (t *IndexedSwapTable) Reset() {
	for i := range t.mapping {
		t.mapping[i] = isa.Reg(i)
	}
}

// Configure installs the mapping for topRegs (see SwapTable.Configure).
func (t *IndexedSwapTable) Configure(topRegs []isa.Reg, frfRegs int) {
	t.Reset()
	// Reuse the CAM algorithm to guarantee identical placement.
	cam := NewSwapTable(maxInt(len(topRegs), 1))
	cam.Configure(topRegs, frfRegs)
	for _, e := range cam.Entries() {
		t.mapping[e.Orig] = e.Mapped
	}
}

// Lookup returns the physical register for r.
func (t *IndexedSwapTable) Lookup(r isa.Reg) isa.Reg {
	if !r.Valid() {
		return r
	}
	return t.mapping[r]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
