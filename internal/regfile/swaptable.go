// Package regfile implements the register file organizations evaluated in
// the paper: the monolithic MRF (at STV or NTV), and the partitioned
// FRF+SRF design with its register swapping table and the adaptive
// (back-gate controlled) FRF power-mode controller.
package regfile

import (
	"fmt"

	"pilotrf/internal/isa"
)

// Mapper translates an architected register number to its current physical
// location. Registers outside the swapped set map to themselves.
type Mapper interface {
	// Lookup returns the physical register holding architected register r.
	Lookup(r isa.Reg) isa.Reg
	// Configure installs a mapping that places topRegs (ordered by
	// access count, most-accessed first) into the FRF slots [0, frfRegs).
	Configure(topRegs []isa.Reg, frfRegs int)
	// Reset restores the identity mapping.
	Reset()
}

// SwapEntry is one row of the swapping table: a valid bit, the architected
// register, and its current physical location (13 bits in hardware: 6+6+1).
type SwapEntry struct {
	Valid  bool
	Orig   isa.Reg
	Mapped isa.Reg
}

// SwapTable is the CAM-based register swapping table: 2n entries for a
// top-n register set (n displaced FRF residents plus n promoted
// registers). It is configured once per kernel phase (compiler seed, then
// pilot result), so hardware replicates it per scheduler without
// consistency concerns; the model therefore keeps a single instance.
type SwapTable struct {
	entries []SwapEntry
}

// NewSwapTable returns a swapping table with capacity for topN promoted
// registers (2*topN entries).
func NewSwapTable(topN int) (*SwapTable, error) {
	if topN <= 0 {
		return nil, fmt.Errorf("regfile: swap table needs a positive top-n register count, got %d", topN)
	}
	return &SwapTable{entries: make([]SwapEntry, 0, 2*topN)}, nil
}

// Reset invalidates every entry, restoring the identity mapping.
func (t *SwapTable) Reset() { t.entries = t.entries[:0] }

// Configure installs the mapping for topRegs. Per the paper, the mapping
// is always applied on top of the default (identity) layout: callers see
// the table reset first, then pairwise swaps between promoted registers
// and the default FRF residents they displace. Registers in topRegs that
// already live in the FRF (index < frfRegs) keep their slot and consume
// no table entries.
func (t *SwapTable) Configure(topRegs []isa.Reg, frfRegs int) {
	t.Reset()
	if len(topRegs) > frfRegs {
		panic(fmt.Sprintf("regfile: %d top registers exceed FRF capacity %d", len(topRegs), frfRegs))
	}
	// FRF slots not claimed by an already-resident top register are free
	// to host promoted registers.
	claimed := make(map[isa.Reg]bool, len(topRegs))
	for _, r := range topRegs {
		if int(r) < frfRegs {
			claimed[r] = true
		}
	}
	slot := isa.Reg(0)
	nextFree := func() isa.Reg {
		for claimed[slot] {
			slot++
		}
		s := slot
		slot++
		return s
	}
	for _, r := range topRegs {
		if !r.Valid() {
			panic(fmt.Sprintf("regfile: cannot promote %s", r))
		}
		if int(r) < frfRegs {
			continue // already resident
		}
		s := nextFree()
		// Arch s now lives where r used to, and r lives in slot s.
		t.entries = append(t.entries,
			SwapEntry{Valid: true, Orig: s, Mapped: r},
			SwapEntry{Valid: true, Orig: r, Mapped: s},
		)
	}
}

// Lookup CAM-searches the table for r; absent registers map to themselves.
func (t *SwapTable) Lookup(r isa.Reg) isa.Reg {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Orig == r {
			return t.entries[i].Mapped
		}
	}
	return r
}

// Entries returns a copy of the current table contents (for inspection
// and the Figure 7 walkthrough).
func (t *SwapTable) Entries() []SwapEntry {
	out := make([]SwapEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// EntryBits is the width of one swapping-table row in hardware: a 6-bit
// original register id, a 6-bit mapped id, and a valid bit.
const EntryBits = 13

// Bits returns the table's storage cost in bits: EntryBits per entry at
// the table's capacity.
func (t *SwapTable) Bits() int { return cap(t.entries) * EntryBits }

// Len returns the number of live (installed) entries, valid or not.
func (t *SwapTable) Len() int { return len(t.entries) }

// encodeEntry packs a row into its 13-bit hardware layout: bits 0-5
// Orig, bits 6-11 Mapped, bit 12 Valid.
func encodeEntry(e SwapEntry) uint16 {
	w := uint16(e.Orig&0x3F) | uint16(e.Mapped&0x3F)<<6
	if e.Valid {
		w |= 1 << 12
	}
	return w
}

// decodeEntry unpacks the 13-bit hardware layout back into a row.
func decodeEntry(w uint16) SwapEntry {
	return SwapEntry{
		Orig:   isa.Reg(w & 0x3F),
		Mapped: isa.Reg(w >> 6 & 0x3F),
		Valid:  w>>12&1 == 1,
	}
}

// FlipBit models a soft-error upset in the CAM: it flips one bit of
// entry i's 13-bit encoding in place and returns the resulting row.
// Depending on the bit this corrupts the original id (a different
// architected register now matches), the mapped id (lookups return the
// wrong physical register), or the valid bit (the swap silently
// disappears). It panics on an out-of-range entry or bit — fault
// injection owns victim selection and never passes either.
func (t *SwapTable) FlipBit(i, bit int) SwapEntry {
	e := decodeEntry(encodeEntry(t.entries[i]) ^ 1<<bit)
	t.entries[i] = e
	return e
}

// Invalidate clears entry i's valid bit, modeling a scrub of a
// detected-corrupt row (the register pair falls back to the identity
// mapping until the next Configure).
func (t *SwapTable) Invalidate(i int) { t.entries[i].Valid = false }

// IndexedSwapTable is the direct-indexed alternative the paper also
// evaluated: a 63-entry RAM indexed by architected register number. Its
// behaviour is identical to the CAM design (the paper found the energy
// difference negligible); both are provided so the equivalence is testable.
type IndexedSwapTable struct {
	mapping [isa.MaxRegs]isa.Reg
}

// NewIndexedSwapTable returns an identity-mapped indexed table.
func NewIndexedSwapTable() *IndexedSwapTable {
	t := &IndexedSwapTable{}
	t.Reset()
	return t
}

// Reset restores the identity mapping.
func (t *IndexedSwapTable) Reset() {
	for i := range t.mapping {
		t.mapping[i] = isa.Reg(i)
	}
}

// Configure installs the mapping for topRegs (see SwapTable.Configure).
func (t *IndexedSwapTable) Configure(topRegs []isa.Reg, frfRegs int) {
	t.Reset()
	// Reuse the CAM algorithm to guarantee identical placement. The
	// capacity argument is clamped positive, so the error is impossible.
	cam, _ := NewSwapTable(maxInt(len(topRegs), 1))
	cam.Configure(topRegs, frfRegs)
	for _, e := range cam.Entries() {
		t.mapping[e.Orig] = e.Mapped
	}
}

// Lookup returns the physical register for r.
func (t *IndexedSwapTable) Lookup(r isa.Reg) isa.Reg {
	if !r.Valid() {
		return r
	}
	return t.mapping[r]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
