package regfile

import (
	"testing"

	"pilotrf/internal/isa"
)

// Flipping each of the 13 entry bits must corrupt exactly one field:
// bits 0-5 the original id, 6-11 the mapped id, 12 the valid bit.
func TestFlipBitFieldBoundaries(t *testing.T) {
	for bit := 0; bit < EntryBits; bit++ {
		st := mustSwapTable(t, 4)
		st.Configure(regs(8, 9, 10, 11), 4)
		before := st.Entries()[0]
		after := st.FlipBit(0, bit)
		switch {
		case bit < 6:
			if after.Orig == before.Orig || after.Mapped != before.Mapped || after.Valid != before.Valid {
				t.Errorf("bit %d: want only Orig to change, %+v -> %+v", bit, before, after)
			}
		case bit < 12:
			if after.Mapped == before.Mapped || after.Orig != before.Orig || after.Valid != before.Valid {
				t.Errorf("bit %d: want only Mapped to change, %+v -> %+v", bit, before, after)
			}
		default:
			if after.Valid == before.Valid || after.Orig != before.Orig || after.Mapped != before.Mapped {
				t.Errorf("bit %d: want only Valid to change, %+v -> %+v", bit, before, after)
			}
		}
		// A second flip of the same bit restores the row exactly.
		if restored := st.FlipBit(0, bit); restored != before {
			t.Errorf("bit %d: double flip %+v != original %+v", bit, restored, before)
		}
	}
}

// An orig-id upset can alias two entries onto the same architected
// register. The CAM's first-match priority must stay deterministic.
func TestCorruptedCAMDuplicateOrig(t *testing.T) {
	st := mustSwapTable(t, 4)
	st.Configure(regs(8, 9), 4)
	// Entries: {R0->R8, R8->R0, R1->R9, R9->R1}. Force entry 2's Orig
	// from R1 to R0 by flipping bit 0 (R1 ^ 1 = R0), creating a
	// duplicate R0 key.
	e := st.FlipBit(2, 0)
	if e.Orig != isa.R(0) {
		t.Fatalf("flip produced Orig %s, want R0", e.Orig)
	}
	// First match wins: entry 0 still answers for R0.
	if got := st.Lookup(isa.R(0)); got != isa.R(8) {
		t.Errorf("duplicate-key Lookup(R0) = %s, want first-match R8", got)
	}
	// The aliased entry's old key now misses and falls back to identity:
	// R1 silently routes to the SRF-resident physical R1.
	if got := st.Lookup(isa.R(1)); got != isa.R(1) {
		t.Errorf("Lookup(R1) after alias = %s, want identity R1", got)
	}
}

// A valid-bit upset (or a scrub via Invalidate) makes the entry
// invisible to lookups: the register pair reverts to identity one side
// at a time, breaking the involution — exactly the silent asymmetry a
// CAM fault produces in hardware.
func TestInvalidatedEntryLookup(t *testing.T) {
	st := mustSwapTable(t, 4)
	st.Configure(regs(8), 4)
	st.Invalidate(0) // drop R0->R8, keep R8->R0
	if got := st.Lookup(isa.R(0)); got != isa.R(0) {
		t.Errorf("invalidated entry still matched: Lookup(R0) = %s", got)
	}
	if got := st.Lookup(isa.R(8)); got != isa.R(0) {
		t.Errorf("sibling entry lost: Lookup(R8) = %s, want R0", got)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2 (invalidation does not remove rows)", st.Len())
	}
	// Reconfigure heals the table completely.
	st.Configure(regs(8), 4)
	if got := st.Lookup(isa.R(0)); got != isa.R(8) {
		t.Errorf("Configure did not heal the table: Lookup(R0) = %s", got)
	}
}

// A mapped-id upset silently reroutes an architected register to the
// wrong physical location — the File must follow the corrupted mapping
// (that is the fault model) while all other registers are unaffected.
func TestCorruptedMappingReroutes(t *testing.T) {
	f := mustFile(t, DefaultConfig(DesignPartitioned))
	f.Mapper().Configure(regs(8, 9, 10, 11), 4)
	cam := f.CAM()
	if cam == nil {
		t.Fatal("File has no CAM")
	}
	// Entry 1 is R8->R0; flipping mapped bit 8 (field bit 2) sends R8 to
	// physical R4 — an SRF row instead of its FRF slot.
	e := cam.FlipBit(1, 8)
	if e.Orig != isa.R(8) || e.Mapped != isa.R(4) {
		t.Fatalf("unexpected corrupted row %+v", e)
	}
	if part, _ := f.Route(isa.R(8)); part != PartSRF {
		t.Errorf("corrupted R8 routed to %v, want SRF", part)
	}
	if got := f.PhysicalReg(isa.R(8)); got != isa.R(4) {
		t.Errorf("PhysicalReg(R8) = %s, want corrupted R4", got)
	}
	// Untouched entries keep their placement.
	if part, _ := f.Route(isa.R(9)); part != PartFRFHigh {
		t.Errorf("uncorrupted R9 routed to %v, want FRF_high", part)
	}
}

// An adaptive power-mode flip between two accesses of a swapped register
// must change only the partition's power mode, never the placement: the
// swap table and the mode controller are independent hardware.
func TestAdaptiveModeFlipMidSwapKeepsPlacement(t *testing.T) {
	cfg := DefaultConfig(DesignPartitionedAdaptive)
	f := mustFile(t, cfg)
	f.Mapper().Configure(regs(10, 11), 4)
	physBefore := f.PhysicalReg(isa.R(10))
	part, _ := f.Route(isa.R(10))
	if part != PartFRFHigh {
		t.Fatalf("promoted R10 routed to %v before flip", part)
	}
	// Idle epoch mid-swap: the FRF drops to low power.
	for i := 0; i < cfg.Adaptive.EpochCycles; i++ {
		f.Adaptive().Tick()
	}
	part, _ = f.Route(isa.R(10))
	if part != PartFRFLow {
		t.Fatalf("promoted R10 routed to %v after flip, want FRF_low", part)
	}
	if got := f.PhysicalReg(isa.R(10)); got != physBefore {
		t.Errorf("mode flip moved R10: %s -> %s", physBefore, got)
	}
	// Displaced R0 stays in the SRF either way.
	if part, _ := f.Route(isa.R(0)); part != PartSRF {
		t.Errorf("displaced R0 routed to %v", part)
	}
}

// With injection disabled the fault hooks are inert: a freshly
// configured CAM equals the indexed reference for every register, and
// CAMBits sizes only partitioned designs.
func TestFaultHooksInertWithoutInjection(t *testing.T) {
	f := mustFile(t, DefaultConfig(DesignPartitioned))
	f.Mapper().Configure(regs(40, 1, 62, 0), 4)
	idx := NewIndexedSwapTable()
	idx.Configure(regs(40, 1, 62, 0), 4)
	for r := 0; r < isa.MaxRegs; r++ {
		if f.PhysicalReg(isa.R(r)) != idx.Lookup(isa.R(r)) {
			t.Errorf("placement diverged from reference at R%d", r)
		}
	}
	if got := f.CAMBits(); got != 104 {
		t.Errorf("partitioned CAMBits = %d, want 104", got)
	}
	mono := mustFile(t, DefaultConfig(DesignMonolithicNTV))
	if got := mono.CAMBits(); got != 0 {
		t.Errorf("monolithic CAMBits = %d, want 0", got)
	}
}
