package design

import (
	"fmt"

	"pilotrf/internal/energy"
	"pilotrf/internal/regfile"
)

// init registers the schemes in canonical report order: the paper's four
// designs first, then the related-work rivals.
func init() {
	Register(monolithic{name: "mrf-stv", base: regfile.DesignMonolithicSTV,
		doc: "monolithic 256 KB MRF at standard voltage (the baseline)"})
	Register(monolithic{name: "mrf-ntv", base: regfile.DesignMonolithicNTV,
		doc: "monolithic MRF at near-threshold voltage (slow, leaky-cheap)"})
	Register(partitioned{name: "part", base: regfile.DesignPartitioned,
		doc: "pilot-profiled FRF/SRF partitioning (the paper's design)"})
	Register(partitioned{name: "part-adaptive", base: regfile.DesignPartitionedAdaptive,
		doc: "partitioned RF with the adaptive dual-voltage FRF"})
	Register(greener{})
	Register(rfcScheme{name: "rfc", doc: "Gebhart ISCA'11 register file cache (FIFO, allocate-on-miss)"})
	Register(rfcScheme{name: "rfc-hints", hints: true,
		doc: "compiler-assisted RFC: static top-N hints pick cached registers"})
}

// monolithic is a legacy single-partition design; the name fixes the
// voltage, so it has no knobs.
type monolithic struct {
	name string
	base regfile.Design
	doc  string
}

// Name implements Scheme.
func (m monolithic) Name() string { return m.name }

// Doc implements Scheme.
func (m monolithic) Doc() string { return m.doc }

// Base implements Scheme.
func (m monolithic) Base(Knobs) regfile.Design { return m.base }

// DefaultKnobs implements Scheme.
func (m monolithic) DefaultKnobs() Knobs { return Knobs{} }

// Validate implements Scheme: the monolithic designs have no knobs.
func (m monolithic) Validate(k Knobs) error {
	if k != (Knobs{}) {
		return fmt.Errorf("design: %s takes no knobs (got %s)", m.name, k)
	}
	return nil
}

// Grid implements Scheme.
func (m monolithic) Grid() []Knobs { return []Knobs{{}} }

// Settings implements Scheme, reproducing sim.Config.WithDesign exactly:
// the NTV MRF also slows the (unused) RFC-backing latency so a scheme
// and a WithDesign configuration are bit-identical.
func (m monolithic) Settings(k Knobs) (Settings, error) {
	if err := m.Validate(k); err != nil {
		return Settings{}, err
	}
	set := Settings{RF: regfile.DefaultConfig(m.base)}
	if m.base == regfile.DesignMonolithicNTV {
		set.RFCMRFLatency = 3
	}
	return set, nil
}

// Energy implements Scheme with the aggregate pricing model.
func (m monolithic) Energy(k Knobs, r Run) Breakdown {
	return Breakdown{
		DynamicPJ: energy.DynamicPJ(m.base, r.PartAccesses),
		LeakagePJ: energy.LeakagePJ(m.base, r.Cycles),
	}
}

// partitioned is a legacy FRF/SRF design; Size is the FRF capacity in
// registers per warp (the paper's n, default 4).
type partitioned struct {
	name string
	base regfile.Design
	doc  string
}

// Name implements Scheme.
func (p partitioned) Name() string { return p.name }

// Doc implements Scheme.
func (p partitioned) Doc() string { return p.doc }

// Base implements Scheme.
func (p partitioned) Base(Knobs) regfile.Design { return p.base }

// DefaultKnobs implements Scheme.
func (p partitioned) DefaultKnobs() Knobs { return Knobs{} }

// Validate implements Scheme: Size is the FRF registers per warp; the
// partition structure fixes the voltage regions, so Voltage must stay
// default.
func (p partitioned) Validate(k Knobs) error {
	if k.Voltage != "" {
		return fmt.Errorf("design: %s fixes its voltage regions (got vdd=%s)", p.name, k.Voltage)
	}
	if k.Size < 0 || k.Size > 16 {
		return fmt.Errorf("design: %s FRF size %d outside [1,16] (0 = the paper's 4)", p.name, k.Size)
	}
	return nil
}

// Grid implements Scheme: the paper's n = 4 plus the ablation neighbors.
func (p partitioned) Grid() []Knobs {
	return []Knobs{{}, {Size: 2}, {Size: 6}}
}

// Settings implements Scheme. A non-default FRF size moves the profiling
// top-N with it, as the FRF-size ablation does.
func (p partitioned) Settings(k Knobs) (Settings, error) {
	if err := p.Validate(k); err != nil {
		return Settings{}, err
	}
	set := Settings{RF: regfile.DefaultConfig(p.base)}
	if k.Size != 0 {
		set.RF.FRFRegs = k.Size
		set.ProfTopN = k.Size
	}
	return set, nil
}

// Energy implements Scheme with the aggregate pricing model.
func (p partitioned) Energy(k Knobs, r Run) Breakdown {
	return Breakdown{
		DynamicPJ: energy.DynamicPJ(p.base, r.PartAccesses),
		LeakagePJ: energy.LeakagePJ(p.base, r.Cycles),
	}
}
