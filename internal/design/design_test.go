package design

import (
	"strings"
	"testing"

	"pilotrf/internal/energy"
	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

func TestRegistryContents(t *testing.T) {
	want := []string{"mrf-stv", "mrf-ntv", "part", "part-adaptive", "greener", "rfc", "rfc-hints"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(All()) != len(want) {
		t.Errorf("All() has %d schemes, want %d", len(All()), len(want))
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	for _, s := range All() {
		if s.Doc() == "" {
			t.Errorf("%s: empty doc", s.Name())
		}
	}
}

func TestSchemeGridsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(s.DefaultKnobs()); err != nil {
			t.Errorf("%s: default knobs invalid: %v", s.Name(), err)
		}
		sawDefault := false
		for _, k := range s.Grid() {
			if err := s.Validate(k); err != nil {
				t.Errorf("%s: grid point %s invalid: %v", s.Name(), k, err)
			}
			if _, err := s.Settings(k); err != nil {
				t.Errorf("%s: grid point %s settings: %v", s.Name(), k, err)
			}
			if k == s.DefaultKnobs() {
				sawDefault = true
			}
		}
		if !sawDefault {
			t.Errorf("%s: grid omits the default point", s.Name())
		}
	}
}

func TestSchemeValidateRejects(t *testing.T) {
	cases := []struct {
		scheme string
		k      Knobs
	}{
		{"mrf-stv", Knobs{Size: 4}},
		{"mrf-ntv", Knobs{Voltage: "stv"}},
		{"part", Knobs{Voltage: "ntv"}},
		{"part", Knobs{Size: 17}},
		{"part-adaptive", Knobs{Size: -1}},
		{"greener", Knobs{Voltage: "mid"}},
		{"greener", Knobs{Size: 65}},
		{"rfc", Knobs{Size: 17}},
		{"rfc-hints", Knobs{Voltage: "x"}},
	}
	for _, c := range cases {
		s := MustLookup(c.scheme)
		if err := s.Validate(c.k); err == nil {
			t.Errorf("%s: Validate(%+v) accepted invalid knobs", c.scheme, c.k)
		}
		if _, err := s.Settings(c.k); err == nil {
			t.Errorf("%s: Settings(%+v) accepted invalid knobs", c.scheme, c.k)
		}
	}
}

func TestKnobsString(t *testing.T) {
	cases := []struct {
		k    Knobs
		want string
	}{
		{Knobs{}, "default"},
		{Knobs{Size: 4}, "size=4"},
		{Knobs{Voltage: "ntv"}, "vdd=ntv"},
		{Knobs{Size: 8, Voltage: "stv"}, "size=8,vdd=stv"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestLegacySchemeBases(t *testing.T) {
	bases := map[string]regfile.Design{
		"mrf-stv":       regfile.DesignMonolithicSTV,
		"mrf-ntv":       regfile.DesignMonolithicNTV,
		"part":          regfile.DesignPartitioned,
		"part-adaptive": regfile.DesignPartitionedAdaptive,
		"greener":       regfile.DesignMonolithicSTV,
		"rfc":           regfile.DesignMonolithicNTV,
		"rfc-hints":     regfile.DesignMonolithicNTV,
	}
	for name, want := range bases {
		s := MustLookup(name)
		if got := s.Base(s.DefaultKnobs()); got != want {
			t.Errorf("%s: Base = %v, want %v", name, got, want)
		}
		set, err := s.Settings(s.DefaultKnobs())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if set.RF.Design != want {
			t.Errorf("%s: Settings RF design %v, want %v", name, set.RF.Design, want)
		}
	}
	if MustLookup("greener").Base(Knobs{Voltage: "ntv"}) != regfile.DesignMonolithicNTV {
		t.Error("greener: ntv knob did not move the base design")
	}
}

func TestGatingTracker(t *testing.T) {
	tr := NewGatingTracker(GatingConfig{Granularity: 1}, 4, 100)
	if tr.LiveRows() != 0 {
		t.Fatalf("fresh tracker has %d live rows", tr.LiveRows())
	}
	tr.OnWrite(0, isa.R(0))
	tr.OnWrite(0, isa.R(1))
	tr.OnWrite(0, isa.R(1)) // re-write: no new wakeup
	tr.OnWrite(1, isa.R(0))
	if tr.LiveRows() != 3 {
		t.Errorf("live rows = %d, want 3", tr.LiveRows())
	}
	tr.Tick()
	st := tr.Stats()
	if st.Wakeups != 3 {
		t.Errorf("wakeups = %d, want 3", st.Wakeups)
	}
	if st.LiveRowCycles != 3 || st.GatedRowCycles != 97 {
		t.Errorf("row-cycles = %d live / %d gated, want 3/97", st.LiveRowCycles, st.GatedRowCycles)
	}
	tr.OnWarpRetire(0)
	if tr.LiveRows() != 1 {
		t.Errorf("live rows after retire = %d, want 1", tr.LiveRows())
	}
	tr.OnWrite(0, isa.R(5)) // relaunch on the freed slot wakes anew
	if tr.LiveRows() != 2 {
		t.Errorf("live rows after relaunch = %d, want 2", tr.LiveRows())
	}
}

func TestGatingTrackerGranularity(t *testing.T) {
	tr := NewGatingTracker(GatingConfig{Granularity: 8}, 2, 1000)
	tr.OnWrite(0, isa.R(0))
	if tr.LiveRows() != 8 {
		t.Errorf("one write at granularity 8 powers %d rows, want 8", tr.LiveRows())
	}
	tr.OnWrite(0, isa.R(7)) // same domain: no new wakeup
	tr.OnWrite(0, isa.R(8)) // next domain
	if tr.LiveRows() != 16 {
		t.Errorf("live rows = %d, want 16", tr.LiveRows())
	}
	if w := tr.Stats().Wakeups; w != 2 {
		t.Errorf("wakeups = %d, want 2", w)
	}
	tr.OnWarpRetire(0)
	if tr.LiveRows() != 0 {
		t.Errorf("live rows after retire = %d, want 0", tr.LiveRows())
	}
}

func TestGatingStatsConservation(t *testing.T) {
	tr := NewGatingTracker(GatingConfig{Granularity: 4}, 2, 64)
	tr.OnWrite(0, isa.R(3))
	for i := 0; i < 10; i++ {
		tr.Tick()
	}
	st := tr.Stats()
	if st.LiveRowCycles+st.GatedRowCycles != 64*10 {
		t.Errorf("row-cycles %d+%d do not cover capacity x cycles", st.LiveRowCycles, st.GatedRowCycles)
	}
	if f := st.LiveFraction(); f <= 0 || f >= 1 {
		t.Errorf("live fraction %v outside (0,1)", f)
	}
	if (GatingStats{}).LiveFraction() != 1 {
		t.Error("empty stats should report live fraction 1 (no savings)")
	}
}

func TestGreenerEnergyBeatsUngatedLeakage(t *testing.T) {
	g := MustLookup("greener")
	run := Run{
		PartAccesses: [4]uint64{1000, 0, 0, 0},
		Cycles:       10000,
		Gating:       GatingStats{LiveRowCycles: 2_000_000, GatedRowCycles: 18_000_000},
	}
	b := g.Energy(g.DefaultKnobs(), run)
	base := MustLookup("mrf-stv").Energy(Knobs{}, run)
	if b.DynamicPJ != base.DynamicPJ {
		t.Errorf("greener dynamic %v != base %v (gating is leakage-only)", b.DynamicPJ, base.DynamicPJ)
	}
	if b.LeakagePJ >= base.LeakagePJ {
		t.Errorf("greener leakage %v not below ungated %v at 10%% occupancy", b.LeakagePJ, base.LeakagePJ)
	}
	if b.LeakagePJ <= 0 {
		t.Errorf("greener leakage %v not positive", b.LeakagePJ)
	}
	// Fully-live run gates nothing beyond the residue model's periphery
	// handling: it must price at GatedLeakagePJ(d, 1, cycles).
	full := run
	full.Gating = GatingStats{LiveRowCycles: 1, GatedRowCycles: 0}
	if got, want := g.Energy(Knobs{}, full).LeakagePJ,
		energy.GatedLeakagePJ(regfile.DesignMonolithicSTV, 1, run.Cycles); got != want {
		t.Errorf("fully-live leakage %v != %v", got, want)
	}
}

func TestRFCSchemeEnergy(t *testing.T) {
	s := MustLookup("rfc-hints")
	run := Run{
		Cycles:        5000,
		TotalAccesses: 3000,
		RFC:           rfcStatsForTest(),
	}
	b := s.Energy(s.DefaultKnobs(), run)
	if b.DynamicPJ <= 0 || b.LeakagePJ <= 0 {
		t.Fatalf("rfc-hints breakdown not positive: %+v", b)
	}
	// Bypasses are priced as MRF traffic: adding bypasses must increase
	// dynamic energy.
	more := run
	more.RFC.ReadBypass += 500
	if got := s.Energy(s.DefaultKnobs(), more).DynamicPJ; got <= b.DynamicPJ {
		t.Errorf("read bypasses not priced: %v <= %v", got, b.DynamicPJ)
	}
	// A bigger cache array must not get cheaper per access... just check
	// knob plumbing: different Size changes the pricing.
	if got := s.Energy(Knobs{Size: 12}, run).DynamicPJ; got == b.DynamicPJ {
		t.Error("entries knob does not reach the energy model")
	}
}

func TestSettingsShapes(t *testing.T) {
	set, err := MustLookup("rfc-hints").Settings(Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	if !set.UseRFC || !set.RFCCompilerHints || !set.TwoLevel {
		t.Errorf("rfc-hints settings missing cache/hints/scheduler: %+v", set)
	}
	if set.RFC.EntriesPerWarp != rfcDefEntries {
		t.Errorf("rfc-hints entries %d, want %d", set.RFC.EntriesPerWarp, rfcDefEntries)
	}
	set, err = MustLookup("rfc").Settings(Knobs{Size: 4, Voltage: "stv"})
	if err != nil {
		t.Fatal(err)
	}
	if set.RFCCompilerHints {
		t.Error("classic rfc must not set compiler hints")
	}
	if set.RFCMRFLatency != 1 {
		t.Errorf("rfc@stv MRF latency %d, want 1", set.RFCMRFLatency)
	}
	set, err = MustLookup("greener").Settings(Knobs{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if set.Gating == nil || set.Gating.Granularity != 8 {
		t.Errorf("greener gating settings wrong: %+v", set.Gating)
	}
	set, err = MustLookup("part").Settings(Knobs{Size: 6})
	if err != nil {
		t.Fatal(err)
	}
	if set.RF.FRFRegs != 6 || set.ProfTopN != 6 {
		t.Errorf("part size knob did not move FRFRegs/ProfTopN: %+v", set)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { Register(monolithic{name: "mrf-stv"}) })
	mustPanic("empty", func() { Register(monolithic{}) })
	mustPanic("unknown lookup", func() { MustLookup("definitely-not-registered") })
}

func TestSortedNames(t *testing.T) {
	names := SortedNames()
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) > 0 {
			t.Fatalf("SortedNames not sorted: %v", names)
		}
	}
}

// rfcStatsForTest builds a plausible RFC event mix.
func rfcStatsForTest() rfc.Stats {
	return rfc.Stats{
		ReadHits: 1500, ReadMiss: 500, Writes: 1000,
		Fills: 500, Evictions: 800, DirtyWB: 300,
		TagChecks: 3000, Flushes: 40,
	}
}
