package design

import (
	"fmt"

	"pilotrf/internal/energy"
	"pilotrf/internal/fincacti"
	"pilotrf/internal/finfet"
	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

// RFC array shape for the default 4-scheduler SM: the paper's Figure 13
// scaling point (24 banks, 32-warp active pool, 2R/1W ports).
const (
	rfcActiveWarps = 32
	rfcBanks       = 24
	rfcDefEntries  = 6
)

// rfcScheme is the Gebhart ISCA'11 register file cache in front of a
// monolithic MRF, optionally compiler-assisted (arXiv 2310.17501): with
// hints, the compiler's static top-N registers are the only ones that
// allocate entries — everything else bypasses straight to the MRF, so no
// CAM probe is spent on registers known never to be cached. Size is the
// entries per warp; Voltage picks the backing MRF supply (NTV is the
// paper's fair-comparison default).
type rfcScheme struct {
	name  string
	doc   string
	hints bool
}

// Name implements Scheme.
func (s rfcScheme) Name() string { return s.name }

// Doc implements Scheme.
func (s rfcScheme) Doc() string { return s.doc }

// Base implements Scheme: the backing MRF's design.
func (s rfcScheme) Base(k Knobs) regfile.Design {
	d, err := voltageOf(k.Voltage, "ntv")
	if err != nil {
		d = regfile.DesignMonolithicNTV
	}
	return d
}

// DefaultKnobs implements Scheme.
func (s rfcScheme) DefaultKnobs() Knobs { return Knobs{} }

// Validate implements Scheme.
func (s rfcScheme) Validate(k Knobs) error {
	if _, err := voltageOf(k.Voltage, "ntv"); err != nil {
		return err
	}
	if k.Size < 0 || k.Size > 16 {
		return fmt.Errorf("design: %s entries per warp %d outside [1,16] (0 = %d)",
			s.name, k.Size, rfcDefEntries)
	}
	return nil
}

// Grid implements Scheme: the paper's 6 entries plus neighbors, at the
// fair-comparison NTV backing.
func (s rfcScheme) Grid() []Knobs {
	return []Knobs{{}, {Size: 4}, {Size: 8}}
}

// entries resolves the entries-per-warp knob.
func (s rfcScheme) entries(k Knobs) int {
	if k.Size == 0 {
		return rfcDefEntries
	}
	return k.Size
}

// Settings implements Scheme: a monolithic MRF fronted by the cache
// under the two-level scheduler (the active-pool restriction is part of
// the RFC's cost), with the MRF latency set by its voltage.
func (s rfcScheme) Settings(k Knobs) (Settings, error) {
	if err := s.Validate(k); err != nil {
		return Settings{}, err
	}
	base := s.Base(k)
	set := Settings{
		RF:            regfile.DefaultConfig(base),
		TwoLevel:      true,
		TLActiveWarps: rfcActiveWarps,
		UseRFC:        true,
		RFC: rfc.Config{
			EntriesPerWarp:     s.entries(k),
			Warps:              rfcActiveWarps,
			Policy:             rfc.FIFO,
			AllocateOnReadMiss: true,
		},
		RFCCompilerHints: s.hints,
		RFCMRFLatency:    1,
	}
	if base == regfile.DesignMonolithicNTV {
		set.RFCMRFLatency = 3
	}
	return set, nil
}

// array returns the FinCACTI model of the cache storage at these knobs.
func (s rfcScheme) array(k Knobs) fincacti.RFConfig {
	return fincacti.RFCConfig(s.entries(k), rfcActiveWarps, rfcBanks, 2, 1)
}

// Energy implements Scheme: tag/data/MRF dynamic pricing from the cache
// event counts, plus the leakage of the MRF and the cache array itself.
func (s rfcScheme) Energy(k Knobs, r Run) Breakdown {
	base := s.Base(k)
	vdd := finfet.STV
	if base == regfile.DesignMonolithicNTV {
		vdd = finfet.NTV
	}
	arr := s.array(k)
	dyn := energy.RFCDynamic(r.RFC, arr, vdd)
	nanos := float64(r.Cycles) / energy.ClockGHz
	return Breakdown{
		DynamicPJ: dyn.TotalPJ(),
		LeakagePJ: energy.LeakagePJ(base, r.Cycles) + arr.LeakagePowerMW()*nanos,
	}
}
