package design

import (
	"fmt"

	"pilotrf/internal/energy"
	"pilotrf/internal/isa"
	"pilotrf/internal/regfile"
)

// greener is GREENER-style register-liveness power gating (arXiv
// 1709.04697) on a monolithic MRF: a register row is powered on by its
// first write and a warp's rows are powered off when the warp retires,
// so dead rows leak only the gating residue. Size is the gating
// granularity in rows per domain; Voltage picks the MRF supply.
type greener struct{}

// Name implements Scheme.
func (greener) Name() string { return "greener" }

// Doc implements Scheme.
func (greener) Doc() string {
	return "GREENER-style liveness power gating: dead register rows sleep"
}

// Base implements Scheme: the timing and dynamic energy are the
// monolithic MRF's at the selected voltage.
func (greener) Base(k Knobs) regfile.Design {
	d, err := voltageOf(k.Voltage, "stv")
	if err != nil {
		d = regfile.DesignMonolithicSTV
	}
	return d
}

// DefaultKnobs implements Scheme: per-row gating at standard voltage.
func (greener) DefaultKnobs() Knobs { return Knobs{} }

// Validate implements Scheme.
func (g greener) Validate(k Knobs) error {
	if _, err := voltageOf(k.Voltage, "stv"); err != nil {
		return err
	}
	if k.Size < 0 || k.Size > 64 {
		return fmt.Errorf("design: greener gating granularity %d outside [1,64] (0 = per-row)", k.Size)
	}
	return nil
}

// Grid implements Scheme: per-row vs domain gating at both voltages.
func (g greener) Grid() []Knobs {
	return []Knobs{{}, {Size: 8}, {Voltage: "ntv"}, {Size: 8, Voltage: "ntv"}}
}

// Settings implements Scheme: the base monolithic configuration plus the
// gating tracker. Timing is identical to the base design — gating is an
// energy-only observer — which is what lets the scheme pass the replay
// property against its base recording.
func (g greener) Settings(k Knobs) (Settings, error) {
	if err := g.Validate(k); err != nil {
		return Settings{}, err
	}
	base := g.Base(k)
	set := Settings{RF: regfile.DefaultConfig(base)}
	if base == regfile.DesignMonolithicNTV {
		set.RFCMRFLatency = 3
	}
	gran := k.Size
	if gran == 0 {
		gran = 1
	}
	set.Gating = &GatingConfig{Granularity: gran}
	return set, nil
}

// Energy implements Scheme: dynamic energy is the base MRF's; leakage is
// gated by the measured live-row fraction (sleep transistors retain the
// residue energy.GatedLeakageMW models).
func (g greener) Energy(k Knobs, r Run) Breakdown {
	base := g.Base(k)
	return Breakdown{
		DynamicPJ: energy.DynamicPJ(base, r.PartAccesses),
		LeakagePJ: energy.GatedLeakagePJ(base, r.Gating.LiveFraction(), r.Cycles),
	}
}

// GatingStats are the integer liveness counters the tracker accumulates;
// being integers, they merge and compare exactly across runs.
type GatingStats struct {
	// LiveRowCycles accumulates powered-on register rows per cycle;
	// GatedRowCycles the powered-off remainder of the RF's capacity.
	LiveRowCycles  uint64
	GatedRowCycles uint64
	// Wakeups counts gating-domain power-on events (first writes).
	Wakeups uint64
}

// Add folds another tracker's counters in.
func (g *GatingStats) Add(o GatingStats) {
	g.LiveRowCycles += o.LiveRowCycles
	g.GatedRowCycles += o.GatedRowCycles
	g.Wakeups += o.Wakeups
}

// LiveFraction returns powered-on row-cycles over the total, or 1 (no
// savings) when nothing was tracked.
func (g GatingStats) LiveFraction() float64 {
	total := g.LiveRowCycles + g.GatedRowCycles
	if total == 0 {
		return 1
	}
	return float64(g.LiveRowCycles) / float64(total)
}

// GatingTracker maintains one SM's liveness masks: which architected
// registers of each resident warp have been written since the warp
// launched. The simulator drives it with OnWrite/OnWarpRetire/Tick; all
// state is integer bookkeeping off the timing path.
type GatingTracker struct {
	gran     int
	capacity int
	written  []uint64 // per warp slot: mask of written architected registers
	liveOf   []int    // per warp slot: granularity-rounded live rows
	live     int
	stats    GatingStats
}

// NewGatingTracker returns a tracker for an SM with the given warp slots
// and total register-row capacity (the warp-register budget).
func NewGatingTracker(cfg GatingConfig, warpSlots, capacityRows int) *GatingTracker {
	gran := cfg.Granularity
	if gran <= 0 {
		gran = 1
	}
	if warpSlots <= 0 || capacityRows <= 0 {
		panic(fmt.Sprintf("design: gating tracker over %d slots / %d rows", warpSlots, capacityRows))
	}
	return &GatingTracker{
		gran:     gran,
		capacity: capacityRows,
		written:  make([]uint64, warpSlots),
		liveOf:   make([]int, warpSlots),
	}
}

// domainMask returns the mask of the gating domain containing register r.
func (t *GatingTracker) domainMask(r isa.Reg) uint64 {
	lo := (int(r) / t.gran) * t.gran
	width := t.gran
	if lo+width > 64 {
		width = 64 - lo
	}
	return ((uint64(1) << width) - 1) << lo
}

// OnWrite powers on the domain holding register r of the warp slot, if
// it is not already awake.
func (t *GatingTracker) OnWrite(slot int, r isa.Reg) {
	if !r.Valid() {
		return
	}
	dom := t.domainMask(r)
	if t.written[slot]&dom == 0 {
		t.stats.Wakeups++
		t.live += t.gran
		t.liveOf[slot] += t.gran
	}
	t.written[slot] |= uint64(1) << uint(r)
}

// OnWarpRetire powers off every row of the warp slot — the warp's
// registers are dead once it completes.
func (t *GatingTracker) OnWarpRetire(slot int) {
	t.live -= t.liveOf[slot]
	t.liveOf[slot] = 0
	t.written[slot] = 0
}

// Tick accumulates one cycle of liveness: live rows stay powered, the
// rest of the capacity is gated.
func (t *GatingTracker) Tick() {
	live := t.live
	if live > t.capacity {
		live = t.capacity
	}
	t.stats.LiveRowCycles += uint64(live)
	t.stats.GatedRowCycles += uint64(t.capacity - live)
}

// LiveRows returns the currently powered-on row count (for tests).
func (t *GatingTracker) LiveRows() int { return t.live }

// Stats returns the accumulated counters.
func (t *GatingTracker) Stats() GatingStats { return t.stats }
