// Package design is the register-file design plug-in registry: every RF
// organization the simulator can evaluate — the paper's four designs and
// the rival schemes from the related work — is a registered Scheme that
// names itself, validates its configuration knobs, maps them onto
// simulator settings, and prices a finished run's energy.
//
// The package sits below internal/sim (it imports only the circuit and
// bookkeeping models), so simulator tests can sweep All() without an
// import cycle; sim.Config.WithScheme applies a Scheme's Settings to a
// simulator configuration.
package design

import (
	"fmt"
	"sort"
	"strings"

	"pilotrf/internal/regfile"
	"pilotrf/internal/rfc"
)

// Knobs are a scheme's configuration parameters. The zero value selects
// every scheme's default operating point.
type Knobs struct {
	// Size is the scheme's capacity knob: FRF registers per warp for the
	// partitioned designs, RFC entries per warp for the cache schemes,
	// rows per gating domain for the liveness-gated scheme. 0 selects
	// the scheme default; schemes without a capacity knob require 0.
	Size int
	// Voltage selects the supply point ("stv" or "ntv") for schemes
	// with a voltage knob; "" selects the scheme default. Schemes whose
	// name fixes the voltage (mrf-stv, mrf-ntv) or whose structure does
	// (the partitioned designs mix both regions) require "".
	Voltage string
}

// String renders the knobs canonically ("default" for the zero value),
// the form reports and cache keys use.
func (k Knobs) String() string {
	if k == (Knobs{}) {
		return "default"
	}
	var parts []string
	if k.Size != 0 {
		parts = append(parts, fmt.Sprintf("size=%d", k.Size))
	}
	if k.Voltage != "" {
		parts = append(parts, "vdd="+k.Voltage)
	}
	return strings.Join(parts, ",")
}

// GatingConfig enables liveness-driven register power gating: rows wake
// on their first write and a warp's rows power off when it retires.
type GatingConfig struct {
	// Granularity is the number of register rows per gating domain: 1
	// gates every row independently; larger domains cut sleep-transistor
	// overhead but keep a whole domain awake for one live row.
	Granularity int
}

// Settings are the simulator-facing knob resolution of a scheme: a
// neutral struct sim.Config.WithScheme maps onto the full configuration.
// Zero-valued fields leave the simulator default untouched.
type Settings struct {
	// RF is the register file organization (always set).
	RF regfile.Config
	// ProfTopN, when positive, overrides the profiling top-N (the
	// partitioned schemes pin it to their FRF capacity).
	ProfTopN int
	// TwoLevel selects the two-level warp scheduler the RFC designs
	// require; TLActiveWarps, when positive, sizes its active pool.
	TwoLevel      bool
	TLActiveWarps int
	// UseRFC puts a register file cache in front of the (monolithic) RF;
	// RFC sizes it and RFCCompilerHints switches it to compiler-managed
	// allocation. RFCMRFLatency, when positive, overrides the backing
	// MRF latency.
	UseRFC           bool
	RFC              rfc.Config
	RFCCompilerHints bool
	RFCMRFLatency    int
	// Gating, when non-nil, attaches the liveness gating tracker.
	Gating *GatingConfig
}

// Run is the neutral summary of a finished simulation a Scheme prices:
// the integer event counts the simulator accumulated, with no simulator
// types involved.
type Run struct {
	// PartAccesses are the bank transactions serviced per partition
	// (indexed by regfile.Partition).
	PartAccesses [4]uint64
	// Cycles is the summed kernel execution time.
	Cycles int64
	// TotalAccesses counts warp-level operand accesses (reads + writes),
	// the baseline-normalization denominator. Under an RFC this exceeds
	// the bank transactions — cache hits never reach a bank.
	TotalAccesses uint64
	// RFC carries the cache event counts (zero without an RFC).
	RFC rfc.Stats
	// Gating carries the liveness-gating counters (zero without gating).
	Gating GatingStats
}

// Breakdown is a scheme's energy pricing of a run.
type Breakdown struct {
	DynamicPJ float64
	LeakagePJ float64
}

// TotalPJ returns dynamic plus leakage energy.
func (b Breakdown) TotalPJ() float64 { return b.DynamicPJ + b.LeakagePJ }

// Scheme is one registered register-file design. Implementations are
// stateless descriptors: per-run state (cache tags, gating masks) lives
// in the simulator objects the Settings configure.
type Scheme interface {
	// Name is the unique registry key, also the CLI spelling.
	Name() string
	// Doc is a one-line description for tables and usage text.
	Doc() string
	// Base returns the regfile design the scheme builds on — the design
	// the energy ledger must be priced for.
	Base(k Knobs) regfile.Design
	// DefaultKnobs returns the scheme's default operating point.
	DefaultKnobs() Knobs
	// Validate rejects knob combinations the scheme cannot realize.
	Validate(k Knobs) error
	// Grid returns the operating points a design-space sweep explores;
	// every entry passes Validate and the default point is included.
	Grid() []Knobs
	// Settings resolves knobs to simulator settings.
	Settings(k Knobs) (Settings, error)
	// Energy prices a finished run at the given knobs.
	Energy(k Knobs, r Run) Breakdown
}

// registry holds schemes in registration order (the canonical report
// order: the paper's designs first, then the rivals).
var registry []Scheme

// Register adds a scheme to the registry. It panics on a duplicate or
// empty name — registration is init-time wiring, not input handling.
func Register(s Scheme) {
	name := s.Name()
	if name == "" {
		panic("design: scheme with empty name")
	}
	for _, have := range registry {
		if have.Name() == name {
			panic(fmt.Sprintf("design: duplicate scheme %q", name))
		}
	}
	registry = append(registry, s)
}

// Lookup returns the scheme registered under name.
func Lookup(name string) (Scheme, bool) {
	for _, s := range registry {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// MustLookup returns the scheme registered under name, panicking if it
// does not exist (for tests and init-time wiring).
func MustLookup(name string) Scheme {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("design: unknown scheme %q", name))
	}
	return s
}

// All returns every registered scheme in registration order — the sweep
// order property tests and reports use.
func All() []Scheme {
	out := make([]Scheme, len(registry))
	copy(out, registry)
	return out
}

// Names returns every registered scheme name in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name()
	}
	return out
}

// SortedNames returns the scheme names sorted alphabetically (for usage
// messages).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// voltageOf resolves a Knobs voltage string against a scheme default,
// returning the regfile design for a monolithic MRF at that voltage.
func voltageOf(v, def string) (regfile.Design, error) {
	if v == "" {
		v = def
	}
	switch v {
	case "stv":
		return regfile.DesignMonolithicSTV, nil
	case "ntv":
		return regfile.DesignMonolithicNTV, nil
	default:
		return 0, fmt.Errorf("design: voltage %q (want stv or ntv)", v)
	}
}
