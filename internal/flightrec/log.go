package flightrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Log is one complete recording: the header plus the ordered event
// stream.
type Log struct {
	Meta   Meta
	Events []Event
}

// WriteNDJSON streams the recording as newline-delimited JSON: the
// header object on the first line, then one event per line.
func (l *Log) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(l.Meta); err != nil {
		return err
	}
	for i := range l.Events {
		if err := enc.Encode(l.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a recording written by WriteNDJSON, validating the
// schema tag before touching the event stream.
func ReadNDJSON(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("flightrec: empty recording")
	}
	var l Log
	if err := json.Unmarshal(sc.Bytes(), &l.Meta); err != nil {
		return nil, fmt.Errorf("flightrec: bad header: %w", err)
	}
	if l.Meta.Schema != Schema {
		return nil, fmt.Errorf("flightrec: schema %q, want %q", l.Meta.Schema, Schema)
	}
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("flightrec: line %d: %w", line, err)
		}
		l.Events = append(l.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &l, nil
}

// ReadFile loads a recording from disk.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := ReadNDJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// Checksums returns the log's checksum events in stream order.
func (l *Log) Checksums() []Event {
	var out []Event
	for _, e := range l.Events {
		if e.Kind == KindChecksum {
			out = append(out, e)
		}
	}
	return out
}

// CountKind returns how many events have the given kind.
func (l *Log) CountKind(k Kind) int {
	n := 0
	for i := range l.Events {
		if l.Events[i].Kind == k {
			n++
		}
	}
	return n
}
