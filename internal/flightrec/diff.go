package flightrec

import (
	"fmt"
	"io"
)

// DiffReport is the result of aligning two recordings: header
// differences, the first event-stream divergence with windowed context,
// the subsystem that diverged first, and the first checksum mismatch.
type DiffReport struct {
	// MetaA and MetaB are the two recording headers.
	MetaA, MetaB Meta
	// MetaDiffs lists fingerprint fields that differ, "name: a vs b".
	MetaDiffs []string

	// EventsA and EventsB are the stream lengths.
	EventsA, EventsB int

	// Diverged reports whether the streams differ at all.
	Diverged bool
	// Index is the first differing stream position.
	Index int
	// EventA and EventB are the events at Index; one is nil when that
	// stream ended before Index.
	EventA, EventB *Event
	// Cycle is the first-divergence cycle: the earliest cycle either
	// stream holds at Index (-1 when the streams are identical).
	Cycle int64
	// Subsystem blames the simulator subsystem whose commitment
	// diverged first (from the earlier of the two events at Index).
	Subsystem string
	// ContextA and ContextB are the events around Index (window before,
	// window after) from each stream.
	ContextA, ContextB []Event

	// ChecksumOrdinal is the position, within the per-SM checksum
	// stream, of the first checksum mismatch (-1 when all aligned
	// checksums agree).
	ChecksumOrdinal int
	// ChecksumSM is the SM whose checksum stream diverged first.
	ChecksumSM int
	// ChecksumCycleA and ChecksumCycleB are the cycles of the first
	// mismatching checksum pair in each recording.
	ChecksumCycleA, ChecksumCycleB int64
}

// Diff aligns two recordings and locates their first divergence. The
// streams are compared position by position (the simulator emits events
// deterministically, so equal prefixes mean equal behaviour); window
// sets how many events of context to keep on each side of the
// divergence.
func Diff(a, b *Log, window int) *DiffReport {
	if window < 0 {
		window = 0
	}
	r := &DiffReport{
		MetaA: a.Meta, MetaB: b.Meta,
		EventsA: len(a.Events), EventsB: len(b.Events),
		Index: -1, Cycle: -1, ChecksumOrdinal: -1, ChecksumSM: -1,
		ChecksumCycleA: -1, ChecksumCycleB: -1,
	}
	fa, fb := a.Meta.Fields(), b.Meta.Fields()
	for i := range fa {
		if fa[i][1] != fb[i][1] {
			r.MetaDiffs = append(r.MetaDiffs, fmt.Sprintf("%s: %s vs %s", fa[i][0], fa[i][1], fb[i][1]))
		}
	}

	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	idx := -1
	for i := 0; i < n; i++ {
		if a.Events[i] != b.Events[i] {
			idx = i
			break
		}
	}
	if idx < 0 && len(a.Events) != len(b.Events) {
		idx = n // one stream is a strict prefix of the other
	}
	if idx >= 0 {
		r.Diverged = true
		r.Index = idx
		if idx < len(a.Events) {
			r.EventA = &a.Events[idx]
		}
		if idx < len(b.Events) {
			r.EventB = &b.Events[idx]
		}
		first := r.EventA
		switch {
		case first == nil:
			first = r.EventB
		case r.EventB != nil && r.EventB.Cycle < first.Cycle:
			first = r.EventB
		}
		r.Cycle = first.Cycle
		r.Subsystem = first.Kind.Subsystem()
		r.ContextA = contextWindow(a.Events, idx, window)
		r.ContextB = contextWindow(b.Events, idx, window)
		r.firstChecksumMismatch(a, b)
	}
	return r
}

// contextWindow slices the events around idx: window before, the event
// itself, and window after.
func contextWindow(events []Event, idx, window int) []Event {
	lo := idx - window
	if lo < 0 {
		lo = 0
	}
	hi := idx + window + 1
	if hi > len(events) {
		hi = len(events)
	}
	if lo >= hi {
		return nil
	}
	out := make([]Event, hi-lo)
	copy(out, events[lo:hi])
	return out
}

// firstChecksumMismatch aligns the two checksum streams per SM by
// ordinal (the k-th checksum of an SM lands on the same cycle in both
// runs while both are still busy) and records the earliest mismatch.
func (r *DiffReport) firstChecksumMismatch(a, b *Log) {
	sumsA := checksumsBySM(a)
	sumsB := checksumsBySM(b)
	for sm, ca := range sumsA {
		cb, ok := sumsB[sm]
		if !ok {
			continue
		}
		n := len(ca)
		if len(cb) < n {
			n = len(cb)
		}
		for k := 0; k < n; k++ {
			if ca[k].A == cb[k].A && ca[k].B == cb[k].B && ca[k].Cycle == cb[k].Cycle {
				continue
			}
			if r.ChecksumOrdinal < 0 || ca[k].Cycle < r.ChecksumCycleA {
				r.ChecksumOrdinal = k
				r.ChecksumSM = sm
				r.ChecksumCycleA = ca[k].Cycle
				r.ChecksumCycleB = cb[k].Cycle
			}
			break
		}
	}
}

// checksumsBySM groups a log's checksum events by SM, in stream order.
func checksumsBySM(l *Log) map[int][]Event {
	out := make(map[int][]Event)
	for _, e := range l.Events {
		if e.Kind == KindChecksum {
			out[e.SM] = append(out[e.SM], e)
		}
	}
	return out
}

// WriteText renders the report for a terminal.
func (r *DiffReport) WriteText(w io.Writer) error {
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	labelOf := func(m Meta, fallback string) string {
		if m.Label != "" {
			return m.Label
		}
		return fallback
	}
	la, lb := labelOf(r.MetaA, "A"), labelOf(r.MetaB, "B")
	p("recording A: %s (%d events)\n", la, r.EventsA)
	p("recording B: %s (%d events)\n", lb, r.EventsB)
	if len(r.MetaDiffs) == 0 {
		p("configurations: identical fingerprints\n")
	} else {
		p("configuration differences:\n")
		for _, d := range r.MetaDiffs {
			p("  %s\n", d)
		}
	}
	if !r.Diverged {
		p("\nruns are IDENTICAL: %d events match\n", r.EventsA)
		return nil
	}
	p("\nFIRST DIVERGENCE at event %d, cycle %d (subsystem: %s)\n", r.Index, r.Cycle, r.Subsystem)
	switch {
	case r.EventA == nil:
		p("  A ended; B continues with: %s\n", r.EventB)
	case r.EventB == nil:
		p("  B ended; A continues with: %s\n", r.EventA)
	default:
		p("  A: %s\n  B: %s\n", r.EventA, r.EventB)
	}
	if r.ChecksumOrdinal >= 0 {
		p("\nfirst checksum mismatch: sm%d checksum #%d (cycle %d in A, %d in B)\n",
			r.ChecksumSM, r.ChecksumOrdinal, r.ChecksumCycleA, r.ChecksumCycleB)
	} else {
		p("\nno aligned checksum mismatch (divergence is past the last common checksum)\n")
	}
	p("\ncontext in A (%s):\n", la)
	for _, e := range r.ContextA {
		p("  %s\n", e)
	}
	p("context in B (%s):\n", lb)
	for _, e := range r.ContextB {
		p("  %s\n", e)
	}
	return nil
}
