// Package flightrec is the simulator's flight recorder: a streaming,
// versioned capture of every architectural commitment a run makes —
// issue decisions, warp lifecycle transitions, FRF/SRF routing,
// swap-table installs, adaptive-FRF mode flips, and periodic state
// checksums (register-file content, scoreboard, per-warp PCs).
//
// The simulator is fully deterministic (sim.Config.Seed drives all
// data-dependent behaviour), so a recording is a complete, replayable
// description of a run. Three tools build on that:
//
//   - Recorder captures a run into an in-memory event log that
//     round-trips through a versioned NDJSON file (Log.WriteNDJSON /
//     ReadNDJSON).
//   - Checker replays a recording against a fresh run of the same
//     configuration and reports the first mismatching event — proving
//     determinism and guarding refactors of the timing model.
//   - Diff aligns two recordings (different seeds, designs, schedulers,
//     or git revisions) and reports the first-divergence cycle with
//     windowed event context and the subsystem that diverged first.
//
// Both Recorder and Checker implement Sink, the interface the simulator
// streams events into; a nil Sink disables recording with no overhead.
package flightrec

import (
	"encoding/json"
	"fmt"
)

// Schema is the versioned tag stamped into every recording header; a
// reader rejects logs whose schema it does not understand.
const Schema = "pilotrf-flightrec/v2"

// DefaultChecksumEvery is the default interval, in SM cycles, between
// periodic architectural-state checksums.
const DefaultChecksumEvery = 64

// Kind classifies a recorded architectural commitment.
type Kind uint8

// Event kinds, in rough pipeline order.
const (
	// KindKernelBegin marks a kernel launch (Detail = kernel name,
	// A = CTA count). Emitted once per kernel with SM = -1.
	KindKernelBegin Kind = iota
	// KindKernelEnd marks kernel completion (Cycle = total cycles,
	// A = issued warp instructions). Emitted once per kernel with SM = -1.
	KindKernelEnd
	// KindCTALaunch is one CTA placed on an SM (A = CTA id, B = warps).
	KindCTALaunch
	// KindIssue is one warp instruction issued (Warp = slot, PC,
	// A = opcode, B = active lane mask, Detail = mnemonic).
	KindIssue
	// KindRoute is one serviced RF bank transaction routed to a physical
	// partition (Warp = slot, A = partition, B = architected register).
	KindRoute
	// KindSwapInstall is a swapping-table (re)configuration
	// (A = mapping hash, Detail = technique/phase).
	KindSwapInstall
	// KindModeFlip is an adaptive-FRF power-mode transition (A = 1 when
	// entering low power, 0 when leaving).
	KindModeFlip
	// KindBarrierRelease is a CTA barrier opening (A = CTA id,
	// B = warps released).
	KindBarrierRelease
	// KindWarpRetire is one warp completing all its threads
	// (Warp = slot, A = CTA id).
	KindWarpRetire
	// KindChecksum is a periodic architectural-state checksum
	// (A = register-file content hash over all live warps, B = control
	// hash: per-warp PC stacks, predicates, scoreboards, swap mapping,
	// FRF power mode).
	KindChecksum
	// KindReadHash is an order-invariant digest of every register value
	// consumed by executed instructions so far (A = commutative FNV-mix
	// sum over (CTA, warp, sequence, register, lane, value) tuples,
	// B = operand-read count). Unlike KindChecksum, which hashes state in
	// warp-slot order, this digest is invariant to warp interleaving and
	// CTA placement, so two runs whose timing differs but whose dataflow
	// agrees produce equal read hashes — the discriminator fault
	// campaigns use to separate silent data corruption from masked
	// faults.
	KindReadHash

	numKinds
)

// kindNames indexes Kind string forms.
var kindNames = [numKinds]string{
	"kernel-begin", "kernel-end", "cta-launch", "issue", "route",
	"swap-install", "mode-flip", "barrier-release", "warp-retire", "checksum",
	"read-hash",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// KindOf resolves a wire name back to its Kind.
func KindOf(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Subsystem names the simulator subsystem that commits events of this
// kind — the unit Diff blames when a divergence starts with the kind.
func (k Kind) Subsystem() string {
	switch k {
	case KindIssue:
		return "warp-scheduler"
	case KindRoute:
		return "rf-routing"
	case KindSwapInstall:
		return "profiling/swap-table"
	case KindModeFlip:
		return "adaptive-frf"
	case KindCTALaunch, KindBarrierRelease, KindWarpRetire:
		return "warp-lifecycle"
	case KindChecksum:
		return "architectural-state"
	case KindReadHash:
		return "dataflow"
	case KindKernelBegin, KindKernelEnd:
		return "kernel-lifecycle"
	default:
		return "unknown"
	}
}

// MarshalJSON writes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON reads a wire name back into a Kind.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kk, ok := KindOf(s)
	if !ok {
		return fmt.Errorf("flightrec: unknown event kind %q", s)
	}
	*k = kk
	return nil
}

// Event is one recorded architectural commitment. Events are plain
// comparable values: replay verification is `==` over the stream.
type Event struct {
	// Cycle is the SM-local (kernel-local) cycle of the commitment.
	Cycle int64 `json:"c"`
	// SM is the committing SM, or -1 for run-scope events.
	SM int `json:"sm"`
	// Kind classifies the commitment.
	Kind Kind `json:"k"`
	// Warp is the SM-local warp slot, -1 when not warp-specific.
	Warp int `json:"w"`
	// PC is the program counter, -1 when not instruction-specific.
	PC int `json:"pc"`
	// A and B are kind-specific payloads (see the Kind docs).
	A uint64 `json:"a,omitempty"`
	B uint64 `json:"b,omitempty"`
	// Detail is a kind-specific human-readable annotation.
	Detail string `json:"d,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%8d sm%-2d %-15s w%-3d pc%-4d a=%#x b=%#x %s",
		e.Cycle, e.SM, e.Kind, e.Warp, e.PC, e.A, e.B, e.Detail)
}

// Meta is the recording header: the schema version plus the
// configuration fingerprint a replay must reproduce.
type Meta struct {
	Schema        string `json:"schema"`
	Label         string `json:"label,omitempty"`
	Seed          uint64 `json:"seed"`
	Design        string `json:"design"`
	Profiling     string `json:"profiling"`
	Policy        string `json:"policy"`
	SMs           int    `json:"sms"`
	ChecksumEvery int64  `json:"checksum_every"`
}

// Fields returns the fingerprint as ordered (name, value) pairs, the
// form Diff uses to report header differences.
func (m Meta) Fields() [][2]string {
	return [][2]string{
		{"label", m.Label},
		{"seed", fmt.Sprint(m.Seed)},
		{"design", m.Design},
		{"profiling", m.Profiling},
		{"policy", m.Policy},
		{"sms", fmt.Sprint(m.SMs)},
		{"checksum_every", fmt.Sprint(m.ChecksumEvery)},
	}
}

// Sink receives the simulator's event stream. Recorder captures it;
// Checker verifies it against a prior recording.
type Sink interface {
	// Record accepts one event. Implementations must be cheap: the
	// simulator calls them inline on hot paths.
	Record(Event)
	// ChecksumEvery returns the periodic-checksum interval in cycles.
	ChecksumEvery() int64
}

// Recorder captures a run's event stream in memory. It is not
// synchronized: attach each recorder to exactly one simulation.
type Recorder struct {
	meta   Meta
	events []Event
}

// NewRecorder returns an empty recorder for the given configuration
// fingerprint. The schema tag is forced to the package Schema and a
// non-positive checksum interval selects DefaultChecksumEvery.
func NewRecorder(meta Meta) *Recorder {
	meta.Schema = Schema
	if meta.ChecksumEvery <= 0 {
		meta.ChecksumEvery = DefaultChecksumEvery
	}
	return &Recorder{meta: meta}
}

// Record implements Sink.
func (r *Recorder) Record(e Event) { r.events = append(r.events, e) }

// ChecksumEvery implements Sink.
func (r *Recorder) ChecksumEvery() int64 { return r.meta.ChecksumEvery }

// Len returns the number of captured events.
func (r *Recorder) Len() int { return len(r.events) }

// Log returns the recording as a Log. The events slice is shared, not
// copied: stop the run before reading.
func (r *Recorder) Log() *Log { return &Log{Meta: r.meta, Events: r.events} }
