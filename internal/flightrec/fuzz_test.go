package flightrec

import (
	"bytes"
	"reflect"
	"testing"
)

// seedRecording builds a small but representative recording covering
// the header and several event kinds, serialized by the real writer.
func seedRecording(t testing.TB) []byte {
	t.Helper()
	l := &Log{
		Meta: Meta{
			Schema: Schema, Label: "fuzz-seed", Seed: 7,
			Design: "Partitioned+AdaptiveFRF", Profiling: "hybrid",
			Policy: "gto", SMs: 2, ChecksumEvery: 64,
		},
		Events: []Event{
			{Cycle: 0, SM: -1, Kind: KindKernelBegin, Warp: -1, PC: -1, A: 2, Detail: "seed"},
			{Cycle: 3, SM: 0, Kind: KindIssue, Warp: 1, PC: 4, A: 9},
			{Cycle: 64, SM: 0, Kind: KindChecksum, Warp: -1, PC: -1, A: 0xdeadbeef, B: 12},
			{Cycle: 64, SM: 0, Kind: KindReadHash, Warp: -1, PC: -1, A: 0xfeedface, B: 34},
			{Cycle: 70, SM: -1, Kind: KindKernelEnd, Warp: -1, PC: -1},
		},
	}
	var buf bytes.Buffer
	if err := l.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadNDJSON hammers the recording reader with mutated inputs: it
// must never panic, and anything it accepts must round-trip through the
// writer byte-for-byte at the structural level (same meta, same events).
func FuzzReadNDJSON(f *testing.F) {
	f.Add(seedRecording(f))
	f.Add([]byte(""))
	f.Add([]byte("{\"schema\":\"" + Schema + "\"}\n"))
	f.Add([]byte("{\"schema\":\"" + Schema + "\"}\n{\"c\":1,\"sm\":0,\"k\":3,\"w\":0,\"pc\":0}\n"))
	f.Add([]byte("{\"schema\":\"bogus/v9\"}\n"))
	f.Add([]byte("not json at all\n{}\n"))
	f.Add([]byte("{\"schema\":\"" + Schema + "\"}\n\n\n{\"c\":-5,\"sm\":-1,\"k\":255,\"w\":-1,\"pc\":-1,\"a\":18446744073709551615}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if l.Meta.Schema != Schema {
			t.Fatalf("accepted recording with schema %q", l.Meta.Schema)
		}
		var buf bytes.Buffer
		if err := l.WriteNDJSON(&buf); err != nil {
			t.Fatalf("re-serializing an accepted recording: %v", err)
		}
		l2, err := ReadNDJSON(&buf)
		if err != nil {
			t.Fatalf("round-trip of an accepted recording failed: %v", err)
		}
		if !reflect.DeepEqual(l.Meta, l2.Meta) {
			t.Fatalf("meta round-trip drift:\n%+v\n%+v", l.Meta, l2.Meta)
		}
		if len(l.Events) != len(l2.Events) {
			t.Fatalf("event count drift: %d -> %d", len(l.Events), len(l2.Events))
		}
		for i := range l.Events {
			if l.Events[i] != l2.Events[i] {
				t.Fatalf("event %d drift: %+v -> %+v", i, l.Events[i], l2.Events[i])
			}
		}
	})
}
