package flightrec

import "fmt"

// Checker verifies a live run against a prior recording: attach it as
// the run's Sink and every incoming event is compared, in order,
// against the recorded stream. The first mismatch is retained with its
// position; Err reports it (or a length mismatch) after the run.
//
// Because the simulator is deterministic, a run of the same Config as
// the recording must match event for event — a Checker that passes is
// a proof of reproducibility, and one that fails pinpoints the first
// cycle where a refactor (or a config difference) changed behaviour.
type Checker struct {
	log *Log
	pos int
	div *Divergence
}

// Divergence describes the first point where a replay departed from
// its recording.
type Divergence struct {
	// Index is the event-stream position of the mismatch.
	Index int
	// Recorded is the event the recording holds at Index; nil when the
	// replay produced more events than were recorded.
	Recorded *Event
	// Replayed is the event the live run produced at Index; nil when
	// the replay ended before reaching Index.
	Replayed *Event
}

// Cycle returns the divergence cycle: the earliest cycle either stream
// holds at the mismatch position.
func (d *Divergence) Cycle() int64 {
	switch {
	case d.Recorded != nil && d.Replayed != nil:
		if d.Replayed.Cycle < d.Recorded.Cycle {
			return d.Replayed.Cycle
		}
		return d.Recorded.Cycle
	case d.Recorded != nil:
		return d.Recorded.Cycle
	case d.Replayed != nil:
		return d.Replayed.Cycle
	}
	return -1
}

// NewChecker returns a checker verifying against the given recording.
func NewChecker(log *Log) *Checker { return &Checker{log: log} }

// Record implements Sink: compare the incoming event against the
// recorded stream. After the first mismatch events are only counted.
func (c *Checker) Record(e Event) {
	if c.div == nil {
		switch {
		case c.pos >= len(c.log.Events):
			ev := e
			c.div = &Divergence{Index: c.pos, Replayed: &ev}
		case e != c.log.Events[c.pos]:
			ev := e
			c.div = &Divergence{Index: c.pos, Recorded: &c.log.Events[c.pos], Replayed: &ev}
		}
	}
	c.pos++
}

// ChecksumEvery implements Sink, echoing the recording's interval so
// replay checksums land on the recorded cycles.
func (c *Checker) ChecksumEvery() int64 {
	if c.log.Meta.ChecksumEvery <= 0 {
		return DefaultChecksumEvery
	}
	return c.log.Meta.ChecksumEvery
}

// Checked returns how many events the live run produced so far.
func (c *Checker) Checked() int { return c.pos }

// Divergence returns the first mismatch, or nil while the replay
// matches the recording (including a replay that ended early — use Err
// for the complete verdict).
func (c *Checker) Divergence() *Divergence { return c.div }

// Err returns nil when the completed replay matched the recording
// event for event, and a descriptive error otherwise.
func (c *Checker) Err() error {
	if d := c.div; d != nil {
		switch {
		case d.Recorded == nil:
			return fmt.Errorf("flightrec: replay produced extra events beyond the %d recorded: event %d (cycle %d) %s",
				len(c.log.Events), d.Index, d.Replayed.Cycle, d.Replayed)
		default:
			return fmt.Errorf("flightrec: replay diverged at event %d (cycle %d):\n  recorded: %s\n  replayed: %s",
				d.Index, d.Cycle(), d.Recorded, d.Replayed)
		}
	}
	if c.pos < len(c.log.Events) {
		return fmt.Errorf("flightrec: replay ended after %d of %d recorded events (next recorded: %s)",
			c.pos, len(c.log.Events), c.log.Events[c.pos])
	}
	return nil
}
