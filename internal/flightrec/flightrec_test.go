package flightrec

import (
	"bytes"
	"strings"
	"testing"
)

func testMeta(label string, seed uint64) Meta {
	return Meta{
		Label: label, Seed: seed, Design: "partitioned-adaptive",
		Profiling: "pilot", Policy: "gto", SMs: 2, ChecksumEvery: 64,
	}
}

func ev(cycle int64, sm int, k Kind, warp, pc int, a, b uint64, d string) Event {
	return Event{Cycle: cycle, SM: sm, Kind: k, Warp: warp, PC: pc, A: a, B: b, Detail: d}
}

func sampleLog(seed uint64) *Log {
	r := NewRecorder(testMeta("sample", seed))
	r.Record(ev(0, -1, KindKernelBegin, -1, -1, 4, 0, "vecadd"))
	r.Record(ev(0, 0, KindCTALaunch, -1, -1, 0, 2, ""))
	r.Record(ev(1, 0, KindIssue, 0, 0, 7, 0xffffffff, "add"))
	r.Record(ev(1, 0, KindRoute, 0, -1, 2, 5, ""))
	r.Record(ev(2, 0, KindIssue, 1, 0, 7, 0xffffffff, "add"))
	r.Record(ev(64, 0, KindChecksum, -1, -1, 0x1234+seed, 0x5678, ""))
	r.Record(ev(70, 0, KindWarpRetire, 0, -1, 0, 0, ""))
	r.Record(ev(72, -1, KindKernelEnd, -1, -1, 2, 0, "vecadd"))
	return r.Log()
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind-") {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindOf(name)
		if !ok || got != k {
			t.Fatalf("KindOf(%q) = %v, %v; want %v", name, got, ok, k)
		}
		if k.Subsystem() == "unknown" {
			t.Errorf("kind %s has no subsystem", k)
		}
	}
	if _, ok := KindOf("bogus"); ok {
		t.Fatal("KindOf accepted an unknown name")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	l := sampleLog(1)
	var buf bytes.Buffer
	if err := l.WriteNDJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Meta != l.Meta {
		t.Fatalf("meta round-trip: got %+v want %+v", got.Meta, l.Meta)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("events: got %d want %d", len(got.Events), len(l.Events))
	}
	for i := range l.Events {
		if got.Events[i] != l.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], l.Events[i])
		}
	}
}

func TestReadNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty recording"},
		{"bad header json", "{not json\n", "bad header"},
		{"wrong schema", `{"schema":"other/v9"}` + "\n", "schema"},
		{"bad event json", `{"schema":"pilotrf-flightrec/v2","seed":1}` + "\n{broken\n", "line 2"},
		{"unknown kind", `{"schema":"pilotrf-flightrec/v2","seed":1}` + "\n" + `{"c":1,"k":"bogus"}` + "\n", "unknown event kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadNDJSON(strings.NewReader(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestRecorderDefaults(t *testing.T) {
	r := NewRecorder(Meta{Label: "x"})
	if r.ChecksumEvery() != DefaultChecksumEvery {
		t.Fatalf("ChecksumEvery = %d, want default %d", r.ChecksumEvery(), DefaultChecksumEvery)
	}
	if got := r.Log().Meta.Schema; got != Schema {
		t.Fatalf("schema = %q, want %q", got, Schema)
	}
}

func TestCheckerMatch(t *testing.T) {
	l := sampleLog(1)
	c := NewChecker(l)
	for _, e := range l.Events {
		c.Record(e)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("full replay should match: %v", err)
	}
	if c.Checked() != len(l.Events) {
		t.Fatalf("Checked = %d, want %d", c.Checked(), len(l.Events))
	}
	if c.ChecksumEvery() != 64 {
		t.Fatalf("ChecksumEvery = %d, want 64", c.ChecksumEvery())
	}
}

func TestCheckerMismatch(t *testing.T) {
	l := sampleLog(1)
	c := NewChecker(l)
	for i, e := range l.Events {
		if i == 3 {
			e.A++ // corrupt the routing partition
		}
		c.Record(e)
	}
	d := c.Divergence()
	if d == nil || d.Index != 3 {
		t.Fatalf("divergence = %+v, want index 3", d)
	}
	if d.Cycle() != l.Events[3].Cycle {
		t.Fatalf("divergence cycle = %d, want %d", d.Cycle(), l.Events[3].Cycle)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "diverged at event 3") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckerShortReplay(t *testing.T) {
	l := sampleLog(1)
	c := NewChecker(l)
	for _, e := range l.Events[:4] {
		c.Record(e)
	}
	if c.Divergence() != nil {
		t.Fatal("prefix replay should not register a divergence")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "ended after 4 of") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckerExtraEvents(t *testing.T) {
	l := sampleLog(1)
	c := NewChecker(l)
	for _, e := range l.Events {
		c.Record(e)
	}
	c.Record(ev(99, 0, KindIssue, 0, 4, 7, 1, "add"))
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "extra events") {
		t.Fatalf("err = %v", err)
	}
}

func TestDiffIdentical(t *testing.T) {
	r := Diff(sampleLog(1), sampleLog(1), 3)
	if r.Diverged {
		t.Fatalf("identical logs diverged: %+v", r)
	}
	if len(r.MetaDiffs) != 0 {
		t.Fatalf("meta diffs on identical logs: %v", r.MetaDiffs)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IDENTICAL") {
		t.Fatalf("text output:\n%s", buf.String())
	}
}

func TestDiffDivergence(t *testing.T) {
	a, b := sampleLog(1), sampleLog(2)
	b.Meta.Seed = 2
	r := Diff(a, b, 2)
	if !r.Diverged {
		t.Fatal("different-seed logs should diverge")
	}
	// sampleLog's first seed-dependent event is the checksum at index 5.
	if r.Index != 5 {
		t.Fatalf("Index = %d, want 5", r.Index)
	}
	if r.Cycle != 64 {
		t.Fatalf("Cycle = %d, want 64", r.Cycle)
	}
	if r.Subsystem != "architectural-state" {
		t.Fatalf("Subsystem = %q", r.Subsystem)
	}
	if r.ChecksumOrdinal != 0 || r.ChecksumSM != 0 || r.ChecksumCycleA != 64 {
		t.Fatalf("checksum mismatch fields: %+v", r)
	}
	if len(r.ContextA) != 5 { // 2 before + event + 2 after
		t.Fatalf("ContextA = %d events, want 5", len(r.ContextA))
	}
	found := false
	for _, d := range r.MetaDiffs {
		if strings.Contains(d, "seed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("meta diffs missing seed: %v", r.MetaDiffs)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FIRST DIVERGENCE", "cycle 64", "architectural-state", "checksum #0"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDiffPrefix(t *testing.T) {
	a := sampleLog(1)
	b := &Log{Meta: a.Meta, Events: a.Events[:5]}
	r := Diff(a, b, 1)
	if !r.Diverged || r.Index != 5 {
		t.Fatalf("prefix diff: %+v", r)
	}
	if r.EventB != nil || r.EventA == nil {
		t.Fatalf("prefix diff events: A=%v B=%v", r.EventA, r.EventB)
	}
	if r.Cycle != a.Events[5].Cycle {
		t.Fatalf("Cycle = %d, want %d", r.Cycle, a.Events[5].Cycle)
	}
}

func TestLogHelpers(t *testing.T) {
	l := sampleLog(1)
	if n := l.CountKind(KindIssue); n != 2 {
		t.Fatalf("CountKind(issue) = %d, want 2", n)
	}
	if sums := l.Checksums(); len(sums) != 1 || sums[0].Cycle != 64 {
		t.Fatalf("Checksums = %+v", sums)
	}
}
