package kernel

import (
	"fmt"

	"pilotrf/internal/isa"
)

// Label is a branch target placeholder resolved at Build time.
type Label int

// Builder assembles a Program instruction by instruction. All emit methods
// panic on malformed operands at Build time (not emit time), so builders
// can be written as straight-line code.
type Builder struct {
	name    string
	numRegs int
	instrs  []isa.Instruction
	guard   isa.Guard

	labelPCs []int // label -> pc, -1 while unbound
	// patches records instruction slots whose Target/Reconv are labels
	// awaiting resolution.
	patches []patch
}

type patch struct {
	pc          int
	target      Label
	reconv      Label
	reconvIsSet bool
}

// NewBuilder returns a builder for a kernel with numRegs architected
// registers per thread.
func NewBuilder(name string, numRegs int) *Builder {
	return &Builder{name: name, numRegs: numRegs, guard: isa.GuardAlways}
}

// NewLabel allocates an unbound label.
func (b *Builder) NewLabel() Label {
	b.labelPCs = append(b.labelPCs, -1)
	return Label(len(b.labelPCs) - 1)
}

// Bind binds a label to the current position.
func (b *Builder) Bind(l Label) {
	if b.labelPCs[l] != -1 {
		panic(fmt.Sprintf("kernel: label %d bound twice", l))
	}
	b.labelPCs[l] = len(b.instrs)
}

// Here returns a label bound to the current position.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// Guarded emits the instructions produced by fn under the guard @p (or
// @!p when neg). Guards nest no deeper than one level, matching the ISA.
func (b *Builder) Guarded(p isa.Pred, neg bool, fn func()) {
	prev := b.guard
	b.guard = isa.Guard{Pred: p, Neg: neg}
	fn()
	b.guard = prev
}

func (b *Builder) emit(in isa.Instruction) {
	in.Guard = b.guard
	b.instrs = append(b.instrs, in)
}

// blank returns an instruction template with all operand slots cleared.
func blank(op isa.Op) isa.Instruction {
	return isa.Instruction{
		Op:      op,
		Dst:     isa.RegNone,
		SrcA:    isa.RegNone,
		SrcB:    isa.RegNone,
		SrcC:    isa.RegNone,
		PDst:    isa.PredNone,
		SrcPred: isa.PredNone,
	}
}

// NOP emits a no-op.
func (b *Builder) NOP() {
	b.emit(blank(isa.OpNOP))
}

// MOV emits Rd = Ra.
func (b *Builder) MOV(d, a isa.Reg) {
	in := blank(isa.OpMOV)
	in.Dst, in.SrcA = d, a
	b.emit(in)
}

// MOVI emits Rd = imm.
func (b *Builder) MOVI(d isa.Reg, imm int32) {
	in := blank(isa.OpMOVI)
	in.Dst, in.Imm = d, imm
	b.emit(in)
}

// S2R emits Rd = special register.
func (b *Builder) S2R(d isa.Reg, s isa.Special) {
	in := blank(isa.OpS2R)
	in.Dst, in.Special = d, s
	b.emit(in)
}

func (b *Builder) emit3(op isa.Op, d, a, src2 isa.Reg) {
	in := blank(op)
	in.Dst, in.SrcA, in.SrcB = d, a, src2
	b.emit(in)
}

// IADD emits Rd = Ra + Rb.
func (b *Builder) IADD(d, a, rb isa.Reg) { b.emit3(isa.OpIADD, d, a, rb) }

// ISUB emits Rd = Ra - Rb.
func (b *Builder) ISUB(d, a, rb isa.Reg) { b.emit3(isa.OpISUB, d, a, rb) }

// IMUL emits Rd = Ra * Rb.
func (b *Builder) IMUL(d, a, rb isa.Reg) { b.emit3(isa.OpIMUL, d, a, rb) }

// AND emits Rd = Ra & Rb.
func (b *Builder) AND(d, a, rb isa.Reg) { b.emit3(isa.OpAND, d, a, rb) }

// OR emits Rd = Ra | Rb.
func (b *Builder) OR(d, a, rb isa.Reg) { b.emit3(isa.OpOR, d, a, rb) }

// XOR emits Rd = Ra ^ Rb.
func (b *Builder) XOR(d, a, rb isa.Reg) { b.emit3(isa.OpXOR, d, a, rb) }

// IMIN emits Rd = min(Ra, Rb).
func (b *Builder) IMIN(d, a, rb isa.Reg) { b.emit3(isa.OpIMIN, d, a, rb) }

// SHFL emits the Kepler-style warp shuffle: Rd = Ra of lane (Rb & 31).
func (b *Builder) SHFL(d, a, rb isa.Reg) { b.emit3(isa.OpSHFL, d, a, rb) }

// IMAX emits Rd = max(Ra, Rb).
func (b *Builder) IMAX(d, a, rb isa.Reg) { b.emit3(isa.OpIMAX, d, a, rb) }

// FADD emits Rd = Ra + Rb (float32).
func (b *Builder) FADD(d, a, rb isa.Reg) { b.emit3(isa.OpFADD, d, a, rb) }

// FMUL emits Rd = Ra * Rb (float32).
func (b *Builder) FMUL(d, a, rb isa.Reg) { b.emit3(isa.OpFMUL, d, a, rb) }

func (b *Builder) emitImm(op isa.Op, d, a isa.Reg, imm int32) {
	in := blank(op)
	in.Dst, in.SrcA, in.Imm = d, a, imm
	b.emit(in)
}

// IADDI emits Rd = Ra + imm.
func (b *Builder) IADDI(d, a isa.Reg, imm int32) { b.emitImm(isa.OpIADDI, d, a, imm) }

// IMULI emits Rd = Ra * imm.
func (b *Builder) IMULI(d, a isa.Reg, imm int32) { b.emitImm(isa.OpIMULI, d, a, imm) }

// ANDI emits Rd = Ra & imm.
func (b *Builder) ANDI(d, a isa.Reg, imm int32) { b.emitImm(isa.OpANDI, d, a, imm) }

// SHLI emits Rd = Ra << imm.
func (b *Builder) SHLI(d, a isa.Reg, imm int32) { b.emitImm(isa.OpSHLI, d, a, imm) }

// SHRI emits Rd = Ra >> imm (logical).
func (b *Builder) SHRI(d, a isa.Reg, imm int32) { b.emitImm(isa.OpSHRI, d, a, imm) }

// IMAD emits Rd = Ra*Rb + Rc.
func (b *Builder) IMAD(d, a, rb, rc isa.Reg) {
	in := blank(isa.OpIMAD)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = d, a, rb, rc
	b.emit(in)
}

// FFMA emits Rd = Ra*Rb + Rc (float32).
func (b *Builder) FFMA(d, a, rb, rc isa.Reg) {
	in := blank(isa.OpFFMA)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = d, a, rb, rc
	b.emit(in)
}

// FRCP emits Rd = 1/Ra.
func (b *Builder) FRCP(d, a isa.Reg) {
	in := blank(isa.OpFRCP)
	in.Dst, in.SrcA = d, a
	b.emit(in)
}

// FSQRT emits Rd = sqrt(Ra).
func (b *Builder) FSQRT(d, a isa.Reg) {
	in := blank(isa.OpFSQRT)
	in.Dst, in.SrcA = d, a
	b.emit(in)
}

// FEXP emits Rd = exp2(Ra).
func (b *Builder) FEXP(d, a isa.Reg) {
	in := blank(isa.OpFEXP)
	in.Dst, in.SrcA = d, a
	b.emit(in)
}

// SEL emits Rd = selector ? Ra : Rb.
func (b *Builder) SEL(d, a, rb isa.Reg, sel isa.Pred) {
	in := blank(isa.OpSEL)
	in.Dst, in.SrcA, in.SrcB, in.SrcPred = d, a, rb, sel
	b.emit(in)
}

// SETP emits Pd = Ra cmp Rb.
func (b *Builder) SETP(pd isa.Pred, a isa.Reg, cmp isa.CmpOp, rb isa.Reg) {
	in := blank(isa.OpSETP)
	in.PDst, in.SrcA, in.Cmp, in.SrcB = pd, a, cmp, rb
	b.emit(in)
}

// SETPI emits Pd = Ra cmp imm.
func (b *Builder) SETPI(pd isa.Pred, a isa.Reg, cmp isa.CmpOp, imm int32) {
	in := blank(isa.OpSETPI)
	in.PDst, in.SrcA, in.Cmp, in.Imm = pd, a, cmp, imm
	b.emit(in)
}

// LDG emits Rd = global[Ra+imm].
func (b *Builder) LDG(d, addr isa.Reg, imm int32) {
	in := blank(isa.OpLDG)
	in.Dst, in.SrcA, in.Imm = d, addr, imm
	b.emit(in)
}

// STG emits global[Ra+imm] = Rb.
func (b *Builder) STG(addr isa.Reg, imm int32, v isa.Reg) {
	in := blank(isa.OpSTG)
	in.SrcA, in.Imm, in.SrcB = addr, imm, v
	b.emit(in)
}

// LDS emits Rd = shared[Ra+imm].
func (b *Builder) LDS(d, addr isa.Reg, imm int32) {
	in := blank(isa.OpLDS)
	in.Dst, in.SrcA, in.Imm = d, addr, imm
	b.emit(in)
}

// STS emits shared[Ra+imm] = Rb.
func (b *Builder) STS(addr isa.Reg, imm int32, v isa.Reg) {
	in := blank(isa.OpSTS)
	in.SrcA, in.Imm, in.SrcB = addr, imm, v
	b.emit(in)
}

// BAR emits a CTA-wide barrier.
func (b *Builder) BAR() { b.emit(blank(isa.OpBAR)) }

// EXIT emits thread termination.
func (b *Builder) EXIT() { b.emit(blank(isa.OpEXIT)) }

// Bra emits an unconditional branch to target. The reconvergence point is
// irrelevant for uniform branches but is set to the target for safety.
func (b *Builder) Bra(target Label) {
	b.braTo(target, target, true)
}

// BraIf emits @P BRA target (or @!P when neg). The reconvergence point is
// the fall-through instruction, which is correct for backward loop
// branches: threads that fall out of the loop wait there.
func (b *Builder) BraIf(p isa.Pred, neg bool, target Label) {
	prev := b.guard
	b.guard = isa.Guard{Pred: p, Neg: neg}
	b.braTo(target, Label(-1), false) // reconv = fallthrough, resolved at Build
	b.guard = prev
}

// BraIfReconv emits a guarded branch with an explicit reconvergence label,
// for forward branches whose post-dominator is not the fall-through.
func (b *Builder) BraIfReconv(p isa.Pred, neg bool, target, reconv Label) {
	prev := b.guard
	b.guard = isa.Guard{Pred: p, Neg: neg}
	b.braTo(target, reconv, true)
	b.guard = prev
}

func (b *Builder) braTo(target, reconv Label, reconvSet bool) {
	in := blank(isa.OpBRA)
	b.patches = append(b.patches, patch{pc: len(b.instrs), target: target, reconv: reconv, reconvIsSet: reconvSet})
	b.emit(in)
}

// If emits a structured single-sided conditional: body executes in lanes
// where p holds (or fails to hold, when neg). The skip branch's target and
// reconvergence point are both the end of the body, so divergent lanes
// simply wait there.
func (b *Builder) If(p isa.Pred, neg bool, body func()) {
	end := b.NewLabel()
	// Skip the body where the condition does NOT hold.
	b.BraIfReconv(p, !neg, end, end)
	body()
	b.Bind(end)
}

// IfElse emits a structured two-sided conditional.
func (b *Builder) IfElse(p isa.Pred, thenBody, elseBody func()) {
	elseL := b.NewLabel()
	end := b.NewLabel()
	b.BraIfReconv(p, true, elseL, end) // @!P -> else
	thenBody()
	b.BraIfReconv(isa.PT, false, end, end)
	b.Bind(elseL)
	elseBody()
	b.Bind(end)
}

// CountedLoop emits a loop running Ra from 0 (exclusive upper bound in
// imm), using counter register ctr and predicate p for the back edge.
// body is emitted once; the trip count is dynamic.
func (b *Builder) CountedLoop(ctr isa.Reg, p isa.Pred, trips int32, body func()) {
	b.MOVI(ctr, 0)
	top := b.Here()
	body()
	b.IADDI(ctr, ctr, 1)
	b.SETPI(p, ctr, isa.CmpLT, trips)
	b.BraIf(p, false, top)
}

// RegCountedLoop is CountedLoop with a register-held bound, so the trip
// count can differ per thread (producing real branch divergence).
func (b *Builder) RegCountedLoop(ctr isa.Reg, p isa.Pred, bound isa.Reg, body func()) {
	b.MOVI(ctr, 0)
	top := b.Here()
	body()
	b.IADDI(ctr, ctr, 1)
	b.SETP(p, ctr, isa.CmpLT, bound)
	b.BraIf(p, false, top)
}

// Build resolves labels, validates every instruction, and returns the
// program.
func (b *Builder) Build() (*Program, error) {
	instrs := make([]isa.Instruction, len(b.instrs))
	copy(instrs, b.instrs)
	for _, p := range b.patches {
		tpc := b.labelPCs[p.target]
		if tpc == -1 {
			return nil, fmt.Errorf("kernel %s: unbound branch target label %d at pc %d", b.name, p.target, p.pc)
		}
		instrs[p.pc].Target = tpc
		if p.reconvIsSet {
			rpc := b.labelPCs[p.reconv]
			if rpc == -1 {
				return nil, fmt.Errorf("kernel %s: unbound reconvergence label %d at pc %d", b.name, p.reconv, p.pc)
			}
			instrs[p.pc].Reconv = rpc
		} else {
			instrs[p.pc].Reconv = p.pc + 1
		}
	}
	prog := &Program{Name: b.name, NumRegs: b.numRegs, Instrs: instrs}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustBuild is Build that panics on error, for static workload definitions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
