// Package kernel defines the program representation executed by the GPU
// simulator and a builder for assembling programs with labels and
// structured control flow. It also provides the static register census the
// compiler-based profiler consumes.
package kernel

import (
	"fmt"
	"strings"

	"pilotrf/internal/isa"
	"pilotrf/internal/stats"
)

// Program is a validated, fully linked kernel binary.
type Program struct {
	Name    string
	NumRegs int // architected registers allocated per thread
	Instrs  []isa.Instruction
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at pc.
func (p *Program) At(pc int) *isa.Instruction { return &p.Instrs[pc] }

// StaticRegCounts returns, for each architected register, the number of
// times it appears in the program text (reads plus writes). This is exactly
// the census the paper's instrumented PTX compiler reports and the
// compiler-based profiler consumes: it is blind to loop trip counts and
// branch behaviour.
func (p *Program) StaticRegCounts() *stats.Histogram {
	h := stats.NewHistogram(p.NumRegs)
	var scratch []isa.Reg
	for i := range p.Instrs {
		in := &p.Instrs[i]
		scratch = in.SrcRegs(scratch[:0])
		for _, r := range scratch {
			h.Inc(int(r))
		}
		if d, ok := in.DstReg(); ok {
			h.Inc(int(d))
		}
	}
	return h
}

// Disassemble returns a human-readable listing of the program.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %d instructions, %d registers/thread\n", p.Name, len(p.Instrs), p.NumRegs)
	for pc := range p.Instrs {
		fmt.Fprintf(&b, "%4d: %s\n", pc, p.Instrs[pc].String())
	}
	return b.String()
}

// Validate re-checks every instruction against the program bounds and the
// register budget. Build already guarantees this; Validate exists for
// programs constructed or mutated by hand.
func (p *Program) Validate() error {
	if p.NumRegs <= 0 || p.NumRegs > isa.MaxRegs {
		return fmt.Errorf("kernel %s: %d registers/thread outside (0,%d]", p.Name, p.NumRegs, isa.MaxRegs)
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("kernel %s: empty program", p.Name)
	}
	var scratch []isa.Reg
	hasExit := false
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if err := in.Validate(len(p.Instrs)); err != nil {
			return fmt.Errorf("kernel %s pc %d: %w", p.Name, pc, err)
		}
		scratch = in.SrcRegs(scratch[:0])
		for _, r := range scratch {
			if int(r) >= p.NumRegs {
				return fmt.Errorf("kernel %s pc %d: source %s exceeds register budget %d", p.Name, pc, r, p.NumRegs)
			}
		}
		if d, ok := in.DstReg(); ok && int(d) >= p.NumRegs {
			return fmt.Errorf("kernel %s pc %d: destination %s exceeds register budget %d", p.Name, pc, d, p.NumRegs)
		}
		if in.Op == isa.OpEXIT {
			hasExit = true
		}
	}
	if !hasExit {
		return fmt.Errorf("kernel %s: program has no EXIT", p.Name)
	}
	return nil
}

// Kernel couples a program with its launch geometry.
type Kernel struct {
	Prog          *Program
	ThreadsPerCTA int
	NumCTAs       int
}

// Validate checks the launch geometry.
func (k *Kernel) Validate() error {
	if err := k.Prog.Validate(); err != nil {
		return err
	}
	if k.ThreadsPerCTA <= 0 || k.ThreadsPerCTA > 1024 {
		return fmt.Errorf("kernel %s: %d threads/CTA outside (0,1024]", k.Prog.Name, k.ThreadsPerCTA)
	}
	if k.NumCTAs <= 0 {
		return fmt.Errorf("kernel %s: %d CTAs", k.Prog.Name, k.NumCTAs)
	}
	return nil
}

// TotalThreads returns the number of threads launched by the kernel.
func (k *Kernel) TotalThreads() int { return k.ThreadsPerCTA * k.NumCTAs }

// WarpsPerCTA returns the number of 32-thread warps per CTA (rounded up).
func (k *Kernel) WarpsPerCTA() int { return (k.ThreadsPerCTA + 31) / 32 }
