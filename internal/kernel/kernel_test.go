package kernel

import (
	"strings"
	"testing"

	"pilotrf/internal/isa"
)

// simpleProgram builds: R0=tid; loop 4x {R1 = R1 + R0}; store; exit.
func simpleProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("simple", 8)
	b.S2R(isa.R(0), isa.SRTid)
	b.MOVI(isa.R(1), 0)
	b.CountedLoop(isa.R(2), isa.P(0), 4, func() {
		b.IADD(isa.R(1), isa.R(1), isa.R(0))
	})
	b.STG(isa.R(0), 0, isa.R(1))
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderBuildsValidProgram(t *testing.T) {
	p := simpleProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Len() == 0 {
		t.Fatal("empty program")
	}
}

func TestLoopBackEdgeResolution(t *testing.T) {
	p := simpleProgram(t)
	// Find the BRA; its target must point at the loop body start (the
	// IADD), i.e. backwards, and reconv must be the fall-through.
	for pc := range p.Instrs {
		in := p.At(pc)
		if in.Op == isa.OpBRA {
			if in.Target >= pc {
				t.Errorf("loop branch at %d targets %d, want backward", pc, in.Target)
			}
			if in.Reconv != pc+1 {
				t.Errorf("loop branch reconv = %d, want %d", in.Reconv, pc+1)
			}
			return
		}
	}
	t.Fatal("no branch found")
}

func TestIfEmitsSkipBranch(t *testing.T) {
	b := NewBuilder("ifk", 4)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpGT, 5)
	b.If(isa.P(0), false, func() {
		b.IADDI(isa.R(1), isa.R(1), 1)
	})
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bra := p.At(1)
	if bra.Op != isa.OpBRA {
		t.Fatalf("instr 1 = %v, want BRA", bra.Op)
	}
	if !bra.Guard.Neg || bra.Guard.Pred != isa.P(0) {
		t.Errorf("skip branch guard = %v, want @!P0", bra.Guard)
	}
	if bra.Target != 3 || bra.Reconv != 3 {
		t.Errorf("skip branch target/reconv = %d/%d, want 3/3", bra.Target, bra.Reconv)
	}
}

func TestIfElseShape(t *testing.T) {
	b := NewBuilder("ifelse", 4)
	b.SETPI(isa.P(1), isa.R(0), isa.CmpLT, 0)
	b.IfElse(isa.P(1),
		func() { b.MOVI(isa.R(1), 1) },
		func() { b.MOVI(isa.R(1), 2) },
	)
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Layout: 0 SETPI, 1 @!P1 BRA else, 2 MOVI(then), 3 BRA end, 4 MOVI(else), 5 EXIT.
	if p.At(1).Target != 4 {
		t.Errorf("else branch target = %d, want 4", p.At(1).Target)
	}
	if p.At(1).Reconv != 5 {
		t.Errorf("else branch reconv = %d, want 5", p.At(1).Reconv)
	}
	if p.At(3).Target != 5 {
		t.Errorf("then exit branch target = %d, want 5", p.At(3).Target)
	}
}

func TestUnboundLabelFails(t *testing.T) {
	b := NewBuilder("bad", 4)
	l := b.NewLabel()
	b.Bra(l)
	b.EXIT()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with unbound label")
	}
}

func TestDoubleBindPanics(t *testing.T) {
	b := NewBuilder("bad", 4)
	l := b.NewLabel()
	b.Bind(l)
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind did not panic")
		}
	}()
	b.Bind(l)
}

func TestRegisterBudgetEnforced(t *testing.T) {
	b := NewBuilder("overbudget", 3)
	b.MOVI(isa.R(5), 1) // R5 with budget 3
	b.EXIT()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted register beyond budget")
	}
}

func TestMissingExitRejected(t *testing.T) {
	b := NewBuilder("noexit", 3)
	b.MOVI(isa.R(0), 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted program without EXIT")
	}
}

func TestStaticRegCounts(t *testing.T) {
	b := NewBuilder("census", 8)
	b.MOVI(isa.R(0), 1)                  // R0 x1
	b.IADD(isa.R(1), isa.R(0), isa.R(0)) // R1 x1, R0 x2
	b.STG(isa.R(1), 0, isa.R(0))         // R1 x1, R0 x1
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	h := p.StaticRegCounts()
	if got := h.Count(0); got != 4 {
		t.Errorf("R0 static count = %d, want 4", got)
	}
	if got := h.Count(1); got != 2 {
		t.Errorf("R1 static count = %d, want 2", got)
	}
	if got := h.Total(); got != 6 {
		t.Errorf("total static count = %d, want 6", got)
	}
}

func TestGuardedEmitsGuards(t *testing.T) {
	b := NewBuilder("guarded", 4)
	b.Guarded(isa.P(2), true, func() {
		b.MOVI(isa.R(0), 7)
	})
	b.MOVI(isa.R(1), 8)
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g := p.At(0).Guard; g.Pred != isa.P(2) || !g.Neg {
		t.Errorf("guarded instr guard = %v, want @!P2", g)
	}
	if g := p.At(1).Guard; g != isa.GuardAlways {
		t.Errorf("instr after Guarded = %v, want always", g)
	}
}

func TestDisassembleMentionsEveryPC(t *testing.T) {
	p := simpleProgram(t)
	dis := p.Disassemble()
	if !strings.Contains(dis, "simple") {
		t.Error("disassembly missing program name")
	}
	lines := strings.Count(dis, "\n")
	if lines != p.Len()+1 {
		t.Errorf("disassembly has %d lines, want %d", lines, p.Len()+1)
	}
}

func TestKernelGeometry(t *testing.T) {
	k := &Kernel{Prog: simpleProgram(t), ThreadsPerCTA: 256, NumCTAs: 10}
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := k.TotalThreads(); got != 2560 {
		t.Errorf("TotalThreads = %d, want 2560", got)
	}
	if got := k.WarpsPerCTA(); got != 8 {
		t.Errorf("WarpsPerCTA = %d, want 8", got)
	}
	k2 := &Kernel{Prog: simpleProgram(t), ThreadsPerCTA: 61, NumCTAs: 1}
	if got := k2.WarpsPerCTA(); got != 2 {
		t.Errorf("WarpsPerCTA(61) = %d, want 2", got)
	}
}

func TestKernelValidateRejectsBadGeometry(t *testing.T) {
	p := simpleProgram(t)
	for _, k := range []*Kernel{
		{Prog: p, ThreadsPerCTA: 0, NumCTAs: 1},
		{Prog: p, ThreadsPerCTA: 2048, NumCTAs: 1},
		{Prog: p, ThreadsPerCTA: 32, NumCTAs: 0},
	} {
		if err := k.Validate(); err == nil {
			t.Errorf("Validate accepted geometry %d/%d", k.ThreadsPerCTA, k.NumCTAs)
		}
	}
}

func TestRegCountedLoop(t *testing.T) {
	b := NewBuilder("regloop", 8)
	b.S2R(isa.R(0), isa.SRTid)
	b.RegCountedLoop(isa.R(1), isa.P(0), isa.R(0), func() {
		b.IADDI(isa.R(2), isa.R(2), 1)
	})
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The back edge must use a register compare (SETP not SETPI).
	foundSETP := false
	for pc := range p.Instrs {
		if p.At(pc).Op == isa.OpSETP {
			foundSETP = true
		}
	}
	if !foundSETP {
		t.Error("RegCountedLoop did not emit SETP")
	}
}
