package profile

import (
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/regfile"
)

// loopProgram builds a kernel where R5 and R6 dominate dynamic accesses
// (inside a loop) while R0 and R1 dominate the static text.
func loopProgram(t *testing.T) *kernel.Program {
	t.Helper()
	b := kernel.NewBuilder("prof", 8)
	// Static-heavy prologue: R0, R1 appear often in code.
	for i := 0; i < 6; i++ {
		b.IADD(isa.R(0), isa.R(0), isa.R(1))
	}
	// Dynamic-heavy loop: R5, R6 appear in few instructions but run 50x.
	b.CountedLoop(isa.R(7), isa.P(0), 50, func() {
		b.IADD(isa.R(5), isa.R(5), isa.R(6))
	})
	b.EXIT()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestCompilerTopNReflectsStaticText(t *testing.T) {
	p := loopProgram(t)
	top := CompilerTopN(p, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// R0 appears 12 times statically (6 x (dst+src)), more than any
	// loop register.
	if top[0] != isa.R(0) {
		t.Errorf("compiler top register = %s, want R0", top[0])
	}
}

func TestCountersPilotFiltering(t *testing.T) {
	c := NewCounters()
	c.StartKernel(3)
	c.OnAccess(3, isa.R(5)) // pilot
	c.OnAccess(4, isa.R(5)) // not pilot
	c.OnAccess(3, isa.R(6))
	if got := c.Count(isa.R(5)); got != 1 {
		t.Errorf("R5 count = %d, want 1 (non-pilot access leaked in)", got)
	}
	if got := c.Count(isa.R(6)); got != 1 {
		t.Errorf("R6 count = %d, want 1", got)
	}
}

func TestCountersMaskGatesRecording(t *testing.T) {
	c := NewCounters()
	// Before StartKernel the mask is clear.
	c.OnAccess(0, isa.R(1))
	if got := c.Count(isa.R(1)); got != 0 {
		t.Errorf("count before arm = %d", got)
	}
	c.StartKernel(0)
	c.OnAccess(0, isa.R(1))
	c.PilotExited()
	c.OnAccess(0, isa.R(1)) // after pilot exit: ignored
	if got := c.Count(isa.R(1)); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	if c.Active() {
		t.Error("counters still active after pilot exit")
	}
	if c.PilotWarp() != -1 {
		t.Error("PilotWarp should report -1 when idle")
	}
}

func TestCountersSaturate(t *testing.T) {
	c := NewCounters()
	c.StartKernel(0)
	for i := 0; i < 70000; i++ {
		c.OnAccess(0, isa.R(2))
	}
	if got := c.Count(isa.R(2)); got != 65535 {
		t.Errorf("count = %d, want saturation at 65535", got)
	}
}

func TestCountersRearmClearsCounts(t *testing.T) {
	c := NewCounters()
	c.StartKernel(0)
	c.OnAccess(0, isa.R(1))
	c.PilotExited()
	c.StartKernel(5)
	if got := c.Count(isa.R(1)); got != 0 {
		t.Errorf("stale count survived re-arm: %d", got)
	}
	if c.PilotWarp() != 5 {
		t.Errorf("PilotWarp = %d, want 5", c.PilotWarp())
	}
}

func TestCountersTopN(t *testing.T) {
	c := NewCounters()
	c.StartKernel(0)
	for i := 0; i < 10; i++ {
		c.OnAccess(0, isa.R(7))
	}
	for i := 0; i < 5; i++ {
		c.OnAccess(0, isa.R(3))
	}
	c.OnAccess(0, isa.R(1))
	c.PilotExited()
	top := c.TopN(2)
	if len(top) != 2 || top[0] != isa.R(7) || top[1] != isa.R(3) {
		t.Errorf("TopN = %v, want [R7 R3]", top)
	}
}

func TestCountersStartKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCounters().StartKernel(-1)
}

func newController(t *testing.T, tech Technique) (*Controller, *regfile.SwapTable) {
	t.Helper()
	st, err := regfile.NewSwapTable(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(tech, 4, 4, st)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func TestControllerCompilerSeedsAtLaunch(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniqueCompiler)
	c.KernelLaunch(p, 0)
	// R0 and R1 are already FRF residents; the compiler's other picks
	// get promoted. Key property: compiler top regs all route to FRF.
	for _, r := range CompilerTopN(p, 4) {
		if int(st.Lookup(r)) >= 4 {
			t.Errorf("compiler top register %s not in FRF", r)
		}
	}
}

func TestControllerPilotIdentityUntilDone(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniquePilot)
	c.KernelLaunch(p, 2)
	// Identity before the pilot completes.
	if got := st.Lookup(isa.R(5)); got != isa.R(5) {
		t.Errorf("pre-pilot mapping moved R5 to %s", got)
	}
	// Simulate the pilot's dynamic accesses: R5/R6 dominate.
	for i := 0; i < 100; i++ {
		c.OnRegAccess(2, isa.R(5))
		c.OnRegAccess(2, isa.R(6))
	}
	c.OnRegAccess(2, isa.R(0))
	c.OnWarpComplete(1) // not the pilot: no effect
	if c.PilotDone() {
		t.Fatal("non-pilot completion marked pilot done")
	}
	c.OnWarpComplete(2)
	if !c.PilotDone() {
		t.Fatal("pilot completion not detected")
	}
	if int(st.Lookup(isa.R(5))) >= 4 || int(st.Lookup(isa.R(6))) >= 4 {
		t.Error("pilot top registers not promoted to FRF")
	}
}

func TestControllerHybridSeedsThenReplaces(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniqueHybrid)
	c.KernelLaunch(p, 0)
	// Seeded with the compiler profile at launch.
	for _, r := range CompilerTopN(p, 4) {
		if int(st.Lookup(r)) >= 4 {
			t.Errorf("hybrid seed missing compiler register %s", r)
		}
	}
	// The pilot finds R5/R6 hot.
	for i := 0; i < 100; i++ {
		c.OnRegAccess(0, isa.R(5))
		c.OnRegAccess(0, isa.R(6))
	}
	c.OnWarpComplete(0)
	if int(st.Lookup(isa.R(5))) >= 4 {
		t.Error("hybrid did not adopt pilot result")
	}
}

func TestControllerOracle(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniqueOracle)
	c.SetOracle([]isa.Reg{isa.R(5), isa.R(6), isa.R(7), isa.R(0)})
	c.KernelLaunch(p, 0)
	for _, r := range []isa.Reg{isa.R(5), isa.R(6), isa.R(7), isa.R(0)} {
		if int(st.Lookup(r)) >= 4 {
			t.Errorf("oracle register %s not in FRF", r)
		}
	}
}

func TestControllerOracleWithoutSetPanics(t *testing.T) {
	p := loopProgram(t)
	c, _ := newController(t, TechniqueOracle)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.KernelLaunch(p, 0)
}

func TestControllerStaticFirstNIsIdentity(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniqueStaticFirstN)
	c.KernelLaunch(p, 0)
	for r := 0; r < 8; r++ {
		if got := st.Lookup(isa.R(r)); got != isa.R(r) {
			t.Errorf("static-first-n moved R%d to %s", r, got)
		}
	}
	// Completing any warp changes nothing.
	c.OnWarpComplete(0)
	if c.PilotDone() {
		t.Error("static technique claims a pilot completed")
	}
}

func TestControllerSecondPilotCompletionIgnored(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniquePilot)
	c.KernelLaunch(p, 0)
	for i := 0; i < 10; i++ {
		c.OnRegAccess(0, isa.R(5))
	}
	c.OnWarpComplete(0)
	want := st.Lookup(isa.R(5))
	// Late accesses and duplicate completions must not disturb the map.
	c.OnRegAccess(0, isa.R(9))
	c.OnWarpComplete(0)
	if got := st.Lookup(isa.R(5)); got != want {
		t.Error("duplicate pilot completion changed the mapping")
	}
}

func TestControllerRelaunchResets(t *testing.T) {
	p := loopProgram(t)
	c, st := newController(t, TechniquePilot)
	c.KernelLaunch(p, 0)
	for i := 0; i < 10; i++ {
		c.OnRegAccess(0, isa.R(9))
	}
	c.OnWarpComplete(0)
	if int(st.Lookup(isa.R(9))) >= 4 {
		t.Fatal("setup failed")
	}
	// Second kernel: mapping resets, counters re-arm with a new pilot.
	c.KernelLaunch(p, 7)
	if got := st.Lookup(isa.R(9)); got != isa.R(9) {
		t.Errorf("relaunch kept stale mapping for R9 -> %s", got)
	}
	if c.PilotDone() {
		t.Error("relaunch kept pilotDone")
	}
	if c.Counters().PilotWarp() != 7 {
		t.Errorf("pilot warp = %d, want 7", c.Counters().PilotWarp())
	}
}

func TestNewControllerErrors(t *testing.T) {
	st, err := regfile.NewSwapTable(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ topN, frf int }{{0, 4}, {5, 4}, {-1, 4}} {
		if _, err := NewController(TechniquePilot, tc.topN, tc.frf, st); err == nil {
			t.Errorf("topN=%d frf=%d did not error", tc.topN, tc.frf)
		}
	}
}

func TestTechniqueStrings(t *testing.T) {
	want := map[Technique]string{
		TechniqueStaticFirstN: "static-first-n",
		TechniqueCompiler:     "compiler",
		TechniquePilot:        "pilot",
		TechniqueHybrid:       "hybrid",
		TechniqueOracle:       "optimal",
	}
	for tech, name := range want {
		if tech.String() != name {
			t.Errorf("%d.String() = %q, want %q", tech, tech.String(), name)
		}
	}
}
