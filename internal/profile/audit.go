package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"pilotrf/internal/isa"
)

// PlacementReason explains why a register is resident in the FRF at the
// moment a swapping-table configuration lands.
type PlacementReason uint8

// Placement reasons, in lifecycle order.
const (
	// PlaceStaticDefault marks an identity-mapped resident: the register
	// sits in the FRF only because its number is below the FRF size (no
	// profiling evidence placed it).
	PlaceStaticDefault PlacementReason = iota
	// PlaceCompilerSeed marks a register promoted at kernel launch by
	// the compiler's static census (TechniqueCompiler and the seed phase
	// of TechniqueHybrid).
	PlaceCompilerSeed
	// PlacePilotMeasured marks a register kept or promoted by the pilot
	// warp's measured counts when the pilot completed.
	PlacePilotMeasured
	// PlaceHybridReplacement marks a hybrid-technique register that the
	// pilot result newly promoted, displacing a compiler-seeded or
	// default resident — the replacements that make hybrid beat the pure
	// compiler profile in Figure 4.
	PlaceHybridReplacement
	// PlaceOracle marks a register installed from a measured prior run
	// (TechniqueOracle).
	PlaceOracle
)

// String returns the reason name used in the audit log exports.
func (r PlacementReason) String() string {
	switch r {
	case PlaceStaticDefault:
		return "static-default"
	case PlaceCompilerSeed:
		return "compiler-seed"
	case PlacePilotMeasured:
		return "pilot-measured"
	case PlaceHybridReplacement:
		return "hybrid-replacement"
	case PlaceOracle:
		return "oracle"
	default:
		return fmt.Sprintf("REASON_%d", uint8(r))
	}
}

// PlacementEvent records one FRF residency decision: which register was
// resident after a swapping-table (re)configuration, which technique and
// reason put it there, at what cycle, and with what access-count
// evidence.
type PlacementEvent struct {
	// Kernel is the program name the decision belongs to.
	Kernel string
	// SM is the deciding SM's id.
	SM int
	// Cycle is the kernel-local cycle of the configuration (0 for the
	// launch-time seed).
	Cycle int64
	// Technique is the configured profiling technique.
	Technique Technique
	// Reason explains this register's residency.
	Reason PlacementReason
	// Reg is the resident architectural register.
	Reg isa.Reg
	// Slot is the physical FRF slot the register occupies.
	Slot isa.Reg
	// Count is the access-count evidence behind the decision: the static
	// census count for compiler placements, the pilot counter value for
	// pilot placements, 0 when the placement is positional.
	Count uint64
}

// AuditLog accumulates placement events across SMs and kernels — the
// swap-decision audit trail. Appends are serialized internally; they
// happen only at kernel launch and pilot completion, never on the
// per-access path.
type AuditLog struct {
	mu     sync.Mutex
	events []PlacementEvent
}

// Record appends one placement event.
func (l *AuditLog) Record(e PlacementEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Events returns a copy of the recorded events in arrival order.
func (l *AuditLog) Events() []PlacementEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]PlacementEvent(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// CountReason returns how many recorded events carry the given reason.
func (l *AuditLog) CountReason(r PlacementReason) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.events {
		if l.events[i].Reason == r {
			n++
		}
	}
	return n
}

// AuditSchema tags the audit-log exports (WriteCSV and WriteJSON).
const AuditSchema = "pilotrf-swap-audit/v1"

// auditCSVColumns is the WriteCSV header.
var auditCSVColumns = []string{
	"kernel", "sm", "cycle", "technique", "reason", "reg", "slot", "count",
}

// WriteCSV dumps the audit trail as CSV: a "# schema:" comment, a
// header, then one line per placement event.
func (l *AuditLog) WriteCSV(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := []byte("# schema: " + AuditSchema + "\n")
	for i, c := range auditCSVColumns {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, c...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i := range l.events {
		e := &l.events[i]
		buf = buf[:0]
		buf = append(buf, e.Kernel...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.SM), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, e.Cycle, 10)
		buf = append(buf, ',')
		buf = append(buf, e.Technique.String()...)
		buf = append(buf, ',')
		buf = append(buf, e.Reason.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Reg), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Slot), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.Count, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// auditEventJSON is the wire shape of one WriteJSON event.
type auditEventJSON struct {
	Kernel    string `json:"kernel"`
	SM        int    `json:"sm"`
	Cycle     int64  `json:"cycle"`
	Technique string `json:"technique"`
	Reason    string `json:"reason"`
	Reg       int    `json:"reg"`
	Slot      int    `json:"slot"`
	Count     uint64 `json:"count"`
}

// auditJSON is the WriteJSON document: the schema tag plus the events.
type auditJSON struct {
	Schema string           `json:"schema"`
	Events []auditEventJSON `json:"events"`
}

// WriteJSON dumps the audit trail as a self-describing JSON document
// ({"schema": ..., "events": [...]}).
func (l *AuditLog) WriteJSON(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := auditJSON{Schema: AuditSchema, Events: make([]auditEventJSON, len(l.events))}
	for i := range l.events {
		e := &l.events[i]
		out.Events[i] = auditEventJSON{
			Kernel: e.Kernel, SM: e.SM, Cycle: e.Cycle,
			Technique: e.Technique.String(), Reason: e.Reason.String(),
			Reg: int(e.Reg), Slot: int(e.Slot), Count: e.Count,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
