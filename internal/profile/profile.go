// Package profile implements the three register-profiling techniques the
// paper evaluates — compiler-based, pilot-warp, and hybrid — plus the
// static-first-N and oracle reference points, and the per-SM hardware
// model that supports them: 63 two-byte saturating access counters, the
// pilot-warp-id register, and the profile mask bit (Section III-B).
package profile

import (
	"fmt"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/regfile"
	"pilotrf/internal/stats"
)

// Technique selects how the highly accessed register set is identified.
type Technique uint8

// Profiling techniques.
const (
	// TechniqueStaticFirstN performs no profiling: the first n
	// architected registers stay in the FRF. The paper's strawman.
	TechniqueStaticFirstN Technique = iota
	// TechniqueCompiler uses the static register census from the
	// kernel binary, available from cycle zero.
	TechniqueCompiler
	// TechniquePilot uses the pilot warp's dynamic counts, available
	// only after the pilot completes.
	TechniquePilot
	// TechniqueHybrid seeds the mapping with the compiler census and
	// replaces it with the pilot result when the pilot completes. The
	// paper's preferred design.
	TechniqueHybrid
	// TechniqueOracle installs the true top-N registers (measured by a
	// full prior run) from cycle zero. The upper bound in Figure 4.
	TechniqueOracle
)

// String returns the technique name used in Figure 4.
func (t Technique) String() string {
	switch t {
	case TechniqueStaticFirstN:
		return "static-first-n"
	case TechniqueCompiler:
		return "compiler"
	case TechniquePilot:
		return "pilot"
	case TechniqueHybrid:
		return "hybrid"
	case TechniqueOracle:
		return "optimal"
	default:
		return fmt.Sprintf("TECH_%d", uint8(t))
	}
}

// CompilerTopN returns the n registers appearing most often in the kernel
// binary — the instrumented-compiler profile.
func CompilerTopN(p *kernel.Program, n int) []isa.Reg {
	return topRegs(p.StaticRegCounts(), n)
}

func topRegs(h *stats.Histogram, n int) []isa.Reg {
	kvs := h.TopN(n)
	out := make([]isa.Reg, len(kvs))
	for i, kv := range kvs {
		out[i] = isa.Reg(kv.Key)
	}
	return out
}

// Counters is the per-SM profiling hardware: 63 two-byte saturating
// counters indexed by register number, a pilot-warp-id register, and the
// profile mask bit. The mask is set at kernel launch and cleared when the
// pilot warp terminates.
type Counters struct {
	counts    [isa.MaxRegs]uint16
	pilotWarp int
	mask      bool
}

// NewCounters returns idle profiling hardware.
func NewCounters() *Counters { return &Counters{pilotWarp: -1} }

// StartKernel arms the counters for a new kernel with the given pilot
// warp (an SM-local warp slot id).
func (c *Counters) StartKernel(pilotWarp int) {
	if pilotWarp < 0 {
		panic(fmt.Sprintf("profile: pilot warp %d", pilotWarp))
	}
	c.counts = [isa.MaxRegs]uint16{}
	c.pilotWarp = pilotWarp
	c.mask = true
}

// Active reports whether the profiling phase is in progress.
func (c *Counters) Active() bool { return c.mask }

// PilotWarp returns the armed pilot warp id (-1 when idle).
func (c *Counters) PilotWarp() int {
	if !c.mask {
		return -1
	}
	return c.pilotWarp
}

// OnAccess records a register access by a warp. As in hardware, the mask
// bit is checked first and then the warp id is compared against the
// pilot-warp-id register; counters saturate at 65535.
func (c *Counters) OnAccess(warp int, r isa.Reg) {
	if !c.mask || warp != c.pilotWarp || !r.Valid() {
		return
	}
	if c.counts[r] != ^uint16(0) {
		c.counts[r]++
	}
}

// PilotExited clears the mask bit; the counters hold their final values
// for sorting.
func (c *Counters) PilotExited() { c.mask = false }

// TopN sorts the counter values and returns the n most-accessed
// registers (the paper performs this sort with the GPU's SHFL support).
func (c *Counters) TopN(n int) []isa.Reg {
	h := stats.NewHistogram(isa.MaxRegs)
	for r, v := range c.counts {
		h.Add(r, uint64(v))
	}
	return topRegs(h, n)
}

// Count returns the recorded access count for register r.
func (c *Counters) Count(r isa.Reg) uint16 {
	if !r.Valid() {
		return 0
	}
	return c.counts[r]
}

// Controller drives one SM's swapping table through the kernel lifecycle
// for a chosen technique: seed at launch, re-map when the pilot finishes.
type Controller struct {
	Technique Technique
	TopN      int
	FRFRegs   int

	// SM identifies the owning SM in audit events.
	SM int
	// Audit, when non-nil, receives one PlacementEvent per FRF-resident
	// register at every swapping-table (re)configuration — the
	// swap-decision audit trail. Nil disables auditing with no overhead.
	Audit *AuditLog
	// Now supplies the current cycle for audit timestamps (nil stamps
	// cycle 0).
	Now func() int64

	mapper   regfile.Mapper
	counters *Counters

	kernel    *kernel.Program
	oracle    []isa.Reg
	pilotDone bool
}

// NewController returns a controller managing the given mapper. For
// TechniqueOracle the caller must provide the measured top registers via
// SetOracle before the kernel launches.
func NewController(tech Technique, topN, frfRegs int, mapper regfile.Mapper) (*Controller, error) {
	if topN <= 0 || topN > frfRegs {
		return nil, fmt.Errorf("profile: topN %d outside (0,%d]", topN, frfRegs)
	}
	return &Controller{
		Technique: tech,
		TopN:      topN,
		FRFRegs:   frfRegs,
		mapper:    mapper,
		counters:  NewCounters(),
	}, nil
}

// SetOracle provides the true top registers for TechniqueOracle.
func (c *Controller) SetOracle(top []isa.Reg) { c.oracle = top }

// Counters exposes the profiling hardware (for tests and statistics).
func (c *Controller) Counters() *Counters { return c.counters }

// PilotDone reports whether the pilot warp has completed.
func (c *Controller) PilotDone() bool { return c.pilotDone }

// KernelLaunch configures the initial mapping and arms the pilot
// counters. pilotWarp is the SM-local slot of the first launched warp.
func (c *Controller) KernelLaunch(p *kernel.Program, pilotWarp int) {
	c.pilotDone = false
	c.kernel = p
	c.mapper.Reset()
	var promoted map[isa.Reg]bool
	switch c.Technique {
	case TechniqueStaticFirstN:
		// Identity mapping: R0..R(n-1) stay in the FRF.
	case TechniqueCompiler, TechniqueHybrid:
		top := CompilerTopN(p, c.TopN)
		c.mapper.Configure(top, c.FRFRegs)
		promoted = regSet(top, c.Audit != nil)
	case TechniquePilot:
		// Identity until the pilot reports.
	case TechniqueOracle:
		if c.oracle == nil {
			panic("profile: oracle technique without SetOracle")
		}
		top := c.oracle
		if len(top) > c.TopN {
			top = top[:c.TopN]
		}
		c.mapper.Configure(top, c.FRFRegs)
		promoted = regSet(top, c.Audit != nil)
	}
	if c.Audit != nil {
		census := p.StaticRegCounts()
		c.auditConfiguration(func(r isa.Reg) (PlacementReason, uint64) {
			switch {
			case promoted[r] && c.Technique == TechniqueOracle:
				return PlaceOracle, census.Count(int(r))
			case promoted[r]:
				return PlaceCompilerSeed, census.Count(int(r))
			default:
				return PlaceStaticDefault, 0
			}
		})
	}
	if c.usesPilot() {
		c.counters.StartKernel(pilotWarp)
	}
}

// regSet builds a membership set when enabled (auditing off skips the
// allocation entirely).
func regSet(regs []isa.Reg, enabled bool) map[isa.Reg]bool {
	if !enabled {
		return nil
	}
	set := make(map[isa.Reg]bool, len(regs))
	for _, r := range regs {
		set[r] = true
	}
	return set
}

// residents collects the architected registers currently mapped into the
// FRF for the resident kernel.
func (c *Controller) residents() map[isa.Reg]bool {
	set := make(map[isa.Reg]bool, c.FRFRegs)
	for a := 0; a < c.kernel.NumRegs; a++ {
		r := isa.Reg(a)
		if int(c.mapper.Lookup(r)) < c.FRFRegs {
			set[r] = true
		}
	}
	return set
}

// auditConfiguration records one PlacementEvent per FRF-resident
// register, asking reasonFor to explain each residency.
func (c *Controller) auditConfiguration(reasonFor func(r isa.Reg) (PlacementReason, uint64)) {
	var now int64
	if c.Now != nil {
		now = c.Now()
	}
	for a := 0; a < c.kernel.NumRegs; a++ {
		r := isa.Reg(a)
		slot := c.mapper.Lookup(r)
		if int(slot) >= c.FRFRegs {
			continue
		}
		reason, count := reasonFor(r)
		c.Audit.Record(PlacementEvent{
			Kernel: c.kernel.Name, SM: c.SM, Cycle: now,
			Technique: c.Technique, Reason: reason,
			Reg: r, Slot: slot, Count: count,
		})
	}
}

func (c *Controller) usesPilot() bool {
	return c.Technique == TechniquePilot || c.Technique == TechniqueHybrid
}

// OnRegAccess feeds the profiling counters. The check order mirrors the
// hardware: mask bit, then warp id.
func (c *Controller) OnRegAccess(warp int, r isa.Reg) {
	if c.usesPilot() {
		c.counters.OnAccess(warp, r)
	}
}

// OnWarpComplete must be called when a warp finishes all its threads. If
// it is the pilot, the counters are sorted and the swapping table is
// reconfigured (the mapping is first reset to the default layout, then
// the pilot's top registers are applied — the paper's simplification).
func (c *Controller) OnWarpComplete(warp int) {
	if !c.usesPilot() || c.pilotDone || warp != c.counters.PilotWarp() {
		return
	}
	c.counters.PilotExited()
	c.pilotDone = true
	var prev map[isa.Reg]bool
	if c.Audit != nil {
		prev = c.residents()
	}
	c.mapper.Configure(c.counters.TopN(c.TopN), c.FRFRegs)
	if c.Audit != nil {
		c.auditConfiguration(func(r isa.Reg) (PlacementReason, uint64) {
			reason := PlacePilotMeasured
			if c.Technique == TechniqueHybrid && !prev[r] {
				// The pilot displaced a compiler-seeded or default
				// resident — the hybrid replacement Figure 4 credits.
				reason = PlaceHybridReplacement
			}
			return reason, uint64(c.counters.Count(r))
		})
	}
}
