package fleet

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
)

// httpBackend is a jobs.Backend over the coordinator's
// /v1/fleet/cache/{key} endpoints, so every worker shares one
// content-addressed store: a golden snapshot computed by any worker is
// a hit for all of them, and a restarted worker resumes warm.
//
// Reads re-verify envelope integrity (jobs.ValidateEnvelope) before
// handing bytes to the Cache — a truncated or tampered response over
// the wire degrades to a miss, never a crash. Writes are best-effort by
// contract: after the retry budget they are dropped and counted
// (fleet_cache_put_dropped), because the coordinator persists arriving
// results itself and a transient coordinator outage must not fail the
// worker's cell.
type httpBackend struct {
	base   string // coordinator base URL, no trailing slash
	client *http.Client
	retry  Policy
	log    *slog.Logger

	cGets    *telemetry.Counter
	cHits    *telemetry.Counter
	cCorrupt *telemetry.Counter
	cPuts    *telemetry.Counter
	cDropped *telemetry.Counter
	cRetries *telemetry.Counter
}

// RemoteCacheConfig configures NewRemoteCache.
type RemoteCacheConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Client issues the requests; nil selects http.DefaultClient.
	Client *http.Client
	// Retry is the transport retry policy (shared Backoff helper).
	Retry Policy
	// Reg receives the round-trip counters; nil disables them.
	Reg *telemetry.Registry
	// Log receives structured records; nil discards.
	Log *slog.Logger
}

// NewRemoteCache returns a jobs.Cache whose storage is the
// coordinator's remote envelope store.
func NewRemoteCache(cfg RemoteCacheConfig) (*jobs.Cache, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: remote cache without coordinator URL")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Reg == nil {
		cfg.Reg = telemetry.NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	be := &httpBackend{
		base:     trimSlash(cfg.Coordinator),
		client:   cfg.Client,
		retry:    cfg.Retry,
		log:      cfg.Log,
		cGets:    cfg.Reg.Counter("fleet_cache_gets"),
		cHits:    cfg.Reg.Counter("fleet_cache_hits"),
		cCorrupt: cfg.Reg.Counter("fleet_cache_corrupt"),
		cPuts:    cfg.Reg.Counter("fleet_cache_puts"),
		cDropped: cfg.Reg.Counter("fleet_cache_put_dropped"),
		cRetries: cfg.Reg.Counter("fleet_cache_retries"),
	}
	return jobs.NewCache(be)
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func (b *httpBackend) url(hexKey string) string {
	return b.base + "/v1/fleet/cache/" + hexKey
}

// Load implements jobs.Backend. A 404 is an immediate miss (no retry —
// absence is an answer); transport errors and 5xx retry under the
// policy and then report a miss. The envelope is integrity-verified
// before it is returned.
func (b *httpBackend) Load(hexKey string) ([]byte, error) {
	if !jobs.ValidHexKey(hexKey) {
		return nil, fmt.Errorf("fleet: bad cache key %q", hexKey)
	}
	b.cGets.Inc()
	bo := b.retry.Start()
	for {
		buf, retryable, err := b.loadOnce(hexKey)
		if err == nil {
			b.cHits.Inc()
			return buf, nil
		}
		if !retryable {
			return nil, err
		}
		d, ok := bo.Next()
		if !ok {
			return nil, fmt.Errorf("fleet: cache get %s: retry budget exhausted: %w", hexKey, err)
		}
		b.cRetries.Inc()
		sleep(d)
	}
}

func (b *httpBackend) loadOnce(hexKey string) (buf []byte, retryable bool, err error) {
	resp, err := b.client.Get(b.url(hexKey))
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, fmt.Errorf("fleet: cache miss for %s", hexKey)
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, true, fmt.Errorf("fleet: cache get %s: HTTP %d", hexKey, resp.StatusCode)
	default:
		return nil, false, fmt.Errorf("fleet: cache get %s: HTTP %d", hexKey, resp.StatusCode)
	}
	buf, err = io.ReadAll(io.LimitReader(resp.Body, maxWireBytes+1))
	if err != nil {
		return nil, true, fmt.Errorf("fleet: cache get %s: reading body: %w", hexKey, err)
	}
	if len(buf) > maxWireBytes {
		return nil, false, fmt.Errorf("fleet: cache entry %s exceeds %d bytes", hexKey, maxWireBytes)
	}
	// Integrity re-verification on read: a torn proxy response or a
	// coordinator serving a corrupted file is a miss here, not a payload.
	if err := jobs.ValidateEnvelope(hexKey, buf); err != nil {
		b.cCorrupt.Inc()
		b.log.Warn("remote cache entry corrupt", "key", hexKey, "error", err.Error())
		return nil, false, err
	}
	return buf, false, nil
}

// Store implements jobs.Backend, best-effort: retries under the policy,
// then drops the write with a counter and a log line instead of failing
// the caller — the coordinator re-persists results on arrival, so a
// dropped Put costs warm-cache sharing, not correctness.
func (b *httpBackend) Store(hexKey string, envelope []byte) error {
	if !jobs.ValidHexKey(hexKey) {
		return fmt.Errorf("fleet: bad cache key %q", hexKey)
	}
	bo := b.retry.Start()
	for {
		retryable, err := b.storeOnce(hexKey, envelope)
		if err == nil {
			b.cPuts.Inc()
			return nil
		}
		if retryable {
			if d, ok := bo.Next(); ok {
				b.cRetries.Inc()
				sleep(d)
				continue
			}
		}
		b.cDropped.Inc()
		b.log.Warn("remote cache put dropped", "key", hexKey, "error", err.Error())
		return nil
	}
}

func (b *httpBackend) storeOnce(hexKey string, envelope []byte) (retryable bool, err error) {
	req, err := http.NewRequest(http.MethodPut, b.url(hexKey), bytes.NewReader(envelope))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
		return false, nil
	case resp.StatusCode >= 500:
		return true, fmt.Errorf("fleet: cache put %s: HTTP %d", hexKey, resp.StatusCode)
	default:
		return false, fmt.Errorf("fleet: cache put %s: HTTP %d", hexKey, resp.StatusCode)
	}
}
