package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
	"pilotrf/internal/trace"
)

// fleetSpec is the shared test campaign: 8 cells across two workloads,
// two designs, two schemes.
func fleetSpec() campaign.Spec {
	return campaign.Spec{
		Benchmarks: []string{"sgemm", "nw"},
		Designs:    []string{"part-adaptive", "mrf-ntv"},
		Protect:    []string{"none", "parity"},
		Trials:     2,
		Seed:       42,
		SMs:        1,
	}
}

// standalone computes fleetSpec once per test binary — the reference
// report every fleet test compares against.
var (
	stdOnce sync.Once
	stdRep  campaign.Report
	stdErr  error
)

func standalone(t *testing.T) campaign.Report {
	t.Helper()
	stdOnce.Do(func() {
		pool, err := jobs.New(jobs.Config{Workers: 2})
		if err != nil {
			stdErr = err
			return
		}
		defer pool.Close()
		stdRep, stdErr = campaign.Run(context.Background(), fleetSpec(), campaign.Options{Pool: pool})
	})
	if stdErr != nil {
		t.Fatal(stdErr)
	}
	return stdRep
}

// newFleet stands up a coordinator over an httptest server with a
// directory cache, returning both plus the cache dir.
func newFleet(t *testing.T, cfg Config) (*Coordinator, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	cache, err := jobs.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache
	co := NewCoordinator(cfg)
	t.Cleanup(co.Close)
	mux := http.NewServeMux()
	co.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return co, ts, dir
}

// tableRunCell returns a runCell hook that answers instantly from the
// standalone report — chaos tests exercise the fabric, not the
// simulator.
func tableRunCell(t *testing.T) func(context.Context, Lease) (campaign.Cell, []trace.Span, error) {
	rep := standalone(t)
	return func(ctx context.Context, l Lease) (campaign.Cell, []trace.Span, error) {
		if l.Cell < 0 || l.Cell >= len(rep.Cells) {
			return campaign.Cell{}, nil, fmt.Errorf("cell %d out of range", l.Cell)
		}
		return rep.Cells[l.Cell], nil, nil
	}
}

// startWorker launches RunWorker in a goroutine, returning a stop
// function that cancels it and waits for exit.
func startWorker(t *testing.T, cfg WorkerConfig) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- RunWorker(ctx, cfg) }()
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("worker did not exit after cancel")
		}
	}
	t.Cleanup(stop)
	return stop
}

func reportBytes(t *testing.T, rep campaign.Report) []byte {
	t.Helper()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestFleetByteIdentical is the headline property: a 2-worker fleet
// running real simulations through the remote cache produces a report
// byte-identical to a standalone single-process run.
func TestFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	want := standalone(t)
	co, ts, _ := newFleet(t, Config{PollInterval: 20 * time.Millisecond})
	for i := 0; i < 2; i++ {
		startWorker(t, WorkerConfig{Coordinator: ts.URL, Parallel: 2})
	}
	rec := trace.NewRecorder(false)
	got, err := co.RunCampaign(context.Background(), fleetSpec(), RunOptions{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := reportBytes(t, got), reportBytes(t, want); !bytes.Equal(a, b) {
		t.Fatalf("fleet report differs from standalone:\n%s\n---\n%s", a, b)
	}
	if co.cCompleted.Value() == 0 {
		t.Fatal("no cells completed through the fleet")
	}
	// The trace must form a valid single-rooted tree including the
	// workers' imported subtrees.
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	if _, err := trace.BuildTree(spans); err != nil {
		t.Fatalf("fleet trace does not build: %v", err)
	}
}

// TestFleetLeaseExpiryRequeue kills a worker mid-campaign (registers,
// takes a lease, goes silent): the lease must expire, the cell re-queue
// to a live worker, and the report stay byte-identical. The dead
// worker's late submission must be rejected as stale.
func TestFleetLeaseExpiryRequeue(t *testing.T) {
	want := standalone(t)
	co, ts, _ := newFleet(t, Config{
		LeaseTTL:     300 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
	})

	// The doomed worker: registered by hand so it can go silent.
	var reg RegisterResponse
	postJSON(t, ts.URL+"/v1/fleet/register", RegisterRequest{Schema: WireSchema, Fingerprint: fingerprint(), Capacity: 1}, &reg)

	type result struct {
		rep campaign.Report
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		rep, err := co.RunCampaign(context.Background(), fleetSpec(), RunOptions{})
		resCh <- result{rep, err}
	}()

	// Grab one lease and never heartbeat it.
	var doomed Lease
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := rawPost(t, ts.URL+"/v1/fleet/lease", LeaseRequest{Schema: WireSchema, WorkerID: reg.WorkerID})
		if resp.StatusCode == http.StatusOK {
			l, err := ReadLease(bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			doomed = l
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Now the live worker joins and finishes everything, including the
	// doomed cell once its lease expires.
	startWorker(t, WorkerConfig{Coordinator: ts.URL, runCell: tableRunCell(t), Parallel: 1})

	var res result
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not finish after worker death")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	if a, b := reportBytes(t, res.rep), reportBytes(t, want); !bytes.Equal(a, b) {
		t.Fatalf("post-death report differs from standalone:\n%s\n---\n%s", a, b)
	}
	if co.cLeasesExpired.Value() == 0 {
		t.Fatal("no lease expired")
	}
	if co.cRequeued.Value() == 0 {
		t.Fatal("no cell re-queued")
	}

	// The doomed worker rises and submits its stale result: 410.
	cell := want.Cells[doomed.Cell]
	resp, _ := rawPost(t, ts.URL+"/v1/fleet/result", Result{
		Schema: WireSchema, WorkerID: reg.WorkerID, LeaseID: doomed.ID,
		Campaign: doomed.Campaign, Cell: doomed.Cell, CellResult: &cell,
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale result got HTTP %d, want 410", resp.StatusCode)
	}
	if co.cRejects.Value() == 0 {
		t.Fatal("stale result not counted as reject")
	}
}

// TestFleetCoordinatorResume: a coordinator restarted over a cache
// holding half the campaign replays those cells and dispatches only the
// gap.
func TestFleetCoordinatorResume(t *testing.T) {
	want := standalone(t)
	pl, err := campaign.NewPlan(fleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	co, ts, dir := newFleet(t, Config{PollInterval: 20 * time.Millisecond})
	// Simulate the first coordinator's life: half the cells persisted.
	cache, err := jobs.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	pre := pl.NumCells() / 2
	for i := 0; i < pre; i++ {
		if err := cache.Put(pl.CellKey(i), want.Cells[i]); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	leased := map[int]bool{}
	table := tableRunCell(t)
	startWorker(t, WorkerConfig{Coordinator: ts.URL, Parallel: 1,
		runCell: func(ctx context.Context, l Lease) (campaign.Cell, []trace.Span, error) {
			mu.Lock()
			leased[l.Cell] = true
			mu.Unlock()
			return table(ctx, l)
		}})
	got, err := co.RunCampaign(context.Background(), fleetSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := reportBytes(t, got), reportBytes(t, want); !bytes.Equal(a, b) {
		t.Fatalf("resumed report differs from standalone:\n%s\n---\n%s", a, b)
	}
	if got := int(co.cResumed.Value()); got != pre {
		t.Fatalf("resumed %d cells, want %d", got, pre)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < pre; i++ {
		if leased[i] {
			t.Errorf("cell %d was dispatched despite being resumable", i)
		}
	}
	for i := pre; i < pl.NumCells(); i++ {
		if !leased[i] {
			t.Errorf("gap cell %d was never dispatched", i)
		}
	}
}

// TestFleetFlakyWorkerExcluded: a worker that keeps failing one cell is
// excluded from that cell (not the campaign); a healthy worker finishes
// it and the campaign succeeds.
func TestFleetFlakyWorkerExcluded(t *testing.T) {
	want := standalone(t)
	co, ts, _ := newFleet(t, Config{
		PollInterval: 20 * time.Millisecond,
		ExcludeAfter: 2,
		PoisonAfter:  2,
	})
	table := tableRunCell(t)
	// Flaky worker: always errors on cell 0, fine elsewhere.
	startWorker(t, WorkerConfig{Coordinator: ts.URL, Parallel: 1,
		runCell: func(ctx context.Context, l Lease) (campaign.Cell, []trace.Span, error) {
			if l.Cell == 0 {
				return campaign.Cell{}, nil, fmt.Errorf("flaky: transient host fault")
			}
			return table(ctx, l)
		}})
	// Healthy worker joins a beat later so the flaky one hits cell 0
	// first at least once.
	time.Sleep(150 * time.Millisecond)
	startWorker(t, WorkerConfig{Coordinator: ts.URL, Parallel: 1, runCell: table})

	got, err := co.RunCampaign(context.Background(), fleetSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := reportBytes(t, got), reportBytes(t, want); !bytes.Equal(a, b) {
		t.Fatalf("report differs from standalone after flaky worker:\n%s\n---\n%s", a, b)
	}
}

// TestFleetPoisonCell: when distinct workers all fail the same cell,
// the campaign fails with the cell's error instead of looping forever.
func TestFleetPoisonCell(t *testing.T) {
	standalone(t)
	co, ts, _ := newFleet(t, Config{
		PollInterval: 20 * time.Millisecond,
		ExcludeAfter: 1, // first failure excludes, forcing worker diversity
		PoisonAfter:  2,
	})
	table := tableRunCell(t)
	poisoned := func(ctx context.Context, l Lease) (campaign.Cell, []trace.Span, error) {
		if l.Cell == 3 {
			return campaign.Cell{}, nil, fmt.Errorf("simulator assertion: bank conflict invariant violated")
		}
		return table(ctx, l)
	}
	startWorker(t, WorkerConfig{Coordinator: ts.URL, Parallel: 1, runCell: poisoned})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, Parallel: 1, runCell: poisoned})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := co.RunCampaign(ctx, fleetSpec(), RunOptions{})
	if err == nil {
		t.Fatal("poisoned campaign succeeded")
	}
	if !strings.Contains(err.Error(), "poison") || !strings.Contains(err.Error(), "bank conflict") {
		t.Fatalf("error does not identify the poison cell: %v", err)
	}
	if co.cPoisoned.Value() == 0 {
		t.Fatal("poisoned counter not incremented")
	}
}

// TestFleetRemoteCacheIntegrity: the remote cache round-trip
// re-verifies envelope integrity — a corrupted coordinator-side file is
// a miss for workers, and a corrupt PUT is rejected.
func TestFleetRemoteCacheIntegrity(t *testing.T) {
	_, ts, dir := newFleet(t, Config{})
	remote, err := NewRemoteCache(RemoteCacheConfig{
		Coordinator: ts.URL,
		Retry:       Policy{Base: time.Millisecond, Budget: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := jobs.NewKey().Field("kind", "fleet-test").Uint("n", 7).Sum()
	type payload struct {
		V int `json:"v"`
	}
	if err := remote.Put(key, payload{V: 41}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !remote.Get(key, &got) || got.V != 41 {
		t.Fatalf("remote round-trip failed: %+v", got)
	}

	// Corrupt the coordinator-side file: truncated envelope.
	path := filepath.Join(dir, key.Hex()+".json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var after payload
	if remote.Get(key, &after) {
		t.Fatal("corrupt remote entry served as a hit")
	}

	// A corrupt PUT (payload swapped under the same key) is rejected.
	bad := []byte(`{"schema":"pilotrf-jobcache/v1","key":"` + key.Hex() + `","preimage":"wrong","payload":{"v":1}}`)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/fleet/cache/"+key.Hex(), bytes.NewReader(bad))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT got HTTP %d, want 400", resp.StatusCode)
	}
}

// TestFleetHealthSnapshot: Health reflects registered workers and
// campaign state.
func TestFleetHealthSnapshot(t *testing.T) {
	co, ts, _ := newFleet(t, Config{PollInterval: 20 * time.Millisecond})
	var reg RegisterResponse
	postJSON(t, ts.URL+"/v1/fleet/register", RegisterRequest{Schema: WireSchema, Fingerprint: fingerprint(), Capacity: 4}, &reg)
	h := co.Health()
	if h.WorkersLive != 1 || h.WorkersLost != 0 {
		t.Fatalf("health = %+v, want 1 live worker", h)
	}
}

// rawPost posts msg as JSON and returns the response and its body.
func rawPost(t *testing.T, url string, msg interface{}) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// postJSON posts msg and decodes the 200 response into out.
func postJSON(t *testing.T, url string, msg, out interface{}) {
	t.Helper()
	resp, body := rawPost(t, url, msg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatal(err)
	}
}
