package fleet

import (
	"context"
	"testing"
	"time"
)

// TestBackoffFirstDelayIsBase: the first retry delay is Base exactly —
// the immediate schedule must be predictable.
func TestBackoffFirstDelayIsBase(t *testing.T) {
	b := Policy{Base: 50 * time.Millisecond}.Start()
	d, ok := b.Next()
	if !ok || d != 50*time.Millisecond {
		t.Fatalf("first delay = %v, %v; want 50ms, true", d, ok)
	}
	if b.Attempts() != 1 {
		t.Fatalf("Attempts = %d, want 1", b.Attempts())
	}
}

// TestBackoffDeterministicPerSeed: equal seeds give byte-equal
// schedules; different seeds decorrelate.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		b := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Budget: 5 * time.Second, Seed: seed}.Start()
		var out []time.Duration
		for {
			d, ok := b.Next()
			if !ok {
				return out
			}
			out = append(out, d)
		}
	}
	a, b := schedule(7), schedule(7)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d: %v != %v for equal seeds", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestBackoffBounds: every jittered delay lies in [Base, Cap], and the
// decorrelated upper bound 3*prev is respected.
func TestBackoffBounds(t *testing.T) {
	pol := Policy{Base: 10 * time.Millisecond, Cap: 200 * time.Millisecond, Budget: 10 * time.Second, Seed: 3}
	b := pol.Start()
	prev := time.Duration(0)
	for i := 0; ; i++ {
		d, ok := b.Next()
		if !ok {
			break
		}
		if d < 0 || d > pol.Cap {
			t.Fatalf("delay %d = %v outside [0, %v]", i, d, pol.Cap)
		}
		if i > 0 && prev >= pol.Base {
			hi := 3 * prev
			if hi > pol.Cap {
				hi = pol.Cap
			}
			if d > hi {
				t.Fatalf("delay %d = %v exceeds decorrelated bound 3*%v", i, d, prev)
			}
		}
		prev = d
	}
}

// TestBackoffBudget: total sleep never exceeds Budget, and Next reports
// done afterwards.
func TestBackoffBudget(t *testing.T) {
	pol := Policy{Base: 30 * time.Millisecond, Cap: 100 * time.Millisecond, Budget: 250 * time.Millisecond}
	b := pol.Start()
	var total time.Duration
	for {
		d, ok := b.Next()
		if !ok {
			break
		}
		total += d
		if total > pol.Budget {
			t.Fatalf("cumulative sleep %v exceeds budget %v", total, pol.Budget)
		}
	}
	if total != pol.Budget {
		t.Fatalf("budget not fully consumable: slept %v of %v", total, pol.Budget)
	}
	if _, ok := b.Next(); ok {
		t.Fatal("Next returned ok after budget exhaustion")
	}
}

// TestBackoffSleepHonorsContext: Sleep returns promptly with the ctx
// error when cancelled mid-delay.
func TestBackoffSleepHonorsContext(t *testing.T) {
	b := Policy{Base: 10 * time.Second}.Start()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := b.Sleep(ctx); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not honor cancellation")
	}
}

// TestBackoffDefaults: the zero policy selects sane defaults.
func TestBackoffDefaults(t *testing.T) {
	b := Policy{}.Start()
	d, ok := b.Next()
	if !ok || d != 100*time.Millisecond {
		t.Fatalf("zero-policy first delay = %v, %v; want 100ms, true", d, ok)
	}
}
