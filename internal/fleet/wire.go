package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"pilotrf/internal/campaign"
	"pilotrf/internal/trace"
)

// WireSchema versions every fleet wire message; bump on incompatible
// change and mixed-version fleets fail closed at registration instead
// of corrupting campaigns.
const WireSchema = "pilotrf-fleet/v1"

// maxWireBytes bounds any single wire message the validating readers
// accept; a lease or result is a few KB, so 16MB is generous headroom
// against a runaway or hostile peer, matching internal/trace's reader.
const maxWireBytes = 16 << 20

// Fingerprint identifies a worker's execution environment, recorded at
// registration and surfaced in coordinator logs — when one host's cells
// keep failing, this is how the operator finds the host.
type Fingerprint struct {
	Host      string `json:"host"`
	PID       int    `json:"pid"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// RegisterRequest is POST /v1/fleet/register: a worker announcing
// itself and its capacity (its local pool's worker count).
type RegisterRequest struct {
	Schema      string      `json:"schema"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Capacity    int         `json:"capacity"`
}

// RegisterResponse assigns the worker its id and the fabric's timing
// contract: heartbeat within TTL or lose the lease; poll for work about
// every PollMS.
type RegisterResponse struct {
	Schema   string `json:"schema"`
	WorkerID string `json:"worker_id"`
	TTLMS    int64  `json:"ttl_ms"`
	PollMS   int64  `json:"poll_ms"`
}

// LeaseRequest is POST /v1/fleet/lease: a registered worker asking for
// one cell of work.
type LeaseRequest struct {
	Schema   string `json:"schema"`
	WorkerID string `json:"worker_id"`
}

// Lease is one granted work item: a self-contained single-cell campaign
// spec (campaign.Plan.CellSpec), the lease identity the worker must
// heartbeat and submit under, and the traceparent carrying the
// coordinator's span tree across the wire. The lease is the fleet's
// core wire message — ReadLease is the validating reader the fuzz
// target hammers.
type Lease struct {
	Schema string `json:"schema"`
	// ID is the lease's identity; heartbeats and the result must name
	// it, and a re-queued cell gets a fresh one, which is how stale
	// double-completions are rejected.
	ID string `json:"id"`
	// Campaign identifies the coordinator-side campaign run.
	Campaign string `json:"campaign"`
	// Cell is the canonical cell index within the campaign.
	Cell int `json:"cell"`
	// Design, Workload, and Protect name the cell for logs.
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Protect  string `json:"protect"`
	// Spec is the self-contained single-cell spec to execute.
	Spec campaign.Spec `json:"spec"`
	// TTLMS is the lease's time-to-live; heartbeat sooner or the cell
	// is re-queued.
	TTLMS int64 `json:"ttl_ms"`
	// Attempt counts grants of this cell (1 = first try).
	Attempt int `json:"attempt"`
	// Traceparent is the W3C traceparent of the coordinator's cell
	// span; the worker roots its recorded subtree under it. Optional.
	Traceparent string `json:"traceparent,omitempty"`
}

// Heartbeat is POST /v1/fleet/heartbeat: the worker renewing its lease.
type Heartbeat struct {
	Schema   string `json:"schema"`
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
}

// Result is POST /v1/fleet/result: the terminal report for one lease.
// Exactly one of Cell (Error == "") and Error is meaningful.
type Result struct {
	Schema   string `json:"schema"`
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
	Campaign string `json:"campaign"`
	Cell     int    `json:"cell"`
	// CellResult is the computed campaign cell on success.
	CellResult *campaign.Cell `json:"cell_result,omitempty"`
	// Error is the cell's failure message; non-empty marks failure.
	Error string `json:"error,omitempty"`
	// Spans is the worker's recorded span subtree, rooted under the
	// lease's traceparent, imported into the coordinator's tree.
	Spans []trace.Span `json:"spans,omitempty"`
}

// WriteLease writes the canonical encoding of a lease: compact JSON,
// one line. The encoding is a pure function of the value, so
// read-then-write round-trips are byte-stable (fuzz-asserted).
func WriteLease(w io.Writer, l Lease) error {
	buf, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("fleet: encoding lease: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadLease is the validating reader for the lease wire message: it
// never panics on garbage, rejects anything structurally unsound with a
// descriptive error, and accepts exactly the values WriteLease can
// round-trip byte-stably.
func ReadLease(r io.Reader) (Lease, error) {
	var l Lease
	buf, err := io.ReadAll(io.LimitReader(r, maxWireBytes+1))
	if err != nil {
		return l, fmt.Errorf("fleet: reading lease: %w", err)
	}
	if len(buf) > maxWireBytes {
		return l, fmt.Errorf("fleet: lease exceeds %d bytes", maxWireBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&l); err != nil {
		return Lease{}, fmt.Errorf("fleet: decoding lease: %w", err)
	}
	// Exactly one JSON value: trailing garbage is a torn or concatenated
	// message, not a lease.
	if dec.More() {
		return Lease{}, fmt.Errorf("fleet: trailing data after lease")
	}
	if err := validateLease(l); err != nil {
		return Lease{}, err
	}
	return l, nil
}

// validateLease enforces the structural invariants a coordinator-minted
// lease always satisfies.
func validateLease(l Lease) error {
	if l.Schema != WireSchema {
		return fmt.Errorf("fleet: lease schema %q, want %q", l.Schema, WireSchema)
	}
	if l.ID == "" {
		return fmt.Errorf("fleet: lease without id")
	}
	if l.Campaign == "" {
		return fmt.Errorf("fleet: lease %s without campaign", l.ID)
	}
	if l.Cell < 0 {
		return fmt.Errorf("fleet: lease %s has negative cell %d", l.ID, l.Cell)
	}
	if l.TTLMS <= 0 {
		return fmt.Errorf("fleet: lease %s has non-positive ttl %d", l.ID, l.TTLMS)
	}
	if l.Attempt < 1 {
		return fmt.Errorf("fleet: lease %s has attempt %d", l.ID, l.Attempt)
	}
	if l.Design == "" || l.Workload == "" || l.Protect == "" {
		return fmt.Errorf("fleet: lease %s with unnamed cell", l.ID)
	}
	if l.Traceparent != "" {
		if _, _, ok := trace.ParseTraceparent(l.Traceparent); !ok {
			return fmt.Errorf("fleet: lease %s has malformed traceparent %q", l.ID, l.Traceparent)
		}
	}
	// The spec must be structurally sound; full semantic validation
	// (names resolve, scale in range) happens when the worker compiles
	// it, but a lease's spec is always a single-cell spec, so the axes
	// must be present and the counts non-negative. NaN/Inf cannot
	// appear — JSON has no tokens for them.
	if len(l.Spec.Benchmarks) == 0 || len(l.Spec.Designs) == 0 || len(l.Spec.Protect) == 0 {
		return fmt.Errorf("fleet: lease %s spec is not a resolved cell spec", l.ID)
	}
	if l.Spec.Trials < 0 || l.Spec.SMs < 0 || l.Spec.Rate < 0 || l.Spec.Scale < 0 {
		return fmt.Errorf("fleet: lease %s has a negative spec field", l.ID)
	}
	return nil
}
