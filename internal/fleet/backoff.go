// Package fleet is the distributed campaign fabric: a coordinator that
// shards fault-campaign cells across registered workers under expiring
// leases, and the worker loop that pulls cells, executes them through
// internal/campaign, and streams results back.
//
// The failure model is explicit and small:
//
//   - Worker death / lease expiry — a cell whose lease deadline passes
//     without a heartbeat is re-queued for any other worker. Expiries
//     count toward the (cell, worker) failure tally; after
//     Config.ExcludeAfter failures the worker is excluded from that
//     cell ("worker is flaky"), never from the whole campaign.
//   - Poison cell — when ExcludeAfter-independent *errors* arrive from
//     Config.PoisonAfter distinct workers for the same cell, the cell
//     is deterministic poison (a seeded simulation fails the same way
//     everywhere) and the campaign fails with that cell's error instead
//     of looping forever.
//   - Coordinator crash — every finished cell was persisted to the
//     coordinator's content-addressed cache the moment it arrived, so a
//     restarted coordinator replays completed cells from the cache and
//     re-dispatches only the gap.
//
// Determinism is inherited, not re-proven: internal/campaign guarantees
// a single-cell spec computes the exact bytes of that cell in a full
// run, so the coordinator merely assembles remotely computed cells in
// canonical order — an N-worker fleet report is byte-identical to
// `-parallel 1`, which the chaos tests (kill a worker mid-campaign,
// restart the coordinator) pin down.
package fleet

import (
	"context"
	"fmt"
	"time"
)

// Policy configures the shared retry/backoff helper both sides of the
// wire use: exponential growth with decorrelated jitter (each delay is
// drawn between Base and 3x the previous delay, clamped to Cap), capped
// by a total sleep Budget so a dead coordinator fails a worker's call
// in bounded time instead of retrying forever.
type Policy struct {
	// Base is the first delay and the lower bound of every draw.
	// Zero selects 100ms.
	Base time.Duration
	// Cap clamps any single delay. Zero selects 5s.
	Cap time.Duration
	// Budget bounds the total time spent sleeping across the retry
	// sequence; once exceeded, Next reports done. Zero selects 2m.
	Budget time.Duration
	// Seed selects the jitter stream. The default (0) is a fixed
	// constant: retry schedules are then reproducible per process, and
	// callers that want per-client decorrelation (the reason jitter
	// exists) derive a seed from their identity.
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 2 * time.Minute
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	return p
}

// Backoff is one retry sequence. Not safe for concurrent use; start a
// fresh one per operation with Policy.Start.
type Backoff struct {
	pol      Policy
	prev     time.Duration
	slept    time.Duration
	rng      uint64
	attempts int
}

// Start begins a retry sequence under the policy.
func (p Policy) Start() *Backoff {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Backoff{pol: p, rng: seed}
}

// splitmix64 advances the jitter stream; a tiny, well-mixed PRNG whose
// whole state is the seed, so equal seeds give equal schedules.
func (b *Backoff) splitmix64() uint64 {
	b.rng += 0x9E3779B97F4A7C15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next returns the next delay and whether the caller may retry at all:
// ok is false once the policy's budget is exhausted. The first call
// returns Base exactly (no jitter — an immediate first retry schedule
// should be predictable); later delays are decorrelated-jittered.
func (b *Backoff) Next() (time.Duration, bool) {
	if b.slept >= b.pol.Budget {
		return 0, false
	}
	var d time.Duration
	if b.attempts == 0 {
		d = b.pol.Base
	} else {
		// Decorrelated jitter: uniform in [Base, 3*prev], clamped.
		hi := 3 * b.prev
		if hi > b.pol.Cap {
			hi = b.pol.Cap
		}
		span := hi - b.pol.Base
		if span <= 0 {
			d = b.pol.Base
		} else {
			d = b.pol.Base + time.Duration(b.splitmix64()%uint64(span+1))
		}
	}
	if remaining := b.pol.Budget - b.slept; d > remaining {
		d = remaining
	}
	b.attempts++
	b.prev = d
	b.slept += d
	return d, true
}

// Attempts returns how many delays Next has handed out.
func (b *Backoff) Attempts() int { return b.attempts }

// Sleep takes the next delay and sleeps it, honoring ctx. It returns an
// error when the budget is exhausted or ctx is done — either way the
// caller's retry loop ends.
func (b *Backoff) Sleep(ctx context.Context) error {
	d, ok := b.Next()
	if !ok {
		return fmt.Errorf("fleet: retry budget %v exhausted after %d attempts", b.pol.Budget, b.attempts)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
