package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pilotrf/internal/campaign"
)

// sampleLease is a structurally valid lease as the coordinator mints
// them.
func sampleLease() Lease {
	return Lease{
		Schema:   WireSchema,
		ID:       "l-7",
		Campaign: "c-1",
		Cell:     3,
		Design:   "part-adaptive",
		Workload: "sgemm",
		Protect:  "parity",
		Spec: campaign.Spec{
			Benchmarks: []string{"sgemm"},
			Designs:    []string{"part-adaptive"},
			Protect:    []string{"parity"},
			Trials:     2,
			Seed:       42,
			SMs:        1,
		},
		TTLMS:       10000,
		Attempt:     1,
		Traceparent: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
	}
}

// TestLeaseRoundTrip: Write → Read preserves the value, and a second
// Write is byte-identical (the canonical-encoding contract).
func TestLeaseRoundTrip(t *testing.T) {
	want := sampleLease()
	var buf bytes.Buffer
	if err := WriteLease(&buf, want); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := ReadLease(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	var again bytes.Buffer
	if err := WriteLease(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatalf("re-encoding differs:\n%q\n%q", first, again.Bytes())
	}
}

// TestReadLeaseRejects: each structural violation is rejected with a
// descriptive error, never accepted or panicked on.
func TestReadLeaseRejects(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Lease)
	}{
		{"wrong schema", func(l *Lease) { l.Schema = "pilotrf-fleet/v0" }},
		{"empty id", func(l *Lease) { l.ID = "" }},
		{"empty campaign", func(l *Lease) { l.Campaign = "" }},
		{"negative cell", func(l *Lease) { l.Cell = -1 }},
		{"zero ttl", func(l *Lease) { l.TTLMS = 0 }},
		{"zero attempt", func(l *Lease) { l.Attempt = 0 }},
		{"unnamed design", func(l *Lease) { l.Design = "" }},
		{"unnamed workload", func(l *Lease) { l.Workload = "" }},
		{"unnamed protect", func(l *Lease) { l.Protect = "" }},
		{"bad traceparent", func(l *Lease) { l.Traceparent = "00-zz-zz-01" }},
		{"empty spec", func(l *Lease) { l.Spec = campaign.Spec{} }},
		{"negative trials", func(l *Lease) { l.Spec.Trials = -1 }},
	}
	for _, tc := range mutate {
		l := sampleLease()
		tc.f(&l)
		var buf bytes.Buffer
		if err := WriteLease(&buf, l); err != nil {
			t.Fatalf("%s: encoding: %v", tc.name, err)
		}
		if _, err := ReadLease(&buf); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestReadLeaseRejectsGarbage: non-JSON, unknown fields, trailing data,
// and oversize input are all clean errors.
func TestReadLeaseRejectsGarbage(t *testing.T) {
	var ok bytes.Buffer
	if err := WriteLease(&ok, sampleLease()); err != nil {
		t.Fatal(err)
	}
	good := ok.String()
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"not json", "hello\n"},
		{"truncated", good[:len(good)/2]},
		{"unknown field", strings.Replace(good, `"schema"`, `"schemaX"`, 1)},
		{"trailing data", good + good},
		{"wrong type", strings.Replace(good, `"cell":3`, `"cell":"three"`, 1)},
	}
	for _, tc := range cases {
		if _, err := ReadLease(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
	if _, err := ReadLease(bytes.NewReader(make([]byte, maxWireBytes+1))); err == nil {
		t.Error("oversize input accepted")
	}
}
