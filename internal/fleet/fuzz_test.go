package fleet

import (
	"bytes"
	"testing"
)

// FuzzReadLease fuzzes the fleet's validating wire reader: it must
// never panic on arbitrary bytes, and anything it accepts must
// round-trip byte-stably (decode → canonical re-encode → decode gives
// the same bytes and value — the property the coordinator and workers
// rely on when leases cross process boundaries).
func FuzzReadLease(f *testing.F) {
	var good bytes.Buffer
	if err := WriteLease(&good, sampleLease()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"pilotrf-fleet/v1"}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\xff\xfe garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadLease(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteLease(&first, l); err != nil {
			t.Fatalf("accepted lease failed to encode: %v", err)
		}
		l2, err := ReadLease(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteLease(&second, l2); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip not byte-stable:\n%q\n%q", first.Bytes(), second.Bytes())
		}
	})
}
