package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/trace"
)

// Config sizes a Coordinator. Zero fields select defaults.
type Config struct {
	// Cache persists finished cells and golden runs, serves the remote
	// cache endpoints, and is the crash-resume source. nil disables
	// persistence (and therefore resume), which only tests want.
	Cache *jobs.Cache
	// Reg receives the fleet metrics; nil creates a private registry.
	Reg *telemetry.Registry
	// Log receives structured records; nil discards.
	Log *slog.Logger
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before its cell is re-queued. Zero selects 10s.
	LeaseTTL time.Duration
	// PollInterval is the work-poll cadence suggested to workers at
	// registration. Zero selects 500ms.
	PollInterval time.Duration
	// ExcludeAfter is K: after K failures (errors or lease expiries) of
	// one worker on one cell, that worker is excluded from that cell.
	// Zero selects 2.
	ExcludeAfter int
	// PoisonAfter is the number of distinct workers that must report an
	// error for one cell before the cell is declared poison and the
	// campaign fails. Zero selects 2; a single-worker fleet fails after
	// ExcludeAfter tries by that worker instead.
	PoisonAfter int
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.ExcludeAfter <= 0 {
		c.ExcludeAfter = 2
	}
	if c.PoisonAfter <= 0 {
		c.PoisonAfter = 2
	}
	if c.Reg == nil {
		c.Reg = telemetry.NewRegistry()
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return c
}

// workerState is one registered worker.
type workerState struct {
	id       string
	fp       Fingerprint
	capacity int
	lastSeen time.Time
	lost     bool
}

// cellState tracks one campaign cell through the lease state machine.
type cellState struct {
	state    int // cellPending | cellLeased | cellDone
	result   campaign.Cell
	resumed  bool
	leaseID  string
	worker   string
	deadline time.Time
	attempt  int
	requeues int
	// failures tallies errors + expiries per worker (exclusion);
	// errWorkers records distinct workers' error messages (poison).
	failures   map[string]int
	excluded   map[string]bool
	errWorkers map[string]string
	firstErr   string
}

const (
	cellPending = iota
	cellLeased
	cellDone
)

// run is one campaign being sharded across the fleet.
type run struct {
	id       string
	pl       *campaign.Plan
	spec     campaign.Spec
	cells    []cellState
	left     int // cells not yet done
	failed   bool
	failCell int
	failMsg  string
	done     chan struct{}

	progress       func(done, total int)
	doneUnits      int
	totalUnits     int
	goldenCredited map[string]bool

	rec    *trace.Recorder
	campSC trace.SpanContext
	camp   *trace.ActiveSpan
}

// RunOptions configures one RunCampaign.
type RunOptions struct {
	// Progress, when set, is called with cumulative done/total units
	// (priced like campaign.Options.Progress: golden runs + trials).
	Progress func(done, total int)
	// Trace, when non-nil, records the fleet span tree: a
	// fleet.campaign span (child of any span carried by ctx), one
	// fleet.cell span per cell, and under each the executing worker's
	// imported subtree. Wall sections and cache annotations vary with
	// scheduling; the report is byte-identical regardless.
	Trace *trace.Recorder
}

// Coordinator shards campaigns into leased cells over registered
// workers. Create with NewCoordinator, mount its HTTP API with Mount,
// and stop the lease janitor with Close.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	workers   map[string]*workerState
	runs      []*run // admission order; leases scan in order
	seqWorker int
	seqRun    int
	seqLease  int
	closed    chan struct{}

	gWorkersLive   *telemetry.Gauge
	cWorkersLost   *telemetry.Counter
	gLeasesActive  *telemetry.Gauge
	cLeasesExpired *telemetry.Counter
	cRequeued      *telemetry.Counter
	cResumed       *telemetry.Counter
	cCompleted     *telemetry.Counter
	cPoisoned      *telemetry.Counter
	cRejects       *telemetry.Counter
	gCampaigns     *telemetry.Gauge
	cCacheGets     *telemetry.Counter
	cCacheHits     *telemetry.Counter
	cCachePuts     *telemetry.Counter
	cCacheBad      *telemetry.Counter
}

// NewCoordinator builds the coordinator and starts its lease janitor.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		closed:  make(chan struct{}),

		gWorkersLive:   cfg.Reg.Gauge("fleet_workers_live"),
		cWorkersLost:   cfg.Reg.Counter("fleet_workers_lost"),
		gLeasesActive:  cfg.Reg.Gauge("fleet_leases_active"),
		cLeasesExpired: cfg.Reg.Counter("fleet_leases_expired"),
		cRequeued:      cfg.Reg.Counter("fleet_cells_requeued"),
		cResumed:       cfg.Reg.Counter("fleet_cells_resumed"),
		cCompleted:     cfg.Reg.Counter("fleet_cells_completed"),
		cPoisoned:      cfg.Reg.Counter("fleet_cells_poisoned"),
		cRejects:       cfg.Reg.Counter("fleet_result_rejects"),
		gCampaigns:     cfg.Reg.Gauge("fleet_campaigns_active"),
		cCacheGets:     cfg.Reg.Counter("fleet_cache_gets"),
		cCacheHits:     cfg.Reg.Counter("fleet_cache_hits"),
		cCachePuts:     cfg.Reg.Counter("fleet_cache_puts"),
		cCacheBad:      cfg.Reg.Counter("fleet_cache_rejected"),
	}
	go c.janitor()
	return c
}

// Close stops the lease janitor. Campaigns still running keep their
// state but expired leases are no longer re-queued.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
}

// janitor periodically expires overdue leases and worker liveness.
func (c *Coordinator) janitor() {
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
			c.expire()
		}
	}
}

// expire re-queues cells whose lease deadline passed and transitions
// silent workers to lost.
func (c *Coordinator) expire() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.runs {
		for i := range r.cells {
			cell := &r.cells[i]
			if cell.state != cellLeased || now.Before(cell.deadline) {
				continue
			}
			c.cfg.Log.Warn("lease expired", "campaign", r.id, "cell", i,
				"worker", cell.worker, "lease", cell.leaseID, "attempt", cell.attempt)
			c.cLeasesExpired.Inc()
			c.failLocked(r, i, cell.worker, "") // expiry: counts for exclusion, not poison
		}
	}
	for _, w := range c.workers {
		if !w.lost && now.Sub(w.lastSeen) > 2*c.cfg.LeaseTTL {
			w.lost = true
			c.gWorkersLive.Add(-1)
			c.cWorkersLost.Inc()
			c.cfg.Log.Warn("worker lost", "worker", w.id, "host", w.fp.Host,
				"last_seen", w.lastSeen.Format(time.RFC3339Nano))
		}
	}
}

// failLocked records one failed attempt (errMsg == "" for a lease
// expiry) and either re-queues the cell, or — when PoisonAfter distinct
// workers have reported real errors — fails the whole campaign. Callers
// hold c.mu.
func (c *Coordinator) failLocked(r *run, i int, worker, errMsg string) {
	cell := &r.cells[i]
	cell.state = cellPending
	cell.leaseID = ""
	cell.worker = ""
	cell.requeues++
	c.gLeasesActive.Add(-1)
	c.cRequeued.Inc()
	if cell.failures == nil {
		cell.failures = make(map[string]int)
		cell.excluded = make(map[string]bool)
		cell.errWorkers = make(map[string]string)
	}
	cell.failures[worker]++
	if cell.failures[worker] >= c.cfg.ExcludeAfter && !cell.excluded[worker] {
		cell.excluded[worker] = true
		c.cfg.Log.Warn("worker excluded from cell", "campaign", r.id, "cell", i,
			"worker", worker, "failures", cell.failures[worker])
	}
	if errMsg != "" {
		if cell.firstErr == "" {
			cell.firstErr = errMsg
		}
		cell.errWorkers[worker] = errMsg
		if len(cell.errWorkers) >= c.cfg.PoisonAfter && !r.failed {
			ref := r.pl.Cell(i)
			c.cPoisoned.Inc()
			r.failed = true
			r.failCell = i
			r.failMsg = fmt.Sprintf("cell %d (%s/%s/%s) is poison: %d workers failed it, first error: %s",
				i, ref.Design, ref.Protect, ref.Workload, len(cell.errWorkers), cell.firstErr)
			c.cfg.Log.Error("campaign failed", "campaign", r.id, "cell", i, "error", r.failMsg)
			close(r.done)
		}
	}
}

// RunCampaign shards one campaign across the fleet and blocks until it
// completes, fails (poison cell), or ctx is cancelled. Finished cells
// already present in the coordinator's cache are replayed without
// dispatch (crash-resume); everything else is leased to workers and the
// results merge in canonical order, so the report is byte-identical to
// a standalone single-process run of the same spec.
func (c *Coordinator) RunCampaign(ctx context.Context, spec campaign.Spec, opt RunOptions) (campaign.Report, error) {
	pl, err := campaign.NewPlan(spec)
	if err != nil {
		return campaign.Report{}, err
	}
	r := &run{
		pl:             pl,
		spec:           pl.Spec(),
		cells:          make([]cellState, pl.NumCells()),
		left:           pl.NumCells(),
		done:           make(chan struct{}),
		progress:       opt.Progress,
		totalUnits:     pl.NumJobs(),
		goldenCredited: make(map[string]bool),
	}

	// Span tree: a fleet.campaign span under the caller's span (the job
	// server's per-job root) or rooted fresh on the provided recorder.
	if sc := trace.FromContext(ctx); sc.Active() {
		r.rec = opt.Trace
		r.camp = sc.Start("fleet.campaign")
	} else if opt.Trace != nil {
		r.rec = opt.Trace
		r.camp = opt.Trace.Root("fleet.campaign", pl.TraceID(), "fleet")
	}
	r.camp.SetAttr("cells", strconv.Itoa(pl.NumCells()))
	r.campSC = r.camp.Context()

	// Crash-resume: replay finished cells straight from the cache.
	resumed := 0
	for i := 0; i < pl.NumCells(); i++ {
		var cell campaign.Cell
		if c.cfg.Cache.Get(pl.CellKey(i), &cell) && pl.ValidCell(i, cell) {
			r.cells[i] = cellState{state: cellDone, result: cell, resumed: true}
			r.left--
			resumed++
			sp := r.campSC.Start("fleet.cell", strconv.Itoa(i))
			c.annotateCell(sp, pl.Cell(i), "resume")
			sp.End()
			c.creditLocked(r, i)
		}
	}
	c.cResumed.Add(uint64(resumed))

	c.mu.Lock()
	c.seqRun++
	r.id = fmt.Sprintf("c-%d", c.seqRun)
	allDone := r.left == 0
	if !allDone {
		c.runs = append(c.runs, r)
	}
	c.mu.Unlock()
	c.gCampaigns.Add(1)
	defer c.gCampaigns.Add(-1)
	c.cfg.Log.Info("campaign admitted", "campaign", r.id,
		"cells", pl.NumCells(), "resumed", resumed, "units", r.totalUnits)

	if !allDone {
		defer c.remove(r)
		select {
		case <-r.done:
		case <-ctx.Done():
			r.camp.End()
			return campaign.Report{}, ctx.Err()
		}
	}

	c.mu.Lock()
	failed, failMsg := r.failed, r.failMsg
	cells := make([]campaign.Cell, len(r.cells))
	for i := range r.cells {
		cells[i] = r.cells[i].result
	}
	c.mu.Unlock()
	r.camp.End()
	if failed {
		return campaign.Report{}, fmt.Errorf("fleet: campaign %s: %s", r.id, failMsg)
	}
	return pl.Assemble(cells), nil
}

// remove drops a finished run from the lease scan.
func (c *Coordinator) remove(r *run) {
	c.mu.Lock()
	for i, x := range c.runs {
		if x == r {
			c.runs = append(c.runs[:i], c.runs[i+1:]...)
			break
		}
	}
	// Any still-active leases of this run die with it; result
	// submissions for them will be rejected as stale.
	for i := range r.cells {
		if r.cells[i].state == cellLeased {
			c.gLeasesActive.Add(-1)
		}
	}
	c.mu.Unlock()
}

// creditLocked advances the progress accounting for a finished cell:
// its trial units, plus the (design, workload) golden unit the first
// time a cell of that pair completes. Called with c.mu held except
// during RunCampaign's pre-admission resume loop, where the run is not
// yet visible to any other goroutine.
func (c *Coordinator) creditLocked(r *run, i int) {
	ref := r.pl.Cell(i)
	units := r.spec.Trials
	pair := ref.Design + "\x00" + ref.Workload
	if !r.goldenCredited[pair] {
		r.goldenCredited[pair] = true
		units++
	}
	r.doneUnits += units
	if r.progress != nil {
		r.progress(r.doneUnits, r.totalUnits)
	}
}

// annotateCell stamps the deterministic cell identity on a fleet.cell
// span; how the cell was satisfied (computed / resume) varies with
// history, so it rides in the wall section.
func (c *Coordinator) annotateCell(sp *trace.ActiveSpan, ref campaign.CellRef, how string) {
	sp.SetAttr("design", ref.Design)
	sp.SetAttr("workload", ref.Workload)
	sp.SetAttr("protect", ref.Protect)
	sp.SetWallAttr("satisfied", how)
}

// Health is the coordinator's state snapshot for /healthz.
type Health struct {
	WorkersLive   int    `json:"workers_live"`
	WorkersLost   int    `json:"workers_lost"`
	LeasesActive  int    `json:"leases_active"`
	Campaigns     int    `json:"campaigns_active"`
	CellsPending  int    `json:"cells_pending"`
	CellsLeased   int    `json:"cells_leased"`
	CellsRequeued uint64 `json:"cells_requeued"`
	CellsResumed  uint64 `json:"cells_resumed"`
}

// Health returns the live fleet snapshot.
func (c *Coordinator) Health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := Health{
		CellsRequeued: c.cRequeued.Value(),
		CellsResumed:  c.cResumed.Value(),
	}
	for _, w := range c.workers {
		if w.lost {
			h.WorkersLost++
		} else {
			h.WorkersLive++
		}
	}
	for _, r := range c.runs {
		h.Campaigns++
		for i := range r.cells {
			switch r.cells[i].state {
			case cellPending:
				h.CellsPending++
			case cellLeased:
				h.CellsLeased++
				h.LeasesActive++
			}
		}
	}
	return h
}

// ---------------------------------------------------------------- HTTP

// Mount registers the fleet wire API on mux:
//
//	POST /v1/fleet/register   — worker announce; assigns id + timing
//	POST /v1/fleet/lease      — pull one cell (204 when none pending)
//	POST /v1/fleet/heartbeat  — renew a lease
//	POST /v1/fleet/result     — submit a lease's terminal result
//	GET/PUT /v1/fleet/cache/{key}
//	                          — shared content-addressed envelope store
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/fleet/register", c.handleRegister)
	mux.HandleFunc("/v1/fleet/lease", c.handleLease)
	mux.HandleFunc("/v1/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/fleet/result", c.handleResult)
	mux.HandleFunc("/v1/fleet/cache/", c.handleCache)
}

// decodeWire decodes a JSON body and checks the schema fence.
func decodeWire(w http.ResponseWriter, r *http.Request, schema *string, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxWireBytes)).Decode(v); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if *schema != WireSchema {
		http.Error(w, fmt.Sprintf("schema %q, want %q", *schema, WireSchema), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeWire(w, r, &req.Schema, &req) {
		return
	}
	c.mu.Lock()
	c.seqWorker++
	ws := &workerState{
		id:       fmt.Sprintf("w-%d", c.seqWorker),
		fp:       req.Fingerprint,
		capacity: req.Capacity,
		lastSeen: time.Now(),
	}
	c.workers[ws.id] = ws
	c.mu.Unlock()
	c.gWorkersLive.Add(1)
	c.cfg.Log.Info("worker registered", "worker", ws.id, "host", req.Fingerprint.Host,
		"pid", req.Fingerprint.PID, "capacity", req.Capacity,
		"goos", req.Fingerprint.GOOS, "goarch", req.Fingerprint.GOARCH)
	writeJSON(w, http.StatusOK, RegisterResponse{
		Schema:   WireSchema,
		WorkerID: ws.id,
		TTLMS:    c.cfg.LeaseTTL.Milliseconds(),
		PollMS:   c.cfg.PollInterval.Milliseconds(),
	})
}

// touchLocked refreshes a worker's liveness; reports false when the
// worker is unknown (coordinator restarted, or never registered).
func (c *Coordinator) touchLocked(id string) (*workerState, bool) {
	ws, ok := c.workers[id]
	if !ok {
		return nil, false
	}
	ws.lastSeen = time.Now()
	if ws.lost {
		ws.lost = false
		c.gWorkersLive.Add(1)
	}
	return ws, true
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeWire(w, r, &req.Schema, &req) {
		return
	}
	c.mu.Lock()
	if _, ok := c.touchLocked(req.WorkerID); !ok {
		c.mu.Unlock()
		http.Error(w, "unknown worker "+req.WorkerID, http.StatusNotFound)
		return
	}
	var lease *Lease
	for _, run := range c.runs {
		if run.failed {
			continue
		}
		for i := range run.cells {
			cell := &run.cells[i]
			if cell.state != cellPending || cell.excluded[req.WorkerID] {
				continue
			}
			c.seqLease++
			cell.state = cellLeased
			cell.leaseID = fmt.Sprintf("l-%d", c.seqLease)
			cell.worker = req.WorkerID
			cell.deadline = time.Now().Add(c.cfg.LeaseTTL)
			cell.attempt++
			ref := run.pl.Cell(i)
			lease = &Lease{
				Schema:   WireSchema,
				ID:       cell.leaseID,
				Campaign: run.id,
				Cell:     i,
				Design:   ref.Design,
				Workload: ref.Workload,
				Protect:  ref.Protect,
				Spec:     run.pl.CellSpec(i),
				TTLMS:    c.cfg.LeaseTTL.Milliseconds(),
				Attempt:  cell.attempt,
			}
			if run.campSC.Active() {
				// The cell span is recorded at completion, but its id is
				// deterministic, so the worker can parent under it now.
				lease.Traceparent = trace.FormatTraceparent(
					run.campSC.TraceID(),
					trace.SpanID(run.campSC.SpanID(), "fleet.cell", strconv.Itoa(i)))
			}
			break
		}
		if lease != nil {
			break
		}
	}
	c.mu.Unlock()
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.gLeasesActive.Add(1)
	c.cfg.Log.Info("lease granted", "lease", lease.ID, "campaign", lease.Campaign,
		"cell", lease.Cell, "worker", req.WorkerID, "attempt", lease.Attempt,
		"design", lease.Design, "workload", lease.Workload, "protect", lease.Protect)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = WriteLease(w, *lease)
}

// findLease locates the run and cell currently holding leaseID. Callers
// hold c.mu.
func (c *Coordinator) findLeaseLocked(leaseID string) (*run, int) {
	for _, r := range c.runs {
		for i := range r.cells {
			if r.cells[i].state == cellLeased && r.cells[i].leaseID == leaseID {
				return r, i
			}
		}
	}
	return nil, -1
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req Heartbeat
	if !decodeWire(w, r, &req.Schema, &req) {
		return
	}
	c.mu.Lock()
	if _, ok := c.touchLocked(req.WorkerID); !ok {
		c.mu.Unlock()
		http.Error(w, "unknown worker "+req.WorkerID, http.StatusNotFound)
		return
	}
	run, i := c.findLeaseLocked(req.LeaseID)
	if run == nil || run.cells[i].worker != req.WorkerID {
		c.mu.Unlock()
		http.Error(w, "stale lease "+req.LeaseID, http.StatusGone)
		return
	}
	run.cells[i].deadline = time.Now().Add(c.cfg.LeaseTTL)
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req Result
	if !decodeWire(w, r, &req.Schema, &req) {
		return
	}
	c.mu.Lock()
	c.touchLocked(req.WorkerID)
	run, i := c.findLeaseLocked(req.LeaseID)
	if run == nil || run.cells[i].worker != req.WorkerID || i != req.Cell || run.id != req.Campaign {
		c.mu.Unlock()
		c.cRejects.Inc()
		c.cfg.Log.Warn("result rejected", "lease", req.LeaseID, "campaign", req.Campaign,
			"cell", req.Cell, "worker", req.WorkerID, "reason", "stale or unknown lease")
		http.Error(w, "stale lease "+req.LeaseID, http.StatusGone)
		return
	}
	cell := &run.cells[i]
	if req.Error != "" {
		c.cfg.Log.Warn("cell failed", "campaign", run.id, "cell", i,
			"worker", req.WorkerID, "error", req.Error)
		c.failLocked(run, i, req.WorkerID, req.Error)
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if req.CellResult == nil || !run.pl.ValidCell(i, *req.CellResult) {
		// A structurally wrong result is a worker bug: treat it as a
		// failure so the cell is retried elsewhere, and remember it
		// against the worker.
		c.cfg.Log.Warn("cell result invalid", "campaign", run.id, "cell", i, "worker", req.WorkerID)
		c.failLocked(run, i, req.WorkerID, "")
		c.mu.Unlock()
		c.cRejects.Inc()
		http.Error(w, "cell result does not match the lease", http.StatusBadRequest)
		return
	}
	cell.state = cellDone
	cell.result = *req.CellResult
	cell.leaseID = ""
	run.left--
	left := run.left
	// The winning attempt's span subtree joins the coordinator's tree;
	// losing (stale) attempts were rejected above, so the tree stays
	// single-rooted and deterministic in shape.
	sp := run.campSC.Start("fleet.cell", strconv.Itoa(i))
	c.annotateCell(sp, run.pl.Cell(i), "computed")
	sp.SetWallAttr("worker", req.WorkerID)
	sp.SetWallAttr("attempt", strconv.Itoa(cell.attempt))
	sp.End()
	run.rec.Import(req.Spans)
	c.creditLocked(run, i)
	if left == 0 && !run.failed {
		close(run.done)
	}
	c.mu.Unlock()

	c.gLeasesActive.Add(-1)
	c.cCompleted.Inc()
	// Persist the moment the result arrives: this is the crash-resume
	// ledger. The worker also wrote it through the remote cache, but a
	// cache-less worker (or a dropped Put) must not cost resumability.
	if err := c.cfg.Cache.Put(run.pl.CellKey(i), *req.CellResult); err != nil {
		c.cfg.Log.Error("cell persist failed", "campaign", run.id, "cell", i, "error", err.Error())
	}
	c.cfg.Log.Info("cell done", "campaign", run.id, "cell", i,
		"worker", req.WorkerID, "left", left)
	w.WriteHeader(http.StatusNoContent)
}

// handleCache serves the shared content-addressed envelope store:
// GET returns the raw pilotrf-jobcache/v1 envelope (404 on miss or
// corruption — integrity is re-verified on every read), PUT stores one
// after the same verification (400 on a bad envelope).
func (c *Coordinator) handleCache(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/fleet/cache/")
	if !jobs.ValidHexKey(key) {
		http.Error(w, "malformed cache key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		c.cCacheGets.Inc()
		buf, ok := c.cfg.Cache.LoadRaw(key)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		c.cCacheHits.Inc()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf)
	case http.MethodPut:
		buf, err := io.ReadAll(io.LimitReader(r.Body, maxWireBytes+1))
		if err != nil {
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(buf) > maxWireBytes {
			http.Error(w, "envelope too large", http.StatusRequestEntityTooLarge)
			return
		}
		if c.cfg.Cache == nil {
			// No store configured: accept and drop, the worker treats the
			// remote cache as best-effort anyway.
			w.WriteHeader(http.StatusNoContent)
			return
		}
		if err := c.cfg.Cache.StoreRaw(key, buf); err != nil {
			c.cCacheBad.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.cCachePuts.Inc()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT", http.StatusMethodNotAllowed)
	}
}
