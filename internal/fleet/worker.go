package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"time"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/trace"
)

// sleep is time.Sleep, swappable in tests.
var sleep = time.Sleep

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Client issues the wire requests; nil selects http.DefaultClient.
	Client *http.Client
	// Parallel is the local pool's worker count (the capacity announced
	// at registration). Zero selects jobs.DefaultWorkers().
	Parallel int
	// Reg receives the worker-side metrics; nil creates a private
	// registry.
	Reg *telemetry.Registry
	// Log receives structured records; nil discards.
	Log *slog.Logger
	// Retry is the transport retry policy (the shared Backoff helper);
	// zero-value selects the defaults.
	Retry Policy
	// runCell, when set, replaces the campaign execution — chaos tests
	// inject hangs and failures here without simulating anything.
	runCell func(ctx context.Context, l Lease) (campaign.Cell, []trace.Span, error)
}

// Worker is one fleet worker: it registers with the coordinator, pulls
// leased cells, executes them through internal/campaign against the
// shared remote cache, and submits results, heartbeating throughout.
type Worker struct {
	cfg    WorkerConfig
	id     string
	ttl    time.Duration
	poll   time.Duration
	pool   *jobs.Pool
	cache  *jobs.Cache
	client *http.Client

	cLeases   *telemetry.Counter
	cCellsOK  *telemetry.Counter
	cCellsErr *telemetry.Counter
	cRetries  *telemetry.Counter
	cLost     *telemetry.Counter
}

// RunWorker registers with the coordinator and processes leases until
// ctx is cancelled (returns nil) or the coordinator stays unreachable
// past the retry budget (returns the transport error).
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Coordinator == "" {
		return fmt.Errorf("fleet: worker without coordinator URL")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = jobs.DefaultWorkers()
	}
	if cfg.Reg == nil {
		cfg.Reg = telemetry.NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	w := &Worker{
		cfg:       cfg,
		client:    cfg.Client,
		cLeases:   cfg.Reg.Counter("fleet_worker_leases"),
		cCellsOK:  cfg.Reg.Counter("fleet_worker_cells_ok"),
		cCellsErr: cfg.Reg.Counter("fleet_worker_cells_err"),
		cRetries:  cfg.Reg.Counter("fleet_worker_retries"),
		cLost:     cfg.Reg.Counter("fleet_worker_leases_lost"),
	}
	if cfg.runCell == nil {
		pool, err := jobs.New(jobs.Config{Workers: cfg.Parallel, Metrics: cfg.Reg})
		if err != nil {
			return err
		}
		defer pool.Close()
		w.pool = pool
		cache, err := NewRemoteCache(RemoteCacheConfig{
			Coordinator: cfg.Coordinator,
			Client:      cfg.Client,
			Retry:       cfg.Retry,
			Reg:         cfg.Reg,
			Log:         cfg.Log,
		})
		if err != nil {
			return err
		}
		w.cache = cache
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	return w.loop(ctx)
}

// fingerprint captures this process's execution environment.
func fingerprint() Fingerprint {
	host, _ := os.Hostname()
	return Fingerprint{
		Host:      host,
		PID:       os.Getpid(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// post sends one JSON wire message, retrying transport errors and 5xx
// under the policy. The response body is returned for 200s; a non-2xx
// terminal status comes back as *statusError.
func (w *Worker) post(ctx context.Context, path string, msg interface{}) ([]byte, int, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: encoding %s: %w", path, err)
	}
	bo := w.cfg.Retry.Start()
	for {
		buf, code, retryable, err := w.postOnce(ctx, path, body)
		if err == nil {
			return buf, code, nil
		}
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		if retryable {
			if d, ok := bo.Next(); ok {
				w.cRetries.Inc()
				if serr := sleepCtx(ctx, d); serr != nil {
					return nil, 0, serr
				}
				continue
			}
			return nil, code, fmt.Errorf("fleet: %s: retry budget exhausted: %w", path, err)
		}
		return buf, code, err
	}
}

func (w *Worker) postOnce(ctx context.Context, path string, body []byte) (buf []byte, code int, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, 0, true, err
	}
	defer resp.Body.Close()
	buf, rerr := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes+1))
	if rerr != nil {
		return nil, resp.StatusCode, true, fmt.Errorf("fleet: %s: reading response: %w", path, rerr)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return buf, resp.StatusCode, false, nil
	case resp.StatusCode >= 500:
		return nil, resp.StatusCode, true, fmt.Errorf("fleet: %s: HTTP %d", path, resp.StatusCode)
	default:
		return buf, resp.StatusCode, false, fmt.Errorf("fleet: %s: HTTP %d: %s", path, resp.StatusCode, firstLine(buf))
	}
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// register announces the worker and adopts the coordinator's timing.
func (w *Worker) register(ctx context.Context) error {
	buf, _, err := w.post(ctx, "/v1/fleet/register", RegisterRequest{
		Schema:      WireSchema,
		Fingerprint: fingerprint(),
		Capacity:    w.cfg.Parallel,
	})
	if err != nil {
		return fmt.Errorf("fleet: registering: %w", err)
	}
	var resp RegisterResponse
	if err := json.Unmarshal(buf, &resp); err != nil || resp.Schema != WireSchema || resp.WorkerID == "" {
		return fmt.Errorf("fleet: malformed register response %q", firstLine(buf))
	}
	w.id = resp.WorkerID
	w.ttl = time.Duration(resp.TTLMS) * time.Millisecond
	w.poll = time.Duration(resp.PollMS) * time.Millisecond
	if w.ttl <= 0 {
		w.ttl = 10 * time.Second
	}
	if w.poll <= 0 {
		w.poll = 500 * time.Millisecond
	}
	w.cfg.Log.Info("registered", "worker", w.id, "ttl", w.ttl.String(), "poll", w.poll.String())
	return nil
}

// loop pulls and executes leases until ctx ends.
func (w *Worker) loop(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		buf, code, err := w.post(ctx, "/v1/fleet/lease", LeaseRequest{Schema: WireSchema, WorkerID: w.id})
		switch {
		case ctx.Err() != nil:
			return nil
		case code == http.StatusNotFound:
			// Coordinator restarted and forgot us: re-register.
			w.cfg.Log.Warn("coordinator forgot worker, re-registering", "worker", w.id)
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		case err != nil:
			return err
		case code == http.StatusNoContent:
			if serr := sleepCtx(ctx, w.poll); serr != nil {
				return nil
			}
			continue
		}
		lease, err := ReadLease(bytes.NewReader(buf))
		if err != nil {
			w.cfg.Log.Error("dropping malformed lease", "error", err.Error())
			continue
		}
		w.cLeases.Inc()
		w.execute(ctx, lease)
	}
}

// execute runs one leased cell under a heartbeat and submits the
// terminal result.
func (w *Worker) execute(ctx context.Context, l Lease) {
	w.cfg.Log.Info("executing cell", "lease", l.ID, "campaign", l.Campaign, "cell", l.Cell,
		"design", l.Design, "workload", l.Workload, "protect", l.Protect, "attempt", l.Attempt)

	// The heartbeat goroutine renews the lease at TTL/3; a 410 means the
	// lease was re-queued under us (we were presumed dead) — stop
	// computing, the result would be rejected anyway.
	cellCtx, cancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(w.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-cellCtx.Done():
				return
			case <-tick.C:
				_, code, err := w.post(cellCtx, "/v1/fleet/heartbeat", Heartbeat{
					Schema: WireSchema, WorkerID: w.id, LeaseID: l.ID,
				})
				if code == http.StatusGone || code == http.StatusNotFound {
					w.cfg.Log.Warn("lease lost", "lease", l.ID, "code", code)
					w.cLost.Inc()
					cancel()
					return
				}
				if err != nil && cellCtx.Err() == nil {
					w.cfg.Log.Warn("heartbeat failed", "lease", l.ID, "error", err.Error())
				}
			}
		}
	}()

	cell, spans, err := w.runCell(cellCtx, l)
	leaseLost := cellCtx.Err() != nil // read before cancel below taints it
	cancel()
	<-hbDone

	if ctx.Err() != nil {
		return // worker shutting down; the lease will expire and re-queue
	}
	if leaseLost {
		// Lease re-queued under us mid-run: nothing to submit, the cell
		// is already someone else's.
		return
	}
	res := Result{
		Schema:   WireSchema,
		WorkerID: w.id,
		LeaseID:  l.ID,
		Campaign: l.Campaign,
		Cell:     l.Cell,
	}
	if err != nil {
		w.cCellsErr.Inc()
		res.Error = err.Error()
		w.cfg.Log.Warn("cell failed", "lease", l.ID, "cell", l.Cell, "error", err.Error())
	} else {
		w.cCellsOK.Inc()
		res.CellResult = &cell
		res.Spans = spans
		w.cfg.Log.Info("cell done", "lease", l.ID, "cell", l.Cell)
	}
	_, code, serr := w.post(ctx, "/v1/fleet/result", res)
	if code == http.StatusGone {
		w.cLost.Inc()
		w.cfg.Log.Warn("result rejected as stale", "lease", l.ID)
		return
	}
	if serr != nil && ctx.Err() == nil {
		w.cfg.Log.Error("result submit failed", "lease", l.ID, "error", serr.Error())
	}
}

// runCell executes the lease's single-cell campaign spec through
// internal/campaign, recording a deterministic span subtree rooted
// under the lease's traceparent.
func (w *Worker) runCell(ctx context.Context, l Lease) (campaign.Cell, []trace.Span, error) {
	if w.cfg.runCell != nil {
		return w.cfg.runCell(ctx, l)
	}
	rec := trace.NewRecorder(false)
	if tid, sid, ok := trace.ParseTraceparent(l.Traceparent); ok {
		ctx = trace.NewContext(ctx, rec.Adopt(tid, sid))
	}
	report, err := campaign.Run(ctx, l.Spec, campaign.Options{
		Pool:  w.pool,
		Cache: w.cache,
		Trace: rec,
	})
	if err != nil {
		return campaign.Cell{}, nil, err
	}
	if len(report.Cells) != 1 {
		return campaign.Cell{}, nil, fmt.Errorf("fleet: cell spec produced %d cells, want 1", len(report.Cells))
	}
	return report.Cells[0], rec.Spans(), nil
}
