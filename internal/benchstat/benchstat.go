// Package benchstat turns multi-sample benchmark timings into gateable
// verdicts. The simulator's own metrics are deterministic and compared
// bit-for-bit elsewhere; wall-clock ns/op is the one genuinely noisy
// quantity in a bench run, so this package gives it the treatment noise
// deserves: robust per-sample-set summaries (median/MAD/min/max) and a
// deterministic exact Mann-Whitney U test between two sample sets, with
// a configurable significance level and minimum effect size so that a
// verdict requires both statistical evidence and practical relevance.
//
// Everything here is pure arithmetic over the input slices: no clocks,
// no randomness, no global state. Identical inputs always produce
// identical outputs, which is what lets cmd/benchwatch promise
// byte-reproducible gate reports.
package benchstat

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a robust description of one ns/op sample vector.
type Summary struct {
	// N is the sample count.
	N int
	// Median is the middle sample (mean of the middle two when N is
	// even).
	Median float64
	// MAD is the median absolute deviation from the median — a robust
	// spread estimate unaffected by a single outlier sample.
	MAD float64
	// Min and Max bound the samples.
	Min, Max float64
}

// Summarize computes the robust summary of a sample vector. It panics
// on an empty input: callers validate sample vectors at the file-format
// boundary (benchstore rejects empty vectors), so an empty slice here
// is a programming error, not bad data.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		panic("benchstat: Summarize on empty sample vector")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	med := median(s)
	dev := make([]float64, len(s))
	for i, v := range s {
		dev[i] = math.Abs(v - med)
	}
	sort.Float64s(dev)
	return Summary{
		N:      len(s),
		Median: med,
		MAD:    median(dev),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// median of an already-sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// AllEqual reports whether every sample is bit-identical to the first
// (so NaN == NaN here, and +0 differs from -0). Deterministic metrics
// are required to pass this across samples of one run; any variance in
// them is a simulator bug, not noise.
func AllEqual(samples []float64) bool {
	for i := 1; i < len(samples); i++ {
		if math.Float64bits(samples[i]) != math.Float64bits(samples[0]) {
			return false
		}
	}
	return true
}

// exactLimit bounds the number of enumerated subsets in the exact
// permutation test. C(10,5)=252, C(18,9)=48620, C(20,10)=184756 are all
// comfortably under it; beyond, MannWhitneyU falls back to the normal
// approximation (still deterministic).
const exactLimit = 500_000

// MannWhitneyU runs a two-sided Mann-Whitney U test on two sample
// vectors. It returns the U statistic for x and the two-sided p-value.
//
// For small inputs (C(n+m, n) <= 500000, which covers every realistic
// benchmark sample count) the p-value is exact: every assignment of the
// pooled midranks to the two groups is enumerated, in integer
// arithmetic (midranks doubled so ties stay exact), so the result is
// bit-reproducible and correct under ties. Larger inputs use the
// tie-corrected normal approximation, which is equally deterministic.
//
// Either vector empty returns U=0, p=1: no evidence either way.
func MannWhitneyU(x, y []float64) (u, p float64) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0, 1
	}

	// Pool, sort, and assign midranks doubled (so they are integers
	// even for ties between an even number of samples).
	pooled := make([]float64, 0, n+m)
	pooled = append(pooled, x...)
	pooled = append(pooled, y...)
	sort.Float64s(pooled)
	rank2 := make(map[float64]int64, n+m) // value -> doubled midrank
	tieGroups := make([]int64, 0, n+m)
	for i := 0; i < len(pooled); {
		j := i
		for j < len(pooled) && pooled[j] == pooled[i] {
			j++
		}
		// ranks i+1..j, midrank = (i+1+j)/2, doubled = i+1+j.
		rank2[pooled[i]] = int64(i + 1 + j)
		tieGroups = append(tieGroups, int64(j-i))
		i = j
	}

	// Observed doubled rank sum for x, and U from it:
	// U = R - n(n+1)/2, so 2U = 2R - n(n+1).
	var r2 int64
	for _, v := range x {
		r2 += rank2[v]
	}
	u2 := r2 - int64(n)*int64(n+1)

	// Doubled midranks of the pooled values, one per sample.
	pooled2 := make([]int64, n+m)
	for i, v := range pooled {
		pooled2[i] = rank2[v]
	}

	if binomial(n+m, n) <= exactLimit {
		p = exactTwoSidedP(pooled2, n, u2)
	} else {
		p = normalTwoSidedP(tieGroups, n, m, u2)
	}
	return float64(u2) / 2, p
}

// binomial returns C(n, k), saturating at exactLimit+1 to avoid
// overflow on absurd inputs.
func binomial(n, k int) int64 {
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
		if c > exactLimit {
			return exactLimit + 1
		}
	}
	return c
}

// exactTwoSidedP enumerates every size-n subset of the pooled doubled
// midranks and counts assignments whose U deviates from the null mean
// at least as much as the observed one. Integer arithmetic throughout:
// with doubled ranks, both 2U and the doubled null mean n*m are exact.
func exactTwoSidedP(pooled2 []int64, n int, obsU2 int64) float64 {
	total := len(pooled2)
	m := total - n
	// 2*E[U] under the null is n*m.
	mean2 := int64(n) * int64(m)
	obsDev := abs64(obsU2 - mean2)

	var count, extreme int64
	var walk func(start, depth int, sum2 int64)
	walk = func(start, depth int, sum2 int64) {
		if depth == n {
			count++
			u2 := sum2 - int64(n)*int64(n+1)
			if abs64(u2-mean2) >= obsDev {
				extreme++
			}
			return
		}
		for i := start; i <= total-(n-depth); i++ {
			walk(i+1, depth+1, sum2+pooled2[i])
		}
	}
	walk(0, 0, 0)
	return float64(extreme) / float64(count)
}

// normalTwoSidedP is the tie-corrected normal approximation, used only
// past the exact enumeration limit.
func normalTwoSidedP(tieGroups []int64, n, m int, u2 int64) float64 {
	fn, fm := float64(n), float64(m)
	nTot := fn + fm
	mean := fn * fm / 2
	tieCorr := 0.0
	for _, t := range tieGroups {
		ft := float64(t)
		tieCorr += ft*ft*ft - ft
	}
	variance := fn * fm / 12 * (nTot + 1 - tieCorr/(nTot*(nTot-1)))
	if variance <= 0 {
		return 1 // every pooled value tied: no evidence possible
	}
	z := math.Abs(float64(u2)/2-mean) / math.Sqrt(variance)
	return math.Erfc(z / math.Sqrt2)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// MinAttainableP is the smallest two-sided p-value any outcome can
// reach with n and m samples and no ties: 2/C(n+m, n). If it exceeds
// the chosen alpha, the sample counts are structurally too small to
// ever flag anything — worth surfacing instead of silently passing.
func MinAttainableP(n, m int) float64 {
	if n == 0 || m == 0 {
		return 1
	}
	c := binomial(n+m, n)
	if c > exactLimit {
		return 0 // effectively unbounded resolution
	}
	p := 2 / float64(c)
	if p > 1 {
		p = 1
	}
	return p
}

// Verdict classifies a comparison of two ns/op sample vectors.
type Verdict int

const (
	// Indistinguishable: no statistically significant difference at the
	// chosen alpha, or a significant one smaller than the minimum
	// effect size.
	Indistinguishable Verdict = iota
	// Slower: new is significantly slower than old by at least the
	// minimum effect — a gateable regression.
	Slower
	// Faster: new is significantly faster than old by at least the
	// minimum effect — an improvement, reported but never gated.
	Faster
)

// String names the verdict the way the gate prints it.
func (v Verdict) String() string {
	switch v {
	case Slower:
		return "SLOWER"
	case Faster:
		return "FASTER"
	default:
		return "indistinguishable"
	}
}

// Comparison is the full result of comparing old vs new sample vectors.
type Comparison struct {
	// Verdict is the classification under the given alpha and minimum
	// effect size.
	Verdict Verdict
	// U and P are the Mann-Whitney statistic and two-sided p-value.
	U, P float64
	// OldMedian and NewMedian summarize the two vectors.
	OldMedian, NewMedian float64
	// Effect is the relative median change (new-old)/old; +1.0 is a 2x
	// slowdown. 0 when the old median is 0.
	Effect float64
	// MinP is the smallest p-value attainable at these sample counts;
	// when MinP > alpha the comparison is structurally underpowered.
	MinP float64
}

// Underpowered reports whether no outcome at these sample counts could
// have reached significance at the given alpha.
func (c Comparison) Underpowered(alpha float64) bool {
	return c.MinP > alpha
}

// Compare runs the Mann-Whitney test and applies the decision rule: a
// verdict of Slower or Faster requires p < alpha AND a relative median
// change of at least minEffect. alpha must be in (0, 1) and minEffect
// non-negative; Compare panics otherwise (flag validation happens at
// the CLI boundary).
func Compare(old, new []float64, alpha, minEffect float64) Comparison {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("benchstat: alpha %v outside (0, 1)", alpha))
	}
	if minEffect < 0 || math.IsNaN(minEffect) {
		panic(fmt.Sprintf("benchstat: negative min effect %v", minEffect))
	}
	u, p := MannWhitneyU(old, new)
	c := Comparison{
		U:    u,
		P:    p,
		MinP: MinAttainableP(len(old), len(new)),
	}
	if len(old) > 0 {
		c.OldMedian = Summarize(old).Median
	}
	if len(new) > 0 {
		c.NewMedian = Summarize(new).Median
	}
	if c.OldMedian != 0 {
		c.Effect = (c.NewMedian - c.OldMedian) / c.OldMedian
	}
	if p < alpha && math.Abs(c.Effect) >= minEffect {
		if c.Effect > 0 {
			c.Verdict = Slower
		} else if c.Effect < 0 {
			c.Verdict = Faster
		}
	}
	return c
}
