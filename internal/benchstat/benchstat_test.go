package benchstat

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	// deviations from 3: {2,2,1,1,0} -> MAD 1
	if s.MAD != 1 {
		t.Errorf("MAD = %v, want 1", s.MAD)
	}

	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %v, want 2.5", even.Median)
	}

	one := Summarize([]float64{7})
	if one.Median != 7 || one.MAD != 0 || one.Min != 7 || one.Max != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Summarize(nil)
}

func TestAllEqual(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		samples []float64
		want    bool
	}{
		{nil, true},
		{[]float64{1}, true},
		{[]float64{1, 1, 1}, true},
		{[]float64{1, 1.0000001}, false},
		{[]float64{nan, nan}, true}, // bit-identity, not IEEE equality
		{[]float64{0, math.Copysign(0, -1)}, false},
	} {
		if got := AllEqual(tc.samples); got != tc.want {
			t.Errorf("AllEqual(%v) = %v, want %v", tc.samples, got, tc.want)
		}
	}
}

// TestMannWhitneyKnownValues pins exact p-values that can be checked by
// hand (and against R's wilcox.test with exact=TRUE).
func TestMannWhitneyKnownValues(t *testing.T) {
	// Complete separation at n=m=3: U=0, p = 2/C(6,3) = 0.1.
	u, p := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if u != 0 {
		t.Errorf("U = %v, want 0", u)
	}
	if math.Abs(p-0.1) > 1e-12 {
		t.Errorf("p = %v, want 0.1", p)
	}

	// Complete separation at n=m=5: p = 2/C(10,5) = 2/252.
	_, p = MannWhitneyU([]float64{1, 2, 3, 4, 5}, []float64{10, 11, 12, 13, 14})
	if want := 2.0 / 252; math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}

	// Identical constant vectors: everything tied, p must be 1.
	_, p = MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5})
	if p != 1 {
		t.Errorf("all-tied p = %v, want 1", p)
	}

	// Empty side: no evidence.
	if _, p := MannWhitneyU(nil, []float64{1}); p != 1 {
		t.Errorf("empty-side p = %v, want 1", p)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	x := []float64{1.5, 2.5, 2.5, 9}
	y := []float64{2.5, 3, 4, 4, 8}
	ux, px := MannWhitneyU(x, y)
	uy, py := MannWhitneyU(y, x)
	if px != py {
		t.Errorf("p not symmetric: %v vs %v", px, py)
	}
	if got, want := ux+uy, float64(len(x)*len(y)); got != want {
		t.Errorf("Ux+Uy = %v, want n*m = %v", got, want)
	}
	if px <= 0 || px > 1 {
		t.Errorf("p = %v outside (0, 1]", px)
	}
}

// TestMannWhitneyDeterministic: identical inputs always give identical
// bits, including through the normal-approximation path.
func TestMannWhitneyDeterministic(t *testing.T) {
	big := func(base float64) []float64 {
		out := make([]float64, 15) // C(30,15) is past the exact limit
		for i := range out {
			out[i] = base + float64(i%4)*0.01
		}
		return out
	}
	x, y := big(1.0), big(2.0)
	u1, p1 := MannWhitneyU(x, y)
	u2, p2 := MannWhitneyU(x, y)
	if u1 != u2 || math.Float64bits(p1) != math.Float64bits(p2) {
		t.Errorf("nondeterministic: (%v,%v) vs (%v,%v)", u1, p1, u2, p2)
	}
	if p1 > 1e-4 {
		t.Errorf("separated 15v15 p = %v, want tiny", p1)
	}
}

func TestMinAttainableP(t *testing.T) {
	if got, want := MinAttainableP(3, 3), 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("MinAttainableP(3,3) = %v, want %v", got, want)
	}
	if got, want := MinAttainableP(5, 5), 2.0/252; math.Abs(got-want) > 1e-12 {
		t.Errorf("MinAttainableP(5,5) = %v, want %v", got, want)
	}
	if got := MinAttainableP(1, 1); got != 1 {
		t.Errorf("MinAttainableP(1,1) = %v, want 1", got)
	}
	if got := MinAttainableP(0, 5); got != 1 {
		t.Errorf("MinAttainableP(0,5) = %v, want 1", got)
	}
	if got := MinAttainableP(15, 15); got != 0 {
		t.Errorf("MinAttainableP(15,15) = %v, want 0 (normal path)", got)
	}
}

// TestCompare2xSlowdownAt5Samples is the acceptance case: a synthetic
// 2x ns/op slowdown at 5 samples per side must be flagged.
func TestCompare2xSlowdownAt5Samples(t *testing.T) {
	old := []float64{100, 101, 99, 100.5, 99.5}
	slow := []float64{200, 202, 198, 201, 199}
	c := Compare(old, slow, 0.05, 0.10)
	if c.Verdict != Slower {
		t.Fatalf("verdict = %v (p=%v effect=%v), want SLOWER", c.Verdict, c.P, c.Effect)
	}
	if math.Abs(c.Effect-1.0) > 0.05 {
		t.Errorf("effect = %v, want ~1.0 (2x)", c.Effect)
	}
	if c.Underpowered(0.05) {
		t.Error("5v5 must not be underpowered at alpha 0.05")
	}

	// The mirror image is an improvement, not a regression.
	if c := Compare(slow, old, 0.05, 0.10); c.Verdict != Faster {
		t.Errorf("mirror verdict = %v, want FASTER", c.Verdict)
	}
}

// TestCompareIdenticalSetsNotFlagged: re-running the exact same sample
// set must never be flagged.
func TestCompareIdenticalSetsNotFlagged(t *testing.T) {
	s := []float64{100, 105, 98, 102, 101}
	c := Compare(s, s, 0.05, 0)
	if c.Verdict != Indistinguishable {
		t.Fatalf("verdict = %v (p=%v), want indistinguishable", c.Verdict, c.P)
	}
	if c.P != 1 {
		t.Errorf("identical-set p = %v, want 1", c.P)
	}
}

// TestCompareMinEffectSuppresses: a statistically significant but tiny
// shift stays indistinguishable when it is below the minimum effect.
func TestCompareMinEffectSuppresses(t *testing.T) {
	old := []float64{100, 100.1, 99.9, 100.05, 99.95}
	new := []float64{101, 101.1, 100.9, 101.05, 100.95} // +1%, fully separated
	if c := Compare(old, new, 0.05, 0); c.Verdict != Slower {
		t.Fatalf("zero min-effect: verdict = %v (p=%v), want SLOWER", c.Verdict, c.P)
	}
	if c := Compare(old, new, 0.05, 0.10); c.Verdict != Indistinguishable {
		t.Errorf("10%% min-effect: verdict = %v, want indistinguishable", c.Verdict)
	}
}

// TestCompareUnderpowered: 1v1 can never reach significance; the
// comparison must say so rather than flag or silently pass.
func TestCompareUnderpowered(t *testing.T) {
	c := Compare([]float64{100}, []float64{500}, 0.05, 0.10)
	if c.Verdict != Indistinguishable {
		t.Errorf("1v1 verdict = %v, want indistinguishable", c.Verdict)
	}
	if !c.Underpowered(0.05) {
		t.Errorf("1v1 MinP = %v, should be underpowered at 0.05", c.MinP)
	}
}

func TestCompareBadParamsPanic(t *testing.T) {
	for _, tc := range []struct{ alpha, minEffect float64 }{
		{0, 0}, {1, 0}, {-0.05, 0}, {0.05, -1}, {0.05, math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for alpha=%v minEffect=%v", tc.alpha, tc.minEffect)
				}
			}()
			Compare([]float64{1}, []float64{2}, tc.alpha, tc.minEffect)
		}()
	}
}

// TestExactMatchesNormalApproximation: on a moderate untied input the
// exact p and the normal approximation should roughly agree, guarding
// against a sign or scale slip in either path.
func TestExactMatchesNormalApproximation(t *testing.T) {
	x := []float64{1, 4, 6, 9, 12, 15, 17, 20}
	y := []float64{2, 3, 7, 8, 13, 16, 19, 22}
	u, pExact := MannWhitneyU(x, y)
	// Untied data: doubled U is exact, tie groups are all singletons
	// (zero correction).
	pNormal := normalTwoSidedP(nil, len(x), len(y), int64(2*u))
	if math.Abs(pExact-pNormal) > 0.1 {
		t.Errorf("exact %v vs normal %v diverge", pExact, pNormal)
	}
}
