// Package ref is a reference interpreter for the ISA: a purely
// functional executor with no pipeline, no banks, and no timing. It
// exists to validate the cycle-level simulator by differential testing —
// both engines must agree exactly on instruction counts, active-lane
// counts, register access histograms, and final register values, because
// the simulator's functional layer and this interpreter implement the
// same architectural specification independently.
package ref

import (
	"fmt"
	"math"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/stats"
)

// Result is the interpreter's account of one kernel execution.
type Result struct {
	// WarpInstrs counts executed warp instructions; ThreadInstrs
	// weights them by active lanes.
	WarpInstrs   uint64
	ThreadInstrs uint64
	// RegReads/RegWrites count warp-level register operand accesses
	// (RZ excluded), exactly as the simulator counts them at issue.
	RegReads  uint64
	RegWrites uint64
	// RegHist is the per-architected-register access histogram.
	RegHist *stats.Histogram
}

// TotalAccesses returns reads plus writes.
func (r *Result) TotalAccesses() uint64 { return r.RegReads + r.RegWrites }

type simtEntry struct {
	pc   int
	rpc  int
	mask uint32
}

// warp is one warp's functional state.
type warp struct {
	inCTA   int
	ctaID   int
	ntid    int // threads per CTA (SR_NTID)
	nctaid  int // CTAs in the grid (SR_NCTAID)
	stack   []simtEntry
	regs    [][32]uint32
	preds   [isa.NumPreds]uint32
	atBar   bool
	retired bool
}

// Run interprets the kernel to completion and returns the execution
// account. seed selects the memory contents (isa.MemValue).
func Run(k *kernel.Kernel, seed uint64) (*Result, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	res := &Result{RegHist: stats.NewHistogram(k.Prog.NumRegs)}
	for cta := 0; cta < k.NumCTAs; cta++ {
		if err := runCTA(k, cta, seed, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runCTA interprets one CTA: warps run round-robin at barrier
// granularity (each warp executes until it hits a barrier or exits;
// barriers release when every live warp has arrived). Workloads carry no
// inter-warp data dependences, so this schedule is functionally
// equivalent to any other.
func runCTA(k *kernel.Kernel, ctaID int, seed uint64, res *Result) error {
	nWarps := k.WarpsPerCTA()
	warps := make([]*warp, nWarps)
	for i := range warps {
		threads := ^uint32(0)
		if rem := k.ThreadsPerCTA - i*32; rem < 32 {
			threads = (1 << uint(rem)) - 1
		}
		warps[i] = &warp{
			inCTA:  i,
			ctaID:  ctaID,
			ntid:   k.ThreadsPerCTA,
			nctaid: k.NumCTAs,
			regs:   make([][32]uint32, k.Prog.NumRegs),
			stack:  []simtEntry{{pc: 0, rpc: -1, mask: threads}},
		}
	}
	live := nWarps
	for live > 0 {
		progress := false
		arrived := 0
		for _, w := range warps {
			if w.retired || w.atBar {
				if w.atBar {
					arrived++
				}
				continue
			}
			stepped, err := runWarpUntilBarrier(k, w, seed, res)
			if err != nil {
				return err
			}
			progress = progress || stepped
			if w.retired {
				live--
			} else if w.atBar {
				arrived++
			}
		}
		// Barrier release: all live warps arrived.
		if live > 0 && arrived == live {
			for _, w := range warps {
				w.atBar = false
			}
			progress = true
		}
		if !progress && live > 0 {
			return fmt.Errorf("ref: CTA %d deadlocked at a barrier", ctaID)
		}
	}
	return nil
}

// runWarpUntilBarrier executes instructions until the warp blocks at a
// barrier or all lanes exit. It returns whether any instruction executed.
func runWarpUntilBarrier(k *kernel.Kernel, w *warp, seed uint64, res *Result) (bool, error) {
	stepped := false
	const fuel = 50_000_000 // runaway-loop backstop
	for i := 0; i < fuel; i++ {
		if len(w.stack) == 0 {
			w.retired = true
			return stepped, nil
		}
		in := k.Prog.At(w.top().pc)
		stepped = true
		if done := step(w, in, seed, res); done {
			return stepped, nil // barrier
		}
		if len(w.stack) == 0 {
			w.retired = true
			return stepped, nil
		}
	}
	return stepped, fmt.Errorf("ref: warp %d of CTA %d exceeded the instruction budget", w.inCTA, w.ctaID)
}

func (w *warp) top() *simtEntry { return &w.stack[len(w.stack)-1] }

func (w *warp) normalize() {
	for len(w.stack) > 0 {
		t := w.top()
		if t.mask == 0 || (t.rpc >= 0 && t.pc == t.rpc) {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
}

func (w *warp) predMask(g isa.Guard) uint32 {
	var m uint32
	if g.Pred == isa.PT {
		m = ^uint32(0)
	} else {
		m = w.preds[g.Pred]
	}
	if g.Neg {
		m = ^m
	}
	return m
}

// count records the instruction's operand accesses, mirroring the
// simulator's at-issue accounting.
func count(in *isa.Instruction, res *Result) {
	var srcs [3]isa.Reg
	for _, r := range in.SrcRegs(srcs[:0]) {
		res.RegReads++
		res.RegHist.Inc(int(r))
	}
	if d, ok := in.DstReg(); ok {
		res.RegWrites++
		res.RegHist.Inc(int(d))
	}
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// step executes one instruction; it returns true when the warp must wait
// at a barrier.
func step(w *warp, in *isa.Instruction, seed uint64, res *Result) bool {
	active := w.top().mask
	res.WarpInstrs++
	res.ThreadInstrs += uint64(popcount(active))

	switch in.Op {
	case isa.OpBRA:
		taken := active & w.predMask(in.Guard)
		t := w.top()
		fallthroughPC := t.pc + 1
		nt := t.mask &^ taken
		switch {
		case taken == 0:
			t.pc = fallthroughPC
		case nt == 0:
			t.pc = in.Target
		default:
			t.pc = in.Reconv
			if fallthroughPC != in.Reconv {
				w.stack = append(w.stack, simtEntry{pc: fallthroughPC, rpc: in.Reconv, mask: nt})
			}
			if in.Target != in.Reconv {
				w.stack = append(w.stack, simtEntry{pc: in.Target, rpc: in.Reconv, mask: taken})
			}
		}
		w.normalize()
		return false
	case isa.OpEXIT:
		exitMask := active & w.predMask(in.Guard)
		kept := w.stack[:0]
		for _, e := range w.stack {
			e.mask &^= exitMask
			if e.mask != 0 {
				kept = append(kept, e)
			}
		}
		w.stack = kept
		if len(w.stack) > 0 {
			// Lanes that did not exit continue past the EXIT.
			if exitMask != active {
				w.top().pc++
			}
			w.normalize()
		}
		return false
	case isa.OpBAR:
		w.top().pc++
		w.normalize()
		w.atBar = true
		return true
	case isa.OpNOP:
		w.top().pc++
		w.normalize()
		return false
	}

	execMask := active & w.predMask(in.Guard)
	if execMask != 0 {
		count(in, res)
		if in.Op == isa.OpSHFL {
			execShuffle(w, in, execMask)
		} else {
			for lane := 0; lane < 32; lane++ {
				if execMask&(1<<uint(lane)) != 0 {
					execLane(w, in, lane, seed)
				}
			}
		}
	}
	w.top().pc++
	w.normalize()
	return false
}

// execShuffle mirrors the cross-lane warp shuffle: read SrcA of the lane
// chosen by each lane's SrcB, via a snapshot so writes cannot interfere.
func execShuffle(w *warp, in *isa.Instruction, execMask uint32) {
	var src [32]uint32
	if in.SrcA != isa.RZ {
		src = w.regs[in.SrcA]
	}
	for lane := 0; lane < 32; lane++ {
		if execMask&(1<<uint(lane)) == 0 {
			continue
		}
		sel := 0
		if in.SrcB != isa.RZ {
			sel = int(w.regs[in.SrcB][lane] & 31)
		}
		if in.Dst != isa.RZ {
			w.regs[in.Dst][lane] = src[sel]
		}
	}
}

// execLane applies one lane's semantics.
func execLane(w *warp, in *isa.Instruction, lane int, seed uint64) {
	rd := func(r isa.Reg) uint32 {
		if r == isa.RZ {
			return 0
		}
		return w.regs[r][lane]
	}
	wr := func(v uint32) {
		if in.Dst == isa.RZ {
			return
		}
		w.regs[in.Dst][lane] = v
	}
	rdf := func(r isa.Reg) float32 { return math.Float32frombits(rd(r)) }
	wrf := func(v float32) { wr(math.Float32bits(v)) }
	setp := func(v bool) {
		if !in.PDst.Valid() {
			return
		}
		bit := uint32(1) << uint(lane)
		if v {
			w.preds[in.PDst] |= bit
		} else {
			w.preds[in.PDst] &^= bit
		}
	}

	switch in.Op {
	case isa.OpMOV:
		wr(rd(in.SrcA))
	case isa.OpMOVI:
		wr(uint32(in.Imm))
	case isa.OpS2R:
		wr(specialValue(w, in.Special, lane))
	case isa.OpIADD:
		wr(rd(in.SrcA) + rd(in.SrcB))
	case isa.OpIADDI:
		wr(rd(in.SrcA) + uint32(in.Imm))
	case isa.OpISUB:
		wr(rd(in.SrcA) - rd(in.SrcB))
	case isa.OpIMUL:
		wr(rd(in.SrcA) * rd(in.SrcB))
	case isa.OpIMULI:
		wr(rd(in.SrcA) * uint32(in.Imm))
	case isa.OpIMAD:
		wr(rd(in.SrcA)*rd(in.SrcB) + rd(in.SrcC))
	case isa.OpAND:
		wr(rd(in.SrcA) & rd(in.SrcB))
	case isa.OpANDI:
		wr(rd(in.SrcA) & uint32(in.Imm))
	case isa.OpOR:
		wr(rd(in.SrcA) | rd(in.SrcB))
	case isa.OpXOR:
		wr(rd(in.SrcA) ^ rd(in.SrcB))
	case isa.OpSHLI:
		wr(rd(in.SrcA) << (uint32(in.Imm) & 31))
	case isa.OpSHRI:
		wr(rd(in.SrcA) >> (uint32(in.Imm) & 31))
	case isa.OpIMIN:
		if int32(rd(in.SrcA)) < int32(rd(in.SrcB)) {
			wr(rd(in.SrcA))
		} else {
			wr(rd(in.SrcB))
		}
	case isa.OpIMAX:
		if int32(rd(in.SrcA)) > int32(rd(in.SrcB)) {
			wr(rd(in.SrcA))
		} else {
			wr(rd(in.SrcB))
		}
	case isa.OpSEL:
		if w.preds[in.SrcPred]&(1<<uint(lane)) != 0 {
			wr(rd(in.SrcA))
		} else {
			wr(rd(in.SrcB))
		}
	case isa.OpSETP:
		setp(in.Cmp.Eval(int32(rd(in.SrcA)), int32(rd(in.SrcB))))
	case isa.OpSETPI:
		setp(in.Cmp.Eval(int32(rd(in.SrcA)), in.Imm))
	case isa.OpFADD:
		wrf(rdf(in.SrcA) + rdf(in.SrcB))
	case isa.OpFMUL:
		wrf(rdf(in.SrcA) * rdf(in.SrcB))
	case isa.OpFFMA:
		wrf(rdf(in.SrcA)*rdf(in.SrcB) + rdf(in.SrcC))
	case isa.OpFRCP:
		wrf(1 / rdf(in.SrcA))
	case isa.OpFSQRT:
		wrf(float32(math.Sqrt(math.Abs(float64(rdf(in.SrcA))))))
	case isa.OpFEXP:
		wrf(float32(math.Exp2(float64(rdf(in.SrcA)))))
	case isa.OpLDG, isa.OpLDS:
		wr(isa.MemValue(rd(in.SrcA)+uint32(in.Imm), seed))
	case isa.OpSTG, isa.OpSTS:
		// Store values are never read back; see isa.MemValue.
	default:
		panic(fmt.Sprintf("ref: unexpected opcode %v", in.Op))
	}
}

func specialValue(w *warp, sp isa.Special, lane int) uint32 {
	switch sp {
	case isa.SRTid:
		return uint32(w.inCTA*32 + lane)
	case isa.SRCTAid:
		return uint32(w.ctaID)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarpID:
		return uint32(w.inCTA)
	case isa.SRNTid:
		return uint32(w.ntid)
	case isa.SRNCTAid:
		return uint32(w.nctaid)
	default:
		panic(fmt.Sprintf("ref: unknown special %v", sp))
	}
}
