package ref

import (
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

func TestSimpleKernelCounts(t *testing.T) {
	b := kernel.NewBuilder("simple", 4)
	b.MOVI(isa.R(0), 1)
	b.MOVI(isa.R(1), 2)
	b.IADD(isa.R(2), isa.R(0), isa.R(1))
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 64, NumCTAs: 2}
	res, err := Run(k, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 2 CTAs x 2 warps x 4 instructions.
	if res.WarpInstrs != 16 {
		t.Errorf("WarpInstrs = %d, want 16", res.WarpInstrs)
	}
	if res.ThreadInstrs != 2*64*4 {
		t.Errorf("ThreadInstrs = %d, want %d", res.ThreadInstrs, 2*64*4)
	}
	// Per warp: 2 reads (IADD), 3 writes.
	if res.RegReads != 8 || res.RegWrites != 12 {
		t.Errorf("accesses = %d/%d, want 8/12", res.RegReads, res.RegWrites)
	}
}

func TestBarrierRoundRobin(t *testing.T) {
	b := kernel.NewBuilder("bar", 4)
	b.S2R(isa.R(0), isa.SRTid)
	b.BAR()
	b.IADDI(isa.R(1), isa.R(0), 1)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 128, NumCTAs: 1}
	res, err := Run(k, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WarpInstrs != 4*4 {
		t.Errorf("WarpInstrs = %d, want 16", res.WarpInstrs)
	}
}

func TestInvalidKernelRejected(t *testing.T) {
	b := kernel.NewBuilder("k", 4)
	b.EXIT()
	k := &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 0, NumCTAs: 1}
	if _, err := Run(k, 1); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

// divergentExit exercises the case that once held a simulator bug: a
// divergent path that exits entirely must not disturb the reconvergence
// entry's program counter.
func divergentExitKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("divexit", 6)
	b.S2R(isa.R(0), isa.SRLane)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpLT, 8)
	b.If(isa.P(0), false, func() {
		b.EXIT() // lanes 0..7 exit inside the divergent path
	})
	b.MOVI(isa.R(1), 42) // lanes 8..31 must execute this
	b.IADD(isa.R(2), isa.R(1), isa.R(1))
	b.EXIT()
	return &kernel.Kernel{Prog: b.MustBuild(), ThreadsPerCTA: 32, NumCTAs: 1}
}

func TestDivergentExit(t *testing.T) {
	res, err := Run(divergentExitKernel(t), 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// S2R 32 + SETPI 32 + BRA 32 + EXIT 8 + MOVI 24 + IADD 24 + EXIT 24.
	if want := uint64(32 + 32 + 32 + 8 + 24 + 24 + 24); res.ThreadInstrs != want {
		t.Errorf("ThreadInstrs = %d, want %d", res.ThreadInstrs, want)
	}
}

// The central differential test: the cycle-level simulator and the
// reference interpreter must agree exactly on every functional count for
// every bundled workload — warp instructions, active-lane counts,
// register accesses, and the full per-register histogram.
func TestDifferentialAgainstSimulator(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2 // multi-SM must not change functional behaviour
	for _, w := range workloads.All() {
		w := w.Scale(0.1)
		g, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		for ki := range w.Kernels {
			k := &w.Kernels[ki]
			simKS, err := g.RunKernel(k)
			if err != nil {
				t.Fatalf("%s/%s: sim: %v", w.Name, k.Prog.Name, err)
			}
			refRes, err := Run(k, cfg.Seed)
			if err != nil {
				t.Fatalf("%s/%s: ref: %v", w.Name, k.Prog.Name, err)
			}
			if simKS.WarpInstrs != refRes.WarpInstrs {
				t.Errorf("%s/%s: warp instrs sim=%d ref=%d",
					w.Name, k.Prog.Name, simKS.WarpInstrs, refRes.WarpInstrs)
			}
			if simKS.ThreadInstrs != refRes.ThreadInstrs {
				t.Errorf("%s/%s: thread instrs sim=%d ref=%d",
					w.Name, k.Prog.Name, simKS.ThreadInstrs, refRes.ThreadInstrs)
			}
			if simKS.RegReads != refRes.RegReads || simKS.RegWrites != refRes.RegWrites {
				t.Errorf("%s/%s: accesses sim=%d/%d ref=%d/%d",
					w.Name, k.Prog.Name, simKS.RegReads, simKS.RegWrites, refRes.RegReads, refRes.RegWrites)
			}
			for reg := 0; reg < k.Prog.NumRegs; reg++ {
				if s, r := simKS.RegHist.Count(reg), refRes.RegHist.Count(reg); s != r {
					t.Errorf("%s/%s: R%d accesses sim=%d ref=%d", w.Name, k.Prog.Name, reg, s, r)
				}
			}
		}
	}
}

// The differential result must hold regardless of the RF design,
// scheduler, or profiling technique — those are timing features, never
// functional ones.
func TestDifferentialAcrossConfigs(t *testing.T) {
	w, err := workloads.ByName("MUM") // the divergence-heavy worst case
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(0.1)
	k := &w.Kernels[0]
	refRes, err := Run(k, sim.DefaultConfig().Seed)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	for _, pol := range []sim.Policy{sim.PolicyLRR, sim.PolicyGTO, sim.PolicyTL, sim.PolicyFetchGroup} {
		cfg := sim.DefaultConfig()
		cfg.NumSMs = 1
		cfg.Policy = pol
		g, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		ks, err := g.RunKernel(k)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if ks.ThreadInstrs != refRes.ThreadInstrs || ks.RegReads != refRes.RegReads {
			t.Errorf("%v: functional counts diverged from the reference", pol)
		}
	}
}

func TestDivergentExitDifferential(t *testing.T) {
	k := divergentExitKernel(t)
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 1
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simKS, err := g.RunKernel(k)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	refRes, err := Run(k, cfg.Seed)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	if simKS.ThreadInstrs != refRes.ThreadInstrs {
		t.Errorf("divergent exit: sim=%d ref=%d thread instrs", simKS.ThreadInstrs, refRes.ThreadInstrs)
	}
}
