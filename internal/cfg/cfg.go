// Package cfg builds instruction-level control flow graphs for kernel
// programs and computes post-dominators. Its purpose is verification:
// the SIMT reconvergence point of every divergent branch must be the
// branch's immediate post-dominator (the earliest instruction every path
// is guaranteed to reach), or lanes would wait at the wrong place. The
// kernel builder and the assembler both encode reconvergence points by
// convention; CheckReconvergence proves those conventions correct for a
// given program.
package cfg

import (
	"fmt"
	"strings"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// Graph is an instruction-level control flow graph. Node i is the
// instruction at pc i; node len(instrs) is the virtual exit that every
// EXIT reaches.
type Graph struct {
	prog  *kernel.Program
	succs [][]int
	preds [][]int
	// ipdom[i] is the immediate post-dominator of node i (the virtual
	// exit post-dominates itself); -1 for unreachable nodes.
	ipdom []int
}

// Build constructs the CFG and computes post-dominators.
func Build(p *kernel.Program) *Graph {
	n := p.Len()
	g := &Graph{
		prog:  p,
		succs: make([][]int, n+1),
		preds: make([][]int, n+1),
	}
	exit := n
	addEdge := func(from, to int) {
		g.succs[from] = append(g.succs[from], to)
		g.preds[to] = append(g.preds[to], from)
	}
	for pc := 0; pc < n; pc++ {
		in := p.At(pc)
		switch in.Op {
		case isa.OpBRA:
			addEdge(pc, in.Target)
			if conditional(in) {
				addEdge(pc, pc+1)
			}
		case isa.OpEXIT:
			addEdge(pc, exit)
			if conditional(in) && pc+1 < n {
				addEdge(pc, pc+1)
			}
		default:
			if pc+1 < n {
				addEdge(pc, pc+1)
			} else {
				// Falling off the end terminates the warp.
				addEdge(pc, exit)
			}
		}
	}
	g.computePostDominators()
	return g
}

// conditional reports whether the instruction's guard can split a warp.
func conditional(in *isa.Instruction) bool {
	return !(in.Guard.Pred == isa.PT && !in.Guard.Neg)
}

// Succs returns the successors of pc (the virtual exit is Len()).
func (g *Graph) Succs(pc int) []int { return g.succs[pc] }

// Preds returns the predecessors of pc.
func (g *Graph) Preds(pc int) []int { return g.preds[pc] }

// ExitNode returns the virtual exit node id.
func (g *Graph) ExitNode() int { return len(g.succs) - 1 }

// computePostDominators runs the standard iterative dataflow:
// pdom(exit) = {exit}; pdom(n) = {n} ∪ ⋂ pdom(succ). Sets are bitsets
// over nodes; programs are small (tens to hundreds of instructions), so
// the dense representation is fine.
func (g *Graph) computePostDominators() {
	n := len(g.succs)
	words := (n + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << uint(i%64)
	}
	pdom := make([][]uint64, n)
	exit := g.ExitNode()
	for i := range pdom {
		pdom[i] = make([]uint64, words)
		if i == exit {
			pdom[i][i/64] = 1 << uint(i%64)
		} else {
			copy(pdom[i], full)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			if i == exit {
				continue
			}
			next := make([]uint64, words)
			copy(next, full)
			if len(g.succs[i]) == 0 {
				// Unreachable-from-exit node: keep the full set.
				continue
			}
			for _, s := range g.succs[i] {
				for w := range next {
					next[w] &= pdom[s][w]
				}
			}
			next[i/64] |= 1 << uint(i%64)
			if !equal(next, pdom[i]) {
				pdom[i] = next
				changed = true
			}
		}
	}

	// Immediate post-dominator: the unique nearest strict
	// post-dominator — the strict post-dominator that is itself
	// post-dominated by every other strict post-dominator of i.
	g.ipdom = make([]int, n)
	for i := range g.ipdom {
		g.ipdom[i] = -1
	}
	g.ipdom[exit] = exit
	for i := 0; i < n; i++ {
		if i == exit {
			continue
		}
		// ipdom = the strict post-dominator c such that every other
		// strict post-dominator d of i post-dominates c (d is reached
		// no earlier than c on every path).
		best := -1
		for c := 0; c < n; c++ {
			if c == i || !bit(pdom[i], c) {
				continue
			}
			isImmediate := true
			for d := 0; d < n; d++ {
				if d == i || d == c || !bit(pdom[i], d) {
					continue
				}
				if !bit(pdom[c], d) {
					isImmediate = false
					break
				}
			}
			if isImmediate {
				best = c
				break
			}
		}
		g.ipdom[i] = best
	}
}

func bit(set []uint64, i int) bool { return set[i/64]&(1<<uint(i%64)) != 0 }

func equal(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ImmediatePostDom returns the immediate post-dominator of pc, or the
// virtual exit node when control never reconverges.
func (g *Graph) ImmediatePostDom(pc int) int { return g.ipdom[pc] }

// Reachable returns the set of instructions reachable from entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.succs))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// CheckReconvergence verifies that every divergent branch's encoded
// reconvergence point equals its immediate post-dominator. Branches
// whose immediate post-dominator is the virtual exit (a path that never
// reconverges because some lanes exit) are exempt: their entries drain
// through lane exits instead.
func CheckReconvergence(p *kernel.Program) error {
	g := Build(p)
	reach := g.Reachable()
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(pc)
		if in.Op != isa.OpBRA || !conditional(in) || !reach[pc] {
			continue
		}
		ip := g.ImmediatePostDom(pc)
		if ip == g.ExitNode() {
			continue
		}
		if in.Reconv != ip {
			return fmt.Errorf("cfg: %s pc %d: reconvergence point %d, immediate post-dominator %d",
				p.Name, pc, in.Reconv, ip)
		}
	}
	return nil
}

// Dot renders the CFG in Graphviz format (a debugging aid).
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.prog.Name)
	for pc := 0; pc < g.prog.Len(); pc++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", pc, fmt.Sprintf("%d: %s", pc, g.prog.At(pc).String()))
	}
	fmt.Fprintf(&b, "  n%d [label=\"exit\", shape=doublecircle];\n", g.ExitNode())
	for from, succs := range g.succs {
		for _, to := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
