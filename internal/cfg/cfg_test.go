package cfg

import (
	"strings"
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/workloads"
)

func ifKernel(t *testing.T) *kernel.Program {
	t.Helper()
	b := kernel.NewBuilder("ifk", 6)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpGT, 5)
	b.If(isa.P(0), false, func() {
		b.IADDI(isa.R(1), isa.R(1), 1)
	})
	b.MOVI(isa.R(2), 3)
	b.EXIT()
	return b.MustBuild()
}

func TestIfReconvergenceIsPostDominator(t *testing.T) {
	p := ifKernel(t)
	if err := CheckReconvergence(p); err != nil {
		t.Fatalf("CheckReconvergence: %v", err)
	}
	g := Build(p)
	// The skip branch at pc 1: its immediate post-dominator is the
	// MOVI after the body.
	if got := g.ImmediatePostDom(1); got != 3 {
		t.Errorf("ipdom(branch) = %d, want 3", got)
	}
}

func TestIfElseReconvergence(t *testing.T) {
	b := kernel.NewBuilder("ifelse", 6)
	b.SETPI(isa.P(1), isa.R(0), isa.CmpLT, 0)
	b.IfElse(isa.P(1),
		func() { b.MOVI(isa.R(1), 1) },
		func() { b.MOVI(isa.R(1), 2) },
	)
	b.EXIT()
	p := b.MustBuild()
	if err := CheckReconvergence(p); err != nil {
		t.Fatalf("CheckReconvergence: %v", err)
	}
	g := Build(p)
	// Conditional branch at 1 diverges then/else; both rejoin at EXIT (5).
	if got := g.ImmediatePostDom(1); got != 5 {
		t.Errorf("ipdom = %d, want 5", got)
	}
}

func TestLoopBackEdgeReconvergence(t *testing.T) {
	b := kernel.NewBuilder("loop", 6)
	b.CountedLoop(isa.R(0), isa.P(0), 4, func() {
		b.IADDI(isa.R(1), isa.R(1), 1)
	})
	b.EXIT()
	p := b.MustBuild()
	if err := CheckReconvergence(p); err != nil {
		t.Fatalf("CheckReconvergence: %v", err)
	}
}

func TestNestedControlFlow(t *testing.T) {
	b := kernel.NewBuilder("nested", 8)
	b.S2R(isa.R(0), isa.SRLane)
	b.RegCountedLoop(isa.R(1), isa.P(0), isa.R(0), func() {
		b.SETPI(isa.P(1), isa.R(1), isa.CmpGT, 2)
		b.If(isa.P(1), false, func() {
			b.IADDI(isa.R(2), isa.R(2), 1)
		})
	})
	b.EXIT()
	p := b.MustBuild()
	if err := CheckReconvergence(p); err != nil {
		t.Fatalf("CheckReconvergence: %v", err)
	}
}

// The structural invariant for the whole suite: every divergent branch in
// every bundled workload reconverges exactly at its immediate
// post-dominator.
func TestAllWorkloadsReconvergeAtPostDominators(t *testing.T) {
	for _, w := range workloads.All() {
		for _, k := range w.Kernels {
			if err := CheckReconvergence(k.Prog); err != nil {
				t.Errorf("%s: %v", w.Name, err)
			}
		}
	}
}

func TestWrongReconvergenceDetected(t *testing.T) {
	p := ifKernel(t)
	bad := &kernel.Program{Name: p.Name, NumRegs: p.NumRegs, Instrs: append([]isa.Instruction(nil), p.Instrs...)}
	// Corrupt the skip branch's reconvergence point.
	for pc := range bad.Instrs {
		if bad.Instrs[pc].Op == isa.OpBRA {
			bad.Instrs[pc].Reconv = bad.Instrs[pc].Reconv + 1
		}
	}
	if err := CheckReconvergence(bad); err == nil {
		t.Fatal("corrupted reconvergence point not detected")
	}
}

func TestUnconditionalBranchExempt(t *testing.T) {
	// An unconditional BRA's reconvergence point is irrelevant; the
	// checker must not flag it.
	b := kernel.NewBuilder("jump", 4)
	l := b.NewLabel()
	b.Bra(l)
	b.MOVI(isa.R(0), 1) // dead code
	b.Bind(l)
	b.EXIT()
	p := b.MustBuild()
	if err := CheckReconvergence(p); err != nil {
		t.Fatalf("CheckReconvergence flagged an unconditional branch: %v", err)
	}
}

func TestGuardedExitEdges(t *testing.T) {
	b := kernel.NewBuilder("gexit", 4)
	b.SETPI(isa.P(0), isa.R(0), isa.CmpLT, 8)
	b.Guarded(isa.P(0), false, func() { b.EXIT() })
	b.MOVI(isa.R(1), 5)
	b.EXIT()
	p := b.MustBuild()
	g := Build(p)
	// The guarded EXIT at pc 1 must have both the exit node and the
	// fall-through as successors.
	succs := g.Succs(1)
	hasExit, hasFall := false, false
	for _, s := range succs {
		if s == g.ExitNode() {
			hasExit = true
		}
		if s == 2 {
			hasFall = true
		}
	}
	if !hasExit || !hasFall {
		t.Errorf("guarded EXIT successors = %v", succs)
	}
}

func TestReachability(t *testing.T) {
	b := kernel.NewBuilder("dead", 4)
	l := b.NewLabel()
	b.Bra(l)
	b.MOVI(isa.R(0), 1) // unreachable
	b.Bind(l)
	b.EXIT()
	p := b.MustBuild()
	reach := Build(p).Reachable()
	if reach[1] {
		t.Error("dead instruction marked reachable")
	}
	if !reach[0] || !reach[2] {
		t.Error("live instructions marked unreachable")
	}
}

func TestDotOutput(t *testing.T) {
	p := ifKernel(t)
	dot := Build(p).Dot()
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Error("Dot output malformed")
	}
	if !strings.Contains(dot, "exit") {
		t.Error("Dot output missing the virtual exit")
	}
}

func TestPredsConsistentWithSuccs(t *testing.T) {
	for _, w := range workloads.All()[:5] {
		g := Build(w.Kernels[0].Prog)
		for from := range g.succs {
			for _, to := range g.Succs(from) {
				found := false
				for _, p := range g.Preds(to) {
					if p == from {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: edge %d->%d missing from preds", w.Name, from, to)
				}
			}
		}
	}
}
