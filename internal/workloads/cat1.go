package workloads

import (
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// Category 1 workloads: loop-body registers dominate both the static text
// and the dynamic counts, so compiler profiling and pilot profiling agree.
// Each kernel follows the structure of its namesake: a setup phase, a hot
// main loop (unrolled in the text, as the real compilers do), and a
// cooler secondary phase that gives the access histogram the tail the
// paper measures (Figure 2: top-3/4/5 capture 62/72/77% on average).

// BFS models Rodinia's breadth-first search: load a node's edge range,
// then walk a data-dependent number of neighbors (divergent), updating a
// frontier cost; a short epilogue merges frontier flags. Hot registers:
// R5 (neighbor), R4 (cost), R6 (edge counter). Memory bound.
func BFS() Workload {
	const regs, tpc = 7, 256
	b := kernel.NewBuilder("bfs_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(2), isa.R(0), 2) // edge cursor
	b.LDG(isa.R(3), isa.R(2), 0)  // node record
	b.ANDI(isa.R(3), isa.R(3), 7) // neighbor count 0..7 (divergent bound)
	b.IADDI(isa.R(3), isa.R(3), 2)
	b.MOVI(isa.R(4), 0) // cost accumulator (hot)
	// Hot neighbor walk, 2x unrolled.
	b.RegCountedLoop(isa.R(6), isa.P(0), isa.R(3), func() {
		b.LDG(isa.R(5), isa.R(2), 0) // neighbor id (hot)
		b.IADD(isa.R(4), isa.R(4), isa.R(5))
		b.IADDI(isa.R(2), isa.R(2), 4)
		b.LDG(isa.R(5), isa.R(2), 64)
		b.IMAD(isa.R(4), isa.R(5), isa.R(5), isa.R(4))
	})
	// Cool epilogue: frontier flag merge on R0/R1.
	b.CountedLoop(isa.R(6), isa.P(0), 4, func() {
		b.IADD(isa.R(1), isa.R(1), isa.R(0))
		b.XOR(isa.R(0), isa.R(0), isa.R(1))
	})
	b.STG(isa.R(2), 0, isa.R(5))
	b.EXIT()
	k1 := b.MustBuild()

	// Kernel 2: visited-flag update (BFS alternates two kernels per
	// level). A different hot set: R1 (flag word), R3 (mask).
	b2 := kernel.NewBuilder("bfs_k2", regs)
	b2.S2R(isa.R(0), isa.SRTid)
	b2.SHLI(isa.R(2), isa.R(0), 2)
	b2.LDG(isa.R(1), isa.R(2), 0) // flag word (hot)
	b2.MOVI(isa.R(3), 0)          // mask accumulator (hot)
	b2.CountedLoop(isa.R(2), isa.P(0), 10, func() {
		b2.OR(isa.R(3), isa.R(3), isa.R(1))
		b2.SHRI(isa.R(1), isa.R(1), 1)
		b2.IADD(isa.R(3), isa.R(3), isa.R(1))
	})
	// Frontier count merge on cooler registers.
	b2.CountedLoop(isa.R(2), isa.P(0), 4, func() {
		b2.IADD(isa.R(4), isa.R(4), isa.R(0))
		b2.XOR(isa.R(5), isa.R(5), isa.R(4))
	})
	b2.STG(isa.R(0), 0, isa.R(3))
	b2.EXIT()

	return Workload{
		Name:     "BFS",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 12)},
			{Prog: b2.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 6)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.12},
	}
}

// Btree models Rodinia's b+tree lookup: descend a tree comparing loaded
// keys against the query (hot: R8 node pointer, R9 key, R10 loaded key),
// then a result-compaction pass over cooler registers.
func Btree() Workload {
	const regs, tpc = 15, 508
	b := kernel.NewBuilder("btree_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	b.IMAD(isa.R(2), isa.R(1), isa.R(0), isa.R(0))
	b.SHLI(isa.R(8), isa.R(2), 3) // node pointer (hot)
	b.LDG(isa.R(9), isa.R(8), 0)  // query key (hot)
	// Hot descent. The flattened id R2 is dead after the prologue and is
	// reused as the depth counter (static rank tracks dynamic rank).
	b.CountedLoop(isa.R(2), isa.P(1), 12, func() {
		b.LDG(isa.R(10), isa.R(8), 16) // node key (hot)
		b.SETP(isa.P(0), isa.R(9), isa.CmpLT, isa.R(10))
		b.IfElse(isa.P(0),
			func() { b.SHLI(isa.R(8), isa.R(8), 1) },
			func() { b.IADDI(isa.R(8), isa.R(8), 24) },
		)
		b.IADD(isa.R(9), isa.R(9), isa.R(10))
		b.ANDI(isa.R(8), isa.R(8), 0xFFFF)
	})
	// Result compaction on cooler registers.
	b.CountedLoop(isa.R(3), isa.P(1), 7, func() {
		b.IADD(isa.R(4), isa.R(4), isa.R(0))
		b.XOR(isa.R(5), isa.R(4), isa.R(0))
	})
	b.STG(isa.R(8), 0, isa.R(9))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "btree",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.7},
	}
}

// Hotspot models Rodinia's thermal stencil: iterative 5-point relaxation
// with FFMA-heavy arithmetic, compute bound (it rarely enters low-compute
// phases). Hot registers: R20 (center temp), R21 (power), R22 (delta);
// the boundary-condition pass afterwards touches the neighbor scratch set.
func Hotspot() Workload {
	const regs, tpc = 27, 256
	b := kernel.NewBuilder("hotspot_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(1), isa.R(0), 2)
	b.LDG(isa.R(20), isa.R(1), 0) // center temperature (hot)
	b.LDG(isa.R(21), isa.R(1), 4) // power (hot)
	b.LDG(isa.R(10), isa.R(1), 8) // neighbors
	b.LDG(isa.R(11), isa.R(1), 12)
	// Hot relaxation loop (2x unrolled update). The address register R1
	// is dead after the loads, so the compiler reuses it as the loop
	// counter — its static rank then matches its dynamic rank.
	b.CountedLoop(isa.R(1), isa.P(0), 18, func() {
		for u := 0; u < 2; u++ {
			b.FADD(isa.R(22), isa.R(20), isa.R(21)) // delta (hot)
			b.FFMA(isa.R(20), isa.R(22), isa.R(21), isa.R(20))
			b.FMUL(isa.R(22), isa.R(20), isa.R(21))
			b.FADD(isa.R(20), isa.R(20), isa.R(22))
		}
	})
	// Boundary-condition pass over the neighbor registers.
	b.CountedLoop(isa.R(4), isa.P(0), 9, func() {
		b.FADD(isa.R(10), isa.R(10), isa.R(11))
		b.FADD(isa.R(12), isa.R(12), isa.R(10))
	})
	b.STG(isa.R(20), 0, isa.R(21))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "hotspot",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 3.6},
	}
}

// NW models Rodinia's Needleman-Wunsch: tiny 16-thread CTAs sweeping a
// dynamic-programming anti-diagonal; each step loads two neighbors and
// takes a max, then a traceback pass walks cooler registers.
// Hot: R12 (score), R13 (left), R5 (cursor).
func NW() Workload {
	const regs, tpc = 21, 16
	b := kernel.NewBuilder("nw_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	b.IMAD(isa.R(2), isa.R(1), isa.R(0), isa.R(0))
	b.SHLI(isa.R(5), isa.R(2), 2) // cursor (hot)
	b.MOVI(isa.R(12), 0)          // score (hot)
	b.CountedLoop(isa.R(3), isa.P(0), 20, func() {
		b.LDS(isa.R(13), isa.R(5), 0) // left, from the shared tile (hot)
		b.IMAX(isa.R(12), isa.R(12), isa.R(13))
		b.IADD(isa.R(12), isa.R(12), isa.R(13))
		b.LDS(isa.R(13), isa.R(5), 4) // up, from the shared tile (hot)
		b.IADDI(isa.R(5), isa.R(5), 8)
		b.IADD(isa.R(12), isa.R(12), isa.R(13))
	})
	b.BAR()
	// Traceback over cooler registers.
	b.CountedLoop(isa.R(4), isa.P(0), 9, func() {
		b.LDG(isa.R(14), isa.R(5), 4)
		b.IADD(isa.R(15), isa.R(15), isa.R(14))
	})
	b.STG(isa.R(5), 0, isa.R(12))
	b.EXIT()
	k1 := b.MustBuild()

	// Kernel 2: the reverse (bottom-right) diagonal sweep, with its own
	// hot set: R16 (score), R17 (diag), R6 (cursor).
	b2 := kernel.NewBuilder("nw_k2", regs)
	b2.S2R(isa.R(0), isa.SRTid)
	b2.S2R(isa.R(1), isa.SRCTAid)
	b2.IMAD(isa.R(2), isa.R(1), isa.R(0), isa.R(0))
	b2.SHLI(isa.R(6), isa.R(2), 2) // cursor (hot)
	b2.MOVI(isa.R(16), 0)          // score (hot)
	b2.CountedLoop(isa.R(3), isa.P(0), 16, func() {
		b2.LDS(isa.R(17), isa.R(6), 0) // diagonal (hot)
		b2.IMAX(isa.R(16), isa.R(16), isa.R(17))
		b2.IADD(isa.R(16), isa.R(16), isa.R(17))
		b2.IADDI(isa.R(6), isa.R(6), 8)
	})
	b2.BAR()
	b2.CountedLoop(isa.R(4), isa.P(0), 6, func() {
		b2.LDG(isa.R(18), isa.R(6), 4)
		b2.IADD(isa.R(19), isa.R(19), isa.R(18))
	})
	b2.STG(isa.R(6), 0, isa.R(16))
	b2.EXIT()

	return Workload{
		Name:     "nw",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
			{Prog: b2.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 8)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.48},
	}
}

// Stencil models Parboil's 7-point stencil on 1024-thread CTAs. Hot:
// R6 (accumulator), R8 (address), R9 (loaded value); a halo-exchange
// phase afterwards works the cooler coefficient registers.
func Stencil() Workload {
	const regs, tpc = 15, 1024
	b := kernel.NewBuilder("stencil_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	b.IMULI(isa.R(2), isa.R(1), 1024)
	b.IADD(isa.R(2), isa.R(2), isa.R(0))
	b.SHLI(isa.R(8), isa.R(2), 2) // address (hot)
	b.MOVI(isa.R(6), 0)           // accumulator (hot)
	// The flattened id R2 is dead after the prologue; reuse it as the
	// sweep counter so the static census ranks it correctly.
	b.CountedLoop(isa.R(2), isa.P(0), 12, func() {
		b.LDS(isa.R(9), isa.R(8), 0) // value, from the shared tile (hot)
		b.FFMA(isa.R(6), isa.R(9), isa.R(9), isa.R(6))
		b.IADDI(isa.R(8), isa.R(8), 4)
		b.FADD(isa.R(6), isa.R(6), isa.R(9))
		b.IMAX(isa.R(9), isa.R(9), isa.R(6))
	})
	// Halo exchange over cooler registers.
	b.CountedLoop(isa.R(4), isa.P(0), 6, func() {
		b.LDG(isa.R(7), isa.R(8), 32)
		b.FADD(isa.R(10), isa.R(10), isa.R(7))
	})
	b.STG(isa.R(8), 0, isa.R(6))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "stencil",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 8)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.2},
	}
}

// Backprop models Rodinia's neural-network training pair. The paper calls
// out that its two kernels have disjoint hot sets: kernel 1's include R0,
// R8, R9 (with R0 accessed ~6x more than R6); kernel 2's are R4, R5, R6.
func Backprop() Workload {
	const regs, tpc = 13, 256

	// Kernel 1: forward layer — weighted sum into R0.
	b1 := kernel.NewBuilder("backprop_layerforward", regs)
	b1.S2R(isa.R(0), isa.SRTid)
	b1.SHLI(isa.R(8), isa.R(0), 2) // R8: weight pointer (hot)
	b1.MOVI(isa.R(6), 1)           // R6: cold bias register
	b1.MOVI(isa.R(0), 0)           // R0: activation (hot, dominant)
	b1.CountedLoop(isa.R(2), isa.P(0), 14, func() {
		b1.LDG(isa.R(9), isa.R(8), 0) // R9: weight (hot)
		b1.IMAD(isa.R(0), isa.R(9), isa.R(9), isa.R(0))
		b1.IADDI(isa.R(8), isa.R(8), 4)
		b1.IADD(isa.R(0), isa.R(0), isa.R(9))
		b1.IMAX(isa.R(0), isa.R(0), isa.R(9))
	})
	b1.IADD(isa.R(0), isa.R(0), isa.R(6))
	b1.BAR()
	// Activation spill over cooler registers.
	b1.CountedLoop(isa.R(3), isa.P(0), 7, func() {
		b1.IADD(isa.R(4), isa.R(4), isa.R(1))
		b1.XOR(isa.R(5), isa.R(5), isa.R(4))
	})
	b1.STG(isa.R(8), 0, isa.R(0))
	b1.EXIT()

	// Kernel 2: weight adjustment — delta math on R4/R5/R6.
	b2 := kernel.NewBuilder("backprop_adjust", regs)
	b2.S2R(isa.R(1), isa.SRTid)
	b2.SHLI(isa.R(4), isa.R(1), 2) // R4: weight addr (hot)
	b2.LDG(isa.R(5), isa.R(4), 0)  // R5: delta (hot)
	b2.MOVI(isa.R(6), 0)           // R6: new weight (hot)
	b2.CountedLoop(isa.R(2), isa.P(0), 12, func() {
		b2.IMAD(isa.R(6), isa.R(5), isa.R(5), isa.R(6))
		b2.IADDI(isa.R(4), isa.R(4), 4)
		b2.IADD(isa.R(6), isa.R(6), isa.R(5))
	})
	// Momentum update over cooler registers.
	b2.CountedLoop(isa.R(3), isa.P(0), 6, func() {
		b2.IADD(isa.R(7), isa.R(7), isa.R(1))
		b2.XOR(isa.R(8), isa.R(8), isa.R(7))
	})
	b2.STG(isa.R(4), 0, isa.R(6))
	b2.EXIT()

	return Workload{
		Name:     "backprop",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: b1.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
			{Prog: b2.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 2.6},
	}
}

// SAD models Parboil's sum-of-absolute-differences (video encoding):
// 61-thread CTAs, register-fat (29 regs), compute bound. Hot: R24-R26;
// the motion-vector reduction afterwards uses a cooler block.
func SAD() Workload {
	const regs, tpc = 29, 61
	b := kernel.NewBuilder("sad_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(1), isa.R(0), 2)
	b.LDG(isa.R(24), isa.R(1), 0) // reference block (hot)
	b.MOVI(isa.R(25), 0)          // SAD accumulator (hot)
	b.CountedLoop(isa.R(2), isa.P(0), 20, func() {
		b.LDS(isa.R(26), isa.R(1), 16)          // candidate pixel, shared tile (hot)
		b.ISUB(isa.R(25), isa.R(24), isa.R(26)) // diff
		b.IADD(isa.R(25), isa.R(25), isa.R(26))
		b.IADDI(isa.R(1), isa.R(1), 4)
	})
	// Motion vector reduction over a cooler block.
	b.CountedLoop(isa.R(3), isa.P(0), 9, func() {
		b.IADD(isa.R(10), isa.R(10), isa.R(24))
		b.IMAX(isa.R(11), isa.R(11), isa.R(10))
	})
	b.STG(isa.R(1), 0, isa.R(25))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "sad",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 12)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.13},
	}
}

// SRAD models Rodinia's speckle-reducing anisotropic diffusion: two small
// kernels over an image. Hot: R3 (pixel), R4 (gradient), R5 (coefficient).
func SRAD() Workload {
	const regs, tpc = 12, 256

	b1 := kernel.NewBuilder("srad_k1", regs)
	b1.S2R(isa.R(0), isa.SRTid)
	b1.SHLI(isa.R(1), isa.R(0), 2)
	b1.LDG(isa.R(3), isa.R(1), 0) // pixel (hot)
	b1.MOVI(isa.R(4), 0)          // gradient (hot)
	b1.CountedLoop(isa.R(2), isa.P(0), 14, func() {
		b1.LDG(isa.R(5), isa.R(1), 4) // neighbor (hot)
		b1.ISUB(isa.R(4), isa.R(5), isa.R(3))
		b1.IMAD(isa.R(3), isa.R(4), isa.R(5), isa.R(3))
		b1.IADD(isa.R(3), isa.R(3), isa.R(5))
		b1.IADDI(isa.R(1), isa.R(1), 4)
	})
	// Diffusion coefficient smoothing over cooler registers.
	b1.CountedLoop(isa.R(2), isa.P(0), 6, func() {
		b1.IADD(isa.R(6), isa.R(6), isa.R(0))
		b1.XOR(isa.R(7), isa.R(7), isa.R(6))
	})
	b1.STG(isa.R(1), 0, isa.R(3))
	b1.EXIT()

	b2 := kernel.NewBuilder("srad_k2", regs)
	b2.S2R(isa.R(0), isa.SRTid)
	b2.SHLI(isa.R(1), isa.R(0), 2)
	b2.LDG(isa.R(3), isa.R(1), 0)
	b2.MOVI(isa.R(5), 0)
	b2.CountedLoop(isa.R(2), isa.P(0), 11, func() {
		b2.IMAD(isa.R(5), isa.R(3), isa.R(3), isa.R(5))
		b2.IADD(isa.R(3), isa.R(3), isa.R(5))
	})
	b2.CountedLoop(isa.R(2), isa.P(0), 5, func() {
		b2.IADD(isa.R(6), isa.R(6), isa.R(0))
		b2.IADD(isa.R(7), isa.R(7), isa.R(6))
	})
	b2.STG(isa.R(1), 0, isa.R(5))
	b2.EXIT()

	return Workload{
		Name:     "srad",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: b1.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
			{Prog: b2.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 10)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.6},
	}
}

// MUM models MUMmerGPU's suffix-tree matching: a heavily divergent walk
// whose depth comes from loaded data, with only ~3 CTA waves (large pilot
// share for a Category 1 workload, 37% in the paper). Hot: R7-R9.
func MUM() Workload {
	const regs, tpc = 15, 256
	b := kernel.NewBuilder("mum_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	b.IMAD(isa.R(2), isa.R(1), isa.R(0), isa.R(0))
	b.SHLI(isa.R(7), isa.R(2), 2) // tree cursor (hot)
	b.LDG(isa.R(3), isa.R(7), 0)
	b.ANDI(isa.R(3), isa.R(3), 15) // match depth 0..15 (divergent)
	b.IADDI(isa.R(3), isa.R(3), 6)
	b.MOVI(isa.R(8), 0) // match length (hot)
	b.RegCountedLoop(isa.R(4), isa.P(0), isa.R(3), func() {
		b.LDG(isa.R(9), isa.R(7), 8) // tree edge (hot)
		b.SETPI(isa.P(1), isa.R(9), isa.CmpGT, 0)
		b.If(isa.P(1), false, func() {
			b.IADDI(isa.R(8), isa.R(8), 1)
		})
		b.IADD(isa.R(7), isa.R(7), isa.R(8))
		b.ANDI(isa.R(7), isa.R(7), 0xFFFF)
	})
	// Query post-processing over cooler registers.
	b.CountedLoop(isa.R(4), isa.P(0), 8, func() {
		b.IADD(isa.R(10), isa.R(10), isa.R(2))
		b.XOR(isa.R(11), isa.R(11), isa.R(10))
	})
	b.STG(isa.R(7), 0, isa.R(8))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "MUM",
		Category: Category1,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 2.5)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 37},
	}
}
