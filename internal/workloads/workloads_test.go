package workloads

import (
	"testing"

	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
)

func TestAllSeventeenBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("have %d benchmarks, Table I lists 17", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate benchmark %q", w.Name)
		}
		seen[w.Name] = true
	}
}

// Table I geometry must match exactly: registers/thread and threads/CTA.
func TestTable1Geometry(t *testing.T) {
	want := map[string]struct{ regs, tpc int }{
		"BFS": {7, 256}, "btree": {15, 508}, "hotspot": {27, 256},
		"nw": {21, 16}, "stencil": {15, 1024}, "backprop": {13, 256},
		"sad": {29, 61}, "srad": {12, 256}, "MUM": {15, 256},
		"kmeans": {9, 256}, "lavaMD": {6, 128}, "mri-q": {12, 512},
		"NN": {10, 169}, "sgemm": {27, 128}, "CP": {12, 128},
		"LIB": {18, 64}, "WP": {8, 64},
	}
	for _, w := range All() {
		spec, ok := want[w.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", w.Name)
			continue
		}
		if w.Paper.RegsPerThread != spec.regs || w.Paper.ThreadsPerCTA != spec.tpc {
			t.Errorf("%s paper info = %d regs/%d tpc, want %d/%d",
				w.Name, w.Paper.RegsPerThread, w.Paper.ThreadsPerCTA, spec.regs, spec.tpc)
		}
		for _, k := range w.Kernels {
			if k.Prog.NumRegs != spec.regs {
				t.Errorf("%s kernel %s allocates %d regs, want %d", w.Name, k.Prog.Name, k.Prog.NumRegs, spec.regs)
			}
			if k.ThreadsPerCTA != spec.tpc {
				t.Errorf("%s kernel %s has %d threads/CTA, want %d", w.Name, k.Prog.Name, k.ThreadsPerCTA, spec.tpc)
			}
		}
	}
}

// The paper (Section III-B): "on average 16 registers were allocated for
// each workload" — which is why only a quarter of the 63 profiling
// counters are typically active.
func TestAverageRegisterAllocationNearSixteen(t *testing.T) {
	total := 0
	for _, w := range All() {
		total += w.Paper.RegsPerThread
	}
	avg := float64(total) / float64(len(All()))
	if avg < 14 || avg > 17 {
		t.Errorf("average registers/thread = %.1f, paper reports ~16", avg)
	}
}

func TestAllKernelsValidate(t *testing.T) {
	for _, w := range All() {
		if len(w.Kernels) == 0 {
			t.Errorf("%s has no kernels", w.Name)
		}
		for _, k := range w.Kernels {
			if err := k.Validate(); err != nil {
				t.Errorf("%s: %v", w.Name, err)
			}
		}
	}
}

func TestCategories(t *testing.T) {
	wantCat := map[string]Category{
		"BFS": Category1, "btree": Category1, "hotspot": Category1,
		"nw": Category1, "stencil": Category1, "backprop": Category1,
		"sad": Category1, "srad": Category1, "MUM": Category1,
		"kmeans": Category2, "lavaMD": Category2, "mri-q": Category2,
		"NN": Category2, "sgemm": Category2, "CP": Category2,
		"LIB": Category3, "WP": Category3,
	}
	for _, w := range All() {
		if w.Category != wantCat[w.Name] {
			t.Errorf("%s in category %d, want %d", w.Name, w.Category, wantCat[w.Name])
		}
	}
	if n := len(ByCategory(Category1)); n != 9 {
		t.Errorf("category 1 has %d workloads, want 9", n)
	}
	if n := len(ByCategory(Category3)); n != 2 {
		t.Errorf("category 3 has %d workloads, want 2", n)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("sgemm")
	if err != nil || w.Name != "sgemm" {
		t.Errorf("ByName(sgemm) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestScale(t *testing.T) {
	w, _ := ByName("BFS")
	s := w.Scale(0.25)
	if s.Kernels[0].NumCTAs >= w.Kernels[0].NumCTAs {
		t.Error("Scale did not reduce CTA count")
	}
	if w.Kernels[0].NumCTAs != BFS().Kernels[0].NumCTAs {
		t.Error("Scale mutated the original workload")
	}
	tiny := w.Scale(0.0001)
	if tiny.Kernels[0].NumCTAs != 1 {
		t.Errorf("Scale floor = %d, want 1", tiny.Kernels[0].NumCTAs)
	}
}

// run executes a scaled-down workload on a 1-SM machine and returns stats.
func run(t *testing.T, w Workload, cfg sim.Config) sim.RunStats {
	t.Helper()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	rs, err := g.RunKernels(w.Name, w.Kernels)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return rs
}

func quickCfg() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 1
	return cfg
}

func TestEveryWorkloadRuns(t *testing.T) {
	for _, w := range All() {
		w := w.Scale(0.2)
		rs := run(t, w, quickCfg())
		if rs.TotalCycles() <= 0 || rs.TotalAccesses() == 0 {
			t.Errorf("%s: empty run (%d cycles, %d accesses)", w.Name, rs.TotalCycles(), rs.TotalAccesses())
		}
	}
}

// Figure 2's core claim: per-kernel top-3/4/5 registers capture a large,
// increasing share of accesses (paper averages: 62%/72%/77%).
func TestRegisterAccessSkew(t *testing.T) {
	var s3, s4, s5 []float64
	for _, w := range All() {
		rs := run(t, w.Scale(0.2), quickCfg())
		t3, t4, t5 := rs.TopNShareByKernel(3), rs.TopNShareByKernel(4), rs.TopNShareByKernel(5)
		if !(t3 <= t4 && t4 <= t5) {
			t.Errorf("%s: top-N shares not monotone: %.2f %.2f %.2f", w.Name, t3, t4, t5)
		}
		if t3 < 0.30 {
			t.Errorf("%s: top-3 share %.2f too flat for the paper's skew", w.Name, t3)
		}
		s3, s4, s5 = append(s3, t3), append(s4, t4), append(s5, t5)
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	a3, a4, a5 := avg(s3), avg(s4), avg(s5)
	if a3 < 0.50 || a3 > 0.75 {
		t.Errorf("average top-3 share = %.2f, paper reports 0.62", a3)
	}
	if a4 < 0.60 || a4 > 0.85 {
		t.Errorf("average top-4 share = %.2f, paper reports 0.72", a4)
	}
	if a5 < 0.65 || a5 > 0.90 {
		t.Errorf("average top-5 share = %.2f, paper reports 0.77", a5)
	}
}

// The backprop example from Section II: the two kernels have different
// hot sets, and in kernel 1 the top register is accessed several times
// more than R6.
func TestBackpropKernelsDiffer(t *testing.T) {
	rs := run(t, Backprop().Scale(0.3), quickCfg())
	if len(rs.Kernels) != 2 {
		t.Fatalf("backprop has %d kernels", len(rs.Kernels))
	}
	top1 := rs.Kernels[0].RegHist.TopN(3)
	top2 := rs.Kernels[1].RegHist.TopN(3)
	same := 0
	for _, a := range top1 {
		for _, b := range top2 {
			if a.Key == b.Key {
				same++
			}
		}
	}
	if same == 3 {
		t.Error("backprop kernels share an identical top-3 set; the paper shows disjoint hot sets")
	}
	// Kernel 1: R0 dominates R6 by a wide margin.
	h := rs.Kernels[0].RegHist
	if h.Count(0) < 4*h.Count(6) {
		t.Errorf("backprop k1: R0 (%d) not >> R6 (%d)", h.Count(0), h.Count(6))
	}
}

// sgemm's running example: static-first-4 capture is poor (~25% in the
// paper) while the true top-4 capture is much higher (~55%).
func TestSGEMMStaticFirstFourIsPoor(t *testing.T) {
	rs := run(t, SGEMM().Scale(0.3), quickCfg())
	h := rs.MergedRegHist()
	first4 := h.Share([]int{0, 1, 2, 3})
	top4 := rs.TopNShareByKernel(4)
	if first4 >= 0.40 {
		t.Errorf("sgemm first-four share = %.2f, should be poor (paper: 0.25)", first4)
	}
	if top4 < first4+0.20 {
		t.Errorf("sgemm top-4 (%.2f) should beat first-4 (%.2f) by a wide margin", top4, first4)
	}
}

// Category 2's defining property: the compiler's static top-4 capture is
// more than 10 points below the oracle top-4 capture.
func TestCategory2CompilerGap(t *testing.T) {
	for _, w := range ByCategory(Category2) {
		rs := run(t, w.Scale(0.2), quickCfg())
		var compilerShare, oracleShare float64
		var total uint64
		for ki, k := range w.Kernels {
			h := rs.Kernels[ki].RegHist
			total += h.Total()
			top := profile.CompilerTopN(k.Prog, 4)
			keys := make([]int, len(top))
			for i, r := range top {
				keys[i] = int(r)
			}
			compilerShare += h.Share(keys) * float64(h.Total())
			oracleShare += h.TopNShare(4) * float64(h.Total())
		}
		compilerShare /= float64(total)
		oracleShare /= float64(total)
		if oracleShare-compilerShare < 0.10 {
			t.Errorf("%s (cat 2): compiler capture %.2f not >10 points below oracle %.2f",
				w.Name, compilerShare, oracleShare)
		}
	}
}

// Category 1's defining property: the compiler's capture is within ~10
// points of the oracle.
func TestCategory1CompilerClose(t *testing.T) {
	for _, w := range ByCategory(Category1) {
		rs := run(t, w.Scale(0.2), quickCfg())
		for ki, k := range w.Kernels {
			h := rs.Kernels[ki].RegHist
			top := profile.CompilerTopN(k.Prog, 4)
			keys := make([]int, len(top))
			for i, r := range top {
				keys[i] = int(r)
			}
			gap := h.TopNShare(4) - h.Share(keys)
			if gap > 0.12 {
				t.Errorf("%s/%s (cat 1): compiler capture %.2f points below oracle (limit 0.12)",
					w.Name, k.Prog.Name, gap)
			}
		}
	}
}

// Category 3's defining property: the pilot warp spans most of the run.
// Grids are tuned for the 2-SM simulation default, so run at that size.
func TestCategory3PilotDominates(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.RF = regfile.DefaultConfig(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniquePilot
	for _, w := range ByCategory(Category3) {
		rs := run(t, w, cfg) // no scaling: pilot share depends on the wave structure
		if frac := rs.Kernels[0].PilotFraction; frac < 0.4 {
			t.Errorf("%s (cat 3): pilot fraction %.2f, want dominant (paper: %.0f%%)",
				w.Name, frac, w.Paper.PilotCTAPct)
		}
	}
}

// Category 1/2 workloads must have small pilot fractions (many waves).
func TestPilotFractionSmallForCat1(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.RF = regfile.DefaultConfig(regfile.DesignPartitioned)
	cfg.Profiling = profile.TechniquePilot
	for _, name := range []string{"BFS", "kmeans", "backprop"} {
		w, _ := ByName(name)
		rs := run(t, w, cfg)
		if frac := rs.Kernels[0].PilotFraction; frac > 0.25 {
			t.Errorf("%s: pilot fraction %.2f, want small", name, frac)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	w, _ := ByName("MUM")
	w = w.Scale(0.3)
	a := run(t, w, quickCfg())
	b := run(t, w, quickCfg())
	if a.TotalCycles() != b.TotalCycles() || a.TotalAccesses() != b.TotalAccesses() {
		t.Error("same-seed workload runs differ")
	}
}
