package workloads

import (
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// Category 3 workloads: kernels with so few warps (64 threads/CTA, one
// CTA wave) that the pilot warp's own execution spans most of the kernel
// — by the time its statistics arrive, little work remains to benefit.
// Their code is compiler-friendly (the static census ranks registers the
// way the dynamic counts do), so compiler seeding beats waiting for the
// pilot, which is exactly why the hybrid technique exists.

// LIB models the GPGPU-Sim suite's LIBOR Monte Carlo pricer: one long
// path-evolution loop per thread; nearly all text and all dynamic
// accesses sit in the loop on R10-R13.
func LIB() Workload {
	const regs, tpc = 18, 64
	b := kernel.NewBuilder("lib_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(10), isa.R(0), 2) // rate cursor (hot)
	b.MOVI(isa.R(11), 0x3F800000)  // path value 1.0f (hot)
	b.MOVI(isa.R(12), 0)           // payoff accumulator (hot)
	b.CountedLoop(isa.R(1), isa.P(0), 110, func() {
		b.LDS(isa.R(13), isa.R(10), 0) // forward rate, constant cache (hot)
		b.FFMA(isa.R(11), isa.R(13), isa.R(11), isa.R(11))
		b.FADD(isa.R(12), isa.R(12), isa.R(11))
		b.IADDI(isa.R(10), isa.R(10), 4)
	})
	// Portfolio aggregation over cooler registers.
	b.CountedLoop(isa.R(1), isa.P(0), 30, func() {
		b.IADD(isa.R(2), isa.R(2), isa.R(0))
		b.XOR(isa.R(3), isa.R(3), isa.R(2))
	})
	b.STG(isa.R(10), 0, isa.R(12))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "LIB",
		Category: Category3,
		Kernels: []kernel.Kernel{
			// ~1.1 waves: the pilot's CTA spans ~60% of the kernel.
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 1.1)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 60},
	}
}

// WP models the GPGPU-Sim suite's weather prediction kernel: tiny grid,
// one wave of 64-thread CTAs, a long physics loop on R4-R6. The pilot
// runs for ~75% of the kernel in the paper.
func WP() Workload {
	const regs, tpc = 8, 64
	b := kernel.NewBuilder("wp_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.SHLI(isa.R(4), isa.R(0), 2) // cell cursor (hot)
	b.MOVI(isa.R(5), 0)           // state accumulator (hot)
	b.CountedLoop(isa.R(1), isa.P(0), 140, func() {
		b.LDS(isa.R(6), isa.R(4), 0) // cell state, shared copy (hot)
		b.IMAD(isa.R(5), isa.R(6), isa.R(6), isa.R(5))
		b.IADD(isa.R(5), isa.R(5), isa.R(6))
		b.IMIN(isa.R(5), isa.R(5), isa.R(6))
		b.IADDI(isa.R(4), isa.R(4), 4)
	})
	// Boundary relaxation over cooler registers.
	b.CountedLoop(isa.R(1), isa.P(0), 40, func() {
		b.IADD(isa.R(2), isa.R(2), isa.R(0))
		b.XOR(isa.R(3), isa.R(3), isa.R(2))
	})
	b.STG(isa.R(4), 0, isa.R(5))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "WP",
		Category: Category3,
		Kernels: []kernel.Kernel{
			// ~1.15 waves: the pilot spans ~75% of the kernel.
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 1.15)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 75},
	}
}
