package workloads

import (
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// Category 2 workloads: a text-heavy prologue makes the compiler's static
// census pick setup registers, while the dynamically hot registers sit in
// a short loop body whose trip count only the pilot warp can observe.

// Kmeans models Rodinia's k-means assignment kernel: an unrolled
// per-cluster setup phase (text-heavy on R0-R3) followed by a 40-trip
// distance loop whose accumulators R5-R7 dominate dynamically.
func Kmeans() Workload {
	const regs, tpc = 9, 256
	b := kernel.NewBuilder("kmeans_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	// Unrolled feature setup: R0-R3 appear many times in the text but
	// execute once.
	for i := 0; i < 5; i++ {
		b.IMAD(isa.R(2), isa.R(0), isa.R(1), isa.R(2))
		b.IADD(isa.R(3), isa.R(2), isa.R(0))
		b.XOR(isa.R(2), isa.R(3), isa.R(1))
	}
	b.SHLI(isa.R(5), isa.R(3), 2) // point cursor (hot, 1 static occurrence here)
	b.MOVI(isa.R(6), 0)           // min distance (hot)
	b.CountedLoop(isa.R(4), isa.P(0), 24, func() {
		b.LDS(isa.R(7), isa.R(5), 0) // centroid coord, shared copy (hot)
		b.IMAD(isa.R(6), isa.R(7), isa.R(7), isa.R(6))
		b.IADDI(isa.R(5), isa.R(5), 4)
	})
	// Membership update over the setup registers (cool tail).
	b.CountedLoop(isa.R(4), isa.P(0), 7, func() {
		b.IADD(isa.R(0), isa.R(0), isa.R(1))
		b.XOR(isa.R(8), isa.R(8), isa.R(0))
	})
	b.STG(isa.R(5), 0, isa.R(6))
	b.EXIT()
	k1 := b.MustBuild()

	// Kernel 2: centroid swap/update. Same Category 2 shape — an
	// unrolled membership prologue (text-heavy on R0-R2) hiding the
	// dynamically hot update loop on R4/R8.
	b2 := kernel.NewBuilder("kmeans_swap", regs)
	b2.S2R(isa.R(0), isa.SRTid)
	b2.S2R(isa.R(1), isa.SRCTAid)
	for i := 0; i < 4; i++ {
		b2.IMAD(isa.R(2), isa.R(0), isa.R(1), isa.R(2))
		b2.XOR(isa.R(0), isa.R(0), isa.R(2))
		b2.IADD(isa.R(1), isa.R(1), isa.R(0))
	}
	b2.SHLI(isa.R(4), isa.R(2), 2) // centroid addr (hot)
	b2.MOVI(isa.R(8), 0)           // new centroid sum (hot)
	b2.CountedLoop(isa.R(3), isa.P(0), 18, func() {
		b2.LDS(isa.R(5), isa.R(4), 0)
		b2.IADD(isa.R(8), isa.R(8), isa.R(5))
		b2.IADDI(isa.R(4), isa.R(4), 4)
	})
	b2.STG(isa.R(4), 0, isa.R(8))
	b2.EXIT()

	return Workload{
		Name:     "kmeans",
		Category: Category2,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 13)},
			{Prog: b2.MustBuild(), ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 6)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 7.5},
	}
}

// LavaMD models Rodinia's molecular dynamics inner kernel: particle
// force accumulation. Only 6 registers; the hot pair R4/R5 lives in the
// force loop while the unrolled neighbor-box setup spells out R0-R2.
func LavaMD() Workload {
	const regs, tpc = 6, 128
	b := kernel.NewBuilder("lavamd_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	for i := 0; i < 6; i++ {
		b.IMAD(isa.R(2), isa.R(0), isa.R(1), isa.R(2))
		b.IADD(isa.R(0), isa.R(0), isa.R(2))
	}
	b.SHLI(isa.R(4), isa.R(2), 2) // particle addr (hot)
	b.MOVI(isa.R(5), 0)           // force accumulator (hot)
	b.CountedLoop(isa.R(3), isa.P(0), 28, func() {
		b.IMAD(isa.R(5), isa.R(4), isa.R(4), isa.R(5))
		b.IADDI(isa.R(4), isa.R(4), 4)
	})
	// Neighbor-box bookkeeping on the setup registers (cool tail).
	b.CountedLoop(isa.R(3), isa.P(0), 8, func() {
		b.IADD(isa.R(1), isa.R(1), isa.R(0))
		b.XOR(isa.R(0), isa.R(0), isa.R(1))
	})
	b.STG(isa.R(4), 0, isa.R(5))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "lavaMD",
		Category: Category2,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 20)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 0.2},
	}
}

// MRIQ models Parboil's MRI Q-matrix kernel: trigonometric accumulation
// over sample points (SFU heavy). Setup spells R0-R2; the hot loop uses
// R8 (phase), R9 (cos accum), R10 (sin accum).
func MRIQ() Workload {
	const regs, tpc = 12, 512
	b := kernel.NewBuilder("mriq_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	for i := 0; i < 4; i++ {
		b.IMAD(isa.R(2), isa.R(1), isa.R(0), isa.R(2))
		b.XOR(isa.R(0), isa.R(0), isa.R(2))
		b.IADD(isa.R(1), isa.R(1), isa.R(0))
	}
	b.SHLI(isa.R(8), isa.R(2), 2) // phase cursor (hot)
	b.MOVI(isa.R(9), 0)           // accumulator (hot)
	b.CountedLoop(isa.R(3), isa.P(0), 22, func() {
		b.LDS(isa.R(10), isa.R(8), 0) // kx sample, shared copy (hot)
		b.FEXP(isa.R(10), isa.R(10))
		b.FADD(isa.R(9), isa.R(9), isa.R(10))
		b.IADDI(isa.R(8), isa.R(8), 4)
	})
	// Q-matrix scaling over the setup registers (cool tail).
	b.CountedLoop(isa.R(3), isa.P(0), 6, func() {
		b.IADD(isa.R(4), isa.R(4), isa.R(0))
		b.XOR(isa.R(5), isa.R(5), isa.R(4))
	})
	b.STG(isa.R(8), 0, isa.R(9))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "mri-q",
		Category: Category2,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 7)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 14.3},
	}
}

// NN models Rodinia's nearest-neighbor: 169-thread CTAs (partial final
// warp), distance loop hot on R6-R8, unrolled coordinate setup on R0-R3.
func NN() Workload {
	const regs, tpc = 10, 169
	b := kernel.NewBuilder("nn_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	for i := 0; i < 4; i++ {
		b.IMAD(isa.R(2), isa.R(0), isa.R(1), isa.R(2))
		b.IADD(isa.R(3), isa.R(3), isa.R(2))
		b.XOR(isa.R(0), isa.R(0), isa.R(3))
	}
	b.SHLI(isa.R(6), isa.R(2), 2) // record cursor (hot)
	b.MOVI(isa.R(7), 0x7FFFFFFF)  // best distance (hot)
	b.CountedLoop(isa.R(4), isa.P(0), 20, func() {
		b.LDG(isa.R(8), isa.R(6), 0) // candidate distance (hot)
		b.IMIN(isa.R(7), isa.R(7), isa.R(8))
		b.IADDI(isa.R(6), isa.R(6), 4)
	})
	// Result ranking over the setup registers (cool tail).
	b.CountedLoop(isa.R(4), isa.P(0), 6, func() {
		b.IADD(isa.R(5), isa.R(5), isa.R(0))
		b.XOR(isa.R(9), isa.R(9), isa.R(5))
	})
	b.STG(isa.R(6), 0, isa.R(7))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "NN",
		Category: Category2,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 12)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 8.2},
	}
}

// SGEMM models Parboil's matrix multiply. This is the paper's running
// example: with the first four architected registers statically mapped to
// the FRF only ~25% of accesses hit it, while the true top four capture
// ~55%. A large unrolled tile-address prologue dominates the text with
// R0-R7; the inner-product loop runs on R20-R23.
func SGEMM() Workload {
	const regs, tpc = 27, 128
	b := kernel.NewBuilder("sgemm_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	// Unrolled tile address generation: R0-R7 each appear many times.
	for i := 0; i < 3; i++ {
		b.IMAD(isa.R(2), isa.R(0), isa.R(1), isa.R(2))
		b.IADD(isa.R(3), isa.R(2), isa.R(0))
		b.SHLI(isa.R(4), isa.R(3), 1)
		b.IADD(isa.R(5), isa.R(4), isa.R(1))
		b.XOR(isa.R(6), isa.R(5), isa.R(0))
		b.IADD(isa.R(7), isa.R(6), isa.R(3))
	}
	b.SHLI(isa.R(20), isa.R(7), 2) // A cursor (hot)
	b.SHLI(isa.R(21), isa.R(5), 2) // B cursor (hot)
	b.MOVI(isa.R(22), 0)           // C accumulator (hot)
	b.CountedLoop(isa.R(8), isa.P(0), 22, func() {
		b.LDG(isa.R(23), isa.R(20), 0) // A element (hot)
		b.FFMA(isa.R(22), isa.R(23), isa.R(22), isa.R(22))
		b.IADDI(isa.R(20), isa.R(20), 4)
		b.IADDI(isa.R(21), isa.R(21), 4)
	})
	// Tile writeback bookkeeping over setup registers (cool tail).
	b.CountedLoop(isa.R(8), isa.P(0), 7, func() {
		b.IADD(isa.R(10), isa.R(10), isa.R(2))
		b.XOR(isa.R(11), isa.R(11), isa.R(10))
	})
	b.STG(isa.R(21), 0, isa.R(22))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "sgemm",
		Category: Category2,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 6)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 16.2},
	}
}

// CP models the GPGPU-Sim suite's Coulomb potential kernel: per-grid-point
// accumulation over atoms. Hot: R6 (dx), R7 (r^2), R8 (potential), R9
// (atom cursor) — the paper names R1/R9/R10 as its hot set; what matters
// is that they are not the default FRF residents. Two CTA waves.
func CP() Workload {
	const regs, tpc = 12, 128
	b := kernel.NewBuilder("cp_k1", regs)
	b.S2R(isa.R(0), isa.SRTid)
	b.S2R(isa.R(1), isa.SRCTAid)
	for i := 0; i < 4; i++ {
		b.IMAD(isa.R(2), isa.R(0), isa.R(1), isa.R(2))
		b.IADD(isa.R(3), isa.R(3), isa.R(2))
		b.XOR(isa.R(2), isa.R(2), isa.R(3))
	}
	b.SHLI(isa.R(9), isa.R(3), 2) // atom cursor (hot)
	b.MOVI(isa.R(8), 0)           // potential accumulator (hot)
	b.CountedLoop(isa.R(4), isa.P(0), 26, func() {
		b.LDG(isa.R(6), isa.R(9), 0) // atom x (hot)
		b.IMAD(isa.R(7), isa.R(6), isa.R(6), isa.RZ)
		b.IADD(isa.R(8), isa.R(8), isa.R(7))
		b.IADDI(isa.R(9), isa.R(9), 4)
	})
	// Grid-point normalization over setup registers (cool tail).
	b.CountedLoop(isa.R(4), isa.P(0), 7, func() {
		b.IADD(isa.R(5), isa.R(5), isa.R(0))
		b.XOR(isa.R(10), isa.R(10), isa.R(5))
	})
	b.STG(isa.R(9), 0, isa.R(8))
	b.EXIT()
	k1 := b.MustBuild()
	return Workload{
		Name:     "CP",
		Category: Category2,
		Kernels: []kernel.Kernel{
			{Prog: k1, ThreadsPerCTA: tpc, NumCTAs: grid(regs, tpc, 2)},
		},
		Paper: PaperInfo{RegsPerThread: regs, ThreadsPerCTA: tpc, PilotCTAPct: 47},
	}
}
