// Package workloads provides synthetic re-creations of the seventeen
// benchmarks in the paper's Table I (Rodinia, Parboil, and the GPGPU-Sim
// suite). The CUDA sources and their inputs are not available here, so
// each benchmark is rebuilt as a kernel in this repository's ISA that
// preserves the properties the paper's results depend on:
//
//   - registers/thread and threads/CTA exactly as in Table I;
//   - a register access histogram skewed toward a small hot set (top 3-5
//     registers carry 60-80% of accesses, Figure 2), with the hot set
//     deliberately NOT the first architected registers for most
//     workloads (the static-first-N strawman must lose);
//   - the static-text vs dynamic-count relationship that defines the
//     paper's three categories: Category 1 kernels have compiler counts
//     that rank registers like the dynamic counts do; Category 2 kernels
//     hide their hot registers inside high-trip-count loops the static
//     census cannot see; Category 3 kernels (LIB, WP) have so few warps
//     that the pilot warp spans most of the execution;
//   - per-benchmark memory intensity and branch divergence (loads feed
//     loop bounds and branches), giving realistic low-compute phases for
//     the adaptive FRF and realistic scheduler behaviour.
//
// Grid sizes are scaled down from the original applications so a full
// experiment sweep runs in seconds; the number of CTA *waves* per SM — the
// quantity that fixes the pilot warp's runtime share — is preserved in
// shape (small for Category 1/2, one wave for LIB and WP).
package workloads

import (
	"fmt"
	"sort"

	"pilotrf/internal/kernel"
)

// Category is the paper's workload classification from Figure 4.
type Category int

// Categories: 1 = compiler profiling tracks pilot profiling; 2 = compiler
// misses the dynamically hot registers; 3 = the pilot warp runs too long
// for pilot profiling to pay off.
const (
	Category1 Category = 1
	Category2 Category = 2
	Category3 Category = 3
)

// PaperInfo records the Table I row for a benchmark (for reproduction
// reports).
type PaperInfo struct {
	RegsPerThread int
	ThreadsPerCTA int
	PilotCTAPct   float64 // the paper's measured pilot runtime share, %
}

// Workload is one benchmark: a short sequence of kernels.
type Workload struct {
	Name     string
	Category Category
	Kernels  []kernel.Kernel
	Paper    PaperInfo
}

// Scale returns a copy with CTA counts multiplied by f (minimum 1 CTA),
// for fast unit tests and quick runs. Register counts, CTA geometry, and
// code are unchanged.
func (w Workload) Scale(f float64) Workload {
	out := w
	out.Kernels = make([]kernel.Kernel, len(w.Kernels))
	copy(out.Kernels, w.Kernels)
	for i := range out.Kernels {
		n := int(float64(out.Kernels[i].NumCTAs) * f)
		if n < 1 {
			n = 1
		}
		out.Kernels[i].NumCTAs = n
	}
	return out
}

// assumedSMs is the simulation default the grid sizes are tuned for
// (sim.DefaultConfig's SM count).
const assumedSMs = 2

// residentCTAs computes how many CTAs of this shape fit on one SM under
// the paper's Kepler limits (64 warp slots, 2048 warp-register slots, 16
// CTAs) — used to convert "waves" into grid sizes.
func residentCTAs(regs, threadsPerCTA int) int {
	warps := (threadsPerCTA + 31) / 32
	n := 16
	if bySlots := 64 / warps; bySlots < n {
		n = bySlots
	}
	if byRegs := 2048 / (warps * regs); byRegs < n {
		n = byRegs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// grid returns the CTA count giving approximately `waves` waves per SM.
func grid(regs, threadsPerCTA int, waves float64) int {
	n := int(waves * float64(residentCTAs(regs, threadsPerCTA)*assumedSMs))
	if n < 1 {
		n = 1
	}
	return n
}

// All returns every benchmark, in Table I order.
func All() []Workload {
	return []Workload{
		BFS(), Btree(), Hotspot(), NW(), Stencil(), Backprop(), SAD(), SRAD(), MUM(),
		Kmeans(), LavaMD(), MRIQ(), NN(), SGEMM(), CP(),
		LIB(), WP(),
	}
}

// Names returns all benchmark names in Table I order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ByName returns the named benchmark.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q (known: %v)", name, known)
}

// ByCategory returns the benchmarks in a category, in Table I order.
func ByCategory(c Category) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Category == c {
			out = append(out, w)
		}
	}
	return out
}
