package perfscope

import (
	"bytes"
	"strings"
	"testing"
)

func TestPhaseString(t *testing.T) {
	if got := PhaseIssue.String(); got != "issue" {
		t.Errorf("PhaseIssue = %q, want issue", got)
	}
	if got := Phase(99).String(); got != "phase_99" {
		t.Errorf("out-of-range phase = %q", got)
	}
	seen := map[string]bool{}
	for p := Phase(0); int(p) < NumPhases; p++ {
		n := p.String()
		if n == "" || strings.HasPrefix(n, "phase_") {
			t.Errorf("phase %d has no name", p)
		}
		if seen[n] {
			t.Errorf("duplicate phase name %q", n)
		}
		seen[n] = true
	}
}

func TestCensusMath(t *testing.T) {
	var zero Census
	if f := zero.SkippableFrac(); f != 0 {
		t.Errorf("empty SkippableFrac = %v, want 0", f)
	}
	if s := zero.ProjectedSpeedup(); s != 1 {
		t.Errorf("empty ProjectedSpeedup = %v, want 1", s)
	}

	c := Census{SMCycles: 100, Busy: 40, ActiveNoIssue: 10, Skippable: 50, SkipRuns: 5}
	if err := c.check(); err != nil {
		t.Fatalf("valid census rejected: %v", err)
	}
	if f := c.SkippableFrac(); f != 0.5 {
		t.Errorf("SkippableFrac = %v, want 0.5", f)
	}
	if s := c.ProjectedSpeedup(); s != 2 {
		t.Errorf("ProjectedSpeedup = %v, want 2", s)
	}

	// Fully skippable: speedup caps at SMCycles instead of +Inf so the
	// value survives a trip through encoding/json.
	full := Census{SMCycles: 64, Skippable: 64, SkipRuns: 1}
	if s := full.ProjectedSpeedup(); s != 64 {
		t.Errorf("fully-skippable ProjectedSpeedup = %v, want 64", s)
	}

	var sum Census
	sum.Add(c)
	sum.Add(full)
	want := Census{SMCycles: 164, Busy: 40, ActiveNoIssue: 10, Skippable: 114, SkipRuns: 6}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
}

func TestCensusCheckRejects(t *testing.T) {
	bad := []struct {
		name string
		c    Census
	}{
		{"classes exceed cycles", Census{SMCycles: 10, Busy: 8, Skippable: 8}},
		{"classes short of cycles", Census{SMCycles: 10, Busy: 2}},
		{"skip runs exceed skippable", Census{SMCycles: 4, Skippable: 2, StalledUnknown: 2, SkipRuns: 3}},
	}
	for _, tc := range bad {
		if err := tc.c.check(); err == nil {
			t.Errorf("%s: check accepted %+v", tc.name, tc.c)
		}
	}
}

func TestProfilerFold(t *testing.T) {
	p := New(false)
	if p.WallClock() {
		t.Fatal("census-only profiler reports wall-clock")
	}
	c1 := Census{SMCycles: 10, Busy: 10}
	c2 := Census{SMCycles: 6, Skippable: 4, StalledUnknown: 2, SkipRuns: 1}
	p.Fold(c1, [NumPhases]int64{PhaseIssue: 100})
	p.Fold(c2, [NumPhases]int64{PhaseIssue: 50, PhaseBanks: 7})
	got := p.Census()
	want := Census{SMCycles: 16, Busy: 10, Skippable: 4, StalledUnknown: 2, SkipRuns: 1}
	if got != want {
		t.Errorf("folded census = %+v, want %+v", got, want)
	}
	ns := p.PhaseNS()
	if ns[PhaseIssue] != 150 || ns[PhaseBanks] != 7 {
		t.Errorf("folded phase ns = %v", ns)
	}
}

func testEntries() []Entry {
	pB := New(false)
	pB.Fold(Census{SMCycles: 200, Busy: 120, ActiveNoIssue: 30, Skippable: 40, StalledUnknown: 10, SkipRuns: 4}, [NumPhases]int64{})
	pA := New(true)
	pA.Fold(Census{SMCycles: 100, Busy: 90, Skippable: 10, SkipRuns: 2}, [NumPhases]int64{PhaseIssue: 5})
	return []Entry{
		NewEntry("wlB", "partitioned", pB),
		NewEntry("wlA", "mono-stv", pA),
	}
}

// TestReportRoundTrip: WriteJSON → Read preserves the report exactly,
// NewReport sorts canonically, and serialization is byte-deterministic.
func TestReportRoundTrip(t *testing.T) {
	r := NewReport(testEntries())
	if r.Schema != Schema {
		t.Errorf("schema = %q", r.Schema)
	}
	if r.Entries[0].Workload != "wlA" || r.Entries[1].Workload != "wlB" {
		t.Errorf("entries not in canonical order: %s, %s", r.Entries[0].Workload, r.Entries[1].Workload)
	}
	if r.Total.Workload != "total" || r.Total.Design != "all" {
		t.Errorf("total row mislabeled: %s/%s", r.Total.Workload, r.Total.Design)
	}
	if r.Total.Census.SMCycles != 300 || r.Total.Census.Skippable != 50 {
		t.Errorf("total census wrong: %+v", r.Total.Census)
	}
	// The wall-clock section appears only on entries whose profiler
	// collected wall time.
	if r.Entries[0].Wall == nil {
		t.Error("wall-clock entry lost its Wall section")
	}
	if r.Entries[1].Wall != nil {
		t.Error("census-only entry grew a Wall section")
	}

	var buf1, buf2 bytes.Buffer
	if err := r.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSON is not byte-deterministic")
	}

	back, err := Read(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var buf3 bytes.Buffer
	if err := back.WriteJSON(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Errorf("round trip changed bytes:\n%s\nvs\n%s", buf1.String(), buf3.String())
	}
}

func TestReadRejects(t *testing.T) {
	var good bytes.Buffer
	if err := NewReport(testEntries()).WriteJSON(&good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, doc string
	}{
		{"empty", ""},
		{"not json", "{"},
		{"wrong schema", strings.Replace(good.String(), Schema, "pilotrf-perfscope/v999", 1)},
		{"missing workload", strings.Replace(good.String(), `"wlA"`, `""`, 1)},
		{"broken partition", strings.Replace(good.String(), `"busy": 90`, `"busy": 91`, 1)},
		{"skip runs exceed skippable", strings.Replace(good.String(), `"skip_runs": 2`, `"skip_runs": 11`, 1)},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: Read accepted invalid report", tc.name)
		}
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Errorf("Now went backwards: %d then %d", a, b)
	}
}
