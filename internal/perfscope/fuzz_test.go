package perfscope

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadReport hardens the report reader against corrupt input: Read
// must never panic, and any report it accepts must satisfy the census
// invariants and survive a write/read round trip byte-identically.
func FuzzReadReport(f *testing.F) {
	var good bytes.Buffer
	if err := NewReport(testEntries()).WriteJSON(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	var empty bytes.Buffer
	if err := NewReport(nil).WriteJSON(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"schema":"pilotrf-perfscope/v1","entries":null,"total":{}}`)
	f.Add(`{"schema":"pilotrf-perfscope/v1","entries":[{"workload":"w","design":"d","census":{"sm_cycles":2,"busy":1,"skippable":1,"skip_runs":1}}],"total":{"workload":"total","design":"all","census":{"sm_cycles":2,"busy":1,"skippable":1,"skip_runs":1}}}`)
	f.Add(strings.Replace(good.String(), `"busy": 90`, `"busy": 1e300`, 1))
	f.Add(strings.Replace(good.String(), Schema, "pilotrf-perfscope/v0", 1))

	f.Fuzz(func(t *testing.T, doc string) {
		r, err := Read(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Accepted reports are fully validated...
		if r.Schema != Schema {
			t.Fatalf("accepted report with schema %q", r.Schema)
		}
		for i, e := range r.Entries {
			if e.Workload == "" || e.Design == "" {
				t.Fatalf("accepted entry %d without workload/design", i)
			}
			if err := e.Census.check(); err != nil {
				t.Fatalf("accepted entry %d with invalid census: %v", i, err)
			}
		}
		// ...and our own serialization is a fixed point: canonicalize
		// once, then write → read → write must reproduce the bytes.
		canon := NewReport(r.Entries)
		var b1, b2 bytes.Buffer
		if err := canon.WriteJSON(&b1); err != nil {
			t.Fatalf("rewriting accepted report: %v", err)
		}
		back, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("rejecting canonicalized report: %v", err)
		}
		if err := back.WriteJSON(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("canonical form is not a fixed point")
		}
	})
}
