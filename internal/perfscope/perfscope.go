// Package perfscope measures the simulator itself: where wall-clock
// time goes inside the SM tick, and how many SM cycles an event-driven
// skip-ahead loop could avoid simulating at all.
//
// It has two instruments, both hooked into the sim package behind one
// nil-checked Config.Perf pointer (zero perturbation and zero allocation
// when disabled, like every other observer):
//
//   - A wall-clock phase profiler: every tick's time is split across the
//     pipeline phases (event callbacks, fault adjudication, issue,
//     operand collection, RF banks, adaptive control, telemetry, energy
//     ledger, flight recorder). Sampling-free — each enabled tick is
//     timed, so short phases are not aliased away.
//
//   - A deterministic skip-headroom census: every SM cycle is classified
//     as busy (issued at least one instruction), active-no-issue (no
//     issue, but a bank served a transaction, a collector dispatched, or
//     a scheduled event fired — an event-driven loop must still simulate
//     it), skippable (nothing happened and the next state change is a
//     scheduled event at a known cycle — an event-driven loop would jump
//     straight there), or stalled-unknown (nothing happened and no event
//     is pending; the release depends on another SM or is not locally
//     computable). The census depends only on architectural state, so
//     reports are byte-reproducible, and Skippable/SMCycles is an
//     Amdahl-style upper bound on the speedup an event-driven refactor
//     of the cycle loop can deliver.
//
// The versioned JSON report (pilotrf-perfscope/v1) is emitted by
// cmd/perfscope (the 17-workload x 4-design sweep driver) and pilotsim
// -perf-out, and read back by Read/ReadFile.
package perfscope

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Phase labels one timed slice of the SM tick.
type Phase int

// Tick phases, in pipeline order.
const (
	// PhaseEvents is the scheduled-event sweep: memory returns,
	// execution-latency expiries, writeback completions.
	PhaseEvents Phase = iota
	// PhaseFault is soft-error arrival and adjudication (zero when fault
	// injection is off).
	PhaseFault
	// PhaseIssue is warp scheduling plus functional execution of the
	// issued instructions.
	PhaseIssue
	// PhaseCollect is the operand-collector sweep dispatching gathered
	// instructions.
	PhaseCollect
	// PhaseBanks is RF bank arbitration and service.
	PhaseBanks
	// PhaseAdaptive is the adaptive-FRF controller plus per-cycle
	// statistics bookkeeping.
	PhaseAdaptive
	// PhaseTelemetry is stall classification and epoch sampling.
	PhaseTelemetry
	// PhaseEnergy is the energy ledger's per-cycle accumulation.
	PhaseEnergy
	// PhaseRecord is the flight recorder's event and checksum hooks.
	PhaseRecord

	// NumPhases is the number of timed phases.
	NumPhases = int(PhaseRecord) + 1
)

// phaseNames are the JSON/report keys, aligned with the constants.
var phaseNames = [NumPhases]string{
	"events", "fault", "issue", "collect", "banks",
	"adaptive", "telemetry", "energy", "record",
}

// String returns the phase's report key.
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return fmt.Sprintf("phase_%d", int(p))
	}
	return phaseNames[p]
}

// Census is the deterministic cycle classification. The four classes
// partition SMCycles exactly; SkipRuns counts maximal blocks of
// consecutive skippable cycles (each block is one jump for an
// event-driven loop, so Skippable/SkipRuns is the mean jump length).
type Census struct {
	SMCycles       uint64 `json:"sm_cycles"`
	Busy           uint64 `json:"busy"`
	ActiveNoIssue  uint64 `json:"active_no_issue"`
	Skippable      uint64 `json:"skippable"`
	StalledUnknown uint64 `json:"stalled_unknown"`
	SkipRuns       uint64 `json:"skip_runs"`
}

// Add folds another census into c.
func (c *Census) Add(o Census) {
	c.SMCycles += o.SMCycles
	c.Busy += o.Busy
	c.ActiveNoIssue += o.ActiveNoIssue
	c.Skippable += o.Skippable
	c.StalledUnknown += o.StalledUnknown
	c.SkipRuns += o.SkipRuns
}

// check validates the partition invariant.
func (c Census) check() error {
	if c.Busy+c.ActiveNoIssue+c.Skippable+c.StalledUnknown != c.SMCycles {
		return fmt.Errorf("perfscope: census classes sum to %d, not sm_cycles %d",
			c.Busy+c.ActiveNoIssue+c.Skippable+c.StalledUnknown, c.SMCycles)
	}
	if c.SkipRuns > c.Skippable {
		return fmt.Errorf("perfscope: %d skip runs exceed %d skippable cycles",
			c.SkipRuns, c.Skippable)
	}
	return nil
}

// SkippableFrac is the fraction of SM cycles an event-driven loop could
// jump over.
func (c Census) SkippableFrac() float64 {
	if c.SMCycles == 0 {
		return 0
	}
	return float64(c.Skippable) / float64(c.SMCycles)
}

// ProjectedSpeedup is the Amdahl-style bound on cycle-loop speedup from
// skipping every skippable cycle at zero cost: SMCycles over the cycles
// that still must be simulated. Fully-skippable (degenerate) censuses
// cap at SMCycles so the value stays finite and JSON-encodable.
func (c Census) ProjectedSpeedup() float64 {
	if c.SMCycles == 0 {
		return 1
	}
	rest := c.SMCycles - c.Skippable
	if rest == 0 {
		return float64(c.SMCycles)
	}
	return float64(c.SMCycles) / float64(rest)
}

// epoch anchors the monotonic clock used by Now.
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start; it never
// allocates, so the enabled wall-clock path stays allocation-free.
func Now() int64 { return int64(time.Since(epoch)) }

// Profiler aggregates censuses and phase timings folded in by the
// simulator at kernel boundaries. One profiler typically covers one
// workload x design run; Fold is mutex-guarded so SMs of concurrent
// kernels sharing a profiler stay safe.
type Profiler struct {
	wall bool

	mu      sync.Mutex
	census  Census
	phaseNS [NumPhases]int64
}

// New returns an empty profiler. With wallClock set, the simulator also
// times every tick phase (non-deterministic, excluded from reproducible
// reports); the census is always collected.
func New(wallClock bool) *Profiler {
	return &Profiler{wall: wallClock}
}

// WallClock reports whether phase timing is enabled.
func (p *Profiler) WallClock() bool { return p.wall }

// Fold adds one SM-run's census and phase nanoseconds.
func (p *Profiler) Fold(c Census, ns [NumPhases]int64) {
	p.mu.Lock()
	p.census.Add(c)
	for i, v := range ns {
		p.phaseNS[i] += v
	}
	p.mu.Unlock()
}

// Census returns the folded census.
func (p *Profiler) Census() Census {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.census
}

// PhaseNS returns the folded per-phase wall-clock nanoseconds (all zero
// unless the profiler was built with wallClock).
func (p *Profiler) PhaseNS() [NumPhases]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.phaseNS
}

// Schema is the versioned report format tag.
const Schema = "pilotrf-perfscope/v1"

// Wall is the optional (non-reproducible) wall-clock section of an
// entry: total timed nanoseconds and the per-phase split. Map keys are
// phase names; encoding/json sorts them, so even this section renders
// deterministically for fixed values.
type Wall struct {
	TotalNS int64            `json:"total_ns"`
	PhaseNS map[string]int64 `json:"phase_ns"`
}

// Entry is one workload x design row of a report.
type Entry struct {
	Workload         string  `json:"workload"`
	Design           string  `json:"design"`
	Census           Census  `json:"census"`
	SkippableFrac    float64 `json:"skippable_frac"`
	ProjectedSpeedup float64 `json:"projected_speedup"`
	Wall             *Wall   `json:"wall,omitempty"`
}

// NewEntry renders a profiler into a report entry, computing the
// derived ratios and attaching the wall-clock section only when the
// profiler timed phases.
func NewEntry(workload, design string, p *Profiler) Entry {
	c := p.Census()
	e := Entry{
		Workload:         workload,
		Design:           design,
		Census:           c,
		SkippableFrac:    c.SkippableFrac(),
		ProjectedSpeedup: c.ProjectedSpeedup(),
	}
	if p.wall {
		ns := p.PhaseNS()
		w := &Wall{PhaseNS: make(map[string]int64, NumPhases)}
		for i, v := range ns {
			w.PhaseNS[Phase(i).String()] = v
			w.TotalNS += v
		}
		e.Wall = w
	}
	return e
}

// Report is a full perfscope sweep: one entry per workload x design in
// canonical (workload, then design) order, plus the folded total.
type Report struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
	Total   Entry   `json:"total"`
}

// NewReport sorts the entries canonically and computes the total row,
// so equal entry sets always produce byte-identical reports.
func NewReport(entries []Entry) *Report {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Workload != es[j].Workload {
			return es[i].Workload < es[j].Workload
		}
		return es[i].Design < es[j].Design
	})
	var total Census
	for _, e := range es {
		total.Add(e.Census)
	}
	return &Report{
		Schema:  Schema,
		Entries: es,
		Total: Entry{
			Workload:         "total",
			Design:           "all",
			Census:           total,
			SkippableFrac:    total.SkippableFrac(),
			ProjectedSpeedup: total.ProjectedSpeedup(),
		},
	}
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a pilotrf-perfscope/v1 report: the schema
// tag must match and every census (entries and total) must satisfy the
// partition invariant. It never panics on malformed input.
func Read(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perfscope: parsing report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfscope: schema %q, want %q", r.Schema, Schema)
	}
	for i, e := range r.Entries {
		if e.Workload == "" || e.Design == "" {
			return nil, fmt.Errorf("perfscope: entry %d missing workload or design", i)
		}
		if err := e.Census.check(); err != nil {
			return nil, fmt.Errorf("entry %d (%s/%s): %w", i, e.Workload, e.Design, err)
		}
	}
	if err := r.Total.Census.check(); err != nil {
		return nil, fmt.Errorf("total: %w", err)
	}
	return &r, nil
}

// ReadFile reads a report from disk.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
